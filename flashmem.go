// Package flashmem is the public API of the FlashMem reproduction: a memory
// streaming framework for large-DNN and multi-DNN inference on (simulated)
// mobile GPUs, after "FlashMem: Supporting Modern DNN Workloads on Mobile
// with GPU Memory Hierarchy Optimizations" (ASPLOS 2026).
//
// Instead of preloading all weights, FlashMem statically computes an
// overlap plan — which weight chunks are loaded from disk and transformed
// into 2.5D texture memory at which layer — and streams weights during
// inference, overlapping I/O with compute through branch-free pipelined
// kernels.
//
// Quickstart:
//
//	rt := flashmem.New(flashmem.OnePlus12())
//	model, err := rt.Load("ViT")
//	if err != nil { ... }
//	res := model.Run()
//	fmt.Println(res.IntegratedMS, res.AvgMemMB)
package flashmem

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/power"
	"repro/internal/units"
)

// Device is a simulated mobile platform profile.
type Device = device.Device

// The four evaluation devices (§5.1).
func OnePlus12() Device { return device.OnePlus12() }
func OnePlus11() Device { return device.OnePlus11() }
func Pixel8() Device    { return device.Pixel8() }
func XiaomiMi6() Device { return device.XiaomiMi6() }

// Devices returns all device profiles.
func Devices() []Device { return device.All() }

// DeviceByName looks up an evaluation device profile by its Name ("OnePlus
// 12", "Google Pixel 8", …). Request-driven callers — the plan server, the
// CLIs — address the device matrix by name; the second return is false for
// names outside Devices().
func DeviceByName(name string) (Device, bool) { return device.ByName(name) }

// Models returns the Table 6 model abbreviations the zoo can build.
func Models() []string {
	var out []string
	for _, s := range models.All() {
		out = append(out, s.Abbr)
	}
	return out
}

// Frameworks returns the baseline framework names.
func Frameworks() []string {
	var out []string
	for _, f := range baselines.All() {
		out = append(out, f.Name)
	}
	return out
}

// Option configures a Runtime.
type Option func(*core.Options)

// WithMPeak sets the in-flight transform memory budget (§3.1 C2).
func WithMPeak(b units.Bytes) Option {
	return func(o *core.Options) { o.Config.MPeak = b }
}

// WithLambda sets the preload-vs-distance objective weight λ (§3.1).
func WithLambda(l float64) Option {
	return func(o *core.Options) { o.Config.Lambda = l }
}

// WithChunkSize sets the weight slicing granularity S.
func WithChunkSize(s units.Bytes) Option {
	return func(o *core.Options) { o.Config.ChunkSize = s }
}

// WithSolverBudget bounds the per-window CP effort.
func WithSolverBudget(timeout time.Duration, branches int64) Option {
	return func(o *core.Options) {
		o.Config.SolveTimeout = timeout
		o.Config.MaxBranches = branches
	}
}

// WithSolverParallelism sets the LC-OPG speculative window pipeline's
// worker count (≤1 = sequential). The committed plan is byte-identical at
// any setting — speculative window solves only commit when their recorded
// reads replay exactly against the true state — so this trades nothing
// but planning wall-clock; plan-cache keys deliberately ignore it.
func WithSolverParallelism(workers int) Option {
	return func(o *core.Options) { o.Config.Parallelism = workers }
}

// WithoutAdaptiveFusion disables the §4.3 adaptive fusion loop.
func WithoutAdaptiveFusion() Option {
	return func(o *core.Options) { o.AdaptiveFusion = false }
}

// WithoutKernelRewriting disables §4.4 pipelined kernels; streamed chunks
// then cost dedicated transform kernels.
func WithoutKernelRewriting() Option {
	return func(o *core.Options) { o.KernelRewriting = false }
}

// PlanCache memoizes overlap plans across Load calls and runtimes. For a
// fixed (device, model, configuration) triple the solve is deterministic,
// so one cache can back any number of runtimes — including concurrently —
// and can be persisted to disk to warm-start later processes.
type PlanCache struct {
	c *plancache.Cache
}

// CacheStats counts plan-cache traffic; see PlanCache.Stats.
type CacheStats = core.CacheStats

// NewPlanCache builds a bounded LRU plan cache (maxEntries <= 0 uses the
// package default).
func NewPlanCache(maxEntries int) *PlanCache {
	return &PlanCache{c: plancache.New(maxEntries)}
}

// LoadStats reports what a snapshot load actually admitted; see
// PlanCache.LoadAll.
type LoadStats = plancache.LoadStats

// MergeStats summarizes a snapshot merge; see MergePlanSnapshots.
type MergeStats = plancache.MergeStats

// Stats snapshots hit/miss/eviction counters.
func (p *PlanCache) Stats() CacheStats { return p.c.Stats() }

// Len returns the number of cached plans.
func (p *PlanCache) Len() int { return p.c.Len() }

// Save persists the cached plans as JSON at path.
func (p *PlanCache) Save(path string) error { return p.c.Save(path) }

// Load merges a previously saved snapshot (a missing file is a no-op).
func (p *PlanCache) Load(path string) error { return p.c.Load(path) }

// LoadAll merges any number of snapshots — typically the shard-local
// snapshots of a distributed sweep — in argument order (last file wins on
// identical keys), reporting how many plans were loaded and how many were
// dropped as stale (older solver generation) or undecodable (best-effort
// reads of old-format files).
func (p *PlanCache) LoadAll(paths ...string) (LoadStats, error) { return p.c.LoadAll(paths...) }

// MergePlanSnapshots joins shard-local plan-cache snapshots into one
// warm-start file at out. Identical keys are deduplicated (last writer
// wins); a key mapping to two different plans fails the merge, since the
// solver is deterministic and keys embed the full configuration and
// solver version.
func MergePlanSnapshots(out string, paths ...string) (MergeStats, error) {
	return plancache.MergeSnapshotFiles(out, paths...)
}

// SolverVersion names the LC-OPG solver generation baked into plan-cache
// keys; persisted plans from other generations are re-solved, not reused.
func SolverVersion() string { return opg.SolverVersion }

// WithPlanCache attaches a plan cache to the runtime: Load and LoadGraph
// reuse a cached plan instead of re-solving when the same model was
// already planned under an identical configuration. A nil cache leaves
// memoization off, so a conditionally-populated *PlanCache is safe.
func WithPlanCache(pc *PlanCache) Option {
	return func(o *core.Options) {
		if pc == nil {
			o.Cache = nil
			return
		}
		o.Cache = pc.c
	}
}

// Runtime plans and executes models on one device profile. A Runtime is
// safe for concurrent use — Load, LoadGraph, and model runs may be issued
// from any number of goroutines — and runtimes sharing a PlanCache
// deduplicate solves across devices and goroutines. One process serving
// the whole device matrix builds one Runtime per profile (see Fleet, which
// does exactly that and nothing else).
type Runtime struct {
	engine *core.Engine
	dev    Device
}

// New builds a FlashMem runtime for a device.
func New(dev Device, opts ...Option) *Runtime {
	o := core.DefaultOptions(dev)
	for _, opt := range opts {
		opt(&o)
	}
	return &Runtime{engine: core.NewEngine(o), dev: dev}
}

// Model is a planned, executable model.
type Model struct {
	rt   *Runtime
	abbr string
	prep *core.Prepared
}

// Load builds and plans a Table 6 model by abbreviation (see Models()).
func (rt *Runtime) Load(abbr string) (*Model, error) {
	spec, ok := models.ByAbbr(abbr)
	if !ok {
		return nil, fmt.Errorf("flashmem: unknown model %q (see flashmem.Models())", abbr)
	}
	return rt.LoadGraph(abbr, spec.Build())
}

// LoadGraph plans a custom lowered graph.
func (rt *Runtime) LoadGraph(name string, g *graph.Graph) (*Model, error) {
	prep, err := rt.engine.Prepare(g)
	if err != nil {
		return nil, err
	}
	return &Model{rt: rt, abbr: name, prep: prep}, nil
}

// Result is one end-to-end run outcome.
type Result struct {
	Model  string
	Device string

	IntegratedMS float64
	InitMS       float64
	ExecMS       float64

	PeakMemMB float64
	AvgMemMB  float64
	OOM       bool

	Kernels int
	Stalls  int

	AvgPowerW float64
	EnergyJ   float64
}

// Run executes the model cold and reports latency, memory, and energy.
func (m *Model) Run() Result {
	rep, machine := m.rt.engine.Execute(m.prep)
	u := power.Default().Measure(machine, rep.Integrated)
	return Result{
		Model:        m.abbr,
		Device:       rep.Device,
		IntegratedMS: rep.Integrated.Milliseconds(),
		InitMS:       rep.Init.Milliseconds(),
		ExecMS:       rep.Exec.Milliseconds(),
		PeakMemMB:    rep.Mem.Peak.MiB(),
		AvgMemMB:     rep.Mem.Average.MiB(),
		OOM:          rep.Mem.OOM,
		Kernels:      rep.Kernels,
		Stalls:       rep.Stalls,
		AvgPowerW:    u.AveragePowerW,
		EnergyJ:      u.EnergyJ,
	}
}

// PlanSummary describes the overlap plan the solver produced.
type PlanSummary struct {
	Layers          int
	Weights         int
	OverlapFraction float64 // weight bytes streamed during execution
	PreloadMB       float64 // the |W| set
	SolverStatus    string
	SolverWindows   int
	SolverBranches  int64
	SolverWakes     int64 // CP constraint activations (watchlist traffic)
	SolverTrailOps  int64 // CP trailed bound changes (backtracking volume)
	SolverNogoods   int64 // learned CP nogoods (conflict-driven learning)
	SolverRestarts  int64 // CP Luby restarts

	// CDCL analysis counters (zero under restart-only or disabled learning):
	// conflicts analyzed by the 1-UIP engine, non-chronological backjumps,
	// and literals removed by self-subsumption minimization.
	SolverConflicts     int64
	SolverBackjumps     int64
	SolverMinimizedLits int64

	FallbackGreedy int

	// Speculative/Recommitted report the window pipeline's scheduling
	// outcome (both zero on sequential solves): windows committed straight
	// from validated speculation vs windows re-solved after a failed
	// validation. They are diagnostics — unlike the solver counters above
	// they may vary run to run. ImportedNogoods counts the clauses warm
	// recommits installed from doomed speculative solves (zero unless
	// Config.WarmRecommit) and is equally scheduling-dependent.
	SpeculativeWindows int
	RecommittedWindows int
	ImportedNogoods    int64

	// RepairRung names the degradation-ladder rung that produced this plan
	// after a device-condition event: "repaired" (incremental repair,
	// proven equal to a from-scratch solve), "cached_variant", or
	// "patched" (prefix-preserving greedy patch). Empty for plans solved
	// cold, which never rode the ladder. RepairWindowsKept/Resolved report
	// how much of the retained solve survived the event (both zero unless
	// the rung re-solved windows incrementally).
	RepairRung            string
	RepairWindowsKept     int
	RepairWindowsResolved int

	// FromCache reports that this plan was served by the runtime's plan
	// cache rather than solved; Cache snapshots that cache's counters at
	// summary time (zero value when the runtime has no cache).
	FromCache bool
	Cache     CacheStats
}

// Plan summarizes the model's overlap plan.
func (m *Model) Plan() PlanSummary {
	p := m.prep.Plan
	ps := PlanSummary{
		Layers:          m.prep.Graph.Len(),
		Weights:         len(p.Weights),
		OverlapFraction: p.OverlapFraction(),
		PreloadMB:       p.PreloadBytes().MiB(),
		SolverStatus:    p.Stats.Status.String(),
		SolverWindows:   p.Stats.Windows,
		SolverBranches:  p.Stats.Branches,
		SolverWakes:     p.Stats.Wakes,
		SolverTrailOps:  p.Stats.TrailOps,
		SolverNogoods:   p.Stats.Nogoods,
		SolverRestarts:  p.Stats.Restarts,

		SolverConflicts:     p.Stats.Conflicts,
		SolverBackjumps:     p.Stats.Backjumps,
		SolverMinimizedLits: p.Stats.MinimizedLits,

		FallbackGreedy: p.Stats.Fallbacks.Greedy,

		SpeculativeWindows: p.Stats.Speculative,
		RecommittedWindows: p.Stats.Recommitted,
		ImportedNogoods:    p.Stats.ImportedNogoods,

		RepairRung:            p.Stats.RepairRung,
		RepairWindowsKept:     p.Stats.RepairWindowsKept,
		RepairWindowsResolved: p.Stats.RepairWindowsResolved,

		FromCache: m.prep.FromCache,
	}
	if c := m.rt.engine.Cache(); c != nil {
		ps.Cache = c.Stats()
	}
	return ps
}

// EncodePlan writes the model's overlap plan in its stable JSON wire
// format (solve once on a workstation, ship the plan with the model). The
// encoding is deterministic for a given plan, so two plans are equal iff
// their encodings are byte-identical — which is how the plan server's
// responses are checked against direct solves.
func (m *Model) EncodePlan(w io.Writer) error {
	return m.prep.Plan.Encode(w)
}

// KernelSource is one generated GPU kernel.
type KernelSource struct {
	Name      string
	Source    string
	Pipelined bool
}

// Kernels renders up to limit of the model's rewritten kernels (§4.4);
// limit < 0 renders all.
func (m *Model) Kernels(limit int) ([]KernelSource, error) {
	ks, err := m.rt.engine.GenerateKernels(m.prep, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KernelSource, len(ks))
	for i, k := range ks {
		out[i] = KernelSource{Name: k.Name, Source: k.Source, Pipelined: k.Pipelined}
	}
	return out, nil
}

// RunBaseline executes a model under a preloading framework (see
// Frameworks()). It returns an error when the framework does not support
// the model or runs out of memory — Table 7's "–" cells.
func (rt *Runtime) RunBaseline(framework, abbr string) (Result, error) {
	f, ok := baselines.ByName(framework)
	if !ok {
		return Result{}, fmt.Errorf("flashmem: unknown framework %q", framework)
	}
	spec, ok := models.ByAbbr(abbr)
	if !ok {
		return Result{}, fmt.Errorf("flashmem: unknown model %q", abbr)
	}
	rep, machine, err := f.Run(spec.Build(), abbr, rt.dev)
	if err != nil {
		return Result{}, err
	}
	u := power.Default().Measure(machine, rep.Integrated())
	return Result{
		Model:        abbr,
		Device:       rep.Device,
		IntegratedMS: rep.Integrated().Milliseconds(),
		InitMS:       rep.Init.Milliseconds(),
		ExecMS:       rep.Exec.Milliseconds(),
		PeakMemMB:    rep.Mem.Peak.MiB(),
		AvgMemMB:     rep.Mem.Average.MiB(),
		OOM:          rep.Mem.OOM,
		AvgPowerW:    u.AveragePowerW,
		EnergyJ:      u.EnergyJ,
	}, nil
}
