package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/multimodel"
	"repro/internal/profiler"
	"repro/internal/units"
)

// --- Figure 2: per-operator overlap tolerance ---

// figure2Cells: the sweep is one monolithic profiler pass, so it is a
// single cell.
func figure2Cells(*Runner) []string { return []string{"overlap-sweep"} }

// figure2Cell runs the whole overlap latency sweep.
func (r *Runner) figure2Cell(string) ([]profiler.OverlapPoint, error) {
	return profiler.Figure2Sweep(r.Cfg.Device, 2.0, 0.125), nil
}

// Figure2 runs the overlap latency sweep on the configured device.
func (r *Runner) Figure2() []profiler.OverlapPoint {
	points, _ := r.figure2Cell("")
	return points
}

// RenderFigure2 formats the sweep as one series per operator.
func RenderFigure2(points []profiler.OverlapPoint) string {
	t := metrics.NewTable("Operator", "Ratio", "Increase(ms)", "Relative")
	for _, p := range points {
		t.Row(p.Kind.String(), fmt.Sprintf("%.3f", p.Ratio),
			fmt.Sprintf("%.4f", p.IncreaseMS), fmt.Sprintf("%.0f%%", p.Relative*100))
	}
	return "Figure 2: latency increase vs additional data volume ratio\n" + t.String()
}

// --- Figure 6: multi-model FIFO memory traces ---

// Figure6Result holds the two FIFO traces.
type Figure6Result struct {
	FlashMem *multimodel.Trace
	MNN      *multimodel.Trace
}

// figure6Cells: one cell per simulated system.
func figure6Cells(*Runner) []string { return []string{"FlashMem", "MNN"} }

// figure6Cell runs one system's FIFO trace with the configured iteration
// count.
func (r *Runner) figure6Cell(system string) (*multimodel.Trace, error) {
	return r.figure6Trace(system, r.Cfg.iterations())
}

// figure6Trace simulates one system's interleaved multi-model workload.
func (r *Runner) figure6Trace(system string, iterations int) (*multimodel.Trace, error) {
	if system == "FlashMem" {
		flashModels := []string{"DepthA-S", "SD-UNet", "ViT", "GPTN-1.3B", "Whisper-M"}
		var runners []multimodel.Runner
		for _, abbr := range flashModels {
			fr, err := r.Flash(abbr) // reuses the cached plan
			if err != nil {
				return nil, err
			}
			runners = append(runners, &multimodel.FlashMemRunner{Engine: r.Engine, Prep: fr.prep})
		}
		return multimodel.RunFIFO(gpusim.New(r.Cfg.Device), runners,
			multimodel.Shuffled(len(runners), iterations, 7))
	}
	mnn := baselines.MNN()
	mnnModels := []string{"DepthA-S", "ViT", "SD-UNet", "Whisper-M"}
	var runners []multimodel.Runner
	for _, abbr := range mnnModels {
		runners = append(runners, &multimodel.BaselineRunner{Framework: mnn, Graph: r.Graph(abbr)})
	}
	return multimodel.RunFIFO(gpusim.New(r.Cfg.Device), runners,
		multimodel.Shuffled(len(runners), iterations, 7))
}

// figure6Aggregate pairs the ordered traces back up.
func figure6Aggregate(traces []*multimodel.Trace) *Figure6Result {
	return &Figure6Result{FlashMem: traces[0], MNN: traces[1]}
}

// Figure6 runs the interleaved multi-model workload: FlashMem runs
// {DepthA-S, SD-UNet, ViT, GPTN-1.3B, Whisper-M}; MNN runs the subset it
// supports (no GPTN-1.3B), each model `iterations` times (<= 0 uses the
// configured count), shuffled order. The two systems' FIFO simulations run
// concurrently.
func (r *Runner) Figure6(iterations int) (*Figure6Result, error) {
	if iterations <= 0 {
		iterations = r.Cfg.iterations()
	}
	traces, err := parallel(r, figure6Cells(r), func(system string) (*multimodel.Trace, error) {
		return r.figure6Trace(system, iterations)
	})
	if err != nil {
		return nil, err
	}
	return figure6Aggregate(traces), nil
}

// RenderFigure6 summarizes the traces.
func RenderFigure6(res *Figure6Result) string {
	t := metrics.NewTable("System", "Requests", "Total", "Peak Mem", "Avg Mem", "OOM")
	row := func(name string, tr *multimodel.Trace) {
		t.Row(name, fmt.Sprintf("%d", len(tr.Events)), tr.Total.String(),
			tr.Peak.String(), tr.Average.String(), fmt.Sprintf("%v", tr.OOM))
	}
	row("FlashMem", res.FlashMem)
	row("MNN", res.MNN)
	return "Figure 6: multi-model FIFO support (interleaved iterations)\n" + t.String()
}

// --- Figure 7: optimization breakdown ---

// Figure7Row is one model's incremental speedup/memory-reduction breakdown
// over the SmartMem baseline.
type Figure7Row struct {
	Model string
	// Levels: [0] OPG solver only, [1] + adaptive fusion, [2] + kernel
	// rewriting (full FlashMem). Values are vs SmartMem.
	Speedup [3]float64
	MemRed  [3]float64
}

// fig7Models is the Figure 7 model set.
var fig7Models = []string{"ViT", "SD-UNet", "GPTN-1.3B"}

// figure7Baseline indexes the SmartMem reference cell after the three
// cumulative optimization levels.
const figure7Baseline = 3

// figure7Cell is one model × measurement cell: Kind 0–2 are the cumulative
// optimization levels, Kind figure7Baseline is the SmartMem reference.
type figure7Cell struct {
	Model string
	Kind  int
}

// figure7Measure is the raw simulated outcome of one cell — enough for the
// merge step to form every ratio without re-running anything.
type figure7Measure struct {
	Integrated units.Duration
	AvgMem     units.Bytes
}

// figure7CellSet enumerates the (model × kind) matrix.
func figure7CellSet(*Runner) []figure7Cell {
	var cells []figure7Cell
	for _, abbr := range fig7Models {
		for kind := 0; kind <= figure7Baseline; kind++ {
			cells = append(cells, figure7Cell{Model: abbr, Kind: kind})
		}
	}
	return cells
}

// figure7RunCell measures one cell. Levels 1 and 2 differ only in kernel
// rewriting and therefore share a plan-cache key; with a warm cache one
// solve serves both (concurrent cold cells may still each solve — the
// cache memoizes results, it does not deduplicate in-flight work).
func (r *Runner) figure7RunCell(c figure7Cell) (figure7Measure, error) {
	if c.Kind == figure7Baseline {
		br := r.Baseline(baselines.SmartMem(), c.Model)
		if br.err != nil {
			return figure7Measure{}, br.err
		}
		return figure7Measure{Integrated: br.report.Integrated(), AvgMem: br.report.Mem.Average}, nil
	}
	// Cumulative levels: [0] the OPG solver alone on the unfused graph with
	// dedicated transform kernels; [1] + adaptive fusion; [2] + kernel
	// rewriting (full FlashMem).
	o := r.engineOptions()
	o.BaseFusion = c.Kind >= 1
	o.AdaptiveFusion = c.Kind >= 1
	o.KernelRewriting = c.Kind >= 2
	rep, _, err := core.NewEngine(o).Run(r.Graph(c.Model))
	if err != nil {
		return figure7Measure{}, err
	}
	return figure7Measure{Integrated: rep.Integrated, AvgMem: rep.Mem.Average}, nil
}

// figure7Aggregate forms the per-level ratios from the ordered cell
// measurements.
func figure7Aggregate(measures []figure7Measure) []Figure7Row {
	perModel := figure7Baseline + 1
	var rows []Figure7Row
	for m, abbr := range fig7Models {
		base := measures[m*perModel+figure7Baseline]
		row := Figure7Row{Model: abbr}
		for l := 0; l < figure7Baseline; l++ {
			rep := measures[m*perModel+l]
			row.Speedup[l] = float64(base.Integrated) / float64(rep.Integrated)
			row.MemRed[l] = float64(base.AvgMem) / float64(rep.AvgMem)
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure7 measures the contribution of each optimization on ViT, SD-UNet
// and GPT-Neo-1.3B. All model × level cells (plus the SmartMem reference
// cells) run concurrently.
func (r *Runner) Figure7() ([]Figure7Row, error) {
	measures, err := parallel(r, figure7CellSet(r), r.figure7RunCell)
	if err != nil {
		return nil, err
	}
	return figure7Aggregate(measures), nil
}

// RenderFigure7 formats the breakdown.
func RenderFigure7(rows []Figure7Row) string {
	t := metrics.NewTable("Model", "OPG Spd", "+Fusion Spd", "+Rewrite Spd",
		"OPG Mem", "+Fusion Mem", "+Rewrite Mem")
	for _, r := range rows {
		t.Row(r.Model,
			metrics.Ratio(r.Speedup[0]), metrics.Ratio(r.Speedup[1]), metrics.Ratio(r.Speedup[2]),
			metrics.Ratio(r.MemRed[0]), metrics.Ratio(r.MemRed[1]), metrics.Ratio(r.MemRed[2]))
	}
	return "Figure 7: breakdown vs SmartMem (cumulative levels)\n" + t.String()
}

// --- Figure 8: memory/latency trade-off ---

// Figure8Point is one configuration on a model's trade-off curve.
type Figure8Point struct {
	MPeakMB      float64
	PreloadFrac  float64
	AvgMemMB     float64
	IntegratedMS float64
	ExecMS       float64
}

// Figure8Curve is one model's sweep.
type Figure8Curve struct {
	Model  string
	Points []Figure8Point
}

// The Figure 8 matrix: model set × M_peak budgets (larger budgets stream
// more; tiny budgets force preloading).
var (
	fig8Models = []string{"ViT", "GPTN-1.3B", "DepthA-L", "Whisper-M"}
	fig8MPeaks = []units.Bytes{16 * units.MB, 64 * units.MB, 192 * units.MB, 512 * units.MB, units.GB}
)

// figure8Cell is one model × M_peak configuration.
type figure8Cell struct {
	Abbr  string
	MPeak units.Bytes
}

// figure8CellSet enumerates the trade-off matrix.
func figure8CellSet(*Runner) []figure8Cell {
	var cells []figure8Cell
	for _, abbr := range fig8Models {
		for _, mp := range fig8MPeaks {
			cells = append(cells, figure8Cell{Abbr: abbr, MPeak: mp})
		}
	}
	return cells
}

// figure8RunCell prepares and runs one configuration.
func (r *Runner) figure8RunCell(c figure8Cell) (Figure8Point, error) {
	opts := r.engineOptions()
	opts.Config.MPeak = c.MPeak
	e := core.NewEngine(opts)
	prep, err := e.Prepare(r.Graph(c.Abbr))
	if err != nil {
		return Figure8Point{}, err
	}
	rep, _ := e.Execute(prep)
	return Figure8Point{
		MPeakMB:      c.MPeak.MiB(),
		PreloadFrac:  1 - prep.Plan.OverlapFraction(),
		AvgMemMB:     rep.Mem.Average.MiB(),
		IntegratedMS: rep.Integrated.Milliseconds(),
		ExecMS:       rep.Exec.Milliseconds(),
	}, nil
}

// figure8Aggregate groups ordered points back into per-model curves.
func figure8Aggregate(points []Figure8Point) []Figure8Curve {
	var curves []Figure8Curve
	for m, abbr := range fig8Models {
		curves = append(curves, Figure8Curve{
			Model:  abbr,
			Points: points[m*len(fig8MPeaks) : (m+1)*len(fig8MPeaks)],
		})
	}
	return curves
}

// Figure8 sweeps the memory/latency trade-off by varying M_peak on the
// Figure 8 model set.
func (r *Runner) Figure8() ([]Figure8Curve, error) {
	points, err := parallel(r, figure8CellSet(r), r.figure8RunCell)
	if err != nil {
		return nil, err
	}
	return figure8Aggregate(points), nil
}

// RenderFigure8 formats the trade-off curves.
func RenderFigure8(curves []Figure8Curve) string {
	t := metrics.NewTable("Model", "M_peak(MB)", "Preload", "AvgMem(MB)", "Integrated(ms)", "Exec(ms)")
	for _, c := range curves {
		for _, p := range c.Points {
			t.Row(c.Model, fmt.Sprintf("%.0f", p.MPeakMB), fmt.Sprintf("%.0f%%", p.PreloadFrac*100),
				fmt.Sprintf("%.0f", p.AvgMemMB), fmt.Sprintf("%.0f", p.IntegratedMS), fmt.Sprintf("%.0f", p.ExecMS))
		}
	}
	return "Figure 8: memory usage vs latency trade-off\n" + t.String()
}

// --- Figure 9: naive overlap strategies ---

// Figure9Row compares FlashMem against the two naive prefetchers.
type Figure9Row struct {
	Model             string
	SpeedupAlwaysNext float64
	SpeedupSameOp     float64
}

// figure9Cells enumerates the Figure 9 model set.
func figure9Cells(*Runner) []string {
	return []string{"GPTN-1.3B", "ResNet", "SAM-2", "DeepViT", "SD-UNet", "DepthA-L"}
}

// figure9Cell runs Always-Next Loading and Same-Op-Type Prefetching on one
// model. The naive strategies use dedicated transform kernels (no §4.4
// rewriting) — they are prefetch policies predating the kernel redesign —
// while FlashMem gets its full pipeline.
func (r *Runner) figure9Cell(abbr string) (Figure9Row, error) {
	naiveOpts := r.engineOptions()
	naiveOpts.KernelRewriting = false
	naiveEngine := core.NewEngine(naiveOpts)

	fr, err := r.Flash(abbr)
	if err != nil {
		return Figure9Row{}, err
	}
	g := r.Graph(abbr)
	cfg := r.solveConfig()

	anPlan := baselines.AlwaysNextPlan(g, cfg.ChunkSize)
	anRep, _ := naiveEngine.Execute(&core.Prepared{Graph: g, Plan: anPlan})
	soPlan := baselines.SameOpTypePlan(g, cfg.ChunkSize, cfg.Window, 16)
	soRep, _ := naiveEngine.Execute(&core.Prepared{Graph: g, Plan: soPlan})

	return Figure9Row{
		Model:             abbr,
		SpeedupAlwaysNext: float64(anRep.Integrated) / float64(fr.report.Integrated),
		SpeedupSameOp:     float64(soRep.Integrated) / float64(fr.report.Integrated),
	}, nil
}

// Figure9 runs the naive-prefetcher comparison across the model set.
func (r *Runner) Figure9() ([]Figure9Row, error) {
	return parallel(r, figure9Cells(r), r.figure9Cell)
}

// RenderFigure9 formats the comparison.
func RenderFigure9(rows []Figure9Row) string {
	t := metrics.NewTable("Model", "vs Always-Next", "vs Same-Op-Type")
	for _, r := range rows {
		t.Row(r.Model, metrics.Ratio(r.SpeedupAlwaysNext), metrics.Ratio(r.SpeedupSameOp))
	}
	return "Figure 9: FlashMem speedup over naive overlap strategies\n" + t.String()
}

// --- Figure 10: portability ---

// Figure10Row is one device × model comparison against SmartMem.
type Figure10Row struct {
	Device       string
	Model        string
	SmartMemOOM  bool
	FlashMemOOM  bool
	Speedup      float64 // SmartMem integrated / FlashMem integrated (0 when OOM)
	MemorySaving float64 // SmartMem avg / FlashMem avg (0 when OOM)
}

// figure10Cell is one device × model configuration.
type figure10Cell struct {
	Dev  device.Device
	Abbr string
}

// figure10CellSet enumerates the portability matrix.
func figure10CellSet(*Runner) []figure10Cell {
	var cells []figure10Cell
	for _, dev := range devicePortabilitySet() {
		for _, abbr := range []string{"SD-UNet", "GPTN-1.3B", "ViT"} {
			cells = append(cells, figure10Cell{Dev: dev, Abbr: abbr})
		}
	}
	return cells
}

// figure10RunCell compares FlashMem against SmartMem on one device × model.
func (r *Runner) figure10RunCell(c figure10Cell) (Figure10Row, error) {
	engine := core.NewEngine(engineOptions(r.Cfg, c.Dev))
	g := r.Graph(c.Abbr)
	row := Figure10Row{Device: c.Dev.Name, Model: c.Abbr}

	fmRep, fmMachine, err := engine.Run(g)
	if err != nil {
		return Figure10Row{}, err
	}
	row.FlashMemOOM = fmMachine.OOM()

	smRep, _, smErr := baselines.SmartMem().Run(g, "", c.Dev)
	if smErr != nil {
		row.SmartMemOOM = true
	} else if !row.FlashMemOOM {
		row.Speedup = float64(smRep.Integrated()) / float64(fmRep.Integrated)
		row.MemorySaving = float64(smRep.Mem.Average) / float64(fmRep.Mem.Average)
	}
	return row, nil
}

// Figure10 evaluates SD-UNet, GPTN-1.3B and ViT on the three secondary
// devices. SmartMem OOMs where its init footprint exceeds the app limit
// (GPTN-1.3B on the Mi 6 and Pixel 8); FlashMem runs everywhere.
func (r *Runner) Figure10() ([]Figure10Row, error) {
	return parallel(r, figure10CellSet(r), r.figure10RunCell)
}

// RenderFigure10 formats the portability comparison.
func RenderFigure10(rows []Figure10Row) string {
	t := metrics.NewTable("Device", "Model", "Latency Speedup", "Memory Saving", "Note")
	for _, r := range rows {
		note := ""
		switch {
		case r.SmartMemOOM && !r.FlashMemOOM:
			note = "SmartMem OOM; FlashMem runs"
		case r.FlashMemOOM:
			note = "FlashMem OOM"
		}
		t.Row(r.Device, r.Model, metrics.Ratio(r.Speedup), metrics.Ratio(r.MemorySaving), note)
	}
	return "Figure 10: portability across devices (vs SmartMem)\n" + t.String()
}

// devicePortabilitySet returns the Figure 10 devices.
func devicePortabilitySet() []device.Device { return device.Portability() }
