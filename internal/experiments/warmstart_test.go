package experiments

import "testing"

func TestWarmStartCrossoverExists(t *testing.T) {
	r := NewRunner(fastConfig())
	rows, err := r.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no warm-start rows")
	}
	for _, row := range rows {
		// SmartMem's warm exec beats FlashMem's per-run streaming (it holds
		// everything resident), so a finite crossover must exist…
		if row.SmartMemExec >= row.FlashMemMS {
			t.Errorf("%s: SmartMem exec %v not below FlashMem %v", row.Model, row.SmartMemExec, row.FlashMemMS)
		}
		// …and in the handful-to-dozens range the paper reports (3–12),
		// allowing our relatively faster FlashMem to push it higher.
		if row.CrossoverRuns < 2 || row.CrossoverRuns > 60 {
			t.Errorf("%s: crossover after %d runs outside the plausible band", row.Model, row.CrossoverRuns)
		}
	}
	out := RenderWarmStart(rows)
	if out == "" {
		t.Error("empty render")
	}
}
