// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated device: Tables 1, 4, 6, 7, 8, 9 and
// Figures 2, 6, 7, 8, 9, 10, plus the ablations DESIGN.md adds. Each
// generator returns structured rows for programmatic checks and renders a
// paper-style text table.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
)

// Config scopes an experiment run.
type Config struct {
	Device device.Device
	// Models restricts the evaluation to these Table 6 abbreviations
	// (nil = all 11).
	Models []string
	// SolveTimeout and MaxBranches bound the per-window CP effort.
	SolveTimeout time.Duration
	MaxBranches  int64
}

// DefaultConfig evaluates all models on the OnePlus 12 with moderate
// solver budgets (the 150-second paper limit is a CLI option).
func DefaultConfig() Config {
	return Config{
		Device:       device.OnePlus12(),
		SolveTimeout: 100 * time.Millisecond,
		MaxBranches:  8000,
	}
}

// modelSet resolves the configured model list.
func (c Config) modelSet() []models.Spec {
	if len(c.Models) == 0 {
		return models.All()
	}
	out := make([]models.Spec, 0, len(c.Models))
	for _, abbr := range c.Models {
		out = append(out, models.MustByAbbr(abbr))
	}
	return out
}

// flashRun is a cached FlashMem execution.
type flashRun struct {
	prep    *core.Prepared
	report  core.Report
	machine *gpusim.Machine
}

// baseRun is a cached baseline execution.
type baseRun struct {
	report  baselines.Report
	machine *gpusim.Machine
	err     error
}

// Runner executes and caches the per-model runs shared across experiments.
type Runner struct {
	Cfg    Config
	Engine *core.Engine

	graphs map[string]*graph.Graph
	flash  map[string]*flashRun
	base   map[string]map[string]*baseRun // framework → abbr
}

// NewRunner builds a runner with a FlashMem engine on the configured device.
func NewRunner(cfg Config) *Runner {
	opts := core.DefaultOptions(cfg.Device)
	if cfg.SolveTimeout > 0 {
		opts.Config.SolveTimeout = cfg.SolveTimeout
	}
	if cfg.MaxBranches > 0 {
		opts.Config.MaxBranches = cfg.MaxBranches
	}
	return &Runner{
		Cfg:    cfg,
		Engine: core.NewEngine(opts),
		graphs: map[string]*graph.Graph{},
		flash:  map[string]*flashRun{},
		base:   map[string]map[string]*baseRun{},
	}
}

// solveConfig returns the runner's solver configuration.
func (r *Runner) solveConfig() opg.Config {
	cfg := opg.DefaultConfig()
	if r.Cfg.SolveTimeout > 0 {
		cfg.SolveTimeout = r.Cfg.SolveTimeout
	}
	if r.Cfg.MaxBranches > 0 {
		cfg.MaxBranches = r.Cfg.MaxBranches
	}
	return cfg
}

// Graph builds (and caches) a model graph.
func (r *Runner) Graph(abbr string) *graph.Graph {
	if g, ok := r.graphs[abbr]; ok {
		return g
	}
	g := models.MustByAbbr(abbr).Build()
	r.graphs[abbr] = g
	return g
}

// Flash runs FlashMem on a model, cached.
func (r *Runner) Flash(abbr string) (*flashRun, error) {
	if fr, ok := r.flash[abbr]; ok {
		return fr, nil
	}
	prep, err := r.Engine.Prepare(r.Graph(abbr))
	if err != nil {
		return nil, fmt.Errorf("experiments: prepare %s: %w", abbr, err)
	}
	rep, m := r.Engine.Execute(prep)
	fr := &flashRun{prep: prep, report: rep, machine: m}
	r.flash[abbr] = fr
	return fr, nil
}

// Baseline runs a framework on a model, cached. The error (unsupported or
// OOM) is cached too — Table 7's "–" cells.
func (r *Runner) Baseline(f *baselines.Framework, abbr string) *baseRun {
	byModel := r.base[f.Name]
	if byModel == nil {
		byModel = map[string]*baseRun{}
		r.base[f.Name] = byModel
	}
	if br, ok := byModel[abbr]; ok {
		return br
	}
	rep, m, err := f.Run(r.Graph(abbr), abbr, r.Cfg.Device)
	br := &baseRun{report: rep, machine: m, err: err}
	byModel[abbr] = br
	return br
}
