// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated device: Tables 1, 4, 6, 7, 8, 9 and
// Figures 2, 6, 7, 8, 9, 10, plus the ablations DESIGN.md adds. Each
// generator returns structured rows for programmatic checks and renders a
// paper-style text table.
//
// Sweeps run their device × model × config cells on a bounded worker pool
// (internal/sweep) and memoize solved plans through an optional plan cache
// (internal/plancache), so regenerating the full evaluation is bounded by
// the slowest cell rather than the sum of all solves.
//
// Every experiment is exposed as a Driver — deterministic cell
// enumeration, independently-runnable cell ranges, pure merge/render —
// which is what lets the matrix distribute across processes: statically
// (RunPartial / MergePartials over i/N shards) or dynamically
// (CoordinatorGrid / WorkerExec / CoordinatedOutputs under the
// work-stealing coordinator in internal/sweep). Both paths funnel through
// MergePartials' tiling validation, so distributed output is
// byte-identical to a single-process run.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/profiler"
	"repro/internal/sweep"
)

// Config scopes an experiment run.
type Config struct {
	Device device.Device
	// Models restricts the evaluation to these Table 6 abbreviations
	// (nil = all 11).
	Models []string
	// SolveTimeout and MaxBranches bound the per-window CP effort.
	SolveTimeout time.Duration
	MaxBranches  int64

	// Iterations is the per-model repeat count of the Figure 6 multi-model
	// trace (0 = the paper's 10).
	Iterations int

	// Workers bounds sweep concurrency: 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// OPGParallelism is the LC-OPG speculative window pipeline's worker
	// count (opg.Config.Parallelism): ≤1 solves windows sequentially.
	// Plans are byte-identical either way, so — like Workers — it is a
	// scheduling knob and stays out of result fingerprints.
	OPGParallelism int
	// LearnMode selects the CP learning engine (opg.Config.LearnMode):
	// "" / "cdcl", "restart", or "off". Unlike the scheduling knobs above
	// it changes budget-bound plans, so it IS part of result fingerprints.
	LearnMode string
	// PlanCache memoizes Prepare results across every engine the runner
	// builds — the main runner and the per-cell engines of the figure and
	// ablation sweeps (nil = no memoization).
	PlanCache core.PlanCache
}

// DefaultConfig evaluates all models on the OnePlus 12 with moderate
// solver budgets (the 150-second paper limit is a CLI option).
func DefaultConfig() Config {
	return Config{
		Device:       device.OnePlus12(),
		SolveTimeout: 100 * time.Millisecond,
		MaxBranches:  8000,
	}
}

// iterations resolves the Figure 6 repeat count.
func (c Config) iterations() int {
	if c.Iterations > 0 {
		return c.Iterations
	}
	return 10
}

// modelSet resolves the configured model list.
func (c Config) modelSet() []models.Spec {
	if len(c.Models) == 0 {
		return models.All()
	}
	out := make([]models.Spec, 0, len(c.Models))
	for _, abbr := range c.Models {
		out = append(out, models.MustByAbbr(abbr))
	}
	return out
}

// flashRun is a cached FlashMem execution.
type flashRun struct {
	prep    *core.Prepared
	report  core.Report
	machine *gpusim.Machine
}

// baseRun is a cached baseline execution.
type baseRun struct {
	report  baselines.Report
	machine *gpusim.Machine
	err     error
}

// Per-key singleflight cells: concurrent sweep workers asking for the same
// model share one computation instead of racing to duplicate it. Each cell
// records a panic from its computation and re-raises it for every caller —
// sync.Once marks a panicked call done, and without this a poisoned cell
// would hand later callers nil results far from the real failure.
type graphCall struct {
	once     sync.Once
	g        *graph.Graph
	panicked any
}

type flashCall struct {
	once     sync.Once
	fr       *flashRun
	err      error
	panicked any
}

type baseCall struct {
	once     sync.Once
	br       *baseRun
	panicked any
}

type profileCall struct {
	once     sync.Once
	prof     *profiler.Profile
	err      error
	panicked any
}

// Runner executes and caches the per-model runs shared across experiments.
// It is safe for concurrent use; all drivers fan their cells out on the
// configured worker budget.
type Runner struct {
	Cfg    Config
	Engine *core.Engine

	mu     sync.Mutex
	graphs map[string]*graphCall
	flash  map[string]*flashCall
	base   map[string]*baseCall // "framework\x00abbr"
	prof   profileCall
}

// NewRunner builds a runner with a FlashMem engine on the configured device.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:    cfg,
		Engine: core.NewEngine(engineOptions(cfg, cfg.Device)),
		graphs: map[string]*graphCall{},
		flash:  map[string]*flashCall{},
		base:   map[string]*baseCall{},
	}
}

// engineOptions returns full-pipeline engine options for a device with the
// configured solver budget and plan cache applied. Every engine the
// experiments build — the runner's own and the per-cell ones of the
// figure/ablation sweeps — goes through here so they all share the cache.
func engineOptions(cfg Config, dev device.Device) core.Options {
	opts := core.DefaultOptions(dev)
	if cfg.SolveTimeout > 0 {
		opts.Config.SolveTimeout = cfg.SolveTimeout
	}
	if cfg.MaxBranches > 0 {
		opts.Config.MaxBranches = cfg.MaxBranches
	}
	opts.Config.Parallelism = cfg.OPGParallelism
	opts.Config.LearnMode = cfg.LearnMode
	opts.Cache = cfg.PlanCache
	return opts
}

// engineOptions is the runner-scoped variant on the primary device.
func (r *Runner) engineOptions() core.Options {
	return engineOptions(r.Cfg, r.Cfg.Device)
}

// solveConfig returns the runner's solver configuration.
func (r *Runner) solveConfig() opg.Config {
	cfg := opg.DefaultConfig()
	if r.Cfg.SolveTimeout > 0 {
		cfg.SolveTimeout = r.Cfg.SolveTimeout
	}
	if r.Cfg.MaxBranches > 0 {
		cfg.MaxBranches = r.Cfg.MaxBranches
	}
	cfg.Parallelism = r.Cfg.OPGParallelism
	cfg.LearnMode = r.Cfg.LearnMode
	return cfg
}

// parallel runs fn over items on the runner's worker budget with results
// in input order — the shape of every sweep in this package.
func parallel[I, O any](r *Runner, items []I, fn func(item I) (O, error)) ([]O, error) {
	return sweep.Map(context.Background(), r.Cfg.Workers, items,
		func(_ context.Context, _ int, item I) (O, error) { return fn(item) })
}

// oncePanicSafe runs fn under once, capturing a panic into *panicked and
// re-raising it on this and every later call.
func oncePanicSafe(once *sync.Once, panicked *any, fn func()) {
	once.Do(func() {
		defer func() { *panicked = recover() }()
		fn()
	})
	if *panicked != nil {
		panic(*panicked)
	}
}

// Graph builds (and caches) a model graph.
func (r *Runner) Graph(abbr string) *graph.Graph {
	r.mu.Lock()
	c, ok := r.graphs[abbr]
	if !ok {
		c = &graphCall{}
		r.graphs[abbr] = c
	}
	r.mu.Unlock()
	oncePanicSafe(&c.once, &c.panicked, func() { c.g = models.MustByAbbr(abbr).Build() })
	return c.g
}

// Flash runs FlashMem on a model, cached.
func (r *Runner) Flash(abbr string) (*flashRun, error) {
	r.mu.Lock()
	c, ok := r.flash[abbr]
	if !ok {
		c = &flashCall{}
		r.flash[abbr] = c
	}
	r.mu.Unlock()
	oncePanicSafe(&c.once, &c.panicked, func() {
		prep, err := r.Engine.Prepare(r.Graph(abbr))
		if err != nil {
			c.err = fmt.Errorf("experiments: prepare %s: %w", abbr, err)
			return
		}
		rep, m := r.Engine.Execute(prep)
		c.fr = &flashRun{prep: prep, report: rep, machine: m}
	})
	return c.fr, c.err
}

// Profile trains (and caches) the GBT capacity profiler on the primary
// device — shared by every cell that needs the profiled capacity source.
func (r *Runner) Profile() (*profiler.Profile, error) {
	c := &r.prof
	oncePanicSafe(&c.once, &c.panicked, func() {
		c.prof, c.err = profiler.Run(r.Cfg.Device, profiler.DefaultOptions())
	})
	return c.prof, c.err
}

// Baseline runs a framework on a model, cached. The error (unsupported or
// OOM) is cached too — Table 7's "–" cells.
func (r *Runner) Baseline(f *baselines.Framework, abbr string) *baseRun {
	key := f.Name + "\x00" + abbr
	r.mu.Lock()
	c, ok := r.base[key]
	if !ok {
		c = &baseCall{}
		r.base[key] = c
	}
	r.mu.Unlock()
	oncePanicSafe(&c.once, &c.panicked, func() {
		rep, m, err := f.Run(r.Graph(abbr), abbr, r.Cfg.Device)
		c.br = &baseRun{report: rep, machine: m, err: err}
	})
	return c.br
}
