package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/models"
	"repro/internal/multimodel"
	"repro/internal/profiler"
	"repro/internal/sweep"
)

// A Driver expresses one experiment as the three-stage pipeline that
// distributed execution needs: deterministic cell enumeration, independent
// per-cell runs, and a merge/render step over the full row set in cell
// order. Enumeration depends only on the runner configuration, so
// independent processes agree on the cell space without coordination; any
// contiguous range of rows can be computed in isolation — a static shard's
// balanced block or a coordinator-dealt batch alike — and ranges
// concatenated in index order are exactly the unsharded row set. Rows are
// JSON (machine-readable partial results), so the merge step can run in a
// process that never touched a simulator.
type Driver struct {
	ID       string
	numCells func(r *Runner) int
	runRange func(r *Runner, lo, hi int) ([]json.RawMessage, error)
	costKeys func(r *Runner) []string
	render   func(rows []json.RawMessage) (string, error)
}

// NumCells returns the experiment's total cell count under the runner's
// configuration.
func (d *Driver) NumCells(r *Runner) int { return d.numCells(r) }

// Run computes the shard's contiguous slice of the cell space, one
// JSON-encoded row per cell in enumeration order.
func (d *Driver) Run(r *Runner, sh sweep.Shard) ([]json.RawMessage, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	lo, hi := sh.Span(d.numCells(r))
	return d.runRange(r, lo, hi)
}

// RunRange computes an explicit half-open cell range [lo, hi) — the
// coordinated sweep's batch unit, which (unlike a Shard) need not be
// expressible as i-of-N.
func (d *Driver) RunRange(r *Runner, lo, hi int) ([]json.RawMessage, error) {
	return d.runRange(r, lo, hi)
}

// CostKeys maps each cell, in enumeration order, to the model abbreviation
// whose solve dominates that cell's cost — the key into the plan-cache
// cost export (plancache.ModelCosts) that seeds coordinated batch sizing.
// Cells whose cost has no single dominant model yield "" and are priced
// neutrally.
func (d *Driver) CostKeys(r *Runner) []string { return d.costKeys(r) }

// Render merges the full, ordered row set back into the experiment's
// rendered text output. It needs no Runner: aggregation is pure.
func (d *Driver) Render(rows []json.RawMessage) (string, error) { return d.render(rows) }

// Output runs the whole experiment in-process and renders it. The
// unsharded path deliberately shares the distributed pipeline — including
// the JSON row round-trip — so both produce byte-identical text.
func (d *Driver) Output(r *Runner) (string, error) {
	rows, err := d.runRange(r, 0, d.numCells(r))
	if err != nil {
		return "", err
	}
	return d.render(rows)
}

// def adapts a typed (cells, runCell, render) triple into a Driver.
func def[C, R any](id string, cells func(*Runner) []C, runCell func(*Runner, C) (R, error), render func([]R) (string, error)) *Driver {
	return &Driver{
		ID:       id,
		numCells: func(r *Runner) int { return len(cells(r)) },
		runRange: func(r *Runner, lo, hi int) ([]json.RawMessage, error) {
			all := cells(r)
			if lo < 0 || hi < lo || hi > len(all) {
				return nil, fmt.Errorf("experiments: %s: cell range [%d,%d) outside [0,%d)", id, lo, hi, len(all))
			}
			rows, err := parallel(r, all[lo:hi], func(c C) (R, error) { return runCell(r, c) })
			if err != nil {
				return nil, err
			}
			raw := make([]json.RawMessage, len(rows))
			for i := range rows {
				b, err := json.Marshal(rows[i])
				if err != nil {
					return nil, fmt.Errorf("experiments: %s cell %d: encode: %w", id, lo+i, err)
				}
				raw[i] = b
			}
			return raw, nil
		},
		costKeys: func(r *Runner) []string {
			all := cells(r)
			keys := make([]string, len(all))
			for i, c := range all {
				keys[i] = cellCostKey(c)
			}
			return keys
		},
		render: func(raw []json.RawMessage) (string, error) {
			rows := make([]R, len(raw))
			for i, b := range raw {
				if err := json.Unmarshal(b, &rows[i]); err != nil {
					return "", fmt.Errorf("experiments: %s row %d: decode: %w", id, i, err)
				}
			}
			return render(rows)
		},
	}
}

// exact wraps an aggregate that requires the complete row set with a
// length check, so a malformed partial surfaces as an error instead of an
// index panic.
func exact[R any](id string, want func() int, render func([]R) (string, error)) func([]R) (string, error) {
	return func(rows []R) (string, error) {
		if w := want(); len(rows) != w {
			return "", fmt.Errorf("experiments: %s: %d rows, want %d", id, len(rows), w)
		}
		return render(rows)
	}
}

// drivers is the registry, in the canonical `-exp all` order.
var drivers = []*Driver{
	def("table1", table1Cells, (*Runner).table1Cell,
		func(rows []Table1Row) (string, error) { return RenderTable1(rows), nil }),
	def("table4", table4Cells, (*Runner).table4Cell,
		func(rows []Table4Row) (string, error) { return RenderTable4(rows), nil }),
	def("table6", modelCells, (*Runner).table6Cell,
		func(rows []Table6Row) (string, error) { return RenderTable6(rows), nil }),
	def("table7", modelCells, (*Runner).table7Cell,
		func(rows []Table7Row) (string, error) { return RenderTable7(table7Aggregate(rows)), nil }),
	def("table8", modelCells, (*Runner).table8Cell,
		func(rows []Table8Row) (string, error) { return RenderTable8(table8Aggregate(rows)), nil }),
	def("table9", table9Cells, (*Runner).table9Cell,
		func(rows []Table9Row) (string, error) { return RenderTable9(rows), nil }),
	def("fig2", figure2Cells, (*Runner).figure2Cell,
		func(rows [][]profiler.OverlapPoint) (string, error) {
			var points []profiler.OverlapPoint
			for _, r := range rows {
				points = append(points, r...)
			}
			return RenderFigure2(points), nil
		}),
	def("fig6", figure6Cells, (*Runner).figure6Cell,
		exact("fig6", func() int { return 2 }, func(traces []*multimodel.Trace) (string, error) {
			return RenderFigure6(figure6Aggregate(traces)), nil
		})),
	def("fig7", figure7CellSet, (*Runner).figure7RunCell,
		exact("fig7", func() int { return len(fig7Models) * (figure7Baseline + 1) },
			func(ms []figure7Measure) (string, error) { return RenderFigure7(figure7Aggregate(ms)), nil })),
	def("fig8", figure8CellSet, (*Runner).figure8RunCell,
		exact("fig8", func() int { return len(fig8Models) * len(fig8MPeaks) },
			func(pts []Figure8Point) (string, error) { return RenderFigure8(figure8Aggregate(pts)), nil })),
	def("fig9", figure9Cells, (*Runner).figure9Cell,
		func(rows []Figure9Row) (string, error) { return RenderFigure9(rows), nil }),
	def("fig10", figure10CellSet, (*Runner).figure10RunCell,
		func(rows []Figure10Row) (string, error) { return RenderFigure10(rows), nil }),
	def("warmstart", modelCells, (*Runner).warmStartCell,
		func(cells []*WarmStartRow) (string, error) { return RenderWarmStart(warmStartAggregate(cells)), nil }),
	def("abl-chunk", ablationChunkCells, (*Runner).ablationViTCell,
		func(rows []AblationRow) (string, error) {
			return RenderAblation("Ablation: chunk size S (ViT)", rows), nil
		}),
	def("abl-window", ablationWindowCells, (*Runner).ablationViTCell,
		func(rows []AblationRow) (string, error) {
			return RenderAblation("Ablation: rolling-window span (ViT)", rows), nil
		}),
	def("abl-fallback", ablationFallbackCells, (*Runner).ablationViTCell,
		func(rows []AblationRow) (string, error) {
			return RenderAblation("Ablation: solver fallback modes (ViT)", rows), nil
		}),
	def("abl-cache", ablationTextureCells, (*Runner).ablationTextureCell,
		func(rows []AblationTextureCacheRow) (string, error) { return RenderAblationTextureCache(rows), nil }),
	def("abl-capacity", ablationCapacityCells, (*Runner).ablationCapacityCell,
		func(rows []AblationRow) (string, error) {
			return RenderAblation("Ablation: capacity source (ViT)", rows), nil
		}),
}

// Drivers returns every experiment driver in canonical order.
func Drivers() []*Driver { return drivers }

// DriverByID looks a driver up by experiment id.
func DriverByID(id string) (*Driver, bool) {
	for _, d := range drivers {
		if d.ID == id {
			return d, true
		}
	}
	return nil, false
}

// AllIDs returns the canonical experiment id list — what `-exp all`
// expands to.
func AllIDs() []string {
	ids := make([]string, len(drivers))
	for i, d := range drivers {
		ids[i] = d.ID
	}
	return ids
}

// cellCostKey maps one enumerated cell to the model abbreviation that
// dominates its solve cost, or "" when no single model does. String cells
// are model abbreviations for some experiments (table1) and framework or
// setting names for others (table9, fig6, abl-capacity); the model-zoo
// lookup separates the two, so a framework name never aliases into a
// model's cost estimate. Every ablation sweep solves ViT variants, whose
// per-config costs are near the base model's.
func cellCostKey(c any) string {
	switch v := c.(type) {
	case models.Spec:
		return v.Abbr
	case string:
		if _, ok := models.ByAbbr(v); ok {
			return v
		}
		return ""
	case figure7Cell:
		return v.Model
	case figure8Cell:
		return v.Abbr
	case figure10Cell:
		return v.Abbr
	case ablation:
		return "ViT"
	default:
		return ""
	}
}
