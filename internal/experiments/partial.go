package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/sweep"
)

// PartialVersion tags the partial-result file layout.
const PartialVersion = 1

// PartialExperiment is one experiment's shard-local rows: the contiguous
// block [Start, Start+len(Rows)) of the experiment's Cells-sized cell
// space, in enumeration order.
type PartialExperiment struct {
	ID    string            `json:"id"`
	Cells int               `json:"cells"` // total cells across all shards
	Start int               `json:"start"` // global index of Rows[0]
	Rows  []json.RawMessage `json:"rows"`
}

// Partial is the machine-readable output of one shard of an experiment
// run: per-experiment row blocks plus enough provenance (shard spec,
// configuration fingerprint, experiment order) for MergePartials to verify
// that a set of partials actually tiles one coherent run.
type Partial struct {
	Version     int                 `json:"version"`
	Shard       sweep.Shard         `json:"shard"`
	Fingerprint string              `json:"fingerprint,omitempty"`
	Experiments []PartialExperiment `json:"experiments"`
}

// RunPartial executes this shard's slice of every named experiment, up to
// `jobs` experiments concurrently (each experiment fans its cells out on
// the runner's worker budget). The fingerprint is an opaque caller string
// recording the result-affecting configuration; MergePartials requires all
// partials to agree on it.
func RunPartial(r *Runner, ids []string, sh sweep.Shard, jobs int, fingerprint string) (*Partial, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	exps, err := sweep.Map(context.Background(), jobs, ids, func(_ context.Context, _ int, id string) (PartialExperiment, error) {
		d, ok := DriverByID(id)
		if !ok {
			return PartialExperiment{}, fmt.Errorf("unknown experiment id %q", id)
		}
		n := d.NumCells(r)
		lo, _ := sh.Span(n)
		rows, err := d.Run(r, sh)
		if err != nil {
			return PartialExperiment{}, fmt.Errorf("%s: %w", id, err)
		}
		return PartialExperiment{ID: id, Cells: n, Start: lo, Rows: rows}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Partial{
		Version:     PartialVersion,
		Shard:       sh,
		Fingerprint: fingerprint,
		Experiments: exps,
	}, nil
}

// WritePartial saves a partial-result file.
func WritePartial(path string, p *Partial) error {
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("experiments: encode partial: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("experiments: write partial: %w", err)
	}
	return os.Rename(tmp, path)
}

// ReadPartial loads and version-checks a partial-result file.
func ReadPartial(path string) (*Partial, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read partial: %w", err)
	}
	var p Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("experiments: decode partial %s: %w", path, err)
	}
	if p.Version != PartialVersion {
		return nil, fmt.Errorf("experiments: partial %s has version %d, want %d", path, p.Version, PartialVersion)
	}
	return &p, nil
}

// Output is one experiment's merged, rendered result.
type Output struct {
	ID   string
	Text string
}

// MergePartials joins shard partials back into the full run: it verifies
// the set is coherent (same fingerprint, same experiment list, one partial
// per shard index) and that each experiment's row blocks tile its cell
// space exactly, then renders each experiment from the concatenated rows.
// The outputs are byte-identical to an unsharded run with the same
// configuration, in the same experiment order.
func MergePartials(parts []*Partial) ([]Output, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("experiments: merge: no partials given")
	}
	first := parts[0]
	seen := map[int]bool{}
	for _, p := range parts {
		if p.Fingerprint != first.Fingerprint {
			return nil, fmt.Errorf("experiments: merge: partials from different configurations (%q vs %q)",
				p.Fingerprint, first.Fingerprint)
		}
		if p.Shard.Count != first.Shard.Count {
			return nil, fmt.Errorf("experiments: merge: shard counts disagree (%d vs %d)",
				p.Shard.Count, first.Shard.Count)
		}
		if err := p.Shard.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: merge: %w", err)
		}
		if seen[p.Shard.Index] {
			return nil, fmt.Errorf("experiments: merge: shard %s appears twice", p.Shard)
		}
		seen[p.Shard.Index] = true
		if len(p.Experiments) != len(first.Experiments) {
			return nil, fmt.Errorf("experiments: merge: shard %s ran %d experiments, shard %s ran %d",
				p.Shard, len(p.Experiments), first.Shard, len(first.Experiments))
		}
		for i, e := range p.Experiments {
			if e.ID != first.Experiments[i].ID {
				return nil, fmt.Errorf("experiments: merge: experiment order differs (%q vs %q)",
					e.ID, first.Experiments[i].ID)
			}
		}
	}
	if len(parts) != first.Shard.Count {
		return nil, fmt.Errorf("experiments: merge: %d partials for %d shards", len(parts), first.Shard.Count)
	}

	var outs []Output
	for i, meta := range first.Experiments {
		blocks := make([]PartialExperiment, len(parts))
		for j, p := range parts {
			blocks[j] = p.Experiments[i]
			if blocks[j].Cells != meta.Cells {
				return nil, fmt.Errorf("experiments: merge: %s cell counts disagree (%d vs %d)",
					meta.ID, blocks[j].Cells, meta.Cells)
			}
		}
		sort.Slice(blocks, func(a, b int) bool { return blocks[a].Start < blocks[b].Start })
		var rows []json.RawMessage
		next := 0
		for _, b := range blocks {
			if len(b.Rows) == 0 {
				// More shards than cells: the extra shards own empty spans,
				// which share a Start with a sibling's full block and carry
				// no rows to place.
				continue
			}
			if b.Start != next {
				return nil, fmt.Errorf("experiments: merge: %s rows do not tile: block at %d, want %d",
					meta.ID, b.Start, next)
			}
			rows = append(rows, b.Rows...)
			next += len(b.Rows)
		}
		if next != meta.Cells {
			return nil, fmt.Errorf("experiments: merge: %s has %d rows, want %d", meta.ID, next, meta.Cells)
		}
		d, ok := DriverByID(meta.ID)
		if !ok {
			return nil, fmt.Errorf("experiments: merge: unknown experiment id %q", meta.ID)
		}
		text, err := d.Render(rows)
		if err != nil {
			return nil, err
		}
		outs = append(outs, Output{ID: meta.ID, Text: text})
	}
	return outs, nil
}
