package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
	"repro/internal/plancache"
	"repro/internal/units"
)

// testPlanCache is shared by every test runner in the package: tests that
// prepare the same (device, config, model) triple reuse one solve, the
// same way long-lived production runners would.
var testPlanCache = plancache.New(0)

// fastConfig restricts tests to three representative models with small
// solver budgets so the suite stays quick; benches run the full set.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Models = []string{"ResNet", "ViT", "GPTN-S"}
	cfg.SolveTimeout = 40 * time.Millisecond
	cfg.MaxBranches = 2500
	cfg.PlanCache = testPlanCache
	return cfg
}

func TestTable1Motivation(t *testing.T) {
	r := NewRunner(fastConfig())
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.PeakMB <= row.AvgMB {
			t.Errorf("%s: peak %v <= avg %v", row.Model, row.PeakMB, row.AvgMB)
		}
		if row.LoadMS <= 0 || row.TransMS <= 0 || row.InferMS <= 0 {
			t.Errorf("%s: non-positive phases %+v", row.Model, row)
		}
		// Table 1's point: init (load+trans) dominates inference.
		if row.LoadMS+row.TransMS < row.InferMS {
			t.Errorf("%s: init %v should dominate infer %v under preloading",
				row.Model, row.LoadMS+row.TransMS, row.InferMS)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Whisper-M") || !strings.Contains(out, "SD-UNet") {
		t.Error("render missing models")
	}
}

func TestTable4SolverBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("large solver models in short mode")
	}
	r := NewRunner(fastConfig())
	rows := r.Table4()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (Table 4 set)", len(rows))
	}
	for _, row := range rows {
		if row.Status != cpsat.Optimal && row.Status != cpsat.Feasible {
			t.Errorf("%s: status %v", row.Model, row.Status)
		}
		if row.SolveS < 0 || row.Windows == 0 {
			t.Errorf("%s: empty solver stats %+v", row.Model, row)
		}
	}
	// Solve effort grows with model scale: Llama2-70B vs GPTN-S.
	if rows[5].SolveS < rows[0].SolveS {
		t.Errorf("70B solve %v faster than GPTN-S %v", rows[5].SolveS, rows[0].SolveS)
	}
	_ = RenderTable4(rows)
}

func TestTable6MatchesPaper(t *testing.T) {
	r := NewRunner(fastConfig())
	rows := r.Table6()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Layers == 0 || row.ParamsM == 0 {
			t.Errorf("%s: empty row", row.Abbr)
		}
	}
	out := RenderTable6(rows)
	if !strings.Contains(out, "ResNet") {
		t.Error("render missing ResNet")
	}
}

func TestTable7Shape(t *testing.T) {
	r := NewRunner(fastConfig())
	res, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// FlashMem wins on every supported framework (Table 7's headline).
		for name, cell := range row.Baselines {
			if cell.Supported && cell.Integrated() <= row.OursMS {
				t.Errorf("%s on %s: baseline %v not slower than ours %v",
					name, row.Model, cell.Integrated(), row.OursMS)
			}
		}
		// NCNN supports only ResNet among the test models.
		if row.Model != "ResNet" && row.Baselines["NCNN"].Supported {
			t.Errorf("NCNN should not support %s", row.Model)
		}
	}
	// SmartMem geomean speedup in a sane band around the paper's 8.6x.
	if g := res.Geomeans["SmartMem"]; g < 3 || g > 30 {
		t.Errorf("SmartMem geomean speedup %v outside [3,30]", g)
	}
	out := RenderTable7(res)
	if !strings.Contains(out, "Geo-Mean") {
		t.Error("render missing geomean row")
	}
}

func TestTable8Shape(t *testing.T) {
	r := NewRunner(fastConfig())
	res, err := r.Table8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for name, mb := range row.Baselines {
			if mb <= row.OursMB {
				t.Errorf("%s on %s: baseline %vMB not above ours %vMB", name, row.Model, mb, row.OursMB)
			}
		}
		if row.MemReDT < 1 {
			t.Errorf("%s: Mem-ReDT %v < 1", row.Model, row.MemReDT)
		}
	}
	_ = RenderTable8(res)
}

func TestTable9EnergyShape(t *testing.T) {
	r := NewRunner(fastConfig())
	rows, err := r.Table9()
	if err != nil {
		t.Fatal(err)
	}
	var ours, smartmem Table9Row
	for _, row := range rows {
		switch row.Framework {
		case "FlashMem":
			ours = row
		case "SmartMem":
			smartmem = row
		}
	}
	// Table 9's headline: FlashMem saves the vast majority of energy.
	if !ours.DeepViT.Supported || !smartmem.DeepViT.Supported {
		t.Fatal("DeepViT cells missing")
	}
	if ours.DeepViT.EnergyJ >= 0.5*smartmem.DeepViT.EnergyJ {
		t.Errorf("FlashMem DeepViT energy %v not well below SmartMem %v",
			ours.DeepViT.EnergyJ, smartmem.DeepViT.EnergyJ)
	}
	_ = RenderTable9(rows)
}

func TestFigure2Series(t *testing.T) {
	r := NewRunner(fastConfig())
	pts := r.Figure2()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	out := RenderFigure2(pts)
	if !strings.Contains(out, "Softmax") || !strings.Contains(out, "MatMul") {
		t.Error("render missing operators")
	}
}

func TestFigure7BreakdownMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("nine engine runs in short mode")
	}
	cfg := fastConfig()
	cfg.Models = []string{"ViT"}
	r := NewRunner(cfg)
	rows, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// All levels beat the baseline.
		for i, s := range row.Speedup {
			if s <= 1 {
				t.Errorf("%s level %d: speedup %v <= 1", row.Model, i, s)
			}
		}
		// Full FlashMem is at least as fast as OPG alone.
		if row.Speedup[2] < row.Speedup[0]*0.95 {
			t.Errorf("%s: rewriting level %v slower than OPG level %v",
				row.Model, row.Speedup[2], row.Speedup[0])
		}
	}
	_ = RenderFigure7(rows)
}

func TestFigure9NaiveSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("six large-model plans in short mode")
	}
	cfg := fastConfig()
	r := NewRunner(cfg)
	rows, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.SpeedupAlwaysNext < 1 {
			t.Errorf("%s: always-next speedup %v < 1", row.Model, row.SpeedupAlwaysNext)
		}
		if row.SpeedupSameOp < 1 {
			t.Errorf("%s: same-op speedup %v < 1", row.Model, row.SpeedupSameOp)
		}
	}
	_ = RenderFigure9(rows)
}

func TestAblationTextureCache(t *testing.T) {
	r := NewRunner(fastConfig())
	rows := r.AblationTextureCache()
	for _, row := range rows {
		if row.Speedup <= 1 {
			t.Errorf("%s: texture layout speedup %v <= 1", row.Model, row.Speedup)
		}
		if row.Speedup > 8 {
			t.Errorf("%s: texture speedup %v implausibly high", row.Model, row.Speedup)
		}
	}
	_ = RenderAblationTextureCache(rows)
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(fastConfig())
	g1 := r.Graph("ResNet")
	g2 := r.Graph("ResNet")
	if g1 != g2 {
		t.Error("graphs not cached")
	}
	f1, err := r.Flash("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := r.Flash("ResNet")
	if f1 != f2 {
		t.Error("flash runs not cached")
	}
}

func TestUnknownModelPanicsOnEveryCall(t *testing.T) {
	r := NewRunner(fastConfig())
	// sync.Once marks a panicked call done; the runner must re-raise the
	// original panic for later callers instead of handing out nil graphs.
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("call %d: unknown model did not panic", i)
				}
			}()
			r.Graph("NopeModel")
		}()
	}
}

func TestSharedPlanCacheAcrossRunners(t *testing.T) {
	cache := plancache.New(0)
	cfg := fastConfig()
	cfg.PlanCache = cache
	r1 := NewRunner(cfg)
	if _, err := r1.Flash("ResNet"); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if before.Stores == 0 {
		t.Fatal("first runner stored nothing")
	}
	// A brand-new runner with the same configuration reuses the plan
	// instead of re-solving.
	r2 := NewRunner(cfg)
	fr, err := r2.Flash("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if !fr.prep.FromCache {
		t.Error("second runner's preparation not served from cache")
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("no cache hit recorded: before %+v after %+v", before, after)
	}
}

// Compile-time guards that experiment types stay in sync with their
// dependencies.
var (
	_ = graph.NodeID(0)
	_ = units.MB
)
