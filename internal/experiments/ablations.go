package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/opg"
	"repro/internal/profiler"
	"repro/internal/units"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: chunk size S, rolling-window span, the tiered fallback, and
// the 2.5D texture-cache layout.

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Setting      string
	IntegratedMS float64
	AvgMemMB     float64
	OverlapFrac  float64
	SolveMS      float64
}

// ablation is one named solver-config mutation of a sweep.
type ablation struct {
	name   string
	mutate func(*opg.Config)
}

// ablate prepares and runs a model under a modified solver config.
func (r *Runner) ablate(abbr string, a ablation) (AblationRow, error) {
	opts := r.engineOptions()
	a.mutate(&opts.Config)
	e := core.NewEngine(opts)
	prep, err := e.Prepare(r.Graph(abbr))
	if err != nil {
		return AblationRow{}, err
	}
	rep, _ := e.Execute(prep)
	return AblationRow{
		Setting:      a.name,
		IntegratedMS: rep.Integrated.Milliseconds(),
		AvgMemMB:     rep.Mem.Average.MiB(),
		OverlapFrac:  prep.Plan.OverlapFraction(),
		SolveMS:      float64(prep.Plan.Stats.SolveTime.Milliseconds()),
	}, nil
}

// ablateSweep runs every configuration of an ablation concurrently.
func (r *Runner) ablateSweep(abbr string, configs []ablation) ([]AblationRow, error) {
	return parallel(r, configs, func(a ablation) (AblationRow, error) {
		return r.ablate(abbr, a)
	})
}

// ablationViTCell runs one named configuration on ViT — the per-cell shape
// of every solver-config ablation.
func (r *Runner) ablationViTCell(a ablation) (AblationRow, error) {
	return r.ablate("ViT", a)
}

// ablationChunkCells enumerates the chunk-size sweep.
func ablationChunkCells(*Runner) []ablation {
	var configs []ablation
	for _, s := range []units.Bytes{256 * units.KB, units.MB, 4 * units.MB, 16 * units.MB} {
		s := s
		configs = append(configs, ablation{
			name:   fmt.Sprintf("S=%v", s),
			mutate: func(c *opg.Config) { c.ChunkSize = s },
		})
	}
	return configs
}

// AblationChunkSize sweeps the slicing granularity S on ViT.
func (r *Runner) AblationChunkSize() ([]AblationRow, error) {
	return r.ablateSweep("ViT", ablationChunkCells(r))
}

// ablationWindowCells enumerates the rolling-window sweep.
func ablationWindowCells(*Runner) []ablation {
	var configs []ablation
	for _, w := range []int{8, 24, 48, 96} {
		w := w
		configs = append(configs, ablation{
			name:   fmt.Sprintf("window=%d", w),
			mutate: func(c *opg.Config) { c.Window = w },
		})
	}
	return configs
}

// AblationWindow sweeps the rolling-window span on ViT.
func (r *Runner) AblationWindow() ([]AblationRow, error) {
	return r.ablateSweep("ViT", ablationWindowCells(r))
}

// ablationFallbackCells enumerates the tiered-solver extremes: pure CP
// (generous budgets, ladder rarely needed) and pure greedy (CP starved so
// every window falls through to the heuristic).
func ablationFallbackCells(*Runner) []ablation {
	return []ablation{
		{"tiered (default)", func(c *opg.Config) {}},
		{"pure CP", func(c *opg.Config) {
			c.SolveTimeout = 2 * time.Second
			c.MaxBranches = 500000
		}},
		{"pure greedy", func(c *opg.Config) {
			c.SolveTimeout = time.Nanosecond
			c.MaxBranches = 1
		}},
	}
}

// AblationFallback compares the tiered solver against its extremes.
func (r *Runner) AblationFallback() ([]AblationRow, error) {
	return r.ablateSweep("ViT", ablationFallbackCells(r))
}

// AblationTextureCacheRow compares execution layouts for one model.
type AblationTextureCacheRow struct {
	Model     string
	TextureMS float64
	LinearMS  float64
	Speedup   float64
}

// ablationTextureCells enumerates the layout-comparison models.
func ablationTextureCells(*Runner) []string { return []string{"ResNet", "ViT", "GPTN-S"} }

// ablationTextureCell compares the 2.5D texture layout against linear
// reads for one model.
func (r *Runner) ablationTextureCell(abbr string) (AblationTextureCacheRow, error) {
	cm := kernels.NewCostModel(r.Cfg.Device)
	g := r.Graph(abbr)
	tex := cm.GraphTime(g, kernels.Texture25D, 1)
	lin := cm.GraphTime(g, kernels.Linear, 1)
	return AblationTextureCacheRow{
		Model:     abbr,
		TextureMS: tex.Milliseconds(),
		LinearMS:  lin.Milliseconds(),
		Speedup:   float64(lin) / float64(tex),
	}, nil
}

// AblationTextureCache quantifies the 2.5D texture layout advantage: the
// same graphs executed with linear unified-memory weight reads (Romou
// reports up to 3.5× on memory-bound kernels; compute-bound graphs see
// less).
func (r *Runner) AblationTextureCache() []AblationTextureCacheRow {
	rows, err := parallel(r, ablationTextureCells(r), r.ablationTextureCell)
	if err != nil {
		panic(err) // cells only fail by panicking (cost-model bugs)
	}
	return rows
}

// ablationCapacityCells enumerates the §4.2 capacity sources by name; the
// capacity itself is materialized in the cell so enumeration stays cheap.
func ablationCapacityCells(*Runner) []string { return []string{"analytic", "profiled (GBT)"} }

// ablationCapacityCell plans ViT under one capacity source.
func (r *Runner) ablationCapacityCell(name string) (AblationRow, error) {
	var caps opg.Capacity
	if name == "analytic" {
		caps = profiler.AnalyticCapacityFunc(r.Cfg.Device)
	} else {
		prof, err := r.Profile()
		if err != nil {
			return AblationRow{}, err
		}
		caps = prof.CapacityFunc()
	}
	opts := r.engineOptions()
	opts.Capacity = caps
	opts.CapacityKey = "abl-" + name
	e := core.NewEngine(opts)
	prep, err := e.Prepare(r.Graph("ViT"))
	if err != nil {
		return AblationRow{}, err
	}
	rep, _ := e.Execute(prep)
	return AblationRow{
		Setting:      name,
		IntegratedMS: rep.Integrated.Milliseconds(),
		AvgMemMB:     rep.Mem.Average.MiB(),
		OverlapFrac:  prep.Plan.OverlapFraction(),
		SolveMS:      float64(prep.Plan.Stats.SolveTime.Milliseconds()),
	}, nil
}

// AblationCapacitySource compares analytic capacities against the trained
// GBT profiler on ViT — the §4.2 pipeline choice.
func (r *Runner) AblationCapacitySource() ([]AblationRow, error) {
	return parallel(r, ablationCapacityCells(r), r.ablationCapacityCell)
}

// RenderAblation formats a generic ablation sweep.
func RenderAblation(title string, rows []AblationRow) string {
	t := metrics.NewTable("Setting", "Integrated(ms)", "AvgMem(MB)", "Overlap", "Solve(ms)")
	for _, r := range rows {
		t.Row(r.Setting, fmt.Sprintf("%.0f", r.IntegratedMS), fmt.Sprintf("%.0f", r.AvgMemMB),
			fmt.Sprintf("%.0f%%", r.OverlapFrac*100), fmt.Sprintf("%.0f", r.SolveMS))
	}
	return title + "\n" + t.String()
}

// RenderAblationTextureCache formats the layout ablation.
func RenderAblationTextureCache(rows []AblationTextureCacheRow) string {
	t := metrics.NewTable("Model", "Texture(ms)", "Linear(ms)", "Speedup")
	for _, r := range rows {
		t.Row(r.Model, fmt.Sprintf("%.1f", r.TextureMS), fmt.Sprintf("%.1f", r.LinearMS),
			metrics.Ratio(r.Speedup))
	}
	return "Ablation: 2.5D texture layout vs linear weight reads\n" + t.String()
}
