package experiments

import (
	"testing"
	"time"
)

// benchSweepConfig is a mid-size evaluation slice: enough independent
// cells (6 models × 7 frameworks × 2 tables) for the pool to matter.
func benchSweepConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Models = []string{"ResNet", "ViT", "GPTN-S", "DeepViT", "DepthA-S", "Whisper-M"}
	cfg.SolveTimeout = 40 * time.Millisecond
	cfg.MaxBranches = 2500
	cfg.Workers = workers
	return cfg
}

// BenchmarkSweepSerialVsParallel measures the wall-clock effect of the
// sweep worker pool on the Table 7 + Table 8 evaluation: the serial path
// (Workers=1) against the parallel path (Workers=GOMAXPROCS), each on a
// fresh runner with cold caches. The "speedup" metric is serial seconds
// over parallel seconds — ≥ 2 on a box with enough cores; bounded by the
// core count below that.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	measure := func(workers int) time.Duration {
		r := NewRunner(benchSweepConfig(workers))
		start := time.Now()
		if _, err := r.Table7(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Table8(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		serial := measure(1)
		par := measure(0)
		if i == 0 {
			b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup")
			b.ReportMetric(serial.Seconds(), "serial-s")
			b.ReportMetric(par.Seconds(), "parallel-s")
		}
	}
}
