package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/sweep"
)

// Glue between the generic sweep coordinator and the experiment drivers.
// The coordinator side of the package boundary is deliberately thin: the
// coordinator deals opaque (group, [lo,hi)) batches and collects opaque
// JSON rows; everything experiment-shaped — cell enumeration, cost
// estimation, execution, and the final merge/render — lives here, built
// from the same Driver pipeline the static shard path uses.

// CoordinatorGrid builds a coordinated sweep's work description: one
// sweep.Group per experiment id, with per-cell cost estimates in seconds
// derived from the plan-cache cost export (plancache.ModelCosts). Cells
// whose dominant model has no recorded cost get 0 — "unknown", which the
// coordinator prices neutrally, never as free. A nil or empty cost map is
// fine: batch sizing degrades to equal-sized batches.
func CoordinatorGrid(r *Runner, ids []string, fingerprint string, costs map[string]time.Duration) (sweep.Grid, error) {
	grid := sweep.Grid{Fingerprint: fingerprint}
	for _, id := range ids {
		d, ok := DriverByID(id)
		if !ok {
			return sweep.Grid{}, fmt.Errorf("experiments: coordinate: unknown experiment id %q", id)
		}
		g := sweep.Group{ID: id, Cells: d.NumCells(r)}
		if len(costs) > 0 {
			keys := d.CostKeys(r)
			g.Costs = make([]float64, len(keys))
			for i, key := range keys {
				if c, ok := costs[key]; ok && c > 0 {
					g.Costs[i] = c.Seconds()
				}
			}
		}
		grid.Groups = append(grid.Groups, g)
	}
	return grid, nil
}

// WorkerExec adapts a Runner into a sweep worker's batch executor: each
// leased batch runs the named experiment's [Lo, Hi) cell range through the
// same driver code path an unsharded run uses, so the pushed rows are
// byte-identical to the unsharded run's slice of the same range.
func WorkerExec(r *Runner) func(ctx context.Context, b sweep.Batch) ([]json.RawMessage, error) {
	return func(ctx context.Context, b sweep.Batch) ([]json.RawMessage, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, ok := DriverByID(b.Group)
		if !ok {
			return nil, fmt.Errorf("experiments: coordinate: unknown experiment id %q", b.Group)
		}
		return d.RunRange(r, b.Lo, b.Hi)
	}
}

// CoordinatedOutputs merges a completed coordinated sweep into rendered
// experiment outputs. It funnels the coordinator's assembled rows through
// MergePartials as one synthesized full-space partial, so the coordinated
// path is pinned by exactly the validation (row counts, tiling, render)
// that guards the static-shard merge — and therefore produces output
// byte-identical to an unsharded run.
func CoordinatedOutputs(grid sweep.Grid, rows map[string][]json.RawMessage) ([]Output, error) {
	p := &Partial{
		Version:     PartialVersion,
		Shard:       sweep.Full(),
		Fingerprint: grid.Fingerprint,
	}
	for _, g := range grid.Groups {
		r, ok := rows[g.ID]
		if !ok {
			return nil, fmt.Errorf("experiments: coordinate: no rows for %q", g.ID)
		}
		p.Experiments = append(p.Experiments, PartialExperiment{
			ID:    g.ID,
			Cells: g.Cells,
			Start: 0,
			Rows:  r,
		})
	}
	return MergePartials([]*Partial{p})
}
