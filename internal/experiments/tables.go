package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/cpsat"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/units"
)

// --- Table 1: motivation — preloading cost under MNN ---

// Table1Row is one model's memory and latency under MNN preloading.
type Table1Row struct {
	Model   string
	ParamsM float64
	PeakMB  float64
	AvgMB   float64
	LoadMS  float64
	TransMS float64
	InferMS float64
}

// table1Cells enumerates the Table 1 model set.
func table1Cells(*Runner) []string { return []string{"Whisper-M", "GPTN-S", "SD-UNet"} }

// table1Cell measures one model under MNN preloading.
func (r *Runner) table1Cell(abbr string) (Table1Row, error) {
	mnn := baselines.MNN()
	g := r.Graph(abbr)
	br := r.Baseline(mnn, abbr)
	if br.err != nil {
		return Table1Row{}, br.err
	}
	load := units.Duration(float64(r.Cfg.Device.DiskBW.Time(g.TotalWeightBytes())) * mnn.LoadFactor)
	return Table1Row{
		Model:   abbr,
		ParamsM: float64(g.Params()) / 1e6,
		PeakMB:  br.report.Mem.Peak.MiB(),
		AvgMB:   br.report.Mem.Average.MiB(),
		LoadMS:  load.Milliseconds(),
		TransMS: (br.report.Init - load).Milliseconds(),
		InferMS: br.report.Exec.Milliseconds(),
	}, nil
}

// Table1 reproduces the Table 1 motivation study: Whisper, GPT-Neo and
// SD-UNet under MNN's weight preloading on the primary device.
func (r *Runner) Table1() ([]Table1Row, error) {
	return parallel(r, table1Cells(r), r.table1Cell)
}

// RenderTable1 formats Table 1 rows.
func RenderTable1(rows []Table1Row) string {
	t := metrics.NewTable("Model", "Params(M)", "Peak(MB)", "Avg(MB)", "Load(ms)", "Trans(ms)", "Infer(ms)")
	for _, r := range rows {
		t.Row(r.Model, fmt.Sprintf("%.0f", r.ParamsM),
			fmt.Sprintf("%.0f", r.PeakMB), fmt.Sprintf("%.0f", r.AvgMB),
			fmt.Sprintf("%.0f", r.LoadMS), fmt.Sprintf("%.0f", r.TransMS), fmt.Sprintf("%.0f", r.InferMS))
	}
	return "Table 1: memory usage and latency under MNN preloading\n" + t.String()
}

// --- Table 4: LC-OPG solver runtime breakdown ---

// Table4Row is one model's solver runtime breakdown. Branches, Wakes and
// Trail expose the CP engine's work — search nodes, constraint activations,
// and trailed bound changes — so solver-speed changes show up as falling
// counters, not just wall-clock deltas.
type Table4Row struct {
	Model    string
	ProcessS float64
	BuildS   float64
	SolveS   float64
	Status   cpsat.Status
	Windows  int
	Branches int64
	Wakes    int64
	Trail    int64
	Nogoods  int64 // learned CP nogoods across window solves
	Restarts int64 // CP Luby restarts across window solves

	// CDCL analysis counters (zero under restart-only or disabled learning).
	Conflicts int64 // conflicts analyzed by the 1-UIP engine
	Backjumps int64 // non-chronological backjumps (≥1 intact level skipped)
	MinLits   int64 // literals removed by self-subsumption minimization

	Spec     int   // windows committed from accepted speculation
	Recommit int   // windows re-solved after failed speculation
	Imported int64 // nogoods installed from doomed speculations (WarmRecommit)

	Overlap float64 // streamed weight fraction of the resulting plan
}

// table4Cells enumerates the Table 4 model set.
func table4Cells(*Runner) []models.Spec { return models.Table4Set() }

// table4Cell solves one model and reports the solver breakdown.
func (r *Runner) table4Cell(spec models.Spec) (Table4Row, error) {
	caps := profiler.AnalyticCapacityFunc(r.Cfg.Device)
	cfg := r.solveConfig()
	g := spec.Build()
	// Adaptive peak-memory control (Table 3): billion-parameter models
	// get a proportionally larger in-flight budget.
	plan := opg.Solve(g, caps, opg.AdaptMPeak(cfg, g))
	st := plan.Stats
	return Table4Row{
		Model:     spec.Abbr,
		ProcessS:  st.ProcessTime.Seconds(),
		BuildS:    st.BuildTime.Seconds(),
		SolveS:    st.SolveTime.Seconds(),
		Status:    st.Status,
		Windows:   st.Windows,
		Branches:  st.Branches,
		Wakes:     st.Wakes,
		Trail:     st.TrailOps,
		Nogoods:   st.Nogoods,
		Restarts:  st.Restarts,
		Conflicts: st.Conflicts,
		Backjumps: st.Backjumps,
		MinLits:   st.MinimizedLits,
		Spec:      st.Speculative,
		Recommit:  st.Recommitted,
		Imported:  st.ImportedNogoods,
		Overlap:   plan.OverlapFraction(),
	}, nil
}

// Table4 reproduces the solver execution-time breakdown on the Table 4
// model set (GPT-Neo family, ViT-8B, Llama2-13B/70B).
func (r *Runner) Table4() []Table4Row {
	rows, err := parallel(r, table4Cells(r), r.table4Cell)
	if err != nil {
		// Cells only fail by panicking (solver bugs); zero-filled rows in a
		// published-style table would be silently wrong, so fail loudly like
		// the old serial loop did.
		panic(err)
	}
	return rows
}

// RenderTable4 formats Table 4 rows. The Spec/Recommit/Imported columns are
// the speculative pipeline's scheduling diagnostics: deliberately absent
// from the table (they vary run to run, and sharded CI diffs rendered output
// byte-for-byte), they are still carried on the row for programmatic use.
// Conflicts/Backjumps/MinLits ARE rendered: like Branches, they cover only
// committed solves and so match a sequential run exactly.
func RenderTable4(rows []Table4Row) string {
	t := metrics.NewTable("Model", "Process(s)", "Build(s)", "Solve(s)", "Status", "Windows", "Branches", "Wakes(k)", "Trail(k)", "Nogoods", "Restarts", "Conflicts", "Backjumps", "MinLits", "Overlap")
	for _, r := range rows {
		t.Row(r.Model, fmt.Sprintf("%.3f", r.ProcessS), fmt.Sprintf("%.3f", r.BuildS),
			fmt.Sprintf("%.2f", r.SolveS), r.Status.String(),
			fmt.Sprintf("%d", r.Windows), fmt.Sprintf("%d", r.Branches),
			fmt.Sprintf("%d", r.Wakes/1000), fmt.Sprintf("%d", r.Trail/1000),
			fmt.Sprintf("%d", r.Nogoods), fmt.Sprintf("%d", r.Restarts),
			fmt.Sprintf("%d", r.Conflicts), fmt.Sprintf("%d", r.Backjumps),
			fmt.Sprintf("%d", r.MinLits),
			fmt.Sprintf("%.0f%%", r.Overlap*100))
	}
	return "Table 4: LC-OPG solver execution-time breakdown\n" + t.String()
}

// --- Table 6: model characterization ---

// Table6Row is one model's measured characteristics.
type Table6Row struct {
	Model, Abbr, Input, Task string
	ParamsM                  float64
	MACsG                    float64
	Layers                   int
}

// modelCells enumerates the configured model set — shared by every
// experiment whose cells are exactly the Table 6 models.
func modelCells(r *Runner) []models.Spec { return r.Cfg.modelSet() }

// table6Cell characterizes one model from its builder.
func (r *Runner) table6Cell(spec models.Spec) (Table6Row, error) {
	g := r.Graph(spec.Abbr)
	return Table6Row{
		Model: spec.Name, Abbr: spec.Abbr, Input: spec.InputType, Task: spec.Task,
		ParamsM: float64(g.Params()) / 1e6,
		MACsG:   g.TotalMACs().GigaMACs(),
		Layers:  g.Len(),
	}, nil
}

// Table6 regenerates the model characterization table from the builders.
func (r *Runner) Table6() []Table6Row {
	rows, err := parallel(r, modelCells(r), r.table6Cell)
	if err != nil {
		panic(err) // cells only fail by panicking (e.g. unknown model)
	}
	return rows
}

// RenderTable6 formats Table 6 rows.
func RenderTable6(rows []Table6Row) string {
	t := metrics.NewTable("Model", "Abbr", "Input", "Task", "Params(M)", "MACs(G)", "Layers")
	for _, r := range rows {
		t.Row(r.Model, r.Abbr, r.Input, r.Task,
			fmt.Sprintf("%.1f", r.ParamsM), fmt.Sprintf("%.1f", r.MACsG), fmt.Sprintf("%d", r.Layers))
	}
	return "Table 6: model characterization\n" + t.String()
}

// --- Table 7: end-to-end latency ---

// Cell is one framework's latency on one model ("–" when unsupported).
type Cell struct {
	Supported bool
	Reason    string
	InitMS    float64
	ExecMS    float64
}

// Integrated returns init + exec in ms.
func (c Cell) Integrated() float64 { return c.InitMS + c.ExecMS }

// Table7Row is one model's end-to-end latency comparison.
type Table7Row struct {
	Model         string
	Baselines     map[string]Cell // framework name → cell
	OursMS        float64
	SpeedupSMem   float64 // over SmartMem
	SpeedupOthers float64 // geomean over the other supported frameworks
}

// Table7Result carries rows and the per-framework geomean speedups.
type Table7Result struct {
	Rows     []Table7Row
	Geomeans map[string]float64 // framework → geomean speedup over FlashMem
}

// table7Cell runs one model's FlashMem run plus every baseline.
func (r *Runner) table7Cell(spec models.Spec) (Table7Row, error) {
	fr, err := r.Flash(spec.Abbr)
	if err != nil {
		return Table7Row{}, err
	}
	row := Table7Row{
		Model:     spec.Abbr,
		Baselines: map[string]Cell{},
		OursMS:    fr.report.Integrated.Milliseconds(),
	}
	var others []float64
	for _, f := range baselines.All() {
		br := r.Baseline(f, spec.Abbr)
		if br.err != nil {
			row.Baselines[f.Name] = Cell{Supported: false, Reason: br.err.Error()}
			continue
		}
		cell := Cell{
			Supported: true,
			InitMS:    br.report.Init.Milliseconds(),
			ExecMS:    br.report.Exec.Milliseconds(),
		}
		row.Baselines[f.Name] = cell
		speedup := cell.Integrated() / row.OursMS
		if f.Name == "SmartMem" {
			row.SpeedupSMem = speedup
		} else {
			others = append(others, speedup)
		}
	}
	row.SpeedupOthers = metrics.GeoMean(others)
	return row, nil
}

// table7Aggregate folds ordered per-model rows into the final result with
// per-framework geomeans.
func table7Aggregate(rows []Table7Row) *Table7Result {
	res := &Table7Result{Rows: rows, Geomeans: map[string]float64{}}
	perFramework := map[string][]float64{}
	for _, row := range rows {
		for name, cell := range row.Baselines {
			if cell.Supported {
				perFramework[name] = append(perFramework[name], cell.Integrated()/row.OursMS)
			}
		}
	}
	for name, sp := range perFramework {
		res.Geomeans[name] = metrics.GeoMean(sp)
	}
	return res
}

// Table7 reproduces the overall latency comparison. Each model's cell —
// the FlashMem run plus every baseline — is one parallel sweep unit; the
// geomean aggregation happens serially over the ordered rows.
func (r *Runner) Table7() (*Table7Result, error) {
	rows, err := parallel(r, modelCells(r), r.table7Cell)
	if err != nil {
		return nil, err
	}
	return table7Aggregate(rows), nil
}

// RenderTable7 formats the latency comparison.
func RenderTable7(res *Table7Result) string {
	names := frameworkNames()
	header := []string{"Model"}
	for _, n := range names {
		header = append(header, n+" Init", n+" Exec")
	}
	header = append(header, "Ours(ms)", "Spd/SMem", "Spd/Others")
	t := metrics.NewTable(header...)
	for _, row := range res.Rows {
		cells := []string{row.Model}
		for _, n := range names {
			c := row.Baselines[n]
			if !c.Supported {
				cells = append(cells, "–", "–")
			} else {
				cells = append(cells, fmt.Sprintf("%.0f", c.InitMS), fmt.Sprintf("%.0f", c.ExecMS))
			}
		}
		cells = append(cells, fmt.Sprintf("%.0f", row.OursMS),
			metrics.Ratio(row.SpeedupSMem), metrics.Ratio(row.SpeedupOthers))
		t.Row(cells...)
	}
	geo := []string{"Geo-Mean"}
	for _, n := range names {
		geo = append(geo, metrics.Ratio(res.Geomeans[n]), "")
	}
	geo = append(geo, "1.0x", "", "")
	t.Row(geo...)
	return "Table 7: overall latency comparison (ms)\n" + t.String()
}

// --- Table 8: average memory ---

// Table8Row is one model's memory comparison in MB.
type Table8Row struct {
	Model     string
	Baselines map[string]float64 // framework → avg MB (absent = unsupported)
	OursMB    float64
	MemReDT   float64 // reduction over SmartMem
}

// Table8Result carries rows and per-framework geomean reductions.
type Table8Result struct {
	Rows     []Table8Row
	Geomeans map[string]float64
}

// table8Cell runs one model's memory comparison.
func (r *Runner) table8Cell(spec models.Spec) (Table8Row, error) {
	fr, err := r.Flash(spec.Abbr)
	if err != nil {
		return Table8Row{}, err
	}
	row := Table8Row{
		Model:     spec.Abbr,
		Baselines: map[string]float64{},
		OursMB:    fr.report.Mem.Average.MiB(),
	}
	for _, f := range baselines.All() {
		br := r.Baseline(f, spec.Abbr)
		if br.err != nil {
			continue
		}
		avg := br.report.Mem.Average.MiB()
		row.Baselines[f.Name] = avg
		if f.Name == "SmartMem" {
			row.MemReDT = avg / row.OursMB
		}
	}
	return row, nil
}

// table8Aggregate folds ordered rows into the final result.
func table8Aggregate(rows []Table8Row) *Table8Result {
	res := &Table8Result{Rows: rows, Geomeans: map[string]float64{}}
	perFramework := map[string][]float64{}
	for _, row := range rows {
		for name, mb := range row.Baselines {
			perFramework[name] = append(perFramework[name], mb/row.OursMB)
		}
	}
	for name, v := range perFramework {
		res.Geomeans[name] = metrics.GeoMean(v)
	}
	return res
}

// Table8 reproduces the overall memory comparison.
func (r *Runner) Table8() (*Table8Result, error) {
	rows, err := parallel(r, modelCells(r), r.table8Cell)
	if err != nil {
		return nil, err
	}
	return table8Aggregate(rows), nil
}

// RenderTable8 formats the memory comparison.
func RenderTable8(res *Table8Result) string {
	names := frameworkNames()
	header := append([]string{"Model"}, names...)
	header = append(header, "Ours(MB)", "Mem-ReDT")
	t := metrics.NewTable(header...)
	for _, row := range res.Rows {
		cells := []string{row.Model}
		for _, n := range names {
			if v, ok := row.Baselines[n]; ok {
				cells = append(cells, fmt.Sprintf("%.0f", v))
			} else {
				cells = append(cells, "–")
			}
		}
		cells = append(cells, fmt.Sprintf("%.0f", row.OursMB), metrics.Ratio(row.MemReDT))
		t.Row(cells...)
	}
	geo := []string{"Geo-Mean"}
	for _, n := range names {
		geo = append(geo, metrics.Ratio(res.Geomeans[n]))
	}
	geo = append(geo, "1.0x", "")
	t.Row(geo...)
	return "Table 8: average memory comparison (MB)\n" + t.String()
}

// --- Table 9: power and energy ---

// Table9Cell is one framework × model power/energy measurement.
type Table9Cell struct {
	Supported bool
	PowerW    float64
	EnergyJ   float64
}

// Table9Row is one framework's row across the two models.
type Table9Row struct {
	Framework string
	DeepViT   Table9Cell
	SDUNet    Table9Cell
}

// table9Cells enumerates the compared frameworks; FlashMem rides along as
// a pseudo-framework.
func table9Cells(*Runner) []string {
	return []string{"MNN", "LiteRT", "ExecuTorch", "SmartMem", "FlashMem"}
}

// table9Cell measures one framework's power/energy on the two models.
func (r *Runner) table9Cell(name string) (Table9Row, error) {
	pm := power.Default()
	row := Table9Row{Framework: name}
	for _, abbr := range []string{"DeepViT", "SD-UNet"} {
		var cell Table9Cell
		if name == "FlashMem" {
			fr, err := r.Flash(abbr)
			if err != nil {
				return Table9Row{}, err
			}
			u := pm.Measure(fr.machine, fr.report.Integrated)
			cell = Table9Cell{Supported: true, PowerW: u.AveragePowerW, EnergyJ: u.EnergyJ}
		} else {
			f, _ := baselines.ByName(name)
			br := r.Baseline(f, abbr)
			if br.err != nil {
				continue
			}
			u := pm.Measure(br.machine, br.report.Init+br.report.Exec)
			cell = Table9Cell{Supported: true, PowerW: u.AveragePowerW, EnergyJ: u.EnergyJ}
		}
		if abbr == "DeepViT" {
			row.DeepViT = cell
		} else {
			row.SDUNet = cell
		}
	}
	return row, nil
}

// Table9 reproduces the power/energy comparison on DeepViT and SD-UNet.
func (r *Runner) Table9() ([]Table9Row, error) {
	return parallel(r, table9Cells(r), r.table9Cell)
}

// RenderTable9 formats the power/energy comparison.
func RenderTable9(rows []Table9Row) string {
	t := metrics.NewTable("Framework", "DeepViT P(W)", "DeepViT E(J)", "SD-UNet P(W)", "SD-UNet E(J)")
	cell := func(c Table9Cell, energy bool) string {
		if !c.Supported {
			return "–"
		}
		if energy {
			return fmt.Sprintf("%.1f", c.EnergyJ)
		}
		return fmt.Sprintf("%.1f", c.PowerW)
	}
	for _, r := range rows {
		t.Row(r.Framework, cell(r.DeepViT, false), cell(r.DeepViT, true),
			cell(r.SDUNet, false), cell(r.SDUNet, true))
	}
	return "Table 9: power and energy comparison\n" + t.String()
}

// frameworkNames returns the Table 7/8 column order.
func frameworkNames() []string {
	return []string{"MNN", "NCNN", "TVM", "LiteRT", "ExecuTorch", "SmartMem"}
}

// withBudget copies a config with a different solver budget — the CLI's
// paper-fidelity mode (150 s limit).
func (c Config) withBudget(timeout time.Duration, branches int64) Config {
	c.SolveTimeout = timeout
	c.MaxBranches = branches
	return c
}
