package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/metrics"
	"repro/internal/models"
)

// Table 7's footnote: SmartMem "can be relatively faster in a warm-start
// setting after 3–12 consecutive inference tasks using the same model" —
// once its one-time init amortizes, its inference-only latency beats
// FlashMem's per-run streaming. This experiment finds that crossover.

// WarmStartRow is one model's crossover point.
type WarmStartRow struct {
	Model string
	// FlashMemMS is the per-inference integrated latency (streaming pays
	// every run); SmartMemInitMS/ExecMS split the baseline's one-time init
	// from its warm per-inference cost.
	FlashMemMS    float64
	SmartMemInit  float64
	SmartMemExec  float64
	CrossoverRuns int // smallest N with init + N·exec < N·flashmem (0 = never)
}

// warmStartCell computes one model's crossover; a nil row means SmartMem
// does not support the model.
func (r *Runner) warmStartCell(spec models.Spec) (*WarmStartRow, error) {
	br := r.Baseline(baselines.SmartMem(), spec.Abbr)
	if br.err != nil {
		return nil, nil // SmartMem-unsupported model: no crossover row
	}
	fr, err := r.Flash(spec.Abbr)
	if err != nil {
		return nil, err
	}
	row := &WarmStartRow{
		Model:        spec.Abbr,
		FlashMemMS:   fr.report.Integrated.Milliseconds(),
		SmartMemInit: br.report.Init.Milliseconds(),
		SmartMemExec: br.report.Exec.Milliseconds(),
	}
	// init + N·exec < N·flash  ⇔  N > init / (flash − exec).
	if gain := row.FlashMemMS - row.SmartMemExec; gain > 0 {
		row.CrossoverRuns = int(row.SmartMemInit/gain) + 1
	}
	return row, nil
}

// warmStartAggregate drops the unsupported-model cells.
func warmStartAggregate(cells []*WarmStartRow) []WarmStartRow {
	var rows []WarmStartRow
	for _, c := range cells {
		if c != nil {
			rows = append(rows, *c)
		}
	}
	return rows
}

// WarmStart computes the FIFO-vs-resident crossover for the models both
// systems support.
func (r *Runner) WarmStart() ([]WarmStartRow, error) {
	cells, err := parallel(r, modelCells(r), r.warmStartCell)
	if err != nil {
		return nil, err
	}
	return warmStartAggregate(cells), nil
}

// RenderWarmStart formats the crossover table.
func RenderWarmStart(rows []WarmStartRow) string {
	t := metrics.NewTable("Model", "FlashMem(ms)", "SMem Init", "SMem Exec", "Crossover N")
	for _, r := range rows {
		n := "never"
		if r.CrossoverRuns > 0 {
			n = fmt.Sprintf("%d", r.CrossoverRuns)
		}
		t.Row(r.Model, fmt.Sprintf("%.0f", r.FlashMemMS),
			fmt.Sprintf("%.0f", r.SmartMemInit), fmt.Sprintf("%.0f", r.SmartMemExec), n)
	}
	return "Warm-start crossover: consecutive same-model inferences after which\n" +
		"resident SmartMem beats per-run FlashMem streaming (Table 7 footnote)\n" + t.String()
}
