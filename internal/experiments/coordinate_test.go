package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/plancache"
	"repro/internal/sweep"
)

// TestCoordinatedSweepMatchesUnsharded is the coordinated path's
// acceptance test, the dynamic twin of TestShardedRunMatchesUnsharded:
// the deterministic experiment matrix served by a coordinator to three
// workers — each with its own runner and plan cache, one injected dead
// worker abandoning a lease mid-sweep — must merge into output
// byte-identical to the single-process run, with no lost or doubly-merged
// cells, and the merged worker snapshots must warm-start a fresh run with
// zero re-solves.
func TestCoordinatedSweepMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	want := unshardedOutputs(t, plancache.New(0))

	const fp = "det-coord"
	grid, err := CoordinatorGrid(NewRunner(detConfig()), detIDs, fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := sweep.NewCoordinator(sweep.CoordinatorConfig{
		Grid:         grid,
		Workers:      3,
		LeaseTimeout: 5 * time.Second,
		IdleWait:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Injected worker death: the zombie leases a batch over the real HTTP
	// API and never reports back. Its lease must expire and the batch be
	// re-dealt to a live worker.
	zombieReq, _ := json.Marshal(map[string]string{"worker": "zombie", "fingerprint": fp})
	resp, err := http.Post(srv.URL+"/lease", "application/json", bytes.NewReader(zombieReq))
	if err != nil {
		t.Fatal(err)
	}
	var zombieLease struct {
		Batch *sweep.Batch `json:"batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&zombieLease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if zombieLease.Batch == nil {
		t.Fatal("zombie got no batch to abandon")
	}

	// Three live workers, each a separate-machine stand-in: fresh runner,
	// fresh plan cache, snapshot attached to every pushed result.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := plancache.New(0)
			cfg := detConfig()
			cfg.PlanCache = cache
			r := NewRunner(cfg)
			_, err := sweep.RunWorker(context.Background(), sweep.WorkerConfig{
				Coordinator: srv.URL,
				Name:        name,
				Fingerprint: fp,
				Exec:        WorkerExec(r),
				Snapshot:    cache.Snapshot,
				Poll:        25 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals < 1 {
		t.Errorf("steals = %d, want >= 1 (the zombie's abandoned lease)", res.Stats.Steals)
	}
	if zs := res.Stats.Workers["zombie"]; zs.Completed != 0 || zs.StolenFrom != 1 {
		t.Errorf("zombie stats = %+v, want 0 completed / 1 stolen-from", zs)
	}

	outs, err := CoordinatedOutputs(grid, res.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(want) {
		t.Fatalf("coordinated run produced %d outputs, want %d", len(outs), len(want))
	}
	for i, out := range outs {
		if out.ID != detIDs[i] {
			t.Errorf("output %d is %q, want %q", i, out.ID, detIDs[i])
		}
		if out.Text != want[i] {
			t.Errorf("%s: coordinated output differs from unsharded run\ncoordinated:\n%s\nunsharded:\n%s",
				out.ID, out.Text, want[i])
		}
	}

	// Merge the per-worker snapshots the coordinator collected and
	// warm-start a fresh run: every Prepare must hit.
	var snapPaths []string
	for name, snap := range res.Snapshots {
		sp := filepath.Join(dir, "snap-"+name+".json")
		if err := os.WriteFile(sp, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		snapPaths = append(snapPaths, sp)
	}
	if len(snapPaths) == 0 {
		t.Fatal("coordinator collected no worker snapshots")
	}
	mergedPath := filepath.Join(dir, "merged-cache.json")
	if _, err := plancache.MergeSnapshotFiles(mergedPath, snapPaths...); err != nil {
		t.Fatal(err)
	}
	warm := plancache.New(0)
	if _, err := warm.LoadAll(mergedPath); err != nil {
		t.Fatal(err)
	}
	if warm.Len() == 0 {
		t.Fatal("merged worker snapshot is empty; warm-start check would be vacuous")
	}
	got := unshardedOutputs(t, warm)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: warm-started output differs from cold run", detIDs[i])
		}
	}
	if s := warm.Stats(); s.Misses != 0 || s.Stores != 0 {
		t.Errorf("warm start re-solved: %d misses / %d stores, want 0 / 0", s.Misses, s.Stores)
	}
}

// TestCoordinatorGridCosts: known models get their exported cost in
// seconds; cells without a recorded cost get 0 — "unknown", which the
// coordinator prices neutrally.
func TestCoordinatorGridCosts(t *testing.T) {
	r := NewRunner(detConfig())
	costs := map[string]time.Duration{"ResNet": 1500 * time.Millisecond}
	grid, err := CoordinatorGrid(r, []string{"table6"}, "fp", costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Groups) != 1 || grid.Groups[0].ID != "table6" {
		t.Fatalf("unexpected grid %+v", grid)
	}
	g := grid.Groups[0]
	if g.Cells != len(detConfig().Models) || len(g.Costs) != g.Cells {
		t.Fatalf("group %+v: want %d cells with costs", g, len(detConfig().Models))
	}
	d, _ := DriverByID("table6")
	sawKnown, sawUnknown := false, false
	for i, key := range d.CostKeys(r) {
		switch key {
		case "ResNet":
			sawKnown = true
			if g.Costs[i] != 1.5 {
				t.Errorf("ResNet cell cost = %v, want 1.5 seconds", g.Costs[i])
			}
		default:
			sawUnknown = true
			if g.Costs[i] != 0 {
				t.Errorf("cost-less cell %d (%s) priced %v, want 0 (unknown)", i, key, g.Costs[i])
			}
		}
	}
	if !sawKnown || !sawUnknown {
		t.Fatalf("test grid lacks known+unknown mix (known=%v unknown=%v)", sawKnown, sawUnknown)
	}

	if _, err := CoordinatorGrid(r, []string{"no-such-exp"}, "fp", nil); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// TestCoordinatedOutputsRejectsIncomplete: missing groups or short row
// sets must fail the merge validation, not render partial output.
func TestCoordinatedOutputsRejectsIncomplete(t *testing.T) {
	grid := sweep.Grid{Fingerprint: "fp", Groups: []sweep.Group{{ID: "table6", Cells: 3}}}
	if _, err := CoordinatedOutputs(grid, map[string][]json.RawMessage{}); err == nil {
		t.Error("missing group rendered")
	}
	short := map[string][]json.RawMessage{"table6": {json.RawMessage(`{}`)}}
	if _, err := CoordinatedOutputs(grid, short); err == nil {
		t.Error("short row set rendered")
	}
}
