package experiments

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/plancache"
	"repro/internal/sweep"
)

// detConfig is a configuration whose runs are bit-deterministic across
// processes: the branch budget binds long before the generous wall-clock
// budget, so independent solves of one cell produce identical plans. The
// experiment ids below are chosen to render no wall-clock measurements
// (solver timing columns legitimately differ between runs).
func detConfig() Config {
	cfg := DefaultConfig()
	cfg.Models = []string{"ResNet", "ViT", "GPTN-S"}
	cfg.SolveTimeout = 5 * time.Second
	cfg.MaxBranches = 1500
	return cfg
}

var detIDs = []string{"table1", "table6", "table7"}

// unshardedOutputs renders the reference run on a fresh runner.
func unshardedOutputs(t *testing.T, cache *plancache.Cache) []string {
	t.Helper()
	cfg := detConfig()
	cfg.PlanCache = cache
	r := NewRunner(cfg)
	var outs []string
	for _, id := range detIDs {
		d, ok := DriverByID(id)
		if !ok {
			t.Fatalf("unknown driver %q", id)
		}
		out, err := d.Output(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		outs = append(outs, out)
	}
	return outs
}

// TestShardedRunMatchesUnsharded is the subsystem's acceptance test: the
// experiment matrix split into three shard processes — each with its own
// runner and its own plan cache, communicating only through partial-result
// and snapshot files — merges back into output identical to the
// single-process run, and the merged plan-cache snapshot warm-starts a
// subsequent run with zero re-solves.
func TestShardedRunMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	want := unshardedOutputs(t, plancache.New(0))

	const shards = 3
	var partialPaths, cachePaths []string
	for i := 0; i < shards; i++ {
		cache := plancache.New(0)
		cfg := detConfig()
		cfg.PlanCache = cache
		r := NewRunner(cfg) // a fresh runner per shard, like a separate machine
		p, err := RunPartial(r, detIDs, sweep.Shard{Index: i, Count: shards}, 1, "det-test")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		pp := filepath.Join(dir, fmt.Sprintf("partial-%d.json", i))
		if err := WritePartial(pp, p); err != nil {
			t.Fatal(err)
		}
		cp := filepath.Join(dir, fmt.Sprintf("cache-%d.json", i))
		if err := cache.Save(cp); err != nil {
			t.Fatal(err)
		}
		partialPaths = append(partialPaths, pp)
		cachePaths = append(cachePaths, cp)
	}

	// Merge the partial files (through their on-disk round-trip).
	var parts []*Partial
	for _, pp := range partialPaths {
		p, err := ReadPartial(pp)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	outs, err := MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(want) {
		t.Fatalf("merged %d outputs, want %d", len(outs), len(want))
	}
	for i, out := range outs {
		if out.ID != detIDs[i] {
			t.Errorf("output %d is %q, want %q", i, out.ID, detIDs[i])
		}
		if out.Text != want[i] {
			t.Errorf("%s: merged output differs from unsharded run\nmerged:\n%s\nunsharded:\n%s",
				out.ID, out.Text, want[i])
		}
	}

	// Merge the shard-local cache snapshots and warm-start a fresh run:
	// every Prepare must hit, and the output must still match.
	mergedPath := filepath.Join(dir, "merged-cache.json")
	if _, err := plancache.MergeSnapshotFiles(mergedPath, cachePaths...); err != nil {
		t.Fatal(err)
	}
	warm := plancache.New(0)
	if _, err := warm.LoadAll(mergedPath); err != nil {
		t.Fatal(err)
	}
	if warm.Len() == 0 {
		t.Fatal("merged snapshot is empty; warm-start check would be vacuous")
	}
	got := unshardedOutputs(t, warm)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: warm-started output differs from cold run", detIDs[i])
		}
	}
	if s := warm.Stats(); s.Misses != 0 || s.Stores != 0 {
		t.Errorf("warm start re-solved: %d misses / %d stores, want 0 / 0", s.Misses, s.Stores)
	}
}

// TestMergePartialsEmptyBlocksAnyOrder: with more shards than cells, the
// extra shards produce zero-row blocks whose Start equals a sibling's full
// block; the merge must tile correctly regardless of the order partial
// files are given in.
func TestMergePartialsEmptyBlocksAnyOrder(t *testing.T) {
	mk := func(idx int, rows int) *Partial {
		raws := make([]json.RawMessage, rows)
		for i := range raws {
			raws[i] = json.RawMessage(`{}`)
		}
		return &Partial{
			Version:     PartialVersion,
			Shard:       sweep.Shard{Index: idx, Count: 3},
			Fingerprint: "fp",
			Experiments: []PartialExperiment{{ID: "table6", Cells: 1, Start: 0, Rows: raws}},
		}
	}
	// Shards 0 and 1 own empty spans of the 1-cell space; shard 2 owns the
	// cell. Present them in descending order.
	parts := []*Partial{mk(2, 1), mk(1, 0), mk(0, 0)}
	outs, err := MergePartials(parts)
	if err != nil {
		t.Fatalf("valid shard set with empty blocks failed to merge: %v", err)
	}
	if len(outs) != 1 || outs[0].ID != "table6" {
		t.Fatalf("unexpected outputs %+v", outs)
	}
}

// TestMergePartialsRejectsIncoherentSets exercises the merge validation:
// missing shards, duplicate shards, and mismatched fingerprints must not
// silently merge.
func TestMergePartialsRejectsIncoherentSets(t *testing.T) {
	mk := func(idx, count int, fp string) *Partial {
		return &Partial{
			Version:     PartialVersion,
			Shard:       sweep.Shard{Index: idx, Count: count},
			Fingerprint: fp,
			Experiments: []PartialExperiment{{ID: "table6", Cells: 2, Start: idx, Rows: make([]json.RawMessage, 1)}},
		}
	}
	if _, err := MergePartials(nil); err == nil {
		t.Error("empty set merged")
	}
	if _, err := MergePartials([]*Partial{mk(0, 2, "a")}); err == nil {
		t.Error("missing shard merged")
	}
	if _, err := MergePartials([]*Partial{mk(0, 2, "a"), mk(0, 2, "a")}); err == nil {
		t.Error("duplicate shard merged")
	}
	if _, err := MergePartials([]*Partial{mk(0, 2, "a"), mk(1, 2, "b")}); err == nil {
		t.Error("mismatched fingerprints merged")
	}
}
