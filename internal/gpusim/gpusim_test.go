package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/units"
)

func TestDiskLoadUsesFigure1Bandwidth(t *testing.T) {
	m := New(device.OnePlus12())
	// 150 MB at 1.5 GB/s ≈ 97.7 ms.
	_, end := m.DiskLoad(0, 150*units.MB)
	if end < 95 || end > 100 {
		t.Errorf("150MB disk load ends at %v, want ~97.7ms", end)
	}
	// Second load serializes behind the first.
	start2, _ := m.DiskLoad(0, units.MB)
	if start2 != end {
		t.Errorf("second load starts at %v, want %v", start2, end)
	}
}

func TestTransferComputeOverlap(t *testing.T) {
	m := New(device.OnePlus12())
	_, tEnd := m.DiskLoad(0, 150*units.MB)
	_, kEnd := m.RunKernel(0, 50)
	// Independent queues: the kernel must not wait for the DMA.
	if kEnd != 50 {
		t.Errorf("kernel end = %v, want 50 (queues must be independent)", kEnd)
	}
	if h := m.Horizon(); h != tEnd {
		t.Errorf("horizon = %v, want %v", h, tEnd)
	}
}

func TestMemoryAccounting(t *testing.T) {
	m := New(device.OnePlus12())
	m.UM.Hold(0, 100, units.GB)
	m.TM.Hold(50, 150, 2*units.GB)
	if p := m.PeakBytes(); p != 3*units.GB {
		t.Errorf("combined peak = %v, want 3 GB", p)
	}
	if p := m.UM.Peak(); p != units.GB {
		t.Errorf("UM peak = %v, want 1 GB", p)
	}
	if p := m.TM.Peak(); p != 2*units.GB {
		t.Errorf("TM peak = %v, want 2 GB", p)
	}
	// Average over [0,150]: (1GB*100 + 2GB*100)/150 = 2 GB.
	want := float64(2 * units.GB)
	if a := float64(m.AverageBytes(150)); math.Abs(a-want) > 1e-3*want {
		t.Errorf("average = %v, want %v", a, want)
	}
}

func TestOOMDetection(t *testing.T) {
	mi6 := New(device.XiaomiMi6())
	mi6.UM.Hold(0, 10, 4*units.GB) // above the Mi 6's 3 GB app limit
	if !mi6.OOM() {
		t.Error("4 GB on Mi 6 must OOM")
	}
	op12 := New(device.OnePlus12())
	op12.UM.Hold(0, 10, 4*units.GB)
	if op12.OOM() {
		t.Error("4 GB on OnePlus 12 must not OOM")
	}
}

func TestZeroAndEmptyHolds(t *testing.T) {
	m := New(device.OnePlus12())
	m.UM.Hold(5, 5, units.GB) // empty interval: ignored
	m.UM.Hold(0, 10, 0)       // zero bytes: ignored
	if m.PeakBytes() != 0 {
		t.Errorf("peak = %v, want 0", m.PeakBytes())
	}
	if m.OOM() {
		t.Error("empty machine cannot OOM")
	}
}

func TestNegativeHoldPanics(t *testing.T) {
	m := New(device.OnePlus12())
	defer func() {
		if recover() == nil {
			t.Fatal("negative hold should panic")
		}
	}()
	m.UM.Hold(0, 1, -1)
}

func TestStatsSnapshot(t *testing.T) {
	m := New(device.Pixel8())
	m.UM.Hold(0, 10, units.GB)
	m.RunKernel(0, 20)
	s := m.Stats(m.Horizon())
	if s.Peak != units.GB || s.UMPeak != units.GB || s.TMPeak != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.OOM {
		t.Error("1 GB on Pixel 8 must not OOM")
	}
}

func TestCombinedPeakProperty(t *testing.T) {
	// Property: combined peak is at most UM peak + TM peak and at least
	// max(UM peak, TM peak).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(device.OnePlus12())
		for i := 0; i < 40; i++ {
			from := units.Duration(rng.Float64() * 100)
			to := from + units.Duration(rng.Float64()*100)
			n := units.Bytes(rng.Intn(1 << 28))
			if rng.Intn(2) == 0 {
				m.UM.Hold(from, to, n)
			} else {
				m.TM.Hold(from, to, n)
			}
		}
		um, tm, combined := m.UM.Peak(), m.TM.Peak(), m.PeakBytes()
		lower := um
		if tm > lower {
			lower = tm
		}
		return combined >= lower && combined <= um+tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMemorySeriesMonotoneTime(t *testing.T) {
	m := New(device.OnePlus12())
	m.UM.Hold(10, 20, units.MB)
	m.TM.Hold(5, 30, 2*units.MB)
	series := m.MemorySeries()
	for i := 1; i < len(series); i++ {
		if series[i].At < series[i-1].At {
			t.Fatal("memory series not time-ordered")
		}
	}
	if len(series) == 0 || series[len(series)-1].Value != 0 {
		t.Error("series must return to zero after all frees")
	}
}
