// Package gpusim models the mobile GPU of Figure 1(a) as a discrete-event
// machine: a disk DMA channel, a GPU compute queue (mobile GPUs expose
// independent command queues, so transfers and kernels overlap), and the
// unified-memory / texture-memory regions with byte-accurate residency
// tracking.
//
// The machine is passive: schedulers (the FlashMem runtime, the baseline
// frameworks) push work items at simulated timestamps and record memory
// residency intervals; the machine serializes queues and integrates memory
// over time. Out-of-memory is a post-hoc property — a run whose combined
// resident peak exceeds the device's app limit would have been killed by
// the OS low-memory killer, which is how Figure 10 reports OOM bars.
package gpusim

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/units"
)

// Region is one level of the memory hierarchy (UM or TM) with residency
// tracking.
type Region struct {
	Name  string
	bytes *sim.Tracker
	total *sim.Tracker // shared machine-wide tracker
}

// Hold records n bytes resident on [from, to).
func (r *Region) Hold(from, to units.Duration, n units.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("gpusim: negative hold in %s", r.Name))
	}
	if n == 0 || to <= from {
		return
	}
	r.bytes.AddRange(from, to, float64(n))
	r.total.AddRange(from, to, float64(n))
}

// Peak returns the region's maximum resident bytes.
func (r *Region) Peak() units.Bytes { return units.Bytes(r.bytes.Peak()) }

// Average returns the region's time-weighted mean residency over [0,horizon].
func (r *Region) Average(horizon units.Duration) units.Bytes {
	return units.Bytes(r.bytes.Average(horizon))
}

// Machine is one simulated device run. Create a fresh Machine per model
// execution; statistics accumulate for the machine's lifetime.
type Machine struct {
	Dev device.Device

	// Transfer serializes disk→UM DMA; Compute serializes GPU kernels
	// (including UM→TM transform kernels). The two overlap freely, which is
	// exactly the concurrency FlashMem exploits.
	Transfer *sim.Queue
	Compute  *sim.Queue

	UM *Region
	TM *Region

	total *sim.Tracker
}

// New returns an idle machine for the device.
func New(dev device.Device) *Machine {
	total := sim.NewTracker("total")
	return &Machine{
		Dev:      dev,
		Transfer: sim.NewQueue("transfer"),
		Compute:  sim.NewQueue("compute"),
		UM:       &Region{Name: "UM", bytes: sim.NewTracker("UM"), total: total},
		TM:       &Region{Name: "TM", bytes: sim.NewTracker("TM"), total: total},
		total:    total,
	}
}

// DiskLoad schedules a disk→UM DMA of n bytes that becomes ready at `ready`.
// It returns the transfer's start and completion times.
func (m *Machine) DiskLoad(ready units.Duration, n units.Bytes) (start, end units.Duration) {
	return m.Transfer.Acquire(ready, m.Dev.DiskBW.Time(n))
}

// RunKernel schedules a kernel of duration d (already including launch
// overhead) that becomes ready at `ready` on the compute queue.
func (m *Machine) RunKernel(ready, d units.Duration) (start, end units.Duration) {
	return m.Compute.Acquire(ready, d)
}

// PeakBytes returns the maximum combined UM+TM residency.
func (m *Machine) PeakBytes() units.Bytes { return units.Bytes(m.total.Peak()) }

// AverageBytes returns the time-weighted mean combined residency.
func (m *Machine) AverageBytes(horizon units.Duration) units.Bytes {
	return units.Bytes(m.total.Average(horizon))
}

// OOM reports whether the run's combined peak exceeded the device app limit.
func (m *Machine) OOM() bool { return m.PeakBytes() > m.Dev.AppLimit }

// Horizon returns the time of the last recorded event across queues and
// memory, i.e. the natural end of the run.
func (m *Machine) Horizon() units.Duration {
	h := units.MaxDuration(m.Transfer.FreeAt(), m.Compute.FreeAt())
	return units.MaxDuration(h, m.total.End())
}

// MemStats summarizes a run's memory behaviour.
type MemStats struct {
	Peak    units.Bytes
	Average units.Bytes
	UMPeak  units.Bytes
	TMPeak  units.Bytes
	OOM     bool
}

// Stats computes memory statistics over the given horizon (use Horizon()
// for the natural one).
func (m *Machine) Stats(horizon units.Duration) MemStats {
	return MemStats{
		Peak:    m.PeakBytes(),
		Average: m.AverageBytes(horizon),
		UMPeak:  m.UM.Peak(),
		TMPeak:  m.TM.Peak(),
		OOM:     m.OOM(),
	}
}

// MemorySeries exposes the combined residency step function for trace plots
// (Figure 6).
func (m *Machine) MemorySeries() []sim.Sample { return m.total.Series() }
