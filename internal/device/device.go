// Package device defines the mobile device profiles used in the evaluation
// (§5.1): OnePlus 12, OnePlus 11, Xiaomi Mi 6, and Google Pixel 8.
//
// Each profile captures what the simulator needs: the memory-hierarchy
// bandwidths of Figure 1(a), GPU compute throughput, RAM, and the share of
// RAM a single app's GPU workload may claim before the OS kills it. The
// OnePlus 12 numbers are the paper's (disk 1.5 GB/s, UM 65 GB/s, TM
// 172 GB/s, texture cache 560 GB/s); the other devices are scaled by their
// published storage (UFS generation), memory (LPDDR generation), and GPU
// specs.
package device

import (
	"fmt"
	"hash/fnv"

	"repro/internal/units"
)

// Device is a simulated mobile platform.
type Device struct {
	Name string
	SoC  string
	GPU  string

	RAM units.Bytes
	// AppLimit is the memory budget one app's inference workload may use
	// before the OS low-memory killer intervenes (RAM minus system reserve).
	AppLimit units.Bytes

	DiskBW  units.Bandwidth // storage → unified memory
	UMBW    units.Bandwidth // unified memory (CPU/GPU shared DRAM)
	TMBW    units.Bandwidth // texture memory subsystem
	CacheBW units.Bandwidth // texture L1/L2 cache

	Compute   units.Throughput // peak fp16 throughput
	SMs       int              // shader cores / streaming multiprocessors
	MaxTexDim int              // maximum texture width/height in texels

	// KernelLaunch is the fixed driver overhead of one kernel dispatch.
	KernelLaunch units.Duration
}

// OnePlus12 is the primary evaluation device (Snapdragon 8 Gen 3).
func OnePlus12() Device {
	return Device{
		Name: "OnePlus 12", SoC: "Snapdragon 8 Gen 3", GPU: "Adreno 750",
		RAM: 16 * units.GB, AppLimit: 13 * units.GB,
		DiskBW: units.GBps(1.5), UMBW: units.GBps(65),
		TMBW: units.GBps(172), CacheBW: units.GBps(560),
		Compute: units.GFLOPS(2800), SMs: 6, MaxTexDim: 16384,
		KernelLaunch: 0.012,
	}
}

// OnePlus11 uses the previous-generation Adreno 740 (Snapdragon 8 Gen 2).
func OnePlus11() Device {
	return Device{
		Name: "OnePlus 11", SoC: "Snapdragon 8 Gen 2", GPU: "Adreno 740",
		RAM: 16 * units.GB, AppLimit: 13 * units.GB,
		DiskBW: units.GBps(1.4), UMBW: units.GBps(60),
		TMBW: units.GBps(150), CacheBW: units.GBps(500),
		Compute: units.GFLOPS(2400), SMs: 6, MaxTexDim: 16384,
		KernelLaunch: 0.013,
	}
}

// Pixel8 is the Mali-based device (Tensor G3, Mali-G715 MP7, 8 GB).
func Pixel8() Device {
	return Device{
		Name: "Google Pixel 8", SoC: "Tensor G3", GPU: "Mali-G715 MP7",
		RAM: 8 * units.GB, AppLimit: 6 * units.GB,
		DiskBW: units.GBps(1.2), UMBW: units.GBps(51),
		TMBW: units.GBps(110), CacheBW: units.GBps(400),
		Compute: units.GFLOPS(1400), SMs: 7, MaxTexDim: 8192,
		KernelLaunch: 0.018,
	}
}

// XiaomiMi6 is the low-end device (Snapdragon 835, Adreno 540, 6 GB).
func XiaomiMi6() Device {
	return Device{
		Name: "Xiaomi Mi 6", SoC: "Snapdragon 835", GPU: "Adreno 540",
		RAM: 6 * units.GB, AppLimit: 3 * units.GB,
		DiskBW: units.GBps(0.7), UMBW: units.GBps(29),
		TMBW: units.GBps(60), CacheBW: units.GBps(180),
		Compute: units.GFLOPS(570), SMs: 4, MaxTexDim: 8192,
		KernelLaunch: 0.03,
	}
}

// All returns the four evaluation devices, primary first.
func All() []Device {
	return []Device{OnePlus12(), OnePlus11(), XiaomiMi6(), Pixel8()}
}

// Portability returns the three secondary devices of Figure 10.
func Portability() []Device {
	return []Device{OnePlus11(), XiaomiMi6(), Pixel8()}
}

// Fingerprint returns a short stable hash over the complete device
// profile. Artifacts that are only meaningful for one device — condition
// traces, per-device benchmark archives — record it so a consumer can
// refuse profiles that merely share a name (the same handshake the sweep
// coordinator performs against its workers).
func (d Device) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%g|%g|%g|%g|%g|%d|%d|%g",
		d.Name, d.SoC, d.GPU, int64(d.RAM), int64(d.AppLimit),
		float64(d.DiskBW), float64(d.UMBW), float64(d.TMBW), float64(d.CacheBW),
		float64(d.Compute), d.SMs, d.MaxTexDim, float64(d.KernelLaunch))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ByName looks up an evaluation device by its Name field ("OnePlus 12",
// "Google Pixel 8", …). Request-driven callers — the plan server, CLIs —
// address the device matrix by name; the second return is false for names
// outside the evaluation set.
func ByName(name string) (Device, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}
