package device

import (
	"testing"

	"repro/internal/units"
)

func TestOnePlus12MatchesFigure1(t *testing.T) {
	d := OnePlus12()
	// Figure 1(a) bandwidths: 1.5, 65, 172, 560 GB/s.
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"disk", d.DiskBW.GBpsValue(), 1.5},
		{"um", d.UMBW.GBpsValue(), 65},
		{"tm", d.TMBW.GBpsValue(), 172},
		{"cache", d.CacheBW.GBpsValue(), 560},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s bandwidth = %v GB/s, want %v", c.name, c.got, c.want)
		}
	}
	if d.RAM != 16*units.GB {
		t.Errorf("RAM = %v, want 16 GB", d.RAM)
	}
}

func TestHierarchyOrdering(t *testing.T) {
	// On every device: disk < UM < TM < cache — the premise of streaming.
	for _, d := range All() {
		if !(d.DiskBW < d.UMBW && d.UMBW < d.TMBW && d.TMBW < d.CacheBW) {
			t.Errorf("%s: bandwidth hierarchy not monotone: %v %v %v %v",
				d.Name, d.DiskBW, d.UMBW, d.TMBW, d.CacheBW)
		}
		if d.AppLimit >= d.RAM {
			t.Errorf("%s: app limit %v must be below RAM %v", d.Name, d.AppLimit, d.RAM)
		}
		if d.Compute <= 0 || d.SMs <= 0 || d.MaxTexDim <= 0 || d.KernelLaunch <= 0 {
			t.Errorf("%s: non-positive capability fields", d.Name)
		}
	}
}

func TestDeviceRelativeStrength(t *testing.T) {
	// The primary device dominates the others in compute and bandwidth.
	op12 := OnePlus12()
	for _, d := range Portability() {
		if d.Compute > op12.Compute {
			t.Errorf("%s compute %v exceeds OnePlus 12 %v", d.Name, d.Compute, op12.Compute)
		}
		if d.TMBW > op12.TMBW {
			t.Errorf("%s TM bandwidth exceeds OnePlus 12", d.Name)
		}
	}
	// Mi 6 (6 GB) must have the smallest app limit — Figure 10's OOM driver.
	mi6 := XiaomiMi6()
	for _, d := range All() {
		if d.AppLimit < mi6.AppLimit {
			t.Errorf("%s app limit below Mi 6's", d.Name)
		}
	}
}

func TestAllAndPortabilityCounts(t *testing.T) {
	if len(All()) != 4 {
		t.Errorf("All() = %d devices, want 4", len(All()))
	}
	if len(Portability()) != 3 {
		t.Errorf("Portability() = %d devices, want 3", len(Portability()))
	}
	if All()[0].Name != "OnePlus 12" {
		t.Error("primary device must be first")
	}
}
