package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
)

// Fingerprint returns a stable content hash of the graph: name, dtype, and
// every node's name, inputs, and parts in execution order. Two graphs built
// the same way hash identically across processes, so the hash is usable as
// a persistent cache key. Mutating the graph (Add, Replace) changes it.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	writeString(h, g.Name)
	writeInt(h, int64(g.DType))
	writeInt(h, int64(len(g.nodes)))
	for _, n := range g.nodes {
		writeInt(h, int64(n.ID))
		writeString(h, n.Name)
		writeInt(h, int64(len(n.Inputs)))
		for _, in := range n.Inputs {
			writeInt(h, int64(in))
		}
		writeInt(h, int64(len(n.Parts)))
		for _, p := range n.Parts {
			writeInt(h, int64(p.Kind))
			writeInt(h, int64(p.Weight))
			writeInt(h, int64(p.InBytes))
			writeInt(h, int64(p.OutBytes))
			writeInt(h, int64(p.MACs))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeString hashes a length-prefixed string, so concatenations of
// adjacent fields cannot collide.
func writeString(w io.Writer, s string) {
	writeInt(w, int64(len(s)))
	io.WriteString(w, s)
}

func writeInt(w io.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:])
}
