package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/units"
)

func linear(name string, weight units.Bytes, macs units.MACs) Part {
	return Part{Kind: MatMul, Weight: weight, InBytes: 1024, OutBytes: 1024, MACs: macs}
}

func TestBuildAndStats(t *testing.T) {
	g := New("toy", tensor.FP16)
	a := g.Op("embed", Part{Kind: Embedding, Weight: 2048, InBytes: 64, OutBytes: 1024})
	b := g.Op("fc1", linear("fc1", 4096, 1000))
	c := g.Add("add", []NodeID{a, b}, Part{Kind: Add, InBytes: 1024, OutBytes: 1024})
	if c != 2 {
		t.Fatalf("ids not sequential: got %d", c)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalWeightBytes() != 6144 {
		t.Errorf("weights = %d, want 6144", g.TotalWeightBytes())
	}
	if g.Params() != 3072 {
		t.Errorf("params = %d, want 3072 (fp16)", g.Params())
	}
	if g.TotalMACs() != 1000 {
		t.Errorf("macs = %d, want 1000", g.TotalMACs())
	}
	if got := g.WeightedNodes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("weighted nodes = %v", got)
	}
}

func TestForwardInputPanics(t *testing.T) {
	g := New("bad", tensor.FP16)
	defer func() {
		if recover() == nil {
			t.Fatal("forward reference should panic")
		}
	}()
	g.Add("x", []NodeID{0}, Part{Kind: Add}) // self-reference at build time
}

func TestNoPartsPanics(t *testing.T) {
	g := New("bad", tensor.FP16)
	defer func() {
		if recover() == nil {
			t.Fatal("no parts should panic")
		}
	}()
	g.Add("x", nil)
}

func TestNodeAggregates(t *testing.T) {
	n := &Node{Parts: []Part{
		{Kind: MatMul, Weight: 100, InBytes: 10, OutBytes: 20, MACs: 1000},
		{Kind: Add, InBytes: 20, OutBytes: 20, MACs: 5},
		{Kind: GeLU, InBytes: 20, OutBytes: 30, MACs: 10},
	}}
	if !n.Fused() {
		t.Error("node with 3 parts should be fused")
	}
	if n.Kind() != MatMul {
		t.Errorf("dominant kind = %v, want MatMul", n.Kind())
	}
	if n.Weight() != 100 || n.MACs() != 1015 {
		t.Errorf("weight/macs = %d/%d", n.Weight(), n.MACs())
	}
	if n.OutBytes() != 30 {
		t.Errorf("out bytes = %d, want 30 (last part)", n.OutBytes())
	}
	if n.InBytes() != 20 {
		t.Errorf("in bytes = %d, want 20 (max part input)", n.InBytes())
	}
}

func TestReplaceChain(t *testing.T) {
	g := New("r", tensor.FP16)
	a := g.Op("a", Part{Kind: Conv, Weight: 10})
	fused := g.Op("fused", Part{Kind: MatMul, Weight: 20})
	g.Add("consumer", []NodeID{a, fused}, Part{Kind: Add})
	g.Add("tail", []NodeID{2}, Part{Kind: ReLU})

	g.Replace(fused, []*Node{
		{Name: "mm", Parts: []Part{{Kind: MatMul, Weight: 20}}},
		{Name: "gelu", Parts: []Part{{Kind: GeLU}}},
	})

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("len = %d, want 5", g.Len())
	}
	// consumer (now id 3) must reference a (0) and the LAST replacement (2).
	cons := g.Node(3)
	if cons.Name != "consumer" || cons.Inputs[0] != 0 || cons.Inputs[1] != 2 {
		t.Errorf("consumer inputs = %v, want [0 2]", cons.Inputs)
	}
	// The inserted gelu consumes the inserted matmul.
	if g.Node(2).Inputs[0] != 1 {
		t.Errorf("gelu input = %v, want [1]", g.Node(2).Inputs)
	}
	// tail (now 4) references consumer (3).
	if g.Node(4).Inputs[0] != 3 {
		t.Errorf("tail input = %v, want [3]", g.Node(4).Inputs)
	}
}

func TestReplacePreservesTotalsProperty(t *testing.T) {
	// Property: replacing any node with a split of its own parts preserves
	// total weights and MACs and keeps the graph valid.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30)
		wantW, wantM := g.TotalWeightBytes(), g.TotalMACs()

		// Pick a fused node if any; otherwise nothing to split.
		var target *Node
		for _, n := range g.Nodes() {
			if n.Fused() {
				target = n
				break
			}
		}
		if target == nil {
			return true
		}
		k := len(target.Parts) / 2
		g.Replace(target.ID, []*Node{
			{Name: "s1", Parts: target.Parts[:k]},
			{Name: "s2", Parts: target.Parts[k:]},
		})
		if g.Validate() != nil {
			return false
		}
		return g.TotalWeightBytes() == wantW && g.TotalMACs() == wantM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a random valid graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New("rand", tensor.FP16)
	kinds := []OpKind{MatMul, Conv, Add, ReLU, GeLU, Softmax, LayerNorm, Attention}
	for i := 0; i < n; i++ {
		nparts := 1 + rng.Intn(3)
		parts := make([]Part, nparts)
		for j := range parts {
			parts[j] = Part{
				Kind:     kinds[rng.Intn(len(kinds))],
				Weight:   units.Bytes(rng.Intn(10000)),
				InBytes:  units.Bytes(1 + rng.Intn(4096)),
				OutBytes: units.Bytes(1 + rng.Intn(4096)),
				MACs:     units.MACs(rng.Intn(100000)),
			}
		}
		var inputs []NodeID
		if i > 0 {
			inputs = append(inputs, NodeID(rng.Intn(i)))
			if rng.Intn(3) == 0 {
				inputs = append(inputs, NodeID(rng.Intn(i)))
			}
		}
		g.Add("n", inputs, parts...)
	}
	return g
}

func TestOpKindString(t *testing.T) {
	if MatMul.String() != "MatMul" || LayerNorm.String() != "LayerNorm" {
		t.Error("op kind names wrong")
	}
	if OpKind(-1).Valid() || OpKind(999).Valid() {
		t.Error("invalid kinds reported valid")
	}
}
