// Package graph represents lowered DNN computational graphs.
//
// A model is a directed acyclic graph of low-level operator nodes (MatMul,
// Conv, LayerNorm, ...) in a fixed linear execution order, as in §3.1 of the
// paper: node IDs are layer indices 1..N up to a zero base, edges always
// point from lower to higher index, and each weight tensor is owned by the
// node that consumes it (so the first-consumer index i_w of §3.1 is simply
// the owning node's ID).
package graph

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/units"
)

// OpKind identifies a lowered operator type.
type OpKind int

// Operator kinds. The set covers the models in Table 6: transformer blocks
// (MatMul, Attention, Softmax, LayerNorm, GeLU, Add, Embedding), CNN blocks
// (Conv, DepthwiseConv, BatchNorm, ReLU, Pool, Upsample), and layout ops
// that SmartMem-style planning eliminates (Reshape, Transpose, Concat).
const (
	MatMul OpKind = iota
	Conv
	DepthwiseConv
	Attention
	Embedding
	Add
	Mul
	ReLU
	GeLU
	SiLU
	Softmax
	LayerNorm
	GroupNorm
	BatchNorm
	Reshape
	Transpose
	Concat
	Pool
	Upsample
	numOpKinds
)

var opKindNames = [...]string{
	MatMul: "MatMul", Conv: "Conv", DepthwiseConv: "DepthwiseConv",
	Attention: "Attention", Embedding: "Embedding", Add: "Add", Mul: "Mul",
	ReLU: "ReLU", GeLU: "GeLU", SiLU: "SiLU", Softmax: "Softmax",
	LayerNorm: "LayerNorm", GroupNorm: "GroupNorm", BatchNorm: "BatchNorm",
	Reshape: "Reshape", Transpose: "Transpose", Concat: "Concat",
	Pool: "Pool", Upsample: "Upsample",
}

// String names the operator kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// Valid reports whether k is a known operator kind.
func (k OpKind) Valid() bool { return k >= 0 && k < numOpKinds }

// NodeID indexes a node within its graph; it equals the layer's position in
// the linear execution order.
type NodeID int

// Part is one primitive operator folded into a (possibly fused) node. An
// unfused node has exactly one part. The fusion pass merges parts; the
// adaptive un-fusion pass (§4.3) splits them back out.
type Part struct {
	Kind     OpKind
	Weight   units.Bytes // weight tensor bytes consumed by this part (0 = none)
	InBytes  units.Bytes // activation input volume
	OutBytes units.Bytes // activation output volume
	MACs     units.MACs
}

// Node is one schedulable kernel in the lowered graph.
type Node struct {
	ID     NodeID
	Name   string
	Inputs []NodeID // producing nodes; every entry is < ID
	Parts  []Part   // primitive ops in execution order within the kernel
}

// Kind returns the dominant operator kind: the part with the most MACs,
// breaking ties toward the first part.
func (n *Node) Kind() OpKind {
	best := 0
	for i := 1; i < len(n.Parts); i++ {
		if n.Parts[i].MACs > n.Parts[best].MACs {
			best = i
		}
	}
	return n.Parts[best].Kind
}

// Fused reports whether the node holds more than one primitive op.
func (n *Node) Fused() bool { return len(n.Parts) > 1 }

// Weight returns the total weight bytes the node consumes.
func (n *Node) Weight() units.Bytes {
	var total units.Bytes
	for _, p := range n.Parts {
		total += p.Weight
	}
	return total
}

// InBytes returns the activation input volume of the node: the first part's
// input plus any weightless side inputs of later parts are approximated by
// the maximum part input (intermediate tensors stay in registers/local
// memory after fusion).
func (n *Node) InBytes() units.Bytes {
	var max units.Bytes
	for _, p := range n.Parts {
		if p.InBytes > max {
			max = p.InBytes
		}
	}
	return max
}

// OutBytes returns the node's activation output volume (the last part's).
func (n *Node) OutBytes() units.Bytes {
	if len(n.Parts) == 0 {
		return 0
	}
	return n.Parts[len(n.Parts)-1].OutBytes
}

// MACs returns the node's total multiply-accumulate count.
func (n *Node) MACs() units.MACs {
	var total units.MACs
	for _, p := range n.Parts {
		total += p.MACs
	}
	return total
}

// Graph is a lowered model in linear execution order.
type Graph struct {
	Name  string
	DType tensor.DType

	nodes []*Node
}

// New returns an empty graph using the given weight dtype.
func New(name string, dt tensor.DType) *Graph {
	return &Graph{Name: name, DType: dt}
}

// Add appends a node, assigning the next NodeID. Inputs must reference
// already-added nodes. A node with no parts or an invalid kind panics:
// model builders are trusted, and failing fast localizes builder bugs.
func (g *Graph) Add(name string, inputs []NodeID, parts ...Part) NodeID {
	id := NodeID(len(g.nodes))
	if len(parts) == 0 {
		panic(fmt.Sprintf("graph %s: node %q has no parts", g.Name, name))
	}
	for _, p := range parts {
		if !p.Kind.Valid() {
			panic(fmt.Sprintf("graph %s: node %q has invalid kind %d", g.Name, name, int(p.Kind)))
		}
		if p.Weight < 0 || p.InBytes < 0 || p.OutBytes < 0 || p.MACs < 0 {
			panic(fmt.Sprintf("graph %s: node %q has negative sizes", g.Name, name))
		}
	}
	for _, in := range inputs {
		if in < 0 || in >= id {
			panic(fmt.Sprintf("graph %s: node %q input %d out of range [0,%d)", g.Name, name, in, id))
		}
	}
	n := &Node{ID: id, Name: name, Inputs: append([]NodeID(nil), inputs...), Parts: append([]Part(nil), parts...)}
	g.nodes = append(g.nodes, n)
	return id
}

// Op is shorthand for Add with a single part and the previous node as input
// (or no input for the first node) — the common sequential-builder case.
func (g *Graph) Op(name string, p Part) NodeID {
	var inputs []NodeID
	if len(g.nodes) > 0 {
		inputs = []NodeID{NodeID(len(g.nodes) - 1)}
	}
	return g.Add(name, inputs, p)
}

// Len returns the number of nodes (the N of §3.1).
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("graph %s: node id %d out of range", g.Name, id))
	}
	return g.nodes[id]
}

// Nodes returns the nodes in execution order. The slice is shared; callers
// must not mutate it structurally (use Replace for graph surgery).
func (g *Graph) Nodes() []*Node { return g.nodes }

// Validate checks structural invariants: IDs match positions, inputs point
// backwards (acyclicity), parts are well formed.
func (g *Graph) Validate() error {
	for i, n := range g.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("graph %s: node at %d has ID %d", g.Name, i, n.ID)
		}
		if len(n.Parts) == 0 {
			return fmt.Errorf("graph %s: node %d has no parts", g.Name, i)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= NodeID(i) {
				return fmt.Errorf("graph %s: node %d has forward/self input %d", g.Name, i, in)
			}
		}
		for _, p := range n.Parts {
			if !p.Kind.Valid() {
				return fmt.Errorf("graph %s: node %d has invalid kind", g.Name, i)
			}
		}
	}
	return nil
}

// Replace substitutes the node at id with the given replacement nodes,
// renumbering all subsequent nodes and rewriting their input references.
// Replacement nodes must form a chain: the first inherits the original
// inputs, each later one consumes its predecessor. References to the
// original node are rewired to the last replacement. Used by adaptive
// un-fusion (§4.3).
func (g *Graph) Replace(id NodeID, replacements []*Node) {
	if len(replacements) == 0 {
		panic("graph: Replace with no replacements")
	}
	orig := g.Node(id)
	shift := NodeID(len(replacements) - 1)

	rewired := make([]*Node, 0, len(g.nodes)+int(shift))
	rewired = append(rewired, g.nodes[:id]...)
	for i, r := range replacements {
		nn := &Node{ID: id + NodeID(i), Name: r.Name, Parts: r.Parts}
		if i == 0 {
			nn.Inputs = append([]NodeID(nil), orig.Inputs...)
		} else {
			nn.Inputs = []NodeID{id + NodeID(i) - 1}
		}
		rewired = append(rewired, nn)
	}
	for _, n := range g.nodes[id+1:] {
		nn := &Node{ID: n.ID + shift, Name: n.Name, Parts: n.Parts}
		nn.Inputs = make([]NodeID, len(n.Inputs))
		for j, in := range n.Inputs {
			switch {
			case in < id:
				nn.Inputs[j] = in
			case in == id:
				nn.Inputs[j] = id + shift // last replacement
			default:
				nn.Inputs[j] = in + shift
			}
		}
		rewired = append(rewired, nn)
	}
	g.nodes = rewired
}

// Clone returns a deep copy of the graph; mutating one copy (e.g. via
// Replace) leaves the other untouched.
func (g *Graph) Clone() *Graph {
	out := New(g.Name, g.DType)
	out.nodes = make([]*Node, len(g.nodes))
	for i, n := range g.nodes {
		out.nodes[i] = &Node{
			ID:     n.ID,
			Name:   n.Name,
			Inputs: append([]NodeID(nil), n.Inputs...),
			Parts:  append([]Part(nil), n.Parts...),
		}
	}
	return out
}

// TotalWeightBytes sums weight bytes over all nodes.
func (g *Graph) TotalWeightBytes() units.Bytes {
	var total units.Bytes
	for _, n := range g.nodes {
		total += n.Weight()
	}
	return total
}

// TotalMACs sums MACs over all nodes.
func (g *Graph) TotalMACs() units.MACs {
	var total units.MACs
	for _, n := range g.nodes {
		total += n.MACs()
	}
	return total
}

// Params returns the parameter count implied by weight bytes and dtype.
func (g *Graph) Params() int64 {
	return int64(g.TotalWeightBytes() / g.DType.Size())
}

// WeightedNodes returns the IDs of nodes that consume weights, in order.
func (g *Graph) WeightedNodes() []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Weight() > 0 {
			ids = append(ids, n.ID)
		}
	}
	return ids
}
