// Package xgb implements gradient-boosted regression trees from scratch:
// the stand-in for the XGBoost latency model of §4.2 (Figure 4).
//
// It is a deliberately small but honest GBT: squared-error loss, exact
// greedy split search with variance-reduction gain, L2-regularized leaf
// values, shrinkage, optional row subsampling, and depth/min-leaf limits.
// Training is deterministic for a fixed seed.
package xgb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Params configures training.
type Params struct {
	Trees        int     // number of boosting rounds
	MaxDepth     int     // maximum tree depth (root = depth 0)
	LearningRate float64 // shrinkage per tree
	MinLeaf      int     // minimum samples per leaf
	Lambda       float64 // L2 regularization on leaf values
	Subsample    float64 // row subsampling fraction (0 or 1 = off)
	Seed         int64
}

// DefaultParams returns the configuration used by the load-capacity
// profiler: enough capacity for the kernel-latency surface, strong enough
// regularization to stay smooth.
func DefaultParams() Params {
	return Params{Trees: 120, MaxDepth: 5, LearningRate: 0.12, MinLeaf: 4, Lambda: 1.0, Seed: 1}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right int32 // child indices within the tree's node slice
	value       float64
}

type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained ensemble.
type Model struct {
	base     float64
	trees    []*tree
	shrink   float64
	features int
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict evaluates the ensemble on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.features {
		panic(fmt.Sprintf("xgb: predict with %d features, model has %d", len(x), m.features))
	}
	out := m.base
	for _, t := range m.trees {
		out += m.shrink * t.predict(x)
	}
	return out
}

// Train fits a GBT model to (X, y).
func Train(X [][]float64, y []float64, p Params) (*Model, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("xgb: empty or mismatched dataset")
	}
	nf := len(X[0])
	for i, row := range X {
		if len(row) != nf {
			return nil, fmt.Errorf("xgb: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	if p.Trees <= 0 || p.MaxDepth < 0 || p.LearningRate <= 0 {
		return nil, errors.New("xgb: invalid params")
	}
	if p.MinLeaf < 1 {
		p.MinLeaf = 1
	}

	base := mean(y)
	m := &Model{base: base, shrink: p.LearningRate, features: nf}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = base
	}
	resid := make([]float64, len(y))
	rng := rand.New(rand.NewSource(p.Seed))

	all := make([]int, len(y))
	for i := range all {
		all[i] = i
	}

	for round := 0; round < p.Trees; round++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
		}
		rows := all
		if p.Subsample > 0 && p.Subsample < 1 {
			k := int(p.Subsample * float64(len(all)))
			if k < p.MinLeaf {
				k = p.MinLeaf
			}
			rows = samples(rng, len(all), k)
		}
		t := growTree(X, resid, rows, p)
		m.trees = append(m.trees, t)
		for i := range y {
			pred[i] += p.LearningRate * t.predict(X[i])
		}
	}
	return m, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func samples(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n)
	return perm[:k]
}

// growTree builds one regression tree on the residuals of the given rows.
func growTree(X [][]float64, resid []float64, rows []int, p Params) *tree {
	t := &tree{}
	t.build(X, resid, rows, 0, p)
	return t
}

// build appends the subtree for rows and returns its node index.
func (t *tree) build(X [][]float64, resid []float64, rows []int, depth int, p Params) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1})

	// Regularized leaf value: sum(resid) / (count + lambda).
	sum := 0.0
	for _, r := range rows {
		sum += resid[r]
	}
	leafValue := sum / (float64(len(rows)) + p.Lambda)
	t.nodes[idx].value = leafValue

	if depth >= p.MaxDepth || len(rows) < 2*p.MinLeaf {
		return idx
	}
	feat, thr, gain := bestSplit(X, resid, rows, p)
	if gain <= 1e-12 {
		return idx
	}

	var left, right []int
	for _, r := range rows {
		if X[r][feat] <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < p.MinLeaf || len(right) < p.MinLeaf {
		return idx
	}
	t.nodes[idx].feature = feat
	t.nodes[idx].threshold = thr
	t.nodes[idx].left = t.build(X, resid, left, depth+1, p)
	t.nodes[idx].right = t.build(X, resid, right, depth+1, p)
	return idx
}

// bestSplit runs exact greedy split search: for every feature, sort rows by
// value and scan prefix sums, scoring the regularized variance-reduction
// gain sumL²/(nL+λ) + sumR²/(nR+λ) − sum²/(n+λ).
func bestSplit(X [][]float64, resid []float64, rows []int, p Params) (feat int, thr, gain float64) {
	nf := len(X[rows[0]])
	total := 0.0
	for _, r := range rows {
		total += resid[r]
	}
	n := float64(len(rows))
	parent := total * total / (n + p.Lambda)
	feat = -1

	order := make([]int, len(rows))
	for f := 0; f < nf; f++ {
		copy(order, rows)
		sort.Slice(order, func(i, j int) bool { return X[order[i]][f] < X[order[j]][f] })

		sumL := 0.0
		for i := 0; i < len(order)-1; i++ {
			sumL += resid[order[i]]
			// Can't split between equal feature values.
			if X[order[i]][f] == X[order[i+1]][f] {
				continue
			}
			nL := float64(i + 1)
			nR := n - nL
			if int(nL) < p.MinLeaf || int(nR) < p.MinLeaf {
				continue
			}
			sumR := total - sumL
			g := sumL*sumL/(nL+p.Lambda) + sumR*sumR/(nR+p.Lambda) - parent
			if g > gain {
				gain = g
				feat = f
				thr = (X[order[i]][f] + X[order[i+1]][f]) / 2
			}
		}
	}
	return feat, thr, gain
}

// MSE returns the mean squared error of the model on a dataset.
func (m *Model) MSE(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	s := 0.0
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		s += d * d
	}
	return s / float64(len(X))
}
