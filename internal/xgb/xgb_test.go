package xgb

import (
	"math"
	"math/rand"
	"testing"
)

// synth generates a nonlinear regression dataset resembling the kernel
// latency surface: latency grows with size and ratio, with an interaction.
func synth(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		size := rng.Float64() * 10
		ratio := rng.Float64() * 2
		class := float64(rng.Intn(3))
		X[i] = []float64{class, size, ratio}
		y[i] = 0.5*size + (0.2+0.8*class)*ratio*ratio + 0.1*size*ratio
	}
	return X, y
}

func TestTrainReducesError(t *testing.T) {
	X, y := synth(600, 1)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: predicting the mean.
	mu := 0.0
	for _, v := range y {
		mu += v
	}
	mu /= float64(len(y))
	varY := 0.0
	for _, v := range y {
		varY += (v - mu) * (v - mu)
	}
	varY /= float64(len(y))

	mse := m.MSE(X, y)
	if mse > 0.05*varY {
		t.Errorf("train MSE %v must be <5%% of variance %v (R^2 > 0.95)", mse, varY)
	}
}

func TestGeneralizes(t *testing.T) {
	X, y := synth(800, 2)
	Xt, yt := synth(200, 3)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mu := 0.0
	for _, v := range yt {
		mu += v
	}
	mu /= float64(len(yt))
	varY := 0.0
	for _, v := range yt {
		varY += (v - mu) * (v - mu)
	}
	varY /= float64(len(yt))
	if mse := m.MSE(Xt, yt); mse > 0.15*varY {
		t.Errorf("test MSE %v too high vs variance %v", mse, varY)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	X, y := synth(300, 4)
	p := DefaultParams()
	p.Subsample = 0.8
	m1, err1 := Train(X, y, p)
	m2, err2 := Train(X, y, p)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	probe := []float64{1, 5, 1}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Error("same seed must give identical models")
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	m, err := Train(X, y, Params{Trees: 10, MaxDepth: 3, LearningRate: 0.3, MinLeaf: 1, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2.5}); math.Abs(got-7) > 0.5 {
		t.Errorf("constant target: predict = %v, want ~7", got)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Error("empty dataset must error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("mismatched X/y must error")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("ragged rows must error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, Params{Trees: 0, LearningRate: 0.1}); err == nil {
		t.Error("zero trees must error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, Params{Trees: 1, LearningRate: 0}); err == nil {
		t.Error("zero learning rate must error")
	}
}

func TestPredictWrongWidthPanics(t *testing.T) {
	X, y := synth(100, 5)
	m, _ := Train(X, y, Params{Trees: 5, MaxDepth: 2, LearningRate: 0.3, MinLeaf: 1, Lambda: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong feature width must panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestMonotoneSignal(t *testing.T) {
	// A clean monotone signal must yield monotone-ish predictions across a
	// coarse probe grid.
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := float64(i) / float64(n) * 10
		X[i] = []float64{v}
		y[i] = 3 * v
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for v := 0.5; v < 10; v += 1.0 {
		got := m.Predict([]float64{v})
		if got < prev-0.5 {
			t.Errorf("prediction dropped at %v: %v < %v", v, got, prev)
		}
		prev = got
	}
}

func TestMinLeafRespected(t *testing.T) {
	X, y := synth(50, 6)
	p := DefaultParams()
	p.MinLeaf = 25 // with 50 rows, only the root split is possible
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every tree has at most 3 nodes (root + 2 leaves).
	for _, tr := range m.trees {
		if len(tr.nodes) > 3 {
			t.Fatalf("tree has %d nodes despite MinLeaf=25", len(tr.nodes))
		}
	}
}

func TestNumTrees(t *testing.T) {
	X, y := synth(100, 7)
	p := DefaultParams()
	p.Trees = 17
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 17 {
		t.Errorf("NumTrees = %d, want 17", m.NumTrees())
	}
}
