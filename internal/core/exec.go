package core

import (
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/opg"
	"repro/internal/units"
)

// ExecResult is the raw timing outcome of one model execution on a machine.
type ExecResult struct {
	Start   units.Duration
	InitEnd units.Duration // preload phase complete
	ExecEnd units.Duration // last kernel complete

	Kernels   int
	Stalls    int
	StallTime units.Duration
}

// ExecuteOn runs a prepared model on the given machine starting at `at`.
// All weight and activation residency is released by the end of the run,
// so consecutive calls on one machine model FIFO multi-DNN swapping.
//
// Execution follows the overlap plan:
//
//   - Preloaded weights (the set W) are disk-loaded and transformed during
//     the init phase; their texture copies persist until the run ends.
//   - A streamed weight's disk load is issued when layer z_w becomes ready;
//     its chunks are transformed by the layers the plan assigned, embedded
//     in those kernels (§4.4) or as dedicated transform kernels when kernel
//     rewriting is disabled.
//   - A kernel that must transform chunks whose disk load has not finished
//     stalls, which is how under-provisioned plans show up as latency.
func (e *Engine) ExecuteOn(m *gpusim.Machine, prep *Prepared, at units.Duration) ExecResult {
	g, plan := prep.Graph, prep.Plan
	res := ExecResult{Start: at}

	// Index the plan.
	loadsAt := map[graph.NodeID][]*opg.WeightPlan{} // z_w → weights
	type chunkWork struct {
		w     *opg.WeightPlan
		bytes units.Bytes
	}
	transformsAt := map[graph.NodeID][]chunkWork{} // layer → embedded work
	remainingTransforms := map[graph.NodeID]int{}  // weight → pending assignments
	var preloads []*opg.WeightPlan
	for i := range plan.Weights {
		w := &plan.Weights[i]
		if w.Preload {
			preloads = append(preloads, w)
			continue
		}
		loadsAt[w.LoadStart] = append(loadsAt[w.LoadStart], w)
		remainingTransforms[w.Weight] = len(w.Transforms)
		remaining := w.Bytes
		for _, a := range w.Transforms {
			b := units.Bytes(a.Chunks) * plan.ChunkSize
			if b > remaining {
				b = remaining
			}
			remaining -= b
			transformsAt[a.Layer] = append(transformsAt[a.Layer], chunkWork{w: w, bytes: b})
		}
	}

	// Last consumer of each node's output (self if unconsumed).
	lastConsumer := make([]graph.NodeID, g.Len())
	for _, n := range g.Nodes() {
		lastConsumer[n.ID] = n.ID
		for _, in := range n.Inputs {
			if n.ID > lastConsumer[in] {
				lastConsumer[in] = n.ID
			}
		}
	}

	// --- Init phase: the preload set W. ---
	initEnd := at
	type openHold struct {
		start units.Duration
		bytes units.Bytes
	}
	tmPersistent := make([]openHold, 0, len(preloads)) // closed at exec end
	for _, w := range preloads {
		ls, le := m.DiskLoad(at, w.Bytes)
		_, te := m.RunKernel(le, e.cm.TransformTime(w.Bytes))
		m.UM.Hold(ls, te, w.Bytes)
		tmPersistent = append(tmPersistent, openHold{start: te, bytes: w.Bytes})
		if te > initEnd {
			initEnd = te
		}
	}
	res.InitEnd = initEnd

	// --- Execution phase. ---
	layout := kernels.Texture25D
	done := make([]units.Duration, g.Len())
	loadDone := map[graph.NodeID]units.Duration{} // weight → disk complete
	umOpen := map[graph.NodeID]units.Duration{}   // weight → UM hold start

	for _, n := range g.Nodes() {
		ready := initEnd
		for _, in := range n.Inputs {
			if done[in] > ready {
				ready = done[in]
			}
		}

		// Issue disk loads whose z_w is this layer.
		for _, w := range loadsAt[n.ID] {
			ls, le := m.DiskLoad(ready, w.Bytes)
			loadDone[w.Weight] = le
			umOpen[w.Weight] = ls
		}

		// Gather embedded transform work and its disk gating.
		var extra units.Bytes
		needBy := ready
		work := transformsAt[n.ID]
		for _, cw := range work {
			extra += cw.bytes
			if ld := loadDone[cw.w.Weight]; ld > needBy {
				needBy = ld
			}
		}
		if needBy > ready {
			res.Stalls++
			res.StallTime += needBy - ready
		}

		var ks, ke units.Duration
		if e.opts.KernelRewriting || extra == 0 {
			dur := e.cm.PipelinedTime(n, layout, extra)
			if extra == 0 {
				dur = e.cm.KernelTime(n, layout)
			}
			ks, ke = m.RunKernel(needBy, dur)
		} else {
			// Dedicated transform kernels ahead of the main kernel.
			for _, cw := range work {
				tReady := ready
				if ld := loadDone[cw.w.Weight]; ld > tReady {
					tReady = ld
				}
				m.RunKernel(tReady, e.cm.TransformTime(cw.bytes))
			}
			ks, ke = m.RunKernel(ready, e.cm.KernelTime(n, layout))
		}
		_ = ks
		res.Kernels++
		done[n.ID] = ke

		// Transformed chunks land in the streaming arena (accounted as the
		// high-water-mark hold below); the weight's UM copy releases once
		// its last chunk is transformed.
		for _, cw := range work {
			remainingTransforms[cw.w.Weight]--
			if remainingTransforms[cw.w.Weight] == 0 {
				m.UM.Hold(umOpen[cw.w.Weight], ke, cw.w.Bytes)
				delete(umOpen, cw.w.Weight)
			}
		}
	}

	execEnd := initEnd
	for _, d := range done {
		if d > execEnd {
			execEnd = d
		}
	}

	// Close persistent and remaining holds at execution end.
	for _, h := range tmPersistent {
		m.TM.Hold(h.start, execEnd, h.bytes)
	}
	for w, start := range umOpen {
		// Loads issued but never fully transformed would be a plan bug;
		// close them at exec end so the accounting still balances.
		m.UM.Hold(start, execEnd, plannedBytes(plan, w))
	}

	// Activations: output resident from production to last consumption.
	for _, n := range g.Nodes() {
		end := done[lastConsumer[n.ID]]
		if end <= done[n.ID] {
			end = done[n.ID] + 0.001
		}
		m.TM.Hold(done[n.ID], end, n.OutBytes())
	}

	// Runtime footprint: command queues, compiled pipelines, and allocator
	// metadata held for the whole run, plus the streaming arena — texture
	// staging sized at the plan's in-flight high-water mark (≤ M_peak by
	// C2); arenas do not shrink mid-run.
	m.UM.Hold(at, execEnd, RuntimeFootprint)
	m.TM.Hold(initEnd, execEnd, plan.MaxInflightBytes(g.Len()))

	res.ExecEnd = execEnd
	return res
}

// RuntimeFootprint is the flat memory cost of the FlashMem runtime itself
// (queues, compiled kernels, allocator metadata).
const RuntimeFootprint = 48 * units.MB

func plannedBytes(p *opg.Plan, w graph.NodeID) units.Bytes {
	if wp, ok := p.ByWeight(w); ok {
		return wp.Bytes
	}
	return 0
}
