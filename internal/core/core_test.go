package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/tensor"
	"repro/internal/units"
)

// fastOptions keeps solver budgets small for tests.
func fastOptions(dev device.Device) Options {
	o := DefaultOptions(dev)
	o.Config.SolveTimeout = 50 * time.Millisecond
	o.Config.MaxBranches = 2000
	o.Fusion.Rounds = 1
	return o
}

func smallTransformer() *graph.Graph {
	g := graph.New("small-tf", tensor.FP16)
	mb := units.MB
	for b := 0; b < 8; b++ {
		g.Op("ln1", graph.Part{Kind: graph.LayerNorm, Weight: 4 * units.KB, InBytes: mb, OutBytes: mb, MACs: 1e6})
		g.Op("qkv", graph.Part{Kind: graph.MatMul, Weight: 12 * mb, InBytes: mb, OutBytes: 3 * mb, MACs: 6e9})
		g.Op("softmax", graph.Part{Kind: graph.Softmax, InBytes: mb, OutBytes: mb, MACs: 1e6})
		g.Op("proj", graph.Part{Kind: graph.MatMul, Weight: 4 * mb, InBytes: mb, OutBytes: mb, MACs: 2e9})
		g.Op("gelu", graph.Part{Kind: graph.GeLU, InBytes: mb, OutBytes: mb, MACs: 1e6})
	}
	return g
}

func TestPrepareProducesValidPlan(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	g := smallTransformer()
	prep, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := prep.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := prep.Plan.Validate(prep.Graph, e.caps, e.opts.Config); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}

	// With adaptive fusion off, the static pass must merge something (gelu
	// into proj at minimum). Adaptive fusion may legitimately split back.
	base := fastOptions(device.OnePlus12())
	base.AdaptiveFusion = false
	prepBase, err := NewEngine(base).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if prepBase.Graph.Len() >= g.Len() {
		t.Errorf("static fusion left %d nodes, original %d", prepBase.Graph.Len(), g.Len())
	}
}

func TestExecuteReportShape(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	rep, m, err := e.Run(smallTransformer())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Integrated <= 0 || rep.Exec <= 0 {
		t.Errorf("non-positive latency: %+v", rep)
	}
	if rep.Integrated != rep.Init+rep.Exec {
		t.Errorf("integrated %v != init %v + exec %v", rep.Integrated, rep.Init, rep.Exec)
	}
	if rep.Kernels == 0 {
		t.Error("no kernels executed")
	}
	if rep.Mem.Peak <= 0 || rep.Mem.Average <= 0 {
		t.Errorf("memory stats empty: %+v", rep.Mem)
	}
	if rep.Mem.Peak < rep.Mem.Average {
		t.Error("peak below average")
	}
	if m.OOM() {
		t.Error("small transformer cannot OOM a flagship")
	}
}

func TestStreamingKeepsMemoryBelowWeights(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	g := smallTransformer()
	total := g.TotalWeightBytes()
	prep, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := e.Execute(prep)
	// The whole point: average weight residency well below the full weight
	// set. The flat runtime footprint and the streaming arena are fixtures
	// of any runtime, so exclude them from the streaming invariant.
	arena := prep.Plan.MaxInflightBytes(prep.Graph.Len())
	weightResident := rep.Mem.Average - RuntimeFootprint - arena
	if weightResident >= units.Bytes(float64(total)*0.8) {
		t.Errorf("weight residency %v not well below total weights %v (avg %v, arena %v)",
			weightResident, total, rep.Mem.Average, arena)
	}
}

func TestKernelRewritingHelps(t *testing.T) {
	on := fastOptions(device.OnePlus12())
	off := on
	off.KernelRewriting = false

	g := smallTransformer()
	repOn, _, err := NewEngine(on).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	repOff, _, err := NewEngine(off).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.Integrated >= repOff.Integrated {
		t.Errorf("rewriting on (%v) must beat dedicated transform kernels (%v)",
			repOn.Integrated, repOff.Integrated)
	}
}

func TestMachineDrainsBetweenRuns(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	prep, err := e.Prepare(smallTransformer())
	if err != nil {
		t.Fatal(err)
	}
	_, m := e.Execute(prep)
	series := m.MemorySeries()
	if len(series) == 0 {
		t.Fatal("no memory series")
	}
	if last := series[len(series)-1].Value; last != 0 {
		t.Errorf("memory does not drain to zero: %v bytes left", last)
	}
}

func TestSlowDiskCausesStalls(t *testing.T) {
	dev := device.OnePlus12()
	dev.DiskBW = units.GBps(0.05) // pathologically slow storage
	e := NewEngine(fastOptions(dev))
	rep, _, err := e.Run(smallTransformer())
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := NewEngine(fastOptions(device.OnePlus12())).Run(smallTransformer())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Integrated <= fast.Integrated {
		t.Error("slow disk must increase integrated latency")
	}
}

func TestGenerateKernels(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	prep, err := e.Prepare(smallTransformer())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := e.GenerateKernels(prep, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != prep.Graph.Len() {
		t.Fatalf("generated %d kernels for %d nodes", len(ks), prep.Graph.Len())
	}
	pipelined := 0
	for _, k := range ks {
		if !k.BranchFree() {
			t.Errorf("kernel %s is not branch-free", k.Name)
		}
		if k.Pipelined {
			pipelined++
		}
	}
	if pipelined == 0 {
		t.Error("no pipelined kernels despite streamed weights")
	}
}

func TestRealModelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full ViT plan in short mode")
	}
	e := NewEngine(fastOptions(device.OnePlus12()))
	g := models.MustByAbbr("ViT").Build()
	rep, _, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	weights := g.TotalWeightBytes()
	if rep.Mem.Average > weights {
		t.Errorf("ViT average memory %v exceeds weights %v: streaming broken", rep.Mem.Average, weights)
	}
	if rep.Mem.OOM {
		t.Error("ViT cannot OOM the OnePlus 12")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	bad := smallTransformer()
	bad.Nodes()[3].Inputs[0] = 99 // forward reference
	if _, err := e.Prepare(bad); err == nil {
		t.Fatal("invalid graph must be rejected")
	}
}

func TestPlanKeySolverVersionSalt(t *testing.T) {
	e := NewEngine(fastOptions(device.OnePlus12()))
	g := smallTransformer()

	k1, ok1 := e.planKeySalted("lc-opg-old", g)
	k2, ok2 := e.planKeySalted("lc-opg-new", g)
	if !ok1 || !ok2 {
		t.Fatal("engine not fingerprintable")
	}
	if k1 == k2 {
		t.Error("solver version bump did not change the plan key; stale persisted plans would be reused")
	}

	// PlanKey itself is the current-version salt, deterministically.
	a, _ := e.PlanKey(g)
	b, _ := e.PlanKey(g)
	if a != b {
		t.Error("PlanKey not deterministic")
	}
	cur, _ := e.planKeySalted(opg.SolverVersion, g)
	if a != cur {
		t.Error("PlanKey does not use opg.SolverVersion as its salt")
	}
}

// TestPlanKeyLearnModeSalt pins that the learning engine is part of the
// plan key: budget-bound plans differ across engines, so a cached CDCL
// plan must never be served to a restart-only or learning-off run.
func TestPlanKeyLearnModeSalt(t *testing.T) {
	g := smallTransformer()
	keys := map[string]string{}
	for _, mode := range []string{"cdcl", "restart", "off"} {
		opts := fastOptions(device.OnePlus12())
		opts.Config.LearnMode = mode
		k, ok := NewEngine(opts).PlanKey(g)
		if !ok {
			t.Fatalf("LearnMode=%q: engine not fingerprintable", mode)
		}
		for other, ok := range keys {
			if ok == k {
				t.Errorf("LearnMode %q and %q share a plan key", mode, other)
			}
		}
		keys[mode] = k
	}

	// The salt is the literal mode string, so "" (the default, same engine
	// as "cdcl") may key separately from the explicit spelling — a
	// conservative cache miss, never a wrong hit. What must not happen is
	// the default colliding with a genuinely different engine.
	optsDefault := fastOptions(device.OnePlus12())
	optsDefault.Config.LearnMode = ""
	kd, _ := NewEngine(optsDefault).PlanKey(g)
	if kd == keys["restart"] || kd == keys["off"] {
		t.Error("default LearnMode shares a key with a different engine")
	}
}
