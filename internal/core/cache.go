package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/graph"
	"repro/internal/opg"
)

// CacheStats counts plan-cache traffic.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Stores    int64
	Evictions int64
	Entries   int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache memoizes Prepare results across engines. Implementations must
// be safe for concurrent use; internal/plancache provides the standard LRU
// with persistence. Cached Prepared values are shared between callers and
// must be treated as immutable.
type PlanCache interface {
	Get(key string) (*Prepared, bool)
	Put(key string, p *Prepared)
	Stats() CacheStats
}

// PlanKey returns the deterministic cache key for preparing a graph on this
// engine: a hash of the solver version, the device profile, solver and
// fusion configuration, pipeline flags, capacity source, and the graph's
// content fingerprint. The second return is false when the engine cannot be
// fingerprinted — an anonymous custom Capacity with no CapacityKey — in
// which case Prepare skips the cache rather than risk stale hits.
//
// The opg.SolverVersion salt invalidates persisted plans across LC-OPG
// heuristic upgrades: a snapshot written by an older solver generation
// simply never hits, so stale plans are re-solved instead of silently
// reused.
//
// KernelRewriting is deliberately excluded: it shapes execution cost, not
// the plan, so engines differing only in rewriting share cache entries.
// Config.Parallelism is excluded for the same reason: the speculative
// window pipeline commits byte-identical plans at any worker count, so
// engines differing only in pipeline width share entries too.
// Config.LearnMode IS included: it selects the CP learning engine (CDCL,
// legacy restart-scoped, or none), which changes budget-bound search
// trajectories and hence plans. Config.WarmRecommit is neither salted nor
// cacheable — warm plans are timing-dependent, so Prepare bypasses the
// cache entirely (see the cacheable computation in Prepare).
func (e *Engine) PlanKey(g *graph.Graph) (string, bool) {
	return e.planKeySalted(opg.SolverVersion, g)
}

// planKeySalted is PlanKey with an explicit solver-version salt, split out
// so tests can prove that a version bump shifts every key.
func (e *Engine) planKeySalted(solverVersion string, g *graph.Graph) (string, bool) {
	capKey := "analytic"
	if e.opts.Capacity != nil {
		if e.opts.CapacityKey == "" {
			return "", false
		}
		capKey = "custom:" + e.opts.CapacityKey
	}
	d := e.opts.Device
	c := e.opts.Config
	f := e.opts.Fusion
	// Free-form strings are %q-quoted so a crafted Name or CapacityKey
	// cannot shift text across field delimiters and collide keys (the same
	// reason graph.Fingerprint length-prefixes its strings).
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"solver{%q}"+
			"dev{%q|%q|%q|%d|%d|%g|%g|%g|%g|%g|%d|%d|%g}"+
			"cfg{%d|%d|%g|%d|%d|%d|%g|%q}"+
			"fus{%d|%g|%d|%d}"+
			"flags{%t|%t|%t}cap{%q}graph{%s}",
		solverVersion,
		d.Name, d.SoC, d.GPU, d.RAM, d.AppLimit,
		float64(d.DiskBW), float64(d.UMBW), float64(d.TMBW), float64(d.CacheBW),
		float64(d.Compute), d.SMs, d.MaxTexDim, float64(d.KernelLaunch),
		c.ChunkSize, c.MPeak, c.Lambda, c.Window, c.SolveTimeout, c.MaxBranches, c.SoftThreshold, c.LearnMode,
		f.MaxParts, f.Alpha, f.Rounds, f.SplitsPerRound,
		e.opts.BaseFusion, e.opts.AdaptiveFusion, e.opts.AdjustPrefetch,
		capKey, g.Fingerprint())))
	return hex.EncodeToString(h[:]), true
}
