// Package core is FlashMem itself: the offline planning pipeline (Figure 3
// — profile capacities, adaptive fusion, LC-OPG solve, prefetch adjustment,
// kernel rewriting) and the online streaming executor that runs the overlap
// plan on the simulated mobile GPU, overlapping disk loads and texture
// transforms with kernel execution.
package core

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/opg"
	"repro/internal/profiler"
	"repro/internal/units"
)

// Options configures an Engine. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	Device device.Device
	Config opg.Config     // LC-OPG solver configuration
	Fusion fusion.Options // fusion pass configuration

	// BaseFusion applies the static fusion pass (SmartMem-style) before
	// planning. AdaptiveFusion additionally runs the §4.3 split loop.
	// KernelRewriting embeds transforms into branch-free pipelined kernels
	// (§4.4); without it, streamed chunks cost dedicated transform kernels.
	// AdjustPrefetch runs the profile-guided z_w adjustment (§3.2).
	BaseFusion      bool
	AdaptiveFusion  bool
	KernelRewriting bool
	AdjustPrefetch  bool

	// Capacity overrides the load-capacity model (nil = analytic model; the
	// full pipeline passes a trained profiler capacity).
	Capacity opg.Capacity

	// CapacityKey names a custom Capacity for plan-cache fingerprinting.
	// Closures cannot be hashed, so a non-nil Capacity with an empty key
	// disables caching for this engine.
	CapacityKey string

	// Cache memoizes Prepare results across engines (nil = no memoization).
	Cache PlanCache
}

// DefaultOptions returns the full FlashMem configuration on a device.
func DefaultOptions(dev device.Device) Options {
	return Options{
		Device:          dev,
		Config:          opg.DefaultConfig(),
		Fusion:          fusion.DefaultOptions(),
		BaseFusion:      true,
		AdaptiveFusion:  true,
		KernelRewriting: true,
		AdjustPrefetch:  true,
	}
}

// Engine plans and executes models on one device configuration. An Engine
// is immutable after NewEngine and safe for concurrent use: Prepare,
// Execute, and GenerateKernels may run from any number of goroutines, and
// engines for different devices may share one PlanCache (which carries its
// own locking). The plan server leans on exactly this contract to serve
// the whole device matrix from one process.
type Engine struct {
	opts Options
	cm   *kernels.CostModel
	caps opg.Capacity
}

// NewEngine builds an engine from options.
func NewEngine(opts Options) *Engine {
	if opts.Config.ChunkSize <= 0 {
		opts.Config = opg.DefaultConfig()
	}
	caps := opts.Capacity
	if caps == nil {
		caps = profiler.AnalyticCapacityFunc(opts.Device)
	}
	return &Engine{opts: opts, cm: kernels.NewCostModel(opts.Device), caps: caps}
}

// Device returns the engine's device.
func (e *Engine) Device() device.Device { return e.opts.Device }

// CostModel exposes the engine's kernel cost model.
func (e *Engine) CostModel() *kernels.CostModel { return e.cm }

// Cache returns the engine's plan cache (nil when memoization is off).
func (e *Engine) Cache() PlanCache { return e.opts.Cache }

// Prepared is the offline-stage output for one model: the (possibly fused)
// graph and its overlap plan. Values handed out by a cache-hit Prepare are
// shared; the graph and plan must be treated as immutable.
type Prepared struct {
	Graph *graph.Graph
	Plan  *opg.Plan

	// FromCache reports that this preparation was served from the plan
	// cache rather than solved.
	FromCache bool
}

// PlanCost returns the recorded cost of producing this preparation: the
// solver's process + build + solve time. Cost-aware cache eviction uses it
// to keep plans that would be expensive to re-solve (a 70B model's plan
// costs seconds; a small CNN's costs microseconds) over cheap ones of equal
// recency. Cache-served copies share the original's stats, so the cost
// survives hits and snapshot round trips.
func (p *Prepared) PlanCost() time.Duration {
	if p == nil || p.Plan == nil {
		return 0
	}
	st := p.Plan.Stats
	return st.ProcessTime + st.BuildTime + st.SolveTime
}

// Prepare runs the offline stage: fusion, LC-OPG, prefetch adjustment.
// With a plan cache configured, a previously solved (device, config,
// graph) triple is returned without re-solving.
func (e *Engine) Prepare(g *graph.Graph) (*Prepared, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	var key string
	cacheable := false
	// Warm-recommit plans are timing-dependent (which speculations fail, and
	// what their doomed solves learned, varies run to run), so they are
	// neither served from nor stored in the cache.
	warm := e.opts.Config.WarmRecommit && e.opts.Config.Parallelism > 1
	if e.opts.Cache != nil && !warm {
		key, cacheable = e.PlanKey(g)
		if cacheable {
			if hit, ok := e.opts.Cache.Get(key); ok {
				cp := *hit
				cp.FromCache = true
				return &cp, nil
			}
		}
	}
	cur := g
	var plan *opg.Plan
	switch {
	case e.opts.AdaptiveFusion:
		res := fusion.Adaptive(g, e.caps, e.opts.Config, e.opts.Fusion)
		cur, plan = res.Graph, res.Plan
	case e.opts.BaseFusion:
		cur = fusion.Fuse(g, e.opts.Fusion)
		plan = opg.Solve(cur, e.caps, e.opts.Config)
	default:
		plan = opg.Solve(cur, e.caps, e.opts.Config)
	}
	if e.opts.AdjustPrefetch {
		opg.AdjustLoadStarts(plan, cur, func(id graph.NodeID) units.Duration {
			return e.cm.KernelTime(cur.Node(id), kernels.Texture25D)
		}, e.opts.Device.DiskBW, e.opts.Config.MPeak)
	}
	prep := &Prepared{Graph: cur, Plan: plan}
	if cacheable {
		e.opts.Cache.Put(key, prep)
	}
	return prep, nil
}

// Report summarizes one end-to-end run.
type Report struct {
	Model  string
	Device string

	Init       units.Duration // preload phase (W load + transform)
	Exec       units.Duration // execution phase
	Integrated units.Duration // Init + Exec: what Table 7 reports for FlashMem

	Mem gpusim.MemStats

	Kernels      int
	Stalls       int            // kernels delayed waiting for streamed weights
	StallTime    units.Duration // cumulative stall
	ComputeBusy  units.Duration
	TransferBusy units.Duration
}

// Run plans and executes a model cold on a fresh machine.
func (e *Engine) Run(g *graph.Graph) (Report, *gpusim.Machine, error) {
	prep, err := e.Prepare(g)
	if err != nil {
		return Report{}, nil, err
	}
	rep, m := e.Execute(prep)
	return rep, m, nil
}

// Execute runs a prepared model cold on a fresh machine.
func (e *Engine) Execute(prep *Prepared) (Report, *gpusim.Machine) {
	m := gpusim.New(e.opts.Device)
	res := e.ExecuteOn(m, prep, 0)
	return e.report(prep, m, res), m
}

func (e *Engine) report(prep *Prepared, m *gpusim.Machine, res ExecResult) Report {
	horizon := res.ExecEnd
	return Report{
		Model:        prep.Graph.Name,
		Device:       e.opts.Device.Name,
		Init:         res.InitEnd - res.Start,
		Exec:         res.ExecEnd - res.InitEnd,
		Integrated:   res.ExecEnd - res.Start,
		Mem:          m.Stats(horizon),
		Kernels:      res.Kernels,
		Stalls:       res.Stalls,
		StallTime:    res.StallTime,
		ComputeBusy:  m.Compute.BusyTotal(),
		TransferBusy: m.Transfer.BusyTotal(),
	}
}

// GenerateKernels renders up to limit kernel sources for a prepared model,
// using the pipelined template for layers that carry transforms and the
// naive template otherwise.
func (e *Engine) GenerateKernels(prep *Prepared, limit int) ([]kernels.Kernel, error) {
	rw := kernels.NewRewriter()
	extra := extraBytesPerLayer(prep)
	var out []kernels.Kernel
	for _, n := range prep.Graph.Nodes() {
		if limit >= 0 && len(out) >= limit {
			break
		}
		k, err := rw.Generate(n, extra[n.ID])
		if err != nil {
			return nil, fmt.Errorf("core: kernel for node %d: %w", n.ID, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// extraBytesPerLayer maps each layer to the bytes of weight chunks its
// kernel transforms on behalf of upcoming layers.
func extraBytesPerLayer(prep *Prepared) map[graph.NodeID]units.Bytes {
	extra := make(map[graph.NodeID]units.Bytes)
	for _, w := range prep.Plan.Weights {
		remaining := w.Bytes
		for _, a := range w.Transforms {
			bytes := units.Bytes(a.Chunks) * prep.Plan.ChunkSize
			if bytes > remaining {
				bytes = remaining // final partial chunk
			}
			remaining -= bytes
			extra[a.Layer] += bytes
		}
	}
	return extra
}
