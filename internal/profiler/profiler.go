// Package profiler implements the load-capacity profiling of §4.2 and
// Figure 4: it sweeps representative kernels under varying additional I/O
// load on the simulated device, trains the GBT latency model, and derives
// per-layer load capacities C_ℓ for the LC-OPG solver.
//
// On the real system this samples hardware counters; here the "measurement"
// is the simulator's kernel cost model perturbed with deterministic
// measurement noise, so the learned surface — not a hard-coded table —
// drives capacity decisions, exactly as in the paper's pipeline.
package profiler

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/opclass"
	"repro/internal/units"
	"repro/internal/xgb"
)

// Options configures a profiling run.
type Options struct {
	// NoiseFrac is the relative amplitude of simulated measurement noise.
	NoiseFrac float64
	// Ratios to sweep (extra load / kernel input). Nil = default grid.
	Ratios []float64
	// XGB overrides training parameters. Zero value = xgb.DefaultParams.
	XGB xgb.Params
}

// DefaultOptions mirror the paper's profiling setup: a dense ratio grid
// with a few percent of run-to-run noise.
func DefaultOptions() Options {
	ratios := make([]float64, 0, 13)
	for r := 0.0; r <= 3.0+1e-9; r += 0.25 {
		ratios = append(ratios, r)
	}
	return Options{NoiseFrac: 0.03, Ratios: ratios, XGB: xgb.DefaultParams()}
}

// profiledKinds are the operator kinds in the Figure 4 sweep ("profiling
// operators from more than ten models").
var profiledKinds = []graph.OpKind{
	graph.MatMul, graph.Conv, graph.Attention,
	graph.Add, graph.ReLU, graph.GeLU,
	graph.Softmax, graph.LayerNorm,
}

// Profile is a trained latency model plus its provenance.
type Profile struct {
	Dev     device.Device
	Samples int

	cm    *kernels.CostModel
	model *xgb.Model
}

// kernelConfigs generates the synthetic sweep: each kind at a range of
// input sizes with kind-appropriate weights and arithmetic intensity.
func kernelConfigs() []*graph.Node {
	var nodes []*graph.Node
	sizes := []units.Bytes{64 * units.KB, 256 * units.KB, units.MB, 4 * units.MB, 16 * units.MB}
	for _, kind := range profiledKinds {
		for _, in := range sizes {
			p := graph.Part{Kind: kind, InBytes: in, OutBytes: in}
			switch opclass.Classify(kind) {
			case opclass.Reusable:
				p.Weight = 2 * in
				p.MACs = units.MACs(int64(in) * 256) // high arithmetic intensity
			case opclass.Hierarchical:
				p.MACs = units.MACs(int64(in) * 8)
			default:
				p.MACs = units.MACs(int64(in) * 2)
			}
			nodes = append(nodes, &graph.Node{
				Name:  fmt.Sprintf("%s_%d", kind, in),
				Parts: []graph.Part{p},
			})
		}
	}
	return nodes
}

// noise returns a deterministic pseudo-random factor in [1-f, 1+f] derived
// from the sample index (xorshift hash), so profiling is reproducible.
func noise(i int, f float64) float64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	u := float64(x%1_000_000) / 1_000_000 // [0,1)
	return 1 + f*(2*u-1)
}

// featureize maps a kernel + ratio to the GBT feature vector.
func featurize(n *graph.Node, ratio float64) []float64 {
	return []float64{
		float64(opclass.ClassifyNode(n)),
		float64(n.Kind()),
		math.Log2(float64(n.InBytes()) + 1),
		math.Log2(float64(n.Weight()) + 1),
		math.Log2(float64(n.MACs()) + 1),
		ratio,
	}
}

// Run profiles the device and trains the latency model.
func Run(dev device.Device, opts Options) (*Profile, error) {
	if opts.Ratios == nil {
		opts.Ratios = DefaultOptions().Ratios
	}
	if opts.XGB.Trees == 0 {
		opts.XGB = xgb.DefaultParams()
	}
	cm := kernels.NewCostModel(dev)

	var X [][]float64
	var y []float64
	i := 0
	for _, n := range kernelConfigs() {
		for _, r := range opts.Ratios {
			extra := units.Bytes(r * float64(n.InBytes()))
			lat := cm.PipelinedTime(n, kernels.Texture25D, extra)
			measured := float64(lat) * noise(i, opts.NoiseFrac)
			X = append(X, featurize(n, r))
			y = append(y, math.Log2(measured+1e-9))
			i++
		}
	}
	model, err := xgb.Train(X, y, opts.XGB)
	if err != nil {
		return nil, fmt.Errorf("profiler: training latency model: %w", err)
	}
	return &Profile{Dev: dev, Samples: len(y), cm: cm, model: model}, nil
}

// PredictLatency returns the modelled latency of a kernel carrying
// extraBytes of streamed load.
func (p *Profile) PredictLatency(n *graph.Node, extraBytes units.Bytes) units.Duration {
	in := n.InBytes()
	ratio := 0.0
	if in > 0 {
		ratio = float64(extraBytes) / float64(in)
	}
	logLat := p.model.Predict(featurize(n, ratio))
	return units.Duration(math.Exp2(logLat))
}

// LoadCapacity returns C_ℓ for a node: the largest extra load whose
// predicted latency stays within the node class's threshold of the
// zero-load prediction, additionally bounded by the physical streaming
// headroom of the kernel's runtime. Hierarchical nodes get zero.
func (p *Profile) LoadCapacity(n *graph.Node) units.Bytes {
	class := opclass.ClassifyNode(n)
	threshold := class.Threshold()
	if threshold <= 0 || n.InBytes() == 0 {
		return 0
	}
	base := p.PredictLatency(n, 0)
	budget := units.Duration(float64(base) * (1 + threshold))

	// Physical cap: what the UM path can deliver within the allowed time.
	byBandwidth := p.Dev.UMBW.Bytes(budget)

	// Bisect the largest tolerated extra load under the learned model.
	lo, hi := units.Bytes(0), byBandwidth
	for iter := 0; iter < 40 && lo < hi; iter++ {
		mid := lo + (hi-lo+1)/2
		if p.PredictLatency(n, mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// CapacityFunc adapts the profile to the solver's capacity interface.
func (p *Profile) CapacityFunc() func(*graph.Node) units.Bytes {
	return p.LoadCapacity
}

// AnalyticCapacityFunc returns capacities straight from the cost model,
// bypassing the learned model — used for solver tests and as the fallback
// when no profile is available.
func AnalyticCapacityFunc(dev device.Device) func(*graph.Node) units.Bytes {
	cm := kernels.NewCostModel(dev)
	return func(n *graph.Node) units.Bytes {
		return cm.LoadCapacityBytes(n, kernels.Texture25D)
	}
}
