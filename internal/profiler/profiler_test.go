package profiler

import (
	"testing"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/units"
	"repro/internal/xgb"
)

// fastOptions keeps profiler tests quick: a coarser grid and smaller
// ensemble than production defaults.
func fastOptions() Options {
	p := xgb.DefaultParams()
	p.Trees = 60
	return Options{
		NoiseFrac: 0.02,
		Ratios:    []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2, 3},
		XGB:       p,
	}
}

func testProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := Run(device.OnePlus12(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkNode(kind graph.OpKind, in, weight units.Bytes, macs units.MACs) *graph.Node {
	return &graph.Node{Name: "n", Parts: []graph.Part{{
		Kind: kind, InBytes: in, OutBytes: in, Weight: weight, MACs: macs,
	}}}
}

func TestRunTrainsOnFullSweep(t *testing.T) {
	p := testProfile(t)
	// 8 kinds × 5 sizes × 8 ratios.
	if p.Samples != 8*5*8 {
		t.Errorf("samples = %d, want 320", p.Samples)
	}
}

func TestPredictionTracksCostModel(t *testing.T) {
	p := testProfile(t)
	cm := kernels.NewCostModel(device.OnePlus12())
	n := mkNode(graph.MatMul, 4*units.MB, 8*units.MB, units.MACs(4*units.MB)*256)
	for _, r := range []float64{0, 0.5, 1.0} {
		extra := units.Bytes(r * float64(n.InBytes()))
		pred := float64(p.PredictLatency(n, extra))
		truth := float64(cm.PipelinedTime(n, kernels.Texture25D, extra))
		if pred < 0.5*truth || pred > 2*truth {
			t.Errorf("ratio %v: predicted %v vs truth %v (off >2x)", r, pred, truth)
		}
	}
}

func TestLoadCapacityHierarchicalZero(t *testing.T) {
	p := testProfile(t)
	n := mkNode(graph.Softmax, units.MB, 0, units.MACs(units.MB)*8)
	if c := p.LoadCapacity(n); c != 0 {
		t.Errorf("softmax capacity = %v, want 0", c)
	}
	ln := mkNode(graph.LayerNorm, units.MB, 0, units.MACs(units.MB)*8)
	if c := p.LoadCapacity(ln); c != 0 {
		t.Errorf("layernorm capacity = %v, want 0", c)
	}
}

func TestLoadCapacityOrdering(t *testing.T) {
	p := testProfile(t)
	// Table 5: a big matmul carries more than a small elementwise op.
	mm := mkNode(graph.MatMul, 4*units.MB, 8*units.MB, units.MACs(4*units.MB)*256)
	relu := mkNode(graph.ReLU, 64*units.KB, 0, units.MACs(64*units.KB)*2)
	cm, cr := p.LoadCapacity(mm), p.LoadCapacity(relu)
	if cm <= 0 || cr <= 0 {
		t.Fatalf("capacities must be positive: matmul %v relu %v", cm, cr)
	}
	if cm <= cr {
		t.Errorf("matmul capacity %v must exceed small relu capacity %v", cm, cr)
	}
}

func TestLoadCapacityNearAnalytic(t *testing.T) {
	p := testProfile(t)
	analytic := AnalyticCapacityFunc(device.OnePlus12())
	// On a kernel inside the profiled distribution, the learned capacity
	// should land within a small factor of the analytic one.
	n := mkNode(graph.MatMul, units.MB, 2*units.MB, units.MACs(units.MB)*256)
	got, want := float64(p.LoadCapacity(n)), float64(analytic(n))
	if want <= 0 {
		t.Fatal("analytic capacity must be positive")
	}
	if got < 0.3*want || got > 3*want {
		t.Errorf("profiled capacity %v vs analytic %v: off more than 3x", got, want)
	}
}

func TestZeroInputCapacityZero(t *testing.T) {
	p := testProfile(t)
	n := mkNode(graph.MatMul, 0, units.MB, 1000)
	if c := p.LoadCapacity(n); c != 0 {
		t.Errorf("zero-input kernel capacity = %v, want 0", c)
	}
}

func TestNoiseDeterministicBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := noise(i, 0.05)
		if v < 0.95 || v > 1.05 {
			t.Fatalf("noise(%d) = %v outside [0.95,1.05]", i, v)
		}
		if v != noise(i, 0.05) {
			t.Fatal("noise must be deterministic")
		}
	}
}

func TestFigure2SweepShape(t *testing.T) {
	pts := Figure2Sweep(device.OnePlus12(), 2.0, 0.125)
	// 5 kernels × 16 ratios.
	if len(pts) != 5*16 {
		t.Fatalf("points = %d, want 80", len(pts))
	}
	// Hierarchical ops cross 20% early; matmul crosses late or never.
	smCross := ThresholdCrossing(pts, graph.Softmax, 0.20)
	lnCross := ThresholdCrossing(pts, graph.LayerNorm, 0.20)
	mmCross := ThresholdCrossing(pts, graph.MatMul, 0.20)
	if smCross < 0 || smCross > 0.5 {
		t.Errorf("softmax 20%% crossing at ratio %v, want <=0.5", smCross)
	}
	if lnCross < 0 || lnCross > 0.5 {
		t.Errorf("layernorm 20%% crossing at ratio %v, want <=0.5", lnCross)
	}
	if mmCross >= 0 && mmCross < 1.0 {
		t.Errorf("matmul crosses 20%% at ratio %v, want >=1.0 or never", mmCross)
	}
	// Absolute latency increase at equal ratio orders like Figure 2's
	// curves: hierarchical ops highest, elementwise modest, matmul lowest.
	at1 := map[graph.OpKind]float64{}
	for _, p := range pts {
		if p.Ratio == 1.0 {
			at1[p.Kind] = p.IncreaseMS
		}
	}
	if !(at1[graph.Softmax] > at1[graph.Add] && at1[graph.Add] > at1[graph.MatMul]) {
		t.Errorf("absolute increase at ratio 1 misordered: %v", at1)
	}
	// Latency increase is monotone in ratio for each kind.
	byKind := map[graph.OpKind]float64{}
	for _, p := range pts {
		if last, ok := byKind[p.Kind]; ok && p.IncreaseMS < last-1e-12 {
			t.Errorf("%v: increase not monotone", p.Kind)
		}
		byKind[p.Kind] = p.IncreaseMS
	}
}
