package profiler

import (
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/units"
)

// OverlapPoint is one point of the Figure 2 sweep: the latency increase a
// kernel suffers when forced to stream extra data of Ratio× its own input.
type OverlapPoint struct {
	Kind       graph.OpKind
	Ratio      float64
	Baseline   units.Duration
	Latency    units.Duration
	IncreaseMS float64 // absolute increase, the figure's y-axis
	Relative   float64 // relative increase, where the 20%/30% markers live
}

// figure2Kernels are the five operators plotted in Figure 2, sized like the
// transformer kernels of the motivating study.
func figure2Kernels() []*graph.Node {
	mk := func(kind graph.OpKind, in units.Bytes, weight units.Bytes, macsPerByte int64) *graph.Node {
		return &graph.Node{Name: kind.String(), Parts: []graph.Part{{
			Kind: kind, InBytes: in, OutBytes: in, Weight: weight,
			MACs: units.MACs(int64(in) * macsPerByte),
		}}}
	}
	return []*graph.Node{
		mk(graph.MatMul, 4*units.MB, 8*units.MB, 256),
		mk(graph.Attention, 2*units.MB, 0, 128),
		mk(graph.Add, units.MB, 0, 2), // representative elementwise op
		mk(graph.LayerNorm, units.MB, 0, 8),
		mk(graph.Softmax, units.MB, 0, 8),
	}
}

// Figure2Sweep reproduces the Figure 2 measurement: each kernel carries
// additional data volume ratios from 0 to maxRatio in the given step, and
// the latency increase is recorded.
func Figure2Sweep(dev device.Device, maxRatio, step float64) []OverlapPoint {
	cm := kernels.NewCostModel(dev)
	var out []OverlapPoint
	for _, n := range figure2Kernels() {
		base := cm.KernelTime(n, kernels.Texture25D)
		for r := step; r <= maxRatio+1e-9; r += step {
			extra := units.Bytes(r * float64(n.InBytes()))
			lat := cm.PipelinedTime(n, kernels.Texture25D, extra)
			out = append(out, OverlapPoint{
				Kind:       n.Kind(),
				Ratio:      r,
				Baseline:   base,
				Latency:    lat,
				IncreaseMS: float64(lat - base),
				Relative:   float64(lat-base) / float64(base),
			})
		}
	}
	return out
}

// ThresholdCrossing returns the smallest swept ratio at which the kind's
// relative increase reaches the given fraction, or -1 if it never does.
func ThresholdCrossing(points []OverlapPoint, kind graph.OpKind, frac float64) float64 {
	for _, p := range points {
		if p.Kind == kind && p.Relative >= frac {
			return p.Ratio
		}
	}
	return -1
}
