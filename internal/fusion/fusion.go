// Package fusion implements operator fusion and the adaptive un-fusion
// strategy of §4.3.
//
// Fusing k operators into one kernel removes k−1 launches and intermediate
// tensors, but collapses k scheduling stages into one: the fused kernel's
// load capacity is roughly min(C_1..C_k) rather than ΣC_i, which starves
// the OPG solver of transform slots and forces weights into the preload set
// W. The adaptive strategy fuses first, solves, then selectively splits the
// fused kernels with the highest fusion penalty until the plan stops
// improving.
package fusion

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/opclass"
	"repro/internal/opg"
	"repro/internal/units"
)

// Options configures the fusion pass.
type Options struct {
	// MaxParts caps how many primitive ops may share a kernel.
	MaxParts int
	// Alpha is the §4.3 capacity-gain threshold: a split must deliver
	// C_v1 + C_v2 ≥ (1+Alpha)·C_fused to be worthwhile.
	Alpha float64
	// Rounds bounds the adaptive split-and-resolve iterations.
	Rounds int
	// SplitsPerRound bounds how many kernels split per iteration.
	SplitsPerRound int
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{MaxParts: 3, Alpha: 0.25, Rounds: 3, SplitsPerRound: 8}
}

// fusable reports whether a chain ending at node `tail` (whose kernel so
// far classifies as headClass) can absorb `next`: the successor must
// consume only the tail, be elemental (reusable+elemental and
// elemental+elemental fusions are the productive rules), and carry no
// weight of its own.
func fusable(headClass opclass.Class, tail graph.NodeID, next *graph.Node) bool {
	if len(next.Inputs) != 1 || next.Inputs[0] != tail {
		return false
	}
	if headClass == opclass.Hierarchical {
		return false
	}
	return opclass.Classify(next.Kind()) == opclass.Elemental && next.Weight() == 0
}

// Fuse returns a new graph with producer→elemental chains merged into
// single kernels (e.g. MatMul+GeLU), leaving hierarchical kernels intact.
// Residual joins (multi-input nodes) are natural fusion barriers.
func Fuse(g *graph.Graph, o Options) *graph.Graph {
	if o.MaxParts < 1 {
		o.MaxParts = DefaultOptions().MaxParts
	}
	// consumers[i] = number of nodes reading node i.
	consumers := make([]int, g.Len())
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}

	fused := graph.New(g.Name, g.DType)
	remap := make([]graph.NodeID, g.Len()) // old ID → new ID
	nodes := g.Nodes()
	for i := 0; i < len(nodes); {
		parts := append([]graph.Part(nil), nodes[i].Parts...)
		name := nodes[i].Name
		headClass := opclass.ClassifyNode(nodes[i])
		j := i
		for j+1 < len(nodes) && len(parts) < o.MaxParts &&
			consumers[nodes[j].ID] == 1 && fusable(headClass, nodes[j].ID, nodes[j+1]) {
			next := nodes[j+1]
			parts = append(parts, next.Parts...)
			name = name + "+" + next.Name
			j++
		}

		inputs := make([]graph.NodeID, len(nodes[i].Inputs))
		for k, in := range nodes[i].Inputs {
			inputs[k] = remap[in]
		}
		id := fused.Add(name, inputs, parts...)
		for k := i; k <= j; k++ {
			remap[nodes[k].ID] = id
		}
		i = j + 1
	}
	return fused
}

// Split replaces a fused node with its operator-specific decomposition
// (§4.3): reusable parts stay together, trailing elemental parts become a
// separate kernel ("MatMul+Add+GeLU" → "MatMul+Add" and "GeLU").
// Hierarchical and single-part nodes are not split; Split reports whether
// it changed the graph.
func Split(g *graph.Graph, id graph.NodeID) bool {
	n := g.Node(id)
	if !n.Fused() || opclass.ClassifyNode(n) == opclass.Hierarchical {
		return false
	}
	// Find the boundary: keep the leading parts through the last
	// reusable part together; the trailing elemental run splits off.
	lastReusable := -1
	for i, p := range n.Parts {
		if opclass.Classify(p.Kind) == opclass.Reusable {
			lastReusable = i
		}
	}
	at := lastReusable + 1
	if at <= 0 || at >= len(n.Parts) {
		at = len(n.Parts) / 2 // pure-elemental chain: halve it
	}
	g.Replace(id, []*graph.Node{
		{Name: n.Name + "/a", Parts: append([]graph.Part(nil), n.Parts[:at]...)},
		{Name: n.Name + "/b", Parts: append([]graph.Part(nil), n.Parts[at:]...)},
	})
	return true
}

// GainfulSplit reports whether splitting node id passes the §4.3 capacity
// check C_v1 + C_v2 ≥ (1+α)·C_fused, evaluated with the given capacity
// model on hypothetical split nodes.
func GainfulSplit(g *graph.Graph, id graph.NodeID, caps opg.Capacity, alpha float64) bool {
	n := g.Node(id)
	if !n.Fused() || opclass.ClassifyNode(n) == opclass.Hierarchical {
		return false
	}
	lastReusable := -1
	for i, p := range n.Parts {
		if opclass.Classify(p.Kind) == opclass.Reusable {
			lastReusable = i
		}
	}
	at := lastReusable + 1
	if at <= 0 || at >= len(n.Parts) {
		at = len(n.Parts) / 2
	}
	if at <= 0 || at >= len(n.Parts) {
		return false
	}
	a := &graph.Node{ID: n.ID, Name: "a", Parts: n.Parts[:at]}
	b := &graph.Node{ID: n.ID, Name: "b", Parts: n.Parts[at:]}
	cFused := caps(n)
	return float64(caps(a)+caps(b)) >= (1+alpha)*float64(cFused)
}

// Penalty is the §4.3 fusion penalty of a fused kernel under a plan:
// λ·(bytes forced into preload) + μ·(loading-distance mass of its streamed
// weights). Higher penalties mark the kernels most worth splitting.
func Penalty(n *graph.Node, p *opg.Plan, lambda, mu float64) float64 {
	wp, ok := p.ByWeight(n.ID)
	if !ok {
		return 0
	}
	if wp.Preload {
		return lambda * float64(wp.Bytes)
	}
	dist := float64(int(wp.Weight) - int(wp.LoadStart))
	return mu * dist * float64(p.ChunkSize)
}

// AdaptiveResult reports one adaptive-fusion run.
type AdaptiveResult struct {
	Graph  *graph.Graph
	Plan   *opg.Plan
	Splits int
	Rounds int
}

// Adaptive runs the full §4.3 loop: fuse, solve OPG, and while preload
// pressure remains, split the highest-penalty fused kernels that pass the
// capacity-gain check and re-solve. It returns the final graph and plan.
func Adaptive(g *graph.Graph, caps opg.Capacity, cfg opg.Config, o Options) AdaptiveResult {
	if o.Rounds <= 0 {
		o = DefaultOptions()
	}
	cur := Fuse(g, o)
	plan := opg.Solve(cur, caps, cfg)
	res := AdaptiveResult{Graph: cur, Plan: plan}

	for round := 0; round < o.Rounds; round++ {
		// Rank fused kernels by fusion penalty.
		type cand struct {
			id      graph.NodeID
			penalty float64
		}
		var cands []cand
		for _, n := range cur.Nodes() {
			if !n.Fused() {
				continue
			}
			if pen := Penalty(n, plan, cfg.Lambda, 1-cfg.Lambda); pen > 0 &&
				GainfulSplit(cur, n.ID, caps, o.Alpha) {
				cands = append(cands, cand{n.ID, pen})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].penalty > cands[j].penalty })

		// Split top candidates on a copy, highest node IDs first so earlier
		// IDs stay valid while we mutate.
		next := cur.Clone()
		top := cands[:minInt(o.SplitsPerRound, len(cands))]
		sort.Slice(top, func(i, j int) bool { return top[i].id > top[j].id })
		split := 0
		for _, c := range top {
			if Split(next, c.id) {
				split++
			}
		}
		if split == 0 {
			break
		}

		nextPlan := opg.Solve(next, caps, cfg)
		res.Rounds = round + 1
		res.Splits += split
		if nextPlan.PreloadBytes() >= plan.PreloadBytes() {
			// No improvement: keep the better (graph, plan) pair and stop.
			break
		}
		cur, plan = next, nextPlan
		res.Graph, res.Plan = cur, plan
	}
	return res
}

// PreloadPressure returns the preloaded fraction of weight bytes — the
// quantity adaptive fusion drives down.
func PreloadPressure(p *opg.Plan) float64 { return 1 - p.OverlapFraction() }

// TotalCapacity sums capacities over a graph, the ΣC_ℓ of §4.3's
// total-chunk-capacity bound.
func TotalCapacity(g *graph.Graph, caps opg.Capacity) units.Bytes {
	var total units.Bytes
	for _, n := range g.Nodes() {
		total += caps(n)
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
