package fusion

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/profiler"
	"repro/internal/tensor"
	"repro/internal/units"
)

// chainGraph: matmul → gelu → add(weightless, single-input) → layernorm →
// matmul → relu, a canonical fusion testbed.
func chainGraph() *graph.Graph {
	g := graph.New("chain", tensor.FP16)
	mb := units.MB
	g.Op("mm1", graph.Part{Kind: graph.MatMul, Weight: 4 * mb, InBytes: mb, OutBytes: mb, MACs: 1e8})
	g.Op("gelu1", graph.Part{Kind: graph.GeLU, InBytes: mb, OutBytes: mb, MACs: 1e5})
	g.Op("scale", graph.Part{Kind: graph.Mul, InBytes: mb, OutBytes: mb, MACs: 1e5})
	g.Op("ln", graph.Part{Kind: graph.LayerNorm, Weight: 4 * units.KB, InBytes: mb, OutBytes: mb, MACs: 1e6})
	g.Op("mm2", graph.Part{Kind: graph.MatMul, Weight: 4 * mb, InBytes: mb, OutBytes: mb, MACs: 1e8})
	g.Op("relu", graph.Part{Kind: graph.ReLU, InBytes: mb, OutBytes: mb, MACs: 1e5})
	return g
}

func TestFuseMergesChains(t *testing.T) {
	g := chainGraph()
	f := Fuse(g, DefaultOptions())
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// mm1+gelu1+scale fuse (3 parts), ln stays, mm2+relu fuse.
	if f.Len() != 3 {
		for _, n := range f.Nodes() {
			t.Logf("node %d: %s (%d parts)", n.ID, n.Name, len(n.Parts))
		}
		t.Fatalf("fused len = %d, want 3", f.Len())
	}
	if !f.Node(0).Fused() || f.Node(0).Kind() != graph.MatMul {
		t.Error("first fused kernel should be MatMul-dominated")
	}
	if f.Node(1).Kind() != graph.LayerNorm || f.Node(1).Fused() {
		t.Error("hierarchical kernel must stay standalone")
	}
}

func TestFusePreservesTotals(t *testing.T) {
	g := chainGraph()
	f := Fuse(g, DefaultOptions())
	if f.TotalWeightBytes() != g.TotalWeightBytes() {
		t.Error("fusion changed total weights")
	}
	if f.TotalMACs() != g.TotalMACs() {
		t.Error("fusion changed total MACs")
	}
}

func TestFuseRespectsMaxParts(t *testing.T) {
	g := graph.New("long", tensor.FP16)
	g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1e7})
	for i := 0; i < 6; i++ {
		g.Op("act", graph.Part{Kind: graph.ReLU, InBytes: units.MB, OutBytes: units.MB, MACs: 1e4})
	}
	f := Fuse(g, Options{MaxParts: 2, Alpha: 0.25, Rounds: 1, SplitsPerRound: 1})
	for _, n := range f.Nodes() {
		if len(n.Parts) > 2 {
			t.Fatalf("node %s has %d parts, max 2", n.Name, len(n.Parts))
		}
	}
}

func TestFuseStopsAtBranches(t *testing.T) {
	g := graph.New("branch", tensor.FP16)
	a := g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1e7})
	g.Op("gelu", graph.Part{Kind: graph.GeLU, InBytes: units.MB, OutBytes: units.MB})
	// Residual consumes both mm and gelu: gelu has 1 input but mm has 2 consumers.
	g.Add("res", []graph.NodeID{a, 1}, graph.Part{Kind: graph.Add, InBytes: units.MB, OutBytes: units.MB})
	f := Fuse(g, DefaultOptions())
	if f.Len() != 3 {
		t.Fatalf("fused len = %d, want 3 (branch must block fusion)", f.Len())
	}
}

func TestSplitInverseOfFuse(t *testing.T) {
	g := chainGraph()
	f := Fuse(g, DefaultOptions())
	wantW, wantM := f.TotalWeightBytes(), f.TotalMACs()
	if !Split(f, 0) {
		t.Fatal("split of fused node must succeed")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.TotalWeightBytes() != wantW || f.TotalMACs() != wantM {
		t.Error("split changed totals")
	}
	// The reusable+elemental rule: /a keeps the MatMul, /b is elemental.
	if f.Node(0).Kind() != graph.MatMul {
		t.Error("split head must keep the reusable part")
	}
	if f.Node(1).Weight() != 0 {
		t.Error("split tail must be the weightless elemental run")
	}
}

func TestSplitRefusesHierarchicalAndPlain(t *testing.T) {
	g := chainGraph()
	f := Fuse(g, DefaultOptions())
	// ln is standalone (1 part).
	for _, n := range f.Nodes() {
		if !n.Fused() {
			if Split(f, n.ID) {
				t.Fatal("splitting a single-part node must fail")
			}
		}
	}
}

func testCfg() opg.Config {
	cfg := opg.DefaultConfig()
	cfg.SolveTimeout = 60 * time.Millisecond
	cfg.MaxBranches = 3000
	return cfg
}

func TestAdaptiveImprovesOrMatchesPreload(t *testing.T) {
	g := models.MustByAbbr("ViT").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := testCfg()

	fusedOnly := Fuse(g, DefaultOptions())
	basePlan := opg.Solve(fusedOnly, caps, cfg)

	res := Adaptive(g, caps, cfg, DefaultOptions())
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(res.Graph, caps, cfg); err != nil {
		t.Fatalf("adaptive plan invalid: %v", err)
	}
	if res.Plan.PreloadBytes() > basePlan.PreloadBytes() {
		t.Errorf("adaptive preload %v exceeds fused-only %v",
			res.Plan.PreloadBytes(), basePlan.PreloadBytes())
	}
}

func TestPenaltyShape(t *testing.T) {
	p := &opg.Plan{ChunkSize: units.MB, Weights: []opg.WeightPlan{
		{Weight: 5, Bytes: 20 * units.MB, Chunks: 20, Preload: true},
		{Weight: 9, Bytes: 10 * units.MB, Chunks: 10, LoadStart: 3,
			Transforms: []opg.Assignment{{Layer: 7, Chunks: 10}}},
	}}
	pre := &graph.Node{ID: 5, Parts: []graph.Part{{Kind: graph.MatMul}}}
	str := &graph.Node{ID: 9, Parts: []graph.Part{{Kind: graph.MatMul}}}
	none := &graph.Node{ID: 2, Parts: []graph.Part{{Kind: graph.Add}}}
	if Penalty(pre, p, 0.9, 0.1) <= Penalty(str, p, 0.9, 0.1) {
		t.Error("preloaded weight must dominate the penalty ranking")
	}
	if Penalty(none, p, 0.9, 0.1) != 0 {
		t.Error("weightless kernels have no penalty")
	}
}

func TestTotalCapacityGrowsWhenSplitting(t *testing.T) {
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	g := chainGraph()
	f := Fuse(g, DefaultOptions())
	before := TotalCapacity(f, caps)
	Split(f, 0)
	after := TotalCapacity(f, caps)
	if after < before {
		t.Errorf("splitting reduced total capacity: %v -> %v", before, after)
	}
}
