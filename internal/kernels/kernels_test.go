package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/opclass"
	"repro/internal/units"
)

func matmulNode(weight, in units.Bytes, macs units.MACs) *graph.Node {
	return &graph.Node{Name: "mm", Parts: []graph.Part{{
		Kind: graph.MatMul, Weight: weight, InBytes: in, OutBytes: in, MACs: macs,
	}}}
}

func softmaxNode(in units.Bytes) *graph.Node {
	return &graph.Node{Name: "sm", Parts: []graph.Part{{
		Kind: graph.Softmax, InBytes: in, OutBytes: in, MACs: units.MACs(in) * 2,
	}}}
}

func TestKernelTimeRoofline(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	// Compute-bound: huge MACs, tiny data.
	heavy := matmulNode(units.KB, units.KB, 1_000_000_000)
	// Memory-bound: tiny MACs, big data.
	light := matmulNode(100*units.MB, units.MB, 1000)

	hc := cm.KernelTime(heavy, Texture25D)
	// 2 GFLOPs at 2800 GFLOPS / 0.7 eff ≈ 1.02 ms.
	if hc < 0.9 || hc > 1.2 {
		t.Errorf("compute-bound kernel = %v ms, want ~1.02", hc)
	}
	lc := cm.KernelTime(light, Texture25D)
	// ~102MB at ~502GB/s ≈ 0.2 ms.
	if lc < 0.15 || lc > 0.3 {
		t.Errorf("memory-bound kernel = %v ms, want ~0.2", lc)
	}
}

func TestTextureLayoutFasterForMemoryBound(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	n := matmulNode(50*units.MB, units.MB, 1000)
	tex := cm.KernelTime(n, Texture25D)
	lin := cm.KernelTime(n, Linear)
	if tex >= lin {
		t.Errorf("texture %v must beat linear %v on memory-bound kernels", tex, lin)
	}
	// Romou reports up to 3.5×; our mix should land in (2, 8).
	ratio := float64(lin) / float64(tex)
	if ratio < 2 || ratio > 8 {
		t.Errorf("texture speedup = %.1fx, want 2-8x", ratio)
	}
}

func TestTransformTimeScalesLinearly(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	t1 := cm.TransformTime(10 * units.MB)
	t2 := cm.TransformTime(20 * units.MB)
	launch := cm.Dev.KernelLaunch
	if math.Abs(float64(t2-launch)-2*float64(t1-launch)) > 1e-6 {
		t.Errorf("transform not linear: %v vs %v", t1, t2)
	}
}

func TestOverlapSlowdownShape(t *testing.T) {
	// Figure 2: at equal extra volume (ratio 1), Softmax and LayerNorm
	// suffer far more than MatMul; elementwise sits low.
	sm := OverlapSlowdown(graph.Softmax, 1)
	ln := OverlapSlowdown(graph.LayerNorm, 1)
	mm := OverlapSlowdown(graph.MatMul, 1)
	add := OverlapSlowdown(graph.Add, 1)
	if !(sm > ln && ln > mm && mm > add) {
		t.Errorf("ordering violated: softmax %v layernorm %v matmul %v add %v", sm, ln, mm, add)
	}
	// Hierarchical ops cross 30% overhead before ratio 0.5.
	if OverlapSlowdown(graph.Softmax, 0.5) < 1.30 {
		t.Error("softmax must cross 30% overhead by ratio 0.5")
	}
	// MatMul stays under 20% at ratio 1.
	if OverlapSlowdown(graph.MatMul, 1) > 1.20 {
		t.Error("matmul must stay under 20% at ratio 1")
	}
	if OverlapSlowdown(graph.MatMul, 0) != 1 {
		t.Error("zero ratio must mean no slowdown")
	}
}

func TestOverlapSlowdownMonotoneProperty(t *testing.T) {
	kinds := []graph.OpKind{graph.MatMul, graph.Softmax, graph.Add, graph.Conv, graph.LayerNorm}
	f := func(r1, r2 float64) bool {
		a, b := math.Abs(math.Mod(r1, 5)), math.Abs(math.Mod(r2, 5))
		if a > b {
			a, b = b, a
		}
		for _, k := range kinds {
			if OverlapSlowdown(k, a) > OverlapSlowdown(k, b)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverlapRatioAtInverts(t *testing.T) {
	for _, k := range []graph.OpKind{graph.MatMul, graph.Softmax, graph.Add, graph.Attention} {
		for _, inc := range []float64{0.1, 0.2, 0.3, 3.0} {
			r := OverlapRatioAt(k, inc)
			got := OverlapSlowdown(k, r) - 1
			if math.Abs(got-inc) > 1e-9 {
				t.Errorf("%v: slowdown at inverse ratio = %v, want %v", k, got, inc)
			}
		}
	}
	if OverlapRatioAt(graph.MatMul, 0) != 0 {
		t.Error("zero increase must mean zero ratio")
	}
}

func TestLoadCapacityByClass(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	// Hierarchical: zero capacity (§4.2 "we do not use this type of OPs").
	if c := cm.LoadCapacityBytes(softmaxNode(10*units.MB), Texture25D); c != 0 {
		t.Errorf("softmax capacity = %v, want 0", c)
	}
	// Reusable: substantial capacity.
	mm := matmulNode(40*units.MB, 20*units.MB, 2_000_000_000)
	if c := cm.LoadCapacityBytes(mm, Texture25D); c <= 0 {
		t.Error("matmul capacity must be positive")
	}
	// Table 5: a large reusable kernel has more absolute capacity than a
	// small elemental one, even though the elemental threshold is 300%.
	small := &graph.Node{Name: "relu", Parts: []graph.Part{{
		Kind: graph.ReLU, InBytes: 100 * units.KB, OutBytes: 100 * units.KB, MACs: 100,
	}}}
	if cm.LoadCapacityBytes(mm, Texture25D) <= cm.LoadCapacityBytes(small, Texture25D) {
		t.Error("large reusable kernel must out-carry small elemental kernel")
	}
}

func TestPipelinedBeatsUnrewritten(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	n := matmulNode(40*units.MB, 20*units.MB, 2_000_000_000)
	extra := 4 * units.MB
	pip := cm.PipelinedTime(n, Texture25D, extra)
	unre := cm.UnrewrittenOverlapTime(n, Texture25D, extra)
	if pip >= unre {
		t.Errorf("pipelined %v must beat unrewritten %v", pip, unre)
	}
	base := cm.KernelTime(n, Texture25D)
	if pip < base {
		t.Error("carrying extra load cannot be faster than the baseline")
	}
}

func TestPipelinedNeverBelowBase(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	nodes := []*graph.Node{
		matmulNode(40*units.MB, 20*units.MB, 2_000_000_000),
		softmaxNode(units.MB),
		{Name: "w", Parts: []graph.Part{{Kind: graph.MatMul, Weight: units.MB}}}, // zero input
	}
	for _, n := range nodes {
		base := cm.KernelTime(n, Texture25D)
		for _, extra := range []units.Bytes{0, units.KB, units.MB, 64 * units.MB} {
			if got := cm.PipelinedTime(n, Texture25D, extra); got < base {
				t.Errorf("%s: pipelined %v below base %v at extra %v", n.Name, got, base, extra)
			}
		}
	}
}

func TestPipelinedComputeBoundHidesStream(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	// Heavily compute-bound matmul: a modest embedded stream must cost far
	// less than a dedicated transform kernel would.
	n := matmulNode(8*units.MB, 4*units.MB, 4_000_000_000)
	base := cm.KernelTime(n, Texture25D)
	extra := 4 * units.MB
	embeddedCost := cm.PipelinedTime(n, Texture25D, extra) - base
	dedicated := cm.TransformTime(extra)
	if float64(embeddedCost) > 0.5*float64(dedicated) {
		t.Errorf("embedded cost %v should be well below dedicated %v", embeddedCost, dedicated)
	}
}

func TestPipelinedHierarchicalPaysDearly(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	sm := softmaxNode(units.MB)
	base := cm.KernelTime(sm, Texture25D)
	got := cm.PipelinedTime(sm, Texture25D, units.MB)
	// Streaming 1MB through a softmax must blow well past the 0% threshold.
	if float64(got) < 1.3*float64(base) {
		t.Errorf("softmax with 1MB stream = %v, want >1.3x base %v", got, base)
	}
}

func TestGraphTimeAccumulates(t *testing.T) {
	cm := NewCostModel(device.OnePlus12())
	g := graphOf(t, 5)
	per := cm.GraphTime(g, Texture25D, 1)
	if per <= 0 {
		t.Fatal("graph time must be positive")
	}
	slower := cm.GraphTime(g, Texture25D, 2)
	if math.Abs(float64(slower)-2*float64(per)) > 1e-9 {
		t.Errorf("inefficiency 2 must double time: %v vs %v", slower, per)
	}
}

func graphOf(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New("t", 0)
	for i := 0; i < n; i++ {
		g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1_000_000})
	}
	return g
}

func TestClassEfficiencyOrdering(t *testing.T) {
	if !(classEfficiency(opclass.Elemental) > classEfficiency(opclass.Reusable) &&
		classEfficiency(opclass.Reusable) > classEfficiency(opclass.Hierarchical)) {
		t.Error("class efficiency ordering wrong")
	}
}
