// Package kernels models GPU kernel execution cost on the simulated device
// and implements the template-based kernel rewriting of §4.4.
//
// Three pieces:
//
//   - CostModel: roofline-style per-node latency (compute vs. memory bound,
//     texture-cache-aware effective bandwidth, per-class efficiency).
//   - Overlap slowdown curves: the Figure 2 behaviour — the multiplicative
//     latency factor a kernel suffers when it carries extra weight-loading
//     work, by operator class.
//   - Templates: a small Jinja-like engine instantiating branch-free
//     pipelined kernels (Figure 5) from the overlap plan.
package kernels

import (
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/opclass"
	"repro/internal/units"
)

// Layout describes where a kernel's weight operands live.
type Layout int

// Weight operand layouts.
const (
	// Linear reads weights from unified memory in row-major order.
	Linear Layout = iota
	// Texture25D reads weights from 2.5D-tiled texture memory through the
	// texture cache (Romou-style layouts; what SmartMem and FlashMem use).
	Texture25D
)

// Texture cache hit rates by layout. 2.5D tiling is designed for the 2D
// cache; linear layouts thrash it. Calibrated so texture layouts approach
// Romou's reported advantage on memory-bound kernels.
const (
	hitRate25D    = 0.85
	hitRateLinear = 0.30
)

// Per-class compute efficiency: the fraction of peak throughput a kernel of
// that class sustains. Hierarchical kernels lose time to stepwise
// synchronization; elemental kernels are bandwidth-dominated anyway.
func classEfficiency(c opclass.Class) float64 {
	switch c {
	case opclass.Reusable:
		return 0.70
	case opclass.Elemental:
		return 0.90
	case opclass.Hierarchical:
		return 0.35
	default:
		return 0.5
	}
}

// CostModel computes kernel latencies for one device.
type CostModel struct {
	Dev device.Device
}

// NewCostModel returns a cost model for the device.
func NewCostModel(dev device.Device) *CostModel { return &CostModel{Dev: dev} }

// effectiveBW returns the weight-read bandwidth for a layout: a cache-hit
// weighted mix of texture cache and texture memory bandwidth for 2.5D, or
// unified-memory bandwidth for linear reads.
func (c *CostModel) effectiveBW(l Layout) units.Bandwidth {
	switch l {
	case Texture25D:
		return units.Bandwidth(hitRate25D*float64(c.Dev.CacheBW) + (1-hitRate25D)*float64(c.Dev.TMBW))
	default:
		return units.Bandwidth(hitRateLinear*float64(c.Dev.UMBW) + (1-hitRateLinear)*float64(c.Dev.UMBW))
	}
}

// computeTime is the arithmetic portion of a kernel's latency.
func (c *CostModel) computeTime(n *graph.Node) units.Duration {
	class := opclass.ClassifyNode(n)
	return units.Duration(float64(c.Dev.Compute.Time(n.MACs().FLOPs())) / classEfficiency(class))
}

// memTime is the memory portion: all touched bytes over the layout's
// effective bandwidth.
func (c *CostModel) memTime(n *graph.Node, l Layout) units.Duration {
	touched := n.InBytes() + n.Weight() + n.OutBytes()
	return c.effectiveBW(l).Time(touched)
}

// KernelTime returns the baseline latency of a node's kernel with its
// weights in the given layout: max of compute time and memory time
// (roofline), plus the launch overhead.
func (c *CostModel) KernelTime(n *graph.Node, l Layout) units.Duration {
	return units.MaxDuration(c.computeTime(n), c.memTime(n, l)) + c.Dev.KernelLaunch
}

// TransformTime returns the latency of a dedicated UM→TM layout-transform
// kernel over n bytes. Dedicated 2.5D re-tiling is scatter-bound, not
// bandwidth-bound: pixel-wise image writes with per-texel address
// arithmetic reach only a small fraction of the UM bandwidth (Table 1
// measures ~5–10 ms/MB of transform time across frameworks; ~1 ms/MB here
// is the well-implemented floor). This cost is precisely what §4.4's
// rewritten kernels avoid by folding vectorized loads into compute.
func (c *CostModel) TransformTime(n units.Bytes) units.Duration {
	const scatterEfficiency = 0.015 // fraction of UM bandwidth a scatter kernel sustains
	bw := units.Bandwidth(float64(c.Dev.UMBW) * scatterEfficiency)
	return bw.Time(n) + c.Dev.KernelLaunch
}

// GraphTime sums baseline kernel times over a whole graph — the
// execution-phase latency under a preloading framework with the given
// layout and per-kernel efficiency factor (≥1; 1 = ideal).
func (c *CostModel) GraphTime(g *graph.Graph, l Layout, inefficiency float64) units.Duration {
	var total units.Duration
	for _, n := range g.Nodes() {
		total += units.Duration(float64(c.KernelTime(n, l)) * inefficiency)
	}
	return total
}
