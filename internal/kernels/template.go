package kernels

import (
	"fmt"
	"strconv"
	"strings"
)

// The paper generates GPU kernels from Jinja templates (§4.4). This is a
// minimal text-template engine with the two constructs those templates
// need: variable substitution and integer-range loops.
//
//	{{name}}                 — substitute a variable
//	{%for i in 0..4%}…{%endfor%} — repeat the body, binding i to 0,1,2,3
//
// Loop bounds may themselves be variables. Loops nest; unknown variables
// and unterminated loops are errors, so template bugs surface in tests
// rather than as malformed kernel source.

// Template is a parsed kernel template.
type Template struct {
	name string
	text string
}

// NewTemplate wraps kernel source text as a template.
func NewTemplate(name, text string) *Template { return &Template{name: name, text: text} }

// Render substitutes vars into the template.
func (t *Template) Render(vars map[string]string) (string, error) {
	out, rest, err := render(t.text, vars, false)
	if err != nil {
		return "", fmt.Errorf("template %s: %w", t.name, err)
	}
	if rest != "" {
		return "", fmt.Errorf("template %s: unexpected {%%endfor%%}", t.name)
	}
	return out, nil
}

// render processes text until EOF or, when inLoop is set, a matching
// {%endfor%}. It returns the rendered output and the unconsumed tail.
func render(text string, vars map[string]string, inLoop bool) (out, rest string, err error) {
	var b strings.Builder
	for {
		i := strings.Index(text, "{")
		if i < 0 || i+1 >= len(text) {
			if inLoop {
				return "", "", fmt.Errorf("missing {%%endfor%%}")
			}
			b.WriteString(text)
			return b.String(), "", nil
		}
		b.WriteString(text[:i])
		text = text[i:]
		switch {
		case strings.HasPrefix(text, "{{"):
			end := strings.Index(text, "}}")
			if end < 0 {
				return "", "", fmt.Errorf("unterminated {{")
			}
			name := strings.TrimSpace(text[2:end])
			v, ok := vars[name]
			if !ok {
				return "", "", fmt.Errorf("unknown variable %q", name)
			}
			b.WriteString(v)
			text = text[end+2:]
		case strings.HasPrefix(text, "{%"):
			end := strings.Index(text, "%}")
			if end < 0 {
				return "", "", fmt.Errorf("unterminated {%%")
			}
			directive := strings.TrimSpace(text[2:end])
			text = text[end+2:]
			switch {
			case directive == "endfor":
				if !inLoop {
					return "", "", fmt.Errorf("stray {%%endfor%%}")
				}
				return b.String(), text, nil
			case strings.HasPrefix(directive, "for "):
				varName, lo, hi, err := parseFor(directive, vars)
				if err != nil {
					return "", "", err
				}
				var body, tail string
				for i := lo; i < hi; i++ {
					inner := copyVars(vars)
					inner[varName] = strconv.Itoa(i)
					body, tail, err = render(text, inner, true)
					if err != nil {
						return "", "", err
					}
					b.WriteString(body)
				}
				if lo >= hi {
					// Still must consume the loop body.
					if _, tail, err = render(text, vars, true); err != nil {
						return "", "", err
					}
				}
				text = tail
			default:
				return "", "", fmt.Errorf("unknown directive %q", directive)
			}
		default:
			b.WriteByte(text[0])
			text = text[1:]
		}
	}
}

// parseFor parses "for i in LO..HI" with variable or literal bounds.
func parseFor(directive string, vars map[string]string) (name string, lo, hi int, err error) {
	fields := strings.Fields(directive)
	if len(fields) != 4 || fields[0] != "for" || fields[2] != "in" {
		return "", 0, 0, fmt.Errorf("malformed loop %q", directive)
	}
	bounds := strings.SplitN(fields[3], "..", 2)
	if len(bounds) != 2 {
		return "", 0, 0, fmt.Errorf("malformed range %q", fields[3])
	}
	lo, err = resolveInt(bounds[0], vars)
	if err != nil {
		return "", 0, 0, err
	}
	hi, err = resolveInt(bounds[1], vars)
	if err != nil {
		return "", 0, 0, err
	}
	return fields[1], lo, hi, nil
}

func resolveInt(s string, vars map[string]string) (int, error) {
	if v, ok := vars[s]; ok {
		s = v
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad loop bound %q", s)
	}
	return n, nil
}

func copyVars(vars map[string]string) map[string]string {
	out := make(map[string]string, len(vars)+1)
	for k, v := range vars {
		out[k] = v
	}
	return out
}
