package kernels

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/units"
)

func TestTemplateSubstitution(t *testing.T) {
	tpl := NewTemplate("t", "kernel {{name}} size {{n}}")
	out, err := tpl.Render(map[string]string{"name": "mm", "n": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "kernel mm size 4" {
		t.Errorf("render = %q", out)
	}
}

func TestTemplateUnknownVariable(t *testing.T) {
	if _, err := NewTemplate("t", "{{missing}}").Render(nil); err == nil {
		t.Fatal("unknown variable must error")
	}
}

func TestTemplateLoop(t *testing.T) {
	tpl := NewTemplate("t", "{%for i in 0..3%}[{{i}}]{%endfor%}")
	out, err := tpl.Render(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "[0][1][2]" {
		t.Errorf("render = %q", out)
	}
}

func TestTemplateLoopVariableBounds(t *testing.T) {
	tpl := NewTemplate("t", "{%for i in 0..n%}x{%endfor%}")
	out, err := tpl.Render(map[string]string{"n": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "xxxxx" {
		t.Errorf("render = %q", out)
	}
}

func TestTemplateNestedLoops(t *testing.T) {
	tpl := NewTemplate("t", "{%for i in 0..2%}{%for j in 0..2%}({{i}},{{j}}){%endfor%}{%endfor%}")
	out, err := tpl.Render(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "(0,0)(0,1)(1,0)(1,1)" {
		t.Errorf("render = %q", out)
	}
}

func TestTemplateEmptyLoop(t *testing.T) {
	tpl := NewTemplate("t", "a{%for i in 0..0%}x{%endfor%}b")
	out, err := tpl.Render(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "ab" {
		t.Errorf("render = %q", out)
	}
}

func TestTemplateErrors(t *testing.T) {
	cases := []string{
		"{%for i in 0..2%}no end",
		"{%endfor%}",
		"{{unclosed",
		"{%for malformed%}{%endfor%}",
		"{%for i in a..b%}{%endfor%}",
		"{%unknown%}",
	}
	for _, src := range cases {
		if _, err := NewTemplate("t", src).Render(nil); err == nil {
			t.Errorf("template %q must error", src)
		}
	}
}

func TestGeneratedNaiveKernel(t *testing.T) {
	n := &graph.Node{ID: 3, Name: "h0.mlp.fc1", Parts: []graph.Part{{
		Kind: graph.MatMul, Weight: units.MB, InBytes: 64 * units.KB, OutBytes: 64 * units.KB, MACs: 1e6,
	}}}
	k, err := NewRewriter().Generate(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Pipelined {
		t.Error("zero stream bytes must yield the naive kernel")
	}
	if !strings.Contains(k.Source, "__kernel void k3_h0_mlp_fc1_naive") {
		t.Errorf("kernel name mangling wrong:\n%s", k.Source)
	}
	if !k.BranchFree() {
		t.Error("naive kernel must be branch-free")
	}
}

func TestGeneratedPipelinedKernelIsBranchFree(t *testing.T) {
	n := &graph.Node{ID: 7, Name: "h1.attn.q", Parts: []graph.Part{{
		Kind: graph.MatMul, Weight: 4 * units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1e8,
	}}}
	k, err := NewRewriter().Generate(n, 2*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Pipelined || k.StreamSize != 2*units.MB {
		t.Errorf("kernel = %+v", k)
	}
	// §4.4's core property: the rewritten kernel has no conditionals.
	if !k.BranchFree() {
		t.Errorf("pipelined kernel must be branch-free:\n%s", k.Source)
	}
	// And it must actually contain the pipeline load.
	if !strings.Contains(k.Source, "vload4") || !strings.Contains(k.Source, "stream_dst") {
		t.Error("pipelined kernel must embed stream loads")
	}
}

func TestBranchyVariantHasBranches(t *testing.T) {
	n := &graph.Node{ID: 1, Name: "mm", Parts: []graph.Part{{
		Kind: graph.MatMul, Weight: units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1e6,
	}}}
	k, err := NewRewriter().GenerateBranchy(n, units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if k.BranchFree() {
		t.Error("the rejected branchy variant must contain branches")
	}
}

func TestPipelineIterationsClamped(t *testing.T) {
	// A tiny kernel with a huge stream: c must clamp to k so the template
	// still renders a valid loop structure.
	n := &graph.Node{ID: 2, Name: "small", Parts: []graph.Part{{
		Kind: graph.Add, InBytes: units.KB, OutBytes: units.KB,
	}}}
	k, err := NewRewriter().Generate(n, 100*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, "const int c =") {
		t.Error("pipelined kernel missing c")
	}
}
