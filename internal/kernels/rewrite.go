package kernels

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/units"
)

// Figure 5's three matrix-kernel variants as templates. The rewritten
// (pipelined) kernel enforces a uniform load–compute schedule: every thread
// executes the same instruction sequence, so there is no warp divergence,
// and each iteration prefetches the next streamed tile while computing on
// the current one.

var naiveTemplate = NewTemplate("naive", `// {{name}}: baseline kernel (Figure 5a)
__kernel void {{name}}(__read_only image2d_t tensorA,
                       __read_only image2d_t tensorB,
                       __write_only image2d_t tensorC) {
    const int tid = get_global_id(0);
    float4 acc = (float4)(0.0f);
    float4 a = read_imagef(tensorA, smp, coord_a(tid));
    for (int i = 0; i < {{k}}; ++i) {
        float4 b = read_imagef(tensorB, smp, coord_b(i, tid));
        acc = fma(a, b, acc);
    }
    write_imagef(tensorC, coord_c(tid), acc);
}
`)

var pipelinedTemplate = NewTemplate("pipelined", `// {{name}}: rewritten kernel with pipeline loading (Figure 5b)
// Streams {{streamBytes}} bytes of tensor-list L into texture memory while
// computing; uniform schedule, branch-free.
__kernel void {{name}}(__read_only image2d_t tensorA,
                       __read_only image2d_t tensorB,
                       __write_only image2d_t tensorC,
                       __global const float4* stream_src,
                       __write_only image2d_t stream_dst) {
    const int tid = get_global_id(0);
    const int c = {{c}}; // ws / thread_num: pipelined iterations
    float4 acc = (float4)(0.0f);
    float4 a = read_imagef(tensorA, smp, coord_a(tid));
    for (int i = 0; i < c; ++i) {
        float4 b = read_imagef(tensorB, smp, coord_b(i, tid));
        acc = fma(a, b, acc);
        float4 v = vload4(0, stream_src + (i * {{threads}} + tid) * 4);
        write_imagef(stream_dst, stream_coord(i * {{threads}} + tid), v);
    }
    for (int i = c; i < {{k}}; ++i) {
        float4 b = read_imagef(tensorB, smp, coord_b(i, tid));
        acc = fma(a, b, acc);
    }
    write_imagef(tensorC, coord_c(tid), acc);
}
`)

var branchyTemplate = NewTemplate("branchy", `// {{name}}: naive interleave with divergent branches (rejected design)
__kernel void {{name}}(__read_only image2d_t tensorA,
                       __read_only image2d_t tensorB,
                       __write_only image2d_t tensorC,
                       __global const float4* stream_src,
                       __write_only image2d_t stream_dst) {
    const int tid = get_global_id(0);
    float4 acc = (float4)(0.0f);
    float4 a = read_imagef(tensorA, smp, coord_a(tid));
    if (tid < {{compSize}}) {
        for (int i = 0; i < {{k}}; ++i) {
            float4 b = read_imagef(tensorB, smp, coord_b(i, tid));
            acc = fma(a, b, acc);
            if (tid < {{ws}}) {
                float4 v = vload4(0, stream_src + tid * 4);
                write_imagef(stream_dst, stream_coord(tid), v);
            }
        }
        write_imagef(tensorC, coord_c(tid), acc);
    } else {
        if (tid < {{ws}}) {
            float4 v = vload4(0, stream_src + tid * 4);
            write_imagef(stream_dst, stream_coord(tid), v);
        }
    }
}
`)

// Kernel is a generated GPU kernel.
type Kernel struct {
	Name       string
	Source     string
	Pipelined  bool        // carries embedded pipeline loading
	StreamSize units.Bytes // bytes streamed by the embedded loads
}

// BranchFree reports whether the kernel source contains no conditional
// branches — the §4.4 SIMT-efficiency property the rewriter guarantees.
func (k Kernel) BranchFree() bool {
	return !strings.Contains(k.Source, "if (") && !strings.Contains(k.Source, "else")
}

// Rewriter instantiates kernels from templates following the overlap plan.
type Rewriter struct {
	Threads int // GPU threads per dispatch (GWS)
}

// NewRewriter returns a rewriter with the default dispatch width.
func NewRewriter() *Rewriter { return &Rewriter{Threads: 256} }

// kname builds an OpenCL-safe kernel symbol from a node name.
func kname(n *graph.Node, suffix string) string {
	repl := strings.NewReplacer(".", "_", "-", "_", " ", "_")
	return fmt.Sprintf("k%d_%s_%s", n.ID, repl.Replace(n.Name), suffix)
}

// reductionDepth approximates the kernel's inner loop trip count from its
// input volume (texels of depth 4, fp16).
func reductionDepth(n *graph.Node) int {
	texels := int64(n.InBytes()) / int64(tensor.TexelDepth*tensor.FP16.Size())
	if texels < 1 {
		texels = 1
	}
	if texels > 1<<20 {
		texels = 1 << 20
	}
	return int(texels)
}

// Generate produces the kernel for a node. With streamBytes == 0 the naive
// baseline template is used; otherwise the branch-free pipelined template
// embeds loads for streamBytes of upcoming weights (Figure 5b).
func (r *Rewriter) Generate(n *graph.Node, streamBytes units.Bytes) (Kernel, error) {
	k := reductionDepth(n)
	if streamBytes <= 0 {
		src, err := naiveTemplate.Render(map[string]string{
			"name": kname(n, "naive"),
			"k":    strconv.Itoa(k),
		})
		if err != nil {
			return Kernel{}, err
		}
		return Kernel{Name: kname(n, "naive"), Source: src}, nil
	}

	// Pipelined iterations: spread the streamed texels over the dispatch,
	// clamped to the compute loop so the pipeline drains before the tail.
	texels := int64(streamBytes) / int64(tensor.TexelDepth*tensor.FP16.Size())
	c := int(texels / int64(r.Threads))
	if c < 1 {
		c = 1
	}
	if c > k {
		c = k
	}
	src, err := pipelinedTemplate.Render(map[string]string{
		"name":        kname(n, "pipelined"),
		"k":           strconv.Itoa(k),
		"c":           strconv.Itoa(c),
		"threads":     strconv.Itoa(r.Threads),
		"streamBytes": strconv.FormatInt(int64(streamBytes), 10),
	})
	if err != nil {
		return Kernel{}, err
	}
	return Kernel{
		Name: kname(n, "pipelined"), Source: src,
		Pipelined: true, StreamSize: streamBytes,
	}, nil
}

// GenerateBranchy produces the rejected divergent variant for comparison
// (used by the rewriting ablation and tests).
func (r *Rewriter) GenerateBranchy(n *graph.Node, streamBytes units.Bytes) (Kernel, error) {
	texels := int64(streamBytes) / int64(tensor.TexelDepth*tensor.FP16.Size())
	src, err := branchyTemplate.Render(map[string]string{
		"name":     kname(n, "branchy"),
		"k":        strconv.Itoa(reductionDepth(n)),
		"compSize": strconv.Itoa(r.Threads),
		"ws":       strconv.FormatInt(texels, 10),
	})
	if err != nil {
		return Kernel{}, err
	}
	return Kernel{Name: kname(n, "branchy"), Source: src, StreamSize: streamBytes}, nil
}
