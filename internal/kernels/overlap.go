package kernels

import (
	"math"

	"repro/internal/graph"
	"repro/internal/opclass"
	"repro/internal/units"
)

// overlapCurve holds the coefficients of the quadratic slowdown model
// slowdown(r) = 1 + a·r + b·r², where r is the ratio of extra streamed
// bytes to the kernel's own input volume (the Figure 2 x-axis).
type overlapCurve struct{ a, b float64 }

// Per-kind curves calibrated to Figure 2: Softmax and LayerNorm blow up at
// small ratios (they cross 20–30% overhead well before r=0.5); MatMul grows
// slowly; elementwise ops sit in between with a shallow slope.
var overlapCurves = map[graph.OpKind]overlapCurve{
	graph.MatMul:    {a: 0.12, b: 0.02},
	graph.Conv:      {a: 0.13, b: 0.02},
	graph.Attention: {a: 0.15, b: 0.03},
	graph.Softmax:   {a: 0.80, b: 1.20},
	graph.LayerNorm: {a: 0.70, b: 1.00},
	graph.GroupNorm: {a: 0.72, b: 1.05},
}

// classCurve is the fallback for kinds without a dedicated curve.
func classCurve(c opclass.Class) overlapCurve {
	switch c {
	case opclass.Reusable:
		return overlapCurve{a: 0.13, b: 0.02}
	case opclass.Hierarchical:
		return overlapCurve{a: 0.80, b: 1.10}
	default: // elemental
		return overlapCurve{a: 0.10, b: 0.01}
	}
}

// curveFor resolves the slowdown curve for an operator kind.
func curveFor(k graph.OpKind) overlapCurve {
	if c, ok := overlapCurves[k]; ok {
		return c
	}
	return classCurve(opclass.Classify(k))
}

// OverlapSlowdown returns the multiplicative latency factor for a kernel of
// the given kind carrying extra load of `ratio` times its own input volume.
func OverlapSlowdown(kind graph.OpKind, ratio float64) float64 {
	if ratio <= 0 {
		return 1
	}
	c := curveFor(kind)
	return 1 + c.a*ratio + c.b*ratio*ratio
}

// OverlapRatioAt inverts OverlapSlowdown: the extra-load ratio at which the
// kernel's latency increase reaches `increase` (e.g. 0.20 for the reusable
// threshold). Solves a·r + b·r² = increase for r ≥ 0.
func OverlapRatioAt(kind graph.OpKind, increase float64) float64 {
	if increase <= 0 {
		return 0
	}
	c := curveFor(kind)
	if c.b == 0 {
		if c.a == 0 {
			return 0
		}
		return increase / c.a
	}
	// r = (-a + sqrt(a² + 4b·inc)) / (2b)
	disc := c.a*c.a + 4*c.b*increase
	return (-c.a + math.Sqrt(disc)) / (2 * c.b)
}

// Pipeline-hiding parameters by class: how efficiently the embedded stream
// uses the UM→TM path, what fraction of the kernel's compute slack can hide
// stream work, and how strongly streaming interferes with the kernel's own
// memory traffic. Hierarchical kernels synchronize stepwise and leave
// almost no room (§4.2).
type pipelineParams struct {
	streamEff    float64 // fraction of UM bandwidth the embedded stream gets
	hideFrac     float64 // fraction of compute slack usable for hiding
	interference float64 // contention slowdown coefficient
}

func pipelineFor(c opclass.Class) pipelineParams {
	switch c {
	case opclass.Reusable:
		return pipelineParams{streamEff: 0.95, hideFrac: 1.0, interference: 0.05}
	case opclass.Elemental:
		return pipelineParams{streamEff: 0.90, hideFrac: 1.0, interference: 0.12}
	default: // hierarchical
		return pipelineParams{streamEff: 0.30, hideFrac: 0.30, interference: 0.90}
	}
}

// PipelinedTime returns the latency of a kernel rewritten with embedded
// pipeline loading (§4.4) carrying extraBytes of weight transforms.
//
// The model is physical: the stream's transfer work runs on the UM→TM path
// while arithmetic proceeds, so work hidden behind the kernel's compute
// slack (compute − memory time) is free; the visible remainder and a
// class-dependent contention term extend the kernel. Compute-bound matmuls
// therefore carry large streams nearly for free while hierarchical kernels
// pay dearly — the Figure 2 behaviour.
func (c *CostModel) PipelinedTime(n *graph.Node, l Layout, extraBytes units.Bytes) units.Duration {
	base := c.KernelTime(n, l)
	if extraBytes <= 0 {
		return base
	}
	class := opclass.ClassifyNode(n)
	pp := pipelineFor(class)

	streamBW := units.Bandwidth(float64(c.Dev.UMBW) * pp.streamEff)
	work := streamBW.Time(extraBytes)

	compute := c.computeTime(n)
	mem := c.memTime(n, l)
	slack := units.Duration(0)
	if compute > mem {
		slack = compute - mem
	}
	hidden := units.Duration(float64(slack) * pp.hideFrac)
	visible := units.Duration(0)
	if work > hidden {
		visible = work - hidden
	}
	interference := units.Duration(pp.interference * float64(minDuration(work, base)))
	return base + visible + interference
}

func minDuration(a, b units.Duration) units.Duration {
	if a < b {
		return a
	}
	return b
}

// UnrewrittenOverlapTime returns the latency of carrying extraBytes without
// kernel rewriting: the naive interleave of Figure 5(a)'s branchy variant,
// where per-thread conditionals cause warp divergence and the transform is
// not hidden behind arithmetic. Used by the Figure 7 ablation.
func (c *CostModel) UnrewrittenOverlapTime(n *graph.Node, l Layout, extraBytes units.Bytes) units.Duration {
	const divergencePenalty = 1.18 // branchy load/compute interleave
	base := c.KernelTime(n, l)
	if extraBytes == 0 {
		return base
	}
	return units.Duration(float64(base)*divergencePenalty) + c.TransformTime(extraBytes)
}

// LoadCapacityBytes returns C_ℓ in bytes for a node: the largest extra load
// whose PipelinedTime stays within the class threshold of the baseline
// (§4.2 — 0% hierarchical, 20% reusable, 300% elemental), additionally
// bounded by the bytes the UM side can physically deliver during the
// allowed runtime. Found by bisection on the pipelined cost model.
func (c *CostModel) LoadCapacityBytes(n *graph.Node, l Layout) units.Bytes {
	class := opclass.ClassifyNode(n)
	threshold := class.Threshold()
	if threshold <= 0 {
		return 0
	}
	base := c.KernelTime(n, l)
	budget := units.Duration(float64(base) * (1 + threshold))
	byBandwidth := c.Dev.UMBW.Bytes(budget)

	lo, hi := units.Bytes(0), byBandwidth
	for i := 0; i < 40 && lo < hi; i++ {
		mid := lo + (hi-lo+1)/2
		if c.PipelinedTime(n, l, mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
