// Package units defines the physical quantities used throughout the
// simulator: byte sizes, bandwidths, and simulated durations.
//
// Simulated time is kept as a float64 number of milliseconds rather than
// time.Duration so that sub-microsecond kernel events and multi-second model
// loads coexist without overflow or quantization, and so arithmetic with
// bandwidths stays trivial.
package units

import "fmt"

// Bytes is a size in bytes. Weight tensors on mobile easily exceed 4 GiB in
// aggregate, so it is an int64.
type Bytes int64

// Common byte multiples.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// MiB returns the size in mebibytes as a float, for reporting.
func (b Bytes) MiB() float64 { return float64(b) / float64(MB) }

// GiB returns the size in gibibytes as a float, for reporting.
func (b Bytes) GiB() float64 { return float64(b) / float64(GB) }

// String formats the size with a binary unit suffix.
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2f GB", b.GiB())
	case b >= MB:
		return fmt.Sprintf("%.1f MB", b.MiB())
	case b >= KB:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// Duration is simulated time in milliseconds.
type Duration float64

// Common durations.
const (
	Microsecond Duration = 0.001
	Millisecond Duration = 1
	Second      Duration = 1000
)

// Milliseconds returns the duration as a float64 millisecond count.
func (d Duration) Milliseconds() float64 { return float64(d) }

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1000 }

// String formats the duration with an appropriate unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d))
	default:
		return fmt.Sprintf("%.1f us", float64(d)*1000)
	}
}

// Bandwidth is a transfer rate in bytes per millisecond. Constructed from
// GB/s via GBps, which is how mobile memory hierarchies are specified.
type Bandwidth float64

// GBps converts a rate in gigabytes per second into a Bandwidth.
func GBps(v float64) Bandwidth { return Bandwidth(v * float64(GB) / 1000) }

// GBpsValue reports the bandwidth back in GB/s for display.
func (bw Bandwidth) GBpsValue() float64 { return float64(bw) * 1000 / float64(GB) }

// Time returns how long moving n bytes takes at this bandwidth.
// A zero bandwidth yields +Inf-free behaviour by returning 0 for 0 bytes and
// panicking otherwise: a zero-bandwidth channel is a configuration error.
func (bw Bandwidth) Time(n Bytes) Duration {
	if n == 0 {
		return 0
	}
	if bw <= 0 {
		panic(fmt.Sprintf("units: transfer of %v over zero bandwidth", n))
	}
	return Duration(float64(n) / float64(bw))
}

// Bytes returns how many bytes move in d at this bandwidth.
func (bw Bandwidth) Bytes(d Duration) Bytes {
	if d <= 0 {
		return 0
	}
	return Bytes(float64(bw) * float64(d))
}

// String formats the bandwidth in GB/s.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.1f GB/s", bw.GBpsValue()) }

// FLOPs counts floating point operations; MACs count multiply-accumulates
// (1 MAC = 2 FLOPs).
type FLOPs int64

// MACs is a multiply-accumulate count.
type MACs int64

// FLOPs converts a MAC count to FLOPs.
func (m MACs) FLOPs() FLOPs { return FLOPs(2 * m) }

// GigaMACs reports the count in units of 1e9 MACs for display.
func (m MACs) GigaMACs() float64 { return float64(m) / 1e9 }

// Throughput is a compute rate in FLOPs per millisecond.
type Throughput float64

// GFLOPS converts a rate in gigaFLOPs per second into a Throughput.
func GFLOPS(v float64) Throughput { return Throughput(v * 1e9 / 1000) }

// Time returns how long f FLOPs take at this throughput.
func (t Throughput) Time(f FLOPs) Duration {
	if f == 0 {
		return 0
	}
	if t <= 0 {
		panic("units: compute on zero-throughput device")
	}
	return Duration(float64(f) / float64(t))
}

// MaxDuration returns the larger of two durations.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinBytes returns the smaller of two sizes.
func MinBytes(a, b Bytes) Bytes {
	if a < b {
		return a
	}
	return b
}
