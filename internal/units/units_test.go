package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2 * KB, "2.0 KB"},
		{3 * MB, "3.0 MB"},
		{5 * GB, "5.00 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthTime(t *testing.T) {
	bw := GBps(1) // 1 GB per 1000 ms
	if got := bw.Time(GB); math.Abs(float64(got)-1000) > 1e-9 {
		t.Errorf("1GB at 1GB/s = %v ms, want 1000", float64(got))
	}
	if got := bw.Time(0); got != 0 {
		t.Errorf("0 bytes should take 0 time, got %v", got)
	}
	// Figure 1(a) disk bandwidth: 1.5 GB/s moving 150 MB ~ 97.66 ms.
	disk := GBps(1.5)
	got := disk.Time(150 * MB)
	if got < 95 || got > 100 {
		t.Errorf("150MB over 1.5GB/s = %v ms, want ~97.7", float64(got))
	}
}

func TestBandwidthZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("transfer over zero bandwidth should panic")
		}
	}()
	Bandwidth(0).Time(1)
}

func TestThroughput(t *testing.T) {
	tp := GFLOPS(2000) // 2 TFLOPS
	// 4.1 GMACs (ResNet50) = 8.2 GFLOPs -> 4.1 ms at 2 TFLOPS.
	got := tp.Time(MACs(4_100_000_000).FLOPs())
	if math.Abs(float64(got)-4.1) > 1e-6 {
		t.Errorf("8.2 GFLOPs at 2 TFLOPS = %v ms, want 4.1", float64(got))
	}
}

func TestDurationString(t *testing.T) {
	if s := Duration(0.5).String(); !strings.Contains(s, "us") {
		t.Errorf("0.5ms should format as us, got %q", s)
	}
	if s := Duration(1500).String(); !strings.Contains(s, "s") {
		t.Errorf("1500ms should format as s, got %q", s)
	}
	if s := Duration(12).String(); !strings.Contains(s, "ms") {
		t.Errorf("12ms should format as ms, got %q", s)
	}
}

func TestBandwidthRoundTrip(t *testing.T) {
	// Time and Bytes must be inverse up to float precision.
	f := func(raw float64, kb uint16) bool {
		// Map raw into a physically sensible range (0.1 .. 1000 GB/s).
		gbps := 0.1 + math.Mod(math.Abs(raw), 1000)
		if math.IsNaN(gbps) || math.IsInf(gbps, 0) {
			gbps = 1
		}
		bw := GBps(gbps)
		n := Bytes(kb) * KB
		back := bw.Bytes(bw.Time(n))
		diff := math.Abs(float64(back - n))
		return diff <= math.Max(1, 1e-9*float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACsFLOPs(t *testing.T) {
	if MACs(5).FLOPs() != 10 {
		t.Errorf("5 MACs = %d FLOPs, want 10", MACs(5).FLOPs())
	}
	if g := MACs(16_000_000_000).GigaMACs(); math.Abs(g-16) > 1e-9 {
		t.Errorf("GigaMACs = %v, want 16", g)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if MaxDuration(1, 2) != 2 || MaxDuration(3, 2) != 3 {
		t.Error("MaxDuration wrong")
	}
	if MinBytes(1, 2) != 1 || MinBytes(3, 2) != 2 {
		t.Error("MinBytes wrong")
	}
}
