package cpsat

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks over the model shapes OPG actually emits: knapsack-style
// chunk allocation (C0 completeness rows + C3 capacity rows + C2-like
// cumulative rows) and implication-heavy loading-distance models. `make
// bench-solver` runs these plus the Table 4 cold solves; the nightly CI job
// archives the results as BENCH_solver.json so the solver's perf trajectory
// is comparable across PRs.

// buildKnapsack models one OPG window: nw weights of up to maxChunks chunks
// allocated across nl layers under per-layer capacities, minimizing a
// proximity-ranked objective — the same row/column structure tryCP builds.
func buildKnapsack(nw, nl, maxChunks int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	caps := make([]int64, nl)
	layerVars := make([][]Var, nl)
	for l := range caps {
		caps[l] = int64(2 + rng.Intn(maxChunks))
	}
	var objVars []Var
	var objCoefs []int64
	for w := 0; w < nw; w++ {
		chunks := int64(1 + rng.Intn(maxChunks))
		row := make([]Var, nl)
		ones := make([]int64, nl)
		for l := 0; l < nl; l++ {
			hi := chunks
			if caps[l] < hi {
				hi = caps[l]
			}
			row[l] = m.NewIntVar(0, hi, "x")
			ones[l] = 1
			layerVars[l] = append(layerVars[l], row[l])
			objVars = append(objVars, row[l])
			objCoefs = append(objCoefs, int64(l))
		}
		// C0: the weight's chunks must all be placed — but never more than
		// the layers can jointly carry, so the model stays feasible.
		var capSum int64
		for l := 0; l < nl; l++ {
			capSum += caps[l]
		}
		if chunks > capSum {
			chunks = capSum
		}
		m.AddLinearEQ(row, ones, chunks)
	}
	for l, vars := range layerVars {
		m.AddLinearLE(vars, onesBench(len(vars)), caps[l]*int64(1+nw/3))
	}
	m.Minimize(objVars, objCoefs)
	return m
}

// buildImplicationChain models C1 loading-distance reasoning: a chain of
// (x_i >= 1) => (z <= d_i) implications against a maximized z.
func buildImplicationChain(n int) *Model {
	m := NewModel()
	z := m.NewIntVar(0, int64(n), "z")
	var vars []Var
	var coefs []int64
	for i := 0; i < n; i++ {
		x := m.NewIntVar(0, 4, "x")
		m.AddImplication(x, 1, z, int64(n-i))
		vars = append(vars, x)
		coefs = append(coefs, 1)
	}
	m.AddLinearRange(vars, coefs, int64(n), int64(4*n))
	vars = append(vars, z)
	coefs = append(coefs, -int64(8*n))
	m.Minimize(vars, coefs)
	return m
}

func benchSolve(b *testing.B, build func() *Model, opts Options) {
	b.Helper()
	b.ReportAllocs()
	var last Result
	for i := 0; i < b.N; i++ {
		last = build().Solve(opts)
	}
	if last.Status == Unknown && opts.MaxBranches == 0 {
		b.Fatal("unbounded solve returned UNKNOWN")
	}
	b.ReportMetric(float64(last.Branches), "branches")
	b.ReportMetric(float64(last.Propagations), "props")
}

func BenchmarkKnapsackSmall(b *testing.B) {
	benchSolve(b, func() *Model { return buildKnapsack(6, 4, 8, 1) }, Options{})
}

func BenchmarkKnapsackWindow(b *testing.B) {
	// One realistic OPG window: 12 weights × 12 candidate layers.
	benchSolve(b, func() *Model { return buildKnapsack(12, 12, 16, 7) }, Options{MaxBranches: 20000})
}

func BenchmarkKnapsackWide(b *testing.B) {
	// A wide budget-bound window: per-branch cost dominates.
	benchSolve(b, func() *Model { return buildKnapsack(24, 16, 24, 3) }, Options{MaxBranches: 8000})
}

func BenchmarkImplicationChain(b *testing.B) {
	benchSolve(b, func() *Model { return buildImplicationChain(64) }, Options{MaxBranches: 20000})
}

// buildContendedKnapsack is buildKnapsack without the capacity headroom:
// layer capacities barely cover the joint demand, which is the boundary
// window of a contended Llama2-70B solve — the shape where the search
// conflicts constantly and CDCL's backjumping pays or doesn't.
func buildContendedKnapsack(nw, nl, maxChunks int, seed int64) *Model {
	m := buildKnapsack(nw, nl, maxChunks, seed)
	// Retighten every capacity row to its bare cap (buildKnapsack scales
	// them by 1+nw/3): the same rows exist, so this only shrinks hi.
	for i := range m.linears {
		l := &m.linears[i]
		if l.lo < -1<<40 && len(l.vars) == nw { // capacity rows span all weights
			l.hi = l.hi / int64(1+nw/3)
		}
	}
	return m
}

// BenchmarkKnapsackContended70B is the contended boundary-window family
// at Llama2-70B window width, budget-bound like the cold solves: the
// branch budget is exhausted, so time measures per-branch cost under
// constant conflict pressure (1-UIP analysis + backjumping included).
func BenchmarkKnapsackContended70B(b *testing.B) {
	benchSolve(b, func() *Model { return buildContendedKnapsack(24, 16, 24, 3) },
		Options{Learn: true, MaxBranches: 4000})
}

func onesBench(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
