package cpsat

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSimpleOptimization(t *testing.T) {
	// Minimize x + 2y subject to x + y >= 5, x in [0,10], y in [0,10].
	m := NewModel()
	x := m.NewIntVar(0, 10, "x")
	y := m.NewIntVar(0, 10, "y")
	m.AddLinearRange([]Var{x, y}, []int64{1, 1}, 5, 20)
	m.Minimize([]Var{x, y}, []int64{1, 2})
	r := m.Solve(Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v, want OPTIMAL", r.Status)
	}
	// Best: y = 0, x = 5 → obj 5.
	if r.Objective != 5 || r.Value(x) != 5 || r.Value(y) != 0 {
		t.Errorf("solution x=%d y=%d obj=%d, want x=5 y=0 obj=5", r.Value(x), r.Value(y), r.Objective)
	}
}

func TestEquality(t *testing.T) {
	// x + y = 7, minimize |preference|: obj = 3x + y → x = 0, y = 7.
	m := NewModel()
	x := m.NewIntVar(0, 7, "x")
	y := m.NewIntVar(0, 7, "y")
	m.AddLinearEQ([]Var{x, y}, []int64{1, 1}, 7)
	m.Minimize([]Var{x, y}, []int64{3, 1})
	r := m.Solve(Options{})
	if r.Status != Optimal || r.Value(x) != 0 || r.Value(y) != 7 {
		t.Fatalf("got %v x=%d y=%d", r.Status, r.Value(x), r.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewIntVar(0, 3, "x")
	m.AddLinearRange([]Var{x}, []int64{1}, 5, 10) // x >= 5 impossible
	r := m.Solve(Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want INFEASIBLE", r.Status)
	}
}

func TestImplication(t *testing.T) {
	// (x >= 1) => (z <= 3). Force x = 2; z must drop to <= 3.
	m := NewModel()
	x := m.NewIntVar(2, 2, "x")
	z := m.NewIntVar(0, 10, "z")
	m.AddImplication(x, 1, z, 3)
	// Maximize z by minimizing -z.
	m.Minimize([]Var{z}, []int64{-1})
	r := m.Solve(Options{})
	if r.Status != Optimal || r.Value(z) != 3 {
		t.Fatalf("got %v z=%d, want z=3", r.Status, r.Value(z))
	}
}

func TestImplicationContrapositive(t *testing.T) {
	// (x >= 1) => (z <= 3). Force z = 5; x must be 0.
	m := NewModel()
	x := m.NewIntVar(0, 4, "x")
	z := m.NewIntVar(5, 5, "z")
	m.AddImplication(x, 1, z, 3)
	m.Minimize([]Var{x}, []int64{-1}) // maximize x
	r := m.Solve(Options{})
	if r.Status != Optimal || r.Value(x) != 0 {
		t.Fatalf("got %v x=%d, want x=0", r.Status, r.Value(x))
	}
}

func TestNegativeCoefficients(t *testing.T) {
	// 2x - 3y <= 4, maximize x (minimize -x), x,y in [0,5].
	m := NewModel()
	x := m.NewIntVar(0, 5, "x")
	y := m.NewIntVar(0, 5, "y")
	m.AddLinearLE([]Var{x, y}, []int64{2, -3}, 4)
	m.Minimize([]Var{x, y}, []int64{-1, 1})
	r := m.Solve(Options{})
	// x=5 needs 10-3y<=4 → y>=2; obj = -5+2 = -3.
	if r.Status != Optimal || r.Value(x) != 5 || r.Value(y) != 2 {
		t.Fatalf("got %v x=%d y=%d", r.Status, r.Value(x), r.Value(y))
	}
}

func TestKnapsackStyle(t *testing.T) {
	// Chunk-allocation shape: 3 "weights" of sizes 4,3,2 chunks allocated
	// across 2 "layers" with capacities 5 and 4 (total 9 = exactly enough).
	m := NewModel()
	var all []Var
	sizes := []int64{4, 3, 2}
	for wi, size := range sizes {
		row := []Var{
			m.NewIntVar(0, size, "x0"),
			m.NewIntVar(0, size, "x1"),
		}
		m.AddLinearEQ(row, []int64{1, 1}, size) // C0 completeness
		all = append(all, row...)
		_ = wi
	}
	// C3 capacity per layer.
	m.AddLinearLE([]Var{all[0], all[2], all[4]}, []int64{1, 1, 1}, 5)
	m.AddLinearLE([]Var{all[1], all[3], all[5]}, []int64{1, 1, 1}, 4)
	r := m.Solve(Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	l0 := r.Value(all[0]) + r.Value(all[2]) + r.Value(all[4])
	l1 := r.Value(all[1]) + r.Value(all[3]) + r.Value(all[5])
	if l0 > 5 || l1 > 4 || l0+l1 != 9 {
		t.Errorf("allocation l0=%d l1=%d violates capacities", l0, l1)
	}
}

func TestTimeLimitYieldsFeasible(t *testing.T) {
	// A deliberately large search space with an objective: with a tiny
	// branch budget the solver must return FEASIBLE (incumbent, unproven)
	// or UNKNOWN, never OPTIMAL.
	m := NewModel()
	var vars []Var
	var coefs []int64
	for i := 0; i < 40; i++ {
		vars = append(vars, m.NewIntVar(0, 1000, "v"))
		coefs = append(coefs, int64(1+i%7))
	}
	m.AddLinearRange(vars, ones(len(vars)), 15000, 40000)
	m.Minimize(vars, coefs)
	r := m.Solve(Options{MaxBranches: 50})
	if r.Status == Optimal {
		t.Fatalf("50 branches cannot prove optimality of this model")
	}
	if r.Status == Feasible && len(r.Values) == 0 {
		t.Fatal("feasible result must carry values")
	}
}

func TestWallClockLimit(t *testing.T) {
	m := NewModel()
	var vars []Var
	for i := 0; i < 60; i++ {
		vars = append(vars, m.NewIntVar(0, 100, "v"))
	}
	m.AddLinearRange(vars, ones(len(vars)), 2500, 3000)
	m.Minimize(vars, ones(len(vars)))
	start := time.Now()
	r := m.Solve(Options{TimeLimit: 30 * time.Millisecond})
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("solver ignored the time limit: ran %v", el)
	}
	if r.Status == Infeasible {
		t.Fatal("model is feasible")
	}
}

func TestSatisfactionWithoutObjective(t *testing.T) {
	m := NewModel()
	x := m.NewIntVar(0, 4, "x")
	y := m.NewIntVar(0, 4, "y")
	m.AddLinearEQ([]Var{x, y}, []int64{1, 1}, 6)
	r := m.Solve(Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Value(x)+r.Value(y) != 6 {
		t.Error("solution violates the constraint")
	}
}

func TestSolutionsSatisfyConstraintsProperty(t *testing.T) {
	// Property: on random feasible-by-construction models, any returned
	// solution satisfies every constraint.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel()
		nv := 4 + rng.Intn(5)
		vars := make([]Var, nv)
		assign := make([]int64, nv) // a known-feasible assignment
		for i := range vars {
			lo := int64(rng.Intn(5))
			hi := lo + int64(rng.Intn(10))
			vars[i] = m.NewIntVar(lo, hi, "v")
			assign[i] = lo + int64(rng.Intn(int(hi-lo+1)))
		}
		// Build constraints satisfied by `assign`.
		var lins []linear
		for c := 0; c < 3; c++ {
			coefs := make([]int64, nv)
			var val int64
			for i := range coefs {
				coefs[i] = int64(rng.Intn(5) - 2)
				val += coefs[i] * assign[i]
			}
			lo, hi := val-int64(rng.Intn(4)), val+int64(rng.Intn(4))
			m.AddLinearRange(vars, coefs, lo, hi)
			lins = append(lins, linear{vars: vars, coefs: coefs, lo: lo, hi: hi})
		}
		obj := make([]int64, nv)
		for i := range obj {
			obj[i] = int64(rng.Intn(7) - 3)
		}
		m.Minimize(vars, obj)
		r := m.Solve(Options{MaxBranches: 100000})
		if r.Status != Optimal && r.Status != Feasible {
			return false // model is feasible by construction
		}
		for _, l := range lins {
			var v int64
			for i, vr := range l.vars {
				v += l.coefs[i] * r.Values[vr]
			}
			if v < l.lo || v > l.hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4}, {6, 3, 2, 2},
	}
	for _, c := range cases {
		if floorDiv(c.a, c.b) != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, floorDiv(c.a, c.b), c.fl)
		}
		if ceilDiv(c.a, c.b) != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, ceilDiv(c.a, c.b), c.ce)
		}
	}
}

func TestEmptyDomainPanics(t *testing.T) {
	m := NewModel()
	defer func() {
		if recover() == nil {
			t.Fatal("empty domain must panic")
		}
	}()
	m.NewIntVar(5, 2, "bad")
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "OPTIMAL" || Feasible.String() != "FEASIBLE" ||
		Infeasible.String() != "INFEASIBLE" || Unknown.String() != "UNKNOWN" {
		t.Error("status names wrong")
	}
}

func ones(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
