package cpsat

import "testing"

// Conflict-driven learning tests: restarts must actually fire, learned
// nogoods must be installed and propagated, and the learning configuration
// must stay deterministic and exact (same status and objective as the
// plain engine) on the window shapes OPG emits.

// hardKnapsack builds a window model contended enough to generate many
// conflicts: tight per-layer capacities against full-allocation rows.
func hardKnapsack(nw, nl int) *Model {
	m := NewModel()
	layerVars := make([][]Var, nl)
	var objVars []Var
	var objCoefs []int64
	for w := 0; w < nw; w++ {
		row := make([]Var, nl)
		ones := make([]int64, nl)
		for l := 0; l < nl; l++ {
			row[l] = m.NewIntVar(0, 3, "x")
			ones[l] = 1
			layerVars[l] = append(layerVars[l], row[l])
			objVars = append(objVars, row[l])
			objCoefs = append(objCoefs, int64(l+w%3))
		}
		m.AddLinearEQ(row, ones, int64(nl))
	}
	for _, vars := range layerVars {
		ones := make([]int64, len(vars))
		for i := range ones {
			ones[i] = 1
		}
		m.AddLinearLE(vars, ones, int64(nw+1))
	}
	m.Minimize(objVars, objCoefs)
	return m
}

func TestLearningRestartsAndNogoodsFire(t *testing.T) {
	m := hardKnapsack(4, 4)
	res := m.Solve(Options{Learn: true, RestartBase: 8})
	if res.Status != Optimal {
		t.Fatalf("status = %v, want OPTIMAL", res.Status)
	}
	if res.Restarts == 0 {
		t.Error("no Luby restarts fired despite a tiny restart base")
	}
	if res.Nogoods == 0 {
		t.Error("no nogoods learned despite conflicts")
	}
	plain := hardKnapsack(4, 4).Solve(Options{})
	if plain.Status != res.Status || plain.Objective != res.Objective {
		t.Fatalf("learning changed the answer: %v/%d vs plain %v/%d",
			res.Status, res.Objective, plain.Status, plain.Objective)
	}
}

func TestLearningIsDeterministic(t *testing.T) {
	opts := Options{Learn: true, RestartBase: 8, MaxBranches: 2000}
	a := hardKnapsack(6, 5).Solve(opts)
	b := hardKnapsack(6, 5).Solve(opts)
	if a.Status != b.Status || a.Objective != b.Objective ||
		a.Branches != b.Branches || a.Nogoods != b.Nogoods || a.Restarts != b.Restarts {
		t.Fatalf("two identical learning solves diverged: %+v vs %+v", a, b)
	}
	if a.TimedOut || b.TimedOut {
		t.Error("branch-budget expiry must not set TimedOut (it is the wall-clock flag)")
	}
}

func TestPlainOptionsLearnNothing(t *testing.T) {
	res := hardKnapsack(4, 4).Solve(Options{})
	if res.Nogoods != 0 || res.Restarts != 0 {
		t.Fatalf("plain solve reported learning counters: %+v", res)
	}
}

func TestLearningOnInfeasibleModel(t *testing.T) {
	// Infeasible by capacity: every weight needs nl chunks but the joint
	// capacity rows cannot carry them.
	m := NewModel()
	const nw, nl = 5, 4
	layerVars := make([][]Var, nl)
	for w := 0; w < nw; w++ {
		row := make([]Var, nl)
		ones := make([]int64, nl)
		for l := 0; l < nl; l++ {
			row[l] = m.NewIntVar(0, int64(nl), "x")
			ones[l] = 1
			layerVars[l] = append(layerVars[l], row[l])
		}
		m.AddLinearEQ(row, ones, int64(nl))
	}
	for _, vars := range layerVars {
		ones := make([]int64, len(vars))
		for i := range ones {
			ones[i] = 1
		}
		m.AddLinearLE(vars, ones, 2) // nw*nl demand vs nl*2 capacity
	}
	res := m.Solve(Options{Learn: true, RestartBase: 2})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want INFEASIBLE", res.Status)
	}
}
