// Conflict-driven clause learning over bound literals.
//
// This file is the CDCL engine selected by Options.Learn (without
// RestartOnly): an iterative branch-and-bound loop in which every
// propagation records its reason on the trail, every conflict is resolved
// into a first-UIP bound-literal nogood (Σ-style lazy clause generation:
// linear rows, implications, and nogoods each explain the tightenings they
// forced), the nogood is minimized by self-subsumption against the
// reasons, installed with the existing two-watch machinery, and the search
// backjumps non-chronologically to the nogood's assertion level where unit
// propagation asserts the UIP's negation. Luby restarts keep the clause
// database (reducing it by activity when it overflows), and conflict
// activity drives both variable branching and clause retention.
//
// Explanations are time-correct: a reason is expanded using the bounds
// that held just before the explained trail entry, reconstructed by
// walking the per-variable bound-change chains (trailEntry.prev) instead
// of shadow domain copies. That keeps resolution acyclic — every
// antecedent literal's establishing entry sits strictly below the entry it
// explains.
package cpsat

import (
	"fmt"
	"sort"
)

// solveCDCL runs the iterative CDCL search loop. It reports whether the
// search completed (proved optimality or infeasibility); false with
// s.timedOut means a budget expired.
func (s *searcher) solveCDCL() bool {
	for {
		if s.expired() {
			return false
		}
		if s.conflicts >= s.restartAt {
			s.restarts++
			s.runIdx++
			s.restartAt = s.conflicts + s.rstBase*luby(s.runIdx+1)
			s.backjumpTo(0)
			s.reduceDB()
			if s.hasBest && s.objIdx >= 0 {
				// Re-propagate the incumbent bound at the root: its row
				// tightened at depth and those propagations were undone.
				// Any root tightening it causes depends on the incumbent,
				// so every later derivation that treats root facts as free
				// is objective-tainted (conservatively: all of them).
				s.rootTainted = true
				s.enqueue(int32(s.objIdx))
				if !s.resolveConflicts() {
					return !s.timedOut
				}
			}
			continue
		}
		v := s.pickBranchCDCL()
		if v < 0 {
			// All fixed: feasible leaf (the objective row propagated to
			// fixpoint, so with an incumbent this strictly improves on it).
			s.record()
			if s.objIdx < 0 {
				return true // satisfaction problem: first solution ends it
			}
			// record tightened the objective row below the new incumbent,
			// contradicting the fixed assignment; resolving that conflict
			// is what moves the search on (and proves optimality when the
			// contradiction reaches the root).
			if !s.resolveConflicts() {
				return !s.timedOut
			}
			continue
		}
		s.branches++
		l := s.decisionLitCDCL(v)
		s.levelStart = append(s.levelStart, int32(len(s.trail)))
		s.level++
		s.curReason = reasonDecision
		if l.ge {
			s.setLo(int(l.v), l.bound) // within the current domain: cannot wipe out
		} else {
			s.setHi(int(l.v), l.bound)
		}
		if !s.resolveConflicts() {
			return !s.timedOut
		}
	}
}

// resolveConflicts drains propagation to fixpoint, analyzing and
// backjumping past every conflict on the way. It reports false when the
// root is refuted (the search is complete) or a budget expired (s.timedOut
// distinguishes the two).
func (s *searcher) resolveConflicts() bool {
	for {
		if s.drain() {
			return true
		}
		if s.timedOut {
			return false
		}
		s.conflicts++
		if s.level == 0 {
			return false
		}
		if !s.analyzeAndJump() {
			return false
		}
	}
}

// analyzeAndJump derives the first-UIP nogood for the pending conflict,
// backjumps to its assertion level, and installs it (the next drain
// asserts the UIP's negation by unit propagation). It reports false when
// the derivation refutes the root.
func (s *searcher) analyzeAndJump() bool {
	lits, bj, pure, ok := s.analyze()
	if !ok {
		return false
	}
	if int(s.level)-bj > 1 {
		s.backjumps++
	}
	s.backjumpTo(bj)
	return s.installLearned(lits, pure)
}

// pickBranchCDCL selects the branching variable: most-constrained first
// (smallest span), conflict activity as the tie-break above watcher
// degree — the same heuristic the restart-only engine uses.
func (s *searcher) pickBranchCDCL() int {
	branch := -1
	var bestSpan int64 = int64(^uint64(0) >> 1)
	var bestDeg int32 = -1
	bestAct := -1.0
	for v := range s.lo {
		span := s.hi[v] - s.lo[v]
		if span <= 0 {
			continue
		}
		switch {
		case span < bestSpan:
		case span > bestSpan:
			continue
		case s.activity[v] < bestAct:
			continue
		case s.activity[v] == bestAct && s.degree[v] <= bestDeg:
			continue
		}
		bestAct = s.activity[v]
		bestSpan = span
		bestDeg = s.degree[v]
		branch = v
	}
	return branch
}

// decisionLitCDCL picks the objective-preferred endpoint of v's domain as
// the decision literal (the greedy dive; the refutation of the endpoint is
// learned, not enumerated).
func (s *searcher) decisionLitCDCL(v int) lit {
	if s.objCoef[v] < 0 {
		return lit{v: int32(v), ge: true, bound: s.hi[v]}
	}
	return lit{v: int32(v), ge: false, bound: s.lo[v]}
}

// backjumpTo unwinds the trail to the end of the given decision level in
// one truncation.
func (s *searcher) backjumpTo(level int) {
	if int(s.level) <= level {
		return
	}
	s.undoTo(int(s.levelStart[level+1]))
	s.levelStart = s.levelStart[:level+1]
	s.level = int32(level)
}

// crossing returns the trail entry that first established the entailed
// bound literal (v ≥ b when ge, else v ≤ b) along with the bound value the
// entry set, or (-1, 0) when the model's root domain already entails the
// literal. The caller guarantees the literal holds under current bounds.
func (s *searcher) crossing(v int32, ge bool, b int64) (int32, int64) {
	if ge {
		cur := s.lo[v]
		e := s.loHead[v]
		for e >= 0 {
			ent := &s.trail[e]
			if ent.old >= b {
				cur = ent.old
				e = ent.prev
				continue
			}
			return e, cur
		}
	} else {
		cur := s.hi[v]
		e := s.hiHead[v]
		for e >= 0 {
			ent := &s.trail[e]
			if ent.old <= b {
				cur = ent.old
				e = ent.prev
				continue
			}
			return e, cur
		}
	}
	return -1, 0
}

// loAt returns v's lower bound as it was just before trail position pos,
// reconstructed from the ≥-side chain. hiAt is the mirror.
func (s *searcher) loAt(v int32, pos int32) int64 {
	cur := s.lo[v]
	for e := s.loHead[v]; e >= pos; e = s.trail[e].prev {
		cur = s.trail[e].old
	}
	return cur
}

func (s *searcher) hiAt(v int32, pos int32) int64 {
	cur := s.hi[v]
	for e := s.hiHead[v]; e >= pos; e = s.trail[e].prev {
		cur = s.trail[e].old
	}
	return cur
}

// anteRef is one antecedent of a reason expansion: either a resolved trail
// position (pos ≥ 0, with the bound value its entry established), a root
// fact (pos == antePosRoot), or a literal whose establishing entry must
// still be located by a crossing walk (pos == antePosFind).
type anteRef struct {
	pos   int32
	v     int32
	ge    bool
	bound int64
}

const (
	antePosRoot int32 = -1
	antePosFind int32 = -2
)

// chainBelow returns the newest same-side chain entry of v strictly below
// pos together with the bound it established — simultaneously the bound
// that held just before pos and that literal's establishing (crossing)
// entry — or (antePosRoot, root bound) when no such entry exists.
func (s *searcher) chainBelow(v int32, ge bool, pos int32) (int32, int64) {
	if ge {
		cur := s.lo[v]
		for e := s.loHead[v]; e >= 0; e = s.trail[e].prev {
			if e < pos {
				return e, cur
			}
			cur = s.trail[e].old
		}
		return antePosRoot, cur
	}
	cur := s.hi[v]
	for e := s.hiHead[v]; e >= 0; e = s.trail[e].prev {
		if e < pos {
			return e, cur
		}
		cur = s.trail[e].old
	}
	return antePosRoot, cur
}

// antecedents expands the reason of the trail entry at pos into the bound
// literals that forced it, each evaluated with the bounds that held just
// before pos (so every antecedent's establishing entry lies strictly below
// pos). Row expansions resolve each antecedent's establishing entry during
// the same chain walk that reconstructs its bound; implication and nogood
// literals carry fixed bounds and are left for a crossing walk. The result
// lives in s.anteBuf, valid until the next call. The entry must have a
// constraint reason.
func (s *searcher) antecedents(pos int32) []anteRef {
	buf := s.anteBuf[:0]
	e := &s.trail[pos]
	r := e.reason
	nLin := int32(len(s.lins))
	nImp := int32(len(s.m.implies))
	switch {
	case r < 0:
		panic("cpsat: expanding a reason-less trail entry")
	case r < nLin:
		// The entry's useLo stamp records which row bound the propagation
		// used: the row's lo pairs with the rest's upper bounds, the row's
		// hi with the rest's lower bounds. Vars untouched on the needed
		// side (no chain, or a level-0 chain — the trail is level-sorted)
		// are root facts and contribute nothing.
		row := &s.lins[r]
		useLo := e.useLo
		for j, u := range row.vars {
			k := row.coefs[j]
			if k == 0 || int32(u) == e.v {
				continue
			}
			ge := useLo != (k > 0)
			var h int32
			if ge {
				h = s.loHead[u]
			} else {
				h = s.hiHead[u]
			}
			if h < 0 || s.trail[h].level == 0 {
				continue
			}
			p, val := s.chainBelow(int32(u), ge, pos)
			if p < 0 || s.trail[p].level == 0 {
				continue
			}
			buf = append(buf, anteRef{pos: p, v: int32(u), ge: ge, bound: val})
		}
	case r < nLin+nImp:
		im := &s.m.implies[r-nLin]
		if e.v == int32(im.y) && !e.ge {
			buf = append(buf, anteRef{pos: antePosFind, v: int32(im.x), ge: true, bound: im.c}) // forward: (x ≥ c) forced y ≤ d
		} else {
			buf = append(buf, anteRef{pos: antePosFind, v: int32(im.y), ge: true, bound: im.d + 1}) // contrapositive: (y > d) forced x < c
		}
	default:
		k := int(r - nLin - nImp)
		s.bumpClause(k)
		// The entry asserts the negation of exactly one literal of the
		// nogood; the remaining literals (all entailed at pos) are the
		// antecedents.
		var negBound int64
		if e.ge {
			negBound = s.loAt(e.v, pos+1) - 1 // entry set lo to b+1 ⇒ negated lit was (v ≤ b)
		} else {
			negBound = s.hiAt(e.v, pos+1) + 1 // entry set hi to b-1 ⇒ negated lit was (v ≥ b)
		}
		skipped := false
		for _, l := range s.nogoods[k] {
			if !skipped && l.v == e.v && l.ge != e.ge && l.bound == negBound {
				skipped = true
				continue
			}
			buf = append(buf, anteRef{pos: antePosFind, v: l.v, ge: l.ge, bound: l.bound})
		}
	}
	s.anteBuf = buf
	return buf
}

// bumpVar bumps a variable's conflict activity, rescaling on overflow.
func (s *searcher) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// bumpClause bumps a learned clause's activity (database-reduction merit).
func (s *searcher) bumpClause(k int) {
	if k >= len(s.ngActivity) {
		return
	}
	s.ngActivity[k] += s.ngInc
	if s.ngActivity[k] > 1e100 {
		for i := range s.ngActivity {
			s.ngActivity[i] *= 1e-100
		}
		s.ngInc *= 1e-100
	}
}

// analyze resolves the pending conflict to the first unique implication
// point. It returns the learned nogood (lower-level literals in trail
// order, the UIP literal last), the assertion level to backjump to,
// whether the clause is pure (its derivation never touched the objective
// row, an objective-tainted nogood, or a tainted root — hence implied by
// the hard constraints alone and exportable across solves), and ok=false
// when the conflict resolves to the empty nogood — the root is refuted.
func (s *searcher) analyze() (learned []lit, bj int, pure bool, ok bool) {
	pure = !s.rootTainted
	for len(s.seen) < len(s.trail) {
		s.seen = append(s.seen, false)
		s.litAt = append(s.litAt, 0)
	}
	s.markBuf = s.markBuf[:0]

	// Seed the conflict set from the failure site. A domain wipeout or a
	// hard-row violation is an objective-free fact; the objective row and
	// tainted nogoods poison the derivation.
	switch {
	case s.conflV >= 0:
		v := s.conflV
		s.markAnte(v, true, s.lo[v])
		s.markAnte(v, false, s.hi[v])
	default:
		c := int(s.conflC)
		nLin := len(s.lins)
		nImp := len(s.m.implies)
		switch {
		case c < nLin:
			if c == s.objIdx {
				pure = false
			}
			row := &s.lins[c]
			overLo := s.linLo[c] > row.hi // else the upper sum fell below row.lo
			for j, u := range row.vars {
				k := row.coefs[j]
				if k == 0 {
					continue
				}
				if overLo == (k > 0) {
					s.markAnte(int32(u), true, s.lo[u])
				} else {
					s.markAnte(int32(u), false, s.hi[u])
				}
			}
		case c < nLin+nImp:
			panic("cpsat: implication as a direct conflict seed")
		default:
			k := c - nLin - nImp
			s.bumpClause(k)
			if !s.ngPure[k] {
				pure = false
			}
			for _, l := range s.nogoods[k] {
				s.markAnte(l.v, l.ge, l.bound)
			}
		}
	}
	s.conflV, s.conflC = -1, -1

	// The conflict may live entirely below the current level (e.g. the
	// objective row only woken at a leaf): drop to its true level first.
	maxLvl := int32(0)
	for _, p := range s.markBuf {
		if l := s.trail[p].level; l > maxLvl {
			maxLvl = l
		}
	}
	if maxLvl == 0 {
		s.clearMarks()
		return nil, 0, pure, false // all root facts: root refuted
	}
	if maxLvl < s.level {
		s.backjumpTo(int(maxLvl))
	}

	s.outPos = s.outPos[:0]
	nCur := s.classifyMarks(0, 0)
	s.varInc *= 1.052
	s.ngInc *= 1.001

	// Resolve top-down until one current-level literal remains (the UIP).
	idx := int32(len(s.trail) - 1)
	for {
		for !s.seen[idx] {
			idx--
		}
		if nCur == 1 {
			break
		}
		s.seen[idx] = false
		nCur--
		if r := s.trail[idx].reason; int(r) == s.objIdx {
			pure = false
		} else if base := int32(len(s.lins) + len(s.m.implies)); r >= base && !s.ngPure[r-base] {
			pure = false
		}
		before := len(s.markBuf)
		for _, a := range s.antecedents(idx) {
			s.markRef(a)
		}
		nCur = s.classifyMarks(before, nCur)
		idx--
	}
	uipPos := idx

	// Self-subsumption: a lower-level literal whose reason's antecedents
	// are all covered by the nogood (or the root) is redundant. Coverage
	// follows trail order, so removals cannot be circular. A pure clause
	// refuses removals through tainted reasons — they would smuggle an
	// objective dependency into an exportable clause.
	kept := s.outPos[:0]
	for _, p := range s.outPos {
		if s.litRedundant(p, pure) {
			s.minimized++
		} else {
			kept = append(kept, p)
		}
	}
	s.outPos = kept

	// Insertion sort by trail position (ascending ≈ level ascending): the
	// slices are short and this avoids sort.Slice's indirection.
	for i := 1; i < len(s.outPos); i++ {
		p := s.outPos[i]
		j := i - 1
		for j >= 0 && s.outPos[j] > p {
			s.outPos[j+1] = s.outPos[j]
			j--
		}
		s.outPos[j+1] = p
	}
	learned = make([]lit, 0, len(s.outPos)+1)
	bj = 0
	for _, p := range s.outPos {
		e := &s.trail[p]
		learned = append(learned, lit{v: e.v, ge: e.ge, bound: s.litAt[p]})
		if l := int(e.level); l > bj {
			bj = l
		}
	}
	e := &s.trail[uipPos]
	learned = append(learned, lit{v: e.v, ge: e.ge, bound: s.litAt[uipPos]})
	s.clearMarks()
	return learned, bj, pure, true
}

// markAnte adds the entailed literal (v ≥ b / v ≤ b) to the conflict set:
// the trail entry that established it is marked, unless the root domain
// (or root propagation) already entails the literal.
func (s *searcher) markAnte(v int32, ge bool, b int64) {
	// Vars untouched on this side (or only touched at level 0 — the trail
	// is level-sorted, so a level-0 chain head means a level-0 chain) are
	// root facts: skip the crossing walk outright.
	var h int32
	if ge {
		h = s.loHead[v]
	} else {
		h = s.hiHead[v]
	}
	if h < 0 || s.trail[h].level == 0 {
		return
	}
	pos, val := s.crossing(v, ge, b)
	if pos < 0 || s.trail[pos].level == 0 || s.seen[pos] {
		return
	}
	s.seen[pos] = true
	s.litAt[pos] = val
	s.markBuf = append(s.markBuf, pos)
}

// markRef is markAnte for an antecedent whose establishing entry the reason
// expansion may already have resolved.
func (s *searcher) markRef(a anteRef) {
	pos, val := a.pos, a.bound
	if pos == antePosFind {
		pos, val = s.crossing(a.v, a.ge, a.bound)
	}
	if pos < 0 || s.trail[pos].level == 0 || s.seen[pos] {
		return
	}
	s.seen[pos] = true
	s.litAt[pos] = val
	s.markBuf = append(s.markBuf, pos)
}

// classifyMarks folds marks[from:] into the conflict-set bookkeeping:
// current-level entries count toward nCur, lower-level ones join outPos,
// and every marked variable's activity is bumped.
func (s *searcher) classifyMarks(from, nCur int) int {
	for _, p := range s.markBuf[from:] {
		e := &s.trail[p]
		s.bumpVar(int(e.v))
		if e.level == s.level {
			nCur++
		} else {
			s.outPos = append(s.outPos, p)
		}
	}
	return nCur
}

// clearMarks unsets every seen flag the current analysis planted.
func (s *searcher) clearMarks() {
	for _, p := range s.markBuf {
		s.seen[p] = false
	}
	s.markBuf = s.markBuf[:0]
}

// litRedundant reports whether the marked lower-level literal at p is
// implied by the rest of the conflict set: every antecedent of its reason
// is either a root fact or establishes a literal the set already contains.
// When the clause under construction is pure, tainted reasons disqualify.
func (s *searcher) litRedundant(p int32, pure bool) bool {
	e := &s.trail[p]
	if e.reason < 0 {
		return false
	}
	if pure {
		if int(e.reason) == s.objIdx {
			return false
		}
		if base := int32(len(s.lins) + len(s.m.implies)); e.reason >= base && !s.ngPure[e.reason-base] {
			return false
		}
	}
	for _, a := range s.antecedents(p) {
		q := a.pos
		if q == antePosFind {
			q, _ = s.crossing(a.v, a.ge, a.bound)
		}
		if q < 0 || s.trail[q].level == 0 || s.seen[q] {
			continue
		}
		return false
	}
	return true
}

// installLearned records the learned nogood: empty refutes the root, a
// unit asserts permanently, anything longer is installed with two watches
// on its deepest literals and enqueued so the next drain asserts the UIP's
// negation by unit propagation.
func (s *searcher) installLearned(lits []lit, pure bool) bool {
	s.learned++
	if !pure && s.level == 0 {
		// An objective-dependent assertion is about to land at the root:
		// root facts are no longer implied by the hard constraints alone.
		s.rootTainted = true
	}
	switch len(lits) {
	case 0:
		return false
	case 1:
		if pure {
			s.unitExports = append(s.unitExports, lits[0])
		}
		s.curReason = reasonAssert
		return s.negateLit(lits[0])
	}
	id := int32(len(s.nogoods))
	s.nogoods = append(s.nogoods, lits)
	s.ngActivity = append(s.ngActivity, s.ngInc)
	s.ngPure = append(s.ngPure, pure)
	s.inQueue = append(s.inQueue, false)
	base := int32(len(s.lins) + len(s.m.implies))
	if len(lits) > reasonOnlyLen {
		// Too wide to propagate usefully: keep it out of the watch lists
		// entirely and use it only as the assertion's reason (the {-1,-1}
		// watch sentinel marks it reason-only; impure reason-only clauses
		// are dropped at the next database reduction, pure ones survive as
		// export candidates). The UIP's negation is asserted here directly
		// since no unit propagation will fire for it.
		s.ngW = append(s.ngW, [2]int32{-1, -1})
		s.curReason = base + id
		return s.negateLit(lits[len(lits)-1])
	}
	if s.ngWatchLo == nil {
		s.ngWatchLo = make([][]ngWatch, len(s.lo))
		s.ngWatchHi = make([][]ngWatch, len(s.lo))
	}
	w0, w1 := int32(len(lits)-1), int32(len(lits)-2)
	s.ngW = append(s.ngW, [2]int32{w0, w1})
	s.regNgWatch(id, lits[w0])
	s.regNgWatch(id, lits[w1])
	s.enqueue(base + id)
	return true
}

// reduceDB halves the learned-clause store when it overflows the current
// dbMax budget (which then grows by half, up to maxNogoods): imported
// clauses and short (≤3-literal) ones survive unconditionally, the rest by
// activity. It must run at level 0 with an empty queue — after a restart's
// backjump — since it renumbers nogood ids and rebuilds their watch lists.
func (s *searcher) reduceDB() {
	staleRO := 0 // impure reason-only clauses: dead weight, dropped outright
	for id := s.importedCnt; id < len(s.nogoods); id++ {
		if s.ngW[id][0] < 0 && !s.ngPure[id] {
			staleRO++
		}
	}
	watched := 0
	for id := s.importedCnt; id < len(s.nogoods); id++ {
		if s.ngW[id][0] >= 0 {
			watched++
		}
	}
	if watched <= s.dbMax && staleRO == 0 {
		return
	}
	var drop map[int32]bool
	if watched > s.dbMax {
		s.dbMax += s.dbMax / 2
		if s.dbMax > maxNogoods {
			s.dbMax = maxNogoods
		}
		type cand struct {
			id  int32
			act float64
		}
		var long []cand
		for id := s.importedCnt; id < len(s.nogoods); id++ {
			if s.ngW[id][0] >= 0 && len(s.nogoods[id]) > 3 {
				long = append(long, cand{id: int32(id), act: s.ngActivity[id]})
			}
		}
		sort.Slice(long, func(i, j int) bool {
			if long[i].act != long[j].act {
				return long[i].act > long[j].act
			}
			return long[i].id < long[j].id
		})
		drop = make(map[int32]bool, len(long)/2)
		for _, c := range long[len(long)/2:] {
			drop[c.id] = true
		}
	}

	nogoods := s.nogoods[:0]
	act := s.ngActivity[:0]
	pure := s.ngPure[:0]
	ngW := s.ngW[:0]
	for id := 0; id < len(s.nogoods); id++ {
		reasonOnly := s.ngW[id][0] < 0
		if drop[int32(id)] || (id >= s.importedCnt && reasonOnly && !s.ngPure[id]) {
			continue
		}
		lits := s.nogoods[id]
		nogoods = append(nogoods, lits)
		act = append(act, s.ngActivity[id])
		pure = append(pure, s.ngPure[id])
		if reasonOnly {
			ngW = append(ngW, [2]int32{-1, -1})
		} else {
			ngW = append(ngW, [2]int32{int32(len(lits) - 1), int32(len(lits) - 2)})
		}
	}
	s.nogoods = nogoods
	s.ngActivity = act
	s.ngPure = pure
	s.ngW = ngW
	s.inQueue = s.inQueue[:len(s.lins)+len(s.m.implies)]
	for range s.nogoods {
		s.inQueue = append(s.inQueue, false)
	}
	s.ngWatchLo = make([][]ngWatch, len(s.lo))
	s.ngWatchHi = make([][]ngWatch, len(s.lo))
	for id := range s.nogoods {
		if s.ngW[id][0] < 0 {
			continue
		}
		lits := s.nogoods[id]
		s.regNgWatch(int32(id), lits[len(lits)-1])
		s.regNgWatch(int32(id), lits[len(lits)-2])
	}
}

// installImports installs Options.Import nogoods at the root: literals the
// root domains refute kill their nogood (it can never fire), entailed
// literals are dropped, an emptied nogood refutes the root outright, a
// unit one is enforced permanently, and the rest get two watches. It
// reports false when the root is refuted.
func (s *searcher) installImports(imports []Nogood) bool {
	for _, ng := range imports {
		kept := make([]lit, 0, len(ng.Lits))
		dead := false
		for _, L := range ng.Lits {
			if int(L.Var) < 0 || int(L.Var) >= len(s.lo) {
				panic(fmt.Sprintf("cpsat: imported nogood names var %d of %d", L.Var, len(s.lo)))
			}
			l := lit{v: int32(L.Var), ge: L.Ge, bound: L.Bound}
			var never, always bool
			if l.ge {
				never, always = s.hi[l.v] < l.bound, s.lo[l.v] >= l.bound
			} else {
				never, always = s.lo[l.v] > l.bound, s.hi[l.v] <= l.bound
			}
			if never {
				dead = true
				break
			}
			if !always {
				kept = append(kept, l)
			}
		}
		if dead {
			continue
		}
		s.imported++
		switch len(kept) {
		case 0:
			return false
		case 1:
			s.curReason = reasonAssert
			if !s.negateLit(kept[0]) {
				return false
			}
		default:
			if s.ngWatchLo == nil {
				s.ngWatchLo = make([][]ngWatch, len(s.lo))
				s.ngWatchHi = make([][]ngWatch, len(s.lo))
			}
			id := int32(len(s.nogoods))
			s.nogoods = append(s.nogoods, kept)
			s.ngActivity = append(s.ngActivity, 0)
			// Imports are implied by the hard constraints (the caller's
			// ImportCompatible obligation), so derivations through them
			// stay pure; they are still never re-exported (importedCnt).
			s.ngPure = append(s.ngPure, true)
			s.inQueue = append(s.inQueue, false)
			w0, w1 := int32(len(kept)-1), int32(len(kept)-2)
			s.ngW = append(s.ngW, [2]int32{w0, w1})
			s.regNgWatch(id, kept[w0])
			s.regNgWatch(id, kept[w1])
		}
	}
	s.importedCnt = len(s.nogoods)
	return true
}

// exportNogoods converts the surviving pure clauses (plus pure root-unit
// assertions) to the public form. Only the CDCL engine exports.
func (s *searcher) exportNogoods() []Nogood {
	if !s.cdcl {
		return nil
	}
	var out []Nogood
	for _, l := range s.unitExports {
		out = append(out, Nogood{Lits: []Lit{{Var: Var(l.v), Ge: l.ge, Bound: l.bound}}})
	}
	for id := s.importedCnt; id < len(s.nogoods); id++ {
		if !s.ngPure[id] {
			continue
		}
		lits := make([]Lit, len(s.nogoods[id]))
		for i, l := range s.nogoods[id] {
			lits[i] = Lit{Var: Var(l.v), Ge: l.ge, Bound: l.bound}
		}
		out = append(out, Nogood{Lits: lits})
	}
	return out
}

// ImportCompatible reports whether nogoods exported by a solve of from are
// valid to import into a solve of to: to must be uniformly at least as
// tight — same variables with domains contained in from's, the same linear
// rows (identical terms, bounds contained), identical implications. Then
// every assignment feasible for to's hard constraints is feasible for
// from's, so anything from refuted stays refuted. Objectives are ignored:
// exported nogoods are derived from hard constraints alone.
func ImportCompatible(from, to *Model) bool {
	if len(from.lo) != len(to.lo) ||
		len(from.linears) != len(to.linears) ||
		len(from.implies) != len(to.implies) {
		return false
	}
	for i := range from.lo {
		if to.lo[i] < from.lo[i] || to.hi[i] > from.hi[i] {
			return false
		}
	}
	for i := range from.linears {
		a, b := &from.linears[i], &to.linears[i]
		if len(a.vars) != len(b.vars) || b.lo < a.lo || b.hi > a.hi {
			return false
		}
		for j := range a.vars {
			if a.vars[j] != b.vars[j] || a.coefs[j] != b.coefs[j] {
				return false
			}
		}
	}
	for i := range from.implies {
		if from.implies[i] != to.implies[i] {
			return false
		}
	}
	return true
}
