package cpsat

import (
	"math"
	"testing"
)

// White-box tests for the CDCL core: conflicts are staged on hand-built
// models by driving the searcher directly — root propagation, manual
// decisions, drain to conflict — so analyze()'s first-UIP cut, backjump
// level, and self-subsumption minimization can be asserted literal by
// literal against conflict graphs worked out on paper.

// newCDCL builds a searcher in CDCL mode and runs root propagation.
func newCDCL(t *testing.T, m *Model) *searcher {
	t.Helper()
	s := newSearcher(m, Options{Learn: true})
	if s.rootInfeasible || !s.propagateRoot() {
		t.Fatal("hand-built model conflicted at the root")
	}
	return s
}

// decide opens a new decision level, applies the literal, and drains to a
// fixpoint. It reports drain's value: false means a conflict is pending.
func decide(s *searcher, v Var, ge bool, bound int64) bool {
	s.levelStart = append(s.levelStart, int32(len(s.trail)))
	s.level++
	s.curReason = reasonDecision
	if ge {
		s.setLo(int(v), bound)
	} else {
		s.setHi(int(v), bound)
	}
	return s.drain()
}

func wantLits(t *testing.T, tag string, got, want []lit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: learned %v, want %v", tag, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: learned %v, want %v", tag, got, want)
		}
	}
}

// TestAnalyzeFirstUIPInterior: the classic diamond. Deciding d ≤ 0 forces
// u ≥ 1 (d+u ≥ 1), which forces a ≤ 0 and b ≤ 0 (u+a ≤ 1, u+b ≤ 1),
// violating a+b ≥ 1. Both conflict antecedents resolve back to the single
// interior node u ≥ 1 — the first UIP — so the learned nogood is the unit
// ¬(u ≥ 1), not the decision, and the cut is strictly stronger than the
// decision cut {d ≤ 0}.
func TestAnalyzeFirstUIPInterior(t *testing.T) {
	m := NewModel()
	d := m.NewIntVar(0, 1, "d")
	u := m.NewIntVar(0, 1, "u")
	a := m.NewIntVar(0, 1, "a")
	b := m.NewIntVar(0, 1, "b")
	m.AddLinearRange([]Var{d, u}, []int64{1, 1}, 1, 2)
	m.AddLinearLE([]Var{u, a}, []int64{1, 1}, 1)
	m.AddLinearLE([]Var{u, b}, []int64{1, 1}, 1)
	m.AddLinearRange([]Var{a, b}, []int64{1, 1}, 1, 2)

	s := newCDCL(t, m)
	if decide(s, d, false, 0) {
		t.Fatal("decision d<=0 should conflict")
	}
	lits, bj, pure, ok := s.analyze()
	if !ok {
		t.Fatal("analyze refuted the root on a satisfiable-at-root conflict")
	}
	wantLits(t, "first-UIP cut", lits, []lit{{v: int32(u), ge: true, bound: 1}})
	if bj != 0 {
		t.Fatalf("unit nogood must assert at the root: bj = %d", bj)
	}
	if !pure {
		t.Fatal("objective-free derivation must be pure")
	}
}

// TestAnalyzeDecisionUIP: when the decision itself is the only dominator
// (x ≤ 0 forces y ≥ 1 and z ≥ 1 through separate rows, violating
// y+z ≤ 1), resolution must walk all the way back and learn ¬(x ≤ 0).
func TestAnalyzeDecisionUIP(t *testing.T) {
	m := NewModel()
	x := m.NewIntVar(0, 1, "x")
	y := m.NewIntVar(0, 1, "y")
	z := m.NewIntVar(0, 1, "z")
	m.AddLinearRange([]Var{x, y}, []int64{1, 1}, 1, 2)
	m.AddLinearRange([]Var{x, z}, []int64{1, 1}, 1, 2)
	m.AddLinearLE([]Var{y, z}, []int64{1, 1}, 1)

	s := newCDCL(t, m)
	if decide(s, x, false, 0) {
		t.Fatal("decision x<=0 should conflict")
	}
	lits, bj, _, ok := s.analyze()
	if !ok {
		t.Fatal("analyze refuted the root")
	}
	wantLits(t, "decision-UIP cut", lits, []lit{{v: int32(x), ge: false, bound: 0}})
	if bj != 0 {
		t.Fatalf("bj = %d, want 0", bj)
	}
}

// TestAnalyzeBackjumpLevel: the diamond conflict additionally drags in
// e ≤ 0 from level 1 (conflict row a+b+e ≥ 1), with an unrelated decision
// on f padding level 2. The learned nogood {e ≤ 0, u ≥ 1} must order the
// level-1 literal first, assert at level 1 — skipping the intact level 2
// entirely — and count one non-chronological backjump.
func TestAnalyzeBackjumpLevel(t *testing.T) {
	m := NewModel()
	e := m.NewIntVar(0, 1, "e")
	f := m.NewIntVar(0, 1, "f")
	d := m.NewIntVar(0, 1, "d")
	u := m.NewIntVar(0, 1, "u")
	a := m.NewIntVar(0, 1, "a")
	b := m.NewIntVar(0, 1, "b")
	m.AddLinearRange([]Var{d, u}, []int64{1, 1}, 1, 2)
	m.AddLinearLE([]Var{u, a}, []int64{1, 1}, 1)
	m.AddLinearLE([]Var{u, b}, []int64{1, 1}, 1)
	m.AddLinearRange([]Var{a, b, e}, []int64{1, 1, 1}, 1, 3)

	s := newCDCL(t, m)
	if !decide(s, e, false, 0) || !decide(s, f, false, 0) {
		t.Fatal("levels 1-2 must not conflict")
	}
	if decide(s, d, false, 0) {
		t.Fatal("decision d<=0 should conflict")
	}
	if !s.analyzeAndJump() {
		t.Fatal("analyzeAndJump refuted the root")
	}
	if s.level != 1 {
		t.Fatalf("backjump landed at level %d, want 1 (skipping intact level 2)", s.level)
	}
	if s.backjumps != 1 {
		t.Fatalf("backjumps = %d, want 1", s.backjumps)
	}
	// The installed clause unit-asserts ¬(u ≥ 1) at level 1 on the next
	// drain, with e ≤ 0 still on the trail.
	if !s.drain() {
		t.Fatal("assertion drain conflicted")
	}
	if s.hi[u] != 0 {
		t.Fatalf("learned clause did not assert u <= 0: hi[u] = %d", s.hi[u])
	}
	if s.hi[e] != 0 {
		t.Fatal("level-1 context lost across the backjump")
	}
}

// TestAnalyzeMinimizesImpliedLiteral: the conflict set contains both the
// level-1 decision w ≥ 1 and its direct consequence c ≤ 0 (via the
// implication (w ≥ 1) ⇒ (c ≤ 0)). Self-subsumption must notice c ≤ 0 is
// redundant — its sole antecedent is already in the nogood — and emit the
// two-literal clause {w ≥ 1, d ≥ 1} instead of three.
func TestAnalyzeMinimizesImpliedLiteral(t *testing.T) {
	m := NewModel()
	w := m.NewIntVar(0, 1, "w")
	c := m.NewIntVar(0, 1, "c")
	d := m.NewIntVar(0, 1, "d")
	u := m.NewIntVar(0, 1, "u")
	p := m.NewIntVar(0, 1, "p")
	m.AddImplication(w, 1, c, 0)
	m.AddLinearLE([]Var{d, u}, []int64{1, 1}, 1)
	m.AddLinearLE([]Var{d, p}, []int64{1, 1}, 1)
	// u + p + c - w ≥ 0: violated exactly when u, p, c are all 0 and w is 1.
	m.AddLinearRange([]Var{u, p, c, w}, []int64{1, 1, 1, -1}, 0, 3)

	s := newCDCL(t, m)
	if !decide(s, w, true, 1) {
		t.Fatal("level 1 must not conflict")
	}
	if decide(s, d, true, 1) {
		t.Fatal("decision d>=1 should conflict")
	}
	lits, bj, _, ok := s.analyze()
	if !ok {
		t.Fatal("analyze refuted the root")
	}
	wantLits(t, "minimized cut", lits,
		[]lit{{v: int32(w), ge: true, bound: 1}, {v: int32(d), ge: true, bound: 1}})
	if bj != 1 {
		t.Fatalf("bj = %d, want 1", bj)
	}
	if s.minimized != 1 {
		t.Fatalf("minimized = %d, want 1 (c <= 0 is subsumed by w >= 1)", s.minimized)
	}
}

// pigeonModel builds the pigeonhole principle PHP(n, n-1): n pigeons into
// n-1 holes, one 0/1 var per (pigeon, hole) pair. Infeasible, objective
// free, and — unlike a root wipeout — only provable by search, so the
// refutation exercises conflict analysis and every learned clause is pure.
func pigeonModel(n int) *Model {
	m := NewModel()
	holes := n - 1
	x := make([][]Var, n)
	for i := range x {
		x[i] = make([]Var, holes)
		for j := range x[i] {
			x[i][j] = m.NewIntVar(0, 1, "x")
		}
	}
	ones := func(k int) []int64 {
		o := make([]int64, k)
		for i := range o {
			o[i] = 1
		}
		return o
	}
	for i := 0; i < n; i++ {
		m.AddLinearRange(x[i], ones(holes), 1, int64(holes))
	}
	for j := 0; j < holes; j++ {
		col := make([]Var, n)
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		m.AddLinearLE(col, ones(n), 1)
	}
	return m
}

// TestInfeasibleRefutationExportsAndTransfers: an objective-free
// infeasibility proof is pure by construction, so its surviving nogoods
// must be exported, and importing them into a fresh identical model must
// be accepted (ImportedNogoods > 0) with the verdict unchanged.
func TestInfeasibleRefutationExportsAndTransfers(t *testing.T) {
	m := pigeonModel(5)
	res := m.Solve(Options{Learn: true})
	if res.Status != Infeasible {
		t.Fatalf("PHP(5,4) status %v, want Infeasible", res.Status)
	}
	if res.Conflicts == 0 {
		t.Fatal("refutation reported zero conflicts — analysis never ran")
	}
	if len(res.Learned) == 0 {
		t.Fatal("pure refutation exported no nogoods")
	}

	m2 := pigeonModel(5)
	if !ImportCompatible(m, m2) {
		t.Fatal("identical models must be import-compatible")
	}
	res2 := m2.Solve(Options{Learn: true, Import: res.Learned})
	if res2.Status != Infeasible {
		t.Fatalf("re-solve with imports: status %v, want Infeasible", res2.Status)
	}
	if res2.ImportedNogoods == 0 {
		t.Fatal("no imported nogood survived installation on an identical model")
	}
	if res2.Branches > res.Branches {
		t.Fatalf("imports made the refutation harder: %d branches vs %d cold",
			res2.Branches, res.Branches)
	}
}

// TestExportedNogoodsImpliedByHardConstraints is the semantic purity
// gate: every exported nogood from a solve *with an objective* must be
// implied by the hard constraints alone. For each exported clause, a
// fresh objective-free copy of the model plus rows enforcing every
// literal simultaneously must be infeasible — if an incumbent-derived
// (impure) clause ever leaked through the export filter, some clause
// would only be valid under the objective bound and this check would
// find a witness.
func TestExportedNogoodsImpliedByHardConstraints(t *testing.T) {
	build := func(withObj bool) *Model {
		m := NewModel()
		n := 6
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = m.NewIntVar(0, 3, "x")
		}
		weights := []int64{5, 4, 3, 3, 2, 1}
		m.AddLinearLE(vars, weights, 9)
		m.AddLinearRange(vars, []int64{1, 1, 1, 1, 1, 1}, 4, 18)
		for i := 0; i+1 < n; i++ {
			m.AddImplication(vars[i], 2, vars[i+1], 1)
		}
		if withObj {
			m.Minimize(vars, []int64{-3, -2, -4, -1, -2, -1})
		}
		return m
	}

	res := build(true).Solve(Options{Learn: true})
	if res.Status != Optimal {
		t.Fatalf("status %v, want Optimal", res.Status)
	}
	if len(res.Learned) == 0 {
		t.Skip("no pure nogoods exported from this trajectory")
	}
	for i, ng := range res.Learned {
		m := build(false)
		for _, l := range ng.Lits {
			if l.Ge {
				m.AddLinearRange([]Var{Var(l.Var)}, []int64{1}, l.Bound, math.MaxInt64/8)
			} else {
				m.AddLinearLE([]Var{Var(l.Var)}, []int64{1}, l.Bound)
			}
		}
		if got := m.Solve(Options{}); got.Status != Infeasible {
			t.Fatalf("exported nogood %d (%v) is not implied by the hard constraints: %v",
				i, ng.Lits, got.Status)
		}
	}
}

// TestImportCompatibleDirection pins the compatibility relation the OPG
// pipeline relies on: imports flow from a looser model to a uniformly
// tighter one (the speculative snapshot is always at least as loose as
// the true post-commit state), never the reverse, and never across
// structural changes.
func TestImportCompatibleDirection(t *testing.T) {
	build := func(cap int64, hi int64) *Model {
		m := NewModel()
		a := m.NewIntVar(0, hi, "a")
		b := m.NewIntVar(0, hi, "b")
		m.AddLinearLE([]Var{a, b}, []int64{2, 3}, cap)
		m.AddImplication(a, 1, b, 4)
		return m
	}
	loose := build(10, 5)
	tight := build(8, 4)

	if !ImportCompatible(loose, loose) {
		t.Fatal("a model must be import-compatible with itself")
	}
	if !ImportCompatible(loose, tight) {
		t.Fatal("loose -> tight must be compatible")
	}
	if ImportCompatible(tight, loose) {
		t.Fatal("tight -> loose must be rejected: clauses need not hold on a looser model")
	}

	structural := NewModel()
	a := structural.NewIntVar(0, 5, "a")
	b := structural.NewIntVar(0, 5, "b")
	structural.AddLinearLE([]Var{a, b}, []int64{2, 4}, 10)
	structural.AddImplication(a, 1, b, 4)
	if ImportCompatible(loose, structural) {
		t.Fatal("differing row coefficients must be rejected")
	}
}

// TestImportInstallationFilter pins the two reductions installImports
// applies at the importer's root: a literal that already holds everywhere
// is dropped (the clause shrinks), and a clause containing a literal that
// can never hold is vacuously satisfied and discarded entirely — it must
// not count toward ImportedNogoods.
func TestImportInstallationFilter(t *testing.T) {
	build := func() (*Model, Var, Var) {
		m := NewModel()
		a := m.NewIntVar(0, 2, "a")
		b := m.NewIntVar(0, 2, "b")
		m.AddLinearLE([]Var{a, b}, []int64{1, 1}, 3)
		return m, a, b
	}

	// ¬(a ≥ 0 ∧ b ≥ 1): a ≥ 0 always holds, so the clause reduces to the
	// unit ¬(b ≥ 1) and pins b to 0 at the root.
	m, a, b := build()
	res := m.Solve(Options{Learn: true, Import: []Nogood{{Lits: []Lit{
		{Var: a, Ge: true, Bound: 0},
		{Var: b, Ge: true, Bound: 1},
	}}}})
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status %v", res.Status)
	}
	if res.ImportedNogoods != 1 {
		t.Fatalf("ImportedNogoods = %d, want 1", res.ImportedNogoods)
	}
	if res.Values[b] != 0 {
		t.Fatalf("reduced unit clause should pin b to 0, got %d", res.Values[b])
	}

	// ¬(a ≥ 3 ∧ b ≥ 1): a ≥ 3 is outside a's domain, the conjunction can
	// never hold, and the clause must be dropped without constraining b.
	m, a, b = build()
	res = m.Solve(Options{Learn: true, Import: []Nogood{{Lits: []Lit{
		{Var: a, Ge: true, Bound: 3},
		{Var: b, Ge: true, Bound: 1},
	}}}})
	if res.ImportedNogoods != 0 {
		t.Fatalf("ImportedNogoods = %d, want 0 (vacuous clause)", res.ImportedNogoods)
	}
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status %v after dropping a vacuous import", res.Status)
	}
	_ = b
}
