package cpsat

import (
	"math"
	"time"
)

// This file preserves the pre-watchlist solver — naive re-scan-everything
// fixpoint propagation and full domain-array copies at every branch — as a
// test-only reference implementation. The differential harness in
// diff_test.go runs it against the event-driven engine on randomized models
// and requires identical statuses and objectives: any divergence is a bug
// in one of the two propagators, and the reference is the simpler one to
// audit by eye.

// refSolve runs the reference branch-and-bound on m.
func refSolve(m *Model, opts Options) Result {
	start := time.Now()
	s := &refSearcher{
		m:         m,
		lo:        append([]int64(nil), m.lo...),
		hi:        append([]int64(nil), m.hi...),
		objBound:  math.MaxInt64 / 4,
		maxBranch: opts.MaxBranches,
	}
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
		s.hasLimit = true
	}

	complete := false
	if s.propagate(s.lo, s.hi) {
		complete = s.search(s.lo, s.hi)
	} else {
		complete = true // root infeasible, proven
	}

	res := Result{
		Branches:     s.branches,
		Propagations: s.props,
		Elapsed:      time.Since(start),
	}
	switch {
	case s.hasBest && (complete || !m.hasObj):
		res.Status = Optimal
		res.Values = s.best
		res.Objective = s.bestObj
	case s.hasBest:
		res.Status = Feasible
		res.Values = s.best
		res.Objective = s.bestObj
	case complete:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res
}

type refSearcher struct {
	m *Model

	lo, hi []int64

	best      []int64
	bestObj   int64
	hasBest   bool
	objBound  int64
	deadline  time.Time
	hasLimit  bool
	branches  int64
	maxBranch int64
	props     int64
	timedOut  bool
}

func (s *refSearcher) expired() bool {
	if s.timedOut {
		return true
	}
	if s.maxBranch > 0 && s.branches >= s.maxBranch {
		s.timedOut = true
		return true
	}
	if s.hasLimit && s.branches%64 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
		return true
	}
	return false
}

// propagate runs bounds-consistency to fixpoint by re-scanning every
// constraint until none changes.
func (s *refSearcher) propagate(lo, hi []int64) bool {
	for changed := true; changed; {
		changed = false
		for i := range s.m.linears {
			ok, ch := s.propLinear(&s.m.linears[i], lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		for i := range s.m.implies {
			ok, ch := s.propImply(&s.m.implies[i], lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		if s.m.hasObj {
			ok, ch := s.propObjective(lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

func (s *refSearcher) propLinear(c *linear, lo, hi []int64) (ok, changed bool) {
	s.props++
	var exprLo, exprHi int64
	for i, v := range c.vars {
		if c.coefs[i] >= 0 {
			exprLo += c.coefs[i] * lo[v]
			exprHi += c.coefs[i] * hi[v]
		} else {
			exprLo += c.coefs[i] * hi[v]
			exprHi += c.coefs[i] * lo[v]
		}
	}
	if exprLo > c.hi || exprHi < c.lo {
		return false, false
	}
	for i, v := range c.vars {
		k := c.coefs[i]
		if k == 0 {
			continue
		}
		var termLo, termHi int64
		if k > 0 {
			termLo, termHi = k*lo[v], k*hi[v]
		} else {
			termLo, termHi = k*hi[v], k*lo[v]
		}
		restLo, restHi := exprLo-termLo, exprHi-termHi
		ubTerm := c.hi - restLo
		lbTerm := c.lo - restHi
		var newLo, newHi int64
		if k > 0 {
			newHi = floorDiv(ubTerm, k)
			newLo = ceilDiv(lbTerm, k)
		} else {
			newLo = ceilDiv(ubTerm, k)
			newHi = floorDiv(lbTerm, k)
		}
		if newLo > lo[v] {
			lo[v] = newLo
			changed = true
		}
		if newHi < hi[v] {
			hi[v] = newHi
			changed = true
		}
		if lo[v] > hi[v] {
			return false, changed
		}
		if changed {
			// Full O(n) refresh of the running expression bounds after any
			// tightening: the quadratic blow-up the incremental engine fixes.
			exprLo, exprHi = 0, 0
			for j, w := range c.vars {
				if c.coefs[j] >= 0 {
					exprLo += c.coefs[j] * lo[w]
					exprHi += c.coefs[j] * hi[w]
				} else {
					exprLo += c.coefs[j] * hi[w]
					exprHi += c.coefs[j] * lo[w]
				}
			}
			if exprLo > c.hi || exprHi < c.lo {
				return false, changed
			}
		}
	}
	return true, changed
}

func (s *refSearcher) propImply(im *implication, lo, hi []int64) (ok, changed bool) {
	s.props++
	if lo[im.x] >= im.c && hi[im.y] > im.d {
		hi[im.y] = im.d
		changed = true
	}
	if lo[im.y] > im.d && hi[im.x] >= im.c {
		hi[im.x] = im.c - 1
		changed = true
	}
	if lo[im.x] > hi[im.x] || lo[im.y] > hi[im.y] {
		return false, changed
	}
	return true, changed
}

func (s *refSearcher) propObjective(lo, hi []int64) (ok, changed bool) {
	if !s.hasBest {
		return true, false
	}
	s.props++
	var objLo int64
	for i, v := range s.m.objVars {
		if s.m.objCoefs[i] >= 0 {
			objLo += s.m.objCoefs[i] * lo[v]
		} else {
			objLo += s.m.objCoefs[i] * hi[v]
		}
	}
	if objLo > s.objBound {
		return false, false
	}
	return true, false
}

// search branches by copying the full domain arrays for each child node.
func (s *refSearcher) search(lo, hi []int64) bool {
	if s.expired() {
		return false
	}
	branch := -1
	var bestSpan int64 = math.MaxInt64
	for v := range lo {
		span := hi[v] - lo[v]
		if span > 0 && span < bestSpan {
			bestSpan = span
			branch = v
		}
	}
	if branch < 0 {
		s.record(lo)
		return true
	}

	s.branches++
	mid := lo[branch] + (hi[branch]-lo[branch])/2
	lowFirst := s.objCoefFor(Var(branch)) >= 0

	halves := [2][2]int64{{lo[branch], mid}, {mid + 1, hi[branch]}}
	order := [2]int{0, 1}
	if !lowFirst {
		order = [2]int{1, 0}
	}
	complete := true
	for _, oi := range order {
		nlo := append([]int64(nil), lo...)
		nhi := append([]int64(nil), hi...)
		nlo[branch], nhi[branch] = halves[oi][0], halves[oi][1]
		if s.propagate(nlo, nhi) {
			if !s.search(nlo, nhi) {
				complete = false
			}
		}
		if s.expired() {
			return false
		}
	}
	return complete
}

func (s *refSearcher) objCoefFor(v Var) int64 {
	for i, ov := range s.m.objVars {
		if ov == v {
			return s.m.objCoefs[i]
		}
	}
	return 0
}

func (s *refSearcher) record(vals []int64) {
	var obj int64
	for i, v := range s.m.objVars {
		obj += s.m.objCoefs[i] * vals[v]
	}
	if !s.hasBest || obj < s.bestObj {
		s.best = append([]int64(nil), vals...)
		s.bestObj = obj
		s.hasBest = true
		s.objBound = obj - 1
	}
}
