// Package cpsat is a small constraint-programming solver over bounded
// integer variables: the stand-in for Google OR-Tools CP-SAT that §3
// reduces the Overlap Plan Generation problem to.
//
// It supports exactly the fragment OPG needs — interval domains, linear
// constraints with two-sided bounds, reified threshold implications
// ((x ≥ c) ⇒ (y ≤ d)), and linear objective minimization — implemented
// honestly: bounds-consistency propagation to fixpoint, depth-first branch
// and bound with domain bisection, incumbent-driven objective tightening,
// and a wall-clock time limit yielding OPTIMAL / FEASIBLE / INFEASIBLE /
// UNKNOWN statuses like the paper's Table 4 reports.
package cpsat

import (
	"fmt"
	"math"
	"time"
)

// Var is a variable handle within one Model.
type Var int

// Status is the solver outcome.
type Status int

// Solver outcomes; FEASIBLE means the time limit expired with an incumbent
// whose optimality was not proven.
const (
	Unknown Status = iota
	Optimal
	Feasible
	Infeasible
)

// String names the status like CP-SAT logs do.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Feasible:
		return "FEASIBLE"
	case Infeasible:
		return "INFEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// linear is lo ≤ Σ coefs·vars ≤ hi.
type linear struct {
	vars  []Var
	coefs []int64
	lo    int64
	hi    int64
}

// implication is (x ≥ c) ⇒ (y ≤ d).
type implication struct {
	x Var
	c int64
	y Var
	d int64
}

// Model accumulates variables and constraints.
type Model struct {
	lo, hi []int64
	names  []string

	linears []linear
	implies []implication

	objVars  []Var
	objCoefs []int64
	hasObj   bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NewIntVar adds a variable with inclusive domain [lo, hi].
func (m *Model) NewIntVar(lo, hi int64, name string) Var {
	if lo > hi {
		panic(fmt.Sprintf("cpsat: var %s has empty domain [%d,%d]", name, lo, hi))
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	return Var(len(m.lo) - 1)
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.lo) }

// AddLinearRange adds lo ≤ Σ coefs·vars ≤ hi.
func (m *Model) AddLinearRange(vars []Var, coefs []int64, lo, hi int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: vars/coefs length mismatch")
	}
	m.linears = append(m.linears, linear{
		vars: append([]Var(nil), vars...), coefs: append([]int64(nil), coefs...),
		lo: lo, hi: hi,
	})
}

// AddLinearLE adds Σ coefs·vars ≤ hi.
func (m *Model) AddLinearLE(vars []Var, coefs []int64, hi int64) {
	m.AddLinearRange(vars, coefs, math.MinInt64/4, hi)
}

// AddLinearEQ adds Σ coefs·vars = v.
func (m *Model) AddLinearEQ(vars []Var, coefs []int64, v int64) {
	m.AddLinearRange(vars, coefs, v, v)
}

// AddImplication adds (x ≥ c) ⇒ (y ≤ d), propagated in both directions.
func (m *Model) AddImplication(x Var, c int64, y Var, d int64) {
	m.implies = append(m.implies, implication{x: x, c: c, y: y, d: d})
}

// Minimize sets the objective Σ coefs·vars.
func (m *Model) Minimize(vars []Var, coefs []int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: objective vars/coefs length mismatch")
	}
	m.objVars = append([]Var(nil), vars...)
	m.objCoefs = append([]int64(nil), coefs...)
	m.hasObj = true
}

// Options bounds the search.
type Options struct {
	TimeLimit   time.Duration // wall-clock budget; 0 = no limit
	MaxBranches int64         // branch budget; 0 = no limit
}

// Result is a solve outcome.
type Result struct {
	Status    Status
	Values    []int64
	Objective int64

	Branches     int64
	Propagations int64
	Elapsed      time.Duration
}

// Value returns the solution value of v.
func (r Result) Value(v Var) int64 { return r.Values[v] }

type searcher struct {
	m *Model

	lo, hi []int64

	best      []int64
	bestObj   int64
	hasBest   bool
	objBound  int64 // incumbent-driven cap: objective ≤ objBound
	deadline  time.Time
	hasLimit  bool
	branches  int64
	maxBranch int64
	props     int64
	timedOut  bool
}

// Solve runs branch-and-bound and returns the best solution found.
func (m *Model) Solve(opts Options) Result {
	start := time.Now()
	s := &searcher{
		m:         m,
		lo:        append([]int64(nil), m.lo...),
		hi:        append([]int64(nil), m.hi...),
		objBound:  math.MaxInt64 / 4,
		maxBranch: opts.MaxBranches,
	}
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
		s.hasLimit = true
	}

	complete := false
	if s.propagate(s.lo, s.hi) {
		complete = s.search(s.lo, s.hi)
	} else {
		complete = true // root infeasible, proven
	}

	res := Result{
		Branches:     s.branches,
		Propagations: s.props,
		Elapsed:      time.Since(start),
	}
	switch {
	case s.hasBest && (complete || !m.hasObj):
		res.Status = Optimal
		res.Values = s.best
		res.Objective = s.bestObj
	case s.hasBest:
		res.Status = Feasible
		res.Values = s.best
		res.Objective = s.bestObj
	case complete:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res
}

// expired reports whether a search budget ran out.
func (s *searcher) expired() bool {
	if s.timedOut {
		return true
	}
	if s.maxBranch > 0 && s.branches >= s.maxBranch {
		s.timedOut = true
		return true
	}
	if s.hasLimit && s.branches%64 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
		return true
	}
	return false
}

// propagate runs bounds-consistency to fixpoint on (lo, hi) in place.
// It reports false on a wipeout (infeasible node).
func (s *searcher) propagate(lo, hi []int64) bool {
	for changed := true; changed; {
		changed = false
		for i := range s.m.linears {
			ok, ch := s.propLinear(&s.m.linears[i], lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		for i := range s.m.implies {
			ok, ch := s.propImply(&s.m.implies[i], lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		if s.m.hasObj {
			ok, ch := s.propObjective(lo, hi)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

// propLinear tightens variable bounds against one linear constraint.
func (s *searcher) propLinear(c *linear, lo, hi []int64) (ok, changed bool) {
	s.props++
	var exprLo, exprHi int64
	for i, v := range c.vars {
		if c.coefs[i] >= 0 {
			exprLo += c.coefs[i] * lo[v]
			exprHi += c.coefs[i] * hi[v]
		} else {
			exprLo += c.coefs[i] * hi[v]
			exprHi += c.coefs[i] * lo[v]
		}
	}
	if exprLo > c.hi || exprHi < c.lo {
		return false, false
	}
	for i, v := range c.vars {
		k := c.coefs[i]
		if k == 0 {
			continue
		}
		// Residual bounds of the expression without v's term.
		var termLo, termHi int64
		if k > 0 {
			termLo, termHi = k*lo[v], k*hi[v]
		} else {
			termLo, termHi = k*hi[v], k*lo[v]
		}
		restLo, restHi := exprLo-termLo, exprHi-termHi
		// k*v ≤ c.hi - restLo  and  k*v ≥ c.lo - restHi.
		ubTerm := c.hi - restLo
		lbTerm := c.lo - restHi
		var newLo, newHi int64
		if k > 0 {
			newHi = floorDiv(ubTerm, k)
			newLo = ceilDiv(lbTerm, k)
		} else {
			newLo = ceilDiv(ubTerm, k)
			newHi = floorDiv(lbTerm, k)
		}
		if newLo > lo[v] {
			lo[v] = newLo
			changed = true
		}
		if newHi < hi[v] {
			hi[v] = newHi
			changed = true
		}
		if lo[v] > hi[v] {
			return false, changed
		}
		if changed {
			// Refresh running expression bounds after a tightening.
			exprLo, exprHi = 0, 0
			for j, w := range c.vars {
				if c.coefs[j] >= 0 {
					exprLo += c.coefs[j] * lo[w]
					exprHi += c.coefs[j] * hi[w]
				} else {
					exprLo += c.coefs[j] * hi[w]
					exprHi += c.coefs[j] * lo[w]
				}
			}
			if exprLo > c.hi || exprHi < c.lo {
				return false, changed
			}
		}
	}
	return true, changed
}

// propImply enforces (x ≥ c) ⇒ (y ≤ d) and its contrapositive.
func (s *searcher) propImply(im *implication, lo, hi []int64) (ok, changed bool) {
	s.props++
	if lo[im.x] >= im.c && hi[im.y] > im.d {
		hi[im.y] = im.d
		changed = true
	}
	if lo[im.y] > im.d && hi[im.x] >= im.c {
		hi[im.x] = im.c - 1
		changed = true
	}
	if lo[im.x] > hi[im.x] || lo[im.y] > hi[im.y] {
		return false, changed
	}
	return true, changed
}

// propObjective prunes nodes whose objective lower bound meets or exceeds
// the incumbent.
func (s *searcher) propObjective(lo, hi []int64) (ok, changed bool) {
	if !s.hasBest {
		return true, false
	}
	s.props++
	var objLo int64
	for i, v := range s.m.objVars {
		if s.m.objCoefs[i] >= 0 {
			objLo += s.m.objCoefs[i] * lo[v]
		} else {
			objLo += s.m.objCoefs[i] * hi[v]
		}
	}
	if objLo > s.objBound {
		return false, false
	}
	return true, false
}

// search explores the subtree under the given (already propagated) domains.
// It returns true if the subtree was explored exhaustively.
func (s *searcher) search(lo, hi []int64) bool {
	if s.expired() {
		return false
	}
	// Find the branching variable: smallest unfixed domain (first-fail).
	branch := -1
	var bestSpan int64 = math.MaxInt64
	for v := range lo {
		span := hi[v] - lo[v]
		if span > 0 && span < bestSpan {
			bestSpan = span
			branch = v
		}
	}
	if branch < 0 {
		// All fixed: feasible leaf (propagation already validated bounds).
		s.record(lo)
		return true
	}

	s.branches++
	mid := lo[branch] + (hi[branch]-lo[branch])/2
	// Branch order: explore the half that locally improves the objective
	// first (negative coefficient → prefer large values).
	lowFirst := s.objCoefFor(Var(branch)) >= 0

	halves := [2][2]int64{{lo[branch], mid}, {mid + 1, hi[branch]}}
	order := [2]int{0, 1}
	if !lowFirst {
		order = [2]int{1, 0}
	}
	complete := true
	for _, oi := range order {
		nlo := append([]int64(nil), lo...)
		nhi := append([]int64(nil), hi...)
		nlo[branch], nhi[branch] = halves[oi][0], halves[oi][1]
		if s.propagate(nlo, nhi) {
			if !s.search(nlo, nhi) {
				complete = false
			}
		}
		if s.expired() {
			return false
		}
	}
	return complete
}

// objCoefFor returns the objective coefficient of v (0 if absent).
func (s *searcher) objCoefFor(v Var) int64 {
	for i, ov := range s.m.objVars {
		if ov == v {
			return s.m.objCoefs[i]
		}
	}
	return 0
}

// record stores a feasible assignment, tightening the incumbent bound.
func (s *searcher) record(vals []int64) {
	var obj int64
	for i, v := range s.m.objVars {
		obj += s.m.objCoefs[i] * vals[v]
	}
	if !s.hasBest || obj < s.bestObj {
		s.best = append([]int64(nil), vals...)
		s.bestObj = obj
		s.hasBest = true
		s.objBound = obj - 1
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
