// Package cpsat is a small constraint-programming solver over bounded
// integer variables: the stand-in for Google OR-Tools CP-SAT that §3
// reduces the Overlap Plan Generation problem to.
//
// It supports exactly the fragment OPG needs — interval domains, linear
// constraints with two-sided bounds, reified threshold implications
// ((x ≥ c) ⇒ (y ≤ d)), and linear objective minimization — implemented
// honestly: bounds-consistency propagation driven by var→constraint
// watchlists (only constraints watching a tightened variable wake up),
// trail-based backtracking (an undo stack of bound changes instead of
// domain-array copies at every branch), incremental expression-bound
// maintenance for linear rows, depth-first branch and bound with
// most-constrained-variable selection and objective-directed value
// ordering, incumbent-driven objective tightening, and a wall-clock time
// limit yielding OPTIMAL / FEASIBLE / INFEASIBLE / UNKNOWN statuses like
// the paper's Table 4 reports.
package cpsat

import (
	"fmt"
	"math"
	"time"
)

// Var is a variable handle within one Model.
type Var int

// Status is the solver outcome.
type Status int

// Solver outcomes; FEASIBLE means the time limit expired with an incumbent
// whose optimality was not proven.
const (
	Unknown Status = iota
	Optimal
	Feasible
	Infeasible
)

// String names the status like CP-SAT logs do.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Feasible:
		return "FEASIBLE"
	case Infeasible:
		return "INFEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// linear is lo ≤ Σ coefs·vars ≤ hi.
type linear struct {
	vars  []Var
	coefs []int64
	lo    int64
	hi    int64
}

// implication is (x ≥ c) ⇒ (y ≤ d).
type implication struct {
	x Var
	c int64
	y Var
	d int64
}

// Model accumulates variables and constraints.
type Model struct {
	lo, hi []int64
	names  []string

	linears []linear
	implies []implication

	objVars  []Var
	objCoefs []int64
	hasObj   bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NewIntVar adds a variable with inclusive domain [lo, hi].
func (m *Model) NewIntVar(lo, hi int64, name string) Var {
	if lo > hi {
		panic(fmt.Sprintf("cpsat: var %s has empty domain [%d,%d]", name, lo, hi))
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	return Var(len(m.lo) - 1)
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.lo) }

// AddLinearRange adds lo ≤ Σ coefs·vars ≤ hi.
func (m *Model) AddLinearRange(vars []Var, coefs []int64, lo, hi int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: vars/coefs length mismatch")
	}
	m.linears = append(m.linears, linear{
		vars: append([]Var(nil), vars...), coefs: append([]int64(nil), coefs...),
		lo: lo, hi: hi,
	})
}

// AddLinearLE adds Σ coefs·vars ≤ hi.
func (m *Model) AddLinearLE(vars []Var, coefs []int64, hi int64) {
	m.AddLinearRange(vars, coefs, math.MinInt64/4, hi)
}

// AddLinearEQ adds Σ coefs·vars = v.
func (m *Model) AddLinearEQ(vars []Var, coefs []int64, v int64) {
	m.AddLinearRange(vars, coefs, v, v)
}

// AddImplication adds (x ≥ c) ⇒ (y ≤ d), propagated in both directions.
func (m *Model) AddImplication(x Var, c int64, y Var, d int64) {
	m.implies = append(m.implies, implication{x: x, c: c, y: y, d: d})
}

// Minimize sets the objective Σ coefs·vars.
func (m *Model) Minimize(vars []Var, coefs []int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: objective vars/coefs length mismatch")
	}
	m.objVars = append([]Var(nil), vars...)
	m.objCoefs = append([]int64(nil), coefs...)
	m.hasObj = true
}

// Options bounds the search.
type Options struct {
	TimeLimit   time.Duration // wall-clock budget; 0 = no limit
	MaxBranches int64         // branch budget; 0 = no limit
}

// Result is a solve outcome.
type Result struct {
	Status    Status
	Values    []int64
	Objective int64

	Branches     int64
	Propagations int64 // propagator executions (queue pops)
	Wakes        int64 // constraint activations scheduled by bound changes
	TrailOps     int64 // bound changes pushed to (and undone from) the trail
	Elapsed      time.Duration
}

// Value returns the solution value of v.
func (r Result) Value(v Var) int64 { return r.Values[v] }

// propPollStride is how many propagator executions may pass between
// wall-clock deadline polls. Without it, a long propagation burst between
// two branches would only notice an expired TimeLimit at the next branch —
// arbitrarily late, since a single fixpoint can run for seconds on
// adversarial chains.
const propPollStride = 2048

// watch is one linear row's interest in a variable.
type watch struct {
	c    int32 // row index in searcher.lins
	coef int64
}

// trailEntry records a variable's bounds before a tightening, so
// backtracking restores them (and the incremental row sums) by replaying
// the deltas in reverse.
type trailEntry struct {
	v            int32
	oldLo, oldHi int64
}

type searcher struct {
	m *Model

	lo, hi []int64

	// lins holds the model's (deduplicated) linear rows plus, at objIdx,
	// the objective row obj ≤ incumbent-1 whose hi tightens as solutions
	// are found. linLo/linHi are each row's Σ bounds under the current
	// domains, maintained incrementally by setLo/setHi.
	lins   []linear
	objIdx int
	linLo  []int64
	linHi  []int64

	watchLin [][]watch // var → linear rows containing it
	watchImp [][]int32 // var → implications mentioning it
	degree   []int32   // var → watcher count (branching tie-break)
	objCoef  []int64   // var → objective coefficient (value ordering)

	// queue is a FIFO of pending constraint ids: [0,len(lins)) are linear
	// rows, len(lins)+i is implication i. inQueue suppresses duplicates.
	queue      []int32
	qhead      int
	inQueue    []bool
	objPending bool // objective row woken; propagated only at cheap-row fixpoint

	trail []trailEntry

	best    []int64
	bestObj int64
	hasBest bool

	rootInfeasible bool // empty constraint range found during row dedup

	deadline  time.Time
	hasLimit  bool
	branches  int64
	maxBranch int64
	props     int64
	wakes     int64
	trailOps  int64
	lastPoll  int64
	timedOut  bool
}

// Solve runs branch-and-bound and returns the best solution found.
func (m *Model) Solve(opts Options) Result {
	start := time.Now()
	s := newSearcher(m, opts)
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
		s.hasLimit = true
	}

	complete := false
	if s.rootInfeasible {
		complete = true
	} else if s.propagateRoot() {
		complete = s.search()
	} else {
		complete = !s.timedOut // root wipeout is proven unless the clock cut the fixpoint short
	}

	res := Result{
		Branches:     s.branches,
		Propagations: s.props,
		Wakes:        s.wakes,
		TrailOps:     s.trailOps,
		Elapsed:      time.Since(start),
	}
	switch {
	case s.hasBest && (complete || !m.hasObj):
		res.Status = Optimal
		res.Values = s.best
		res.Objective = s.bestObj
	case s.hasBest:
		res.Status = Feasible
		res.Values = s.best
		res.Objective = s.bestObj
	case complete:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res
}

// newSearcher builds the watchlists, incremental row sums, and branching
// metadata for one solve.
func newSearcher(m *Model, opts Options) *searcher {
	nv := len(m.lo)
	s := &searcher{
		m:         m,
		lo:        append([]int64(nil), m.lo...),
		hi:        append([]int64(nil), m.hi...),
		objIdx:    -1,
		maxBranch: opts.MaxBranches,
	}

	// Root reduction: rows with identical terms collapse to one row with
	// intersected bounds. OPG's window models emit many such duplicates
	// (adjacent in-flight rows over an unchanged candidate set), and every
	// duplicate would otherwise wake — and scan — on each of its vars'
	// tightenings.
	s.lins = dedupRows(m.linears, &s.rootInfeasible)
	if m.hasObj {
		s.objIdx = len(s.lins)
		s.lins = append(s.lins, linear{
			vars: m.objVars, coefs: m.objCoefs,
			lo: math.MinInt64 / 4, hi: math.MaxInt64 / 4,
		})
	}

	nl := len(s.lins)
	s.linLo = make([]int64, nl)
	s.linHi = make([]int64, nl)
	s.inQueue = make([]bool, nl+len(m.implies))
	s.degree = make([]int32, nv)
	s.objCoef = make([]int64, nv)
	for i, v := range m.objVars {
		s.objCoef[v] += m.objCoefs[i]
	}

	// Watchlists over one flat backing array each: counting pass, then
	// capacity-sliced per-var lists, so construction does O(1) allocations.
	linCnt := make([]int32, nv)
	impCnt := make([]int32, nv)
	terms := 0
	for ci := range s.lins {
		c := &s.lins[ci]
		var exprLo, exprHi int64
		for j, v := range c.vars {
			k := c.coefs[j]
			if k >= 0 {
				exprLo += k * s.lo[v]
				exprHi += k * s.hi[v]
			} else {
				exprLo += k * s.hi[v]
				exprHi += k * s.lo[v]
			}
			if k != 0 {
				linCnt[v]++
				terms++
			}
		}
		s.linLo[ci], s.linHi[ci] = exprLo, exprHi
	}
	for i := range m.implies {
		impCnt[m.implies[i].x]++
		impCnt[m.implies[i].y]++
	}
	s.watchLin = make([][]watch, nv)
	s.watchImp = make([][]int32, nv)
	linFlat := make([]watch, terms)
	impFlat := make([]int32, 2*len(m.implies))
	linOff, impOff := 0, 0
	for v := 0; v < nv; v++ {
		s.watchLin[v] = linFlat[linOff : linOff : linOff+int(linCnt[v])]
		s.watchImp[v] = impFlat[impOff : impOff : impOff+int(impCnt[v])]
		linOff += int(linCnt[v])
		impOff += int(impCnt[v])
		s.degree[v] = linCnt[v] + impCnt[v]
	}
	for ci := range s.lins {
		c := &s.lins[ci]
		for j, v := range c.vars {
			if c.coefs[j] != 0 {
				s.watchLin[v] = append(s.watchLin[v], watch{c: int32(ci), coef: c.coefs[j]})
			}
		}
	}
	for i := range m.implies {
		im := &m.implies[i]
		s.watchImp[im.x] = append(s.watchImp[im.x], int32(i))
		s.watchImp[im.y] = append(s.watchImp[im.y], int32(i))
	}
	return s
}

// dedupRows merges rows with identical (vars, coefs) terms by intersecting
// their bound ranges. An empty intersection proves root infeasibility.
func dedupRows(rows []linear, infeasible *bool) []linear {
	if len(rows) < 2 {
		return append([]linear(nil), rows...)
	}
	seen := make(map[string]int, len(rows))
	keyBuf := make([]byte, 0, 256)
	out := make([]linear, 0, len(rows))
	for _, r := range rows {
		keyBuf = keyBuf[:0]
		for j, v := range r.vars {
			keyBuf = appendInt64(keyBuf, int64(v))
			keyBuf = appendInt64(keyBuf, r.coefs[j])
		}
		k := string(keyBuf)
		if i, ok := seen[k]; ok {
			if r.lo > out[i].lo {
				out[i].lo = r.lo
			}
			if r.hi < out[i].hi {
				out[i].hi = r.hi
			}
			if out[i].lo > out[i].hi {
				*infeasible = true
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, r)
	}
	return out
}

func appendInt64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// expired reports whether a search budget ran out. The wall clock is also
// polled inside drain on a propagation stride, so a long fixpoint between
// branches cannot overshoot the limit.
func (s *searcher) expired() bool {
	if s.timedOut {
		return true
	}
	if s.maxBranch > 0 && s.branches >= s.maxBranch {
		s.timedOut = true
		return true
	}
	if s.hasLimit && s.branches%64 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
		return true
	}
	return false
}

// enqueue schedules constraint id c (a lins index, or len(lins)+i for
// implication i) unless it is already pending.
func (s *searcher) enqueue(c int32) {
	if int(c) == s.objIdx {
		// The objective row is by far the widest and purely redundant for
		// feasibility: defer it until the cheap rows reach fixpoint so one
		// scan sees all their tightenings instead of interleaving with them.
		if !s.objPending {
			s.objPending = true
			s.wakes++
		}
		return
	}
	if s.inQueue[c] {
		return
	}
	s.inQueue[c] = true
	s.wakes++
	s.queue = append(s.queue, c)
}

// clearQueue discards pending work after a wipeout or timeout.
func (s *searcher) clearQueue() {
	for _, c := range s.queue[s.qhead:] {
		s.inQueue[c] = false
	}
	s.queue = s.queue[:0]
	s.qhead = 0
	s.objPending = false
}

// setLo tightens v's lower bound, trails the old bounds, refreshes the
// incremental sums of every row watching v, and wakes those watchers. It
// reports false on an emptied domain.
func (s *searcher) setLo(v int, nl int64) bool {
	ol := s.lo[v]
	if nl <= ol {
		return true
	}
	s.trail = append(s.trail, trailEntry{v: int32(v), oldLo: ol, oldHi: s.hi[v]})
	s.trailOps++
	s.lo[v] = nl
	d := nl - ol
	for _, w := range s.watchLin[v] {
		if w.coef > 0 {
			s.linLo[w.c] += w.coef * d
		} else {
			s.linHi[w.c] += w.coef * d
		}
		s.enqueue(w.c)
	}
	nLin := int32(len(s.lins))
	for _, ii := range s.watchImp[v] {
		s.enqueue(nLin + ii)
	}
	return nl <= s.hi[v]
}

// setHi is setLo's mirror for upper bounds.
func (s *searcher) setHi(v int, nh int64) bool {
	oh := s.hi[v]
	if nh >= oh {
		return true
	}
	s.trail = append(s.trail, trailEntry{v: int32(v), oldLo: s.lo[v], oldHi: oh})
	s.trailOps++
	s.hi[v] = nh
	d := nh - oh
	for _, w := range s.watchLin[v] {
		if w.coef > 0 {
			s.linHi[w.c] += w.coef * d
		} else {
			s.linLo[w.c] += w.coef * d
		}
		s.enqueue(w.c)
	}
	nLin := int32(len(s.lins))
	for _, ii := range s.watchImp[v] {
		s.enqueue(nLin + ii)
	}
	return s.lo[v] <= nh
}

// undoTo pops the trail back to mark, restoring domains and replaying the
// incremental row-sum deltas in reverse. Watchers are not woken: relaxing
// a bound never enables new propagation.
func (s *searcher) undoTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := &s.trail[i]
		v := int(e.v)
		if d := e.oldLo - s.lo[v]; d != 0 {
			for _, w := range s.watchLin[v] {
				if w.coef > 0 {
					s.linLo[w.c] += w.coef * d
				} else {
					s.linHi[w.c] += w.coef * d
				}
			}
			s.lo[v] = e.oldLo
		}
		if d := e.oldHi - s.hi[v]; d != 0 {
			for _, w := range s.watchLin[v] {
				if w.coef > 0 {
					s.linHi[w.c] += w.coef * d
				} else {
					s.linLo[w.c] += w.coef * d
				}
			}
			s.hi[v] = e.oldHi
		}
	}
	s.trail = s.trail[:mark]
}

// propagateRoot wakes every constraint once and drains to fixpoint.
func (s *searcher) propagateRoot() bool {
	for c := range s.inQueue {
		s.enqueue(int32(c))
	}
	return s.drain()
}

// drain runs woken propagators until the queue empties (fixpoint), a
// domain wipes out, or the wall clock expires mid-burst. On failure the
// remaining queue is discarded.
func (s *searcher) drain() bool {
	nLin := len(s.lins)
	for {
		for s.qhead < len(s.queue) {
			if s.hasLimit && s.props-s.lastPoll >= propPollStride {
				s.lastPoll = s.props
				if time.Now().After(s.deadline) {
					s.timedOut = true
					s.clearQueue()
					return false
				}
			}
			c := int(s.queue[s.qhead])
			s.qhead++
			s.inQueue[c] = false
			ok := true
			if c < nLin {
				ok = s.propLinear(c)
			} else {
				ok = s.propImply(c - nLin)
			}
			if !ok {
				s.clearQueue()
				return false
			}
		}
		s.queue = s.queue[:0]
		s.qhead = 0
		if !s.objPending {
			return true
		}
		s.objPending = false
		if !s.propLinear(s.objIdx) {
			s.clearQueue()
			return false
		}
	}
}

// propLinear tightens variable bounds against one linear row using the
// incrementally maintained expression bounds: the O(1) feasibility and
// entailment checks come first, and any tightening refreshes linLo/linHi
// through setLo/setHi instead of a full O(n) recomputation.
func (s *searcher) propLinear(ci int) bool {
	c := &s.lins[ci]
	s.props++
	hiBound := c.hi
	exprLo, exprHi := s.linLo[ci], s.linHi[ci]
	if exprLo > hiBound || exprHi < c.lo {
		return false
	}
	if exprLo >= c.lo && exprHi <= hiBound {
		return true // entailed: no filtering can tighten anything
	}
	for i, v := range c.vars {
		k := c.coefs[i]
		if k == 0 || s.lo[v] == s.hi[v] {
			continue
		}
		var termLo, termHi int64
		if k > 0 {
			termLo, termHi = k*s.lo[v], k*s.hi[v]
		} else {
			termLo, termHi = k*s.hi[v], k*s.lo[v]
		}
		// k·v ≤ c.hi − restLo  and  k·v ≥ c.lo − restHi. A division is only
		// worth paying when the term bound actually exceeds its budget:
		// termHi ≤ ubTerm (resp. termLo ≥ lbTerm) already proves v cannot
		// be tightened by this row.
		ubTerm := c.hi - (exprLo - termLo)
		lbTerm := c.lo - (exprHi - termHi)
		tightened := false
		if termHi > ubTerm {
			// k·v ≤ ubTerm bites: caps v from above for k > 0, below for k < 0.
			ok := false
			if k > 0 {
				ok = s.setHi(int(v), floorDiv(ubTerm, k))
			} else {
				ok = s.setLo(int(v), ceilDiv(ubTerm, k))
			}
			if !ok {
				return false
			}
			tightened = true
		}
		if termLo < lbTerm {
			// k·v ≥ lbTerm bites: caps v from below for k > 0, above for k < 0.
			ok := false
			if k > 0 {
				ok = s.setLo(int(v), ceilDiv(lbTerm, k))
			} else {
				ok = s.setHi(int(v), floorDiv(lbTerm, k))
			}
			if !ok {
				return false
			}
			tightened = true
		}
		if tightened {
			exprLo, exprHi = s.linLo[ci], s.linHi[ci]
			if exprLo > c.hi || exprHi < c.lo {
				return false
			}
		}
	}
	return true
}

// propImply enforces (x ≥ c) ⇒ (y ≤ d) and its contrapositive.
func (s *searcher) propImply(ii int) bool {
	im := &s.m.implies[ii]
	s.props++
	if s.lo[im.x] >= im.c && s.hi[im.y] > im.d {
		if !s.setHi(int(im.y), im.d) {
			return false
		}
	}
	if s.lo[im.y] > im.d && s.hi[im.x] >= im.c {
		if !s.setHi(int(im.x), im.c-1) {
			return false
		}
	}
	return true
}

// prunedByBound reports whether the current node cannot improve on the
// incumbent: an O(1) check against the objective row's incremental lower
// bound (or, without an objective, any incumbent at all — the first
// solution of a satisfaction problem ends the search).
func (s *searcher) prunedByBound() bool {
	if !s.hasBest {
		return false
	}
	if s.objIdx < 0 {
		return true
	}
	return s.linLo[s.objIdx] > s.lins[s.objIdx].hi
}

// search explores the subtree under the current (already propagated)
// domains, branching on the most-constrained variable — smallest domain,
// ties broken toward the most-watched — and trying the objective-preferred
// half first. It returns true if the subtree was explored exhaustively.
func (s *searcher) search() bool {
	if s.expired() {
		return false
	}
	if s.prunedByBound() {
		return true // no improving solution below this node: proven
	}
	branch := -1
	var bestSpan int64 = math.MaxInt64
	var bestDeg int32 = -1
	for v := range s.lo {
		span := s.hi[v] - s.lo[v]
		if span > 0 && (span < bestSpan || (span == bestSpan && s.degree[v] > bestDeg)) {
			bestSpan = span
			bestDeg = s.degree[v]
			branch = v
		}
	}
	if branch < 0 {
		// All fixed: feasible leaf (propagation already validated bounds).
		s.record()
		return true
	}

	s.branches++
	lo, hi := s.lo[branch], s.hi[branch]
	// Value ordering: commit the objective-preferred endpoint first (the
	// greedy dive), leaving the rest of the domain for the refutation
	// branch. Minimization prefers small values under a non-negative
	// coefficient and large ones under a negative coefficient.
	var halves [2][2]int64
	if s.objCoef[branch] < 0 {
		halves = [2][2]int64{{hi, hi}, {lo, hi - 1}}
	} else {
		halves = [2][2]int64{{lo, lo}, {lo + 1, hi}}
	}
	order := [2]int{0, 1}
	complete := true
	for _, oi := range order {
		mark := len(s.trail)
		ok := s.setLo(branch, halves[oi][0]) && s.setHi(branch, halves[oi][1])
		if ok {
			ok = s.drain()
		} else {
			s.clearQueue()
		}
		if ok {
			if !s.search() {
				complete = false
			}
		} else if s.timedOut {
			complete = false
		}
		s.undoTo(mark)
		if s.expired() {
			return false
		}
	}
	return complete
}

// record stores the current (fully fixed) assignment, tightening the
// objective row's bound so the rest of the search only accepts strict
// improvements.
func (s *searcher) record() {
	var obj int64
	for i, v := range s.m.objVars {
		obj += s.m.objCoefs[i] * s.lo[v]
	}
	if !s.hasBest || obj < s.bestObj {
		s.best = append(s.best[:0], s.lo...)
		s.bestObj = obj
		s.hasBest = true
		if s.objIdx >= 0 {
			s.lins[s.objIdx].hi = obj - 1
			s.enqueue(int32(s.objIdx))
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
