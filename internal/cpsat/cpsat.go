// Package cpsat is a small constraint-programming solver over bounded
// integer variables: the stand-in for Google OR-Tools CP-SAT that §3
// reduces the Overlap Plan Generation problem to.
//
// It supports exactly the fragment OPG needs — interval domains, linear
// constraints with two-sided bounds, reified threshold implications
// ((x ≥ c) ⇒ (y ≤ d)), and linear objective minimization — implemented
// honestly: bounds-consistency propagation driven by var→constraint
// watchlists (only constraints watching a tightened variable wake up),
// trail-based backtracking (an undo stack of bound changes instead of
// domain-array copies at every branch), incremental expression-bound
// maintenance for linear rows, depth-first branch and bound with
// most-constrained-variable selection and objective-directed value
// ordering, incumbent-driven objective tightening, and a wall-clock time
// limit yielding OPTIMAL / FEASIBLE / INFEASIBLE / UNKNOWN statuses like
// the paper's Table 4 reports.
package cpsat

import (
	"fmt"
	"math"
	"time"
)

// Var is a variable handle within one Model.
type Var int

// Status is the solver outcome.
type Status int

// Solver outcomes; FEASIBLE means the time limit expired with an incumbent
// whose optimality was not proven.
const (
	Unknown Status = iota
	Optimal
	Feasible
	Infeasible
)

// String names the status like CP-SAT logs do.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Feasible:
		return "FEASIBLE"
	case Infeasible:
		return "INFEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// linear is lo ≤ Σ coefs·vars ≤ hi.
type linear struct {
	vars  []Var
	coefs []int64
	lo    int64
	hi    int64
}

// implication is (x ≥ c) ⇒ (y ≤ d).
type implication struct {
	x Var
	c int64
	y Var
	d int64
}

// Model accumulates variables and constraints.
type Model struct {
	lo, hi []int64
	names  []string

	linears []linear
	implies []implication

	objVars  []Var
	objCoefs []int64
	hasObj   bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NewIntVar adds a variable with inclusive domain [lo, hi].
func (m *Model) NewIntVar(lo, hi int64, name string) Var {
	if lo > hi {
		panic(fmt.Sprintf("cpsat: var %s has empty domain [%d,%d]", name, lo, hi))
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	return Var(len(m.lo) - 1)
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.lo) }

// AddLinearRange adds lo ≤ Σ coefs·vars ≤ hi.
func (m *Model) AddLinearRange(vars []Var, coefs []int64, lo, hi int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: vars/coefs length mismatch")
	}
	m.linears = append(m.linears, linear{
		vars: append([]Var(nil), vars...), coefs: append([]int64(nil), coefs...),
		lo: lo, hi: hi,
	})
}

// AddLinearLE adds Σ coefs·vars ≤ hi.
func (m *Model) AddLinearLE(vars []Var, coefs []int64, hi int64) {
	m.AddLinearRange(vars, coefs, math.MinInt64/4, hi)
}

// AddLinearEQ adds Σ coefs·vars = v.
func (m *Model) AddLinearEQ(vars []Var, coefs []int64, v int64) {
	m.AddLinearRange(vars, coefs, v, v)
}

// AddImplication adds (x ≥ c) ⇒ (y ≤ d), propagated in both directions.
func (m *Model) AddImplication(x Var, c int64, y Var, d int64) {
	m.implies = append(m.implies, implication{x: x, c: c, y: y, d: d})
}

// Minimize sets the objective Σ coefs·vars.
func (m *Model) Minimize(vars []Var, coefs []int64) {
	if len(vars) != len(coefs) {
		panic("cpsat: objective vars/coefs length mismatch")
	}
	m.objVars = append([]Var(nil), vars...)
	m.objCoefs = append([]int64(nil), coefs...)
	m.hasObj = true
}

// Lit is a public bound literal: Var ≥ Bound when Ge, else Var ≤ Bound.
// Imported and exported nogoods are conjunctions of literals whose joint
// truth the solver has proven impossible.
type Lit struct {
	Var   Var
	Ge    bool
	Bound int64
}

// Nogood is one learned (or importable) clause: the conjunction of its
// literals cannot hold in any solution of the model it was derived from.
type Nogood struct {
	Lits []Lit
}

// Options bounds the search.
type Options struct {
	TimeLimit   time.Duration // wall-clock budget; 0 = no limit
	MaxBranches int64         // branch budget; 0 = no limit

	// Learn enables conflict-driven clause learning. The default engine is
	// full CDCL: every propagation records its reason on the trail, every
	// conflict derives a first-UIP bound-literal nogood, minimizes it by
	// self-subsumption against the reasons, installs it immediately as a
	// watched row, and backjumps non-chronologically to its assertion
	// level. Luby restarts and activity-based branching ride along, and a
	// periodic nogood-database reduction keeps the learned set hot. Off,
	// the search behaves exactly like the plain event-driven engine.
	Learn bool

	// RestartOnly selects the legacy restart-scoped learning engine
	// (reduced nld-nogoods extracted from the aborted branch at each Luby
	// restart, chronological backtracking in between) instead of full
	// CDCL. Only meaningful with Learn; kept as an A/B reference.
	RestartOnly bool

	// RestartBase is the conflict budget of the first run; later runs scale
	// it by the Luby sequence (1,1,2,1,1,2,4,…). 0 means the package
	// default. Only meaningful with Learn.
	RestartBase int64

	// Import seeds the solve with externally learned nogoods, installed at
	// the root alongside the model's own constraints. The caller must
	// guarantee each nogood is implied by this model's hard constraints
	// (e.g. it was exported by a solve of a uniformly looser model — see
	// ImportCompatible); the solver trusts them. Nogoods refuted or
	// entailed by the root domains are filtered, not errors.
	Import []Nogood
}

// defaultRestartBase is the Luby unit: easy solves finish well under it and
// never restart, so learning costs them nothing.
const defaultRestartBase = 256

// maxNogoodLits bounds learned-nogood length: a refutation 50 decisions
// deep prunes almost nothing and bloats the watch lists.
const maxNogoodLits = 48

// maxNogoods bounds the learned store: the restart-only engine stops
// learning past it, while the CDCL engine halves the watched store by
// activity at the next restart once it overflows.
const maxNogoods = 4096

// initialDBMax is the CDCL engine's starting watched-clause budget; it
// grows by half at every overflowing database reduction (up to maxNogoods).
// Budget-bounded window solves learn ~1-2k clauses and want all of them
// hot — aggressive early reduction measurably re-learns the same conflicts
// — so the starting budget matches the restart-only engine's cap.
const initialDBMax = maxNogoods

// reasonOnlyLen is the CDCL watched-clause length cutoff: a learned nogood
// wider than this almost never re-propagates but would bloat the watch
// lists every solve long, so it is stored un-watched purely as the
// assertion's reason. Impure reason-only clauses are dead weight once
// their assertion unwinds and are dropped at the next database reduction;
// pure ones are kept for export.
const reasonOnlyLen = 4

// Result is a solve outcome.
type Result struct {
	Status    Status
	Values    []int64
	Objective int64

	Branches        int64
	Propagations    int64 // propagator executions (queue pops)
	Wakes           int64 // constraint activations scheduled by bound changes
	TrailOps        int64 // bound changes pushed to (and undone from) the trail
	Nogoods         int64 // learned nogoods installed (incl. root-unit ones)
	Restarts        int64 // Luby restarts performed
	Conflicts       int64 // conflicts hit (wipeouts, violated rows, re-entered nogoods)
	Backjumps       int64 // non-chronological backjumps (skipping over ≥1 intact level)
	MinimizedLits   int64 // literals removed from learned nogoods by self-subsumption
	ImportedNogoods int64 // Options.Import nogoods actually installed (post-filtering)
	Elapsed         time.Duration

	// Learned is the surviving set of exported nogoods: clauses derived
	// before the first incumbent (hence implied by the hard constraints
	// alone, never by the solve-local objective bound) that were still in
	// the database when the solve ended. Imported nogoods are not
	// re-exported. Only the CDCL engine fills it.
	Learned []Nogood

	// TimedOut reports that the wall clock expired mid-search. A solve cut
	// short only by MaxBranches leaves it false: branch budgets are
	// deterministic, so equal inputs still produce equal results.
	TimedOut bool
}

// Value returns the solution value of v.
func (r Result) Value(v Var) int64 { return r.Values[v] }

// propPollStride is how many propagator executions may pass between
// wall-clock deadline polls. Without it, a long propagation burst between
// two branches would only notice an expired TimeLimit at the next branch —
// arbitrarily late, since a single fixpoint can run for seconds on
// adversarial chains.
const propPollStride = 2048

// watch is one linear row's interest in a variable.
type watch struct {
	c    int32 // row index in searcher.lins
	coef int64
}

// trailEntry records one single-side bound tightening: which side of which
// variable, the bound it replaced, the propagation reason (a constraint id,
// or reasonDecision/reasonAssert), the decision level, and a link to the
// variable's previous tightening of the same side. Backtracking restores
// bounds (and the incremental row sums) by replaying entries in reverse;
// conflict analysis walks the per-variable chains to find, for any entailed
// bound literal, the entry that first established it.
type trailEntry struct {
	v      int32
	ge     bool  // true: lower-bound tightening, false: upper-bound
	useLo  bool  // linear-row reasons: tightening used the row's lo (vs hi) bound
	old    int64 // bound value before this entry
	prev   int32 // previous same-side entry for v (-1 at chain end)
	reason int32 // constraint id, reasonDecision, or reasonAssert
	level  int32 // decision level the tightening happened at
}

// Reason codes for trail entries that were not forced by a constraint.
const (
	reasonDecision int32 = -1 // a branch decision
	reasonAssert   int32 = -2 // root-level enforcement (unit nogood, import)
)

// lit is a bound literal: x ≥ bound when ge, else x ≤ bound. Every branch
// decision is one literal (the other half of the assigned interval is
// already implied by the current domain), so a refuted decision path is a
// conjunction of literals — the learned nogood ¬(l₁ ∧ … ∧ lₖ).
type lit struct {
	v     int32
	ge    bool
	bound int64
}

// decision is one entry of the current branch: the literal taken, and —
// for a second (refutation) half — the sibling literal whose subtree was
// already fully explored, which is what restart-time nogood extraction
// needs.
type decision struct {
	taken   lit
	sibling lit
	second  bool
}

type searcher struct {
	m *Model

	lo, hi []int64

	// lins holds the model's (deduplicated) linear rows plus, at objIdx,
	// the objective row obj ≤ incumbent-1 whose hi tightens as solutions
	// are found. linLo/linHi are each row's Σ bounds under the current
	// domains, maintained incrementally by setLo/setHi.
	lins   []linear
	objIdx int
	linLo  []int64
	linHi  []int64

	watchLin [][]watch // var → linear rows containing it
	watchImp [][]int32 // var → implications mentioning it
	degree   []int32   // var → watcher count (branching tie-break)
	objCoef  []int64   // var → objective coefficient (value ordering)

	// queue is a FIFO of pending constraint ids: [0,len(lins)) are linear
	// rows, len(lins)+i is implication i. inQueue suppresses duplicates.
	queue      []int32
	qhead      int
	inQueue    []bool
	objPending bool // objective row woken; propagated only at cheap-row fixpoint

	trail []trailEntry

	best    []int64
	bestObj int64
	hasBest bool

	rootInfeasible bool // empty constraint range found during row dedup

	// Conflict-driven learning state (Options.Learn). When a run's conflict
	// budget expires, the current branch is snapshotted; the Luby restart
	// unwinds to the root and installs the branch's reduced nld-nogoods —
	// for every refutation half on the branch, its decision prefix plus the
	// already-refuted sibling literal — as watched rows (ngWatchLo/Hi wake
	// a nogood when a ≥/≤ literal of one of its vars may have become
	// entailed). Unit propagation then steers the next run past every
	// subtree the aborted run had already refuted, and branching follows
	// conflict-bumped activities.
	learn      bool
	activity   []float64
	varInc     float64
	decStack   []decision
	branchSnap []decision // branch at the moment the restart triggered
	nogoods    [][]lit
	ngW        [][2]int32  // per nogood: the two watched literal indexes
	ngWatchLo  [][]ngWatch // var → nogoods watching a ≥-literal of it (may hold stale entries)
	ngWatchHi  [][]ngWatch
	conflicts  int64
	restartAt  int64 // conflict count that triggers the next restart
	restartRq  bool
	runIdx     int64
	rstBase    int64
	rstPenalty int64 // doubles on zero-yield restarts, resets when one learns
	learned    int64
	restarts   int64

	// CDCL state (Options.Learn without RestartOnly). Every trail entry
	// carries its reason and level; loHead/hiHead are the per-variable
	// chains of same-side tightenings that conflict analysis walks to find
	// the entry establishing an entailed literal (and the bounds that held
	// at any earlier trail position, without shadow copies). curReason and
	// level stamp entries as they are pushed; levelStart marks each
	// decision level's first trail index so backjumping is a truncation.
	cdcl       bool
	loHead     []int32 // var → newest ≥-side trail entry (-1 if none)
	hiHead     []int32 // var → newest ≤-side trail entry
	curReason  int32
	curUseLo   bool // direction stamp for entries pushed by propLinear (see trailEntry.useLo)
	level      int32
	levelStart []int32 // levelStart[l] = trail length when level l began; [0]=0

	// Conflict site: conflV ≥ 0 means a domain wipeout on that var (the
	// wiping entry is already trailed); otherwise conflC is the violated
	// constraint id. Valid only between a failed drain and analysis.
	conflV int32
	conflC int32

	// Analysis scratch, reused across conflicts: seen marks trail
	// positions in the current conflict set, litAt holds the bound value
	// each marked entry established (the literal's bound), outPos collects
	// marked positions below the conflict level.
	seen    []bool
	litAt   []int64
	outPos  []int32
	markBuf []int32
	anteBuf []anteRef

	// Learned-clause metadata: per-nogood activity (bumped when a clause
	// appears in an analysis, decayed MiniSat-style) drives database
	// reduction; ngPure marks clauses whose derivation never touched the
	// objective row (directly, through a tainted nogood reason, or through
	// a tainted root) — implied by the hard constraints alone, so valid in
	// any ImportCompatible-tighter model; importedCnt is the count of
	// Options.Import clauses occupying the low ids (never reduced, never
	// re-exported). rootTainted flips once any objective-dependent fact
	// lands at level 0, after which no new derivation can claim purity
	// (level-0 entries are treated as free facts by conflict analysis).
	ngActivity  []float64
	ngInc       float64
	ngPure      []bool
	importedCnt int
	rootTainted bool
	dbMax       int   // current watched-clause budget; grows geometrically per reduction up to maxNogoods
	unitExports []lit // pure root-unit assertions (single-literal nogoods)

	backjumps int64
	minimized int64
	imported  int64

	deadline    time.Time
	hasLimit    bool
	branches    int64
	maxBranch   int64
	props       int64
	wakes       int64
	trailOps    int64
	lastPoll    int64
	timedOut    bool
	timeExpired bool
}

// Solve runs branch-and-bound and returns the best solution found.
func (m *Model) Solve(opts Options) Result {
	start := time.Now()
	s := newSearcher(m, opts)
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
		s.hasLimit = true
	}

	complete := false
	switch {
	case s.rootInfeasible:
		complete = true
	case !s.installImports(opts.Import):
		complete = true // an imported nogood refutes the root domains outright
	case !s.propagateRoot():
		complete = !s.timedOut // root wipeout is proven unless the clock cut the fixpoint short
	case s.cdcl:
		complete = s.solveCDCL()
	default:
		for {
			if s.search() {
				complete = true
				break
			}
			if s.timedOut || !s.restartRq {
				break
			}
			// Luby restart: the recursion has already unwound to the root.
			// Install the run's learned nogoods (possibly refuting the root,
			// which proves the incumbent optimal), re-propagate the root
			// under the tightened objective bound, and search again with a
			// larger conflict budget. A restart that yields no nogoods was
			// pure overhead — the search dives without refutation halves on
			// its branch — so zero-yield restarts double an extra penalty on
			// the next budget until one pays off again; models whose shape
			// learning cannot help thus stop restarting almost immediately.
			s.restartRq = false
			s.restarts++
			s.runIdx++
			before := s.learned
			if !s.installBranchNogoods() {
				complete = !s.timedOut
				break
			}
			if s.learned == before {
				if s.rstPenalty < 1<<20 {
					s.rstPenalty *= 2
				}
			} else {
				s.rstPenalty = 1
			}
			s.restartAt = s.conflicts + s.rstBase*luby(s.runIdx+1)*s.rstPenalty
			if s.hasBest && s.objIdx >= 0 {
				s.enqueue(int32(s.objIdx))
			}
			if !s.drain() {
				complete = !s.timedOut
				break
			}
		}
	}

	res := Result{
		Branches:        s.branches,
		Propagations:    s.props,
		Wakes:           s.wakes,
		TrailOps:        s.trailOps,
		Nogoods:         s.learned,
		Restarts:        s.restarts,
		Conflicts:       s.conflicts,
		Backjumps:       s.backjumps,
		MinimizedLits:   s.minimized,
		ImportedNogoods: s.imported,
		Elapsed:         time.Since(start),
		TimedOut:        s.timeExpired,
		Learned:         s.exportNogoods(),
	}
	switch {
	case s.hasBest && (complete || !m.hasObj):
		res.Status = Optimal
		res.Values = s.best
		res.Objective = s.bestObj
	case s.hasBest:
		res.Status = Feasible
		res.Values = s.best
		res.Objective = s.bestObj
	case complete:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res
}

// newSearcher builds the watchlists, incremental row sums, and branching
// metadata for one solve.
func newSearcher(m *Model, opts Options) *searcher {
	nv := len(m.lo)
	s := &searcher{
		m:         m,
		lo:        append([]int64(nil), m.lo...),
		hi:        append([]int64(nil), m.hi...),
		objIdx:    -1,
		maxBranch: opts.MaxBranches,
		learn:     opts.Learn,
		cdcl:      opts.Learn && !opts.RestartOnly,
		curReason: reasonAssert,
		conflV:    -1,
		conflC:    -1,
	}
	s.loHead = make([]int32, nv)
	s.hiHead = make([]int32, nv)
	for v := 0; v < nv; v++ {
		s.loHead[v], s.hiHead[v] = -1, -1
	}
	if s.learn {
		s.activity = make([]float64, nv)
		s.varInc = 1
		s.rstBase = opts.RestartBase
		if s.rstBase <= 0 {
			s.rstBase = defaultRestartBase
		}
		s.restartAt = s.rstBase
		s.rstPenalty = 1
	}
	if s.cdcl {
		s.levelStart = append(s.levelStart, 0)
		s.ngInc = 1
		s.dbMax = initialDBMax
	}

	// Root reduction: rows with identical terms collapse to one row with
	// intersected bounds. OPG's window models emit many such duplicates
	// (adjacent in-flight rows over an unchanged candidate set), and every
	// duplicate would otherwise wake — and scan — on each of its vars'
	// tightenings.
	s.lins = dedupRows(m.linears, &s.rootInfeasible)
	if m.hasObj {
		s.objIdx = len(s.lins)
		s.lins = append(s.lins, linear{
			vars: m.objVars, coefs: m.objCoefs,
			lo: math.MinInt64 / 4, hi: math.MaxInt64 / 4,
		})
	}

	nl := len(s.lins)
	s.linLo = make([]int64, nl)
	s.linHi = make([]int64, nl)
	s.inQueue = make([]bool, nl+len(m.implies))
	s.degree = make([]int32, nv)
	s.objCoef = make([]int64, nv)
	for i, v := range m.objVars {
		s.objCoef[v] += m.objCoefs[i]
	}

	// Watchlists over one flat backing array each: counting pass, then
	// capacity-sliced per-var lists, so construction does O(1) allocations.
	linCnt := make([]int32, nv)
	impCnt := make([]int32, nv)
	terms := 0
	for ci := range s.lins {
		c := &s.lins[ci]
		var exprLo, exprHi int64
		for j, v := range c.vars {
			k := c.coefs[j]
			if k >= 0 {
				exprLo += k * s.lo[v]
				exprHi += k * s.hi[v]
			} else {
				exprLo += k * s.hi[v]
				exprHi += k * s.lo[v]
			}
			if k != 0 {
				linCnt[v]++
				terms++
			}
		}
		s.linLo[ci], s.linHi[ci] = exprLo, exprHi
	}
	for i := range m.implies {
		impCnt[m.implies[i].x]++
		impCnt[m.implies[i].y]++
	}
	s.watchLin = make([][]watch, nv)
	s.watchImp = make([][]int32, nv)
	linFlat := make([]watch, terms)
	impFlat := make([]int32, 2*len(m.implies))
	linOff, impOff := 0, 0
	for v := 0; v < nv; v++ {
		s.watchLin[v] = linFlat[linOff : linOff : linOff+int(linCnt[v])]
		s.watchImp[v] = impFlat[impOff : impOff : impOff+int(impCnt[v])]
		linOff += int(linCnt[v])
		impOff += int(impCnt[v])
		s.degree[v] = linCnt[v] + impCnt[v]
	}
	for ci := range s.lins {
		c := &s.lins[ci]
		for j, v := range c.vars {
			if c.coefs[j] != 0 {
				s.watchLin[v] = append(s.watchLin[v], watch{c: int32(ci), coef: c.coefs[j]})
			}
		}
	}
	for i := range m.implies {
		im := &m.implies[i]
		s.watchImp[im.x] = append(s.watchImp[im.x], int32(i))
		s.watchImp[im.y] = append(s.watchImp[im.y], int32(i))
	}
	return s
}

// dedupRows merges rows with identical (vars, coefs) terms by intersecting
// their bound ranges. An empty intersection proves root infeasibility.
func dedupRows(rows []linear, infeasible *bool) []linear {
	if len(rows) < 2 {
		return append([]linear(nil), rows...)
	}
	seen := make(map[string]int, len(rows))
	keyBuf := make([]byte, 0, 256)
	out := make([]linear, 0, len(rows))
	for _, r := range rows {
		keyBuf = keyBuf[:0]
		for j, v := range r.vars {
			keyBuf = appendInt64(keyBuf, int64(v))
			keyBuf = appendInt64(keyBuf, r.coefs[j])
		}
		k := string(keyBuf)
		if i, ok := seen[k]; ok {
			if r.lo > out[i].lo {
				out[i].lo = r.lo
			}
			if r.hi < out[i].hi {
				out[i].hi = r.hi
			}
			if out[i].lo > out[i].hi {
				*infeasible = true
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, r)
	}
	return out
}

func appendInt64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// expired reports whether a search budget ran out. The wall clock is also
// polled inside drain on a propagation stride, so a long fixpoint between
// branches cannot overshoot the limit.
func (s *searcher) expired() bool {
	if s.timedOut {
		return true
	}
	if s.maxBranch > 0 && s.branches >= s.maxBranch {
		s.timedOut = true
		return true
	}
	if s.hasLimit && s.branches%64 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
		s.timeExpired = true
		return true
	}
	return false
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// litHolds reports whether the current domains entail the literal.
func (s *searcher) litHolds(l lit) bool {
	if l.ge {
		return s.lo[l.v] >= l.bound
	}
	return s.hi[l.v] <= l.bound
}

// noteConflict bumps the decision path's activities and checks the run's
// conflict budget; when the budget expires the current branch is
// snapshotted for restart-time nogood extraction.
func (s *searcher) noteConflict() {
	s.conflicts++
	if !s.learn {
		return
	}
	for _, d := range s.decStack {
		s.activity[d.taken.v] += s.varInc
		if s.activity[d.taken.v] > 1e100 {
			for i := range s.activity {
				s.activity[i] *= 1e-100
			}
			s.varInc *= 1e-100
		}
	}
	s.varInc *= 1.052 // MiniSat-style decay of everything else
	if s.conflicts >= s.restartAt && !s.restartRq {
		s.restartRq = true
		s.branchSnap = append(s.branchSnap[:0], s.decStack...)
	}
}

// installBranchNogoods turns the aborted run's final branch into reduced
// nld-nogoods (Lecoutre et al.): a second (refutation) half δⱼ on the
// branch means its sibling's subtree under the prefix δ₁…δⱼ₋₁ was fully
// explored without an improving solution, so {δ₁,…,δⱼ₋₁, sibling(δⱼ)} is a
// nogood — at most one per branch level. It runs at the root: literals
// refuted by the root domains kill their nogood, entailed literals are
// dropped, an emptied nogood refutes the root (the incumbent is optimal —
// the caller reports completeness), and a unit nogood is enforced
// permanently. It reports false when the root is refuted.
func (s *searcher) installBranchNogoods() bool {
	for j, d := range s.branchSnap {
		if !d.second || j+1 > maxNogoodLits || len(s.nogoods) >= maxNogoods {
			continue
		}
		kept := make([]lit, 0, j+1)
		dead := false
		for i := 0; i <= j; i++ {
			l := s.branchSnap[i].taken
			if i == j {
				l = d.sibling
			}
			var never, always bool
			if l.ge {
				never, always = s.hi[l.v] < l.bound, s.lo[l.v] >= l.bound
			} else {
				never, always = s.lo[l.v] > l.bound, s.hi[l.v] <= l.bound
			}
			if never {
				dead = true
				break
			}
			if !always {
				kept = append(kept, l)
			}
		}
		if dead {
			continue
		}
		s.learned++
		switch len(kept) {
		case 0:
			return false
		case 1:
			if !s.negateLit(kept[0]) {
				return false
			}
		default:
			if s.ngWatchLo == nil {
				s.ngWatchLo = make([][]ngWatch, len(s.lo))
				s.ngWatchHi = make([][]ngWatch, len(s.lo))
			}
			id := int32(len(s.nogoods))
			s.nogoods = append(s.nogoods, kept)
			s.inQueue = append(s.inQueue, false)
			// Watch the two deepest literals (free at the root by
			// construction). The shallow prefix literals re-entail early on
			// every similar branch; watching them would wake the nogood long
			// before it could possibly propagate.
			w0, w1 := int32(len(kept)-1), int32(len(kept)-2)
			s.ngW = append(s.ngW, [2]int32{w0, w1})
			s.regNgWatch(id, kept[w0])
			s.regNgWatch(id, kept[w1])
		}
	}
	return true
}

// negateLit enforces the negation of a literal.
func (s *searcher) negateLit(l lit) bool {
	if l.ge {
		return s.setHi(int(l.v), l.bound-1)
	}
	return s.setLo(int(l.v), l.bound+1)
}

// regNgWatch registers nogood id in the watch list that fires when l may
// become entailed (setLo for ≥-literals, setHi for ≤-literals).
func (s *searcher) regNgWatch(id int32, l lit) {
	if l.ge {
		s.ngWatchLo[l.v] = append(s.ngWatchLo[l.v], ngWatch{ng: id, bound: l.bound})
	} else {
		s.ngWatchHi[l.v] = append(s.ngWatchHi[l.v], ngWatch{ng: id, bound: l.bound})
	}
}

// propNogood enforces one learned nogood ¬(l₁ ∧ … ∧ lₖ): with two free
// (non-entailed) literals it just re-points the watches at them; with a
// single free literal it asserts that literal's negation; with none the
// refuted path has been re-entered and the node fails. Backtracking never
// invalidates watches — relaxing bounds cannot entail a literal.
func (s *searcher) propNogood(k int) bool {
	s.props++
	ng := s.nogoods[k]
	f0, f1 := int32(-1), int32(-1)
	for i := len(ng) - 1; i >= 0; i-- {
		// Deepest-first: free literals cluster at the branch's deep end, so
		// the scan usually stops after a couple of probes, and relocated
		// watches stay on late-entailing literals.
		if !s.litHolds(ng[i]) {
			if f0 < 0 {
				f0 = int32(i)
			} else {
				f1 = int32(i)
				break
			}
		}
	}
	switch {
	case f0 < 0:
		s.conflV = -1
		s.conflC = int32(len(s.lins)+len(s.m.implies)) + int32(k)
		return false
	case f1 < 0:
		if s.cdcl && s.level == 0 && !s.ngPure[k] {
			// An objective-tainted clause is asserting a root fact: later
			// derivations treating the root as free lose their purity.
			s.rootTainted = true
		}
		return s.negateLit(ng[f0])
	default:
		w := s.ngW[k]
		if w[0] != f0 && w[1] != f0 {
			s.regNgWatch(int32(k), ng[f0])
		}
		if w[0] != f1 && w[1] != f1 {
			s.regNgWatch(int32(k), ng[f1])
		}
		s.ngW[k] = [2]int32{f0, f1}
		return true
	}
}

// enqueue schedules constraint id c (a lins index, or len(lins)+i for
// implication i) unless it is already pending.
func (s *searcher) enqueue(c int32) {
	if int(c) == s.objIdx {
		// The objective row is by far the widest and purely redundant for
		// feasibility: defer it until the cheap rows reach fixpoint so one
		// scan sees all their tightenings instead of interleaving with them.
		if !s.objPending {
			s.objPending = true
			s.wakes++
		}
		return
	}
	if s.inQueue[c] {
		return
	}
	s.inQueue[c] = true
	s.wakes++
	s.queue = append(s.queue, c)
}

// clearQueue discards pending work after a wipeout or timeout.
func (s *searcher) clearQueue() {
	for _, c := range s.queue[s.qhead:] {
		s.inQueue[c] = false
	}
	s.queue = s.queue[:0]
	s.qhead = 0
	s.objPending = false
}

// setLo tightens v's lower bound, trails the old bounds, refreshes the
// incremental sums of every row watching v, and wakes those watchers. It
// reports false on an emptied domain.
func (s *searcher) setLo(v int, nl int64) bool {
	ol := s.lo[v]
	if nl <= ol {
		return true
	}
	s.trail = append(s.trail, trailEntry{
		v: int32(v), ge: true, useLo: s.curUseLo, old: ol,
		prev: s.loHead[v], reason: s.curReason, level: s.level,
	})
	s.loHead[v] = int32(len(s.trail) - 1)
	s.trailOps++
	s.lo[v] = nl
	d := nl - ol
	for _, w := range s.watchLin[v] {
		if w.coef > 0 {
			s.linLo[w.c] += w.coef * d
		} else {
			s.linHi[w.c] += w.coef * d
		}
		s.enqueue(w.c)
	}
	nLin := int32(len(s.lins))
	for _, ii := range s.watchImp[v] {
		s.enqueue(nLin + ii)
	}
	if s.ngWatchLo != nil {
		s.wakeNogoods(v, true)
	}
	if nl > s.hi[v] {
		s.conflV, s.conflC = int32(v), -1
		return false
	}
	return true
}

// setHi is setLo's mirror for upper bounds.
func (s *searcher) setHi(v int, nh int64) bool {
	oh := s.hi[v]
	if nh >= oh {
		return true
	}
	s.trail = append(s.trail, trailEntry{
		v: int32(v), ge: false, useLo: s.curUseLo, old: oh,
		prev: s.hiHead[v], reason: s.curReason, level: s.level,
	})
	s.hiHead[v] = int32(len(s.trail) - 1)
	s.trailOps++
	s.hi[v] = nh
	d := nh - oh
	for _, w := range s.watchLin[v] {
		if w.coef > 0 {
			s.linHi[w.c] += w.coef * d
		} else {
			s.linLo[w.c] += w.coef * d
		}
		s.enqueue(w.c)
	}
	nLin := int32(len(s.lins))
	for _, ii := range s.watchImp[v] {
		s.enqueue(nLin + ii)
	}
	if s.ngWatchHi != nil {
		s.wakeNogoods(v, false)
	}
	if s.lo[v] > nh {
		s.conflV, s.conflC = int32(v), -1
		return false
	}
	return true
}

// ngWatch is one entry of a per-variable nogood watch list: the watching
// nogood plus the watched literal's bound, so a bound change that cannot
// have entailed the literal is filtered here without touching the nogood.
type ngWatch struct {
	ng    int32
	bound int64
}

// wakeNogoods schedules the nogoods watching a ≥-literal (ge) or ≤-literal
// of v that the bound change may have entailed. Entries whose nogood has
// since moved its watches off (v, bound) are stale — two-watch relocation
// appends to the new literal's list and leaves the old entry behind — and
// are swap-deleted here instead of waking.
func (s *searcher) wakeNogoods(v int, ge bool) {
	lists := s.ngWatchHi
	if ge {
		lists = s.ngWatchLo
	}
	list := lists[v]
	base := int32(len(s.lins) + len(s.m.implies))
	for i := 0; i < len(list); {
		e := list[i]
		if ge && s.lo[v] < e.bound || !ge && s.hi[v] > e.bound {
			i++ // the watched literal is still free: nothing to propagate
			continue
		}
		w := s.ngW[e.ng]
		lits := s.nogoods[e.ng]
		a, b := lits[w[0]], lits[w[1]]
		if (int(a.v) != v || a.ge != ge || a.bound != e.bound) &&
			(int(b.v) != v || b.ge != ge || b.bound != e.bound) {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			continue
		}
		s.enqueue(base + e.ng)
		i++
	}
	lists[v] = list
}

// undoTo pops the trail back to mark, restoring domains and replaying the
// incremental row-sum deltas in reverse. Watchers are not woken: relaxing
// a bound never enables new propagation.
func (s *searcher) undoTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := &s.trail[i]
		v := int(e.v)
		if e.ge {
			if d := e.old - s.lo[v]; d != 0 {
				for _, w := range s.watchLin[v] {
					if w.coef > 0 {
						s.linLo[w.c] += w.coef * d
					} else {
						s.linHi[w.c] += w.coef * d
					}
				}
				s.lo[v] = e.old
			}
			s.loHead[v] = e.prev
		} else {
			if d := e.old - s.hi[v]; d != 0 {
				for _, w := range s.watchLin[v] {
					if w.coef > 0 {
						s.linHi[w.c] += w.coef * d
					} else {
						s.linLo[w.c] += w.coef * d
					}
				}
				s.hi[v] = e.old
			}
			s.hiHead[v] = e.prev
		}
	}
	s.trail = s.trail[:mark]
}

// propagateRoot wakes every constraint once and drains to fixpoint.
func (s *searcher) propagateRoot() bool {
	for c := range s.inQueue {
		s.enqueue(int32(c))
	}
	return s.drain()
}

// drain runs woken propagators until the queue empties (fixpoint), a
// domain wipes out, or the wall clock expires mid-burst. On failure the
// remaining queue is discarded.
func (s *searcher) drain() bool {
	nLin := len(s.lins)
	nImp := len(s.m.implies)
	for {
		for s.qhead < len(s.queue) {
			if s.hasLimit && s.props-s.lastPoll >= propPollStride {
				s.lastPoll = s.props
				if time.Now().After(s.deadline) {
					s.timedOut = true
					s.timeExpired = true
					s.clearQueue()
					return false
				}
			}
			c := int(s.queue[s.qhead])
			s.qhead++
			s.inQueue[c] = false
			s.curReason = int32(c)
			ok := true
			switch {
			case c < nLin:
				ok = s.propLinear(c)
			case c < nLin+nImp:
				ok = s.propImply(c - nLin)
			default:
				ok = s.propNogood(c - nLin - nImp)
			}
			if !ok {
				s.clearQueue()
				return false
			}
		}
		s.queue = s.queue[:0]
		s.qhead = 0
		if !s.objPending {
			return true
		}
		s.objPending = false
		s.curReason = int32(s.objIdx)
		if !s.propLinear(s.objIdx) {
			s.clearQueue()
			return false
		}
	}
}

// propLinear tightens variable bounds against one linear row using the
// incrementally maintained expression bounds: the O(1) feasibility and
// entailment checks come first, and any tightening refreshes linLo/linHi
// through setLo/setHi instead of a full O(n) recomputation.
func (s *searcher) propLinear(ci int) bool {
	c := &s.lins[ci]
	s.props++
	hiBound := c.hi
	exprLo, exprHi := s.linLo[ci], s.linHi[ci]
	if exprLo > hiBound || exprHi < c.lo {
		s.conflV, s.conflC = -1, int32(ci)
		return false
	}
	if exprLo >= c.lo && exprHi <= hiBound {
		return true // entailed: no filtering can tighten anything
	}
	for i, v := range c.vars {
		k := c.coefs[i]
		if k == 0 || s.lo[v] == s.hi[v] {
			continue
		}
		var termLo, termHi int64
		if k > 0 {
			termLo, termHi = k*s.lo[v], k*s.hi[v]
		} else {
			termLo, termHi = k*s.hi[v], k*s.lo[v]
		}
		// k·v ≤ c.hi − restLo  and  k·v ≥ c.lo − restHi. A division is only
		// worth paying when the term bound actually exceeds its budget:
		// termHi ≤ ubTerm (resp. termLo ≥ lbTerm) already proves v cannot
		// be tightened by this row.
		ubTerm := c.hi - (exprLo - termLo)
		lbTerm := c.lo - (exprHi - termHi)
		tightened := false
		if termHi > ubTerm {
			// k·v ≤ ubTerm bites: caps v from above for k > 0, below for k < 0.
			s.curUseLo = false // derived from c.hi against the rest's lower bounds
			ok := false
			if k > 0 {
				ok = s.setHi(int(v), floorDiv(ubTerm, k))
			} else {
				ok = s.setLo(int(v), ceilDiv(ubTerm, k))
			}
			if !ok {
				return false
			}
			tightened = true
		}
		if termLo < lbTerm {
			// k·v ≥ lbTerm bites: caps v from below for k > 0, above for k < 0.
			s.curUseLo = true // derived from c.lo against the rest's upper bounds
			ok := false
			if k > 0 {
				ok = s.setLo(int(v), ceilDiv(lbTerm, k))
			} else {
				ok = s.setHi(int(v), floorDiv(lbTerm, k))
			}
			if !ok {
				return false
			}
			tightened = true
		}
		if tightened {
			exprLo, exprHi = s.linLo[ci], s.linHi[ci]
			if exprLo > c.hi || exprHi < c.lo {
				s.conflV, s.conflC = -1, int32(ci)
				return false
			}
		}
	}
	return true
}

// propImply enforces (x ≥ c) ⇒ (y ≤ d) and its contrapositive.
func (s *searcher) propImply(ii int) bool {
	im := &s.m.implies[ii]
	s.props++
	if s.lo[im.x] >= im.c && s.hi[im.y] > im.d {
		if !s.setHi(int(im.y), im.d) {
			return false
		}
	}
	if s.lo[im.y] > im.d && s.hi[im.x] >= im.c {
		if !s.setHi(int(im.x), im.c-1) {
			return false
		}
	}
	return true
}

// prunedByBound reports whether the current node cannot improve on the
// incumbent: an O(1) check against the objective row's incremental lower
// bound (or, without an objective, any incumbent at all — the first
// solution of a satisfaction problem ends the search).
func (s *searcher) prunedByBound() bool {
	if !s.hasBest {
		return false
	}
	if s.objIdx < 0 {
		return true
	}
	return s.linLo[s.objIdx] > s.lins[s.objIdx].hi
}

// search explores the subtree under the current (already propagated)
// domains, branching on the most-constrained variable — smallest domain,
// ties broken toward the most-watched; with learning on, conflict-bumped
// activity dominates both — and trying the objective-preferred half first.
// It returns true if the subtree was explored exhaustively.
func (s *searcher) search() bool {
	if s.expired() || s.restartRq {
		return false
	}
	if s.prunedByBound() {
		// Not a learning conflict: bound-dominated nodes are legion and
		// cheap, and counting them would flood the restart budget; the nld
		// extraction still captures any refutation that included them.
		return true // no improving solution below this node: proven
	}
	branch := -1
	var bestSpan int64 = math.MaxInt64
	var bestDeg int32 = -1
	bestAct := math.Inf(-1)
	for v := range s.lo {
		span := s.hi[v] - s.lo[v]
		if span <= 0 {
			continue
		}
		if s.learn {
			// Most-constrained first, conflict activity as the tie-break
			// above watcher degree: the small-domain dive is what makes
			// branch budgets productive on wide windows (activity-first
			// branching triples propagation per node there), while activity
			// still steers equals toward the contended columns restarts
			// learned about. Before any conflict this reproduces the
			// non-learning heuristic exactly.
			switch {
			case span < bestSpan:
			case span > bestSpan:
				continue
			case s.activity[v] < bestAct:
				continue
			case s.activity[v] == bestAct && s.degree[v] <= bestDeg:
				continue
			}
			bestAct = s.activity[v]
			bestSpan = span
			bestDeg = s.degree[v]
			branch = v
		} else if span < bestSpan || (span == bestSpan && s.degree[v] > bestDeg) {
			bestSpan = span
			bestDeg = s.degree[v]
			branch = v
		}
	}
	if branch < 0 {
		// All fixed: feasible leaf (propagation already validated bounds).
		s.record()
		return true
	}

	s.branches++
	lo, hi := s.lo[branch], s.hi[branch]
	// Value ordering: commit the objective-preferred endpoint first (the
	// greedy dive), leaving the rest of the domain for the refutation
	// branch. Minimization prefers small values under a non-negative
	// coefficient and large ones under a negative coefficient. Each half is
	// a single bound literal — the decision recorded on the path.
	var halves [2][2]int64
	var decs [2]lit
	if s.objCoef[branch] < 0 {
		halves = [2][2]int64{{hi, hi}, {lo, hi - 1}}
		decs = [2]lit{{v: int32(branch), ge: true, bound: hi}, {v: int32(branch), bound: hi - 1}}
	} else {
		halves = [2][2]int64{{lo, lo}, {lo + 1, hi}}
		decs = [2]lit{{v: int32(branch), bound: lo}, {v: int32(branch), ge: true, bound: lo + 1}}
	}
	order := [2]int{0, 1}
	complete := true
	for _, oi := range order {
		mark := len(s.trail)
		s.decStack = append(s.decStack, decision{taken: decs[oi], sibling: decs[1-oi], second: oi == 1})
		ok := s.setLo(branch, halves[oi][0]) && s.setHi(branch, halves[oi][1])
		if ok {
			ok = s.drain()
		} else {
			s.clearQueue()
		}
		if ok {
			if !s.search() {
				complete = false
			}
		} else if s.timedOut {
			complete = false
		} else {
			s.noteConflict()
		}
		s.decStack = s.decStack[:len(s.decStack)-1]
		s.undoTo(mark)
		if s.expired() || s.restartRq {
			return false
		}
	}
	return complete
}

// record stores the current (fully fixed) assignment, tightening the
// objective row's bound so the rest of the search only accepts strict
// improvements.
func (s *searcher) record() {
	var obj int64
	for i, v := range s.m.objVars {
		obj += s.m.objCoefs[i] * s.lo[v]
	}
	if !s.hasBest || obj < s.bestObj {
		s.best = append(s.best[:0], s.lo...)
		s.bestObj = obj
		s.hasBest = true
		if s.objIdx >= 0 {
			s.lins[s.objIdx].hi = obj - 1
			s.enqueue(int32(s.objIdx))
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
