package cpsat

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Differential harness: the event-driven watchlist engine and the naive
// fixpoint reference (reference_test.go) must agree on every randomized
// model — identical status, identical optimal objective, and any returned
// assignment must satisfy every constraint of the model. Budgets are
// branch-free and generous so both searches run to completion; the two
// engines may return different optimal assignments, so Values are checked
// for feasibility, not equality.

// randomModel draws a small model: interval domains, a few two-sided
// linears (some deliberately unsatisfiable), implications, and usually an
// objective. Returning the raw constraint lists lets the harness check
// solutions independently of either solver.
func randomModel(rng *rand.Rand) (*Model, []linear, []implication) {
	m := NewModel()
	nv := 2 + rng.Intn(6)
	vars := make([]Var, nv)
	for i := range vars {
		lo := int64(rng.Intn(15) - 7)
		hi := lo + int64(rng.Intn(10))
		vars[i] = m.NewIntVar(lo, hi, fmt.Sprintf("v%d", i))
	}

	var lins []linear
	nc := 1 + rng.Intn(4)
	for c := 0; c < nc; c++ {
		// Sparse rows with mixed-sign, occasionally zero coefficients.
		coefs := make([]int64, nv)
		for i := range coefs {
			coefs[i] = int64(rng.Intn(7) - 3)
		}
		mid := int64(rng.Intn(21) - 10)
		lo, hi := mid-int64(rng.Intn(8)), mid+int64(rng.Intn(8))
		switch rng.Intn(4) {
		case 0:
			m.AddLinearEQ(vars, coefs, mid)
			lins = append(lins, linear{vars: vars, coefs: coefs, lo: mid, hi: mid})
		case 1:
			m.AddLinearLE(vars, coefs, hi)
			lins = append(lins, linear{vars: vars, coefs: coefs, lo: -1 << 40, hi: hi})
		default:
			m.AddLinearRange(vars, coefs, lo, hi)
			lins = append(lins, linear{vars: vars, coefs: coefs, lo: lo, hi: hi})
		}
	}

	var imps []implication
	for c := rng.Intn(3); c > 0; c-- {
		x, y := vars[rng.Intn(nv)], vars[rng.Intn(nv)]
		if x == y {
			continue
		}
		thr := int64(rng.Intn(10) - 4)
		lim := int64(rng.Intn(10) - 4)
		m.AddImplication(x, thr, y, lim)
		imps = append(imps, implication{x: x, c: thr, y: y, d: lim})
	}

	if rng.Intn(5) > 0 {
		coefs := make([]int64, nv)
		for i := range coefs {
			coefs[i] = int64(rng.Intn(9) - 4)
		}
		m.Minimize(vars, coefs)
	}
	return m, lins, imps
}

// checkSolution verifies an assignment against the raw constraint lists.
func checkSolution(t *testing.T, tag string, seed int64, vals []int64, lins []linear, imps []implication) {
	t.Helper()
	for i, l := range lins {
		var sum int64
		for j, v := range l.vars {
			sum += l.coefs[j] * vals[v]
		}
		if sum < l.lo || sum > l.hi {
			t.Errorf("seed %d: %s violates linear %d: %d not in [%d,%d]", seed, tag, i, sum, l.lo, l.hi)
		}
	}
	for i, im := range imps {
		if vals[im.x] >= im.c && vals[im.y] > im.d {
			t.Errorf("seed %d: %s violates implication %d", seed, tag, i)
		}
	}
}

func TestDifferentialAgainstReference(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 200
	}
	// Every engine configuration must agree with the naive fixpoint
	// reference: the plain event-driven search, the full CDCL engine
	// (1-UIP analysis, backjumping, immediate clause install), and the
	// legacy restart-scoped learner — all with an aggressively small Luby
	// unit so restarts, installs, and learned-row propagation all fire on
	// models this size.
	engines := []struct {
		tag  string
		opts Options
	}{
		{"plain", Options{}},
		{"cdcl", Options{Learn: true, RestartBase: 4}},
		{"restart", Options{Learn: true, RestartOnly: true, RestartBase: 4}},
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, lins, imps := randomModel(rng)
		want := refSolve(m, Options{})

		for _, eng := range engines {
			got := m.Solve(eng.opts)
			if got.Status != want.Status {
				t.Fatalf("seed %d: %s status %v vs %v (reference)", seed, eng.tag, got.Status, want.Status)
			}
			if got.Status == Optimal && m.hasObj && got.Objective != want.Objective {
				t.Fatalf("seed %d: %s objective %d vs %d (reference)",
					seed, eng.tag, got.Objective, want.Objective)
			}
			if got.Values != nil {
				checkSolution(t, eng.tag+" solution", seed, got.Values, lins, imps)
			}
		}
		if want.Values != nil {
			checkSolution(t, "reference solution", seed, want.Values, lins, imps)
		}
	}
}

// TestDifferentialOPGShapedModels repeats the comparison on the window
// shapes tryCP emits: completeness equalities, per-layer capacities,
// cumulative in-flight rows, and loading-distance implications.
func TestDifferentialOPGShapedModels(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		nw := 2 + rng.Intn(3)
		nl := 2 + rng.Intn(3)
		m := NewModel()
		caps := make([]int64, nl)
		var capSum int64
		for l := range caps {
			caps[l] = int64(1 + rng.Intn(5))
			capSum += caps[l]
		}
		layerVars := make([][]Var, nl)
		var objVars []Var
		var objCoefs []int64
		for w := 0; w < nw; w++ {
			chunks := int64(1 + rng.Intn(5))
			if chunks > capSum {
				chunks = capSum
			}
			row := make([]Var, nl)
			ones := make([]int64, nl)
			z := m.NewIntVar(0, int64(nl), "z")
			for l := 0; l < nl; l++ {
				hi := chunks
				if caps[l] < hi {
					hi = caps[l]
				}
				row[l] = m.NewIntVar(0, hi, "x")
				ones[l] = 1
				layerVars[l] = append(layerVars[l], row[l])
				m.AddImplication(row[l], 1, z, int64(l))
				objVars = append(objVars, row[l])
				objCoefs = append(objCoefs, int64(l))
			}
			m.AddLinearEQ(row, ones, chunks)
			objVars = append(objVars, z)
			objCoefs = append(objCoefs, -8)
		}
		for l, vars := range layerVars {
			ones := make([]int64, len(vars))
			for i := range ones {
				ones[i] = 1
			}
			m.AddLinearLE(vars, ones, caps[l])
		}
		m.Minimize(objVars, objCoefs)

		want := refSolve(m, Options{})
		for _, opts := range []Options{
			{},
			{Learn: true, RestartBase: 4},
			{Learn: true, RestartOnly: true, RestartBase: 4},
		} {
			got := m.Solve(opts)
			if got.Status != want.Status {
				t.Fatalf("seed %d (learn=%t restartOnly=%t): status %v vs reference %v",
					seed, opts.Learn, opts.RestartOnly, got.Status, want.Status)
			}
			if got.Status == Optimal && got.Objective != want.Objective {
				t.Fatalf("seed %d (learn=%t restartOnly=%t): objective %d vs reference %d",
					seed, opts.Learn, opts.RestartOnly, got.Objective, want.Objective)
			}
		}
	}
}

// TestWallClockPolledDuringPropagation pins the satellite fix: a single
// adversarial propagation burst (two linear rows walking two huge domains
// toward an infeasibility one unit per wake) must notice the deadline
// mid-fixpoint instead of only at the next branch.
func TestWallClockPolledDuringPropagation(t *testing.T) {
	m := NewModel()
	const huge = 200_000_000
	x := m.NewIntVar(0, huge, "x")
	y := m.NewIntVar(0, huge, "y")
	// x = y and 2x = 2y+2 (coefficients differ so root row-dedup cannot
	// collapse them): bounds-consistency converges only after ~hugely many
	// one-unit tightenings, all inside the root fixpoint.
	m.AddLinearEQ([]Var{x, y}, []int64{1, -1}, 0)
	m.AddLinearEQ([]Var{x, y}, []int64{2, -2}, 2)

	done := make(chan Result, 1)
	go func() { done <- m.Solve(Options{TimeLimit: 30 * time.Millisecond}) }()
	select {
	case r := <-done:
		// Infeasibility was not proven within the budget; the result must
		// say so rather than claim completeness.
		if r.Status == Optimal || r.Status == Feasible {
			t.Fatalf("infeasible model reported %v", r.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver ignored the time limit during a propagation burst")
	}
}
