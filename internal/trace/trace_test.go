package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/units"
)

func TestGenerateDeterministic(t *testing.T) {
	dev := device.OnePlus12()
	a := Generate(dev, GenOptions{Seed: 7, Events: 80})
	b := Generate(dev, GenOptions{Seed: 7, Events: 80})
	var ab, bb bytes.Buffer
	if err := a.Encode(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same seed produced different traces")
	}
	c := Generate(dev, GenOptions{Seed: 8, Events: 80})
	var cb bytes.Buffer
	if err := c.Encode(&cb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab.Bytes(), cb.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateValidatesAndCovers(t *testing.T) {
	tr := Generate(device.OnePlus12(), GenOptions{Seed: 3, Events: 200})
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Events) < 200 {
		t.Fatalf("generated %d events, want >= 200", len(tr.Events))
	}
	kinds := map[Kind]int{}
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	for _, k := range []Kind{KindModelLoad, KindRequest, KindMemoryBudget, KindThrottle} {
		if kinds[k] == 0 {
			t.Errorf("200-event trace has no %s events", k)
		}
	}
	if tr.Events[0].Kind != KindModelLoad {
		t.Errorf("trace starts with %s, want a model load", tr.Events[0].Kind)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := Generate(device.Pixel8(), GenOptions{Seed: 11, Events: 40})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Device != tr.Device || got.Fingerprint != tr.Fingerprint || len(got.Events) != len(tr.Events) {
		t.Fatal("round trip lost trace identity")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	base := func() *Trace {
		return &Trace{
			Version: FormatVersion, Device: "OnePlus 12",
			Events: []Event{
				{At: 0, Kind: KindModelLoad, Model: "ViT"},
				{At: 50, Kind: KindRequest, Model: "ViT"},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"version", func(t *Trace) { t.Version = 99 }},
		{"no device", func(t *Trace) { t.Device = "" }},
		{"unknown kind", func(t *Trace) { t.Events[1].Kind = "meteor_strike" }},
		{"time regress", func(t *Trace) { t.Events[1].At = -1 }},
		{"missing model", func(t *Trace) { t.Events[0].Model = "" }},
		{"bad budget", func(t *Trace) { t.Events[1] = Event{At: 50, Kind: KindMemoryBudget} }},
		{"bad level", func(t *Trace) { t.Events[1] = Event{At: 50, Kind: KindThrottle, Level: -2} }},
	}
	for _, tc := range cases {
		tr := base()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", tc.name)
		}
	}
}

func TestCheckDeviceNamesBothFingerprints(t *testing.T) {
	tr := Generate(device.OnePlus12(), GenOptions{Seed: 1, Events: 10})
	if err := tr.CheckDevice(device.OnePlus12()); err != nil {
		t.Fatalf("matching device rejected: %v", err)
	}
	err := tr.CheckDevice(device.Pixel8())
	if err == nil {
		t.Fatal("mismatched device accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, device.OnePlus12().Fingerprint()) || !strings.Contains(msg, device.Pixel8().Fingerprint()) {
		t.Fatalf("mismatch error must name both fingerprints: %v", msg)
	}
	// A profile drift under the same name must also be rejected.
	drifted := device.OnePlus12()
	drifted.DiskBW = units.GBps(1.2)
	if err := tr.CheckDevice(drifted); err == nil {
		t.Fatal("drifted profile with the same name accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/t.json"
	tr := Generate(device.OnePlus11(), GenOptions{Seed: 5, Events: 20})
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != device.OnePlus11().Fingerprint() {
		t.Fatal("file round trip lost fingerprint")
	}
}
