// Package trace defines device-condition event streams for dynamic
// scenarios: the phone FlashMem targets is not the static device every
// offline solve assumes. Models arrive and depart mid-flight, the memory
// budget steps down under pressure, and thermal throttling reshapes the
// kernel cost model. A Trace is a deterministic, replayable sequence of
// such events plus request arrivals, bound to one device profile by a
// fingerprint; internal/replan replays traces against the resilience
// engine, and flashbench -trace replays them end to end.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/device"
	"repro/internal/units"
)

// Kind labels one device-condition event.
type Kind string

// Event kinds. Request is not a device condition but an arrival: traces
// are traffic-shaped workloads, so the demand rides in the same stream as
// the churn that disturbs it.
const (
	KindModelLoad    Kind = "model_load"    // bring a model into service
	KindModelUnload  Kind = "model_unload"  // retire a model
	KindMemoryBudget Kind = "memory_budget" // step the in-flight budget (M_peak)
	KindThrottle     Kind = "throttle"      // thermal level change (internal/power)
	KindRequest      Kind = "request"       // inference request arrival
)

// knownKinds is the validation set.
var knownKinds = map[Kind]bool{
	KindModelLoad: true, KindModelUnload: true, KindMemoryBudget: true,
	KindThrottle: true, KindRequest: true,
}

// Event is one timestamped occurrence. Which optional fields are
// meaningful depends on Kind: Model for load/unload/request, Priority for
// load (shedding order: lower sheds first), Budget for memory_budget,
// Level for throttle.
type Event struct {
	At       units.Duration `json:"at_ms"`
	Kind     Kind           `json:"kind"`
	Model    string         `json:"model,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Budget   units.Bytes    `json:"budget_bytes,omitempty"`
	Level    int            `json:"level,omitempty"`
}

// Trace is a complete replayable scenario for one device.
type Trace struct {
	Version     int     `json:"version"`
	Device      string  `json:"device"`
	Fingerprint string  `json:"device_fingerprint"`
	Seed        uint64  `json:"seed,omitempty"`
	Events      []Event `json:"events"`
}

// FormatVersion is the trace file format version this package reads and
// writes.
const FormatVersion = 1

// Validate checks structural sanity: known kinds, non-negative
// monotonically non-decreasing timestamps, model names where the kind
// requires one, positive budgets, and non-negative throttle levels.
func (t *Trace) Validate() error {
	if t.Version != FormatVersion {
		return fmt.Errorf("trace: format version %d, want %d", t.Version, FormatVersion)
	}
	if t.Device == "" {
		return fmt.Errorf("trace: missing device name")
	}
	prev := units.Duration(0)
	for i, e := range t.Events {
		if !knownKinds[e.Kind] {
			return fmt.Errorf("trace: event %d has unknown kind %q", i, e.Kind)
		}
		if e.At < prev {
			return fmt.Errorf("trace: event %d at %v precedes event %d at %v", i, e.At, i-1, prev)
		}
		prev = e.At
		switch e.Kind {
		case KindModelLoad, KindModelUnload, KindRequest:
			if e.Model == "" {
				return fmt.Errorf("trace: event %d (%s) missing model", i, e.Kind)
			}
		case KindMemoryBudget:
			if e.Budget <= 0 {
				return fmt.Errorf("trace: event %d has non-positive budget %d", i, e.Budget)
			}
		case KindThrottle:
			if e.Level < 0 {
				return fmt.Errorf("trace: event %d has negative throttle level %d", i, e.Level)
			}
		}
	}
	return nil
}

// CheckDevice verifies the trace was generated for exactly the given
// device profile, not merely one sharing its name: budget levels and
// throttle responses are calibrated against the full profile, so replaying
// on a drifted profile would silently measure a different scenario. The
// error names both fingerprints, mirroring the sweep snapshot-conflict
// style.
func (t *Trace) CheckDevice(dev device.Device) error {
	if fp := dev.Fingerprint(); t.Fingerprint != fp {
		return fmt.Errorf(
			"trace: device fingerprint mismatch: trace was generated for %q (%s), replay device is %q (%s) — regenerate the trace or select the matching device",
			t.Device, t.Fingerprint, dev.Name, fp)
	}
	return nil
}

// Encode writes the trace as indented JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads and validates a trace.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteFile writes the trace to a file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Encode(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile reads and validates a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	return t, nil
}

// GenOptions shapes a generated trace. The zero value is usable.
type GenOptions struct {
	Seed   uint64 // deterministic stream seed (0 is a valid, fixed seed)
	Events int    // events to generate (<= 0: 100)

	// Models is the load pool, by abbreviation (default ViT, ResNet,
	// GPTN-S — small executable models so replays stay fast).
	Models []string
	// MaxLoaded bounds concurrently loaded models (<= 0: 2).
	MaxLoaded int
	// Budgets are the in-flight budget levels memory events walk between
	// (default 500/400/300/200 MB, the paper's M_peak neighborhood).
	Budgets []units.Bytes
	// MaxThrottle is the deepest generated thermal level (<= 0: 2).
	MaxThrottle int
}

func (o GenOptions) norm() GenOptions {
	if o.Events <= 0 {
		o.Events = 100
	}
	if len(o.Models) == 0 {
		o.Models = []string{"ViT", "ResNet", "GPTN-S"}
	}
	if o.MaxLoaded <= 0 {
		o.MaxLoaded = 2
	}
	if len(o.Budgets) == 0 {
		o.Budgets = []units.Bytes{500 * units.MB, 400 * units.MB, 300 * units.MB, 200 * units.MB}
	}
	if o.MaxThrottle <= 0 {
		o.MaxThrottle = 2
	}
	return o
}

// mix is the splitmix64 finalizer — the repo's standard deterministic
// stream hash (backoff jitter, chaos schedules).
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// gen is the deterministic draw stream.
type gen struct {
	seed uint64
	n    uint64
}

func (g *gen) next() uint64 {
	g.n++
	return mix(g.seed*0x9e3779b97f4a7c15 + g.n)
}

// intn draws uniformly from [0, n).
func (g *gen) intn(n int) int { return int(g.next() % uint64(n)) }

// Generate produces a seeded scenario for the device: a first model load,
// then a mix of requests (the majority), churn events (load/unload), budget
// steps, and throttle walks, at 20–250 ms gaps. The same options always
// produce the same trace.
func Generate(dev device.Device, opts GenOptions) *Trace {
	o := opts.norm()
	g := &gen{seed: o.Seed ^ 0x7261636574726163} // "tracetrac" salt

	t := &Trace{
		Version:     FormatVersion,
		Device:      dev.Name,
		Fingerprint: dev.Fingerprint(),
		Seed:        o.Seed,
	}

	loaded := map[string]bool{}
	level := 0
	budgetIdx := 0
	at := units.Duration(0)
	add := func(e Event) {
		e.At = at
		t.Events = append(t.Events, e)
	}
	loadOne := func() {
		var pool []string
		for _, m := range o.Models {
			if !loaded[m] {
				pool = append(pool, m)
			}
		}
		if len(pool) == 0 {
			return
		}
		m := pool[g.intn(len(pool))]
		loaded[m] = true
		add(Event{Kind: KindModelLoad, Model: m, Priority: 1 + g.intn(3)})
	}
	loadedList := func() []string {
		out := make([]string, 0, len(loaded))
		for m := range loaded {
			out = append(out, m)
		}
		sort.Strings(out)
		return out
	}

	loadOne() // a scenario starts with something to serve
	for len(t.Events) < o.Events {
		at += units.Duration(20 + g.intn(231)) // 20–250 ms between events
		switch draw := g.intn(100); {
		case draw < 55: // requests dominate: traces are traffic-shaped
			ms := loadedList()
			if len(ms) == 0 {
				loadOne()
				continue
			}
			add(Event{Kind: KindRequest, Model: ms[g.intn(len(ms))]})
		case draw < 65:
			if len(loaded) < o.MaxLoaded {
				loadOne()
			} else {
				ms := loadedList()
				m := ms[g.intn(len(ms))]
				delete(loaded, m)
				add(Event{Kind: KindModelUnload, Model: m})
			}
		case draw < 73:
			ms := loadedList()
			if len(ms) > 1 {
				m := ms[g.intn(len(ms))]
				delete(loaded, m)
				add(Event{Kind: KindModelUnload, Model: m})
			} else {
				loadOne()
			}
		case draw < 88: // budget walk: mostly down, sometimes recovering
			if g.intn(3) == 0 && budgetIdx > 0 {
				budgetIdx--
			} else if budgetIdx < len(o.Budgets)-1 {
				budgetIdx++
			}
			add(Event{Kind: KindMemoryBudget, Budget: o.Budgets[budgetIdx]})
		default: // thermal walk: ±1 within [0, MaxThrottle]
			if g.intn(2) == 0 && level > 0 {
				level--
			} else if level < o.MaxThrottle {
				level++
			}
			add(Event{Kind: KindThrottle, Level: level})
		}
	}
	return t
}
