// Package opclass classifies operators by their tolerance to concurrent
// data loading, following Table 5 and §4.2 of the paper.
//
// Three classes drive the load-capacity model:
//
//   - Elemental operators (ReLU, Add, ...) stream linearly with minimal
//     internal dependencies: low compute intensity, medium load capacity.
//     Threshold: 300% extra data relative to the kernel's own input.
//   - Reusable operators (Conv, MatMul, Attention) have structured reuse and
//     tiled loops: high capacity and the slowest relative latency growth.
//     Threshold: 20%.
//   - Hierarchical operators (Softmax, LayerNorm, ...) synchronize stepwise
//     and leave no bandwidth for concurrent movement. Threshold: 0% — the
//     planner never schedules loads into them.
package opclass

import "repro/internal/graph"

// Class is an operator load-capacity class.
type Class int

// The three classes of Table 5.
const (
	Elemental Class = iota
	Reusable
	Hierarchical
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Elemental:
		return "Elemental"
	case Reusable:
		return "Reusable"
	case Hierarchical:
		return "Hierarchical"
	default:
		return "Class(?)"
	}
}

// Threshold returns the maximum tolerated relative latency increase when
// overlapping data loading with this class (§4.2): the extra-load volume a
// kernel may carry is capped where predicted slowdown crosses this fraction
// of the baseline kernel latency.
func (c Class) Threshold() float64 {
	switch c {
	case Elemental:
		return 3.00 // 300%
	case Reusable:
		return 0.20 // 20%
	case Hierarchical:
		return 0 // never overlap
	default:
		return 0
	}
}

// Classify maps an operator kind to its class. Layout ops (Reshape,
// Transpose, Concat) behave like elemental streams; normalizations and
// Softmax are hierarchical; matrix/convolution engines are reusable.
func Classify(k graph.OpKind) Class {
	switch k {
	case graph.MatMul, graph.Conv, graph.DepthwiseConv, graph.Attention, graph.Embedding:
		return Reusable
	case graph.Softmax, graph.LayerNorm, graph.GroupNorm, graph.BatchNorm:
		return Hierarchical
	default:
		return Elemental
	}
}

// ClassifyNode classifies a (possibly fused) node. Fusing a hierarchical
// part anywhere into a kernel inherits the hierarchical synchronization
// barrier, so the most restrictive class among parts wins; otherwise the
// dominant part's class is used.
func ClassifyNode(n *graph.Node) Class {
	c := Classify(n.Kind())
	for _, p := range n.Parts {
		if Classify(p.Kind) == Hierarchical {
			return Hierarchical
		}
	}
	return c
}
