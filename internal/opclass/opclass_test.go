package opclass

import (
	"testing"

	"repro/internal/graph"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		kind graph.OpKind
		want Class
	}{
		{graph.MatMul, Reusable},
		{graph.Conv, Reusable},
		{graph.Attention, Reusable},
		{graph.Softmax, Hierarchical},
		{graph.LayerNorm, Hierarchical},
		{graph.GroupNorm, Hierarchical},
		{graph.ReLU, Elemental},
		{graph.Add, Elemental},
		{graph.GeLU, Elemental},
		{graph.Reshape, Elemental},
		{graph.Transpose, Elemental},
	}
	for _, c := range cases {
		if got := Classify(c.kind); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestThresholdsMatchPaper(t *testing.T) {
	// §4.2: 0% hierarchical, 20% reusable, 300% elemental.
	if Hierarchical.Threshold() != 0 {
		t.Error("hierarchical threshold must be 0")
	}
	if Reusable.Threshold() != 0.20 {
		t.Error("reusable threshold must be 0.20")
	}
	if Elemental.Threshold() != 3.0 {
		t.Error("elemental threshold must be 3.0")
	}
}

func TestClassifyNodeFusedHierarchicalWins(t *testing.T) {
	// MatMul+Add+LayerNorm fused: the LayerNorm barrier dominates.
	n := &graph.Node{Parts: []graph.Part{
		{Kind: graph.MatMul, MACs: 1000},
		{Kind: graph.Add},
		{Kind: graph.LayerNorm},
	}}
	if got := ClassifyNode(n); got != Hierarchical {
		t.Errorf("fused node with LayerNorm = %v, want Hierarchical", got)
	}
}

func TestClassifyNodeDominant(t *testing.T) {
	// MatMul+GeLU: dominant part is the MatMul.
	n := &graph.Node{Parts: []graph.Part{
		{Kind: graph.MatMul, MACs: 1000},
		{Kind: graph.GeLU, MACs: 1},
	}}
	if got := ClassifyNode(n); got != Reusable {
		t.Errorf("MatMul+GeLU = %v, want Reusable", got)
	}
	// Pure elemental node stays elemental.
	e := &graph.Node{Parts: []graph.Part{{Kind: graph.Add, MACs: 5}}}
	if got := ClassifyNode(e); got != Elemental {
		t.Errorf("Add node = %v, want Elemental", got)
	}
}

func TestClassString(t *testing.T) {
	if Elemental.String() != "Elemental" || Reusable.String() != "Reusable" ||
		Hierarchical.String() != "Hierarchical" {
		t.Error("class names wrong")
	}
}
