package multimodel

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/units"
)

func toy(name string, blocks int) *graph.Graph {
	g := graph.New(name, tensor.FP16)
	for i := 0; i < blocks; i++ {
		g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: 8 * units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 4e9})
		g.Op("gelu", graph.Part{Kind: graph.GeLU, InBytes: units.MB, OutBytes: units.MB, MACs: 1e6})
	}
	return g
}

func fastEngine() *core.Engine {
	o := core.DefaultOptions(device.OnePlus12())
	o.Config.SolveTimeout = 40 * time.Millisecond
	o.Config.MaxBranches = 2000
	o.Fusion.Rounds = 1
	return core.NewEngine(o)
}

func flashRunners(t *testing.T, e *core.Engine, names ...string) []Runner {
	t.Helper()
	var rs []Runner
	for i, n := range names {
		prep, err := e.Prepare(toy(n, 6+2*i))
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, &FlashMemRunner{Engine: e, Prep: prep})
	}
	return rs
}

func TestFIFOSequential(t *testing.T) {
	e := fastEngine()
	rs := flashRunners(t, e, "a", "b")
	m := gpusim.New(device.OnePlus12())
	tr, err := RunFIFO(m, rs, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(tr.Events))
	}
	// Strict FIFO: each event starts when the previous one ends.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Start != tr.Events[i-1].End {
			t.Errorf("event %d starts at %v, previous ends %v", i, tr.Events[i].Start, tr.Events[i-1].End)
		}
	}
	if tr.Total != tr.Events[2].End {
		t.Error("total must equal last event end")
	}
	if tr.Peak <= 0 || tr.Average <= 0 {
		t.Error("memory stats empty")
	}
}

func TestMemoryReturnsToZeroBetweenModels(t *testing.T) {
	e := fastEngine()
	rs := flashRunners(t, e, "a", "b")
	m := gpusim.New(device.OnePlus12())
	tr, err := RunFIFO(m, rs, RoundRobin(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if last := tr.Memory[len(tr.Memory)-1].Value; last != 0 {
		t.Errorf("memory does not drain after FIFO run: %v", last)
	}
}

func TestFlashMemFIFOBeatsMNN(t *testing.T) {
	e := fastEngine()
	ga, gb := toy("a", 6), toy("b", 8)
	prepA, err := e.Prepare(ga)
	if err != nil {
		t.Fatal(err)
	}
	prepB, err := e.Prepare(gb)
	if err != nil {
		t.Fatal(err)
	}
	order := RoundRobin(2, 5)

	fmM := gpusim.New(device.OnePlus12())
	fmTrace, err := RunFIFO(fmM, []Runner{
		&FlashMemRunner{Engine: e, Prep: prepA},
		&FlashMemRunner{Engine: e, Prep: prepB},
	}, order)
	if err != nil {
		t.Fatal(err)
	}

	mnn := baselines.MNN()
	mnnM := gpusim.New(device.OnePlus12())
	mnnTrace, err := RunFIFO(mnnM, []Runner{
		&BaselineRunner{Framework: mnn, Graph: ga},
		&BaselineRunner{Framework: mnn, Graph: gb},
	}, order)
	if err != nil {
		t.Fatal(err)
	}

	if fmTrace.Total >= mnnTrace.Total {
		t.Errorf("FlashMem FIFO %v not faster than MNN %v", fmTrace.Total, mnnTrace.Total)
	}
	if fmTrace.Peak >= mnnTrace.Peak {
		t.Errorf("FlashMem FIFO peak %v not below MNN %v", fmTrace.Peak, mnnTrace.Peak)
	}
}

func TestOrderValidation(t *testing.T) {
	e := fastEngine()
	rs := flashRunners(t, e, "a")
	if _, err := RunFIFO(gpusim.New(device.OnePlus12()), rs, []int{0, 1}); err == nil {
		t.Fatal("out-of-range order index must error")
	}
}

func TestOrders(t *testing.T) {
	rr := RoundRobin(3, 2)
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if rr[i] != want[i] {
			t.Fatalf("RoundRobin = %v", rr)
		}
	}
	sh := Shuffled(3, 4, 42)
	if len(sh) != 12 {
		t.Fatalf("Shuffled len = %d", len(sh))
	}
	counts := map[int]int{}
	for _, v := range sh {
		counts[v]++
	}
	for r := 0; r < 3; r++ {
		if counts[r] != 4 {
			t.Errorf("runner %d appears %d times, want 4", r, counts[r])
		}
	}
	sh2 := Shuffled(3, 4, 42)
	for i := range sh {
		if sh[i] != sh2[i] {
			t.Fatal("Shuffled must be deterministic per seed")
		}
	}
}
