// Package multimodel implements the FIFO multi-DNN workloads of §2.2 and
// §5.3: a queue of inference requests over several distinct models executed
// back-to-back on one device, with per-request latency and a machine-wide
// memory trace (Figure 6).
//
// Each request runs cold — the defining property of the FIFO scenario is
// that models swap in and out, paying load and layout-transform cost on
// every activation under preloading frameworks, which is exactly the
// overhead FlashMem's streaming avoids.
package multimodel

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/units"
)

// Request is one queued inference.
type Request struct {
	Model string // display name
	Index int    // position in the FIFO
}

// Event is one completed inference.
type Event struct {
	Request
	Start units.Duration
	End   units.Duration
}

// Latency returns the request's end-to-end latency.
func (e Event) Latency() units.Duration { return e.End - e.Start }

// Trace is a full FIFO run outcome.
type Trace struct {
	Device string
	Events []Event
	Memory []sim.Sample // combined UM+TM residency over time

	Peak    units.Bytes
	Average units.Bytes
	Total   units.Duration
	OOM     bool
}

// Runner executes one model once on the shared machine, returning the
// completion time of the inference that became ready at `at`.
type Runner interface {
	Name() string
	RunOnce(m *gpusim.Machine, at units.Duration) (end units.Duration)
}

// FlashMemRunner adapts a prepared FlashMem model to the FIFO queue.
type FlashMemRunner struct {
	Engine *core.Engine
	Prep   *core.Prepared
}

// Name returns the model name.
func (r *FlashMemRunner) Name() string { return r.Prep.Graph.Name }

// RunOnce executes the prepared plan once.
func (r *FlashMemRunner) RunOnce(m *gpusim.Machine, at units.Duration) units.Duration {
	return r.Engine.ExecuteOn(m, r.Prep, at).ExecEnd
}

// BaselineRunner adapts a preloading framework to the FIFO queue.
type BaselineRunner struct {
	Framework *baselines.Framework
	Graph     *graph.Graph
}

// Name returns the model name.
func (r *BaselineRunner) Name() string { return r.Graph.Name }

// RunOnce executes the preloading strategy once (full load + transform +
// inference, as each FIFO activation requires).
func (r *BaselineRunner) RunOnce(m *gpusim.Machine, at units.Duration) units.Duration {
	rep := r.Framework.ExecuteOn(m, r.Graph, at)
	return at + rep.Init + rep.Exec
}

// RunFIFO executes the given request order on one machine. order[i] indexes
// into runners; iterations of the same model may be interleaved arbitrarily
// (Figure 6 interleaves four models × 10 iterations).
func RunFIFO(m *gpusim.Machine, runners []Runner, order []int) (*Trace, error) {
	tr := &Trace{Device: m.Dev.Name}
	cursor := units.Duration(0)
	for i, ri := range order {
		if ri < 0 || ri >= len(runners) {
			return nil, fmt.Errorf("multimodel: order[%d] = %d out of range", i, ri)
		}
		r := runners[ri]
		end := r.RunOnce(m, cursor)
		tr.Events = append(tr.Events, Event{
			Request: Request{Model: r.Name(), Index: i},
			Start:   cursor,
			End:     end,
		})
		cursor = end
	}
	tr.Total = cursor
	tr.Memory = m.MemorySeries()
	tr.Peak = m.PeakBytes()
	tr.Average = m.AverageBytes(cursor)
	tr.OOM = m.OOM()
	return tr, nil
}

// RoundRobin builds an order that interleaves n runners for iters rounds:
// 0,1,..,n-1, 0,1,..,n-1, ...
func RoundRobin(n, iters int) []int {
	order := make([]int, 0, n*iters)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			order = append(order, r)
		}
	}
	return order
}

// Shuffled builds a deterministic pseudo-random order with each runner
// appearing exactly iters times (the paper runs models "sequentially in a
// random order").
func Shuffled(n, iters int, seed uint64) []int {
	order := RoundRobin(n, iters)
	s := seed
	for i := len(order) - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}
