// Package replan is the dynamic-scenario resilience engine: it keeps a
// fleet of loaded models validly planned while the device underneath them
// churns. Condition events (internal/trace) — memory-budget steps, thermal
// throttle transitions, model load/unload — drive a per-model degradation
// ladder:
//
//  1. incremental repair (opg.Repairable.Repair) within a latency budget,
//     retried under a backoff.Budget so a throttle storm cannot spin forever;
//  2. the nearest cached plan variant re-validated against the new state;
//  3. a prefix-preserving greedy patch (opg.Repairable.GreedyPatch);
//  4. shedding the lowest-priority models when the fleet no longer fits.
//
// Every rung is recorded in the served plan's stats and surfaced by the
// plan server's /replan path; internal/chaos replays churn schedules over
// this package to assert that no request is lost and that every served
// plan is valid for the device state it was served under.
package replan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/device"
	"repro/internal/fusion"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/units"
)

// DeviceState is the mutable device condition a served plan must be valid
// for: the nominal profile plus the current in-flight budget and thermal
// level.
type DeviceState struct {
	Nominal  device.Device
	Budget   units.Bytes // current in-flight transform budget (M_peak)
	Throttle int         // thermal level, 0 = nominal
}

// Effective returns the device as the workload experiences it right now.
func (s DeviceState) Effective() device.Device {
	return power.Throttle(s.Nominal, s.Throttle)
}

// Caps returns the load-capacity function of the effective device: the
// throttled cost model reshapes capacities, which is exactly what repair
// re-solves against.
func (s DeviceState) Caps() opg.Capacity {
	return profiler.AnalyticCapacityFunc(s.Effective())
}

// Config parameterizes a Planner.
type Config struct {
	// Base is the nominal solver configuration; each event's solve uses it
	// with MPeak tracking the current budget. The zero value takes
	// opg.DefaultConfig.
	Base opg.Config

	// RepairBudget is the per-attempt latency budget for incremental
	// repair (0 = unlimited). A repair that misses it descends the ladder
	// after the retry budget runs out.
	RepairBudget time.Duration

	// RetryPolicy spaces repair retries; RetryTotal is the total-elapsed
	// cap across them (backoff.Budget). RetryTotal <= 0 disables retries:
	// one miss descends immediately.
	RetryPolicy backoff.Policy
	RetryTotal  time.Duration

	// ImportNogoods warm-starts repair re-solves from the retained rung
	// records (cpsat.ImportCompatible). Opt-in: imports trade the
	// byte-identity guarantee for faster re-solves.
	ImportNogoods bool

	// Cache, when set, feeds the ladder's cached-variant rung.
	Cache *plancache.Cache
}

func (c Config) norm() Config {
	if c.Base.ChunkSize <= 0 {
		c.Base = opg.DefaultConfig()
	}
	return c
}

// ModelState is one loaded model's planning state.
type ModelState struct {
	Abbr     string
	Priority int // shedding order: lower sheds first

	Graph *graph.Graph // fused graph the retained plans pair with

	rep  *opg.Repairable
	plan *opg.Plan // current unadjusted plan for the current device state
	rung string    // how plan was produced (opg.Rung*)
	shed bool
	// stale marks a plan produced by a degraded rung (cached variant,
	// patch): the repairable's retained solve no longer matches the served
	// state, so the next event cold-solves instead of repairing from a
	// wrong baseline.
	stale bool
}

// Rung returns how the current plan was produced.
func (ms *ModelState) Rung() string { return ms.rung }

// Shed reports whether the model is currently shed.
func (ms *ModelState) Shed() bool { return ms.shed }

// Action records what the ladder did for one model on one event.
type Action struct {
	Model   string
	Rung    string // opg.RungCold | RungRepaired | RungCachedVariant | RungPatched | RungShed
	Stats   opg.RepairStats
	Elapsed time.Duration
}

// Serving is a plan ready to execute: the fused graph plus an adjusted
// deep copy of the current plan, safe for the caller to own.
type Serving struct {
	Graph *graph.Graph
	Plan  *opg.Plan
	Rung  string
}

// Planner tracks the loaded-model fleet across device churn. Not safe for
// concurrent use; callers serialize event application and serving.
type Planner struct {
	cfg    Config
	state  DeviceState
	models map[string]*ModelState
}

// NewPlanner starts a planner at the nominal device state.
func NewPlanner(dev device.Device, cfg Config) *Planner {
	cfg = cfg.norm()
	return &Planner{
		cfg:    cfg,
		state:  DeviceState{Nominal: dev, Budget: cfg.Base.MPeak},
		models: map[string]*ModelState{},
	}
}

// State returns the current device state.
func (p *Planner) State() DeviceState { return p.state }

// SolveConfig returns the solver configuration for the current state.
func (p *Planner) SolveConfig() opg.Config {
	cfg := p.cfg.Base
	cfg.MPeak = p.state.Budget
	return cfg
}

// Models returns the loaded models, sorted by abbreviation.
func (p *Planner) Models() []*ModelState {
	out := make([]*ModelState, 0, len(p.models))
	for _, ms := range p.models {
		out = append(out, ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Abbr < out[j].Abbr })
	return out
}

// ErrNotLoaded reports a request for a model the planner does not serve.
var ErrNotLoaded = errors.New("replan: model not loaded")

// ErrShed reports a request for a model currently shed under memory
// pressure.
var ErrShed = errors.New("replan: model shed under memory pressure")

// Apply handles one condition event and returns what the ladder did.
// Request events are not the planner's business (the replay engine serves
// them); they return no actions.
func (p *Planner) Apply(ctx context.Context, e trace.Event) ([]Action, error) {
	switch e.Kind {
	case trace.KindModelLoad:
		a, err := p.load(e.Model, e.Priority)
		if err != nil {
			return nil, err
		}
		return append(a, p.shedToFit()...), nil
	case trace.KindModelUnload:
		delete(p.models, e.Model)
		return p.shedToFit(), nil
	case trace.KindMemoryBudget:
		if e.Budget <= 0 {
			return nil, fmt.Errorf("replan: non-positive budget %d", e.Budget)
		}
		p.state.Budget = e.Budget
		return p.replanAll(ctx)
	case trace.KindThrottle:
		if e.Level < 0 {
			return nil, fmt.Errorf("replan: negative throttle level %d", e.Level)
		}
		p.state.Throttle = e.Level
		return p.replanAll(ctx)
	case trace.KindRequest:
		return nil, nil
	default:
		return nil, fmt.Errorf("replan: unknown event kind %q", e.Kind)
	}
}

// load brings a model into service with a cold traced solve.
func (p *Planner) load(abbr string, priority int) ([]Action, error) {
	if _, ok := p.models[abbr]; ok {
		return nil, nil // already serving; keep the existing plan
	}
	spec, ok := models.ByAbbr(abbr)
	if !ok {
		return nil, fmt.Errorf("replan: unknown model %q", abbr)
	}
	g := fusion.Fuse(spec.Build(), fusion.DefaultOptions())
	t0 := time.Now()
	rep := opg.SolveRepairable(g, p.state.Caps(), p.SolveConfig())
	ms := &ModelState{
		Abbr: abbr, Priority: priority, Graph: g,
		rep: rep, plan: rep.Plan(), rung: opg.RungCold,
	}
	p.models[abbr] = ms
	return []Action{{Model: abbr, Rung: opg.RungCold, Elapsed: time.Since(t0)}}, nil
}

// replanAll runs the ladder for every loaded model (alphabetical order,
// for determinism) against the new state, then sheds to fit.
func (p *Planner) replanAll(ctx context.Context) ([]Action, error) {
	caps := p.state.Caps()
	cfg := p.SolveConfig()
	var out []Action
	for _, ms := range p.Models() {
		out = append(out, p.ladder(ctx, ms, caps, cfg))
	}
	return append(out, p.shedToFit()...), nil
}

// ladder produces a valid plan for one model under the new state, falling
// through repair → cached variant → greedy patch. Shedding is fleet-level
// and handled by shedToFit.
func (p *Planner) ladder(ctx context.Context, ms *ModelState, caps opg.Capacity, cfg opg.Config) Action {
	t0 := time.Now()

	// A degraded plan means the repairable's baseline no longer matches
	// anything served; repair would start from the wrong state. Re-solve.
	if ms.stale {
		ms.rep = opg.SolveRepairable(ms.Graph, caps, cfg)
		ms.plan, ms.rung, ms.stale = ms.rep.Plan(), opg.RungCold, false
		return Action{Model: ms.Abbr, Rung: opg.RungCold, Elapsed: time.Since(t0)}
	}

	// Rung 1: incremental repair, retried under the total-elapsed budget.
	bud := backoff.NewBudget(p.cfg.RetryTotal)
	for attempt := 0; ; attempt++ {
		st, err := ms.rep.Repair(caps, cfg, opg.RepairOptions{
			Budget:        p.cfg.RepairBudget,
			ImportNogoods: p.cfg.ImportNogoods,
		})
		if err == nil {
			ms.plan, ms.rung = ms.rep.Plan(), opg.RungRepaired
			return Action{Model: ms.Abbr, Rung: opg.RungRepaired, Stats: st, Elapsed: time.Since(t0)}
		}
		if errors.Is(err, opg.ErrRepairIncompatible) {
			ms.rep = opg.SolveRepairable(ms.Graph, caps, cfg)
			ms.plan, ms.rung = ms.rep.Plan(), opg.RungCold
			return Action{Model: ms.Abbr, Rung: opg.RungCold, Elapsed: time.Since(t0)}
		}
		// Budget miss: retry while the retry budget lasts, then descend.
		if bud.Sleep(ctx, p.cfg.RetryPolicy, attempt) != nil {
			break
		}
	}

	// Rung 2: nearest cached plan variant revalidated for the new state.
	if pl := CachedVariant(p.cfg.Cache, ms.Graph, caps, cfg); pl != nil {
		pl.Stats.RepairRung = opg.RungCachedVariant
		ms.plan, ms.rung, ms.stale = pl, opg.RungCachedVariant, true
		return Action{Model: ms.Abbr, Rung: opg.RungCachedVariant, Elapsed: time.Since(t0)}
	}

	// Rung 3: prefix-preserving greedy patch. Always succeeds.
	pl, st, err := ms.rep.GreedyPatch(caps, cfg)
	if err != nil {
		// Unreachable (compatibility was already established by rung 1),
		// but never serve a plan we cannot justify: fall back to cold.
		ms.rep = opg.SolveRepairable(ms.Graph, caps, cfg)
		ms.plan, ms.rung, ms.stale = ms.rep.Plan(), opg.RungCold, false
		return Action{Model: ms.Abbr, Rung: opg.RungCold, Elapsed: time.Since(t0)}
	}
	ms.plan, ms.rung, ms.stale = pl, opg.RungPatched, true
	return Action{Model: ms.Abbr, Rung: opg.RungPatched, Stats: st, Elapsed: time.Since(t0)}
}

// CachedVariant scans a plan cache for the best plan that is valid for
// this graph under a post-event device state: same model and chunking,
// peak in-flight within the new budget, constraints validated, lowest
// objective wins. It returns a deep copy (with MPeak rewritten to the
// admitting budget), or nil when no cached plan qualifies. This is the
// degradation ladder's second rung, shared by the planner and the plan
// server's /replan path.
func CachedVariant(cache *plancache.Cache, g *graph.Graph, caps opg.Capacity, cfg opg.Config) *opg.Plan {
	if cache == nil {
		return nil
	}
	var best *opg.Plan
	var bestObj float64
	for _, key := range cache.Keys() {
		prep, ok := cache.Get(key)
		if !ok || prep.Plan == nil || prep.Graph == nil {
			continue
		}
		pl := prep.Plan
		if pl.Model != g.Name || pl.ChunkSize != cfg.ChunkSize {
			continue
		}
		// The cached graph must be the same fusion of the same model: plan
		// entries index nodes, so a structural mismatch invalidates them.
		if prep.Graph.Len() != g.Len() {
			continue
		}
		if pl.MaxInflightBytes(g.Len()) > cfg.MPeak {
			continue
		}
		if pl.Validate(g, caps, cfg) != nil {
			continue
		}
		if obj := pl.Objective(cfg.Lambda); best == nil || obj < bestObj {
			best, bestObj = pl.Clone(), obj
		}
	}
	if best != nil {
		// Serve a copy whose C2 book-keeping reflects the budget it was
		// admitted under.
		best.MPeak = cfg.MPeak
	}
	return best
}

// shedToFit enforces fleet residency: when the loaded plans' combined
// memory footprint (preload set + peak in-flight) exceeds the effective
// app limit, the lowest-priority models are shed until the rest fit. A
// previously shed model is restored automatically once the fleet fits
// with it included.
func (p *Planner) shedToFit() []Action {
	type fit struct {
		ms  *ModelState
		res units.Bytes
	}
	var fleet []fit
	for _, ms := range p.Models() {
		if ms.plan == nil {
			continue
		}
		fleet = append(fleet, fit{ms, ms.plan.PreloadBytes() + ms.plan.MaxInflightBytes(ms.Graph.Len())})
	}
	// Shedding order: priority ascending, then largest footprint first —
	// shed as few low-priority models as possible.
	sort.Slice(fleet, func(i, j int) bool {
		if fleet[i].ms.Priority != fleet[j].ms.Priority {
			return fleet[i].ms.Priority < fleet[j].ms.Priority
		}
		if fleet[i].res != fleet[j].res {
			return fleet[i].res > fleet[j].res
		}
		return fleet[i].ms.Abbr < fleet[j].ms.Abbr
	})
	limit := p.state.Effective().AppLimit
	var total units.Bytes
	for _, f := range fleet {
		total += f.res
	}
	// Decide the shed set from scratch as a prefix of the shed order: cut
	// just deep enough that the suffix fits, shed everything before the cut
	// and serve everything after it. Deciding by cut point (not by which
	// models were newly shed this pass) keeps total consistent with the
	// served set — a restored model's footprint is, by construction, still
	// counted against the limit.
	cut := 0
	for cut < len(fleet) && total > limit {
		total -= fleet[cut].res
		cut++
	}
	var out []Action
	for i, f := range fleet {
		switch {
		case i < cut && !f.ms.shed:
			f.ms.shed = true
			out = append(out, Action{Model: f.ms.Abbr, Rung: opg.RungShed})
		case i >= cut && f.ms.shed:
			f.ms.shed = false
			out = append(out, Action{Model: f.ms.Abbr, Rung: opg.RungRestored})
		}
	}
	return out
}

// Serve returns an executable plan for the model under the current device
// state: the retained plan, deep-copied and prefetch-adjusted for the
// effective cost model.
func (p *Planner) Serve(abbr string) (*Serving, error) {
	ms, ok := p.models[abbr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, abbr)
	}
	if ms.shed {
		return nil, fmt.Errorf("%w: %s", ErrShed, abbr)
	}
	return p.serveState(ms)
}

// serveState adjusts a deep copy of the model's plan for the effective
// cost model, without the shed gate.
func (p *Planner) serveState(ms *ModelState) (*Serving, error) {
	if ms.plan == nil {
		return nil, fmt.Errorf("%w: %s has no plan", ErrNotLoaded, ms.Abbr)
	}
	eff := p.state.Effective()
	cm := kernels.NewCostModel(eff)
	adj := ms.plan.Clone()
	opg.AdjustLoadStarts(adj, ms.Graph, func(id graph.NodeID) units.Duration {
		return cm.KernelTime(ms.Graph.Node(id), kernels.Texture25D)
	}, eff.DiskBW, p.state.Budget)
	return &Serving{Graph: ms.Graph, Plan: adj, Rung: ms.rung}, nil
}
