package replan

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fusion"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/trace"
	"repro/internal/units"
)

func testConfig() Config {
	return Config{Base: opg.DefaultConfig()}
}

func load(t *testing.T, p *Planner, abbr string, priority int) []Action {
	t.Helper()
	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindModelLoad, Model: abbr, Priority: priority})
	if err != nil {
		t.Fatalf("loading %s: %v", abbr, err)
	}
	return a
}

func mustServeValid(t *testing.T, p *Planner, abbr string) *Serving {
	t.Helper()
	sv, err := p.Serve(abbr)
	if err != nil {
		t.Fatalf("serving %s: %v", abbr, err)
	}
	if err := sv.Plan.Validate(sv.Graph, p.State().Caps(), p.SolveConfig()); err != nil {
		t.Fatalf("served %s plan (%s) invalid for current state: %v", abbr, sv.Rung, err)
	}
	return sv
}

func TestPlannerLoadRepairThrottle(t *testing.T) {
	p := NewPlanner(device.OnePlus12(), testConfig())
	a := load(t, p, "ViT", 2)
	if len(a) != 1 || a[0].Rung != opg.RungCold {
		t.Fatalf("load actions = %+v, want one cold solve", a)
	}
	if sv := mustServeValid(t, p, "ViT"); sv.Rung != opg.RungCold {
		t.Fatalf("initial serve rung = %s, want cold", sv.Rung)
	}

	// A budget drop must be handled by incremental repair when the repair
	// budget is unlimited.
	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindMemoryBudget, Budget: 300 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0].Rung != opg.RungRepaired {
		t.Fatalf("budget-drop actions = %+v, want one repair", a)
	}
	if a[0].Stats.WindowsKept+a[0].Stats.WindowsResolved == 0 {
		t.Fatal("repair action reports no windows")
	}
	sv := mustServeValid(t, p, "ViT")
	if sv.Rung != opg.RungRepaired {
		t.Fatalf("post-repair serve rung = %s, want repaired", sv.Rung)
	}
	if sv.Plan.MPeak != 300*units.MB {
		t.Fatalf("served plan MPeak = %v, want the new budget", sv.Plan.MPeak)
	}

	// A throttle transition reshapes capacities; the served plan must stay
	// valid for the derated device.
	if _, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindThrottle, Level: 2}); err != nil {
		t.Fatal(err)
	}
	mustServeValid(t, p, "ViT")
	if _, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindThrottle, Level: 0}); err != nil {
		t.Fatal(err)
	}
	mustServeValid(t, p, "ViT")
}

func TestLadderDescendsToPatchThenColdRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.RepairBudget = time.Nanosecond // every repair misses its budget
	p := NewPlanner(device.OnePlus12(), cfg)
	load(t, p, "ViT", 2)

	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindMemoryBudget, Budget: 300 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0].Rung != opg.RungPatched {
		t.Fatalf("actions = %+v, want one greedy patch", a)
	}
	sv := mustServeValid(t, p, "ViT")
	if sv.Rung != opg.RungPatched || sv.Plan.Stats.RepairRung != opg.RungPatched {
		t.Fatalf("serve rung = %s / stats %q, want patched", sv.Rung, sv.Plan.Stats.RepairRung)
	}

	// A patched plan is stale: the next event must re-solve cold rather
	// than repair from a baseline that no longer matches what is served.
	a, err = p.Apply(context.Background(), trace.Event{Kind: trace.KindMemoryBudget, Budget: 400 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0].Rung != opg.RungCold {
		t.Fatalf("post-patch actions = %+v, want one cold re-solve", a)
	}
	mustServeValid(t, p, "ViT")
}

func TestLadderPrefersCachedVariant(t *testing.T) {
	dev := device.OnePlus12()
	spec, ok := models.ByAbbr("ViT")
	if !ok {
		t.Fatal("no ViT spec")
	}
	g := fusion.Fuse(spec.Build(), fusion.DefaultOptions())

	// Pre-populate the cache with a plan solved for exactly the budget the
	// event will drop to.
	low := opg.DefaultConfig()
	low.MPeak = 300 * units.MB
	caps := DeviceState{Nominal: dev, Budget: low.MPeak}.Caps()
	prep := &core.Prepared{Graph: g, Plan: opg.SolveRepairable(g, caps, low).Plan()}
	cache := plancache.New(8)
	cache.Put("vit-300", prep)

	cfg := testConfig()
	cfg.RepairBudget = time.Nanosecond
	cfg.Cache = cache
	p := NewPlanner(dev, cfg)
	load(t, p, "ViT", 2)

	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindMemoryBudget, Budget: 300 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0].Rung != opg.RungCachedVariant {
		t.Fatalf("actions = %+v, want one cached-variant hit", a)
	}
	sv := mustServeValid(t, p, "ViT")
	if sv.Rung != opg.RungCachedVariant || sv.Plan.Stats.RepairRung != opg.RungCachedVariant {
		t.Fatalf("serve rung = %s / stats %q, want cached_variant", sv.Rung, sv.Plan.Stats.RepairRung)
	}
}

func residency(ms *ModelState) units.Bytes {
	return ms.plan.PreloadBytes() + ms.plan.MaxInflightBytes(ms.Graph.Len())
}

func TestShedLowestPriorityAndRestore(t *testing.T) {
	// Probe the two models' footprints on the stock device, then shrink the
	// app limit so both cannot be resident together.
	probe := NewPlanner(device.OnePlus12(), testConfig())
	load(t, probe, "ViT", 1)
	load(t, probe, "ResNet", 2)
	var resViT, resResNet units.Bytes
	for _, ms := range probe.Models() {
		if ms.Abbr == "ViT" {
			resViT = residency(ms)
		} else {
			resResNet = residency(ms)
		}
	}
	if resViT == 0 || resResNet == 0 {
		t.Fatal("probe footprints are zero")
	}

	dev := device.OnePlus12()
	dev.AppLimit = resViT + resResNet - 1

	p := NewPlanner(dev, testConfig())
	load(t, p, "ViT", 1) // lower priority: sheds first
	a := load(t, p, "ResNet", 2)
	var shed []string
	for _, act := range a {
		if act.Rung == opg.RungShed {
			shed = append(shed, act.Model)
		}
	}
	if len(shed) != 1 || shed[0] != "ViT" {
		t.Fatalf("shed %v, want exactly ViT (the lowest priority)", shed)
	}
	if _, err := p.Serve("ViT"); !errors.Is(err, ErrShed) {
		t.Fatalf("serving shed model: err = %v, want ErrShed", err)
	}
	mustServeValid(t, p, "ResNet")

	// Retiring the high-priority model frees the budget; the shed model
	// must come back, and the recovery must be visible as a restored
	// action so replay reports record when capacity returned.
	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindModelUnload, Model: "ResNet"})
	if err != nil {
		t.Fatal(err)
	}
	var restored []string
	for _, act := range a {
		if act.Rung == opg.RungRestored {
			restored = append(restored, act.Model)
		}
	}
	if len(restored) != 1 || restored[0] != "ViT" {
		t.Fatalf("restored %v, want exactly ViT", restored)
	}
	mustServeValid(t, p, "ViT")
}

// A model shed on an earlier event must stay shed on later events while
// the pressure persists: re-running the fleet fit must not un-shed it
// while its footprint is excluded from the residency total, or the served
// fleet would exceed the effective app limit.
func TestShedModelStaysShedUnderPersistentPressure(t *testing.T) {
	probe := NewPlanner(device.OnePlus12(), testConfig())
	load(t, probe, "ViT", 1)
	load(t, probe, "ResNet", 2)
	var resViT, resResNet units.Bytes
	for _, ms := range probe.Models() {
		if ms.Abbr == "ViT" {
			resViT = residency(ms)
		} else {
			resResNet = residency(ms)
		}
	}

	dev := device.OnePlus12()
	dev.AppLimit = resViT + resResNet - 1

	p := NewPlanner(dev, testConfig())
	load(t, p, "ViT", 1)
	load(t, p, "ResNet", 2) // sheds ViT

	// A condition event that changes nothing about the pressure re-runs
	// the fleet fit with ViT already shed.
	a, err := p.Apply(context.Background(), trace.Event{Kind: trace.KindThrottle, Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range a {
		if act.Rung == opg.RungRestored {
			t.Fatalf("restored %s while the fleet still does not fit", act.Model)
		}
	}
	if _, err := p.Serve("ViT"); !errors.Is(err, ErrShed) {
		t.Fatalf("serving ViT after re-fit: err = %v, want ErrShed", err)
	}

	// The residency invariant: the served fleet fits the app limit.
	var total units.Bytes
	for _, ms := range p.Models() {
		if !ms.Shed() {
			total += residency(ms)
		}
	}
	if limit := p.State().Effective().AppLimit; total > limit {
		t.Fatalf("served fleet footprint %v exceeds app limit %v", total, limit)
	}
}

func TestReplayEndToEnd(t *testing.T) {
	dev := device.OnePlus12()
	tr := trace.Generate(dev, trace.GenOptions{Seed: 42, Events: 60})
	rep, err := Replay(context.Background(), dev, tr, ReplayOptions{Planner: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("replay violations: %v", rep.Violations)
	}
	if rep.Requests == 0 || rep.Served == 0 {
		t.Fatalf("replay served nothing: %+v", rep)
	}
	if rep.Served+rep.Rejected != rep.Requests {
		t.Fatalf("lost requests: %d != %d + %d", rep.Requests, rep.Served, rep.Rejected)
	}
	if rep.Rungs[opg.RungCold] == 0 {
		t.Fatal("no cold solves recorded — loads must register")
	}
	var churn bool
	for _, e := range tr.Events {
		if e.Kind == trace.KindMemoryBudget || e.Kind == trace.KindThrottle {
			churn = true
		}
	}
	if churn && rep.Replans == 0 {
		t.Fatal("trace has condition events but no replans recorded")
	}
}

func TestReplayRejectsFingerprintMismatch(t *testing.T) {
	tr := trace.Generate(device.OnePlus12(), trace.GenOptions{Seed: 1, Events: 10})
	_, err := Replay(context.Background(), device.Pixel8(), tr, ReplayOptions{Planner: testConfig()})
	if err == nil {
		t.Fatal("replay accepted a trace for a different device")
	}
	if !strings.Contains(err.Error(), device.OnePlus12().Fingerprint()) ||
		!strings.Contains(err.Error(), device.Pixel8().Fingerprint()) {
		t.Fatalf("mismatch error must name both fingerprints: %v", err)
	}
}
