package replan

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/opg"
	"repro/internal/trace"
	"repro/internal/units"
)

// ReplayOptions shapes a trace replay.
type ReplayOptions struct {
	Planner Config
	// SLOFactor is the served-latency tolerance relative to each model's
	// reference latency, measured by a calibration execution at load time
	// (<= 0: 3). A request slower than SLOFactor × reference is an SLO
	// miss — degraded plans are allowed to cost something, but not
	// unboundedly.
	SLOFactor float64
}

// Report is the outcome of replaying one trace end to end. Violations are
// invariant breaches (a served plan failing validation, a lost request) —
// a correct build produces none, regardless of how hostile the trace is.
// SLO misses and rejections are quality outcomes, not violations.
type Report struct {
	Device      string `json:"device"`
	Fingerprint string `json:"device_fingerprint"`
	Seed        uint64 `json:"seed"`
	Events      int    `json:"events"`

	Requests     int `json:"requests"`
	Served       int `json:"served"`
	Rejected     int `json:"rejected"`      // not-loaded at arrival time
	RejectedShed int `json:"rejected_shed"` // shed under memory pressure

	SLOMisses int            `json:"slo_misses"`
	Replans   int            `json:"replans"` // ladder passes on condition events
	Rungs     map[string]int `json:"rungs"`   // plan-source label → count

	RepairWindowsKept     int `json:"repair_windows_kept"`
	RepairWindowsResolved int `json:"repair_windows_resolved"`

	RepairMeanMS float64 `json:"repair_mean_ms"` // mean incremental-repair latency
	RepairMaxMS  float64 `json:"repair_max_ms"`
	ColdMeanMS   float64 `json:"cold_mean_ms"` // mean from-scratch solve latency
	// RepairVsCold is RepairMeanMS / ColdMeanMS; the headline resilience
	// metric (repair ≪ cold). Zero when either side has no samples.
	RepairVsCold float64 `json:"repair_vs_cold"`

	Violations []string `json:"violations"`
}

// Replay runs a trace end to end against the resilience engine: condition
// events drive the planner's degradation ladder, request events execute
// the currently served plan on the simulated GPU, and every served plan is
// validated against the device state it is served under.
func Replay(ctx context.Context, dev device.Device, tr *trace.Trace, opts ReplayOptions) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := tr.CheckDevice(dev); err != nil {
		return nil, err
	}
	slo := opts.SLOFactor
	if slo <= 0 {
		slo = 3
	}

	p := NewPlanner(dev, opts.Planner)
	rep := &Report{
		Device:      dev.Name,
		Fingerprint: dev.Fingerprint(),
		Seed:        tr.Seed,
		Events:      len(tr.Events),
		Rungs:       map[string]int{},
	}

	// Engines are cached per throttle level: the machine only consumes the
	// nominal disk bandwidth (which throttling never touches), so one
	// nominal machine per request stays accurate while the engine's cost
	// model carries the thermal derating.
	engines := map[int]*core.Engine{}
	engine := func() *core.Engine {
		lvl := p.State().Throttle
		if e, ok := engines[lvl]; ok {
			return e
		}
		e := core.NewEngine(core.Options{Device: p.State().Effective(), Config: p.cfg.Base})
		engines[lvl] = e
		return e
	}

	// refLatency is each model's calibration latency: its current plan
	// executed alone on an idle machine under the nominal (level-0) cost
	// model. Calibrating on the nominal engine regardless of the throttle
	// level active at load time keeps references comparable across models —
	// a model loaded mid-throttle must not get an inflated reference that
	// masks later SLO misses.
	nominal := func() *core.Engine {
		if e, ok := engines[0]; ok {
			return e
		}
		e := core.NewEngine(core.Options{Device: dev, Config: p.cfg.Base})
		engines[0] = e
		return e
	}
	nomCM := kernels.NewCostModel(dev)
	refLatency := map[string]units.Duration{}
	calibrate := func() {
		for _, ms := range p.Models() {
			if _, ok := refLatency[ms.Abbr]; ok || ms.plan == nil {
				continue
			}
			adj := ms.plan.Clone()
			opg.AdjustLoadStarts(adj, ms.Graph, func(id graph.NodeID) units.Duration {
				return nomCM.KernelTime(ms.Graph.Node(id), kernels.Texture25D)
			}, dev.DiskBW, p.State().Budget)
			res := nominal().ExecuteOn(gpusim.New(dev), &core.Prepared{Graph: ms.Graph, Plan: adj}, 0)
			refLatency[ms.Abbr] = res.ExecEnd
		}
	}

	var repairNS, coldNS, repairMaxNS, repairN, coldN int64
	busy := units.Duration(0)

	for _, e := range tr.Events {
		if e.Kind != trace.KindRequest {
			actions, err := p.Apply(ctx, e)
			if err != nil {
				return nil, fmt.Errorf("replan: applying %s at %v: %w", e.Kind, e.At, err)
			}
			for _, a := range actions {
				rep.Rungs[a.Rung]++
				switch a.Rung {
				case opg.RungRepaired:
					ns := a.Elapsed.Nanoseconds()
					repairNS += ns
					repairN++
					if ns > repairMaxNS {
						repairMaxNS = ns
					}
					rep.RepairWindowsKept += a.Stats.WindowsKept
					rep.RepairWindowsResolved += a.Stats.WindowsResolved
				case opg.RungCold:
					coldNS += a.Elapsed.Nanoseconds()
					coldN++
				}
				if a.Rung != opg.RungShed && a.Rung != opg.RungRestored &&
					(e.Kind == trace.KindMemoryBudget || e.Kind == trace.KindThrottle) {
					rep.Replans++
				}
			}
			calibrate()
			continue
		}

		rep.Requests++
		serving, err := p.Serve(e.Model)
		switch {
		case errors.Is(err, ErrShed):
			rep.Rejected++
			rep.RejectedShed++
			continue
		case err != nil:
			rep.Rejected++
			continue
		}
		// The resilience invariant: whatever rung produced this plan, it
		// must be valid for the device state it is served under.
		if verr := serving.Plan.Validate(serving.Graph, p.State().Caps(), p.SolveConfig()); verr != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("request at %v: served %s plan (%s) invalid for device state: %v",
					e.At, e.Model, serving.Rung, verr))
			continue
		}
		start := e.At
		if busy > start {
			start = busy
		}
		res := engine().ExecuteOn(gpusim.New(dev), &core.Prepared{Graph: serving.Graph, Plan: serving.Plan}, start)
		busy = res.ExecEnd
		rep.Served++
		if ref, ok := refLatency[e.Model]; ok && ref > 0 {
			if lat := res.ExecEnd - start; float64(lat) > slo*float64(ref) {
				rep.SLOMisses++
			}
		}
	}

	if rep.Served+rep.Rejected != rep.Requests {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("lost requests: %d arrived, %d served + %d rejected", rep.Requests, rep.Served, rep.Rejected))
	}

	if repairN > 0 {
		rep.RepairMeanMS = float64(repairNS) / float64(repairN) / 1e6
		rep.RepairMaxMS = float64(repairMaxNS) / 1e6
	}
	if coldN > 0 {
		rep.ColdMeanMS = float64(coldNS) / float64(coldN) / 1e6
	}
	if rep.RepairMeanMS > 0 && rep.ColdMeanMS > 0 {
		rep.RepairVsCold = rep.RepairMeanMS / rep.ColdMeanMS
	}
	return rep, nil
}
