package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayGrowsAndCaps: jitter-free delays grow geometrically then
// saturate at Max.
func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(1 << 20); got != 2*time.Second {
		t.Errorf("huge attempt: Delay = %v, want cap", got)
	}
}

// TestJitterStaysInWindow: jittered delays land in [d·(1−J), d], and a
// fixed seed reproduces the exact schedule.
func TestJitterStaysInWindow(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 17}
	q := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 17}
	bare := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	for i := 0; i < 8; i++ {
		full := bare.Delay(i)
		d := p.Delay(i)
		if d > full || d < full/2 {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", i, d, full/2, full)
		}
		if d2 := q.Delay(i); d2 != d {
			t.Errorf("same seed, Delay(%d) = %v then %v", i, d, d2)
		}
	}
}

// TestZeroValueUsable: the zero Policy has sane defaults.
func TestZeroValueUsable(t *testing.T) {
	var p Policy
	d0 := p.Delay(0)
	if d0 <= 0 || d0 > 100*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want (0, 100ms]", d0)
	}
	if d := p.Delay(100); d > 5*time.Second {
		t.Errorf("zero-value Delay(100) = %v exceeds the default cap", d)
	}
}

// TestSleepHonorsCancelledContext: cancellation mid-sleep returns promptly
// with the context error — the satellite contract for every retry loop
// built on this package.
func TestSleepHonorsCancelledContext(t *testing.T) {
	p := Policy{Base: 10 * time.Second, Max: 10 * time.Second, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep ignored cancellation")
	}
	// An already-cancelled context never sleeps at all.
	t0 := time.Now()
	if err := p.Sleep(ctx, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Sleep returned %v", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("pre-cancelled Sleep blocked")
	}
}

// fakeBudget returns a budget whose clock is under test control.
func fakeBudget(total time.Duration) (*Budget, *time.Time) {
	now := time.Unix(0, 0)
	b := NewBudget(total)
	b.start = now
	b.clock = func() time.Time { return now }
	return b, &now
}

func TestBudgetCapExpiry(t *testing.T) {
	b, now := fakeBudget(time.Second)
	if b.Exhausted() {
		t.Fatal("fresh budget exhausted")
	}
	if got := b.Remaining(); got != time.Second {
		t.Fatalf("remaining = %v, want 1s", got)
	}
	*now = now.Add(400 * time.Millisecond)
	if got := b.Remaining(); got != 600*time.Millisecond {
		t.Fatalf("remaining = %v, want 600ms", got)
	}
	*now = now.Add(time.Second)
	if !b.Exhausted() || b.Remaining() != 0 {
		t.Fatalf("overrun budget must be exhausted with 0 remaining, got %v", b.Remaining())
	}
	if err := b.Sleep(context.Background(), Policy{}, 0); err != ErrBudgetExhausted {
		t.Fatalf("Sleep on exhausted budget: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestBudgetZeroTotalIsNoRetries(t *testing.T) {
	b := NewBudget(0)
	if !b.Exhausted() {
		t.Fatal("zero budget must be exhausted immediately")
	}
	if err := b.Sleep(context.Background(), Policy{}, 0); err != ErrBudgetExhausted {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

// TestBudgetSleepClampsToRemaining checks the last sleep never overruns the
// cap: a policy delay far beyond the remaining budget returns in roughly
// the remaining time.
func TestBudgetSleepClampsToRemaining(t *testing.T) {
	b := NewBudget(20 * time.Millisecond)
	p := Policy{Base: time.Hour, Jitter: -1}
	start := time.Now()
	if err := b.Sleep(context.Background(), p, 0); err != nil {
		t.Fatalf("clamped sleep: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sleep ran %v, want ~20ms (clamped to budget)", elapsed)
	}
	if err := b.Sleep(context.Background(), p, 1); err != ErrBudgetExhausted {
		t.Fatalf("follow-up sleep: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestBudgetSleepHonorsCancelledContext(t *testing.T) {
	b := NewBudget(time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Sleep(ctx, Policy{Base: time.Hour, Jitter: -1}, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx2, Policy{Base: time.Hour, Jitter: -1}, 0) }()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	if err := <-done; err != context.Canceled {
		t.Fatalf("mid-sleep cancel: err = %v, want context.Canceled", err)
	}
}
