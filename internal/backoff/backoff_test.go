package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayGrowsAndCaps: jitter-free delays grow geometrically then
// saturate at Max.
func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(1 << 20); got != 2*time.Second {
		t.Errorf("huge attempt: Delay = %v, want cap", got)
	}
}

// TestJitterStaysInWindow: jittered delays land in [d·(1−J), d], and a
// fixed seed reproduces the exact schedule.
func TestJitterStaysInWindow(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 17}
	q := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 17}
	bare := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	for i := 0; i < 8; i++ {
		full := bare.Delay(i)
		d := p.Delay(i)
		if d > full || d < full/2 {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", i, d, full/2, full)
		}
		if d2 := q.Delay(i); d2 != d {
			t.Errorf("same seed, Delay(%d) = %v then %v", i, d, d2)
		}
	}
}

// TestZeroValueUsable: the zero Policy has sane defaults.
func TestZeroValueUsable(t *testing.T) {
	var p Policy
	d0 := p.Delay(0)
	if d0 <= 0 || d0 > 100*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want (0, 100ms]", d0)
	}
	if d := p.Delay(100); d > 5*time.Second {
		t.Errorf("zero-value Delay(100) = %v exceeds the default cap", d)
	}
}

// TestSleepHonorsCancelledContext: cancellation mid-sleep returns promptly
// with the context error — the satellite contract for every retry loop
// built on this package.
func TestSleepHonorsCancelledContext(t *testing.T) {
	p := Policy{Base: 10 * time.Second, Max: 10 * time.Second, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep ignored cancellation")
	}
	// An already-cancelled context never sleeps at all.
	t0 := time.Now()
	if err := p.Sleep(ctx, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Sleep returned %v", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("pre-cancelled Sleep blocked")
	}
}
