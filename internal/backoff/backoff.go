// Package backoff is the repo's one retry-delay policy: capped exponential
// growth with jitter, every sleep cancellable by context. The sweep
// worker's coordinator round trips (lease, result, grid fetch) and the
// flashbench coordinator's snapshot merge all share it, replacing the
// fixed-interval retries they each hand-rolled — fixed intervals
// synchronize retry storms exactly when a recovering coordinator can least
// afford them.
//
// Jitter is drawn deterministically from a seed so chaos runs and tests
// reproduce their exact sleep schedules; a zero seed draws from the global
// math/rand source, which is what production callers want.
package backoff

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy shapes a retry-delay sequence. The zero value is usable: 100ms
// base, 5s cap, factor 2, half-width jitter, non-deterministic seed.
type Policy struct {
	// Base is the delay before the first retry (<= 0: 100ms).
	Base time.Duration
	// Max caps the grown delay, pre-jitter (<= 0: 5s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (< 1: 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the slept
	// delay is uniform in [d·(1−Jitter), d]. Negative disables jitter;
	// zero selects the 0.5 default. Values above 1 clamp to 1.
	Jitter float64
	// Seed fixes the jitter stream for reproducible schedules; 0 draws
	// from the global math/rand source instead.
	Seed int64
}

func (p Policy) norm() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// mix is the splitmix64 finalizer, the deterministic jitter hash.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Delay returns the delay before retry number attempt (0-based): Base
// grown by Factor^attempt, capped at Max, jittered downward. The growth is
// computed multiplicatively with an overflow guard, so huge attempt counts
// saturate at Max instead of wrapping.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.norm()
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		next := time.Duration(float64(d) * p.Factor)
		if next <= d { // overflow or factor rounding down
			next = p.Max
		}
		d = next
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 && d > 0 {
		span := time.Duration(p.Jitter * float64(d))
		if span > 0 {
			var r uint64
			if p.Seed != 0 {
				r = mix(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(attempt))
			} else {
				r = rand.Uint64()
			}
			d -= time.Duration(r % uint64(span+1))
		}
	}
	return d
}

// ErrBudgetExhausted reports that a retry Budget's total-elapsed cap has
// run out: the loop should stop retrying and degrade instead.
var ErrBudgetExhausted = errors.New("backoff: retry budget exhausted")

// Budget caps the total wall-clock time a retry loop may consume across
// all of its attempts, independent of how many retries the policy's
// per-attempt delays would permit. Per-attempt backoff alone cannot bound
// a loop whose work keeps failing fast — a throttle storm that defeats
// every repair attempt in milliseconds would spin indefinitely — so
// latency-budgeted loops pair a Policy (spacing) with a Budget (ceiling).
type Budget struct {
	// Total is the elapsed-time cap, measured from NewBudget. A
	// non-positive Total is exhausted immediately: a zero budget means no
	// retries at all, not unlimited ones.
	Total time.Duration

	start time.Time
	clock func() time.Time // test hook; nil = time.Now
}

// NewBudget starts a budget of the given total, measured from now.
func NewBudget(total time.Duration) *Budget {
	return &Budget{Total: total, start: time.Now()}
}

func (b *Budget) now() time.Time {
	if b.clock != nil {
		return b.clock()
	}
	return time.Now()
}

// Remaining returns the unspent portion of the budget, zero once
// exhausted.
func (b *Budget) Remaining() time.Duration {
	r := b.Total - b.now().Sub(b.start)
	if r < 0 {
		return 0
	}
	return r
}

// Exhausted reports whether the budget has run out.
func (b *Budget) Exhausted() bool { return b.Remaining() <= 0 }

// Sleep blocks for the policy's Delay(attempt) clamped to the remaining
// budget. It returns ErrBudgetExhausted without sleeping when nothing
// remains, or ctx's error if the context ends first — so a budgeted retry
// loop terminates on whichever of cap expiry or cancellation comes first.
func (b *Budget) Sleep(ctx context.Context, p Policy, attempt int) error {
	rem := b.Remaining()
	if rem <= 0 {
		return ErrBudgetExhausted
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	d := p.Delay(attempt)
	if d > rem {
		d = rem
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sleep blocks for Delay(attempt) or until ctx ends, returning ctx's error
// in that case — the one retry-sleep primitive, so no retry loop can ever
// outlive its caller's cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
