// Package backoff is the repo's one retry-delay policy: capped exponential
// growth with jitter, every sleep cancellable by context. The sweep
// worker's coordinator round trips (lease, result, grid fetch) and the
// flashbench coordinator's snapshot merge all share it, replacing the
// fixed-interval retries they each hand-rolled — fixed intervals
// synchronize retry storms exactly when a recovering coordinator can least
// afford them.
//
// Jitter is drawn deterministically from a seed so chaos runs and tests
// reproduce their exact sleep schedules; a zero seed draws from the global
// math/rand source, which is what production callers want.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy shapes a retry-delay sequence. The zero value is usable: 100ms
// base, 5s cap, factor 2, half-width jitter, non-deterministic seed.
type Policy struct {
	// Base is the delay before the first retry (<= 0: 100ms).
	Base time.Duration
	// Max caps the grown delay, pre-jitter (<= 0: 5s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (< 1: 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the slept
	// delay is uniform in [d·(1−Jitter), d]. Negative disables jitter;
	// zero selects the 0.5 default. Values above 1 clamp to 1.
	Jitter float64
	// Seed fixes the jitter stream for reproducible schedules; 0 draws
	// from the global math/rand source instead.
	Seed int64
}

func (p Policy) norm() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// mix is the splitmix64 finalizer, the deterministic jitter hash.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Delay returns the delay before retry number attempt (0-based): Base
// grown by Factor^attempt, capped at Max, jittered downward. The growth is
// computed multiplicatively with an overflow guard, so huge attempt counts
// saturate at Max instead of wrapping.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.norm()
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		next := time.Duration(float64(d) * p.Factor)
		if next <= d { // overflow or factor rounding down
			next = p.Max
		}
		d = next
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 && d > 0 {
		span := time.Duration(p.Jitter * float64(d))
		if span > 0 {
			var r uint64
			if p.Seed != 0 {
				r = mix(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(attempt))
			} else {
				r = rand.Uint64()
			}
			d -= time.Duration(r % uint64(span+1))
		}
	}
	return d
}

// Sleep blocks for Delay(attempt) or until ctx ends, returning ctx's error
// in that case — the one retry-sleep primitive, so no retry loop can ever
// outlive its caller's cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
