package opg

import (
	"sort"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
)

// This file is the window solver: one rolling window's C4 fallback ladder,
// refactored from direct solver-state mutation into a pure function of a
// confined state view. Every read of capRemaining/inflight goes through a
// winView accessor that (a) clamps the value to the coarsest form the
// model actually depends on — min(chunks, relax·cap) variable bounds,
// capacity-bearing booleans, C2/C3 limits clamped at the row's own ceiling
// — and (b) appends the read to a replayable trace. Writes accumulate in
// window-local delta arrays. The speculative pipeline (pipeline.go) relies
// on both properties: a window solved against predicted state commits iff
// replaying its trace against the true state reproduces every value, which
// guarantees the committed result is byte-identical to a sequential solve;
// the clamps make that validation succeed whenever upstream consumption
// did not actually reach the quantities this window's model depends on.

// window is one rolling-window batch, enumerated up front. Its state reads
// and writes are confined to layers [off, end).
type window struct {
	batch []weightItem
	off   int // earliest readable layer: max(0, first node - Window)
	end   int // last consuming node (exclusive bound on reads and writes)
}

// enumerateWindows batches weights by consumption layer exactly like the
// sequential §3.1 loop always has.
func enumerateWindows(weights []weightItem, span int) []window {
	var out []window
	for start := 0; start < len(weights); {
		end := start + 1
		windowEnd := int(weights[start].node) + span
		for end < len(weights) && int(weights[end].node) < windowEnd {
			end++
		}
		batch := weights[start:end]
		off := int(batch[0].node) - span
		if off < 0 {
			off = 0
		}
		out = append(out, window{batch: batch, off: off, end: int(batch[len(batch)-1].node)})
		start = end
	}
	return out
}

// readKind tags one canonical read in a window's trace.
type readKind uint8

const (
	readCapPos  readKind = iota // (cap[l]-a) > 0 — candidate bearing status
	readCapMin                  // min(cap[l]-a, b) — prefilter capacity sums
	readHisMin                  // min(b, ⌊f·(cap[l]-a)⌋) — x bounds and C3 limits
	readC2Lim                   // min(b, min_{l≤i<to} mpeakSlack(i)) — C2 row limits
	readCapEq                   // cap[l] == val — greedy fallback, exact
	readInEq                    // inflight[l] == val — greedy fallback, exact
	readMPeakGT                 // (b > MPeak) — structural-preload prefilter
	readMPeakEq                 // MPeak == val — greedy ran; exact budget dependence
)

// readRec is one recorded canonical read; replayRead re-evaluates it
// against another state.
type readRec struct {
	kind  readKind
	layer int32
	to    int32 // readC2Lim: exclusive segment end
	a, b  int64
	f     float64
	val   int64
}

func evalGT(a, b int64) int64 {
	if a > b {
		return 1
	}
	return 0
}

func evalCapPos(cap, a int64) int64 {
	if cap-a > 0 {
		return 1
	}
	return 0
}

func evalCapMin(cap, a, b int64) int64 {
	if v := cap - a; v < b {
		return v
	}
	return b
}

func evalHisMin(cap, a, b int64, f float64) int64 {
	if v := int64(f * float64(cap-a)); v < b {
		return v
	}
	return b
}

// evalC2Lim mirrors the old mpeakSlackChunks segment minimum, clamped at
// the row's own ceiling (the sum of its variables' upper bounds — a larger
// limit can never propagate, so the clamp is semantically free and keeps
// the recorded value insensitive to irrelevant in-flight deltas).
func evalC2Lim(infl []int64, from, to int, rowCap, mpeak, chunk int64) int64 {
	v := rowCap
	for l := from; l < to; l++ {
		s := mpeak - infl[l]
		if s < 0 {
			s = 0
		}
		if s /= chunk; s < v {
			v = s
		}
	}
	return v
}

// winView confines one window solve: clamped, trace-recorded reads over
// base state plus window-local write deltas.
type winView struct {
	cfg     *Config
	baseCap []int
	baseIn  []int64
	off     int
	capUsed []int   // window-local capacity consumption, by layer-off
	inAdd   []int64 // window-local in-flight additions, by layer-off
	traced  bool
	trace   []readRec
}

func newWinView(cfg *Config, win window, baseCap []int, baseIn []int64, traced bool) *winView {
	n := win.end - win.off
	if n < 1 {
		n = 1
	}
	return &winView{
		cfg: cfg, baseCap: baseCap, baseIn: baseIn, off: win.off,
		capUsed: make([]int, n), inAdd: make([]int64, n), traced: traced,
	}
}

func (v *winView) rec(r readRec) {
	if v.traced {
		v.trace = append(v.trace, r)
	}
}

// capPos reports whether layer l still bears capacity.
func (v *winView) capPos(l int) bool {
	a := int64(v.capUsed[l-v.off])
	val := evalCapPos(int64(v.baseCap[l]), a)
	v.rec(readRec{kind: readCapPos, layer: int32(l), a: a, val: val})
	return val == 1
}

// capMin returns the remaining capacity of l clamped at need.
func (v *winView) capMin(l int, need int64) int64 {
	a := int64(v.capUsed[l-v.off])
	val := evalCapMin(int64(v.baseCap[l]), a, need)
	v.rec(readRec{kind: readCapMin, layer: int32(l), a: a, b: need, val: val})
	return val
}

// hisMin returns min(chunks, ⌊relax·cap⌋): the x-variable bound of one
// (weight, layer) column, also reused for the C3 limit clamp.
func (v *winView) hisMin(l int, chunks int64, relax float64) int64 {
	a := int64(v.capUsed[l-v.off])
	val := evalHisMin(int64(v.baseCap[l]), a, chunks, relax)
	v.rec(readRec{kind: readHisMin, layer: int32(l), a: a, b: chunks, f: relax, val: val})
	return val
}

// c2Lim returns the C2 limit of the segment [from, to): the in-flight
// slack minimum clamped at the row's ceiling. Only valid before any local
// in-flight writes (CP model builds precede all mutation).
func (v *winView) c2Lim(from, to int, rowCap int64) int64 {
	val := evalC2Lim(v.baseIn, from, to, rowCap, int64(v.cfg.MPeak), int64(v.cfg.ChunkSize))
	v.rec(readRec{kind: readC2Lim, layer: int32(from), to: int32(to), b: rowCap, val: val})
	return val
}

// capExact returns the effective remaining capacity of l, recording the
// base value exactly (greedy's sequential consumption cannot be clamped).
func (v *winView) capExact(l int) int {
	base := v.baseCap[l]
	v.rec(readRec{kind: readCapEq, layer: int32(l), val: int64(base)})
	return base - v.capUsed[l-v.off]
}

// inExact returns the effective in-flight bytes at l, recording the base
// value exactly.
func (v *winView) inExact(l int) int64 {
	base := v.baseIn[l]
	v.rec(readRec{kind: readInEq, layer: int32(l), val: base})
	return base + v.inAdd[l-v.off]
}

// mpeakGT reports whether b bytes exceed the in-flight budget, recording
// the comparison. The structural-preload prefilter depends on cfg.MPeak,
// which capacity and in-flight reads alone cannot see — without this
// record, a repair replay (repair.go) could wrongly keep a window across a
// budget step that flips the preload decision.
func (v *winView) mpeakGT(b int64) bool {
	val := evalGT(b, int64(v.cfg.MPeak))
	v.rec(readRec{kind: readMPeakGT, b: b, val: val})
	return val == 1
}

// mpeakStamp records the exact in-flight budget. Greedy's slack arithmetic
// depends continuously on cfg.MPeak (slack = MPeak − inflight at every
// step), so a greedy-solved window is replay-valid under another budget
// only if the budget is unchanged.
func (v *winView) mpeakStamp() {
	v.rec(readRec{kind: readMPeakEq, val: int64(v.cfg.MPeak)})
}

// use consumes n chunks of capacity at l (negative to roll back).
func (v *winView) use(l, n int) { v.capUsed[l-v.off] += n }

// addInflight keeps n chunks in flight on [l, node).
func (v *winView) addInflight(l, node graph.NodeID, n int) {
	d := int64(n) * int64(v.cfg.ChunkSize)
	for ll := int(l); ll < int(node); ll++ {
		v.inAdd[ll-v.off] += d
	}
}

// windowStats is one window's share of SolveStats.
type windowStats struct {
	buildTime, solveTime                         time.Duration
	branches, wakes, trailOps, nogoods, restarts int64
	conflicts, backjumps, minimizedLits          int64
	importedNogoods                              int64
	fallbacks                                    FallbackStats
	degraded                                     bool // plan not proven optimal
}

// rungRecord captures one CP rung of a speculative solve for warm recommits:
// the model it was built against, the pure (objective-free) nogoods the solve
// exported, and whether the rung was proven infeasible. A later re-solve of
// the same window on the true state replays the same ladder; when its rung
// model is uniformly at-least-as-tight (cpsat.ImportCompatible — speculative
// snapshots are uniformly looser, since capacity only shrinks and in-flight
// only grows between claim and commit), the exported nogoods are still valid
// cuts, and a proven-infeasible rung is still infeasible without solving.
type rungRecord struct {
	relax      float64
	model      *cpsat.Model
	nogoods    []cpsat.Nogood
	infeasible bool
}

// windowResult is a window solve's complete effect: plan entries, state
// deltas, stats, and the canonical read trace.
type windowResult struct {
	weights []WeightPlan
	off     int
	capUsed []int
	inAdd   []int64
	stats   windowStats
	trace   []readRec

	// rungs is the per-rung export record, populated only on speculative
	// solves under Config.WarmRecommit (sequential and direct solves never
	// feed a recommit, so recording there would be dead weight).
	rungs []rungRecord

	// wallClocked marks a solve some CP rung of which hit its wall-clock
	// budget: the result is timing-dependent, so the pipeline never commits
	// it speculatively (the re-solve on true state is what sequential
	// semantics would have produced).
	wallClocked bool
}

// replayOK re-evaluates a traced window solve's canonical reads against
// the true state: equality means the solve consumed exactly the inputs the
// true state provides, so its result is byte-identical to what a
// sequential solve would produce.
func replayOK(res *windowResult, cfg *Config, capR []int, infl []int64) bool {
	for i := range res.trace {
		r := &res.trace[i]
		l := int(r.layer)
		switch r.kind {
		case readCapPos:
			if evalCapPos(int64(capR[l]), r.a) != r.val {
				return false
			}
		case readCapMin:
			if evalCapMin(int64(capR[l]), r.a, r.b) != r.val {
				return false
			}
		case readHisMin:
			if evalHisMin(int64(capR[l]), r.a, r.b, r.f) != r.val {
				return false
			}
		case readC2Lim:
			if evalC2Lim(infl, l, int(r.to), r.b, int64(cfg.MPeak), int64(cfg.ChunkSize)) != r.val {
				return false
			}
		case readCapEq:
			if int64(capR[l]) != r.val {
				return false
			}
		case readInEq:
			if infl[l] != r.val {
				return false
			}
		case readMPeakGT:
			if evalGT(r.b, int64(cfg.MPeak)) != r.val {
				return false
			}
		case readMPeakEq:
			if int64(cfg.MPeak) != r.val {
				return false
			}
		}
	}
	return true
}

// winSolver runs the fallback ladder for one window against a view.
type winSolver struct {
	cfg *Config
	v   *winView
	win window
	res *windowResult

	// warm is the doomed speculative result this solve replaces (recommit
	// path only): its rung records seed matching CP rungs with imported
	// nogoods or skip rungs it proved infeasible. recordExports marks the
	// converse role — a speculative solve that should capture rung records
	// for a potential recommit.
	warm          *windowResult
	recordExports bool

	// bearing memoizes per-layer capacity-bearing status over [off, end):
	// 0 unprobed, 1 bearing, 2 empty. The ladder's CP rungs never mutate
	// capacity, so each layer is probed (and traced) at most once per
	// window instead of the per-weight re-walk of capRemaining that
	// candidates() used to do. Probing stays lazy so the recorded read set
	// is exactly what the scans actually consult — an eager full-range
	// scan would make speculative validation reject on layers no candidate
	// scan ever reaches.
	bearing []uint8
}

// bearingAt probes (once) whether layer l bears capacity.
func (ws *winSolver) bearingAt(l int) bool {
	switch ws.bearing[l-ws.win.off] {
	case 1:
		return true
	case 2:
		return false
	}
	if ws.v.capPos(l) {
		ws.bearing[l-ws.win.off] = 1
		return true
	}
	ws.bearing[l-ws.win.off] = 2
	return false
}

// solveWindow runs one window's ladder and returns its complete effect.
// warm, non-nil only on a WarmRecommit re-solve, is the failed speculative
// result whose rung records seed this solve.
func solveWindow(cfg *Config, win window, baseCap []int, baseIn []int64, traced bool, warm *windowResult) *windowResult {
	v := newWinView(cfg, win, baseCap, baseIn, traced)
	ws := &winSolver{
		cfg: cfg, v: v, win: win,
		res:  &windowResult{off: win.off},
		warm: warm,
		// Speculative solves are the only traced ones; they are the only
		// results a recommit can be warmed from.
		recordExports: traced && cfg.WarmRecommit,
	}
	ws.bearing = make([]uint8, win.end-win.off)
	ws.solveBatch(win.batch)
	ws.res.capUsed = v.capUsed
	ws.res.inAdd = v.inAdd
	ws.res.trace = v.trace
	return ws.res
}

// candidates returns the transform-layer candidates for a weight: the
// nearest MaxCandidates preceding capacity-bearing layers within the
// window, newest first, via the memoized bearing bitmap.
func (ws *winSolver) candidates(w weightItem) []graph.NodeID {
	var out []graph.NodeID
	lo := int(w.node) - ws.cfg.Window
	if lo < 0 {
		lo = 0
	}
	for l := int(w.node) - 1; l >= lo && len(out) < MaxCandidates; l-- {
		if ws.bearingAt(l) {
			out = append(out, graph.NodeID(l))
		}
	}
	return out
}

// solveBatch schedules one window of weights with the C4 fallback ladder.
func (ws *winSolver) solveBatch(batch []weightItem) {
	// Structurally unstreamable weights go straight into W, as §3.1
	// prescribes for the first layers: no candidate layers, candidate
	// capacity that cannot cover the chunk count even optimistically, or a
	// tensor bigger than the whole in-flight budget. Filtering them here
	// keeps one impossible weight from poisoning the window CP.
	var items []weightItem
	var cands [][]graph.NodeID
	for _, w := range batch {
		wCands := ws.candidates(w)
		var capSum int64
		for _, l := range wCands {
			capSum += ws.v.capMin(int(l), int64(w.chunks))
		}
		switch {
		case len(wCands) == 0, capSum < int64(w.chunks):
			ws.preload(w)
		case ws.v.mpeakGT(int64(w.chunks) * int64(ws.cfg.ChunkSize)):
			ws.preload(w)
		default:
			items = append(items, w)
			cands = append(cands, wCands)
		}
	}
	if len(items) == 0 {
		return
	}

	// Ladder rung 1: CP at nominal capacity, no preloading — streaming is
	// the goal; W is the fallback, as the objective's λ weighting encodes.
	ok, proven := ws.tryCP(items, cands, 1.0)
	if ok {
		return
	}
	if !proven {
		// Hybrid execution mode (§3.2): the budget expired without proving
		// infeasibility, so relaxation and preloading would not help —
		// switch straight to the heuristic on the full batch.
		ws.res.stats.fallbacks.Greedy++
		ws.res.stats.degraded = true
		ws.greedy(items)
		return
	}
	// Rung 2: soft thresholding (C4) against proven capacity shortfalls.
	ws.res.stats.fallbacks.SoftThreshold++
	if ok, _ = ws.tryCP(items, cands, ws.cfg.SoftThreshold); ok {
		return
	}
	// Rung 3: incremental preloading — peel the largest weights into W and
	// retry the CP on the remainder.
	order := append([]weightItem(nil), items...)
	sort.Slice(order, func(i, j int) bool { return order[i].bytes > order[j].bytes })
	rest, restCands := items, cands
	for k := 0; k < 3 && len(rest) > 1; k++ {
		biggest := order[k].node
		ws.preload(order[k])
		kept := rest[:0:0]
		keptCands := restCands[:0:0]
		for i, w := range rest {
			if w.node != biggest {
				kept = append(kept, w)
				keptCands = append(keptCands, restCands[i])
			}
		}
		rest, restCands = kept, keptCands
		ws.res.stats.fallbacks.IncrementalPreload++
		if ok, _ = ws.tryCP(rest, restCands, ws.cfg.SoftThreshold); ok {
			return
		}
	}
	// Rung 4: greedy heuristic backup. Always succeeds.
	ws.res.stats.fallbacks.Greedy++
	ws.res.stats.degraded = true
	ws.greedy(rest)
}

// tryCP builds and solves the window CP model (streaming only — preloading
// is handled by the outer ladder). On success it applies the solution to
// the view and reports ok; otherwise `proven` distinguishes proven
// infeasibility from a budget-expired Unknown. Candidate sets are passed
// in from the prefilter instead of re-scanned.
func (ws *winSolver) tryCP(batch []weightItem, cands [][]graph.NodeID, relax float64) (ok, proven bool) {
	if len(batch) == 0 {
		return true, true
	}
	cfg := ws.cfg
	tBuild := time.Now()
	m := cpsat.NewModel()

	type weightVars struct {
		w      weightItem
		layers []graph.NodeID
		xs     []cpsat.Var
		his    []int64 // xs[i]'s upper bound, for row-ceiling clamps
		z      cpsat.Var
	}
	var wvs []weightVars
	perLayerX := map[graph.NodeID][]cpsat.Var{}
	perLayerHi := map[graph.NodeID]int64{}

	var objVars []cpsat.Var
	var objCoefs []int64
	// Objective: (1−λ)·Σ(i_w − z_w) plus a tiny proximity tie-break on x
	// assignments (nearer layers cost less, encoding "load closer to
	// execution"). The λ·|W| term lives in the fallback ladder: preloads
	// only happen when streaming is infeasible.
	distCoef := int64((1-cfg.Lambda)*100) + 1

	for bi, w := range batch {
		layers := cands[bi]
		wv := weightVars{w: w, layers: layers}
		lo := int64(int(w.node) - cfg.Window)
		if lo < 0 {
			lo = 0
		}

		// Root reduction, part 1: fix trivially-forced x-vars. When the
		// candidates' (relaxed) capacities sum to exactly T(w) — which
		// includes every single-candidate weight — any solution must fill
		// every column to its cap, so the variables enter the model fixed,
		// their C0 row is redundant, and z collapses to the earliest used
		// layer. The CP then never branches on them.
		his := make([]int64, len(layers))
		wv.his = his
		var hiSum int64
		for i, l := range layers {
			his[i] = ws.v.hisMin(int(l), int64(w.chunks), relax)
			hiSum += his[i]
		}
		if hiSum < int64(w.chunks) {
			// Unreachable given solveBatch's prefilter, but if capacities
			// cannot cover the weight even at their caps the window is
			// infeasible as built.
			ws.res.stats.buildTime += time.Since(tBuild)
			return false, true
		}
		if hiSum == int64(w.chunks) {
			for i, l := range layers {
				x := m.NewIntVar(his[i], his[i], "x")
				wv.xs = append(wv.xs, x)
				perLayerX[l] = append(perLayerX[l], x)
				perLayerHi[l] += his[i]
			}
			earliest := int64(layers[len(layers)-1]) // newest-first ordering
			wv.z = m.NewIntVar(earliest, earliest, "z")
			wvs = append(wvs, wv)
			continue
		}

		wv.z = m.NewIntVar(lo, int64(w.node)-1, "z")
		var c0Vars []cpsat.Var
		var c0Coefs []int64
		for rank, l := range layers {
			x := m.NewIntVar(0, his[rank], "x")
			wv.xs = append(wv.xs, x)
			perLayerX[l] = append(perLayerX[l], x)
			perLayerHi[l] += his[rank]
			c0Vars = append(c0Vars, x)
			c0Coefs = append(c0Coefs, 1)
			// C1: (x ≥ 1) ⇒ (z ≤ ℓ).
			m.AddImplication(x, 1, wv.z, int64(l))
			// Proximity tie-break (rank 0 = nearest to consumption; its
			// zero coefficient would be dead weight in the objective row).
			if rank > 0 {
				objVars = append(objVars, x)
				objCoefs = append(objCoefs, int64(rank))
			}
		}
		// C0: Σ_ℓ x_{w,ℓ} = T(w).
		m.AddLinearEQ(c0Vars, c0Coefs, int64(w.chunks))

		// Distance term: minimizing (i_w − z) ⇔ maximizing z.
		objVars = append(objVars, wv.z)
		objCoefs = append(objCoefs, -distCoef)
		wvs = append(wvs, wv)
	}

	// C3: joint per-layer capacity, clamped at the row's own ceiling (the
	// columns' bound sum — a looser limit never propagates). Rows are
	// emitted in layer order, not map order: the model (and with it the
	// trace, wake and trail counts) must be a pure function of the inputs,
	// not of Go's map iteration randomization.
	c3Layers := make([]graph.NodeID, 0, len(perLayerX))
	for l := range perLayerX {
		c3Layers = append(c3Layers, l)
	}
	sort.Slice(c3Layers, func(i, j int) bool { return c3Layers[i] < c3Layers[j] })
	for _, l := range c3Layers {
		xs := perLayerX[l]
		limit := ws.v.hisMin(int(l), perLayerHi[l], relax)
		m.AddLinearLE(xs, onesOf(len(xs)), limit)
	}

	// C2: cumulative in-flight transformed chunks. A chunk transformed at
	// ℓ' stays in flight on [ℓ', i_w), so every layer from the earliest
	// candidate to the last consumption in the window is constrained.
	//
	// Root reduction, part 2: merge duplicate rows. The row's term set only
	// changes at a breakpoint — a layer where some candidate column enters
	// (ℓ' = l) or some consuming node drops its terms (i_w = l). All layers
	// between two breakpoints would emit the same left-hand side, so the
	// run collapses to a single row bounded by the tightest slack in the
	// segment — typically shrinking the window CP by an order of magnitude
	// in rows for sparse windows.
	loLayer, hiLayer := graph.NodeID(1<<30), graph.NodeID(0)
	for _, wv := range wvs {
		for _, l := range wv.layers {
			if l < loLayer {
				loLayer = l
			}
		}
		if wv.w.node > hiLayer {
			hiLayer = wv.w.node
		}
	}
	var breaks []graph.NodeID
	if loLayer < hiLayer {
		seen := map[graph.NodeID]bool{loLayer: true}
		breaks = append(breaks, loLayer)
		addBreak := func(l graph.NodeID) {
			if l > loLayer && l < hiLayer && !seen[l] {
				seen[l] = true
				breaks = append(breaks, l)
			}
		}
		for _, wv := range wvs {
			for _, l := range wv.layers {
				addBreak(l)
			}
			addBreak(wv.w.node)
		}
		sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })
	}
	for bi, b := range breaks {
		segEnd := hiLayer
		if bi+1 < len(breaks) {
			segEnd = breaks[bi+1]
		}
		var vars []cpsat.Var
		var coefs []int64
		var rowCap int64
		for _, wv := range wvs {
			if wv.w.node <= b {
				continue // consumed at or before the segment
			}
			for i, al := range wv.layers {
				if al <= b {
					vars = append(vars, wv.xs[i])
					coefs = append(coefs, 1)
					rowCap += wv.his[i]
				}
			}
		}
		if len(vars) == 0 {
			continue
		}
		limit := ws.v.c2Lim(int(b), int(segEnd), rowCap)
		m.AddLinearLE(vars, coefs, limit)
	}

	m.Minimize(objVars, objCoefs)

	// Warm recommit: match this rung against the doomed speculative solve's
	// records. A record applies when it ran at the same relaxation and this
	// model is uniformly at-least-as-tight as its model — then a rung the
	// speculation proved infeasible is infeasible here too (skip the solve
	// outright), and its exported objective-free nogoods are valid cuts.
	var imports []cpsat.Nogood
	if ws.warm != nil {
		for i := range ws.warm.rungs {
			rr := &ws.warm.rungs[i]
			if rr.relax == relax && cpsat.ImportCompatible(rr.model, m) {
				if rr.infeasible {
					ws.res.stats.buildTime += time.Since(tBuild)
					return false, true
				}
				imports = rr.nogoods
				break
			}
		}
	}
	ws.res.stats.buildTime += time.Since(tBuild)

	learn, restartOnly := cfg.learnOptions()
	tSolve := time.Now()
	res := m.Solve(cpsat.Options{
		TimeLimit:   cfg.SolveTimeout,
		MaxBranches: cfg.MaxBranches,
		// Conflict-driven learning with the package-default Luby unit:
		// zero-yield restart damping in cpsat keeps it free on windows
		// whose shape learning cannot help.
		Learn:       learn,
		RestartOnly: restartOnly,
		Import:      imports,
	})
	ws.res.stats.solveTime += time.Since(tSolve)
	ws.res.stats.branches += res.Branches
	ws.res.stats.wakes += res.Wakes
	ws.res.stats.trailOps += res.TrailOps
	ws.res.stats.nogoods += res.Nogoods
	ws.res.stats.restarts += res.Restarts
	ws.res.stats.conflicts += res.Conflicts
	ws.res.stats.backjumps += res.Backjumps
	ws.res.stats.minimizedLits += res.MinimizedLits
	ws.res.stats.importedNogoods += res.ImportedNogoods
	if res.TimedOut {
		ws.res.wallClocked = true
	}
	if ws.recordExports {
		ws.res.rungs = append(ws.res.rungs, rungRecord{
			relax:      relax,
			model:      m,
			nogoods:    res.Learned,
			infeasible: res.Status == cpsat.Infeasible,
		})
	}

	if res.Status != cpsat.Optimal && res.Status != cpsat.Feasible {
		return false, res.Status == cpsat.Infeasible
	}
	if res.Status == cpsat.Feasible || relax > 1.0 {
		// Time-limited or soft-thresholded plans are not proven optimal.
		ws.res.stats.degraded = true
	}

	// Apply the solution.
	for _, wv := range wvs {
		wp := WeightPlan{Weight: wv.w.node, Bytes: wv.w.bytes, Chunks: wv.w.chunks}
		minLayer := wv.w.node
		for i, l := range wv.layers {
			n := int(res.Value(wv.xs[i]))
			if n == 0 {
				continue
			}
			wp.Transforms = append(wp.Transforms, Assignment{Layer: l, Chunks: n})
			ws.v.use(int(l), n)
			ws.v.addInflight(l, wv.w.node, n)
			if l < minLayer {
				minLayer = l
			}
		}
		z := graph.NodeID(res.Value(wv.z))
		if z > minLayer {
			z = minLayer
		}
		wp.LoadStart = z
		sort.Slice(wp.Transforms, func(i, j int) bool { return wp.Transforms[i].Layer < wp.Transforms[j].Layer })
		ws.res.weights = append(ws.res.weights, wp)
	}
	return true, true
}

// greedy is the rung-4 heuristic: fill chunks backwards from the consuming
// layer through capacity-bearing candidates under the M_peak budget;
// whatever does not fit is preloaded. Its reads are sequentially dependent
// on its own consumption, so they trace the base values exactly rather
// than clamped.
func (ws *winSolver) greedy(batch []weightItem) {
	cfg := ws.cfg
	ws.v.mpeakStamp()
	slackAt := func(l int) int {
		slack := int64(cfg.MPeak) - ws.v.inExact(l)
		if slack <= 0 {
			return 0
		}
		return int(slack / int64(cfg.ChunkSize))
	}
	for _, w := range batch {
		remaining := w.chunks
		wp := WeightPlan{Weight: w.node, Bytes: w.bytes, Chunks: w.chunks}
		lo := int(w.node) - cfg.Window
		if lo < 0 {
			lo = 0
		}
		for l := int(w.node) - 1; l >= lo && remaining > 0; l-- {
			// A chunk placed at l is in flight on [l, i_w): the binding
			// M_peak slack is the minimum over that whole interval.
			slack := slackAt(l)
			for ll := l + 1; ll < int(w.node); ll++ {
				if sl := slackAt(ll); sl < slack {
					slack = sl
				}
			}
			avail := minInt(ws.v.capExact(l), slack)
			if avail <= 0 {
				continue
			}
			n := minInt(avail, remaining)
			wp.Transforms = append(wp.Transforms, Assignment{Layer: graph.NodeID(l), Chunks: n})
			ws.v.use(l, n)
			ws.v.addInflight(graph.NodeID(l), w.node, n)
			remaining -= n
		}
		if remaining > 0 {
			// Roll back partial placement and preload instead: partially
			// streamed weights would still hold a full UM copy.
			for _, a := range wp.Transforms {
				ws.v.use(int(a.Layer), -a.Chunks)
				ws.v.addInflight(a.Layer, w.node, -a.Chunks)
			}
			ws.preload(w)
			continue
		}
		sort.Slice(wp.Transforms, func(i, j int) bool { return wp.Transforms[i].Layer < wp.Transforms[j].Layer })
		wp.LoadStart = wp.Transforms[0].Layer
		ws.res.weights = append(ws.res.weights, wp)
	}
}

// preload commits a weight to the preload set W.
func (ws *winSolver) preload(w weightItem) {
	ws.res.weights = append(ws.res.weights, WeightPlan{
		Weight: w.node, Bytes: w.bytes, Chunks: w.chunks, Preload: true,
	})
}
