package opg

import (
	"sort"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
	"repro/internal/units"
)

// MaxCandidates bounds how many preceding layers a weight may be assigned
// to. The paper notes L(w)'s indices "are not required to be continuous;
// layers within this range can be selectively chosen" — we keep the nearest
// capacity-bearing layers, which both shrinks the CP model and prefers
// low-residency assignments.
const MaxCandidates = 12

// weightItem is one weight tensor to schedule.
type weightItem struct {
	node   graph.NodeID
	bytes  units.Bytes
	chunks int
}

type solver struct {
	g    *graph.Graph
	caps Capacity
	cfg  Config

	capRemaining []int   // per-layer remaining capacity, chunks
	inflight     []int64 // per-layer committed in-flight bytes

	plan  *Plan
	stats *SolveStats
}

// AdaptMPeak applies the Adaptive Peak Memory Control of Table 3: the
// in-flight budget scales with model size so that a single large weight
// tensor (e.g. a 70B model's half-gigabyte FC matrix) can still be
// scheduled rather than degenerating to full preload. The default 500 MB
// stands for on-device-scale models.
func AdaptMPeak(cfg Config, g *graph.Graph) Config {
	if adaptive := g.TotalWeightBytes() / 16; adaptive > cfg.MPeak {
		cfg.MPeak = adaptive
	}
	return cfg
}

// Solve runs LC-OPG over the graph and returns a complete plan. It never
// fails: the tiered fallback guarantees a schedule (worst case: preload).
func Solve(g *graph.Graph, caps Capacity, cfg Config) *Plan {
	if cfg.ChunkSize <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.SoftThreshold < 1 {
		cfg.SoftThreshold = 1
	}

	s := &solver{
		g: g, caps: caps, cfg: cfg,
		plan: &Plan{Model: g.Name, ChunkSize: cfg.ChunkSize, MPeak: cfg.MPeak},
	}
	s.stats = &s.plan.Stats
	s.stats.Status = cpsat.Optimal

	// Process nodes: capacities and weight list (Table 4 "Process nodes").
	t0 := time.Now()
	s.capRemaining = make([]int, g.Len())
	s.inflight = make([]int64, g.Len())
	for _, n := range g.Nodes() {
		s.capRemaining[n.ID] = Chunks(caps(n), cfg.ChunkSize)
	}
	var weights []weightItem
	for _, id := range g.WeightedNodes() {
		b := g.Node(id).Weight()
		weights = append(weights, weightItem{node: id, bytes: b, chunks: Chunks(b, cfg.ChunkSize)})
	}
	s.stats.ProcessTime = time.Since(t0)

	// Rolling windows: batch weights by consumption layer.
	for start := 0; start < len(weights); {
		end := start + 1
		windowEnd := int(weights[start].node) + cfg.Window
		for end < len(weights) && int(weights[end].node) < windowEnd {
			end++
		}
		s.solveBatch(weights[start:end])
		s.stats.Windows++
		start = end
	}

	sort.Slice(s.plan.Weights, func(i, j int) bool {
		return s.plan.Weights[i].Weight < s.plan.Weights[j].Weight
	})
	return s.plan
}

// candidates returns the transform-layer candidates for a weight: the
// nearest MaxCandidates preceding layers with remaining capacity, within
// the window, newest first.
func (s *solver) candidates(w weightItem) []graph.NodeID {
	var out []graph.NodeID
	lo := int(w.node) - s.cfg.Window
	if lo < 0 {
		lo = 0
	}
	for l := int(w.node) - 1; l >= lo && len(out) < MaxCandidates; l-- {
		if s.capRemaining[l] > 0 {
			out = append(out, graph.NodeID(l))
		}
	}
	return out
}

// mpeakSlackChunks returns how many more chunks may be in flight at layer l.
func (s *solver) mpeakSlackChunks(l graph.NodeID) int {
	slack := int64(s.cfg.MPeak) - s.inflight[l]
	if slack <= 0 {
		return 0
	}
	return int(slack / int64(s.cfg.ChunkSize))
}

// solveBatch schedules one window of weights with the C4 fallback ladder.
func (s *solver) solveBatch(batch []weightItem) {
	// Structurally unstreamable weights go straight into W, as §3.1
	// prescribes for the first layers: no candidate layers, candidate
	// capacity that cannot cover the chunk count even optimistically, or a
	// tensor bigger than the whole in-flight budget. Filtering them here
	// keeps one impossible weight from poisoning the window CP.
	var solvable []weightItem
	for _, w := range batch {
		cands := s.candidates(w)
		capSum := 0
		for _, l := range cands {
			capSum += s.capRemaining[l]
		}
		switch {
		case len(cands) == 0,
			capSum < w.chunks,
			int64(w.chunks)*int64(s.cfg.ChunkSize) > int64(s.cfg.MPeak):
			s.preload(w)
		default:
			solvable = append(solvable, w)
		}
	}
	if len(solvable) == 0 {
		return
	}

	// Ladder rung 1: CP at nominal capacity, no preloading — streaming is
	// the goal; W is the fallback, as the objective's λ weighting encodes.
	ok, proven := s.tryCP(solvable, 1.0)
	if ok {
		return
	}
	if !proven {
		// Hybrid execution mode (§3.2): the budget expired without proving
		// infeasibility, so relaxation and preloading would not help —
		// switch straight to the heuristic on the full batch.
		s.stats.Fallbacks.Greedy++
		s.stats.Status = cpsat.Feasible
		s.greedy(solvable)
		return
	}
	// Rung 2: soft thresholding (C4) against proven capacity shortfalls.
	s.stats.Fallbacks.SoftThreshold++
	if ok, _ = s.tryCP(solvable, s.cfg.SoftThreshold); ok {
		return
	}
	// Rung 3: incremental preloading — peel the largest weights into W and
	// retry the CP on the remainder.
	order := append([]weightItem(nil), solvable...)
	sort.Slice(order, func(i, j int) bool { return order[i].bytes > order[j].bytes })
	rest := solvable
	for k := 0; k < 3 && len(rest) > 1; k++ {
		biggest := order[k].node
		s.preload(order[k])
		kept := rest[:0:0]
		for _, w := range rest {
			if w.node != biggest {
				kept = append(kept, w)
			}
		}
		rest = kept
		s.stats.Fallbacks.IncrementalPreload++
		if ok, _ = s.tryCP(rest, s.cfg.SoftThreshold); ok {
			return
		}
	}
	// Rung 4: greedy heuristic backup. Always succeeds.
	s.stats.Fallbacks.Greedy++
	s.stats.Status = cpsat.Feasible
	s.greedy(rest)
}

// tryCP builds and solves the window CP model (streaming only — preloading
// is handled by the outer ladder). On success it applies the solution and
// reports ok; otherwise `proven` distinguishes proven infeasibility from a
// budget-expired Unknown.
func (s *solver) tryCP(batch []weightItem, relax float64) (ok, proven bool) {
	if len(batch) == 0 {
		return true, true
	}
	tBuild := time.Now()
	m := cpsat.NewModel()

	type weightVars struct {
		w      weightItem
		layers []graph.NodeID
		xs     []cpsat.Var
		z      cpsat.Var
	}
	var wvs []weightVars
	perLayerX := map[graph.NodeID][]cpsat.Var{}

	var objVars []cpsat.Var
	var objCoefs []int64
	// Objective: (1−λ)·Σ(i_w − z_w) plus a tiny proximity tie-break on x
	// assignments (nearer layers cost less, encoding "load closer to
	// execution"). The λ·|W| term lives in the fallback ladder: preloads
	// only happen when streaming is infeasible.
	distCoef := int64((1-s.cfg.Lambda)*100) + 1

	for _, w := range batch {
		layers := s.candidates(w)
		wv := weightVars{w: w, layers: layers}
		lo := int64(int(w.node) - s.cfg.Window)
		if lo < 0 {
			lo = 0
		}

		// Root reduction, part 1: fix trivially-forced x-vars. When the
		// candidates' (relaxed) capacities sum to exactly T(w) — which
		// includes every single-candidate weight — any solution must fill
		// every column to its cap, so the variables enter the model fixed,
		// their C0 row is redundant, and z collapses to the earliest used
		// layer. The CP then never branches on them.
		his := make([]int64, len(layers))
		var hiSum int64
		for i, l := range layers {
			his[i] = int64(minInt(w.chunks, int(relax*float64(s.capRemaining[l]))))
			hiSum += his[i]
		}
		if hiSum < int64(w.chunks) {
			// Unreachable given solveBatch's prefilter, but if capacities
			// cannot cover the weight even at their caps the window is
			// infeasible as built.
			return false, true
		}
		if hiSum == int64(w.chunks) {
			for i, l := range layers {
				x := m.NewIntVar(his[i], his[i], "x")
				wv.xs = append(wv.xs, x)
				perLayerX[l] = append(perLayerX[l], x)
			}
			earliest := int64(layers[len(layers)-1]) // newest-first ordering
			wv.z = m.NewIntVar(earliest, earliest, "z")
			wvs = append(wvs, wv)
			continue
		}

		wv.z = m.NewIntVar(lo, int64(w.node)-1, "z")
		var c0Vars []cpsat.Var
		var c0Coefs []int64
		for rank, l := range layers {
			x := m.NewIntVar(0, his[rank], "x")
			wv.xs = append(wv.xs, x)
			perLayerX[l] = append(perLayerX[l], x)
			c0Vars = append(c0Vars, x)
			c0Coefs = append(c0Coefs, 1)
			// C1: (x ≥ 1) ⇒ (z ≤ ℓ).
			m.AddImplication(x, 1, wv.z, int64(l))
			// Proximity tie-break (rank 0 = nearest to consumption; its
			// zero coefficient would be dead weight in the objective row).
			if rank > 0 {
				objVars = append(objVars, x)
				objCoefs = append(objCoefs, int64(rank))
			}
		}
		// C0: Σ_ℓ x_{w,ℓ} = T(w).
		m.AddLinearEQ(c0Vars, c0Coefs, int64(w.chunks))

		// Distance term: minimizing (i_w − z) ⇔ maximizing z.
		objVars = append(objVars, wv.z)
		objCoefs = append(objCoefs, -distCoef)
		wvs = append(wvs, wv)
	}

	// C3: joint per-layer capacity.
	for l, xs := range perLayerX {
		limit := int64(relax * float64(s.capRemaining[l]))
		m.AddLinearLE(xs, onesOf(len(xs)), limit)
	}

	// C2: cumulative in-flight transformed chunks. A chunk transformed at
	// ℓ' stays in flight on [ℓ', i_w), so every layer from the earliest
	// candidate to the last consumption in the window is constrained.
	//
	// Root reduction, part 2: merge duplicate rows. The row's term set only
	// changes at a breakpoint — a layer where some candidate column enters
	// (ℓ' = l) or some consuming node drops its terms (i_w = l). All layers
	// between two breakpoints would emit the same left-hand side, so the
	// run collapses to a single row bounded by the tightest slack in the
	// segment — typically shrinking the window CP by an order of magnitude
	// in rows for sparse windows.
	loLayer, hiLayer := graph.NodeID(1<<30), graph.NodeID(0)
	for _, wv := range wvs {
		for _, l := range wv.layers {
			if l < loLayer {
				loLayer = l
			}
		}
		if wv.w.node > hiLayer {
			hiLayer = wv.w.node
		}
	}
	var breaks []graph.NodeID
	if loLayer < hiLayer {
		seen := map[graph.NodeID]bool{loLayer: true}
		breaks = append(breaks, loLayer)
		addBreak := func(l graph.NodeID) {
			if l > loLayer && l < hiLayer && !seen[l] {
				seen[l] = true
				breaks = append(breaks, l)
			}
		}
		for _, wv := range wvs {
			for _, l := range wv.layers {
				addBreak(l)
			}
			addBreak(wv.w.node)
		}
		sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })
	}
	for bi, b := range breaks {
		segEnd := hiLayer
		if bi+1 < len(breaks) {
			segEnd = breaks[bi+1]
		}
		var vars []cpsat.Var
		var coefs []int64
		for _, wv := range wvs {
			if wv.w.node <= b {
				continue // consumed at or before the segment
			}
			for i, al := range wv.layers {
				if al <= b {
					vars = append(vars, wv.xs[i])
					coefs = append(coefs, 1)
				}
			}
		}
		if len(vars) == 0 {
			continue
		}
		limit := s.mpeakSlackChunks(b)
		for l := b + 1; l < segEnd; l++ {
			if sl := s.mpeakSlackChunks(l); sl < limit {
				limit = sl
			}
		}
		m.AddLinearLE(vars, coefs, int64(limit))
	}

	m.Minimize(objVars, objCoefs)
	s.stats.BuildTime += time.Since(tBuild)

	tSolve := time.Now()
	res := m.Solve(cpsat.Options{TimeLimit: s.cfg.SolveTimeout, MaxBranches: s.cfg.MaxBranches})
	s.stats.SolveTime += time.Since(tSolve)
	s.stats.Branches += res.Branches
	s.stats.Wakes += res.Wakes
	s.stats.TrailOps += res.TrailOps

	if res.Status != cpsat.Optimal && res.Status != cpsat.Feasible {
		return false, res.Status == cpsat.Infeasible
	}
	if res.Status == cpsat.Feasible || relax > 1.0 {
		// Time-limited or soft-thresholded plans are not proven optimal.
		s.stats.Status = cpsat.Feasible
	}

	// Apply the solution.
	for _, wv := range wvs {
		wp := WeightPlan{Weight: wv.w.node, Bytes: wv.w.bytes, Chunks: wv.w.chunks}
		minLayer := wv.w.node
		for i, l := range wv.layers {
			n := int(res.Value(wv.xs[i]))
			if n == 0 {
				continue
			}
			wp.Transforms = append(wp.Transforms, Assignment{Layer: l, Chunks: n})
			s.capRemaining[l] -= n
			if s.capRemaining[l] < 0 {
				s.capRemaining[l] = 0 // soft-threshold overdraw
			}
			for ll := l; ll < wv.w.node; ll++ {
				s.inflight[ll] += int64(n) * int64(s.cfg.ChunkSize)
			}
			if l < minLayer {
				minLayer = l
			}
		}
		z := graph.NodeID(res.Value(wv.z))
		if z > minLayer {
			z = minLayer
		}
		wp.LoadStart = z
		sort.Slice(wp.Transforms, func(i, j int) bool { return wp.Transforms[i].Layer < wp.Transforms[j].Layer })
		s.plan.Weights = append(s.plan.Weights, wp)
	}
	return true, true
}

// greedy is the rung-4 heuristic: fill chunks backwards from the consuming
// layer through capacity-bearing candidates under the M_peak budget;
// whatever does not fit is preloaded.
func (s *solver) greedy(batch []weightItem) {
	for _, w := range batch {
		remaining := w.chunks
		wp := WeightPlan{Weight: w.node, Bytes: w.bytes, Chunks: w.chunks}
		lo := int(w.node) - s.cfg.Window
		if lo < 0 {
			lo = 0
		}
		for l := int(w.node) - 1; l >= lo && remaining > 0; l-- {
			// A chunk placed at l is in flight on [l, i_w): the binding
			// M_peak slack is the minimum over that whole interval.
			slack := s.mpeakSlackChunks(graph.NodeID(l))
			for ll := l + 1; ll < int(w.node); ll++ {
				if sl := s.mpeakSlackChunks(graph.NodeID(ll)); sl < slack {
					slack = sl
				}
			}
			avail := minInt(s.capRemaining[l], slack)
			if avail <= 0 {
				continue
			}
			n := minInt(avail, remaining)
			wp.Transforms = append(wp.Transforms, Assignment{Layer: graph.NodeID(l), Chunks: n})
			s.capRemaining[l] -= n
			for ll := l; ll < int(w.node); ll++ {
				s.inflight[ll] += int64(n) * int64(s.cfg.ChunkSize)
			}
			remaining -= n
		}
		if remaining > 0 {
			// Roll back partial placement and preload instead: partially
			// streamed weights would still hold a full UM copy.
			for _, a := range wp.Transforms {
				s.capRemaining[a.Layer] += a.Chunks
				for ll := int(a.Layer); ll < int(w.node); ll++ {
					s.inflight[ll] -= int64(a.Chunks) * int64(s.cfg.ChunkSize)
				}
			}
			s.preload(w)
			continue
		}
		sort.Slice(wp.Transforms, func(i, j int) bool { return wp.Transforms[i].Layer < wp.Transforms[j].Layer })
		wp.LoadStart = wp.Transforms[0].Layer
		s.plan.Weights = append(s.plan.Weights, wp)
	}
}

// preload commits a weight to the preload set W.
func (s *solver) preload(w weightItem) {
	s.plan.Weights = append(s.plan.Weights, WeightPlan{
		Weight: w.node, Bytes: w.bytes, Chunks: w.chunks, Preload: true,
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func onesOf(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
