package opg

import (
	"sort"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
	"repro/internal/units"
)

// MaxCandidates bounds how many preceding layers a weight may be assigned
// to. The paper notes L(w)'s indices "are not required to be continuous;
// layers within this range can be selectively chosen" — we keep the nearest
// capacity-bearing layers, which both shrinks the CP model and prefers
// low-residency assignments.
const MaxCandidates = 12

// weightItem is one weight tensor to schedule.
type weightItem struct {
	node   graph.NodeID
	bytes  units.Bytes
	chunks int
}

type solver struct {
	g    *graph.Graph
	caps Capacity
	cfg  Config

	capRemaining []int   // per-layer remaining capacity, chunks
	inflight     []int64 // per-layer committed in-flight bytes

	plan  *Plan
	stats *SolveStats
}

// AdaptMPeak applies the Adaptive Peak Memory Control of Table 3: the
// in-flight budget scales with model size so that a single large weight
// tensor (e.g. a 70B model's half-gigabyte FC matrix) can still be
// scheduled rather than degenerating to full preload. The default 500 MB
// stands for on-device-scale models.
func AdaptMPeak(cfg Config, g *graph.Graph) Config {
	if adaptive := g.TotalWeightBytes() / 16; adaptive > cfg.MPeak {
		cfg.MPeak = adaptive
	}
	return cfg
}

// Solve runs LC-OPG over the graph and returns a complete plan. It never
// fails: the tiered fallback guarantees a schedule (worst case: preload).
//
// With cfg.Parallelism > 1 the rolling windows run through the speculative
// pipeline (see pipeline.go); the committed plan and all solver counters
// are byte-identical to a sequential solve, so the knob trades nothing but
// wall-clock and wasted speculative work. The one exception is
// cfg.WarmRecommit, which re-seeds failed-speculation re-solves with learned
// nogoods and may therefore commit a different (equally valid) plan — that
// is why it is a separate opt-in and warm plans are never cached.
func Solve(g *graph.Graph, caps Capacity, cfg Config) *Plan {
	if cfg.ChunkSize <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.SoftThreshold < 1 {
		cfg.SoftThreshold = 1
	}

	s := &solver{
		g: g, caps: caps, cfg: cfg,
		plan: &Plan{Model: g.Name, ChunkSize: cfg.ChunkSize, MPeak: cfg.MPeak},
	}
	s.stats = &s.plan.Stats
	s.stats.Status = cpsat.Optimal

	// Process nodes: capacities and weight list (Table 4 "Process nodes").
	t0 := time.Now()
	s.capRemaining = make([]int, g.Len())
	s.inflight = make([]int64, g.Len())
	for _, n := range g.Nodes() {
		s.capRemaining[n.ID] = Chunks(caps(n), cfg.ChunkSize)
	}
	var weights []weightItem
	for _, id := range g.WeightedNodes() {
		b := g.Node(id).Weight()
		weights = append(weights, weightItem{node: id, bytes: b, chunks: Chunks(b, cfg.ChunkSize)})
	}
	s.stats.ProcessTime = time.Since(t0)

	// Rolling windows, enumerated up front: batch weights by consumption
	// layer, then solve sequentially or through the speculative pipeline.
	wins := enumerateWindows(weights, cfg.Window)
	if cfg.Parallelism > 1 && len(wins) > 1 {
		s.solveParallel(wins, cfg.Parallelism)
	} else {
		for _, win := range wins {
			s.apply(solveWindow(&s.cfg, win, s.capRemaining, s.inflight, false, nil))
		}
	}

	sort.Slice(s.plan.Weights, func(i, j int) bool {
		return s.plan.Weights[i].Weight < s.plan.Weights[j].Weight
	})
	return s.plan
}

// apply commits one window result: plan entries, state deltas (capacity
// clamped at zero exactly as the old in-place soft-threshold overdraw
// did), and the stats share of the solve that actually got committed.
func (s *solver) apply(res *windowResult) {
	s.plan.Weights = append(s.plan.Weights, res.weights...)
	for i, u := range res.capUsed {
		if u != 0 {
			l := res.off + i
			if s.capRemaining[l] -= u; s.capRemaining[l] < 0 {
				s.capRemaining[l] = 0
			}
		}
	}
	for i, a := range res.inAdd {
		if a != 0 {
			s.inflight[res.off+i] += a
		}
	}
	st := &res.stats
	s.stats.BuildTime += st.buildTime
	s.stats.SolveTime += st.solveTime
	s.stats.Branches += st.branches
	s.stats.Wakes += st.wakes
	s.stats.TrailOps += st.trailOps
	s.stats.Nogoods += st.nogoods
	s.stats.Restarts += st.restarts
	s.stats.Conflicts += st.conflicts
	s.stats.Backjumps += st.backjumps
	s.stats.MinimizedLits += st.minimizedLits
	s.stats.ImportedNogoods += st.importedNogoods
	s.stats.Fallbacks.SoftThreshold += st.fallbacks.SoftThreshold
	s.stats.Fallbacks.IncrementalPreload += st.fallbacks.IncrementalPreload
	s.stats.Fallbacks.Greedy += st.fallbacks.Greedy
	if st.degraded {
		s.stats.Status = cpsat.Feasible
	}
	s.stats.Windows++
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func onesOf(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
