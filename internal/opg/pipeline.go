package opg

import (
	"sync"
)

// The speculative window pipeline. Windows are enumerated up front; the
// window at the commit frontier is always solved against the true
// committed state, while idle workers speculatively solve upcoming windows
// against the state visible at claim time — an optimistic prediction,
// since in-flight predecessors' consumption is missing from it. Commits
// happen strictly in window order: a speculative result is committed iff
// replaying its canonical read trace against the true state reproduces
// every value (see window.go), which guarantees the committed plan is
// byte-identical to a sequential solve; otherwise the window re-solves on
// the true state, exactly as the sequential path would have.
//
// Windows couple only through a depth-1 chain: window k+1's read range
// overlaps window k's write range but window k+2's never does, so a
// speculative solve fails validation only when its immediate predecessor
// consumed state the clamped reads actually depend on. Capacity-rich
// models therefore speculate near-perfectly, while contended ones degrade
// gracefully toward sequential re-solves.

// pipeState is the shared scheduler state, guarded by mu.
type pipeState struct {
	mu   sync.Mutex
	cond *sync.Cond

	workers  int
	frontier int // next window to commit
	claimed  []bool
	done     []*windowResult
	direct   []bool // result was solved on the true state (no validation needed)

	// rejectStreak throttles speculation: consecutive failed validations
	// mean the model is in a contended region where speculative solves are
	// doomed, and running them anyway steals CPU from the frontier
	// re-solves that actually make progress. While throttled, only an
	// occasional probe window speculates, so the pipeline notices when the
	// model leaves the contended region. Pure scheduling: the committed
	// plan is identical either way.
	rejectStreak int
}

// rejectThrottle is the streak at which speculation pauses, and probeEvery
// the window stride that still speculates while paused.
const (
	rejectThrottle = 3
	probeEvery     = 4
)

// speculationLookahead bounds how far past the frontier workers may claim:
// enough to keep every worker busy when speculation is succeeding, without
// piling up doomed solves when it is not.
func speculationLookahead(workers int) int { return 2 * workers }

// solveParallel runs the pipeline with the given worker count and commits
// results into the solver in window order.
func (s *solver) solveParallel(wins []window, workers int) {
	n := len(wins)
	if workers > n {
		workers = n
	}
	ps := &pipeState{
		workers: workers,
		claimed: make([]bool, n),
		done:    make([]*windowResult, n),
		direct:  make([]bool, n),
	}
	ps.cond = sync.NewCond(&ps.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.pipelineWorker(wins, ps)
		}()
	}
	wg.Wait()
}

// pipelineWorker is one scheduler loop: commit what is committable, solve
// the frontier directly when nobody has it, otherwise speculate ahead.
func (s *solver) pipelineWorker(wins []window, ps *pipeState) {
	n := len(wins)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.frontier < n {
		f := ps.frontier
		switch {
		case ps.done[f] != nil:
			// Commit the frontier. A direct result is the sequential solve
			// by construction; a speculative one commits only if its read
			// trace replays exactly against the true state (and its CP
			// budget never hit the wall clock — see windowResult).
			res := ps.done[f]
			if ps.direct[f] || (!res.wallClocked && replayOK(res, &s.cfg, s.capRemaining, s.inflight)) {
				if !ps.direct[f] {
					s.stats.Speculative++
					ps.rejectStreak = 0
				}
				s.apply(res)
				ps.frontier++
				ps.cond.Broadcast()
				continue
			}
			// Failed speculation: re-solve on the true state. No other
			// worker can commit (the frontier is ours), so the live arrays
			// are stable outside the lock. Under WarmRecommit the doomed
			// result's rung records seed the re-solve (imported nogoods,
			// infeasible-rung skips) — see window.go.
			var warm *windowResult
			if s.cfg.WarmRecommit {
				warm = ps.done[f]
			}
			ps.done[f] = nil
			s.stats.Recommitted++
			ps.rejectStreak++
			ps.mu.Unlock()
			res = solveWindow(&s.cfg, wins[f], s.capRemaining, s.inflight, false, warm)
			ps.mu.Lock()
			ps.done[f], ps.direct[f] = res, true
			ps.cond.Broadcast()

		case !ps.claimed[f]:
			// Nobody is solving the frontier: do it directly on the true
			// state (stable while this claim is outstanding, since commits
			// advance only through the frontier).
			ps.claimed[f] = true
			ps.mu.Unlock()
			res := solveWindow(&s.cfg, wins[f], s.capRemaining, s.inflight, false, nil)
			ps.mu.Lock()
			ps.done[f], ps.direct[f] = res, true
			ps.cond.Broadcast()

		default:
			// Frontier in flight elsewhere: speculate on the next unclaimed
			// window against a snapshot of the current committed state.
			k := -1
			limit := f + speculationLookahead(ps.workers)
			if limit > n {
				limit = n
			}
			for i := f + 1; i < limit; i++ {
				if !ps.claimed[i] && (ps.rejectStreak < rejectThrottle || i%probeEvery == 0) {
					k = i
					break
				}
			}
			if k < 0 {
				ps.cond.Wait()
				continue
			}
			ps.claimed[k] = true
			snapCap := append([]int(nil), s.capRemaining...)
			snapIn := append([]int64(nil), s.inflight...)
			ps.mu.Unlock()
			res := solveWindow(&s.cfg, wins[k], snapCap, snapIn, true, nil)
			ps.mu.Lock()
			ps.done[k] = res
			ps.cond.Broadcast()
		}
	}
	ps.cond.Broadcast() // wake peers so they observe the finished frontier
}
