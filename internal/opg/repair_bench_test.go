package opg

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/power"
	"repro/internal/profiler"
)

// Repair benchmarks: the headline resilience claim is that incremental
// repair after a device-condition event costs far less than the
// from-scratch solve the event would otherwise force. Both sides run
// Llama2-70B — the worst cold solve in the bundle — with an adapted
// M_peak dropped by 25%, the paper's mid-pressure budget step. The budget
// is the CI sweep idiom (generous wall clock, binding branch budget):
// wall-clock timeouts would mark windows non-replayable on a
// machine-dependent schedule, making the repaired-window count — the
// deterministic counter the bench gate checks — vary run to run. Run via
// `make bench-trace`; CI's nightly job archives the results as
// BENCH_trace.json.

func benchRepairSetup(b *testing.B) (*Repairable, Capacity, Config, Config) {
	b.Helper()
	g := models.SolverOnly()[2].Build() // Llama2-70B
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := DefaultConfig()
	cfg.SolveTimeout = 5 * time.Second
	cfg.MaxBranches = 1500
	cfg = AdaptMPeak(cfg, g)
	dropped := cfg
	dropped.MPeak = cfg.MPeak * 3 / 4
	return SolveRepairable(g, caps, cfg), caps, cfg, dropped
}

// BenchmarkRepairBudgetDrop70B repairs the retained solve across a 25%
// M_peak drop; only windows whose recorded reads changed re-solve. For
// Llama2-70B under the adapted budget no recorded M_peak comparison
// crosses a 25% (or even 50%) drop, so repair is pure replay validation —
// the retained plan is *proven* valid under the tighter budget without
// re-solving anything, which is exactly the mid-pressure common case the
// ladder is built around (the repair differential test proves the result
// byte-identical to a cold solve). The cliff sits between M_peak/2 and
// M_peak/4, where every window re-solves at once; the throttle benchmark
// below covers that everything-changed regime.
func BenchmarkRepairBudgetDrop70B(b *testing.B) {
	base, caps, _, dropped := benchRepairSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var st RepairStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := base.clone()
		b.StartTimer()
		var err error
		st, err = r.Repair(caps, dropped, RepairOptions{})
		if err != nil {
			b.Fatalf("repair: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.WindowsKept), "kept")
	b.ReportMetric(float64(st.WindowsResolved), "resolved")
}

// BenchmarkColdSolveBudgetDrop70B is the from-scratch baseline for the
// same budget drop: what serving would pay without repair.
func BenchmarkColdSolveBudgetDrop70B(b *testing.B) {
	_, caps, _, dropped := benchRepairSetup(b)
	g := models.SolverOnly()[2].Build()
	b.ReportAllocs()
	b.ResetTimer()
	var plan *Plan
	for i := 0; i < b.N; i++ {
		plan = Solve(g, caps, dropped)
	}
	b.StopTimer()
	if err := plan.Validate(g, caps, dropped); err != nil {
		b.Fatalf("plan invalid: %v", err)
	}
}

// BenchmarkGreedyPatch70B is the ladder's last planning rung: the
// prefix-preserving greedy patch a repair-budget miss falls back to.
func BenchmarkGreedyPatch70B(b *testing.B) {
	base, caps, _, dropped := benchRepairSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := base.GreedyPatch(caps, dropped); err != nil {
			b.Fatalf("patch: %v", err)
		}
	}
}

// BenchmarkRepairThrottle70B repairs across a thermal transition (level 2
// derates compute and on-chip bandwidths, reshaping every capacity): the
// everything-changed regime, where repair honestly approaches a cold
// solve. The resolved counter is deterministic under the binding branch
// budget (every window's recorded capacity reads change, so all re-solve)
// and is what the bench gate checks raw.
func BenchmarkRepairThrottle70B(b *testing.B) {
	base, _, cfg, _ := benchRepairSetup(b)
	throttled := profiler.AnalyticCapacityFunc(power.Throttle(device.OnePlus12(), 2))
	b.ReportAllocs()
	b.ResetTimer()
	var st RepairStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := base.clone()
		b.StartTimer()
		var err error
		st, err = r.Repair(throttled, cfg, RepairOptions{})
		if err != nil {
			b.Fatalf("repair: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.WindowsKept), "kept")
	b.ReportMetric(float64(st.WindowsResolved), "resolved")
}
