package opg

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cpsat"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/profiler"
	"repro/internal/units"
)

// Repair's correctness claim is differential: a repaired plan must be
// byte-identical to a from-scratch solve on the post-event scenario. The
// tests here pin that down across the two event families repair handles —
// M_peak steps (memory-budget events) and capacity rescaling (thermal
// throttling) — plus the budget-abort and greedy-patch paths.

// repairConfig keeps CP budgets branch-bound: a binding wall clock makes
// window solves timing-dependent, and then no two solves — repaired or
// cold — are comparable byte for byte.
func repairConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeout = 10 * time.Second
	cfg.MaxBranches = 4000
	return cfg
}

// scaledCapacity derates a capacity function uniformly — the shape of a
// thermal-throttle event at the solver's level of abstraction.
func scaledCapacity(caps Capacity, f float64) Capacity {
	return func(n *graph.Node) units.Bytes {
		return units.Bytes(f * float64(caps(n)))
	}
}

func TestSolveRepairableMatchesSolve(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	cold := Solve(g, caps, cfg)
	if !bytes.Equal(encodePlan(t, r.Plan()), encodePlan(t, cold)) {
		t.Fatal("traced repairable solve differs from plain Solve")
	}
	if r.Windows() == 0 {
		t.Fatal("no windows retained")
	}
}

func TestRepairBudgetDropDifferential(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	for _, drop := range []units.Bytes{400 * units.MB, 250 * units.MB, 100 * units.MB} {
		next := cfg
		next.MPeak = drop
		st, err := r.Repair(caps, next, RepairOptions{})
		if err != nil {
			t.Fatalf("repair to MPeak=%d: %v", drop, err)
		}
		cold := Solve(g, caps, next)
		if !bytes.Equal(encodePlan(t, r.Plan()), encodePlan(t, cold)) {
			t.Fatalf("repaired plan differs from cold solve at MPeak=%d (kept=%d resolved=%d)",
				drop, st.WindowsKept, st.WindowsResolved)
		}
		if got := r.Plan().Stats.RepairRung; got != RungRepaired {
			t.Fatalf("rung = %q, want %q", got, RungRepaired)
		}
	}
}

func TestRepairThrottleDifferential(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	for _, f := range []float64{0.85, 0.6, 1.0} {
		derated := scaledCapacity(caps, f)
		if _, err := r.Repair(derated, cfg, RepairOptions{}); err != nil {
			t.Fatalf("repair at capacity factor %v: %v", f, err)
		}
		cold := Solve(g, derated, cfg)
		if !bytes.Equal(encodePlan(t, r.Plan()), encodePlan(t, cold)) {
			t.Fatalf("repaired plan differs from cold solve at capacity factor %v", f)
		}
	}
}

// TestRepairKeepsUnaffectedPrefix is the point of the whole mechanism: a
// mild event must not force a full re-solve. A small M_peak step keeps a
// committed prefix (and usually most windows) intact.
func TestRepairKeepsUnaffectedPrefix(t *testing.T) {
	g := toyGraph(40, 8*units.MB)
	caps := flatCapacity(24 * units.MB)
	cfg := repairConfig()
	cfg.Window = 6 // small windows: per-row ceilings stay far below the budget

	r := SolveRepairable(g, caps, cfg)
	next := cfg
	next.MPeak = 400 * units.MB
	st, err := r.Repair(caps, next, RepairOptions{})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if st.WindowsKept == 0 {
		t.Fatalf("no windows kept on a mild budget step (resolved=%d)", st.WindowsResolved)
	}
	if st.WindowsKept+st.WindowsResolved != r.Windows() {
		t.Fatalf("kept %d + resolved %d != windows %d", st.WindowsKept, st.WindowsResolved, r.Windows())
	}
}

// TestRepairRoundTrip drops the budget and restores it: the second repair
// must land byte-identically on the original solve.
func TestRepairRoundTrip(t *testing.T) {
	g := toyGraph(24, 32*units.MB)
	caps := flatCapacity(24 * units.MB)
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	orig := encodePlan(t, r.Plan())
	next := cfg
	next.MPeak = 120 * units.MB
	if _, err := r.Repair(caps, next, RepairOptions{}); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, err := r.Repair(caps, cfg, RepairOptions{}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(orig, encodePlan(t, r.Plan())) {
		t.Fatal("budget round trip did not restore the original plan")
	}
}

func TestRepairBudgetAbortLeavesStateIntact(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	before := encodePlan(t, r.Plan())
	next := cfg
	next.MPeak = 100 * units.MB
	_, err := r.Repair(caps, next, RepairOptions{Budget: time.Nanosecond})
	if !errors.Is(err, ErrRepairBudget) {
		t.Fatalf("err = %v, want ErrRepairBudget", err)
	}
	if !bytes.Equal(before, encodePlan(t, r.Plan())) {
		t.Fatal("aborted repair mutated the repairable")
	}
	if r.Config().MPeak != cfg.MPeak {
		t.Fatal("aborted repair mutated the retained config")
	}
}

func TestRepairRejectsIncompatibleConfig(t *testing.T) {
	g := toyGraph(8, 16*units.MB)
	caps := flatCapacity(24 * units.MB)
	r := SolveRepairable(g, caps, repairConfig())

	next := repairConfig()
	next.Window = 12
	if _, err := r.Repair(caps, next, RepairOptions{}); !errors.Is(err, ErrRepairIncompatible) {
		t.Fatalf("window change: err = %v, want ErrRepairIncompatible", err)
	}
	next = repairConfig()
	next.ChunkSize = 2 * units.MB
	if _, err := r.Repair(caps, next, RepairOptions{}); !errors.Is(err, ErrRepairIncompatible) {
		t.Fatalf("chunk change: err = %v, want ErrRepairIncompatible", err)
	}
}

// TestRepairImportNogoods exercises the PR-8 import surface on the repair
// path. Imports may steer the CP to a different (equally valid) plan, so
// the differential claim weakens to: the plan validates, and when both
// solves prove optimality the objectives agree.
func TestRepairImportNogoods(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	next := cfg
	next.MPeak = 250 * units.MB
	if _, err := r.Repair(caps, next, RepairOptions{ImportNogoods: true}); err != nil {
		t.Fatalf("warm repair: %v", err)
	}
	repaired := r.Plan()
	if err := repaired.Validate(g, caps, next); err != nil {
		t.Fatalf("warm-repaired plan invalid: %v", err)
	}
	cold := Solve(g, caps, next)
	if repaired.Stats.Status == cpsat.Optimal && cold.Stats.Status == cpsat.Optimal {
		if got, want := repaired.Objective(next.Lambda), cold.Objective(next.Lambda); got != want {
			t.Fatalf("optimal objectives differ: repaired %v, cold %v", got, want)
		}
	}
}

func TestGreedyPatchValidAndFast(t *testing.T) {
	g := models.MustByAbbr("GPTN-S").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := repairConfig()

	r := SolveRepairable(g, caps, cfg)
	next := cfg
	next.MPeak = 120 * units.MB
	plan, st, err := r.GreedyPatch(caps, next)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if err := plan.Validate(g, caps, next); err != nil {
		t.Fatalf("patched plan invalid: %v", err)
	}
	if plan.Stats.RepairRung != RungPatched {
		t.Fatalf("rung = %q, want %q", plan.Stats.RepairRung, RungPatched)
	}
	if st.WindowsKept+st.WindowsResolved != r.Windows() {
		t.Fatalf("kept %d + resolved %d != windows %d", st.WindowsKept, st.WindowsResolved, r.Windows())
	}
	// The patch never runs CP, so the Repairable must be untouched: its
	// retained config still carries the pre-event budget.
	if r.Config().MPeak != cfg.MPeak {
		t.Fatal("patch mutated the repairable")
	}
}

func TestPlanCloneIndependent(t *testing.T) {
	g := toyGraph(8, 16*units.MB)
	caps := flatCapacity(24 * units.MB)
	p := Solve(g, caps, repairConfig())
	q := p.Clone()
	if !bytes.Equal(encodePlan(t, p), encodePlan(t, q)) {
		t.Fatal("clone differs from original")
	}
	q.Weights[0].LoadStart++
	if q.Weights[0].LoadStart == p.Weights[0].LoadStart {
		t.Fatal("clone shares weight storage with original")
	}
}
