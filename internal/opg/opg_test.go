package opg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cpsat"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/profiler"
	"repro/internal/tensor"
	"repro/internal/units"
)

// toyGraph builds a linear chain alternating weighted matmuls with
// elemental and hierarchical ops.
func toyGraph(blocks int, weightBytes units.Bytes) *graph.Graph {
	g := graph.New("toy", tensor.FP16)
	for i := 0; i < blocks; i++ {
		g.Op("add", graph.Part{Kind: graph.Add, InBytes: 4 * units.MB, OutBytes: 4 * units.MB, MACs: 1e6})
		g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: weightBytes, InBytes: 4 * units.MB, OutBytes: 4 * units.MB, MACs: 2e9})
		g.Op("ln", graph.Part{Kind: graph.LayerNorm, Weight: 4 * units.KB, InBytes: 4 * units.MB, OutBytes: 4 * units.MB, MACs: 1e7})
	}
	return g
}

// flatCapacity gives every non-hierarchical node the same capacity.
func flatCapacity(c units.Bytes) Capacity {
	return func(n *graph.Node) units.Bytes {
		switch n.Kind() {
		case graph.Softmax, graph.LayerNorm, graph.GroupNorm, graph.BatchNorm:
			return 0
		default:
			return c
		}
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeout = 100 * time.Millisecond
	cfg.MaxBranches = 5000
	return cfg
}

func TestChunks(t *testing.T) {
	if Chunks(0, units.MB) != 0 {
		t.Error("0 bytes = 0 chunks")
	}
	if Chunks(units.MB, units.MB) != 1 {
		t.Error("1MB/1MB = 1 chunk")
	}
	if Chunks(units.MB+1, units.MB) != 2 {
		t.Error("1MB+1 = 2 chunks")
	}
}

func TestSolveToyPlanValid(t *testing.T) {
	g := toyGraph(10, 8*units.MB)
	caps := flatCapacity(6 * units.MB)
	cfg := testConfig()
	p := Solve(g, caps, cfg)
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(p.Weights) != len(g.WeightedNodes()) {
		t.Fatalf("planned %d weights, graph has %d", len(p.Weights), len(g.WeightedNodes()))
	}
}

func TestFirstLayerWeightsPreloaded(t *testing.T) {
	g := graph.New("front", tensor.FP16)
	g.Op("embed", graph.Part{Kind: graph.Embedding, Weight: 10 * units.MB, InBytes: units.KB, OutBytes: units.MB})
	g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: 4 * units.MB, InBytes: units.MB, OutBytes: units.MB, MACs: 1e9})
	cfg := testConfig()
	p := Solve(g, flatCapacity(8*units.MB), cfg)
	w0, ok := p.ByWeight(0)
	if !ok || !w0.Preload {
		t.Fatal("the first layer's weight must be in W (§3.1)")
	}
}

func TestStreamingDominatesWithCapacity(t *testing.T) {
	// Ample capacity: most weight bytes should stream, not preload.
	g := toyGraph(20, 4*units.MB)
	cfg := testConfig()
	p := Solve(g, flatCapacity(16*units.MB), cfg)
	if f := p.OverlapFraction(); f < 0.5 {
		t.Errorf("overlap fraction = %.2f, want >= 0.5 with ample capacity", f)
	}
}

func TestTightMPeakForcesPreload(t *testing.T) {
	g := toyGraph(20, 4*units.MB)
	caps := flatCapacity(16 * units.MB)

	loose := testConfig()
	loose.MPeak = 500 * units.MB
	tight := testConfig()
	tight.MPeak = 2 * units.MB // less than one weight

	pl := Solve(g, caps, loose)
	pt := Solve(g, caps, tight)
	if pt.OverlapFraction() > pl.OverlapFraction() {
		t.Errorf("tight M_peak overlap %.2f must not exceed loose %.2f",
			pt.OverlapFraction(), pl.OverlapFraction())
	}
	if err := pt.Validate(g, caps, tight); err != nil {
		t.Fatalf("tight plan invalid: %v", err)
	}
}

func TestZeroCapacityEverywhereMeansFullPreload(t *testing.T) {
	g := toyGraph(5, 2*units.MB)
	cfg := testConfig()
	p := Solve(g, flatCapacity(0), cfg)
	for _, w := range p.Weights {
		if !w.Preload {
			t.Fatalf("weight %d streamed despite zero capacity", w.Weight)
		}
	}
	if p.OverlapFraction() != 0 {
		t.Error("overlap fraction must be 0")
	}
}

func TestPlanInvariantsProperty(t *testing.T) {
	// Property (DESIGN.md): for random graphs/configs the plan validates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 3 + rng.Intn(12)
		wBytes := units.Bytes(1+rng.Intn(16)) * units.MB
		capBytes := units.Bytes(rng.Intn(20)) * units.MB
		g := toyGraph(blocks, wBytes)
		caps := flatCapacity(capBytes)
		cfg := testConfig()
		cfg.MPeak = units.Bytes(4+rng.Intn(200)) * units.MB
		cfg.Window = 8 + rng.Intn(60)
		p := Solve(g, caps, cfg)
		return p.Validate(g, caps, cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRealModelPlan(t *testing.T) {
	g := models.MustByAbbr("ViT").Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := testConfig()
	p := Solve(g, caps, cfg)
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("ViT plan invalid: %v", err)
	}
	if p.Stats.Windows == 0 {
		t.Error("no windows solved")
	}
	if p.Stats.Status != cpsat.Optimal && p.Stats.Status != cpsat.Feasible {
		t.Errorf("status = %v", p.Stats.Status)
	}
	// A transformer on a flagship device should stream the bulk of weights.
	if f := p.OverlapFraction(); f < 0.3 {
		t.Errorf("ViT overlap fraction = %.2f, want >= 0.3", f)
	}
}

func TestSolveStatsBreakdownPopulated(t *testing.T) {
	g := toyGraph(15, 6*units.MB)
	p := Solve(g, flatCapacity(8*units.MB), testConfig())
	st := p.Stats
	if st.ProcessTime <= 0 || st.BuildTime <= 0 || st.SolveTime <= 0 {
		t.Errorf("stats breakdown not populated: %+v", st)
	}
	// The event-driven engine's counters must surface in Table 4 stats: a
	// real solve always wakes constraints and trails bound changes.
	if st.Wakes == 0 || st.TrailOps == 0 {
		t.Errorf("wake/trail counters not plumbed: wakes=%d trail=%d", st.Wakes, st.TrailOps)
	}
}

func TestAdjustLoadStartsMovesEarlier(t *testing.T) {
	g := toyGraph(20, 16*units.MB)
	caps := flatCapacity(32 * units.MB)
	cfg := testConfig()
	p := Solve(g, caps, cfg)

	before := map[graph.NodeID]graph.NodeID{}
	for _, w := range p.Weights {
		before[w.Weight] = w.LoadStart
	}
	// Fast kernels (0.05ms) vs 16MB loads at 1.5GB/s (~10.4ms): loads must
	// move much earlier.
	AdjustLoadStarts(p, g, func(graph.NodeID) units.Duration { return 0.05 }, units.GBps(1.5), cfg.MPeak)

	moved := false
	for _, w := range p.Weights {
		if w.Preload {
			continue
		}
		if w.LoadStart > before[w.Weight] {
			t.Fatalf("weight %d load start moved later: %d -> %d", w.Weight, before[w.Weight], w.LoadStart)
		}
		if w.LoadStart < before[w.Weight] {
			moved = true
		}
		if len(w.Transforms) > 0 && w.LoadStart > w.Transforms[0].Layer {
			t.Fatalf("C1 violated after adjust for weight %d", w.Weight)
		}
	}
	if !moved {
		t.Error("no load start moved despite slow disk")
	}
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("plan invalid after adjust: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := toyGraph(5, 4*units.MB)
	caps := flatCapacity(8 * units.MB)
	cfg := testConfig()
	p := Solve(g, caps, cfg)

	// Corrupt C0: drop a chunk from a streamed weight.
	for i := range p.Weights {
		if !p.Weights[i].Preload && len(p.Weights[i].Transforms) > 0 {
			p.Weights[i].Transforms[0].Chunks++
			break
		}
	}
	if err := p.Validate(g, caps, cfg); err == nil {
		t.Fatal("Validate must catch a C0 violation")
	}
}

func TestPreloadBytesAndFraction(t *testing.T) {
	p := &Plan{ChunkSize: units.MB, Weights: []WeightPlan{
		{Weight: 1, Bytes: 10 * units.MB, Chunks: 10, Preload: true},
		{Weight: 3, Bytes: 30 * units.MB, Chunks: 30,
			LoadStart: 1, Transforms: []Assignment{{Layer: 2, Chunks: 30}}},
	}}
	if p.PreloadBytes() != 10*units.MB {
		t.Errorf("preload bytes = %v", p.PreloadBytes())
	}
	if f := p.OverlapFraction(); f != 0.75 {
		t.Errorf("overlap fraction = %v, want 0.75", f)
	}
}

func TestFallbackLadderEngagesUnderPressure(t *testing.T) {
	// Joint infeasibility: each 8MB weight individually fits its candidate
	// capacity (12 × 3MB), but a window of them cannot all stream — the CP
	// proves it and the ladder (soft threshold → incremental preload →
	// greedy) must engage, and the plan must still validate.
	g := toyGraph(16, 8*units.MB)
	caps := flatCapacity(3 * units.MB)
	cfg := testConfig()
	p := Solve(g, caps, cfg)
	fb := p.Stats.Fallbacks
	if fb.SoftThreshold+fb.IncrementalPreload+fb.Greedy == 0 {
		t.Error("expected fallback activation under pressure")
	}
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestPrefilterPreloadsOversizedWeights(t *testing.T) {
	// A weight larger than M_peak can never be in flight: it must land in
	// W directly, without poisoning the window CP for its neighbours.
	g := toyGraph(6, 32*units.MB)
	caps := flatCapacity(64 * units.MB)
	cfg := testConfig()
	cfg.MPeak = 8 * units.MB
	p := Solve(g, caps, cfg)
	for _, w := range p.Weights {
		if w.Bytes > cfg.MPeak && !w.Preload {
			t.Errorf("weight %d (%v) exceeds M_peak yet streamed", w.Weight, w.Bytes)
		}
	}
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	g := toyGraph(8, 6*units.MB)
	caps := flatCapacity(10 * units.MB)
	cfg := testConfig()
	p := Solve(g, caps, cfg)

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != p.Model || back.ChunkSize != p.ChunkSize || len(back.Weights) != len(p.Weights) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
	// The decoded plan must still satisfy C0-C3 against the graph.
	if err := back.Validate(g, caps, cfg); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if back.OverlapFraction() != p.OverlapFraction() {
		t.Error("overlap fraction changed across serialization")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Error("garbage must fail to decode")
	}
	if _, err := Decode(strings.NewReader(`{"version":99,"chunk_size":1}`)); err == nil {
		t.Error("wrong version must fail")
	}
	if _, err := Decode(strings.NewReader(`{"version":1,"chunk_size":0}`)); err == nil {
		t.Error("zero chunk size must fail")
	}
}
