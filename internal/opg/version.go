package opg

// SolverVersion names the current generation of the LC-OPG heuristics: the
// candidate-window pruning, the tiered fallback ladder, and the greedy
// packer. It is baked into every plan-cache key (core.PlanKey) and recorded
// in persisted snapshots, so plans solved by an older generation are
// invalidated — they miss the cache and are re-solved — rather than
// silently reused after the heuristics change.
//
// Bump this string whenever a change to this package (or to the cpsat
// search it drives) can alter the plan produced for an identical input.
//
// lc-opg-3: event-driven cpsat engine (watchlists, trail backtracking,
// most-constrained branching) plus the window-model root reduction
// (forced-variable fixing, duplicate C2 row merging) — equally optimal
// plans may pick different assignments than lc-opg-2 did.
const SolverVersion = "lc-opg-3"
