package opg

// SolverVersion names the current generation of the LC-OPG heuristics: the
// candidate-window pruning, the tiered fallback ladder, and the greedy
// packer. It is baked into every plan-cache key (core.PlanKey) and recorded
// in persisted snapshots, so plans solved by an older generation are
// invalidated — they miss the cache and are re-solved — rather than
// silently reused after the heuristics change.
//
// Bump this string whenever a change to this package (or to the cpsat
// search it drives) can alter the plan produced for an identical input.
// Config.Parallelism deliberately does NOT need a bump of its own: the
// speculative pipeline commits byte-identical plans at any worker count.
//
// lc-opg-5: true CDCL in cpsat — a reason-recorded trail, first-UIP
// conflict analysis with self-subsumption minimization, non-chronological
// backjumping, and immediate clause installation with activity-managed
// database reduction. Search trajectories differ from lc-opg-4 on every
// budget-bound window, so incumbents (and thus plans) can change.
// Config.LearnMode is additionally salted into plan keys (core.PlanKey)
// because it selects between this engine, the legacy restart-scoped one,
// and no learning at all.
//
// lc-opg-4: conflict-driven cpsat (nld-nogood learning, Luby restarts,
// activity branching) plus the canonical clamped window-model build
// (C2/C3 limits clamped at their row ceilings) that the speculative
// pipeline's commit validation relies on — equally optimal plans may pick
// different assignments than lc-opg-3 did, and budget-bound windows may
// surface different incumbents.
//
// lc-opg-3: event-driven cpsat engine (watchlists, trail backtracking,
// most-constrained branching) plus the window-model root reduction
// (forced-variable fixing, duplicate C2 row merging).
const SolverVersion = "lc-opg-5"
