// Package opg implements Overlap Plan Generation (§3): the static scheduling
// problem of deciding, for every weight tensor, when it is loaded from disk
// into unified memory (z_w), where its chunks are transformed into texture
// memory (x_{w,ℓ}), and which weights are preloaded outright (the set W) —
// subject to completeness (C0), loading-distance implication (C1), in-flight
// transform memory (C2), and per-layer load capacity (C3), minimizing
// λ·|W| + (1−λ)·Σ(i_w − z_w).
//
// The LC-OPG solver (§3.2) reduces each rolling window of the model to a
// cpsat model and applies the paper's tiered fallback — soft capacity
// thresholding, incremental preloading, then a greedy heuristic — so a plan
// is always produced within the time budget.
package opg

import (
	"fmt"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
	"repro/internal/units"
)

// Capacity returns a node's load capacity C_ℓ in bytes: how much extra
// weight data the node's kernel can transform while computing (§4.2).
type Capacity func(*graph.Node) units.Bytes

// Config parameterizes the solver.
type Config struct {
	ChunkSize units.Bytes // S: uniform chunk size for weight slicing
	MPeak     units.Bytes // in-flight transform memory bound (§3.1 C2)
	Lambda    float64     // λ: preload-vs-distance objective weight

	Window       int           // rolling window span in layers
	SolveTimeout time.Duration // per-window CP time budget
	MaxBranches  int64         // per-window CP branch budget (0 = unlimited)

	// SoftThreshold is the C4 relaxation factor applied to capacities when
	// a window is infeasible (e.g. 1.2 = allow 20% over).
	SoftThreshold float64

	// Parallelism is the speculative window pipeline's worker count: >1
	// solves upcoming windows concurrently against optimistically-predicted
	// capacity/in-flight state, validating each result against the true
	// state at commit (mismatches re-solve sequentially). ≤1 solves windows
	// strictly in order. The committed plan is byte-identical either way,
	// so Parallelism is deliberately excluded from plan-cache keys and
	// sweep fingerprints (like worker counts, it changes scheduling, not
	// results) — provided the CP budget is branch-bound; a binding
	// wall-clock budget makes any solve timing-dependent, and the pipeline
	// then refuses to commit speculative results (it degrades to sequential
	// re-solves rather than risk a nondeterministic plan).
	Parallelism int

	// LearnMode selects the CP solver's learning engine for window solves:
	// "" or "cdcl" (full conflict-driven clause learning — reason trail,
	// first-UIP analysis, non-chronological backjumping), "restart" (the
	// legacy restart-scoped nld-nogood engine, kept for A/B runs), or
	// "off" (no learning). The mode changes search trajectories and hence
	// budget-bounded plans, so it is part of the plan-cache key salt.
	LearnMode string

	// WarmRecommit re-seeds failed-speculation re-solves (Parallelism > 1)
	// with the nogoods the doomed speculative solve exported: each CP rung
	// whose model is uniformly tighter than the speculative rung's imports
	// its objective-free clauses, and rungs the speculative solve proved
	// infeasible are skipped outright. The imports change the re-solve's
	// search trajectory, so committed plans may differ from a sequential
	// solve's — the flag is an explicit opt-in, off by default, and warm
	// plans are never stored in plan caches (they are timing-dependent).
	WarmRecommit bool
}

// learnOptions translates LearnMode into cpsat learning options.
func (c *Config) learnOptions() (learn, restartOnly bool) {
	switch c.LearnMode {
	case "", "cdcl":
		return true, false
	case "restart":
		return true, true
	case "off":
		return false, false
	}
	panic(fmt.Sprintf("opg: unknown LearnMode %q", c.LearnMode))
}

// DefaultConfig mirrors the paper's memory-priority setting: S = 1 MB,
// M_peak = 500 MB, λ ≈ 0.9.
func DefaultConfig() Config {
	return Config{
		ChunkSize:     units.MB,
		MPeak:         500 * units.MB,
		Lambda:        0.9,
		Window:        48,
		SolveTimeout:  250 * time.Millisecond,
		MaxBranches:   20000,
		SoftThreshold: 1.2,
	}
}

// Chunks returns T(w): the number of S-sized chunks covering n bytes.
func Chunks(n, s units.Bytes) int {
	if s <= 0 {
		panic("opg: non-positive chunk size")
	}
	if n <= 0 {
		return 0
	}
	return int((n + s - 1) / s)
}

// Assignment is x_{w,ℓ} > 0: Chunks chunks of a weight transformed by layer ℓ.
type Assignment struct {
	Layer  graph.NodeID
	Chunks int
}

// WeightPlan is the schedule for one weight tensor, identified by its
// consuming node (i_w).
type WeightPlan struct {
	Weight graph.NodeID // i_w: the node that consumes this weight
	Bytes  units.Bytes
	Chunks int // T(w)

	Preload    bool         // member of W: loaded + transformed at init
	LoadStart  graph.NodeID // z_w: layer whose start triggers the disk load
	Transforms []Assignment // x_{w,ℓ}, ascending by layer
}

// FallbackStats counts the tiered fallback activations (§3.2 C4).
type FallbackStats struct {
	SoftThreshold      int
	IncrementalPreload int
	Greedy             int
}

// SolveStats is the Table 4 breakdown. Wakes and TrailOps expose the
// event-driven CP engine's internals — constraint activations scheduled by
// bound changes, and bound changes recorded on (then undone from) the
// backtracking trail — so solver-speed changes are observable in Table 4
// output rather than only in wall-clock noise.
type SolveStats struct {
	ProcessTime time.Duration // node/capacity processing
	BuildTime   time.Duration // CP model construction
	SolveTime   time.Duration // CP search
	Status      cpsat.Status  // OPTIMAL iff every window proved optimal
	Windows     int
	Branches    int64
	Wakes       int64
	TrailOps    int64
	Nogoods     int64 // learned CP nogoods installed across window solves
	Restarts    int64 // CP Luby restarts across window solves

	// CDCL counters (zero under LearnMode "restart"/"off"). Conflicts and
	// Backjumps expose the 1-UIP engine's analysis work; MinimizedLits the
	// self-subsumption payoff; ImportedNogoods the clauses a warm recommit
	// actually installed from a doomed speculative solve (zero unless
	// WarmRecommit, since only recommits import).
	Conflicts       int64
	Backjumps       int64
	MinimizedLits   int64
	ImportedNogoods int64

	// Repair provenance, set only on plans produced by the dynamic-scenario
	// path (repair.go) or its degradation ladder: the rung that produced the
	// plan and the window-level kept/re-solved split of the repair pass.
	// Cold solves leave all three zero. Like the wall-clock fields, they are
	// not part of the wire encoding, so they never perturb byte-identity.
	RepairRung            string
	RepairWindowsKept     int
	RepairWindowsResolved int

	// Pipeline counters (zero on sequential solves). Speculative counts
	// windows whose ahead-of-commit solve validated and was committed
	// as-is; Recommitted counts windows whose speculation failed validation
	// and were re-solved on the true state. Unlike the solver counters
	// above — which cover only committed solves and therefore match the
	// sequential run exactly — these two depend on scheduling.
	Speculative int
	Recommitted int

	Fallbacks FallbackStats
}

// Plan is a complete overlap plan for one model.
type Plan struct {
	Model     string
	ChunkSize units.Bytes
	MPeak     units.Bytes
	Weights   []WeightPlan // ascending by Weight node ID
	Stats     SolveStats
}

// Clone returns a deep copy of the plan: mutating the copy's weights,
// transforms, or stats never touches the original. Consumers that adjust a
// plan per serving context (AdjustLoadStarts mutates LoadStart in place)
// must clone first when the source is shared — cache entries, Repairable
// plans.
func (p *Plan) Clone() *Plan {
	q := *p
	q.Weights = make([]WeightPlan, len(p.Weights))
	for i, w := range p.Weights {
		w.Transforms = append([]Assignment(nil), w.Transforms...)
		q.Weights[i] = w
	}
	return &q
}

// Objective evaluates the §3.1 objective λ·|W| + (1−λ)·Σ(i_w − z_w) for
// the plan. It is comparable only between plans for the same graph and
// chunk size; the degradation ladder uses it to rank cached plan variants
// that all validate against the post-event device state.
func (p *Plan) Objective(lambda float64) float64 {
	var preloads, dist float64
	for _, w := range p.Weights {
		if w.Preload {
			preloads++
			continue
		}
		dist += float64(w.Weight - w.LoadStart)
	}
	return lambda*preloads + (1-lambda)*dist
}

// ByWeight returns the plan entry for a weight-owning node.
func (p *Plan) ByWeight(id graph.NodeID) (WeightPlan, bool) {
	for _, w := range p.Weights {
		if w.Weight == id {
			return w, true
		}
	}
	return WeightPlan{}, false
}

// MaxInflightBytes returns the plan's peak in-flight transformed memory:
// the maximum over layers of chunks transformed but not yet consumed. The
// runtime sizes its streaming arena by this value (real allocators hold
// their high-water mark), and C2 guarantees it stays ≤ M_peak.
func (p *Plan) MaxInflightBytes(graphLen int) units.Bytes {
	inflight := make([]int64, graphLen+1)
	for _, w := range p.Weights {
		for _, a := range w.Transforms {
			for l := a.Layer; l < w.Weight && int(l) <= graphLen; l++ {
				inflight[l] += int64(a.Chunks) * int64(p.ChunkSize)
			}
		}
	}
	var max int64
	for _, b := range inflight {
		if b > max {
			max = b
		}
	}
	return units.Bytes(max)
}

// PreloadBytes sums the bytes of the preload set W.
func (p *Plan) PreloadBytes() units.Bytes {
	var total units.Bytes
	for _, w := range p.Weights {
		if w.Preload {
			total += w.Bytes
		}
	}
	return total
}

// OverlapFraction is the fraction of weight bytes streamed during execution
// rather than preloaded (the paper reports an average of 49.3% overlapped
// at the Figure 8 sweet spot).
func (p *Plan) OverlapFraction() float64 {
	var total, preload units.Bytes
	for _, w := range p.Weights {
		total += w.Bytes
		if w.Preload {
			preload += w.Bytes
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(preload)/float64(total)
}

// Validate checks the plan against the §3.1 constraints for graph g with
// the given capacities. The capacity check allows the configured soft
// threshold relaxation; everything else is exact.
func (p *Plan) Validate(g *graph.Graph, caps Capacity, cfg Config) error {
	planned := make(map[graph.NodeID]WeightPlan, len(p.Weights))
	for _, w := range p.Weights {
		planned[w.Weight] = w
	}
	// Every weighted node must be planned.
	for _, id := range g.WeightedNodes() {
		w, ok := planned[id]
		if !ok {
			return fmt.Errorf("opg: weight of node %d unplanned", id)
		}
		want := Chunks(g.Node(id).Weight(), p.ChunkSize)
		if w.Chunks != want {
			return fmt.Errorf("opg: node %d has %d chunks, want %d", id, w.Chunks, want)
		}
	}

	perLayer := map[graph.NodeID]int{}
	for _, w := range p.Weights {
		if w.Preload {
			if len(w.Transforms) != 0 {
				return fmt.Errorf("opg: preloaded weight %d has transforms", w.Weight)
			}
			continue
		}
		// C0: completeness of allocation.
		sum := 0
		minLayer := graph.NodeID(1 << 30)
		for _, a := range w.Transforms {
			if a.Chunks <= 0 {
				return fmt.Errorf("opg: weight %d has empty assignment at %d", w.Weight, a.Layer)
			}
			if a.Layer >= w.Weight {
				return fmt.Errorf("opg: weight %d transformed at %d, not before consumption", w.Weight, a.Layer)
			}
			sum += a.Chunks
			if a.Layer < minLayer {
				minLayer = a.Layer
			}
			perLayer[a.Layer] += a.Chunks
		}
		if sum != w.Chunks {
			return fmt.Errorf("opg: weight %d allocates %d of %d chunks (C0)", w.Weight, sum, w.Chunks)
		}
		// C1: z_w at or before the first transforming layer.
		if w.LoadStart > minLayer {
			return fmt.Errorf("opg: weight %d loads at %d after first transform %d (C1)", w.Weight, w.LoadStart, minLayer)
		}
		if w.LoadStart < 0 || w.LoadStart >= w.Weight {
			return fmt.Errorf("opg: weight %d load start %d out of range (C1)", w.Weight, w.LoadStart)
		}
	}

	// C3: per-layer capacity within the soft threshold.
	relax := cfg.SoftThreshold
	if relax < 1 {
		relax = 1
	}
	for layer, chunks := range perLayer {
		capBytes := caps(g.Node(layer))
		limit := int(relax * float64(Chunks(capBytes, p.ChunkSize)))
		if chunks > limit {
			return fmt.Errorf("opg: layer %d carries %d chunks, capacity %d (C3)", layer, chunks, limit)
		}
	}

	// C2: cumulative in-flight transformed memory ≤ M_peak.
	inflight := make([]int64, g.Len()+1)
	for _, w := range p.Weights {
		for _, a := range w.Transforms {
			// Chunks occupy texture staging from transform until consumption.
			for l := a.Layer; l < w.Weight; l++ {
				inflight[l] += int64(a.Chunks) * int64(p.ChunkSize)
			}
		}
	}
	for l, b := range inflight {
		if b > int64(p.MPeak) {
			return fmt.Errorf("opg: in-flight %d bytes at layer %d exceeds M_peak %d (C2)", b, l, int64(p.MPeak))
		}
	}
	return nil
}
