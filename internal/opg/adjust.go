package opg

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/units"
)

// AdjustLoadStarts applies the profile-guided prefetch adjustment of §3.2:
// using a static per-layer time estimate, it moves each weight's disk-load
// start (z_w) early enough that the transfer finishes before the weight's
// first transform layer begins, modelling disk-queue backlog so consecutive
// large weights do not assume the full disk bandwidth each. Earlier loads
// lengthen unified-memory residency, so moves are budgeted: a weight's z_w
// only moves earlier while the projected UM in-flight bytes at every newly
// covered layer stay within umBudget (M_peak spans weights in both UM and
// TM, §3.1). Disk-bound models therefore stall rather than flood UM —
// the λ≈0.9 memory-priority trade.
//
// layerTime estimates the execution latency of one layer; diskBW is the
// storage bandwidth. Only LoadStart fields change; C1 is preserved because
// loads only move earlier.
func AdjustLoadStarts(p *Plan, g *graph.Graph, layerTime func(graph.NodeID) units.Duration, diskBW units.Bandwidth, umBudget units.Bytes) {
	// Prefix start-time estimates: est[l] = Σ_{k<l} layerTime(k).
	est := make([]units.Duration, g.Len()+1)
	for i := 0; i < g.Len(); i++ {
		est[i+1] = est[i] + layerTime(graph.NodeID(i))
	}

	// Projected UM residency per layer from the unadjusted plan: a weight
	// occupies UM from z_w until its last transform layer.
	umLoad := make([]int64, g.Len())
	addSpan := func(from, to graph.NodeID, b units.Bytes) {
		for l := from; l <= to && int(l) < len(umLoad); l++ {
			umLoad[l] += int64(b)
		}
	}
	lastTransform := func(wp *WeightPlan) graph.NodeID {
		return wp.Transforms[len(wp.Transforms)-1].Layer
	}
	for i := range p.Weights {
		if wp := &p.Weights[i]; !wp.Preload {
			addSpan(wp.LoadStart, lastTransform(wp), wp.Bytes)
		}
	}

	// Process weights in consumption order so disk-queue backlog accumulates
	// the way the runtime will issue the loads.
	order := make([]*WeightPlan, 0, len(p.Weights))
	for i := range p.Weights {
		if !p.Weights[i].Preload {
			order = append(order, &p.Weights[i])
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Weight < order[j].Weight })

	var diskFree units.Duration // when the disk queue drains
	for _, wp := range order {
		need := est[wp.Transforms[0].Layer] // first transform layer start
		loadTime := diskBW.Time(wp.Bytes)

		// Earliest useful start given queue backlog; walk z earlier until the
		// load (queued behind prior loads) completes by `need`, we hit 0, or
		// the UM budget at a newly covered layer would be exceeded.
		z := wp.LoadStart
		for z > 0 {
			start := units.MaxDuration(est[z], diskFree)
			if start+loadTime <= need {
				break
			}
			if umBudget > 0 && umLoad[z-1]+int64(wp.Bytes) > int64(umBudget) {
				break
			}
			z--
			umLoad[z] += int64(wp.Bytes)
		}
		wp.LoadStart = z
		start := units.MaxDuration(est[z], diskFree)
		diskFree = start + loadTime
	}
}
