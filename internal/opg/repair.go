package opg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cpsat"
	"repro/internal/graph"
)

// Incremental plan repair for dynamic scenarios: when a device-condition
// event reshapes the solver's inputs mid-flight — a memory-budget step
// changes M_peak, thermal throttling rescales every layer's load capacity —
// the plan does not have to be re-solved from scratch. A Repairable retains
// the per-window solve results of a traced sequential solve, and Repair
// walks the windows in order against the post-event state: a window whose
// canonical read trace replays exactly is kept as-is (the replay theorem
// from window.go — equal reads imply the solve would reproduce the result
// byte for byte), and only the windows the event actually touched are
// re-solved. Re-solves can optionally warm-start from the retained rung
// records through the cpsat nogood-import surface, exactly as failed
// speculations do under Config.WarmRecommit.
//
// The first window a budget drop affects is found by the replay itself:
// earlier windows replay clean (their reads are insensitive to the event),
// so the committed prefix survives and the re-solve cost is proportional to
// the damage, not the model size.

// Degradation-ladder rung labels: how a served plan was produced after a
// device-condition event. RungRepaired and RungPatched originate here; the
// ladder in internal/replan adds the cached-variant and shedding rungs.
const (
	RungCold          = "cold"           // full from-scratch solve
	RungRepaired      = "repaired"       // incremental repair, proven equal
	RungCachedVariant = "cached_variant" // cached plan revalidated for the new state
	RungPatched       = "patched"        // replay-valid windows kept, rest greedy
	RungShed          = "shed"           // model dropped under memory pressure
	RungRestored      = "restored"       // previously shed model back in service
)

// ErrRepairBudget reports that an incremental repair exceeded its latency
// budget; the Repairable is left exactly as it was, and the caller should
// fall down the degradation ladder.
var ErrRepairBudget = errors.New("opg: repair exceeded its latency budget")

// ErrRepairIncompatible reports a config change repair cannot express: only
// MPeak and the capacity function may differ from the solve the Repairable
// retains. Anything else (chunking, window span, ladder or budget knobs)
// invalidates the retained traces wholesale, so the caller must re-solve.
var ErrRepairIncompatible = errors.New("opg: config change outside MPeak requires a fresh solve")

// Repairable is a solved plan plus everything needed to repair it in place:
// the enumerated windows and each window's full solve result — plan
// entries, state deltas, canonical read trace, and CP rung records for
// warm-started re-solves. Build one with SolveRepairable; its plan is
// byte-identical to Solve on the same inputs. A Repairable is not safe for
// concurrent use; callers serialize Repair/GreedyPatch/Plan.
type Repairable struct {
	g       *graph.Graph
	caps    Capacity
	cfg     Config
	wins    []window
	results []*windowResult
	plan    *Plan
}

// solveWindowRecorded runs one window's ladder with full read tracing and
// rung-record capture, optionally warm-seeded from a prior result's
// records. It is the repair path's variant of solveWindow: sequential and
// pipeline solves record rungs only under WarmRecommit, where recommits are
// the exception, but every repairable window is a potential future warm
// start.
func solveWindowRecorded(cfg *Config, win window, baseCap []int, baseIn []int64, warm *windowResult) *windowResult {
	v := newWinView(cfg, win, baseCap, baseIn, true)
	ws := &winSolver{
		cfg: cfg, v: v, win: win,
		res:           &windowResult{off: win.off},
		warm:          warm,
		recordExports: true,
	}
	ws.bearing = make([]uint8, win.end-win.off)
	ws.solveBatch(win.batch)
	ws.res.capUsed = v.capUsed
	ws.res.inAdd = v.inAdd
	ws.res.trace = v.trace
	return ws.res
}

// newRepairSolver builds the solver shell shared by SolveRepairable,
// Repair, and GreedyPatch: normalized plan skeleton plus fresh per-layer
// state derived from the capacity function.
func newRepairSolver(g *graph.Graph, caps Capacity, cfg Config) *solver {
	s := &solver{
		g: g, caps: caps, cfg: cfg,
		plan: &Plan{Model: g.Name, ChunkSize: cfg.ChunkSize, MPeak: cfg.MPeak},
	}
	s.stats = &s.plan.Stats
	s.stats.Status = cpsat.Optimal
	t0 := time.Now()
	s.capRemaining = make([]int, g.Len())
	s.inflight = make([]int64, g.Len())
	for _, n := range g.Nodes() {
		s.capRemaining[n.ID] = Chunks(caps(n), cfg.ChunkSize)
	}
	s.stats.ProcessTime = time.Since(t0)
	return s
}

// normConfig applies Solve's defaulting so Repairable configs compare
// field-for-field.
func normConfig(cfg Config) Config {
	if cfg.ChunkSize <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.SoftThreshold < 1 {
		cfg.SoftThreshold = 1
	}
	return cfg
}

// SolveRepairable runs a traced sequential LC-OPG solve and retains the
// per-window machinery for later repair. The resulting plan is
// byte-identical to Solve(g, caps, cfg): tracing and rung recording only
// observe the solve, they never steer it.
func SolveRepairable(g *graph.Graph, caps Capacity, cfg Config) *Repairable {
	cfg = normConfig(cfg)
	s := newRepairSolver(g, caps, cfg)

	var weights []weightItem
	for _, id := range g.WeightedNodes() {
		b := g.Node(id).Weight()
		weights = append(weights, weightItem{node: id, bytes: b, chunks: Chunks(b, cfg.ChunkSize)})
	}
	wins := enumerateWindows(weights, cfg.Window)
	results := make([]*windowResult, len(wins))
	for i, win := range wins {
		res := solveWindowRecorded(&s.cfg, win, s.capRemaining, s.inflight, nil)
		results[i] = res
		s.apply(res)
	}
	sort.Slice(s.plan.Weights, func(i, j int) bool {
		return s.plan.Weights[i].Weight < s.plan.Weights[j].Weight
	})
	return &Repairable{g: g, caps: caps, cfg: cfg, wins: wins, results: results, plan: s.plan}
}

// Graph returns the graph the Repairable plans for.
func (r *Repairable) Graph() *graph.Graph { return r.g }

// Config returns the configuration of the currently retained plan.
func (r *Repairable) Config() Config { return r.cfg }

// Windows returns the number of rolling windows the plan solves over.
func (r *Repairable) Windows() int { return len(r.wins) }

// Plan returns a deep copy of the currently retained plan, safe to adjust
// and serve.
func (r *Repairable) Plan() *Plan { return r.plan.Clone() }

// clone returns an independent Repairable sharing the immutable per-window
// results — benchmarks use it to repair from the same baseline repeatedly.
func (r *Repairable) clone() *Repairable {
	return &Repairable{
		g: r.g, caps: r.caps, cfg: r.cfg, wins: r.wins,
		results: append([]*windowResult(nil), r.results...),
		plan:    r.plan,
	}
}

// compatible checks that cfg differs from the retained config in MPeak
// only.
func (r *Repairable) compatible(cfg Config) error {
	masked := r.cfg
	masked.MPeak = cfg.MPeak
	if masked != cfg {
		return fmt.Errorf("%w (have %+v, want %+v)", ErrRepairIncompatible, r.cfg, cfg)
	}
	return nil
}

// RepairOptions tunes one repair pass.
type RepairOptions struct {
	// Budget caps the repair's wall-clock time; 0 means unlimited. A repair
	// that exceeds it aborts with ErrRepairBudget, leaving the Repairable
	// untouched — the degradation ladder takes over from there.
	Budget time.Duration

	// ImportNogoods warm-starts each re-solved window from the retained
	// rung records via cpsat.ImportCompatible, exactly as WarmRecommit does
	// for failed speculations. Imports change the CP search trajectory, so
	// repaired plans may differ from (while remaining as valid as) a cold
	// solve's — an explicit opt-in, mirroring Config.WarmRecommit.
	ImportNogoods bool
}

// RepairStats summarizes one repair pass.
type RepairStats struct {
	WindowsKept     int           // windows whose traces replayed clean
	WindowsResolved int           // windows re-solved on the post-event state
	ImportedNogoods int64         // nogoods installed by warm re-solves
	Elapsed         time.Duration // wall clock of the whole pass
}

// Repair re-targets the retained plan at a new device condition: fresh
// capacities (thermal throttling reshapes the cost model) and/or a new
// in-flight budget (cfg.MPeak). Windows whose canonical reads replay
// unchanged against the new state are kept; the rest re-solve. On success
// the Repairable holds the repaired plan — without ImportNogoods it is
// byte-identical to a from-scratch Solve on the post-event scenario, the
// property the differential test in repair_test.go pins down. On error
// (budget exceeded, incompatible config) the Repairable is unchanged.
func (r *Repairable) Repair(caps Capacity, cfg Config, opts RepairOptions) (RepairStats, error) {
	cfg = normConfig(cfg)
	if err := r.compatible(cfg); err != nil {
		return RepairStats{}, err
	}
	t0 := time.Now()
	s := newRepairSolver(r.g, caps, cfg)
	results := make([]*windowResult, len(r.wins))
	var st RepairStats
	for i, win := range r.wins {
		if opts.Budget > 0 && time.Since(t0) > opts.Budget {
			st.Elapsed = time.Since(t0)
			return st, ErrRepairBudget
		}
		old := r.results[i]
		// Wall-clocked solves are timing-dependent: their results are not a
		// pure function of the recorded reads, so they are never reused —
		// the same rule the speculative pipeline applies at commit.
		if old != nil && !old.wallClocked && replayOK(old, &s.cfg, s.capRemaining, s.inflight) {
			results[i] = old
			s.apply(old)
			st.WindowsKept++
			continue
		}
		var warm *windowResult
		if opts.ImportNogoods {
			warm = old
		}
		res := solveWindowRecorded(&s.cfg, win, s.capRemaining, s.inflight, warm)
		results[i] = res
		s.apply(res)
		st.WindowsResolved++
		st.ImportedNogoods += res.stats.importedNogoods
	}
	sort.Slice(s.plan.Weights, func(i, j int) bool {
		return s.plan.Weights[i].Weight < s.plan.Weights[j].Weight
	})
	st.Elapsed = time.Since(t0)
	s.stats.RepairRung = RungRepaired
	s.stats.RepairWindowsKept = st.WindowsKept
	s.stats.RepairWindowsResolved = st.WindowsResolved
	r.caps, r.cfg, r.results, r.plan = caps, cfg, results, s.plan
	return st, nil
}

// greedyWindow solves one window with the structural prefilter plus the
// rung-4 greedy heuristic only — no CP. It is the patch path's window
// solve: always succeeds, costs microseconds, and marks the result
// degraded.
func greedyWindow(cfg *Config, win window, baseCap []int, baseIn []int64) *windowResult {
	v := newWinView(cfg, win, baseCap, baseIn, false)
	ws := &winSolver{cfg: cfg, v: v, win: win, res: &windowResult{off: win.off}}
	ws.bearing = make([]uint8, win.end-win.off)
	var items []weightItem
	for _, w := range win.batch {
		wCands := ws.candidates(w)
		var capSum int64
		for _, l := range wCands {
			capSum += ws.v.capMin(int(l), int64(w.chunks))
		}
		switch {
		case len(wCands) == 0, capSum < int64(w.chunks):
			ws.preload(w)
		case ws.v.mpeakGT(int64(w.chunks) * int64(cfg.ChunkSize)):
			ws.preload(w)
		default:
			items = append(items, w)
		}
	}
	if len(items) > 0 {
		ws.res.stats.fallbacks.Greedy++
		ws.res.stats.degraded = true
		ws.greedy(items)
	}
	ws.res.capUsed = v.capUsed
	ws.res.inAdd = v.inAdd
	return ws.res
}

// GreedyPatch is the degradation ladder's prefix-preserving fallback: every
// window whose trace still replays clean against the post-event state keeps
// its solved result, and the affected windows are re-filled by the greedy
// heuristic alone — no CP, so the patch costs microseconds per window and
// cannot miss a latency budget. The patched plan validates like any greedy
// fallback plan but is not optimal; the Repairable is left unchanged (its
// retained solve no longer matches any served state, so the caller should
// schedule a proper repair or re-solve).
func (r *Repairable) GreedyPatch(caps Capacity, cfg Config) (*Plan, RepairStats, error) {
	cfg = normConfig(cfg)
	if err := r.compatible(cfg); err != nil {
		return nil, RepairStats{}, err
	}
	t0 := time.Now()
	s := newRepairSolver(r.g, caps, cfg)
	var st RepairStats
	for i, win := range r.wins {
		old := r.results[i]
		if old != nil && !old.wallClocked && replayOK(old, &s.cfg, s.capRemaining, s.inflight) {
			s.apply(old)
			st.WindowsKept++
			continue
		}
		s.apply(greedyWindow(&s.cfg, win, s.capRemaining, s.inflight))
		st.WindowsResolved++
	}
	sort.Slice(s.plan.Weights, func(i, j int) bool {
		return s.plan.Weights[i].Weight < s.plan.Weights[j].Weight
	})
	st.Elapsed = time.Since(t0)
	s.stats.RepairRung = RungPatched
	s.stats.RepairWindowsKept = st.WindowsKept
	s.stats.RepairWindowsResolved = st.WindowsResolved
	return s.plan, st, nil
}
