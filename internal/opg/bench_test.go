package opg

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profiler"
)

// Cold-solve benchmarks: a full LC-OPG run with no plan cache, the exact
// path every first-sight Prepare, solver-version bump, and cache-miss
// sweep cell pays. Budgets match bench_test.go's Table 4 runner so the
// numbers line up with BenchmarkTable4Solver. Run via `make bench-solver`;
// CI's nightly job archives the results as BENCH_solver.json.

func benchColdSolve(b *testing.B, spec models.Spec) {
	b.Helper()
	g := spec.Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := DefaultConfig()
	cfg.SolveTimeout = 60 * time.Millisecond
	cfg.MaxBranches = 4000
	cfg = AdaptMPeak(cfg, g)
	b.ReportAllocs()
	b.ResetTimer()
	var plan *Plan
	for i := 0; i < b.N; i++ {
		plan = Solve(g, caps, cfg)
	}
	b.StopTimer()
	if err := plan.Validate(g, caps, cfg); err != nil {
		b.Fatalf("plan invalid: %v", err)
	}
	b.ReportMetric(float64(plan.Stats.Branches), "branches")
	b.ReportMetric(float64(plan.Stats.Wakes), "wakes")
	b.ReportMetric(plan.Stats.SolveTime.Seconds(), "solve-s")
}

// BenchmarkColdSolveLlama70B is the largest bundled model — the worst cold
// solve in Table 4.
func BenchmarkColdSolveLlama70B(b *testing.B) {
	benchColdSolve(b, models.SolverOnly()[2])
}

func BenchmarkColdSolveViT8B(b *testing.B) {
	benchColdSolve(b, models.SolverOnly()[0])
}

func BenchmarkColdSolveGPTNeoS(b *testing.B) {
	benchColdSolve(b, models.MustByAbbr("GPTN-S"))
}
