package opg

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profiler"
)

// Cold-solve benchmarks: a full LC-OPG run with no plan cache, the exact
// path every first-sight Prepare, solver-version bump, and cache-miss
// sweep cell pays. Budgets match bench_test.go's Table 4 runner so the
// numbers line up with BenchmarkTable4Solver. Run via `make bench-solver`;
// CI's nightly job archives the results as BENCH_solver.json.

func benchColdSolve(b *testing.B, spec models.Spec, parallelism int) {
	b.Helper()
	g := spec.Build()
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := DefaultConfig()
	cfg.SolveTimeout = 60 * time.Millisecond
	cfg.MaxBranches = 4000
	cfg.Parallelism = parallelism
	cfg = AdaptMPeak(cfg, g)
	b.ReportAllocs()
	b.ResetTimer()
	var plan *Plan
	for i := 0; i < b.N; i++ {
		plan = Solve(g, caps, cfg)
	}
	b.StopTimer()
	if err := plan.Validate(g, caps, cfg); err != nil {
		b.Fatalf("plan invalid: %v", err)
	}
	b.ReportMetric(float64(plan.Stats.Branches), "branches")
	b.ReportMetric(float64(plan.Stats.Wakes), "wakes")
	b.ReportMetric(plan.Stats.SolveTime.Seconds(), "solve-s")
	if parallelism > 1 {
		b.ReportMetric(float64(plan.Stats.Speculative), "spec-windows")
		b.ReportMetric(float64(plan.Stats.Recommitted), "recommits")
	}
}

// BenchmarkColdSolveLlama70B is the largest bundled model — the worst cold
// solve in Table 4.
func BenchmarkColdSolveLlama70B(b *testing.B) {
	benchColdSolve(b, models.SolverOnly()[2], 0)
}

func BenchmarkColdSolveViT8B(b *testing.B) {
	benchColdSolve(b, models.SolverOnly()[0], 0)
}

func BenchmarkColdSolveGPTNeoS(b *testing.B) {
	benchColdSolve(b, models.MustByAbbr("GPTN-S"), 0)
}

// Parallel variants run the speculative window pipeline at GOMAXPROCS;
// plans are byte-identical to the sequential runs above, so the delta is
// pure wall-clock. GPT-Neo-S is the capacity-rich case where speculation
// validates nearly always; Llama2-70B is the contended case where the
// adaptive throttle keeps doomed speculation from hurting.
func BenchmarkColdSolveLlama70BParallel(b *testing.B) {
	benchColdSolve(b, models.SolverOnly()[2], runtime.GOMAXPROCS(0))
}

func BenchmarkColdSolveGPTNeoSParallel(b *testing.B) {
	benchColdSolve(b, models.MustByAbbr("GPTN-S"), runtime.GOMAXPROCS(0))
}

// Contended variants: the default 500 MB M_peak is NOT adapted to the
// model, so every Llama2-70B window fights for in-flight headroom and the
// boundary windows exhaust their budgets — the family where failed
// speculation and recommits actually happen. The Warm variant additionally
// re-seeds those recommits with the doomed solves' learned nogoods
// (Config.WarmRecommit), so Warm vs Parallel isolates what nogood import
// is worth on exactly the re-solves that pay for speculation misses.
func benchContendedSolve(b *testing.B, parallelism int, warm bool) {
	b.Helper()
	g := models.SolverOnly()[2].Build() // Llama2-70B
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	cfg := DefaultConfig()
	cfg.SolveTimeout = 60 * time.Millisecond
	cfg.MaxBranches = 4000
	cfg.Parallelism = parallelism
	cfg.WarmRecommit = warm
	b.ReportAllocs()
	b.ResetTimer()
	var plan *Plan
	for i := 0; i < b.N; i++ {
		plan = Solve(g, caps, cfg)
	}
	b.StopTimer()
	if err := plan.Validate(g, caps, cfg); err != nil {
		b.Fatalf("plan invalid: %v", err)
	}
	b.ReportMetric(float64(plan.Stats.Branches), "branches")
	b.ReportMetric(plan.Stats.SolveTime.Seconds(), "solve-s")
	if parallelism > 1 {
		b.ReportMetric(float64(plan.Stats.Recommitted), "recommits")
		b.ReportMetric(float64(plan.Stats.ImportedNogoods), "imported-ng")
	}
}

func BenchmarkColdSolveContended70B(b *testing.B) {
	benchContendedSolve(b, 0, false)
}

func BenchmarkColdSolveContended70BParallel(b *testing.B) {
	benchContendedSolve(b, runtime.GOMAXPROCS(0), false)
}

func BenchmarkColdSolveContended70BWarm(b *testing.B) {
	benchContendedSolve(b, runtime.GOMAXPROCS(0), true)
}
