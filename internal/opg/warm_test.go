package opg

import (
	"testing"

	"repro/internal/units"
)

// Tests for the learning-engine selector and the opt-in warm-recommit
// path: every LearnMode must yield a valid plan, and warm recommits —
// which re-seed failed speculations with nogoods learned by the doomed
// solves — must preserve plan validity even though they may legitimately
// diverge from the sequential plan.

func TestLearnModesProduceValidPlans(t *testing.T) {
	for _, mode := range []string{"", "cdcl", "restart", "off"} {
		g := toyGraph(40, 8*units.MB)
		caps := flatCapacity(4 * units.MB)
		cfg := deterministicConfig()
		cfg.LearnMode = mode
		p := Solve(g, caps, cfg)
		if err := p.Validate(g, caps, cfg); err != nil {
			t.Fatalf("LearnMode=%q: invalid plan: %v", mode, err)
		}
		// Conflicts counts dead-ends and so ticks in every engine; the
		// learning outputs are what must stay zero without Learn.
		if mode == "off" && (p.Stats.Nogoods != 0 || p.Stats.Restarts != 0 ||
			p.Stats.Backjumps != 0 || p.Stats.MinimizedLits != 0) {
			t.Fatalf("LearnMode=off still learned: %+v", p.Stats)
		}
		if mode == "restart" && (p.Stats.Backjumps != 0 || p.Stats.MinimizedLits != 0) {
			t.Fatalf("LearnMode=restart reported CDCL-only counters: %+v", p.Stats)
		}
	}
}

func TestLearnModeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown LearnMode did not panic")
		}
	}()
	cfg := Config{LearnMode: "dpll"}
	cfg.learnOptions()
}

// TestWarmRecommitProducesValidPlans runs the speculative pipeline with
// warm recommits on a contended toy chain many times; every committed
// plan must satisfy C0-C3 regardless of which speculations happened to
// fail and what their doomed solves had learned.
func TestWarmRecommitProducesValidPlans(t *testing.T) {
	iters := 10
	if testing.Short() {
		iters = 3
	}
	g := toyGraph(40, 8*units.MB)
	caps := flatCapacity(4 * units.MB)
	cfg := deterministicConfig()
	cfg.Window = 8 // many windows so speculation (and failed speculation) fires
	cfg.Parallelism = 4
	cfg.WarmRecommit = true
	var recommits, imported int64
	for i := 0; i < iters; i++ {
		p := Solve(g, caps, cfg)
		if err := p.Validate(g, caps, cfg); err != nil {
			t.Fatalf("iter %d: warm-recommit plan invalid: %v", i, err)
		}
		recommits += int64(p.Stats.Recommitted)
		imported += p.Stats.ImportedNogoods
	}
	// Scheduling-dependent, so informational: whether any recommit found a
	// compatible warm rung varies run to run.
	t.Logf("%d recommits, %d imported nogoods across %d runs", recommits, imported, iters)
}
