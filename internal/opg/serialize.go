package opg

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/units"
)

// The solver runs offline, "generating a reusable overlap plan that incurs
// no runtime overhead during inference" (§3.2). Plans therefore serialize:
// solve once on a workstation, ship the JSON with the model, load and
// validate on device.

// planJSON is the stable wire format.
type planJSON struct {
	Version   int          `json:"version"`
	Model     string       `json:"model"`
	ChunkSize int64        `json:"chunk_size"`
	MPeak     int64        `json:"m_peak"`
	Weights   []weightJSON `json:"weights"`
}

type weightJSON struct {
	Weight     int              `json:"weight"`
	Bytes      int64            `json:"bytes"`
	Chunks     int              `json:"chunks"`
	Preload    bool             `json:"preload,omitempty"`
	LoadStart  int              `json:"load_start,omitempty"`
	Transforms []assignmentJSON `json:"transforms,omitempty"`
}

type assignmentJSON struct {
	Layer  int `json:"layer"`
	Chunks int `json:"chunks"`
}

const planFormatVersion = 1

// Encode writes the plan as JSON.
func (p *Plan) Encode(w io.Writer) error {
	out := planJSON{
		Version:   planFormatVersion,
		Model:     p.Model,
		ChunkSize: int64(p.ChunkSize),
		MPeak:     int64(p.MPeak),
	}
	for _, wp := range p.Weights {
		wj := weightJSON{
			Weight: int(wp.Weight), Bytes: int64(wp.Bytes), Chunks: wp.Chunks,
			Preload: wp.Preload, LoadStart: int(wp.LoadStart),
		}
		for _, a := range wp.Transforms {
			wj.Transforms = append(wj.Transforms, assignmentJSON{Layer: int(a.Layer), Chunks: a.Chunks})
		}
		out.Weights = append(out.Weights, wj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Decode reads a plan previously written by Encode. Structural sanity is
// checked here; call Validate against the target graph before executing.
func Decode(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("opg: decoding plan: %w", err)
	}
	if in.Version != planFormatVersion {
		return nil, fmt.Errorf("opg: plan format version %d, want %d", in.Version, planFormatVersion)
	}
	if in.ChunkSize <= 0 {
		return nil, fmt.Errorf("opg: plan has non-positive chunk size")
	}
	p := &Plan{
		Model:     in.Model,
		ChunkSize: units.Bytes(in.ChunkSize),
		MPeak:     units.Bytes(in.MPeak),
	}
	for _, wj := range in.Weights {
		wp := WeightPlan{
			Weight: graph.NodeID(wj.Weight), Bytes: units.Bytes(wj.Bytes), Chunks: wj.Chunks,
			Preload: wj.Preload, LoadStart: graph.NodeID(wj.LoadStart),
		}
		for _, a := range wj.Transforms {
			wp.Transforms = append(wp.Transforms, Assignment{Layer: graph.NodeID(a.Layer), Chunks: a.Chunks})
		}
		p.Weights = append(p.Weights, wp)
	}
	return p, nil
}
