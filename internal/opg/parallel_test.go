package opg

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profiler"
	"repro/internal/units"
)

// deterministicConfig returns CP budgets that are branch-bound, not
// wall-clock-bound — the same trick the CI sharded matrix uses: a generous
// time limit with a binding branch budget keeps every window solve a pure
// function of its inputs, which is what parallel≡sequential equivalence
// needs (and what the pipeline's wallClocked guard protects).
func deterministicConfig() Config {
	cfg := DefaultConfig()
	cfg.SolveTimeout = 30 * time.Second
	cfg.MaxBranches = 1500
	return cfg
}

func encodePlan(t *testing.T, p *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelPlanEquivalenceTable4 pins the pipeline's core guarantee:
// at Parallelism=8 the committed plan is byte-identical to a sequential
// solve across the Table 4 model set, and the committed-solve counters
// match exactly (only the scheduling-dependent Speculative/Recommitted
// diagnostics may differ).
func TestParallelPlanEquivalenceTable4(t *testing.T) {
	specs := models.Table4Set()
	if testing.Short() {
		specs = specs[:3] // the GPT-Neo family; the billion-scale rows are nightly food
	}
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	for _, spec := range specs {
		g := spec.Build()
		cfg := AdaptMPeak(deterministicConfig(), g)

		seq := Solve(g, caps, cfg)

		par := cfg
		par.Parallelism = 8
		pp := Solve(g, caps, par)

		if !bytes.Equal(encodePlan(t, seq), encodePlan(t, pp)) {
			t.Errorf("%s: parallel plan differs from sequential", spec.Abbr)
			continue
		}
		ss, ps := seq.Stats, pp.Stats
		if ss.Windows != ps.Windows || ss.Status != ps.Status ||
			ss.Branches != ps.Branches || ss.Wakes != ps.Wakes ||
			ss.TrailOps != ps.TrailOps || ss.Nogoods != ps.Nogoods ||
			ss.Restarts != ps.Restarts || ss.Fallbacks != ps.Fallbacks {
			t.Errorf("%s: committed-solve counters diverged:\nseq %+v\npar %+v", spec.Abbr, ss, ps)
		}
		if ss.Speculative != 0 || ss.Recommitted != 0 {
			t.Errorf("%s: sequential solve reported pipeline counters: %+v", spec.Abbr, ss)
		}
		// Scheduling-dependent, so informational only: under degenerate
		// scheduling one worker can direct-solve every frontier window
		// before any peer speculates, leaving both counters zero.
		t.Logf("%s: %d windows, %d speculative, %d recommitted",
			spec.Abbr, ps.Windows, ps.Speculative, ps.Recommitted)
		if err := pp.Validate(g, caps, cfg); err != nil {
			t.Errorf("%s: parallel plan invalid: %v", spec.Abbr, err)
		}
	}
}

// TestParallelPlanEquivalenceToy repeats the check across toy shapes where
// capacity pressure, M_peak pressure, and zero-capacity fallbacks each
// drive different ladder rungs.
func TestParallelPlanEquivalenceToy(t *testing.T) {
	cases := []struct {
		name     string
		capBytes units.Bytes
		mpeak    units.Bytes
	}{
		{"ample", 16 * units.MB, 500 * units.MB},
		{"tightCap", 3 * units.MB, 500 * units.MB},
		{"tightMPeak", 16 * units.MB, 6 * units.MB},
		{"zeroCap", 0, 500 * units.MB},
	}
	for _, tc := range cases {
		g := toyGraph(30, 8*units.MB)
		caps := flatCapacity(tc.capBytes)
		cfg := deterministicConfig()
		cfg.MPeak = tc.mpeak
		cfg.Window = 12 // several windows even on the toy chain

		seq := Solve(g, caps, cfg)
		par := cfg
		par.Parallelism = 4
		pp := Solve(g, caps, par)

		if !bytes.Equal(encodePlan(t, seq), encodePlan(t, pp)) {
			t.Errorf("%s: parallel plan differs from sequential", tc.name)
		}
		if err := pp.Validate(g, caps, par); err != nil {
			t.Errorf("%s: parallel plan invalid: %v", tc.name, err)
		}
	}
}

// TestParallelismExcludedFromKeyedBehavior pins that Parallelism is pure
// scheduling: plan contents, statuses, and counters do not depend on the
// worker count.
func TestParallelismWorkerCountInvariance(t *testing.T) {
	g := toyGraph(24, 6*units.MB)
	caps := flatCapacity(10 * units.MB)
	cfg := deterministicConfig()
	cfg.Window = 10
	var ref []byte
	for _, p := range []int{1, 2, 3, 8, 16} {
		c := cfg
		c.Parallelism = p
		plan := Solve(g, caps, c)
		enc := encodePlan(t, plan)
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(ref, enc) {
			t.Fatalf("Parallelism=%d changed the plan", p)
		}
	}
}

// TestSolveStatsLearningCountersPopulated checks the new counters flow
// through SolveStats on a contended model that actually conflicts.
func TestSolveStatsLearningCountersPopulated(t *testing.T) {
	g := toyGraph(40, 8*units.MB)
	caps := flatCapacity(4 * units.MB)
	cfg := deterministicConfig()
	cfg.MaxBranches = 20000
	p := Solve(g, caps, cfg)
	if p.Stats.Nogoods == 0 && p.Stats.Restarts == 0 {
		t.Skip("model produced no CP conflicts; learning counters legitimately zero")
	}
	if p.Stats.Nogoods < 0 || p.Stats.Restarts < 0 {
		t.Fatalf("negative learning counters: %+v", p.Stats)
	}
}
