package power

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/units"
)

func TestIdleOnly(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	u := Default().Measure(m, 2*units.Second)
	if math.Abs(u.AveragePowerW-Default().Idle) > 1e-9 {
		t.Errorf("idle power = %v, want %v", u.AveragePowerW, Default().Idle)
	}
	if math.Abs(u.EnergyJ-Default().Idle*2) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", u.EnergyJ, Default().Idle*2)
	}
}

func TestBusyPhasesAdd(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, units.Second) // 1 s compute
	m.DiskLoad(0, 1500*units.MB) // ~1 s transfer at 1.5 GB/s
	u := Default().Measure(m, 2*units.Second)
	p := Default()
	wantE := p.Idle*2 + p.Compute*1 + p.Transfer*float64(m.Transfer.BusyTotal().Seconds())
	if math.Abs(u.EnergyJ-wantE) > 1e-6 {
		t.Errorf("energy = %v, want %v", u.EnergyJ, wantE)
	}
	if u.AveragePowerW <= p.Idle {
		t.Error("busy run must draw more than idle")
	}
}

func TestEnergyEqualsAvgPowerTimesLatency(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, 500)
	horizon := units.Duration(800)
	u := Default().Measure(m, horizon)
	if math.Abs(u.EnergyJ-u.AveragePowerW*horizon.Seconds()) > 1e-9 {
		t.Error("energy must equal average power times horizon")
	}
}

func TestZeroHorizon(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	if u := Default().Measure(m, 0); u.EnergyJ != 0 || u.AveragePowerW != 0 {
		t.Errorf("zero horizon must be zero usage, got %+v", u)
	}
}

func TestBusyClampedToHorizon(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, 10*units.Second)
	u := Default().Measure(m, units.Second) // observe only the first second
	p := Default()
	if max := p.Idle + p.Compute + p.Transfer; u.AveragePowerW > max+1e-9 {
		t.Errorf("average power %v exceeds physical max %v", u.AveragePowerW, max)
	}
}
