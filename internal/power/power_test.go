package power

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/units"
)

func TestIdleOnly(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	u := Default().Measure(m, 2*units.Second)
	if math.Abs(u.AveragePowerW-Default().Idle) > 1e-9 {
		t.Errorf("idle power = %v, want %v", u.AveragePowerW, Default().Idle)
	}
	if math.Abs(u.EnergyJ-Default().Idle*2) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", u.EnergyJ, Default().Idle*2)
	}
}

func TestBusyPhasesAdd(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, units.Second) // 1 s compute
	m.DiskLoad(0, 1500*units.MB) // ~1 s transfer at 1.5 GB/s
	u := Default().Measure(m, 2*units.Second)
	p := Default()
	wantE := p.Idle*2 + p.Compute*1 + p.Transfer*float64(m.Transfer.BusyTotal().Seconds())
	if math.Abs(u.EnergyJ-wantE) > 1e-6 {
		t.Errorf("energy = %v, want %v", u.EnergyJ, wantE)
	}
	if u.AveragePowerW <= p.Idle {
		t.Error("busy run must draw more than idle")
	}
}

func TestEnergyEqualsAvgPowerTimesLatency(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, 500)
	horizon := units.Duration(800)
	u := Default().Measure(m, horizon)
	if math.Abs(u.EnergyJ-u.AveragePowerW*horizon.Seconds()) > 1e-9 {
		t.Error("energy must equal average power times horizon")
	}
}

func TestZeroHorizon(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	if u := Default().Measure(m, 0); u.EnergyJ != 0 || u.AveragePowerW != 0 {
		t.Errorf("zero horizon must be zero usage, got %+v", u)
	}
}

func TestBusyClampedToHorizon(t *testing.T) {
	m := gpusim.New(device.OnePlus12())
	m.RunKernel(0, 10*units.Second)
	u := Default().Measure(m, units.Second) // observe only the first second
	p := Default()
	if max := p.Idle + p.Compute + p.Transfer; u.AveragePowerW > max+1e-9 {
		t.Errorf("average power %v exceeds physical max %v", u.AveragePowerW, max)
	}
}

// TestThrottleMonotoneAndRestores is the thermal-transition table test:
// every throttle step must raise the modeled kernel cost monotonically
// (strictly, for kernels with real work), and releasing the throttle must
// restore the baseline cost model exactly — not approximately, since plan
// repair treats "throttle released" as "back to the retained baseline".
func TestThrottleMonotoneAndRestores(t *testing.T) {
	g := graph.New("probe", tensor.FP16)
	g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: 32 * units.MB, InBytes: 4 * units.MB, OutBytes: 4 * units.MB, MACs: 2e9})
	node := g.Nodes()[0]

	for _, dev := range device.All() {
		base := kernels.NewCostModel(dev).KernelTime(node, kernels.Texture25D)
		prev := base
		for level := 1; level <= MaxThrottleLevel+1; level++ {
			cost := kernels.NewCostModel(Throttle(dev, level)).KernelTime(node, kernels.Texture25D)
			if cost < prev {
				t.Errorf("%s level %d: cost %v below level %d cost %v", dev.Name, level, cost, level-1, prev)
			}
			if level <= MaxThrottleLevel && cost <= prev {
				t.Errorf("%s level %d: cost %v did not strictly increase over %v", dev.Name, level, cost, prev)
			}
			if level > MaxThrottleLevel && cost != prev {
				t.Errorf("%s level %d: cost %v beyond MaxThrottleLevel must clamp to %v", dev.Name, level, cost, prev)
			}
			prev = cost
		}
		if restored := Throttle(dev, 0); restored != dev {
			t.Errorf("%s: Throttle(level 0) = %+v, want the device unchanged", dev.Name, restored)
		}
		if cost := kernels.NewCostModel(Throttle(dev, 0)).KernelTime(node, kernels.Texture25D); cost != base {
			t.Errorf("%s: released cost %v, want exact baseline %v", dev.Name, cost, base)
		}
	}
}

// TestThrottleFactorShape pins the derating curve: 1 at rest, strictly
// decreasing per level, clamped past MaxThrottleLevel.
func TestThrottleFactorShape(t *testing.T) {
	if f := ThrottleFactor(0); f != 1 {
		t.Fatalf("level 0 factor = %v, want 1", f)
	}
	if f := ThrottleFactor(-3); f != 1 {
		t.Fatalf("negative level factor = %v, want 1", f)
	}
	prev := 1.0
	for level := 1; level <= MaxThrottleLevel; level++ {
		f := ThrottleFactor(level)
		if f >= prev {
			t.Fatalf("level %d factor %v not below level %d factor %v", level, f, level-1, prev)
		}
		prev = f
	}
	if f := ThrottleFactor(MaxThrottleLevel + 5); f != prev {
		t.Fatalf("over-max factor = %v, want clamp at %v", f, prev)
	}
}
