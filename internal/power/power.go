// Package power models device power draw and integrates energy over a
// simulated run (§5.5, Table 9).
//
// Power is phase-based: a baseline (SoC idle + screen) plus active power
// whenever the GPU compute queue or the storage/DMA path is busy. Energy is
// therefore avgPower × latency, with the average emerging from queue busy
// fractions — matching the paper's measurement method ("reading the system
// power usage over time") and its observation that FlashMem draws slightly
// more power than SmartMem (extra disk↔GPU traffic during execution) while
// spending far less energy (much shorter integrated latency).
package power

import (
	"repro/internal/device"
	"repro/internal/gpusim"
	"repro/internal/units"
)

// Model is a device power model in watts.
type Model struct {
	Idle     float64 // SoC + DRAM baseline while the app runs
	Compute  float64 // additional draw while the GPU executes kernels
	Transfer float64 // additional draw while the disk/DMA path is busy
}

// Default returns the flagship-phone power model used in the evaluation.
func Default() Model {
	return Model{Idle: 1.6, Compute: 4.2, Transfer: 1.5}
}

// MaxThrottleLevel is the deepest modeled thermal state. Real SoC
// governors expose a handful of discrete throttle steps; levels beyond
// this clamp.
const MaxThrottleLevel = 3

// ThrottleFactor returns the multiplicative derating applied at a thermal
// level: 1 at level 0, strictly decreasing per step (1/(1+0.25·level)),
// clamped at MaxThrottleLevel. Mobile thermal governors cut GPU and memory
// controller clocks together, so one factor covers compute throughput and
// the on-chip bandwidths.
func ThrottleFactor(level int) float64 {
	if level <= 0 {
		return 1
	}
	if level > MaxThrottleLevel {
		level = MaxThrottleLevel
	}
	return 1 / (1 + 0.25*float64(level))
}

// Throttle returns the device as the workload experiences it at a thermal
// level: compute throughput and the UM/TM/cache bandwidths derated by
// ThrottleFactor. Disk bandwidth and launch overhead are unaffected (the
// storage controller sits outside the GPU thermal domain). Level 0 returns
// the device value unchanged — bit for bit — so releasing a throttle
// restores the baseline cost model exactly; each deeper level strictly
// raises every kernel's modeled cost.
func Throttle(dev device.Device, level int) device.Device {
	f := ThrottleFactor(level)
	if f == 1 {
		return dev
	}
	dev.Compute = units.Throughput(float64(dev.Compute) * f)
	dev.UMBW = units.Bandwidth(float64(dev.UMBW) * f)
	dev.TMBW = units.Bandwidth(float64(dev.TMBW) * f)
	dev.CacheBW = units.Bandwidth(float64(dev.CacheBW) * f)
	return dev
}

// Usage summarizes power and energy for one run.
type Usage struct {
	AveragePowerW float64
	EnergyJ       float64
	Horizon       units.Duration
}

// Measure integrates the model over a machine's activity up to horizon.
func (p Model) Measure(m *gpusim.Machine, horizon units.Duration) Usage {
	if horizon <= 0 {
		return Usage{}
	}
	secs := horizon.Seconds()
	computeSecs := clampSecs(m.Compute.BusyTotal(), horizon)
	transferSecs := clampSecs(m.Transfer.BusyTotal(), horizon)

	energy := p.Idle*secs + p.Compute*computeSecs + p.Transfer*transferSecs
	return Usage{
		AveragePowerW: energy / secs,
		EnergyJ:       energy,
		Horizon:       horizon,
	}
}

// clampSecs converts a busy total to seconds, capped at the horizon (a
// queue cannot be busy longer than the observation window in this serial
// execution model).
func clampSecs(busy, horizon units.Duration) float64 {
	if busy > horizon {
		busy = horizon
	}
	return busy.Seconds()
}
