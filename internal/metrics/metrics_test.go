package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Errorf("geomean(5) = %v, want 5", g)
	}
	// Zero/negative entries (unsupported cells) are skipped.
	if g := GeoMean([]float64{2, 0, 8, -1}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean with skips = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v, want 0", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(8.44) != "8.4x" {
		t.Errorf("Ratio = %q", Ratio(8.44))
	}
	if Ratio(0) != "–" || Ratio(-2) != "–" {
		t.Error("non-positive ratios must render as dash")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Model", "Init", "Exec")
	tb.Row("GPTN-S", "3529", "337")
	tb.Row("ViT", "2550")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Model") {
		t.Errorf("header missing: %q", lines[0])
	}
	// Columns align: "Init" starts at the same offset in header and rows.
	off := strings.Index(lines[0], "Init")
	if strings.Index(lines[2], "3529") != off {
		t.Errorf("column misaligned:\n%s", out)
	}
	// Missing trailing cells render as padding, not panics.
	if !strings.Contains(lines[3], "2550") {
		t.Errorf("row content lost:\n%s", out)
	}
}
