// Package metrics provides the small statistics and formatting helpers the
// experiment harness uses: geometric means of speedups, ratio formatting,
// and fixed-width table rendering for paper-style output.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of positive values; zero and negative
// entries are skipped (they indicate unsupported configurations, not data).
func GeoMean(values []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Ratio formats a speedup/reduction factor like the paper: "8.4x".
func Ratio(v float64) string {
	if v <= 0 {
		return "–"
	}
	return fmt.Sprintf("%.1fx", v)
}

// Table renders rows under a header with per-column left alignment.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; missing cells render empty, extras are dropped.
func (t *Table) Row(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
