package tensor

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDTypeSize(t *testing.T) {
	if FP16.Size() != 2 || FP32.Size() != 4 {
		t.Fatal("dtype sizes wrong")
	}
	if FP16.String() != "fp16" || FP32.String() != "fp32" {
		t.Fatal("dtype names wrong")
	}
}

func TestShapeElemsBytes(t *testing.T) {
	s := Shape{4, 3, 2}
	if s.Elems() != 24 {
		t.Errorf("elems = %d, want 24", s.Elems())
	}
	if s.Bytes(FP16) != 48 {
		t.Errorf("bytes = %d, want 48", s.Bytes(FP16))
	}
	if (Shape{}).Elems() != 0 {
		t.Error("empty shape should have 0 elems")
	}
}

func TestShapeNonPositiveDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive dim should panic")
		}
	}()
	Shape{3, 0}.Elems()
}

func TestTile25DSmall(t *testing.T) {
	// 10 elements -> 3 texels -> fits one row.
	l, err := Tile25D(Shape{10}, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if l.Width != 3 || l.Height != 1 {
		t.Errorf("layout = %dx%d, want 3x1", l.Width, l.Height)
	}
	// Padding: 3 texels * 4 = 12 slots for 10 elems -> 2/12.
	if got := l.PaddingOverhead(); got < 0.16 || got > 0.17 {
		t.Errorf("padding = %v, want 2/12", got)
	}
}

func TestTile25DWraps(t *testing.T) {
	// 100 texels with maxDim 16 -> width 16, height 7.
	l, err := Tile25D(Shape{400}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Width != 16 || l.Height != 7 {
		t.Errorf("layout = %dx%d, want 16x7", l.Width, l.Height)
	}
	if l.Texels() != 112 {
		t.Errorf("texels = %d, want 112", l.Texels())
	}
	if l.Bytes(FP32) != units.Bytes(112*4*4) {
		t.Errorf("bytes = %d, want %d", l.Bytes(FP32), 112*4*4)
	}
}

func TestTile25DTooLarge(t *testing.T) {
	_, err := Tile25D(Shape{100}, 2) // 25 texels need 13 rows > 2
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTile25DZeroShape(t *testing.T) {
	l, err := Tile25D(Shape{}, 16384)
	if err != nil || l.Texels() != 0 {
		t.Fatalf("empty shape: layout %v err %v", l, err)
	}
}

func TestCoordIndexBijection(t *testing.T) {
	// Property (DESIGN.md): pack∘unpack = identity for every element.
	f := func(rawElems uint16, rawMax uint8) bool {
		elems := int64(rawElems%4096) + 1
		maxDim := int(rawMax%64) + 4
		l, err := Tile25D(Shape{int(elems)}, maxDim)
		if errors.Is(err, ErrTooLarge) {
			return true // legitimately unrepresentable; slicer handles it
		}
		if err != nil {
			return false
		}
		for e := int64(0); e < elems; e++ {
			x, y, c := l.Coord(e)
			if l.Index(x, y, c) != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBytesConservation(t *testing.T) {
	// Property: texture allocation is never smaller than linear bytes and at
	// most one row plus one texel larger.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		elems := 1 + rng.Intn(1_000_000)
		maxDim := 64 + rng.Intn(4096)
		s := Shape{elems}
		l, err := Tile25D(s, maxDim)
		if err != nil {
			return true
		}
		linear := s.Bytes(FP16)
		alloc := l.Bytes(FP16)
		if alloc < linear {
			return false
		}
		maxWaste := units.Bytes(maxDim+1) * TexelDepth * FP16.Size()
		return alloc-linear <= maxWaste
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoordOutOfRangePanics(t *testing.T) {
	l, _ := Tile25D(Shape{16}, 16384)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Coord should panic")
		}
	}()
	l.Coord(16)
}
