// Package tensor models tensor shapes, element types, and the 2.5D texture
// layout used by mobile GPUs (§2.1 of the paper).
//
// Mobile GPUs (Adreno, Mali) expose texture memory as 2D images whose texels
// hold four scalar channels (RGBA). The "2.5D" layout reorganizes an
// arbitrary tensor into a Width×Height grid of depth-4 texels so the texture
// cache can exploit 2D spatial locality. This package provides the tiling,
// its inverse (for the bijection property test), and the byte accounting
// including padding of the final partial texel.
package tensor

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// DType is a tensor element type.
type DType int

// Supported element types. The evaluation uses fp16 on device (fp32 trends
// match, per the paper's appendix note).
const (
	FP16 DType = iota
	FP32
)

// Size returns the byte width of one element.
func (d DType) Size() units.Bytes {
	switch d {
	case FP16:
		return 2
	case FP32:
		return 4
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String names the dtype.
func (d DType) String() string {
	switch d {
	case FP16:
		return "fp16"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is a tensor shape; dimensions are listed outermost first.
type Shape []int

// Elems returns the number of elements, or 0 for an empty shape.
func (s Shape) Elems() int64 {
	if len(s) == 0 {
		return 0
	}
	n := int64(1)
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in shape %v", []int(s)))
		}
		n *= int64(d)
	}
	return n
}

// Bytes returns the linear (unified-memory) size of the tensor.
func (s Shape) Bytes(dt DType) units.Bytes {
	return units.Bytes(s.Elems()) * dt.Size()
}

// String formats the shape like [a b c].
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// TexelDepth is the channel count of one texel in the 2.5D layout.
const TexelDepth = 4

// TexLayout describes a tensor packed into a 2D texture of depth-4 texels.
type TexLayout struct {
	Width  int   // texels per row
	Height int   // rows
	Elems  int64 // logical element count (before texel padding)
}

// ErrTooLarge reports a tensor that cannot fit a single texture allocation
// even at the maximum dimension. Callers split such tensors into multiple
// images (the weights slicer does this chunk-wise).
var ErrTooLarge = errors.New("tensor: exceeds maximum texture dimensions")

// Tile25D packs a tensor with the given shape into a 2.5D texture layout.
// maxDim is the device's maximum texture width/height in texels (16384 on
// recent Adreno). The layout fills rows of up to maxDim texels.
func Tile25D(s Shape, maxDim int) (TexLayout, error) {
	if maxDim <= 0 {
		return TexLayout{}, fmt.Errorf("tensor: invalid maxDim %d", maxDim)
	}
	elems := s.Elems()
	if elems == 0 {
		return TexLayout{Width: 0, Height: 0, Elems: 0}, nil
	}
	texels := (elems + TexelDepth - 1) / TexelDepth
	width := texels
	height := int64(1)
	if width > int64(maxDim) {
		width = int64(maxDim)
		height = (texels + width - 1) / width
	}
	if height > int64(maxDim) {
		return TexLayout{}, fmt.Errorf("%w: need %d rows (max %d)", ErrTooLarge, height, maxDim)
	}
	return TexLayout{Width: int(width), Height: int(height), Elems: elems}, nil
}

// Texels returns the number of allocated texels including row padding.
func (l TexLayout) Texels() int64 { return int64(l.Width) * int64(l.Height) }

// Bytes returns the texture allocation size: all texels, all four channels,
// including the padding of the final partial row and texel.
func (l TexLayout) Bytes(dt DType) units.Bytes {
	return units.Bytes(l.Texels()) * TexelDepth * dt.Size()
}

// PaddingOverhead returns the fraction of allocated bytes that is padding.
func (l TexLayout) PaddingOverhead() float64 {
	alloc := l.Texels() * TexelDepth
	if alloc == 0 {
		return 0
	}
	return float64(alloc-l.Elems) / float64(alloc)
}

// Coord maps a logical element index to its (x, y, channel) texture
// coordinate. Index must be in [0, Elems).
func (l TexLayout) Coord(elem int64) (x, y, c int) {
	if elem < 0 || elem >= l.Elems {
		panic(fmt.Sprintf("tensor: element %d out of range [0,%d)", elem, l.Elems))
	}
	texel := elem / TexelDepth
	c = int(elem % TexelDepth)
	x = int(texel % int64(l.Width))
	y = int(texel / int64(l.Width))
	return x, y, c
}

// Index is the inverse of Coord.
func (l TexLayout) Index(x, y, c int) int64 {
	if x < 0 || x >= l.Width || y < 0 || y >= l.Height || c < 0 || c >= TexelDepth {
		panic(fmt.Sprintf("tensor: coord (%d,%d,%d) out of layout %dx%d", x, y, c, l.Width, l.Height))
	}
	return (int64(y)*int64(l.Width)+int64(x))*TexelDepth + int64(c)
}
