package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 8, items, func(_ context.Context, i, v int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // stagger completion order
		}
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	_, err := Run(context.Background(), workers, 64, func(context.Context, int) (struct{}, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	// One worker makes the schedule deterministic: cells run in order, the
	// failure at cell 3 cancels the sweep, and cells 4..199 are skipped.
	out, err := Run(context.Background(), 1, 200, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(out) != 200 {
		t.Fatalf("out length %d", len(out))
	}
	if n := ran.Load(); n != 4 {
		t.Errorf("ran %d cells, want exactly 4 (0..3, then cancelled)", n)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	_, err := Run(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Index != 5 || fmt.Sprint(pe.Value) != "kaboom" {
		t.Errorf("panic cell %d value %v", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
}

func TestMapRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 4, 50, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	out, err := Map(context.Background(), 0, nil, func(_ context.Context, i int, v string) (string, error) {
		return v, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	// nil context and zero workers fall back to defaults.
	res, err := Run(nil, 0, 5, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || res[4] != 4 {
		t.Fatalf("res = %v", res)
	}
}
