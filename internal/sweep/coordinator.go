package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// The coordinator side of a coordinated sweep: one process owns the cell
// grid, cuts it into cost-sized contiguous batches, and serves them to
// pulling workers over HTTP/JSON. Work stealing falls out of the pull
// model — a fast worker simply pulls more batches — and a lease timeout
// re-deals batches held by dead or straggling workers, so the sweep ends
// bounded by the live workers, not by the unluckiest one.
//
// The coordinator never runs cells itself and knows nothing about what a
// cell is: groups are opaque names, rows are opaque JSON, and worker
// plan-cache snapshots are opaque bytes carried back for the caller to
// merge. That keeps the package free of experiment (or any other) imports,
// so the same machinery can coordinate anything that enumerates
// deterministic, independently-runnable cells.

// Group is one named, independently-enumerable cell space of a Grid — for
// flashbench, one experiment. Costs optionally carries a per-cell solve
// cost estimate in seconds (0 or missing = unknown); batch sizing treats
// unknown costs as neutral, never as free.
type Group struct {
	ID    string    `json:"id"`
	Cells int       `json:"cells"`
	Costs []float64 `json:"costs,omitempty"`
}

// Grid is the complete work description of a coordinated sweep, published
// to workers at GET /grid. Fingerprint is the caller's opaque digest of
// the result-affecting configuration; the coordinator refuses leases to
// workers whose fingerprint differs, so a mis-flagged worker fails loudly
// instead of contributing rows from a diverging configuration.
type Grid struct {
	Fingerprint string  `json:"fingerprint"`
	Groups      []Group `json:"groups"`
}

// Cells is the total cell count across all groups.
func (g Grid) Cells() int {
	n := 0
	for _, gr := range g.Groups {
		n += gr.Cells
	}
	return n
}

// Batch is one leasable unit of work: the contiguous cell range [Lo, Hi)
// of one group. Cost is the coordinator's estimate in seconds (the sum of
// the member cells' effective costs) — informational for workers, and the
// dealing priority for the coordinator.
type Batch struct {
	Seq   int     `json:"seq"`
	Group string  `json:"group"`
	Lo    int     `json:"lo"`
	Hi    int     `json:"hi"`
	Cost  float64 `json:"cost"`
}

// CoordinatorConfig sizes a coordinated sweep. The zero value of every
// field but Grid selects a working default.
type CoordinatorConfig struct {
	// Grid is the work description. Required.
	Grid Grid

	// Workers is the expected worker count, a batch-sizing hint only —
	// any number of workers may actually connect (<= 0: 3).
	Workers int

	// BatchesPerWorker over-partitions the grid so the pull model can
	// rebalance: more batches per worker means finer-grained stealing at
	// the price of more round trips (<= 0: 4).
	BatchesPerWorker int

	// LeaseTimeout is how long a worker may hold a batch before the
	// coordinator re-deals it to someone else (<= 0: 2m). Set it above the
	// slowest expected batch: an expired lease whose worker is merely slow
	// costs a duplicate solve, never a wrong result — the first completion
	// wins and later ones are counted stale.
	LeaseTimeout time.Duration

	// MaxRetries bounds how many times one batch may be re-dealt (lease
	// expiry or worker-reported error) before the whole sweep fails
	// (<= 0: 5). It converts a deterministically-crashing cell into a
	// loud failure instead of an infinite re-lease loop.
	MaxRetries int

	// IdleWait is how long a worker is told to wait before re-polling when
	// every batch is dealt but the sweep is not yet done (<= 0: 250ms).
	// Real sweeps solve for seconds per batch, so the default costs
	// nothing; in-process harnesses with millisecond batches set it lower.
	IdleWait time.Duration

	// Journal, when set, is the path of the coordinator's lease journal:
	// every accepted result is appended there, and a new coordinator over
	// the same grid replays it at construction — a crashed coordinator
	// restarted against its journal resumes the sweep with no lost and no
	// double-counted cells. Empty disables journaling.
	Journal string

	// Injector optionally injects faults into the coordinator protocol at
	// sites "sweep.coord.lease" and "sweep.coord.result": a fired error
	// rule makes the handler answer HTTP 500 before touching the ledger,
	// which workers treat as transient and retry. Nil injects nothing.
	Injector *faultinject.Injector
}

const (
	batchPending = iota
	batchLeased
	batchDone
)

// batchState is the coordinator-private ledger entry for one batch.
type batchState struct {
	Batch
	state   int
	retries int
	token   int64     // active lease token (state == batchLeased)
	worker  string    // active lease holder
	expiry  time.Time // active lease deadline
	rows    []json.RawMessage
}

// WorkerStats is the per-worker accounting the coordinator keeps — the
// straggler-behavior record CI archives as an artifact.
type WorkerStats struct {
	Leases     int `json:"leases"`      // batches leased to this worker
	Completed  int `json:"completed"`   // results accepted
	CellsDone  int `json:"cells_done"`  // cells in accepted results
	Errors     int `json:"errors"`      // worker-reported batch failures
	Stale      int `json:"stale"`       // results for batches already completed elsewhere
	StolenFrom int `json:"stolen_from"` // leases that expired and were re-dealt
}

// CoordinatorStats is the sweep-wide accounting served at GET /statsz.
type CoordinatorStats struct {
	Fingerprint      string                 `json:"fingerprint"`
	Groups           int                    `json:"groups"`
	Cells            int                    `json:"cells"`
	Batches          int                    `json:"batches"`
	CompletedBatches int                    `json:"completed_batches"`
	ResumedBatches   int                    `json:"resumed_batches,omitempty"` // completions replayed from the journal at boot
	JournalErrors    int                    `json:"journal_errors,omitempty"`  // failed journal appends (durability degraded, sweep unharmed)
	Steals           int                    `json:"steals"`                    // expired leases re-dealt
	Retries          int                    `json:"retries"`                   // error-triggered re-deals
	StaleResults     int                    `json:"stale_results"`
	Done             bool                   `json:"done"`
	Failed           string                 `json:"failed,omitempty"`
	Workers          map[string]WorkerStats `json:"workers"`
}

// CoordinatorResult is what Wait returns once every batch has completed.
type CoordinatorResult struct {
	// Rows maps each group ID to its complete row set in cell order —
	// exactly what an unsharded run of the group would produce.
	Rows map[string][]json.RawMessage
	// Snapshots holds each worker's most recent opaque snapshot (for
	// flashbench, a plan-cache snapshot). Workers attach a fresh snapshot
	// to every result, so a worker that dies mid-sweep still leaves the
	// plans of its accepted batches behind.
	Snapshots map[string][]byte
	Stats     CoordinatorStats
}

// Coordinator deals a Grid's cells to pulling workers and assembles their
// rows. All methods and the HTTP handler are safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig

	jnl *journal // nil without CoordinatorConfig.Journal

	mu        sync.Mutex
	batches   []*batchState // indexed by Seq
	queue     []*batchState // pending batches, dealt from the front
	leases    map[int64]*batchState
	nextToken int64
	completed int
	failed    error
	snapshots map[string][]byte
	workers   map[string]*WorkerStats
	steals    int
	retries   int
	stale     int
	resumed   int // batches replayed done from the journal
	jnlErrs   int // journal appends that failed

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator validates the grid and cuts it into batches. Batch sizing
// is cost-aware: each group is walked in cell order accumulating effective
// cost until a batch reaches the per-batch cost target (total effective
// cost ÷ target batch count), so cheap cells coalesce into large batches
// and an expensive cell gets a batch of its own. Cells with no cost
// estimate are priced at the median known cost — neutral, not free — so a
// cost-less grid degrades to equal-sized batches rather than one giant
// batch or a zero-cost fast lane. Batches are dealt most expensive first
// (LPT order): the stragglers start immediately and the cheap tail
// back-fills the idle workers.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.BatchesPerWorker <= 0 {
		cfg.BatchesPerWorker = 4
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.IdleWait <= 0 {
		cfg.IdleWait = 250 * time.Millisecond
	}
	seen := map[string]bool{}
	for _, g := range cfg.Grid.Groups {
		if g.ID == "" {
			return nil, fmt.Errorf("sweep: coordinator: group with empty ID")
		}
		if seen[g.ID] {
			return nil, fmt.Errorf("sweep: coordinator: duplicate group %q", g.ID)
		}
		seen[g.ID] = true
		if g.Cells < 0 {
			return nil, fmt.Errorf("sweep: coordinator: group %q has %d cells", g.ID, g.Cells)
		}
		if g.Costs != nil && len(g.Costs) != g.Cells {
			return nil, fmt.Errorf("sweep: coordinator: group %q has %d cost estimates for %d cells",
				g.ID, len(g.Costs), g.Cells)
		}
	}
	c := &Coordinator{
		cfg:       cfg,
		leases:    map[int64]*batchState{},
		snapshots: map[string][]byte{},
		workers:   map[string]*WorkerStats{},
		done:      make(chan struct{}),
	}
	for _, b := range buildBatches(cfg.Grid, cfg.Workers*cfg.BatchesPerWorker) {
		c.batches = append(c.batches, &batchState{Batch: b})
	}
	c.queue = make([]*batchState, len(c.batches))
	copy(c.queue, c.batches)
	// Deal order: descending estimated cost, Seq as the stable tie-break.
	sort.SliceStable(c.queue, func(i, j int) bool { return c.queue[i].Cost > c.queue[j].Cost })
	if cfg.Journal != "" {
		if err := c.replayJournal(cfg.Journal); err != nil {
			return nil, err
		}
	}
	if len(c.batches) == 0 || c.completed == len(c.batches) {
		c.doneOnce.Do(func() { close(c.done) }) // nothing left to deal
	}
	return c, nil
}

// replayJournal opens the lease journal and marks every batch it records as
// already done. Duplicate sequence numbers count once (the double-count
// guard); records whose rows fail their CRC, decode badly, or do not match
// the batch's cell count are skipped, which re-deals those batches — a
// duplicate solve, never a wrong result.
func (c *Coordinator) replayJournal(path string) error {
	jnl, recs, err := openJournal(path, journalHeader{
		Journal:     journalFormat,
		Fingerprint: c.cfg.Grid.Fingerprint,
		Layout:      layoutDigest(c.batches),
		Batches:     len(c.batches),
	})
	if err != nil {
		return err
	}
	c.jnl = jnl
	for _, rec := range recs {
		if rec.Seq < 0 || rec.Seq >= len(c.batches) {
			continue
		}
		bs := c.batches[rec.Seq]
		if bs.state == batchDone {
			continue
		}
		var rows []json.RawMessage
		if json.Unmarshal(rec.Rows, &rows) != nil || len(rows) != bs.Hi-bs.Lo {
			continue
		}
		bs.state = batchDone
		bs.rows = rows
		c.completed++
		c.resumed++
		ws := c.workerStats(rec.Worker)
		ws.Completed++
		ws.CellsDone += bs.Hi - bs.Lo
	}
	if c.resumed > 0 {
		live := c.queue[:0]
		for _, bs := range c.queue {
			if bs.state != batchDone {
				live = append(live, bs)
			}
		}
		c.queue = live
	}
	return nil
}

// Close releases the coordinator's journal file. It does not wait for the
// sweep; call it when the coordinator is being torn down (a no-op without a
// journal).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jnl == nil {
		return nil
	}
	err := c.jnl.close()
	c.jnl = nil
	return err
}

// buildBatches cuts each group into contiguous cost-balanced ranges.
func buildBatches(grid Grid, targetBatches int) []Batch {
	if targetBatches < 1 {
		targetBatches = 1
	}
	neutral := neutralCost(grid)
	total := 0.0
	for _, g := range grid.Groups {
		for i := 0; i < g.Cells; i++ {
			total += effCost(g.Costs, i, neutral)
		}
	}
	target := total / float64(targetBatches)

	var out []Batch
	seq := 0
	for _, g := range grid.Groups {
		lo, acc := 0, 0.0
		for i := 0; i < g.Cells; i++ {
			acc += effCost(g.Costs, i, neutral)
			if acc >= target || i == g.Cells-1 {
				out = append(out, Batch{Seq: seq, Group: g.ID, Lo: lo, Hi: i + 1, Cost: acc})
				seq++
				lo, acc = i+1, 0
			}
		}
	}
	return out
}

// effCost prices one cell: a known positive estimate, otherwise neutral.
func effCost(costs []float64, i int, neutral float64) float64 {
	if i < len(costs) && costs[i] > 0 {
		return costs[i]
	}
	return neutral
}

// neutralCost is the stand-in for cells without an estimate: the median of
// the known positive costs, so unknown cells batch like typical ones. A
// grid with no estimates at all prices every cell 1 — equal-sized batches,
// the cost-blind default.
func neutralCost(grid Grid) float64 {
	var known []float64
	for _, g := range grid.Groups {
		for _, c := range g.Costs {
			if c > 0 {
				known = append(known, c)
			}
		}
	}
	if len(known) == 0 {
		return 1
	}
	sort.Float64s(known)
	return known[len(known)/2]
}

// fail poisons the sweep; Wait and every later lease report the error.
func (c *Coordinator) fail(err error) {
	if c.failed == nil {
		c.failed = err
	}
	c.doneOnce.Do(func() { close(c.done) })
}

// reap re-deals expired leases; callers hold c.mu.
func (c *Coordinator) reap(now time.Time) {
	for token, bs := range c.leases {
		if now.Before(bs.expiry) {
			continue
		}
		delete(c.leases, token)
		c.steals++
		c.workerStats(bs.worker).StolenFrom++
		bs.retries++
		if bs.retries > c.cfg.MaxRetries {
			c.fail(fmt.Errorf("sweep: coordinator: batch %d (%s[%d,%d)) exceeded %d retries",
				bs.Seq, bs.Group, bs.Lo, bs.Hi, c.cfg.MaxRetries))
			return
		}
		bs.state = batchPending
		bs.token, bs.worker = 0, ""
		c.queue = append([]*batchState{bs}, c.queue...) // re-deals jump the line
	}
}

func (c *Coordinator) workerStats(name string) *WorkerStats {
	ws, ok := c.workers[name]
	if !ok {
		ws = &WorkerStats{}
		c.workers[name] = ws
	}
	return ws
}

// leaseRequest is the POST /lease body.
type leaseRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
}

// leaseResponse is the POST /lease reply. Exactly one of Batch, Done,
// Failed, or WaitMS is meaningful: a batch to run, sweep complete, sweep
// failed, or nothing to deal right now (poll again after WaitMS).
type leaseResponse struct {
	Batch  *Batch `json:"batch,omitempty"`
	Token  int64  `json:"token,omitempty"`
	Done   bool   `json:"done,omitempty"`
	Failed string `json:"failed,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// resultRequest is the POST /result body: the rows for a leased batch, or
// the error that prevented them. Snapshot optionally carries the worker's
// current opaque snapshot (plan-cache bytes for flashbench); the
// coordinator keeps the latest per worker.
type resultRequest struct {
	Worker   string            `json:"worker"`
	Seq      int               `json:"seq"`
	Token    int64             `json:"token"`
	Rows     []json.RawMessage `json:"rows,omitempty"`
	Error    string            `json:"error,omitempty"`
	Snapshot []byte            `json:"snapshot,omitempty"`
}

// resultResponse acknowledges a result. Accepted is false for stale
// results (the batch completed elsewhere after this worker's lease
// expired); Done tells the worker the whole sweep is finished so it can
// exit without another lease round trip.
type resultResponse struct {
	Accepted bool   `json:"accepted"`
	Done     bool   `json:"done,omitempty"`
	Failed   string `json:"failed,omitempty"`
}

// lease deals the next pending batch.
func (c *Coordinator) lease(req leaseRequest) (leaseResponse, int) {
	// An injected fault answers 500 with no verdict before the ledger is
	// touched; workers treat that as a transient coordinator wobble and
	// retry under backoff.
	if c.cfg.Injector.Err("sweep.coord.lease") != nil {
		return leaseResponse{}, http.StatusInternalServerError
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Fingerprint != c.cfg.Grid.Fingerprint {
		return leaseResponse{Failed: fmt.Sprintf(
			"fingerprint mismatch: worker %q runs %q, coordinator serves %q — align the worker's experiment flags with the coordinator's",
			req.Worker, req.Fingerprint, c.cfg.Grid.Fingerprint)}, http.StatusConflict
	}
	c.reap(time.Now())
	if c.failed != nil {
		return leaseResponse{Failed: c.failed.Error()}, http.StatusGone
	}
	if c.completed == len(c.batches) {
		return leaseResponse{Done: true}, http.StatusOK
	}
	if len(c.queue) == 0 {
		return leaseResponse{WaitMS: c.cfg.IdleWait.Milliseconds()}, http.StatusOK
	}
	bs := c.queue[0]
	c.queue = c.queue[1:]
	c.nextToken++
	bs.state = batchLeased
	bs.token = c.nextToken
	bs.worker = req.Worker
	bs.expiry = time.Now().Add(c.cfg.LeaseTimeout)
	c.leases[bs.token] = bs
	c.workerStats(req.Worker).Leases++
	b := bs.Batch
	return leaseResponse{Batch: &b, Token: bs.token}, http.StatusOK
}

// result records a batch outcome. The first valid completion of a batch
// wins; anything later is stale. A late-but-first result from an expired
// lease is still accepted — the rows are deterministic, and accepting them
// saves the re-dealt duplicate from having to finish.
func (c *Coordinator) result(req resultRequest) (resultResponse, int) {
	// Injected before any state changes, so a worker retrying the 500 posts
	// an identical, still-unprocessed result — the idempotency result posts
	// already promise.
	if c.cfg.Injector.Err("sweep.coord.result") != nil {
		return resultResponse{}, http.StatusInternalServerError
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(time.Now())
	ws := c.workerStats(req.Worker)
	if len(req.Snapshot) > 0 {
		c.snapshots[req.Worker] = req.Snapshot
	}
	if req.Seq < 0 || req.Seq >= len(c.batches) {
		return resultResponse{Failed: fmt.Sprintf("unknown batch seq %d", req.Seq)}, http.StatusBadRequest
	}
	bs := c.batches[req.Seq]

	if bs.state == batchDone {
		ws.Stale++
		c.stale++
		return c.ack(false), http.StatusOK
	}

	errMsg := req.Error
	if errMsg == "" && len(req.Rows) != bs.Hi-bs.Lo {
		errMsg = fmt.Sprintf("batch %d returned %d rows, want %d", bs.Seq, len(req.Rows), bs.Hi-bs.Lo)
	}
	if errMsg != "" {
		ws.Errors++
		// Only the active lease holder's failure re-deals the batch; a
		// failure report from a long-expired lease changes nothing — the
		// batch is already pending or leased elsewhere.
		if bs.state == batchLeased && bs.token == req.Token {
			delete(c.leases, bs.token)
			c.retries++
			bs.retries++
			if bs.retries > c.cfg.MaxRetries {
				c.fail(fmt.Errorf("sweep: coordinator: batch %d (%s[%d,%d)) failed %d times, last error: %s",
					bs.Seq, bs.Group, bs.Lo, bs.Hi, bs.retries, errMsg))
				return resultResponse{Failed: c.failed.Error()}, http.StatusGone
			}
			bs.state = batchPending
			bs.token, bs.worker = 0, ""
			c.queue = append([]*batchState{bs}, c.queue...)
		}
		return c.ack(false), http.StatusOK
	}

	if bs.state == batchLeased {
		delete(c.leases, bs.token)
	} else {
		// The lease expired and the batch went back to the queue, but this
		// original worker finished first after all: accept, and drop the
		// queued duplicate so no one re-runs completed work.
		for i, q := range c.queue {
			if q == bs {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
	}
	// Journal the acceptance before the ledger flips to done and the ack
	// goes out, so any result a worker saw accepted is durable. A failed
	// append degrades durability, not the sweep — counted, and the result
	// still accepted; on a later resume the batch is merely re-dealt.
	if c.jnl != nil {
		if err := c.jnl.append(bs.Seq, req.Worker, req.Rows); err != nil {
			c.jnlErrs++
		}
	}
	bs.state = batchDone
	bs.rows = req.Rows
	bs.token, bs.worker = 0, ""
	c.completed++
	ws.Completed++
	ws.CellsDone += bs.Hi - bs.Lo
	if c.completed == len(c.batches) {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return c.ack(true), http.StatusOK
}

// ack builds a result acknowledgment; callers hold c.mu.
func (c *Coordinator) ack(accepted bool) resultResponse {
	return resultResponse{Accepted: accepted, Done: c.completed == len(c.batches)}
}

// Stats snapshots the sweep accounting.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

// statsLocked builds the stats snapshot; callers hold c.mu.
func (c *Coordinator) statsLocked() CoordinatorStats {
	s := CoordinatorStats{
		Fingerprint:      c.cfg.Grid.Fingerprint,
		Groups:           len(c.cfg.Grid.Groups),
		Cells:            c.cfg.Grid.Cells(),
		Batches:          len(c.batches),
		CompletedBatches: c.completed,
		ResumedBatches:   c.resumed,
		JournalErrors:    c.jnlErrs,
		Steals:           c.steals,
		Retries:          c.retries,
		StaleResults:     c.stale,
		Done:             c.completed == len(c.batches),
		Workers:          make(map[string]WorkerStats, len(c.workers)),
	}
	if c.failed != nil {
		s.Failed = c.failed.Error()
	}
	for name, ws := range c.workers {
		s.Workers[name] = *ws
	}
	return s
}

// Wait blocks until every batch has completed (or the sweep failed), then
// assembles each group's rows in cell order. The assembly re-checks that
// the accepted batches tile each group's cell space exactly — the same
// no-lost, no-duplicated-cells invariant the partial-file merge enforces.
func (c *Coordinator) Wait(ctx context.Context) (*CoordinatorResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	res := &CoordinatorResult{
		Rows:      map[string][]json.RawMessage{},
		Snapshots: make(map[string][]byte, len(c.snapshots)),
		Stats:     c.statsLocked(),
	}
	for _, g := range c.cfg.Grid.Groups {
		res.Rows[g.ID] = make([]json.RawMessage, g.Cells)
	}
	for _, bs := range c.batches {
		rows := res.Rows[bs.Group]
		if bs.state != batchDone || len(bs.rows) != bs.Hi-bs.Lo {
			return nil, fmt.Errorf("sweep: coordinator: batch %d (%s[%d,%d)) incomplete at assembly",
				bs.Seq, bs.Group, bs.Lo, bs.Hi)
		}
		copy(rows[bs.Lo:bs.Hi], bs.rows)
	}
	for _, g := range c.cfg.Grid.Groups {
		for i, row := range res.Rows[g.ID] {
			if row == nil {
				return nil, fmt.Errorf("sweep: coordinator: %s cell %d missing at assembly", g.ID, i)
			}
		}
	}
	for name, snap := range c.snapshots {
		res.Snapshots[name] = snap
	}
	return res, nil
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /grid    the Grid (fingerprint + groups), for worker self-checks
//	POST /lease   {"worker":..,"fingerprint":..} → a batch, wait, done, or failed
//	POST /result  {"worker":..,"seq":..,"token":..,"rows":[..]|"error":..,"snapshot":..}
//	GET  /statsz  CoordinatorStats
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/grid", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.cfg.Grid)
	})
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, code := c.lease(req)
		writeJSON(w, code, resp)
	})
	mux.HandleFunc("/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, code := c.result(req)
		writeJSON(w, code, resp)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
