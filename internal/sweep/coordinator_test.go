package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRow is the deterministic row a test worker produces for one cell, so
// assembled output can be checked cell by cell against expectations.
func fakeRow(group string, cell int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"g":%q,"i":%d}`, group, cell))
}

// fakeExec produces the deterministic rows for any batch.
func fakeExec(_ context.Context, b Batch) ([]json.RawMessage, error) {
	rows := make([]json.RawMessage, 0, b.Hi-b.Lo)
	for i := b.Lo; i < b.Hi; i++ {
		rows = append(rows, fakeRow(b.Group, i))
	}
	return rows, nil
}

// checkRows verifies the assembled result covers every cell of every group
// exactly once with the expected content — no lost, no doubly-merged cells.
func checkRows(t *testing.T, grid Grid, res *CoordinatorResult) {
	t.Helper()
	if len(res.Rows) != len(grid.Groups) {
		t.Fatalf("result covers %d groups, want %d", len(res.Rows), len(grid.Groups))
	}
	for _, g := range grid.Groups {
		rows := res.Rows[g.ID]
		if len(rows) != g.Cells {
			t.Fatalf("group %s: %d rows, want %d", g.ID, len(rows), g.Cells)
		}
		for i, row := range rows {
			if want := fakeRow(g.ID, i); string(row) != string(want) {
				t.Errorf("group %s cell %d: row %s, want %s", g.ID, i, row, want)
			}
		}
	}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// runWorkers runs n RunWorker loops against the coordinator concurrently
// and returns their per-worker results.
func runWorkers(t *testing.T, url string, n int, cfg WorkerConfig) map[string]WorkerRunStats {
	t.Helper()
	var (
		mu    sync.Mutex
		stats = map[string]WorkerRunStats{}
		wg    sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		wc := cfg
		wc.Coordinator = url
		wc.Name = name
		if wc.Poll <= 0 {
			wc.Poll = 5 * time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws, err := RunWorker(waitCtx(t), wc)
			mu.Lock()
			defer mu.Unlock()
			stats[name] = ws
			if err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	wg.Wait()
	return stats
}

func TestCoordinatedSweepExactlyOnce(t *testing.T) {
	grid := Grid{
		Fingerprint: "fp-1",
		Groups: []Group{
			{ID: "a", Cells: 13, Costs: []float64{9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
			{ID: "b", Cells: 7},
			{ID: "c", Cells: 1},
		},
	}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	workers := runWorkers(t, srv.URL, 3, WorkerConfig{
		Fingerprint: "fp-1",
		Exec:        fakeExec,
		Snapshot:    func() ([]byte, error) { return []byte("snap"), nil },
	})

	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)

	if res.Stats.CompletedBatches != res.Stats.Batches {
		t.Errorf("completed %d of %d batches", res.Stats.CompletedBatches, res.Stats.Batches)
	}
	if res.Stats.Steals != 0 || res.Stats.Retries != 0 {
		t.Errorf("healthy sweep recorded steals=%d retries=%d", res.Stats.Steals, res.Stats.Retries)
	}
	cells := 0
	for name, ws := range workers {
		cells += ws.Cells
		if ws.Batches > 0 {
			if _, ok := res.Snapshots[name]; !ok {
				t.Errorf("no snapshot kept for completing worker %s", name)
			}
		}
	}
	if cells != grid.Cells() {
		t.Errorf("workers report %d cells done, want %d", cells, grid.Cells())
	}
}

// TestCoordinatedSweepSurvivesWorkerDeath injects a dead worker — it
// leases batches and never reports back — plus a straggler-skewed cost
// grid, and checks the live workers steal the abandoned batches and the
// merged output is still exactly the full cell space.
func TestCoordinatedSweepSurvivesWorkerDeath(t *testing.T) {
	costs := make([]float64, 24)
	for i := range costs {
		costs[i] = 0.1
	}
	costs[3] = 10 // the straggler cell gets a batch of its own
	grid := Grid{
		Fingerprint: "fp-death",
		Groups: []Group{
			{ID: "a", Cells: 24, Costs: costs},
			{ID: "b", Cells: 5},
		},
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Grid:         grid,
		Workers:      3,
		LeaseTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The zombie takes the two most expensive batches and dies.
	zombieLeases := 0
	for i := 0; i < 2; i++ {
		resp, code := c.lease(leaseRequest{Worker: "zombie", Fingerprint: "fp-death"})
		if code != 200 || resp.Batch == nil {
			t.Fatalf("zombie lease %d: code %d, resp %+v", i, code, resp)
		}
		zombieLeases++
	}

	runWorkers(t, srv.URL, 3, WorkerConfig{Fingerprint: "fp-death", Exec: fakeExec})

	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
	if res.Stats.Steals < zombieLeases {
		t.Errorf("steals = %d, want >= %d (the zombie's abandoned leases)", res.Stats.Steals, zombieLeases)
	}
	zs := res.Stats.Workers["zombie"]
	if zs.StolenFrom != zombieLeases || zs.Completed != 0 {
		t.Errorf("zombie stats = %+v, want %d stolen-from and 0 completed", zs, zombieLeases)
	}
}

// TestLateResultFromExpiredLeaseWins: a slow worker whose lease expired
// still gets its result accepted if it lands before the re-dealt
// duplicate, and the duplicate is dropped from the queue — first
// completion wins, nothing runs twice.
func TestLateResultFromExpiredLeaseWins(t *testing.T) {
	grid := Grid{Fingerprint: "fp-late", Groups: []Group{{ID: "a", Cells: 4}}}
	c, err := NewCoordinator(CoordinatorConfig{
		Grid:             grid,
		Workers:          1,
		BatchesPerWorker: 1,
		LeaseTimeout:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lease, code := c.lease(leaseRequest{Worker: "slow", Fingerprint: "fp-late"})
	if code != 200 || lease.Batch == nil {
		t.Fatalf("lease: code %d resp %+v", code, lease)
	}
	time.Sleep(5 * time.Millisecond) // let the lease expire

	rows, _ := fakeExec(context.Background(), *lease.Batch)
	ack, code := c.result(resultRequest{Worker: "slow", Seq: lease.Batch.Seq, Token: lease.Token, Rows: rows})
	if code != 200 || !ack.Accepted {
		t.Fatalf("late-but-first result not accepted: code %d ack %+v", code, ack)
	}
	if !ack.Done {
		t.Error("single-batch sweep not done after its only result")
	}
	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
	if res.Stats.Steals != 1 {
		t.Errorf("steals = %d, want 1 (the expired lease)", res.Stats.Steals)
	}

	// The re-dealt duplicate must be gone: the next lease reports done,
	// not the already-completed batch.
	next, code := c.lease(leaseRequest{Worker: "w2", Fingerprint: "fp-late"})
	if code != 200 || !next.Done || next.Batch != nil {
		t.Errorf("post-completion lease = %+v (code %d), want done", next, code)
	}
}

// TestWorkerErrorRetriesElsewhere: a batch that fails on its first worker
// is re-dealt and completes on a retry; the failure is accounted, the
// output unharmed.
func TestWorkerErrorRetriesElsewhere(t *testing.T) {
	grid := Grid{Fingerprint: "fp-retry", Groups: []Group{{ID: "a", Cells: 9}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var failed atomic.Bool
	exec := func(ctx context.Context, b Batch) ([]json.RawMessage, error) {
		if b.Lo == 0 && failed.CompareAndSwap(false, true) {
			return nil, fmt.Errorf("injected failure")
		}
		return fakeExec(ctx, b)
	}
	workers := runWorkers(t, srv.URL, 2, WorkerConfig{Fingerprint: "fp-retry", Exec: exec})

	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
	if res.Stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Stats.Retries)
	}
	localErrors := 0
	for _, ws := range workers {
		localErrors += ws.Errors
	}
	if localErrors != 1 {
		t.Errorf("workers report %d local errors, want 1", localErrors)
	}
}

// TestMaxRetriesFailsLoudly: a deterministically-crashing batch must fail
// the sweep after MaxRetries re-deals — both at Wait and at the workers —
// instead of looping forever.
func TestMaxRetriesFailsLoudly(t *testing.T) {
	grid := Grid{Fingerprint: "fp-crash", Groups: []Group{{ID: "a", Cells: 3}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	exec := func(context.Context, Batch) ([]json.RawMessage, error) {
		return nil, fmt.Errorf("always crashes")
	}
	_, werr := RunWorker(waitCtx(t), WorkerConfig{
		Coordinator: srv.URL, Name: "w0", Fingerprint: "fp-crash",
		Exec: exec, Poll: time.Millisecond,
	})
	if werr == nil || !strings.Contains(werr.Error(), "always crashes") {
		t.Errorf("worker error = %v, want the batch's crash surfaced", werr)
	}
	if _, err := c.Wait(waitCtx(t)); err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("Wait error = %v, want retry-exhaustion failure", err)
	}
}

// TestFingerprintMismatchRefused: a worker whose result-affecting
// configuration diverges from the coordinator's must be refused loudly at
// lease time, before it can contribute a single row.
func TestFingerprintMismatchRefused(t *testing.T) {
	grid := Grid{Fingerprint: "fp-good", Groups: []Group{{ID: "a", Cells: 2}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	_, werr := RunWorker(waitCtx(t), WorkerConfig{
		Coordinator: srv.URL, Name: "rogue", Fingerprint: "fp-other",
		Exec: fakeExec, Poll: time.Millisecond,
	})
	if werr == nil || !strings.Contains(werr.Error(), "fingerprint mismatch") {
		t.Errorf("mismatched worker error = %v, want fingerprint refusal", werr)
	}
	if got := c.Stats().CompletedBatches; got != 0 {
		t.Errorf("rogue worker completed %d batches", got)
	}
}

func TestBuildBatchesCostAware(t *testing.T) {
	// One 100x cell among cheap ones: it must get a batch of its own, and
	// that batch must be dealt first (LPT order).
	costs := []float64{1, 1, 1, 100, 1, 1, 1, 1}
	grid := Grid{Groups: []Group{{ID: "a", Cells: 8, Costs: costs}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 4, BatchesPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := c.queue[0]
	if first.Lo > 3 || first.Hi != 4 {
		t.Errorf("first-dealt batch is [%d,%d), want the straggler cell 3 at its end", first.Lo, first.Hi)
	}
	for _, bs := range c.batches {
		if bs.Lo < 3 && bs.Hi > 4 {
			t.Errorf("batch [%d,%d) buries the expensive cell mid-batch", bs.Lo, bs.Hi)
		}
	}
	checkTiling(t, c.batches, "a", 8)
}

func TestBuildBatchesNeutralWithoutCosts(t *testing.T) {
	// No estimates at all: batches must come out equal-sized (within one
	// cell), not one giant batch or a zero-cost fast lane.
	grid := Grid{Groups: []Group{{ID: "a", Cells: 20}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 2, BatchesPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.batches) != 4 {
		t.Fatalf("%d batches, want 4", len(c.batches))
	}
	for _, bs := range c.batches {
		if size := bs.Hi - bs.Lo; size != 5 {
			t.Errorf("batch [%d,%d) has %d cells, want 5 (equal neutral split)", bs.Lo, bs.Hi, size)
		}
	}
	checkTiling(t, c.batches, "a", 20)
}

func TestBuildBatchesUnknownCostIsMedianNotZero(t *testing.T) {
	// Half the cells have known cost 4, half are unknown. If unknowns were
	// priced 0 they would all coalesce into one batch with a known
	// neighbor; priced at the median (4) they split like known cells.
	costs := []float64{4, 0, 4, 0, 4, 0, 4, 0}
	grid := Grid{Groups: []Group{{ID: "a", Cells: 8, Costs: costs}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 4, BatchesPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.batches) != 4 {
		t.Fatalf("%d batches, want 4 (unknown cells priced neutrally)", len(c.batches))
	}
	checkTiling(t, c.batches, "a", 8)
}

// checkTiling asserts a group's batches tile [0, cells) exactly.
func checkTiling(t *testing.T, batches []*batchState, group string, cells int) {
	t.Helper()
	next := 0
	for _, bs := range batches {
		if bs.Group != group {
			continue
		}
		if bs.Lo != next {
			t.Fatalf("batch [%d,%d) does not tile: want start %d", bs.Lo, bs.Hi, next)
		}
		next = bs.Hi
	}
	if next != cells {
		t.Fatalf("batches end at %d, want %d", next, cells)
	}
}

func TestNewCoordinatorValidatesGrid(t *testing.T) {
	bad := []Grid{
		{Groups: []Group{{ID: "", Cells: 1}}},
		{Groups: []Group{{ID: "a", Cells: 1}, {ID: "a", Cells: 2}}},
		{Groups: []Group{{ID: "a", Cells: -1}}},
		{Groups: []Group{{ID: "a", Cells: 3, Costs: []float64{1}}}},
	}
	for i, g := range bad {
		if _, err := NewCoordinator(CoordinatorConfig{Grid: g}); err == nil {
			t.Errorf("grid %d accepted: %+v", i, g)
		}
	}
	// An empty grid is legal and already complete.
	c, err := NewCoordinator(CoordinatorConfig{Grid: Grid{Fingerprint: "fp"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(waitCtx(t))
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("empty grid Wait = %+v, %v", res, err)
	}
}
