package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/backoff"
)

// The worker side of a coordinated sweep: a pull loop against a
// Coordinator's HTTP API. Workers are stateless from the coordinator's
// point of view — they lease a batch, run it through the caller's Exec
// callback, post the rows (plus an optional snapshot) back, and repeat
// until the coordinator reports the sweep done. A worker that crashes
// simply stops pulling; its outstanding lease expires and the batch is
// re-dealt, so worker death needs no detection protocol beyond the lease
// timeout.

// WorkerConfig wires one worker to a coordinator.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:9000).
	Coordinator string

	// Name identifies this worker in leases and stats. Required.
	Name string

	// Fingerprint is the worker's digest of its result-affecting
	// configuration; the coordinator refuses leases when it differs from
	// the grid's. Leave empty to skip the check (trusted harnesses only).
	Fingerprint string

	// Exec runs one batch and returns exactly Hi-Lo rows in cell order.
	// An error is reported to the coordinator, which re-deals the batch
	// elsewhere; the worker keeps pulling.
	Exec func(ctx context.Context, b Batch) ([]json.RawMessage, error)

	// Snapshot, when non-nil, is called after every completed batch and
	// its bytes attached to the result — for flashbench, the worker's
	// current plan-cache snapshot. Posting the full snapshot every time is
	// what makes worker death lossless: the coordinator always holds a
	// snapshot covering every batch it has accepted from this worker.
	Snapshot func() ([]byte, error)

	// Poll is the idle retry interval when the coordinator has nothing to
	// deal right now (<= 0: 200ms). Transient *errors* are not paced by
	// Poll — they back off under Retry.
	Poll time.Duration

	// Retry shapes the delay between transient coordinator failures —
	// connection errors, 5xx responses, undecodable replies. The zero
	// value is the package default: 100ms base doubling to a 5s cap with
	// jitter, so a fleet of workers restarting against a recovering
	// coordinator does not arrive in lockstep.
	Retry backoff.Policy

	// Client is the HTTP client (nil: a client with a 5-minute timeout,
	// comfortably above any single round trip — batches run locally, not
	// inside the request).
	Client *http.Client
}

// WorkerRunStats summarizes one worker's sweep from its own side.
type WorkerRunStats struct {
	Batches int // results accepted by the coordinator
	Cells   int // cells in those results
	Stale   int // results the coordinator had already received elsewhere
	Errors  int // batch executions that failed locally
}

// transientRetries is how many consecutive failed HTTP round trips a
// worker tolerates (with Poll backoff) before giving up — generous enough
// to cover a coordinator that is still booting when the worker starts.
const transientRetries = 50

// RunWorker pulls and executes batches until the coordinator reports the
// sweep done, and returns this worker's accounting. It fails fast on a
// fingerprint mismatch or a failed sweep, and retries transient HTTP
// errors with backoff so start-up ordering between coordinator and
// workers does not matter.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerRunStats, error) {
	var stats WorkerRunStats
	if cfg.Name == "" {
		return stats, fmt.Errorf("sweep: worker: empty name")
	}
	if cfg.Exec == nil {
		return stats, fmt.Errorf("sweep: worker %s: nil Exec", cfg.Name)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	base := strings.TrimSuffix(cfg.Coordinator, "/")

	transient := 0 // consecutive failed round trips; resets on success
	for {
		var lease leaseResponse
		code, err := postJSON(ctx, cfg.Client, base+"/lease",
			leaseRequest{Worker: cfg.Name, Fingerprint: cfg.Fingerprint}, &lease)
		// Connection errors, undecodable replies, and 5xx responses are all
		// transient: the coordinator may still be booting, restarting after
		// a crash (its journal restores the sweep), or briefly fronted by a
		// failing proxy. Only the protocol's own verdicts are fatal.
		if err == nil && code >= 500 && lease.Failed == "" {
			err = fmt.Errorf("lease: HTTP %d", code)
		}
		if err != nil {
			transient++
			if transient > transientRetries {
				return stats, fmt.Errorf("sweep: worker %s: coordinator unreachable: %w", cfg.Name, err)
			}
			if err := cfg.Retry.Sleep(ctx, transient-1); err != nil {
				return stats, err
			}
			continue
		}
		transient = 0
		switch {
		case lease.Failed != "":
			return stats, fmt.Errorf("sweep: worker %s: coordinator: %s", cfg.Name, lease.Failed)
		case code != http.StatusOK:
			return stats, fmt.Errorf("sweep: worker %s: lease: HTTP %d", cfg.Name, code)
		case lease.Done:
			return stats, nil
		case lease.Batch == nil:
			wait := cfg.Poll
			if lease.WaitMS > 0 {
				wait = time.Duration(lease.WaitMS) * time.Millisecond
			}
			if err := sleepOrDone(ctx, wait); err != nil {
				return stats, err
			}
			continue
		}

		res := resultRequest{Worker: cfg.Name, Seq: lease.Batch.Seq, Token: lease.Token}
		rows, execErr := cfg.Exec(ctx, *lease.Batch)
		if execErr != nil {
			stats.Errors++
			res.Error = execErr.Error()
		} else {
			res.Rows = rows
			if cfg.Snapshot != nil {
				snap, err := cfg.Snapshot()
				if err != nil {
					return stats, fmt.Errorf("sweep: worker %s: snapshot: %w", cfg.Name, err)
				}
				res.Snapshot = snap
			}
		}

		ack, err := postResult(ctx, cfg, base, res)
		if err != nil {
			return stats, err
		}
		if ack.Failed != "" {
			return stats, fmt.Errorf("sweep: worker %s: coordinator: %s", cfg.Name, ack.Failed)
		}
		if execErr == nil {
			if ack.Accepted {
				stats.Batches++
				stats.Cells += lease.Batch.Hi - lease.Batch.Lo
			} else {
				stats.Stale++
			}
		}
		if ack.Done {
			return stats, nil
		}
	}
}

// postResult posts one result, retrying transient errors — connection
// blips, 5xx responses, garbled replies — under the worker's backoff
// policy: dropping a finished batch's rows over a blip would force a full
// re-run of the batch elsewhere. Result posts are idempotent on the
// coordinator (duplicate sequence numbers are acknowledged as stale), so
// retrying a post whose first attempt actually landed is safe.
func postResult(ctx context.Context, cfg WorkerConfig, base string, res resultRequest) (resultResponse, error) {
	var ack resultResponse
	for attempt := 0; ; attempt++ {
		code, err := postJSON(ctx, cfg.Client, base+"/result", res, &ack)
		if err == nil && code >= 500 && ack.Failed == "" {
			err = fmt.Errorf("HTTP %d", code)
		}
		if err == nil {
			if code != http.StatusOK && ack.Failed == "" {
				return ack, fmt.Errorf("sweep: worker %s: result: HTTP %d", cfg.Name, code)
			}
			return ack, nil
		}
		if attempt >= transientRetries {
			return ack, fmt.Errorf("sweep: worker %s: result: %w", cfg.Name, err)
		}
		if err := cfg.Retry.Sleep(ctx, attempt); err != nil {
			return ack, err
		}
	}
}

// FetchGrid retrieves a coordinator's work description — what a worker
// process consults to derive the experiment list (and check its own
// configuration fingerprint) before pulling batches. Transient failures —
// connection errors, 5xx, undecodable bodies — are retried under the
// given backoff policy (zero value: the package default) so worker
// start-up may precede the coordinator's.
func FetchGrid(ctx context.Context, client *http.Client, coordinator string, retry backoff.Policy) (Grid, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	url := strings.TrimSuffix(coordinator, "/") + "/grid"
	var lastErr error
	for attempt := 0; attempt <= transientRetries; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return Grid{}, err
		}
		resp, err := client.Do(req)
		if err == nil {
			var g Grid
			err = json.NewDecoder(resp.Body).Decode(&g)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				return g, nil
			}
			lastErr = fmt.Errorf("grid: HTTP %d: %v", resp.StatusCode, err)
		} else {
			lastErr = err
		}
		if err := retry.Sleep(ctx, attempt); err != nil {
			return Grid{}, err
		}
	}
	return Grid{}, fmt.Errorf("sweep: fetch grid from %s: %w", coordinator, lastErr)
}

// postJSON posts a JSON body and decodes the JSON reply, whatever the
// status code — the coordinator's protocol carries its verdicts in the
// body.
func postJSON(ctx context.Context, client *http.Client, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(data, out); err != nil {
		return resp.StatusCode, fmt.Errorf("decode %s response: %w", url, err)
	}
	return resp.StatusCode, nil
}

// sleepOrDone waits d or until the context ends.
func sleepOrDone(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
