package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
)

// TestWorkerRetryHonorsCancelledContext: a worker stuck in its transient
// backoff loop against a coordinator that only ever says 503 must unwind
// promptly when its context is cancelled mid-retry — the satellite
// contract that no retry sleep outlives its caller.
func TestWorkerRetryHonorsCancelledContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL,
			Name:        "w0",
			Exec:        fakeExec,
			// A long backoff guarantees the cancel lands inside a sleep,
			// not between round trips.
			Retry: backoff.Policy{Base: time.Minute, Max: time.Minute, Jitter: -1},
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first 503 put it to sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("worker returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker ignored cancellation mid-retry")
	}
}

// TestWorkerTreats5xxAsTransient: a coordinator fronted by a flaky proxy
// (a run of 503s before every request lands) must not kill the sweep —
// 5xx responses are retried with backoff and the full cell space still
// completes exactly once.
func TestWorkerTreats5xxAsTransient(t *testing.T) {
	grid := Grid{Fingerprint: "fp-1", Groups: []Group{{ID: "a", Cells: 6}}}
	c, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail every other request, across both /lease and /result.
		if calls.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusBadGateway)
			_, _ = w.Write([]byte(`{}`))
			return
		}
		c.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	stats, err := RunWorker(waitCtx(t), WorkerConfig{
		Coordinator: srv.URL,
		Name:        "w0",
		Fingerprint: "fp-1",
		Exec:        fakeExec,
		Poll:        time.Millisecond,
		Retry:       backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("worker failed through 5xx blips: %v", err)
	}
	if stats.Cells != grid.Cells() {
		t.Errorf("worker completed %d cells, want %d", stats.Cells, grid.Cells())
	}
	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
}

// TestFetchGridRetriesThroughStartupRace: the worker process may start
// before the coordinator is listening usefully; FetchGrid keeps retrying
// through 503s and undecodable bodies until the grid appears.
func TestFetchGridRetriesThroughStartupRace(t *testing.T) {
	grid := Grid{Fingerprint: "fp-9", Groups: []Group{{ID: "g", Cells: 3}}}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			_, _ = w.Write([]byte(`{"truncat`)) // half-written reply
		default:
			_ = json.NewEncoder(w).Encode(grid)
		}
	}))
	defer srv.Close()

	got, err := FetchGrid(waitCtx(t), nil, srv.URL,
		backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != grid.Fingerprint || len(got.Groups) != 1 {
		t.Errorf("fetched grid %+v, want %+v", got, grid)
	}

	// Cancellation mid-retry unwinds promptly here too.
	always503 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer always503.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := FetchGrid(ctx, nil, always503.URL,
			backoff.Policy{Base: time.Minute, Max: time.Minute, Jitter: -1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("FetchGrid returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FetchGrid ignored cancellation mid-retry")
	}
}
