package sweep

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Straggler benchmark: the same cost-skewed synthetic sweep executed two
// ways. Static sharding pins each contiguous third to one worker, so the
// shard holding the expensive cells bounds the wall clock while the other
// workers idle; the coordinator over-partitions by cost and lets fast
// workers pull the cheap tail, so the wall clock approaches total/workers.
// Compare with:
//
//	go test ./internal/sweep -bench 'Sweep/' -benchtime 3x

const (
	benchWorkers  = 3
	benchCellUnit = time.Millisecond
)

// benchCosts is the synthetic straggler grid: 36 cheap cells with three
// 12x stragglers clustered at the front — the shape a model-ordered sweep
// has when the big models enumerate first.
func benchCosts() []float64 {
	costs := make([]float64, 36)
	for i := range costs {
		costs[i] = 1
	}
	costs[0], costs[1], costs[2] = 12, 12, 12
	return costs
}

// benchExec simulates running [lo, hi): it sleeps each cell's cost.
func benchExec(costs []float64, lo, hi int) []json.RawMessage {
	rows := make([]json.RawMessage, 0, hi-lo)
	for i := lo; i < hi; i++ {
		time.Sleep(time.Duration(costs[i] * float64(benchCellUnit)))
		rows = append(rows, json.RawMessage(`{}`))
	}
	return rows
}

// BenchmarkCoordinatedSweep: cost-aware batches pulled by 3 workers.
func BenchmarkCoordinatedSweep(b *testing.B) {
	costs := benchCosts()
	for i := 0; i < b.N; i++ {
		c, err := NewCoordinator(CoordinatorConfig{
			Grid:     Grid{Fingerprint: "bench", Groups: []Group{{ID: "g", Cells: len(costs), Costs: costs}}},
			Workers:  benchWorkers,
			IdleWait: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(c.Handler())
		var wg sync.WaitGroup
		for w := 0; w < benchWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, err := RunWorker(context.Background(), WorkerConfig{
					Coordinator: srv.URL,
					Name:        []string{"w0", "w1", "w2"}[w],
					Fingerprint: "bench",
					Poll:        time.Millisecond,
					Exec: func(_ context.Context, bt Batch) ([]json.RawMessage, error) {
						return benchExec(costs, bt.Lo, bt.Hi), nil
					},
				})
				if err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
		if _, err := c.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}
}

// BenchmarkStaticShardSweep: the same grid as three static contiguous
// shards; the iteration takes as long as the slowest shard.
func BenchmarkStaticShardSweep(b *testing.B) {
	costs := benchCosts()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < benchWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo, hi := (Shard{Index: w, Count: benchWorkers}).Span(len(costs))
				benchExec(costs, lo, hi)
			}(w)
		}
		wg.Wait()
	}
}
