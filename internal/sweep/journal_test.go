package sweep

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/faultinject"
)

// journalGrid is the shared sweep description of the journal tests.
func journalGrid() Grid {
	return Grid{
		Fingerprint: "fp-journal",
		Groups: []Group{
			{ID: "a", Cells: 11},
			{ID: "b", Cells: 6},
		},
	}
}

// completeBatches drives n lease→result rounds directly against the
// coordinator (no HTTP), using the deterministic fake rows, and returns the
// completed sequence numbers.
func completeBatches(t *testing.T, c *Coordinator, worker string, n int) []int {
	t.Helper()
	var seqs []int
	for i := 0; i < n; i++ {
		lr, code := c.lease(leaseRequest{Worker: worker, Fingerprint: c.cfg.Grid.Fingerprint})
		if code != 200 || lr.Batch == nil {
			t.Fatalf("lease %d: code %d, batch %v", i, code, lr.Batch)
		}
		rows, _ := fakeExec(nil, *lr.Batch)
		rr, code := c.result(resultRequest{Worker: worker, Seq: lr.Batch.Seq, Token: lr.Token, Rows: rows})
		if code != 200 || !rr.Accepted {
			t.Fatalf("result for batch %d: code %d accepted %v", lr.Batch.Seq, code, rr.Accepted)
		}
		seqs = append(seqs, lr.Batch.Seq)
	}
	return seqs
}

// TestJournalResumesCrashedCoordinator is the tentpole contract: a
// coordinator crash mid-sweep, restarted against the same journal, resumes
// with the accepted batches done — no lost cells (checkRows verifies every
// cell's exact bytes, i.e. output identical to a fault-free run) and no
// double-counted cells (completed batches across both lives sum to the
// batch count exactly).
func TestJournalResumesCrashedCoordinator(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CoordinatorConfig{Grid: grid, Workers: 2, Journal: jpath, IdleWait: time.Millisecond}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := completeBatches(t, first, "w-before-crash", 3)
	// Crash: the in-memory ledger dies with the process; only the journal
	// file survives. (close releases the fd — the bytes are already out.)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	st := second.Stats()
	if st.ResumedBatches != len(done) || st.CompletedBatches != len(done) {
		t.Fatalf("resumed %d completed %d, want both %d", st.ResumedBatches, st.CompletedBatches, len(done))
	}

	srv := httptest.NewServer(second.Handler())
	defer srv.Close()
	workers := runWorkers(t, srv.URL, 2, WorkerConfig{Fingerprint: grid.Fingerprint, Exec: fakeExec})

	res, err := second.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)

	liveBatches := 0
	for _, ws := range workers {
		liveBatches += ws.Batches
	}
	if liveBatches+len(done) != res.Stats.Batches {
		t.Errorf("%d live + %d resumed batches, want exactly %d — a cell was lost or double-counted",
			liveBatches, len(done), res.Stats.Batches)
	}
	// The resumed batches' rows came from the journal, not a re-run: the
	// pre-crash worker appears in the final stats with its credit intact.
	if ws := res.Stats.Workers["w-before-crash"]; ws.Completed != len(done) {
		t.Errorf("pre-crash worker credited %d batches, want %d", ws.Completed, len(done))
	}
}

// TestJournalTornTailDiscarded: a crash mid-append leaves a torn trailing
// line; replay keeps the intact prefix, truncates the tail, and the resumed
// coordinator appends onward and still finishes the sweep exactly.
func TestJournalTornTailDiscarded(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CoordinatorConfig{Grid: grid, Workers: 2, Journal: jpath, IdleWait: time.Millisecond}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := completeBatches(t, first, "w0", 2)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash cut a record short: valid JSON prefix, no newline, no CRC.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":5,"worker":"w0","rows":[`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if st := second.Stats(); st.ResumedBatches != len(done) {
		t.Fatalf("resumed %d batches through the torn tail, want %d", st.ResumedBatches, len(done))
	}
	// The torn bytes are gone from disk, so the resumed coordinator's own
	// appends extend intact records.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") || strings.Contains(string(data), `{"seq":5,"worker":"w0","rows":[`) {
		t.Fatalf("journal still ends with torn bytes: %q", data[len(data)-40:])
	}

	srv := httptest.NewServer(second.Handler())
	defer srv.Close()
	runWorkers(t, srv.URL, 2, WorkerConfig{Fingerprint: grid.Fingerprint, Exec: fakeExec})
	res, err := second.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
}

// TestJournalCorruptRecordQuarantined: a record whose rows fail their CRC
// (bit flip on disk) is not replayed — nor is anything after it, since a
// damaged middle leaves later records' provenance in doubt. The affected
// batches are simply re-dealt.
func TestJournalCorruptRecordQuarantined(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CoordinatorConfig{Grid: grid, Workers: 2, Journal: jpath, IdleWait: time.Millisecond}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	completeBatches(t, first, "w0", 3)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second record's rows payload.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 3 records", len(lines)-1)
	}
	mut := []byte(lines[2])
	mut[strings.Index(lines[2], `"rows"`)+10] ^= 0x04
	lines[2] = string(mut)
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if st := second.Stats(); st.ResumedBatches != 1 {
		t.Fatalf("resumed %d batches past a corrupt record, want only the 1 before it", st.ResumedBatches)
	}

	srv := httptest.NewServer(second.Handler())
	defer srv.Close()
	runWorkers(t, srv.URL, 2, WorkerConfig{Fingerprint: grid.Fingerprint, Exec: fakeExec})
	res, err := second.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
}

// TestJournalDuplicateRecordsCountOnce: duplicated records (a worker retry
// that landed twice, a copy-paste of journal segments) replay as one
// completion — the double-count guard.
func TestJournalDuplicateRecordsCountOnce(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CoordinatorConfig{Grid: grid, Workers: 2, Journal: jpath, IdleWait: time.Millisecond}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	completeBatches(t, first, "w0", 1)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	rec := lines[1]
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "")+rec+rec), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	st := second.Stats()
	if st.ResumedBatches != 1 || st.CompletedBatches != 1 {
		t.Errorf("triplicated record resumed %d / completed %d, want 1 / 1", st.ResumedBatches, st.CompletedBatches)
	}
	if ws := st.Workers["w0"]; ws.Completed != 1 {
		t.Errorf("worker credited %d completions, want 1", ws.Completed)
	}
}

// TestJournalRejectsDifferentSweep: a journal belongs to one exact sweep —
// fingerprint and batch layout both. Pointing a differently-configured
// coordinator at it must fail loudly, not silently replay rows into the
// wrong cells or silently discard completed work.
func TestJournalRejectsDifferentSweep(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	first, err := NewCoordinator(CoordinatorConfig{Grid: journalGrid(), Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	other := journalGrid()
	other.Fingerprint = "fp-other"
	if _, err := NewCoordinator(CoordinatorConfig{Grid: other, Journal: jpath}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Errorf("mismatched fingerprint: err %v, want a different-sweep refusal", err)
	}

	layout := journalGrid()
	layout.Groups[0].Cells = 12 // same fingerprint field left intact ≠ same layout
	if _, err := NewCoordinator(CoordinatorConfig{Grid: layout, Journal: jpath}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Errorf("mismatched layout: err %v, want a different-sweep refusal", err)
	}
}

// TestJournalCompletedSweepResumesAsDone: restarting over a journal that
// already covers every batch is immediately done — Wait returns without any
// worker connecting, with the full assembled rows.
func TestJournalCompletedSweepResumesAsDone(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CoordinatorConfig{Grid: grid, Workers: 1, BatchesPerWorker: 2, Journal: jpath}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	completeBatches(t, first, "w0", first.Stats().Batches)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	res, err := second.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res)
	if !res.Stats.Done || res.Stats.ResumedBatches != res.Stats.Batches {
		t.Errorf("done=%v resumed=%d of %d", res.Stats.Done, res.Stats.ResumedBatches, res.Stats.Batches)
	}
}

// TestCoordinatorInjectedFaultsAreTransparent: error faults fired at the
// coordinator's lease and result sites surface as HTTP 500s, which workers
// absorb as transient retries — the sweep still completes exactly, and the
// journal (replayed into a fresh coordinator) agrees with what was served.
func TestCoordinatorInjectedFaultsAreTransparent(t *testing.T) {
	grid := journalGrid()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	inj := faultinject.New(42,
		faultinject.Rule{Site: "sweep.coord.lease", Kind: faultinject.KindError, Rate: 0.4, Max: 8},
		faultinject.Rule{Site: "sweep.coord.result", Kind: faultinject.KindError, Rate: 0.4, Max: 8},
	)
	c, err := NewCoordinator(CoordinatorConfig{
		Grid: grid, Workers: 2, Journal: jpath, IdleWait: time.Millisecond, Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	retry := backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 1}
	runWorkers(t, srv.URL, 2, WorkerConfig{Fingerprint: grid.Fingerprint, Exec: fakeExec, Retry: retry})
	res, err := c.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	checkRows(t, grid, res)
	if n := len(inj.Events()); n == 0 {
		t.Fatal("injector never fired — the test exercised nothing")
	} else {
		t.Logf("sweep completed exactly through %d injected coordinator faults", n)
	}

	resumed, err := NewCoordinator(CoordinatorConfig{Grid: grid, Workers: 2, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	res2, err := resumed.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, grid, res2)
	for g, rows := range res.Rows {
		for i := range rows {
			if string(rows[i]) != string(res2.Rows[g][i]) {
				t.Fatalf("journal replay of %s cell %d differs from the served sweep", g, i)
			}
		}
	}
}
