package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The coordinator's lease journal: an append-only JSON-lines file recording
// every accepted batch result, so a coordinator that crashes mid-sweep can
// be restarted against the same journal and resume — already-accepted
// batches replay as done (no lost cells) and their sequence numbers are
// deduplicated (no double-counted cells). The journal holds rows, not
// snapshots: rows are the correctness-bearing output the byte-identical
// merge invariant covers, while worker plan-cache snapshots are re-attached
// to every post-restart result anyway.
//
// Durability model: records are written through the OS page cache without
// fsync. A coordinator *process* crash (the failure the chaos harness
// induces) loses nothing; a whole-machine power cut may lose the tail,
// which costs re-running the affected batches — a duplicate solve, never a
// wrong result, because the first completion wins and rows are
// deterministic. A torn trailing line from a crash mid-append is detected
// by its CRC (or by failing to parse) and discarded on replay.

// journalFormat tags the header line so a future format change fails loudly
// instead of silently replaying records it misreads.
const journalFormat = "sweep-journal-v1"

// journalHeader is the file's first line. Fingerprint and Layout bind the
// journal to one exact sweep: replaying rows into a coordinator whose grid
// or batch boundaries differ would scatter cells into the wrong ranges, so
// a mismatch is an error, not a silent fresh start.
type journalHeader struct {
	Journal     string `json:"journal"`
	Fingerprint string `json:"fingerprint"`
	Layout      string `json:"layout"`
	Batches     int    `json:"batches"`
}

// journalRecord is one accepted batch result. CRC covers the exact Rows
// bytes, so a bit flip or torn write in the rows payload quarantines the
// record instead of resurrecting damaged cells.
type journalRecord struct {
	Seq    int             `json:"seq"`
	Worker string          `json:"worker"`
	Rows   json.RawMessage `json:"rows"`
	CRC    string          `json:"crc"`
}

var journalCRCTable = crc32.MakeTable(crc32.Castagnoli)

func journalCRC(data []byte) string {
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(data, journalCRCTable))
}

// layoutDigest fingerprints the batch layout — every (seq, group, lo, hi)
// boundary. Batch boundaries depend on cost estimates and sizing knobs, so
// two coordinators over the same grid can still cut different batches; rows
// journaled under one layout must never replay into another.
func layoutDigest(batches []*batchState) string {
	var buf bytes.Buffer
	for _, bs := range batches {
		fmt.Fprintf(&buf, "%d:%s:%d:%d;", bs.Seq, bs.Group, bs.Lo, bs.Hi)
	}
	return journalCRC(buf.Bytes())
}

// journal is the open journal file. Appends are serialized by mu —
// independent of the coordinator's own lock, so a slow disk write never
// extends the protocol critical section beyond the one result being
// recorded.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the journal at path and replays any
// records already in it. A new file gets the header written immediately; an
// existing file must open with a matching header. The replayed records are
// returned in file order — duplicates and range checks are the caller's
// business, since only the coordinator knows the ledger. A torn or
// corrupt tail is truncated away so subsequent appends extend a clean file.
func openJournal(path string, hdr journalHeader) (*journal, []journalRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return createJournal(path, hdr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// Created but never written (crash before the header landed):
		// indistinguishable from new, so start it fresh.
		return createJournal(path, hdr)
	}

	rd := bufio.NewReader(bytes.NewReader(data))
	line, err := rd.ReadBytes('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: unterminated header", path)
	}
	var got journalHeader
	if err := json.Unmarshal(line, &got); err != nil || got.Journal != journalFormat {
		return nil, nil, fmt.Errorf("sweep: journal %s: not a %s file", path, journalFormat)
	}
	if got.Fingerprint != hdr.Fingerprint || got.Layout != hdr.Layout || got.Batches != hdr.Batches {
		return nil, nil, fmt.Errorf(
			"sweep: journal %s belongs to a different sweep (fingerprint %q layout %s, this sweep %q layout %s) — remove it or point -journal elsewhere",
			path, got.Fingerprint, got.Layout, hdr.Fingerprint, hdr.Layout)
	}

	var recs []journalRecord
	good := len(line) // byte offset of the end of the last intact line
	for {
		line, err = rd.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		var rec journalRecord
		if err != nil || // torn tail: no trailing newline
			json.Unmarshal(line, &rec) != nil ||
			rec.CRC != journalCRC(rec.Rows) {
			// The damaged line and everything after it is unusable; cut it
			// off so the resumed coordinator appends onto intact records.
			break
		}
		recs = append(recs, rec)
		good += len(line)
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, nil, fmt.Errorf("sweep: journal %s: drop torn tail: %w", path, err)
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	return &journal{f: f}, recs, nil
}

// createJournal starts a fresh journal with just the header line.
func createJournal(path string, hdr journalHeader) (*journal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal header: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	return &journal{f: f}, nil, nil
}

// append records one accepted result as a single whole-line write, so
// records never interleave mid-line.
func (j *journal) append(seq int, worker string, rows []json.RawMessage) error {
	rowsJSON, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("sweep: journal: encode rows for batch %d: %w", seq, err)
	}
	line, err := json.Marshal(journalRecord{
		Seq:    seq,
		Worker: worker,
		Rows:   rowsJSON,
		CRC:    journalCRC(rowsJSON),
	})
	if err != nil {
		return fmt.Errorf("sweep: journal: encode record for batch %d: %w", seq, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: journal: append batch %d: %w", seq, err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
