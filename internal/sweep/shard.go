package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects one partition of an enumerable cell set for distributed
// sweeps: shard Index of Count owns a contiguous, balanced block of the
// cells, so any shard can be computed in isolation and shard outputs
// concatenated in index order reproduce the unsharded result exactly. The
// partition is a pure function of (Index, Count, len) — independent
// processes agree on it without coordination.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Full is the trivial single-shard spec covering every cell.
func Full() Shard { return Shard{Index: 0, Count: 1} }

// ParseShard parses an "i/N" spec (e.g. "0/3"). Out-of-range specs fail
// with the valid range spelled out — "5/3" names 0/3 through 2/3 — so an
// operator mis-wiring a CI matrix sees the fix, not just the rejection.
func ParseShard(s string) (Shard, error) {
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/N (e.g. 0/3)", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(idx))
	n, err2 := strconv.Atoi(strings.TrimSpace(count))
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/N (e.g. 0/3)", s)
	}
	sh := Shard{Index: i, Count: n}
	if n < 1 {
		return Shard{}, fmt.Errorf("sweep: shard %q: count %d is not a positive shard count", s, n)
	}
	if i < 0 || i >= n {
		return Shard{}, fmt.Errorf("sweep: shard %q: index %d out of range for %d shards (valid: 0/%d through %d/%d)",
			s, i, n, n, n-1, n)
	}
	return sh, nil
}

// String renders the spec in the "i/N" flag form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// IsFull reports whether the shard covers the whole cell set.
func (s Shard) IsFull() bool { return s.Count == 1 && s.Index == 0 }

// Validate rejects impossible specs, naming the valid range.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("sweep: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: shard index %d out of range for %d shards (valid indices: 0 through %d)",
			s.Index, s.Count, s.Count-1)
	}
	return nil
}

// Span returns the shard's half-open cell range [lo, hi) over n cells. The
// blocks tile [0, n) exactly and differ in size by at most one cell, so
// work stays balanced even when n is not a multiple of Count.
func (s Shard) Span(n int) (lo, hi int) {
	if n < 0 {
		n = 0
	}
	return s.Index * n / s.Count, (s.Index + 1) * n / s.Count
}

// Slice returns the shard's contiguous sub-slice of items (aliasing the
// input backing array).
func Slice[T any](s Shard, items []T) []T {
	lo, hi := s.Span(len(items))
	return items[lo:hi]
}
