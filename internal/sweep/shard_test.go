package sweep

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestShardTilesExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 10, 11, 100} {
		for _, count := range []int{1, 2, 3, 4, 7, 16} {
			seen := make([]int, n) // how many shards claim each cell
			prevHi := 0
			for i := 0; i < count; i++ {
				sh := Shard{Index: i, Count: count}
				if err := sh.Validate(); err != nil {
					t.Fatalf("%v: %v", sh, err)
				}
				lo, hi := sh.Span(n)
				if lo != prevHi {
					t.Errorf("n=%d %v: span starts at %d, want %d (contiguous tiling)", n, sh, lo, prevHi)
				}
				if size := hi - lo; size < n/count || size > n/count+1 {
					t.Errorf("n=%d %v: block size %d unbalanced", n, sh, size)
				}
				for c := lo; c < hi; c++ {
					seen[c]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Errorf("n=%d count=%d: tiling ends at %d", n, count, prevHi)
			}
			for c, k := range seen {
				if k != 1 {
					t.Errorf("n=%d count=%d: cell %d claimed by %d shards", n, count, c, k)
				}
			}
		}
	}
}

func TestShardSliceConcatenationEqualsUnsharded(t *testing.T) {
	items := make([]int, 23)
	for i := range items {
		items[i] = i * i
	}
	full, err := Map(context.Background(), 4, items, func(_ context.Context, _ int, v int) (int, error) {
		return v + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 5} {
		var merged []int
		for i := 0; i < count; i++ {
			part, err := Map(context.Background(), 4, Slice(Shard{Index: i, Count: count}, items),
				func(_ context.Context, _ int, v int) (int, error) { return v + 1, nil })
			if err != nil {
				t.Fatal(err)
			}
			merged = append(merged, part...)
		}
		if !reflect.DeepEqual(merged, full) {
			t.Errorf("count=%d: concatenated shard outputs %v != unsharded %v", count, merged, full)
		}
	}
}

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("2/5")
	if err != nil || sh != (Shard{Index: 2, Count: 5}) {
		t.Fatalf("ParseShard(2/5) = %v, %v", sh, err)
	}
	if sh.String() != "2/5" {
		t.Errorf("String() = %q", sh.String())
	}
	if !Full().IsFull() {
		t.Error("Full() not full")
	}
	if (Shard{Index: 1, Count: 3}).IsFull() {
		t.Error("1/3 reported full")
	}
	for _, bad := range []string{"", "3", "a/b", "1/0", "-1/2", "2/2", "3/2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) did not fail", bad)
		}
	}
}

// TestParseShardErrorsNameValidRange: a mis-wired -shard flag must produce
// an actionable message — the valid range for out-of-range indices, the
// expected form for syntax errors — not a bare parse failure.
func TestParseShardErrorsNameValidRange(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings the error must contain
	}{
		{"5/3", []string{"5", "out of range", "0/3", "2/3"}},
		{"3/3", []string{"3", "out of range", "0/3", "2/3"}},
		{"-1/4", []string{"-1", "out of range", "0/4", "3/4"}},
		{"0/0", []string{"0", "not a positive shard count"}},
		{"1/-2", []string{"-2", "not a positive shard count"}},
		{"oops", []string{"i/N", "0/3"}},
		{"1:3", []string{"i/N"}},
	}
	for _, tc := range cases {
		_, err := ParseShard(tc.spec)
		if err == nil {
			t.Errorf("ParseShard(%q) did not fail", tc.spec)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseShard(%q) error %q does not mention %q", tc.spec, err, want)
			}
		}
	}
	// Validate (the merge path's check) names the range too.
	if err := (Shard{Index: 7, Count: 3}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "0 through 2") {
		t.Errorf("Validate error %v does not name the valid range", err)
	}
}

func TestShardSpanDegenerate(t *testing.T) {
	// More shards than cells: extra shards get empty spans, cells still
	// land in exactly one shard.
	total := 0
	for i := 0; i < 8; i++ {
		lo, hi := (Shard{Index: i, Count: 8}).Span(3)
		total += hi - lo
	}
	if total != 3 {
		t.Errorf("8 shards over 3 cells cover %d cells", total)
	}
	if lo, hi := Full().Span(0); lo != 0 || hi != 0 {
		t.Errorf("empty set span = [%d,%d)", lo, hi)
	}
}

// Shard examples double as documentation for the flag syntax.
func ExampleParseShard() {
	sh, _ := ParseShard("1/3")
	lo, hi := sh.Span(10)
	fmt.Println(lo, hi)
	// Output: 3 6
}
