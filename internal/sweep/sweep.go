// Package sweep distributes independent experiment cells — within a
// process, across processes, and across machines. The evaluation sweeps
// (tables, figures, ablations) are embarrassingly parallel: each
// device × model × config cell prepares and executes its own simulated
// run, so the only coordination any layer needs is "who runs which cells"
// and "reassemble in cell order". Three layers provide that at increasing
// scale:
//
//   - Map/Run: a bounded in-process worker pool. Results keep the input
//     order regardless of completion order, worker panics are captured as
//     errors instead of crashing the process, and the first failure
//     cancels the remaining cells.
//   - Shard: a deterministic static partitioner. Shard i/N owns a
//     contiguous, balanced block of the cell space as a pure function of
//     (i, N, len), so independent processes agree on the partition with no
//     communication at all — the right tool for a fixed CI matrix.
//   - Coordinator/RunWorker: a dynamic coordinator/worker split for
//     cost-skewed grids, where static sharding leaves one shard
//     straggling. Workers pull cost-sized batches over HTTP/JSON (work
//     stealing by construction), expired or failed leases are re-dealt
//     with retry accounting, and assembly enforces the same exact-tiling
//     invariant as the static merge.
//
// All three produce rows in cell enumeration order, which is what makes
// their outputs interchangeable — and byte-identical — however the work
// was scheduled.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError wraps a panic recovered in a worker so a crashing cell fails
// its sweep instead of the whole process.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error describes the panic; the captured stack is in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v", e.Index, e.Value)
}

// Map runs fn over items on up to workers goroutines (workers <= 0 uses
// GOMAXPROCS) and returns the results in input order. The first error (or
// recovered panic) cancels the context passed to the remaining cells and is
// returned; cells skipped after cancellation leave zero values behind.
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, index int, item I) (O, error)) ([]O, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(&PanicError{Index: i, Value: r, Stack: debug.Stack()})
			}
		}()
		v, err := fn(ctx, i, items[i])
		if err != nil {
			fail(fmt.Errorf("sweep: cell %d: %w", i, err))
			return
		}
		out[i] = v
	}

	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain: a cancelled sweep skips remaining cells
				}
				run(i)
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// Run is Map over indices alone, for sweeps whose cells are defined by
// position rather than an item slice.
func Run[O any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (O, error)) ([]O, error) {
	idx := make([]struct{}, n)
	return Map(ctx, workers, idx, func(ctx context.Context, i int, _ struct{}) (O, error) {
		return fn(ctx, i)
	})
}
