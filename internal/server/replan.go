package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/fusion"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/replan"
	"repro/internal/units"
)

// POST /replan is the dynamic-scenario path: where /plan answers "give me
// the plan for this configuration", /replan answers "the device changed
// under a plan you already gave me — give me a valid one again, cheaply".
// The server keeps a bounded store of repair lineages (the traced solves
// opg.Repairable retains) keyed by everything that identifies a plan
// lineage except the churn-varying knobs (memory budget, thermal level),
// and each request walks the degradation ladder:
//
//	repaired       — incremental repair of the retained solve
//	cold           — from-scratch solve (first sight, or incompatible change)
//	cached_variant — nearest cached plan revalidated for the new state
//	patched        — prefix-preserving greedy patch after a repair-budget miss
//
// The response's Source carries the rung, so clients and dashboards see
// exactly how degraded each served plan is; /statsz aggregates the same
// labels plus repair window counts.

// replanEntry is one plan lineage: the retained traced solve repair
// starts from. The entry lock serializes the ladder per lineage while
// distinct lineages proceed in parallel.
type replanEntry struct {
	mu  sync.Mutex
	rep *opg.Repairable
}

// replanStore is a bounded LRU of repair lineages. Lineages are an
// optimization, not ground truth — evicting one costs the next /replan a
// cold solve, never a wrong answer.
type replanStore struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type replanNode struct {
	key   string
	entry *replanEntry
}

func newReplanStore(max int) *replanStore {
	return &replanStore{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// acquire returns the lineage for key, creating (and, at the bound,
// evicting the least recently used) as needed.
func (s *replanStore) acquire(key string) *replanEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*replanNode).entry
	}
	if s.order.Len() >= s.max {
		// Evict the least recently used lineage whose ladder is not mid-walk:
		// evicting an entry whose lock is held would let a concurrent request
		// for the same key create a second entry and duplicate the
		// multi-hundred-ms cold solve under exactly the load spike the bound
		// targets. If every lineage is busy, temporarily exceed the bound —
		// the next acquire retries the eviction.
		for el := s.order.Back(); el != nil; el = el.Prev() {
			n := el.Value.(*replanNode)
			if n.entry.mu.TryLock() {
				n.entry.mu.Unlock()
				s.order.Remove(el)
				delete(s.entries, n.key)
				break
			}
		}
	}
	n := &replanNode{key: key, entry: &replanEntry{}}
	s.entries[key] = s.order.PushFront(n)
	return n.entry
}

// Len reports live lineages.
func (s *replanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// replanCounters aggregate the ladder outcomes for /statsz.
type replanCounters struct {
	requests        atomic.Int64
	repaired        atomic.Int64
	cold            atomic.Int64
	cachedVariant   atomic.Int64
	patched         atomic.Int64
	windowsKept     atomic.Int64
	windowsResolved atomic.Int64
}

// ReplanStats is the /statsz repair block.
type ReplanStats struct {
	Requests        int64 `json:"requests"`
	Repaired        int64 `json:"repaired"`
	Cold            int64 `json:"cold"`
	CachedVariant   int64 `json:"cached_variant"`
	Patched         int64 `json:"patched"`
	WindowsKept     int64 `json:"windows_kept"`
	WindowsResolved int64 `json:"windows_resolved"`
	Lineages        int   `json:"lineages"`
}

// ReplanRequest is the POST /replan body. Config expresses the post-churn
// solver state (mpeak_mb is the new memory budget); Throttle is the
// thermal level the device currently runs at (internal/power semantics:
// 0 = nominal, deeper levels derate compute and on-chip bandwidths).
type ReplanRequest struct {
	Device   string           `json:"device"`
	Model    string           `json:"model"`
	Throttle int              `json:"throttle,omitempty"`
	Config   *SolverOverrides `json:"config,omitempty"`
}

// RepairSummary reports what the repair rung did.
type RepairSummary struct {
	WindowsKept     int     `json:"windows_kept"`
	WindowsResolved int     `json:"windows_resolved"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// ReplanResponse is the POST /replan success body. Source is the
// degradation-ladder rung that produced the plan ("repaired", "cold",
// "cached_variant", "patched"); the plan itself is execution-ready for
// the effective (throttled) device.
type ReplanResponse struct {
	Device   string `json:"device"`
	Model    string `json:"model"`
	Key      string `json:"key"`
	Throttle int    `json:"throttle"`

	Source string        `json:"source"`
	Repair RepairSummary `json:"repair"`

	Summary Summary         `json:"summary"`
	Plan    json.RawMessage `json:"plan"`
}

// fusedGraphFor memoizes the fused graph per model — the graph every
// lineage's plans pair with.
func (s *Server) fusedGraphFor(spec models.Spec) *graph.Graph {
	e, _ := s.fused.LoadOrStore(spec.Abbr, &graphEntry{})
	ge := e.(*graphEntry)
	ge.once.Do(func() { ge.g = fusion.Fuse(spec.Build(), fusion.DefaultOptions()) })
	return ge.g
}

func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.ctr.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, t0, http.StatusMethodNotAllowed, false, codeMethodNotAllowed, "POST only")
		return
	}
	var req ReplanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	dev, ok := device.ByName(req.Device)
	if !ok {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("unknown device %q", req.Device))
		return
	}
	spec, ok := models.ByAbbr(req.Model)
	if !ok {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	if req.Throttle < 0 {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, "throttle must be non-negative")
		return
	}
	cfg, err := req.Config.apply(s.cfg.Solver)
	if err != nil {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("bad config: %v", err))
		return
	}

	// Counted only once the request has parsed and resolved to a ladder
	// walk, so the per-rung counters sum to requests and malformed traffic
	// cannot inflate the /statsz repair block.
	s.replanCtr.requests.Add(1)

	eff := power.Throttle(dev, req.Throttle)
	caps := profiler.AnalyticCapacityFunc(eff)
	g := s.fusedGraphFor(spec)

	// The lineage key pins everything that identifies a repairable solve
	// except the churn-varying state (budget, throttle): a budget step or
	// thermal transition lands on the same lineage and repairs; changing
	// the window or chunking is a different lineage.
	key := fmt.Sprintf("replan|%s|%s|%s|%d|%g|%d|%s|%d",
		opg.SolverVersion, dev.Name, spec.Abbr,
		int64(cfg.ChunkSize), cfg.Lambda, cfg.Window, cfg.SolveTimeout, cfg.MaxBranches)

	entry := s.replans.acquire(key)
	entry.mu.Lock()
	plan, source, rsum := s.replanLadder(entry, g, caps, cfg)
	entry.mu.Unlock()

	// Make the plan execution-ready for the effective device: prefetch
	// timing follows the throttled cost model and disk bandwidth. Every
	// ladder rung returns a private copy, so the adjustment never touches
	// lineage or cache state.
	cm := kernels.NewCostModel(eff)
	opg.AdjustLoadStarts(plan, g, func(id graph.NodeID) units.Duration {
		return cm.KernelTime(g.Node(id), kernels.Texture25D)
	}, eff.DiskBW, cfg.MPeak)

	// The resilience invariant, enforced at the serving boundary: whatever
	// rung produced this plan, it must be valid for the device state it is
	// served under.
	if verr := plan.Validate(g, caps, cfg); verr != nil {
		s.fail(w, t0, http.StatusInternalServerError, false, codeInternal,
			fmt.Sprintf("%s plan failed validation for the requested device state: %v", source, verr))
		return
	}

	switch source {
	case opg.RungRepaired:
		s.replanCtr.repaired.Add(1)
	case opg.RungCold:
		s.replanCtr.cold.Add(1)
	case opg.RungCachedVariant:
		s.replanCtr.cachedVariant.Add(1)
	case opg.RungPatched:
		s.replanCtr.patched.Add(1)
	}
	s.replanCtr.windowsKept.Add(int64(rsum.WindowsKept))
	s.replanCtr.windowsResolved.Add(int64(rsum.WindowsResolved))

	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		s.fail(w, t0, http.StatusInternalServerError, false, codeInternal, fmt.Sprintf("encode plan: %v", err))
		return
	}
	resp := ReplanResponse{
		Device:   req.Device,
		Model:    req.Model,
		Key:      key,
		Throttle: req.Throttle,
		Source:   source,
		Repair:   rsum,
		Summary: Summary{
			Layers:          g.Len(),
			Weights:         len(plan.Weights),
			OverlapFraction: plan.OverlapFraction(),
			PreloadMB:       plan.PreloadBytes().MiB(),
			SolverStatus:    plan.Stats.Status.String(),
			SolverWindows:   plan.Stats.Windows,
			SolverBranches:  plan.Stats.Branches,
		},
		Plan: json.RawMessage(buf.Bytes()),
	}
	s.serveHist.observe(time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// replanLadder walks the degradation ladder for one lineage under the
// entry lock and returns an execution-ready plan (deep copy, prefetch
// timing adjusted for the effective device), the rung label, and the
// repair accounting. It never fails: the final rungs are constructive.
func (s *Server) replanLadder(entry *replanEntry, g *graph.Graph, caps opg.Capacity, cfg opg.Config) (*opg.Plan, string, RepairSummary) {
	t0 := time.Now()
	cold := func() (*opg.Plan, string, RepairSummary) {
		entry.rep = opg.SolveRepairable(g, caps, cfg)
		return entry.rep.Plan(), opg.RungCold, RepairSummary{ElapsedMS: msSince(t0)}
	}

	if entry.rep == nil {
		return cold()
	}
	st, err := entry.rep.Repair(caps, cfg, opg.RepairOptions{Budget: s.cfg.RepairBudget})
	if err == nil {
		return entry.rep.Plan(), opg.RungRepaired, RepairSummary{
			WindowsKept:     st.WindowsKept,
			WindowsResolved: st.WindowsResolved,
			ElapsedMS:       msSince(t0),
		}
	}
	if errors.Is(err, opg.ErrRepairIncompatible) {
		return cold()
	}

	// Repair missed its latency budget. Rung 2: a cached plan variant that
	// already satisfies the new state. The lineage is stale afterwards —
	// the retained solve no longer matches what is served — so the next
	// request cold-solves rather than repairing from a wrong baseline.
	if pl := replan.CachedVariant(s.cache, g, caps, cfg); pl != nil {
		pl.Stats.RepairRung = opg.RungCachedVariant
		entry.rep = nil
		return pl, opg.RungCachedVariant, RepairSummary{ElapsedMS: msSince(t0)}
	}

	// Rung 3: prefix-preserving greedy patch.
	pl, st, perr := entry.rep.GreedyPatch(caps, cfg)
	if perr != nil {
		// Unreachable (rung 1 already proved compatibility), but never
		// serve a plan we cannot justify.
		return cold()
	}
	entry.rep = nil
	return pl, opg.RungPatched, RepairSummary{
		WindowsKept:     st.WindowsKept,
		WindowsResolved: st.WindowsResolved,
		ElapsedMS:       msSince(t0),
	}
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
