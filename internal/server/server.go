// Package server is the FlashMem plan-serving service: a long-running
// HTTP/JSON backend that turns the per-process planning library into a
// fleet coordinator. Devices request overlap plans keyed by (device
// profile × model × solver configuration); the plan cache is the hot
// store, concurrent identical requests collapse via singleflight onto one
// solve, and cache misses queue onto a bounded solve worker pool with
// admission control — a full queue answers 429 + Retry-After instead of
// accepting unbounded work, and a request whose solve outlasts the
// per-request timeout answers 504 while the solve keeps running and warms
// the cache for the retry.
//
// The sharded-sweep machinery is the offline cache-warming path: merged
// FormatVersion-3 plan-cache snapshots (flashbench -shard/merge) load at
// boot via LoadSnapshots, and every response reports whether it was served
// warm (snapshot), cached (solved earlier in-process), solved, or
// collapsed onto another request's solve.
//
// Endpoints:
//
//	POST /plan    {"device":"OnePlus 12","model":"ViT","config":{...}}
//	GET  /healthz liveness + warm-plan count
//	GET  /statsz  hits/misses/collapses, queue depth, latency histograms
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/units"
)

// Config sizes the service. The zero value of every field selects a
// sensible default, so Config{} is a working configuration.
type Config struct {
	// Workers is the solve worker pool size (<= 0: GOMAXPROCS). Solves are
	// CPU-bound, so more workers than cores buys queueing, not throughput.
	Workers int

	// QueueDepth bounds solves that are admitted but not yet executing
	// (<= 0: 64). At the bound new misses are rejected with 429 +
	// Retry-After rather than queued without bound: the client's retry is
	// cheap, an unbounded backlog of multi-second solves is not.
	QueueDepth int

	// SolveTimeout caps how long one request waits for its solve (<= 0:
	// 30s). A timed-out request answers 504, but the solve itself keeps
	// running and stores into the cache, so the retry is a hit.
	SolveTimeout time.Duration

	// RetryAfter is the hint attached to 429/504 responses (<= 0: 1s).
	RetryAfter time.Duration

	// CacheEntries bounds the plan cache (<= 0: 8192 — comfortably above
	// the full evaluation matrix, so a merged fleet snapshot warm-starts
	// completely).
	CacheEntries int

	// BreakerThreshold is how many consecutive solve failures (errors or
	// recovered panics) open the circuit breaker (<= 0: 5). While open,
	// new solves are refused for BreakerCooldown — served degraded when a
	// last-known-good plan exists, 503 + Retry-After otherwise — then one
	// probe solve decides whether to close or re-open.
	BreakerThreshold int

	// BreakerCooldown is how long the breaker stays open before probing
	// (<= 0: 5s).
	BreakerCooldown time.Duration

	// RepairBudget caps the incremental-repair rung on the /replan path
	// (0: unlimited). A repair that misses it descends the degradation
	// ladder (cached variant, then greedy patch) instead of blocking.
	RepairBudget time.Duration

	// ReplanEntries bounds the /replan lineage store (<= 0: 128). Evicting
	// a lineage costs the next /replan for it a cold solve, never a wrong
	// answer.
	ReplanEntries int

	// Injector, when non-nil, arms fault injection on the solve path
	// (site "server.solve": error, latency, panic). Chaos harnesses only.
	Injector *faultinject.Injector

	// Solver is the base solver configuration; per-request overrides apply
	// on top of it. A zero ChunkSize selects opg.DefaultConfig() wholesale,
	// so partial configs must start from opg.DefaultConfig().
	Solver opg.Config
}

// Server serves overlap plans for the whole device matrix from one
// process. All state is concurrency-safe: per-device engines are stateless
// and built per request, model graphs are memoized once per abbreviation,
// and the shared plan cache carries its own locking.
type Server struct {
	cfg       Config
	cache     *plancache.Cache
	stale     *plancache.Cache // last-known-good plans for degraded serving
	brk       breaker
	sf        group
	queue     chan *job
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	start     time.Time

	warmMu sync.RWMutex
	warm   map[string]struct{} // keys loaded from boot snapshots

	graphs sync.Map // model abbr → *graphEntry
	fused  sync.Map // model abbr → *graphEntry (fused, for /replan lineages)

	replans   *replanStore
	replanCtr replanCounters

	ctr       counters
	solveHist histogram // actual solver executions only
	serveHist histogram // every /plan response, success or failure

	// holdSolves, when non-nil, parks each worker just before its solve
	// until the channel closes — a test hook that makes singleflight
	// collapse and admission-control tests deterministic instead of racy.
	holdSolves chan struct{}
}

// job is one admitted solve.
type job struct {
	key string
	eng *core.Engine
	g   *graph.Graph
	c   *call
}

var (
	errOverloaded  = errors.New("solve queue full")
	errShutdown    = errors.New("server shutting down")
	errCircuitOpen = errors.New("circuit breaker open")
)

// Machine-readable error codes carried in every non-200 JSON body, so
// clients branch on a stable field instead of parsing prose.
const (
	codeBadRequest       = "bad_request"
	codeMethodNotAllowed = "method_not_allowed"
	codeQueueFull        = "queue_full"
	codeSolveTimeout     = "solve_timeout"
	codeShuttingDown     = "shutting_down"
	codeSolveFailed      = "solve_failed"
	codeCircuitOpen      = "circuit_open"
	codeInternal         = "internal"
)

// New builds a server and starts its solve workers. Call Close to stop
// them.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SolveTimeout <= 0 {
		cfg.SolveTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 8192
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.ReplanEntries <= 0 {
		cfg.ReplanEntries = 128
	}
	if cfg.Solver.ChunkSize <= 0 {
		cfg.Solver = opg.DefaultConfig()
	}
	s := &Server{
		cfg:   cfg,
		cache: plancache.New(cfg.CacheEntries),
		// The last-known-good store is twice the hot cache: a plan evicted
		// from the hot store under pressure is exactly the plan degraded
		// serving wants to still have when its re-solve fails.
		stale:   plancache.New(2 * cfg.CacheEntries),
		brk:     breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		queue:   make(chan *job, cfg.QueueDepth),
		done:    make(chan struct{}),
		start:   time.Now(),
		warm:    make(map[string]struct{}),
		replans: newReplanStore(cfg.ReplanEntries),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the worker pool and fails any still-queued solves; waiters
// on those solves are released with errors. Stop accepting HTTP traffic
// before calling Close. Closing twice is a no-op.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		for {
			select {
			case j := <-s.queue:
				s.sf.complete(j.key, j.c, nil, errShutdown)
			default:
				return
			}
		}
	})
}

// Cache exposes the server's plan cache, the hot store.
func (s *Server) Cache() *plancache.Cache { return s.cache }

// LoadSnapshots warm-starts the hot store from plan-cache snapshot files —
// typically the merged FormatVersion-3 output of a sharded offline sweep
// (flashbench merge -cache-out). Every key present after the load is
// marked warm, so /plan responses and /statsz distinguish fleet-warmed
// plans from ones this process solved. Call before serving traffic.
func (s *Server) LoadSnapshots(paths ...string) (plancache.LoadStats, error) {
	stats, err := s.cache.LoadAll(paths...)
	s.warmMu.Lock()
	for _, k := range s.cache.Keys() {
		s.warm[k] = struct{}{}
	}
	s.warmMu.Unlock()
	return stats, err
}

// SaveSnapshot persists the hot store, warm and in-process solves alike,
// as a snapshot the next boot (or any flashbench run) can load.
func (s *Server) SaveSnapshot(path string) error { return s.cache.Save(path) }

// WarmPlans returns how many snapshot-loaded plans are marked warm.
func (s *Server) WarmPlans() int {
	s.warmMu.RLock()
	defer s.warmMu.RUnlock()
	return len(s.warm)
}

// Handler returns the HTTP API: POST /plan, GET /healthz, GET /statsz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/replan", s.handleReplan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// worker executes admitted solves. Engine.Prepare re-checks the cache
// under singleflight, so a job enqueued just before another leader's
// result landed degrades to a cache hit instead of a duplicate solve.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case j := <-s.queue:
			s.ctr.inFlight.Add(1)
			if s.holdSolves != nil {
				select {
				case <-s.holdSolves:
				case <-s.done:
					s.ctr.inFlight.Add(-1)
					s.sf.complete(j.key, j.c, nil, errShutdown)
					continue
				}
			}
			t0 := time.Now()
			prep, err := s.solve(j)
			if err == nil && !prep.FromCache {
				s.solveHist.observe(time.Since(t0))
				// This process solved it, so the plan is no longer the
				// snapshot's: un-mark warm in case an evicted warm entry
				// was just re-solved.
				s.warmMu.Lock()
				delete(s.warm, j.key)
				s.warmMu.Unlock()
			}
			if err == nil {
				s.brk.success()
			} else {
				s.brk.failure()
			}
			s.ctr.inFlight.Add(-1)
			s.sf.complete(j.key, j.c, prep, err)
		}
	}
}

// solve runs one admitted job with panic containment: a panicking solver —
// real or injected — must cost exactly one request its result, not the
// worker goroutine (which would quietly shrink the pool until the server
// deadlocks with a full queue and nobody draining it).
func (s *Server) solve(j *job) (prep *core.Prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.ctr.panics.Add(1)
			prep, err = nil, fmt.Errorf("solver panic: %v", r)
		}
	}()
	if inj := s.cfg.Injector; inj != nil {
		if err := inj.Err("server.solve"); err != nil {
			return nil, err
		}
		_ = inj.Delay(context.Background(), "server.solve")
		inj.MaybePanic("server.solve")
	}
	return j.eng.Prepare(j.g)
}

// PlanRequest is the POST /plan body. Device and Model address the
// evaluation matrix by name; Config optionally overrides the server's base
// solver configuration — and becomes part of the plan key, so distinct
// configurations are distinct cache entries.
type PlanRequest struct {
	Device string           `json:"device"`
	Model  string           `json:"model"`
	Config *SolverOverrides `json:"config,omitempty"`
}

// SolverOverrides are the per-request solver knobs. Nil fields keep the
// server's base configuration.
type SolverOverrides struct {
	MPeakMB        *int64   `json:"mpeak_mb,omitempty"`
	Lambda         *float64 `json:"lambda,omitempty"`
	ChunkKB        *int64   `json:"chunk_kb,omitempty"`
	Window         *int     `json:"window,omitempty"`
	SolveTimeoutMS *int64   `json:"solve_timeout_ms,omitempty"`
	MaxBranches    *int64   `json:"max_branches,omitempty"`
}

// apply layers the overrides onto base, validating as it goes.
func (o *SolverOverrides) apply(base opg.Config) (opg.Config, error) {
	if o == nil {
		return base, nil
	}
	if o.MPeakMB != nil {
		if *o.MPeakMB <= 0 {
			return base, fmt.Errorf("mpeak_mb must be positive")
		}
		base.MPeak = units.Bytes(*o.MPeakMB) * units.MB
	}
	if o.Lambda != nil {
		if *o.Lambda < 0 || *o.Lambda > 1 {
			return base, fmt.Errorf("lambda must be in [0, 1]")
		}
		base.Lambda = *o.Lambda
	}
	if o.ChunkKB != nil {
		if *o.ChunkKB <= 0 {
			return base, fmt.Errorf("chunk_kb must be positive")
		}
		base.ChunkSize = units.Bytes(*o.ChunkKB) * units.KB
	}
	if o.Window != nil {
		if *o.Window <= 0 {
			return base, fmt.Errorf("window must be positive")
		}
		base.Window = *o.Window
	}
	if o.SolveTimeoutMS != nil {
		if *o.SolveTimeoutMS <= 0 {
			return base, fmt.Errorf("solve_timeout_ms must be positive")
		}
		base.SolveTimeout = time.Duration(*o.SolveTimeoutMS) * time.Millisecond
	}
	if o.MaxBranches != nil {
		if *o.MaxBranches < 0 {
			return base, fmt.Errorf("max_branches must be non-negative")
		}
		base.MaxBranches = *o.MaxBranches
	}
	return base, nil
}

// Summary is the response's plan digest, mirroring flashmem.PlanSummary's
// planning-side fields.
type Summary struct {
	Layers          int     `json:"layers"`
	Weights         int     `json:"weights"`
	OverlapFraction float64 `json:"overlap_fraction"`
	PreloadMB       float64 `json:"preload_mb"`
	SolverStatus    string  `json:"solver_status"`
	SolverWindows   int     `json:"solver_windows"`
	SolverBranches  int64   `json:"solver_branches"`
}

// PlanResponse is the POST /plan success body. Plan carries the overlap
// plan in its stable wire format — byte-identical to what a direct
// flashmem solve encodes for the same key.
type PlanResponse struct {
	Device string `json:"device"`
	Model  string `json:"model"`
	Key    string `json:"key"`

	// Source reports how the plan was produced: "warm" (fleet snapshot),
	// "cached" (solved earlier in this process), "solved" (this request's
	// solve), "collapsed" (rode another request's in-flight solve), or
	// "degraded" (last-known-good plan served because the solve path is
	// saturated, broken, or too slow right now).
	Source string `json:"source"`
	// DegradedReason is set only on degraded responses: which failure the
	// stale plan papered over — "queue_full", "circuit_open",
	// "solve_timeout", or "solve_failed" (the same vocabulary the
	// corresponding hard failures use as error codes).
	DegradedReason string  `json:"degraded_reason,omitempty"`
	FromCache      bool    `json:"from_cache"`
	WaitMS         float64 `json:"wait_ms"`

	Summary Summary         `json:"summary"`
	Plan    json.RawMessage `json:"plan"`
}

// errorResponse is every non-200 body: prose for humans, a stable code
// for clients.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.ctr.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, t0, http.StatusMethodNotAllowed, false, codeMethodNotAllowed, "POST only")
		return
	}
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	dev, ok := device.ByName(req.Device)
	if !ok {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("unknown device %q", req.Device))
		return
	}
	spec, ok := models.ByAbbr(req.Model)
	if !ok {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	cfg, err := req.Config.apply(s.cfg.Solver)
	if err != nil {
		s.fail(w, t0, http.StatusBadRequest, false, codeBadRequest, fmt.Sprintf("bad config: %v", err))
		return
	}

	g := s.graphFor(spec)
	eng := s.engineFor(dev, cfg)
	key, cacheable := eng.PlanKey(g)
	if !cacheable { // unreachable with analytic capacities; fail loudly if it ever isn't
		s.fail(w, t0, http.StatusInternalServerError, false, codeInternal, "plan key not computable")
		return
	}

	// Hot path: the plan cache.
	if prep, ok := s.cache.Get(key); ok {
		s.serve(w, t0, &req, key, s.sourceForHit(key), prep)
		return
	}

	// Miss: collapse onto an in-flight solve or lead a new one through
	// admission control. The circuit breaker gates only the leader — a
	// follower adds no solver load, and an open breaker must not strand
	// requests that can ride an already-running solve.
	c, leader := s.sf.join(key)
	if leader {
		if !s.brk.allow() {
			// Failing the call also releases any followers that joined
			// between join and here — same as the overload path below.
			s.sf.complete(key, c, nil, errCircuitOpen)
		} else {
			select {
			case s.queue <- &job{key: key, eng: eng, g: g, c: c}:
			default:
				// Queue full. A granted breaker probe that never reached
				// the solver says nothing about the solver's health.
				s.brk.cancelProbe()
				s.sf.complete(key, c, nil, errOverloaded)
			}
		}
	}

	timer := time.NewTimer(s.cfg.SolveTimeout)
	defer timer.Stop()
	s.ctr.waiting.Add(1)
	select {
	case <-c.done:
		s.ctr.waiting.Add(-1)
	case <-timer.C:
		s.ctr.waiting.Add(-1)
		// Stale-while-revalidate: the solve continues in the background
		// and will refresh the cache; a last-known-good plan for the key
		// is byte-identical to what that solve will produce (the solver is
		// deterministic), so serving it beats making the client wait again.
		if s.serveDegraded(w, t0, &req, key, codeSolveTimeout) {
			return
		}
		s.ctr.timedOut.Add(1)
		s.retryFail(w, t0, http.StatusGatewayTimeout, codeSolveTimeout,
			"solve exceeded the per-request timeout; it continues in the background and will be served from cache on retry")
		return
	case <-r.Context().Done():
		s.ctr.waiting.Add(-1)
		// Client gone; the solve (if any) still completes and warms the
		// cache. Nothing useful to write.
		s.serveHist.observe(time.Since(t0))
		return
	}

	switch {
	case c.err == nil:
		src := "collapsed"
		if leader {
			src = "solved"
			if c.prep.FromCache {
				// The rare post-complete race: this leader's job found the
				// key already cached by the previous leader's solve.
				src = "cached"
			}
		}
		s.serve(w, t0, &req, key, src, c.prep)
	case errors.Is(c.err, errOverloaded):
		if s.serveDegraded(w, t0, &req, key, codeQueueFull) {
			return
		}
		s.ctr.rejected.Add(1)
		s.retryFail(w, t0, http.StatusTooManyRequests, codeQueueFull, "solve queue full")
	case errors.Is(c.err, errCircuitOpen):
		if s.serveDegraded(w, t0, &req, key, codeCircuitOpen) {
			return
		}
		s.ctr.breakerRejects.Add(1)
		s.retryFail(w, t0, http.StatusServiceUnavailable, codeCircuitOpen,
			"circuit breaker open: recent solves failed; retry after the cooldown")
	case errors.Is(c.err, errShutdown):
		s.fail(w, t0, http.StatusServiceUnavailable, true, codeShuttingDown, "server shutting down")
	default:
		if s.serveDegraded(w, t0, &req, key, codeSolveFailed) {
			return
		}
		s.ctr.solveErrors.Add(1)
		s.fail(w, t0, http.StatusInternalServerError, false, codeSolveFailed, fmt.Sprintf("solve failed: %v", c.err))
	}
}

// serveDegraded answers with the last-known-good plan for the key, labeled
// "degraded", when one exists — the stale-while-revalidate fallback for
// queue saturation, an open breaker, a failed or panicked solve, and a
// timed-out wait. Plans are deterministic per key, so a stale plan is not
// approximately right, it is *the* plan; only its provenance differs.
// reason records which failure was papered over; it rides in the response
// and the /statsz degraded_reasons breakdown.
func (s *Server) serveDegraded(w http.ResponseWriter, t0 time.Time, req *PlanRequest, key, reason string) bool {
	prep, ok := s.stale.Get(key)
	if !ok {
		return false
	}
	s.ctr.degradedReason(reason).Add(1)
	s.serveReason(w, t0, req, key, "degraded", reason, prep)
	return true
}

// sourceForHit labels a cache hit warm or cached.
func (s *Server) sourceForHit(key string) string {
	s.warmMu.RLock()
	_, warm := s.warm[key]
	s.warmMu.RUnlock()
	if warm {
		return "warm"
	}
	return "cached"
}

// serve writes the success response and does the per-source accounting.
func (s *Server) serve(w http.ResponseWriter, t0 time.Time, req *PlanRequest, key, source string, prep *core.Prepared) {
	s.serveReason(w, t0, req, key, source, "", prep)
}

// serveReason is serve with a degraded_reason attached (degraded responses
// only; empty otherwise).
func (s *Server) serveReason(w http.ResponseWriter, t0 time.Time, req *PlanRequest, key, source, reason string, prep *core.Prepared) {
	switch source {
	case "warm":
		s.ctr.warmHits.Add(1)
	case "cached":
		s.ctr.hits.Add(1)
	case "solved":
		s.ctr.solves.Add(1)
	case "collapsed":
		s.ctr.collapsed.Add(1)
	case "degraded":
		s.ctr.degraded.Add(1)
	}
	if source != "degraded" {
		// Every healthy serve refreshes the last-known-good store. It is
		// bounded separately from the hot cache, so an eviction there does
		// not take the degraded fallback with it.
		s.stale.Put(key, prep)
	}
	var buf bytes.Buffer
	if err := prep.Plan.Encode(&buf); err != nil {
		s.fail(w, t0, http.StatusInternalServerError, false, codeInternal, fmt.Sprintf("encode plan: %v", err))
		return
	}
	resp := PlanResponse{
		Device:         req.Device,
		Model:          req.Model,
		Key:            key,
		Source:         source,
		DegradedReason: reason,
		FromCache:      source != "solved",
		WaitMS:         float64(time.Since(t0)) / float64(time.Millisecond),
		Summary: Summary{
			Layers:          prep.Graph.Len(),
			Weights:         len(prep.Plan.Weights),
			OverlapFraction: prep.Plan.OverlapFraction(),
			PreloadMB:       prep.Plan.PreloadBytes().MiB(),
			SolverStatus:    prep.Plan.Stats.Status.String(),
			SolverWindows:   prep.Plan.Stats.Windows,
			SolverBranches:  prep.Plan.Stats.Branches,
		},
		Plan: json.RawMessage(buf.Bytes()),
	}
	s.serveHist.observe(time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		return // client went away mid-write; nothing to do
	}
}

// fail writes an error response; retryable failures get a Retry-After.
func (s *Server) fail(w http.ResponseWriter, t0 time.Time, status int, retryable bool, ecode, msg string) {
	if status == http.StatusBadRequest || status == http.StatusMethodNotAllowed {
		s.ctr.badRequests.Add(1)
	}
	s.serveHist.observe(time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	if retryable {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg, Code: ecode})
}

// retryFail is fail with a Retry-After — the verdicts (429 queue full,
// 504 solve timeout, 503 breaker open or shutdown) where the client's
// correct next move is the same request again, later.
func (s *Server) retryFail(w http.ResponseWriter, t0 time.Time, status int, ecode, msg string) {
	s.fail(w, t0, status, true, ecode, msg)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string `json:"status"`
	SolverVersion string `json:"solver_version"`
	WarmPlans     int    `json:"warm_plans"`
	CachedPlans   int    `json:"cached_plans"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HealthResponse{
		Status:        "ok",
		SolverVersion: opg.SolverVersion,
		WarmPlans:     s.WarmPlans(),
		CachedPlans:   s.cache.Len(),
	})
}

// StatsSnapshot is the GET /statsz body: request accounting (the first
// block sums to Requests), live gauges, plan-cache counters, and latency
// histograms. SolveLatency counts actual solver executions, so its Count
// is the number of solves this process ran regardless of how their
// requests ended.
type StatsSnapshot struct {
	SolverVersion string  `json:"solver_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests  int64 `json:"requests"`
	WarmHits  int64 `json:"warm_hits"`
	Hits      int64 `json:"hits"`
	Collapsed int64 `json:"collapsed"`
	Solves    int64 `json:"solves"`
	Degraded  int64 `json:"degraded"`
	// DegradedReasons breaks Degraded down by the failure each stale serve
	// papered over (queue_full, circuit_open, solve_timeout, solve_failed);
	// zero rows are omitted.
	DegradedReasons map[string]int64 `json:"degraded_reasons,omitempty"`
	SolveErrors     int64            `json:"solve_errors"`
	SolverPanics    int64            `json:"solver_panics"`
	Rejected        int64            `json:"rejected"`
	BreakerRejects  int64            `json:"breaker_rejects"`
	TimedOut        int64            `json:"timed_out"`
	BadRequests     int64            `json:"bad_requests"`

	Breaker    string `json:"breaker"`     // closed | open | half-open
	QueueDepth int64  `json:"queue_depth"` // admitted, waiting for a worker
	InFlight   int64  `json:"in_flight"`   // executing on a worker
	Waiting    int64  `json:"waiting"`     // requests parked on a solve
	WarmPlans  int    `json:"warm_plans"`

	Cache plancache.Stats `json:"cache"`

	// Replan aggregates the /replan degradation-ladder outcomes: how many
	// plans each rung produced and how much solve work repair avoided
	// (windows kept vs re-solved).
	Replan ReplanStats `json:"replan"`

	SolveLatency   HistogramSnapshot `json:"solve_latency"`
	RequestLatency HistogramSnapshot `json:"request_latency"`
}

// Stats snapshots the server's counters (also served at /statsz).
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		SolverVersion:   opg.SolverVersion,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.ctr.requests.Load(),
		WarmHits:        s.ctr.warmHits.Load(),
		Hits:            s.ctr.hits.Load(),
		Collapsed:       s.ctr.collapsed.Load(),
		Solves:          s.ctr.solves.Load(),
		Degraded:        s.ctr.degraded.Load(),
		DegradedReasons: s.ctr.degradedReasons(),
		SolveErrors:     s.ctr.solveErrors.Load(),
		SolverPanics:    s.ctr.panics.Load(),
		Rejected:        s.ctr.rejected.Load(),
		BreakerRejects:  s.ctr.breakerRejects.Load(),
		TimedOut:        s.ctr.timedOut.Load(),
		BadRequests:     s.ctr.badRequests.Load(),
		Breaker:         s.brk.snapshot(),
		QueueDepth:      int64(len(s.queue)),
		InFlight:        s.ctr.inFlight.Load(),
		Waiting:         s.ctr.waiting.Load(),
		WarmPlans:       s.WarmPlans(),
		Cache:           s.cache.Stats(),
		Replan: ReplanStats{
			Requests:        s.replanCtr.requests.Load(),
			Repaired:        s.replanCtr.repaired.Load(),
			Cold:            s.replanCtr.cold.Load(),
			CachedVariant:   s.replanCtr.cachedVariant.Load(),
			Patched:         s.replanCtr.patched.Load(),
			WindowsKept:     s.replanCtr.windowsKept.Load(),
			WindowsResolved: s.replanCtr.windowsResolved.Load(),
			Lineages:        s.replans.Len(),
		},
		SolveLatency:   s.solveHist.snapshot(),
		RequestLatency: s.serveHist.snapshot(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// graphEntry memoizes one model's built graph: requests share the lowered
// graph read-only (exactly as cache-hit Prepared values already share
// their fused graphs), so the per-request cost of a warm hit is key
// hashing, not graph construction.
type graphEntry struct {
	once sync.Once
	g    *graph.Graph
}

func (s *Server) graphFor(spec models.Spec) *graph.Graph {
	e, _ := s.graphs.LoadOrStore(spec.Abbr, &graphEntry{})
	ge := e.(*graphEntry)
	ge.once.Do(func() { ge.g = spec.Build() })
	return ge.g
}

// engineFor builds the per-request engine: engines are two words of config
// around stateless cost/capacity models, so construction is cheaper than
// tracking a pool, and every engine shares the one plan cache.
func (s *Server) engineFor(dev device.Device, cfg opg.Config) *core.Engine {
	o := core.DefaultOptions(dev)
	o.Config = cfg
	o.Cache = s.cache
	return core.NewEngine(o)
}
