package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/units"
)

// postReplan issues one /replan request and decodes the result.
func postReplan(t *testing.T, ts *httptest.Server, body string) (int, ReplanResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /replan: %v", err)
	}
	defer resp.Body.Close()
	var rr ReplanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("decode /replan response: %v", err)
		}
	}
	return resp.StatusCode, rr
}

// replanPlanValid decodes a served /replan plan and re-validates it against
// the device state the request described — the client-side version of the
// invariant the server enforces before serving.
func replanPlanValid(t *testing.T, s *Server, rr ReplanResponse, throttle int, mpeak units.Bytes) {
	t.Helper()
	p, err := opg.Decode(bytes.NewReader(rr.Plan))
	if err != nil {
		t.Fatalf("decode served plan: %v", err)
	}
	dev, _ := device.ByName(rr.Device)
	spec, _ := models.ByAbbr(rr.Model)
	g := s.fusedGraphFor(spec)
	caps := profiler.AnalyticCapacityFunc(power.Throttle(dev, throttle))
	cfg := s.cfg.Solver
	cfg.MPeak = mpeak
	if err := p.Validate(g, caps, cfg); err != nil {
		t.Fatalf("served %s plan invalid for throttle=%d mpeak=%v: %v", rr.Source, throttle, mpeak, err)
	}
}

// TestReplanRepairsAcrossChurn walks one lineage through a load, a budget
// drop, and a thermal transition: first sight solves cold, every
// subsequent churn event is absorbed by incremental repair, and each
// served plan is valid for the state it was requested under.
func TestReplanRepairsAcrossChurn(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, rr := postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT"}`)
	if code != http.StatusOK || rr.Source != opg.RungCold {
		t.Fatalf("first sight: %d %q, want 200 cold", code, rr.Source)
	}
	replanPlanValid(t, s, rr, 0, s.cfg.Solver.MPeak)

	code, rr = postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":300}}`)
	if code != http.StatusOK || rr.Source != opg.RungRepaired {
		t.Fatalf("budget drop: %d %q, want 200 repaired", code, rr.Source)
	}
	if rr.Repair.WindowsKept+rr.Repair.WindowsResolved == 0 {
		t.Fatal("repair reports no windows")
	}
	replanPlanValid(t, s, rr, 0, 300*units.MB)

	code, rr = postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT","throttle":2,"config":{"mpeak_mb":300}}`)
	if code != http.StatusOK || rr.Source != opg.RungRepaired {
		t.Fatalf("throttle: %d %q, want 200 repaired", code, rr.Source)
	}
	replanPlanValid(t, s, rr, 2, 300*units.MB)

	st := s.Stats()
	if st.Replan.Requests != 3 || st.Replan.Cold != 1 || st.Replan.Repaired != 2 {
		t.Fatalf("replan stats = %+v, want 3 requests / 1 cold / 2 repaired", st.Replan)
	}
	if st.Replan.Lineages != 1 {
		t.Fatalf("lineages = %d, want 1 (same lineage for all three)", st.Replan.Lineages)
	}
}

// TestReplanDegradesToPatchThenRecovers forces every repair to miss its
// latency budget with no cached variant available: the ladder must land on
// the greedy patch, label it, and cold-solve the next request (a patched
// lineage is stale).
func TestReplanDegradesToPatchThenRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.RepairBudget = time.Nanosecond
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, rr := postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT"}`)
	if code != http.StatusOK || rr.Source != opg.RungCold {
		t.Fatalf("first sight: %d %q", code, rr.Source)
	}
	code, rr = postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":300}}`)
	if code != http.StatusOK || rr.Source != opg.RungPatched {
		t.Fatalf("budget drop under 1ns repair budget: %d %q, want patched", code, rr.Source)
	}
	replanPlanValid(t, s, rr, 0, 300*units.MB)

	code, rr = postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":300}}`)
	if code != http.StatusOK || rr.Source != opg.RungCold {
		t.Fatalf("post-patch request: %d %q, want cold (stale lineage)", code, rr.Source)
	}
	st := s.Stats()
	if st.Replan.Patched != 1 || st.Replan.Cold != 2 {
		t.Fatalf("replan stats = %+v, want 1 patched / 2 cold", st.Replan)
	}
}

// TestReplanServesCachedVariant: with repair over budget but a cached plan
// already valid for the new state, the ladder serves the cached variant
// instead of degrading all the way to the patch.
func TestReplanServesCachedVariant(t *testing.T) {
	cfg := testConfig()
	cfg.RepairBudget = time.Nanosecond
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the plan cache with a plan solved for exactly the post-drop
	// state, on the same fused graph /replan lineages use.
	spec, _ := models.ByAbbr("ViT")
	g := s.fusedGraphFor(spec)
	low := s.cfg.Solver
	low.MPeak = 300 * units.MB
	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	s.Cache().Put("vit-300", &core.Prepared{Graph: g, Plan: opg.SolveRepairable(g, caps, low).Plan()})

	if code, rr := postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT"}`); code != http.StatusOK || rr.Source != opg.RungCold {
		t.Fatalf("first sight: %d %q", code, rr.Source)
	}
	code, rr := postReplan(t, ts, `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":300}}`)
	if code != http.StatusOK || rr.Source != opg.RungCachedVariant {
		t.Fatalf("budget drop: %d %q, want cached_variant", code, rr.Source)
	}
	replanPlanValid(t, s, rr, 0, 300*units.MB)
	if st := s.Stats(); st.Replan.CachedVariant != 1 {
		t.Fatalf("replan stats = %+v, want 1 cached_variant", st.Replan)
	}
}

// TestReplanBadRequests covers the /replan validation surface.
func TestReplanBadRequests(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
	}{
		{"unknown device", `{"device":"Nokia 3310","model":"ViT"}`},
		{"unknown model", `{"device":"OnePlus 12","model":"GPT-9"}`},
		{"negative throttle", `{"device":"OnePlus 12","model":"ViT","throttle":-1}`},
		{"bad config", `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":-5}}`},
	} {
		code, _ := postReplan(t, ts, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Malformed traffic must not inflate the /statsz repair block: only
	// requests that resolve to a ladder walk count, so the per-rung
	// counters always sum to requests.
	if st := s.Stats(); st.Replan.Requests != 0 {
		t.Fatalf("replan requests = %d after only bad requests, want 0", st.Replan.Requests)
	}
}

// TestReplanStoreSkipsBusyEviction: at the bound, acquire must not evict a
// lineage whose ladder is mid-walk — doing so would let a concurrent
// request for the same key duplicate the cold solve. It evicts the oldest
// idle lineage instead, and temporarily exceeds the bound when every
// lineage is busy.
func TestReplanStoreSkipsBusyEviction(t *testing.T) {
	st := newReplanStore(2)
	a := st.acquire("a")
	st.acquire("b")

	a.mu.Lock()
	st.acquire("c") // must evict idle "b", not busy "a"
	if got := st.acquire("a"); got != a {
		t.Fatal("busy lineage was evicted at the bound")
	}
	if st.Len() != 2 {
		t.Fatalf("store len = %d, want 2", st.Len())
	}

	// Everything busy: the bound is exceeded rather than evicting mid-walk.
	c := st.acquire("c")
	c.mu.Lock()
	st.acquire("d")
	if got := st.acquire("a"); got != a {
		t.Fatal("busy lineage was evicted while all lineages were busy")
	}
	if st.Len() != 3 {
		t.Fatalf("store len = %d, want 3 (bound exceeded, nothing evictable)", st.Len())
	}
	a.mu.Unlock()
	c.mu.Unlock()
}

// TestDegradedReasonLabeled: a degraded /plan response names the failure
// it papered over, and /statsz carries the per-reason breakdown.
func TestDegradedReasonLabeled(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.CacheEntries = 1
	cfg.BreakerThreshold = 100
	cfg.Injector = faultinject.New(11,
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindError, Rate: 1, After: 2})
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, pr, _ := postPlan(t, ts, "OnePlus 12", "ViT"); code != http.StatusOK || pr.DegradedReason != "" {
		t.Fatalf("healthy serve: %d, degraded_reason %q (want empty)", code, pr.DegradedReason)
	}
	if code, _, _ := postPlan(t, ts, "OnePlus 12", "ResNet"); code != http.StatusOK {
		t.Fatalf("ResNet solve failed: %d", code)
	}

	// ViT is evicted from the 1-entry hot cache; its re-solve fails, so the
	// stale plan is served with the reason attached.
	code, pr, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusOK || pr.Source != "degraded" {
		t.Fatalf("degraded serve: %d %q", code, pr.Source)
	}
	if pr.DegradedReason != codeSolveFailed {
		t.Fatalf("degraded_reason = %q, want %q", pr.DegradedReason, codeSolveFailed)
	}
	st := s.Stats()
	if st.DegradedReasons[codeSolveFailed] != 1 {
		t.Fatalf("stats degraded_reasons = %v, want %s:1", st.DegradedReasons, codeSolveFailed)
	}
	if sum := fmt.Sprint(st.DegradedReasons); st.Degraded != 1 {
		t.Fatalf("degraded = %d (%s), want 1", st.Degraded, sum)
	}
}
