package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	flashmem "repro"
	"repro/internal/opg"
)

// testSolver is the deterministic solver configuration shared by the
// server under test and the direct flashmem solves it is compared against:
// a generous wall clock with a binding branch budget, like CI's sharded
// matrix.
func testSolver() opg.Config {
	cfg := opg.DefaultConfig()
	cfg.SolveTimeout = 5 * time.Second
	cfg.MaxBranches = 500
	return cfg
}

func testConfig() Config {
	return Config{Solver: testSolver()}
}

// directPlan solves (device, model) through the public API with the same
// configuration as testSolver and returns the plan's canonical encoding.
func directPlan(t *testing.T, fleet *flashmem.Fleet, dev flashmem.Device, abbr string) []byte {
	t.Helper()
	m, err := fleet.Load(dev, abbr)
	if err != nil {
		t.Fatalf("direct %s on %s: %v", abbr, dev.Name, err)
	}
	var buf bytes.Buffer
	if err := m.EncodePlan(&buf); err != nil {
		t.Fatalf("encode direct plan: %v", err)
	}
	return buf.Bytes()
}

func newFleet() *flashmem.Fleet {
	return flashmem.NewFleet(nil, flashmem.WithSolverBudget(5*time.Second, 500))
}

// canonicalPlan round-trips a served plan through the wire format. The
// HTTP layer compacts the embedded plan JSON (encoding/json compacts
// RawMessage), so byte-identity against a direct solve is checked on the
// canonical Encode form, which is deterministic per plan.
func canonicalPlan(t *testing.T, raw []byte) []byte {
	t.Helper()
	p, err := opg.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode served plan: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("re-encode served plan: %v", err)
	}
	return buf.Bytes()
}

// postPlan issues one /plan request and decodes the result.
func postPlan(t *testing.T, ts *httptest.Server, device, model string) (int, PlanResponse, http.Header) {
	t.Helper()
	body := fmt.Sprintf(`{"device":%q,"model":%q}`, device, model)
	resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	var pr PlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatalf("decode /plan response: %v", err)
		}
	}
	return resp.StatusCode, pr, resp.Header
}

// waitStats polls the server's counters until cond holds or the deadline
// passes — the deterministic alternative to sleeping in concurrency tests.
func waitStats(t *testing.T, s *Server, what string, cond func(StatsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats: %+v", what, s.Stats())
}

// TestServeWarmSnapshot is the fleet-warming path: a snapshot produced by
// direct public-API solves boots the server warm, and the served plans are
// byte-identical to the direct solves that produced them.
func TestServeWarmSnapshot(t *testing.T) {
	fleet := newFleet()
	cells := []struct {
		dev  flashmem.Device
		abbr string
	}{
		{flashmem.OnePlus12(), "ViT"},
		{flashmem.XiaomiMi6(), "ResNet"},
	}
	want := make(map[string][]byte)
	for _, c := range cells {
		want[c.dev.Name+"/"+c.abbr] = directPlan(t, fleet, c.dev, c.abbr)
	}
	snap := filepath.Join(t.TempDir(), "fleet.json")
	if err := fleet.Cache().Save(snap); err != nil {
		t.Fatal(err)
	}

	s := New(testConfig())
	defer s.Close()
	stats, err := s.LoadSnapshots(snap)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != len(cells) || s.WarmPlans() != len(cells) {
		t.Fatalf("loaded %d plans, %d warm, want %d", stats.Loaded, s.WarmPlans(), len(cells))
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, c := range cells {
		code, pr, _ := postPlan(t, ts, c.dev.Name, c.abbr)
		if code != http.StatusOK {
			t.Fatalf("%s/%s: status %d", c.dev.Name, c.abbr, code)
		}
		if pr.Source != "warm" || !pr.FromCache {
			t.Errorf("%s/%s: source %q fromCache %v, want warm hit", c.dev.Name, c.abbr, pr.Source, pr.FromCache)
		}
		if !bytes.Equal(canonicalPlan(t, pr.Plan), want[c.dev.Name+"/"+c.abbr]) {
			t.Errorf("%s/%s: served plan differs from direct solve", c.dev.Name, c.abbr)
		}
	}
	st := s.Stats()
	if st.WarmHits != int64(len(cells)) || st.Solves != 0 || st.SolveLatency.Count != 0 {
		t.Errorf("warm serving ran solves: %+v", st)
	}

	// Liveness endpoint reports the warm fleet.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.WarmPlans != len(cells) {
		t.Errorf("healthz = %+v", h)
	}
}

// TestConcurrentMultiDeviceServing is the concurrent fleet-serving
// contract under the race detector: N goroutines × M device profiles
// hammer a cold server; every key is solved exactly once (singleflight +
// cache), and every response carries a plan byte-identical to a direct
// public-API solve of the same key.
func TestConcurrentMultiDeviceServing(t *testing.T) {
	devices := []flashmem.Device{flashmem.OnePlus12(), flashmem.XiaomiMi6()}
	abbrs := []string{"ViT", "ResNet"}
	const goroutinesPerCell = 4

	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		cell string
		code int
		resp PlanResponse
	}
	var wg sync.WaitGroup
	results := make(chan result, len(devices)*len(abbrs)*goroutinesPerCell)
	for _, dev := range devices {
		for _, abbr := range abbrs {
			for g := 0; g < goroutinesPerCell; g++ {
				wg.Add(1)
				go func(devName, abbr string) {
					defer wg.Done()
					code, pr, _ := postPlan(t, ts, devName, abbr)
					results <- result{cell: devName + "/" + abbr, code: code, resp: pr}
				}(dev.Name, abbr)
			}
		}
	}
	wg.Wait()
	close(results)

	byCell := make(map[string][][]byte)
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("%s: status %d", r.cell, r.code)
		}
		byCell[r.cell] = append(byCell[r.cell], canonicalPlan(t, r.resp.Plan))
	}

	fleet := newFleet()
	for _, dev := range devices {
		for _, abbr := range abbrs {
			cell := dev.Name + "/" + abbr
			want := directPlan(t, fleet, dev, abbr)
			if len(byCell[cell]) != goroutinesPerCell {
				t.Fatalf("%s: %d responses, want %d", cell, len(byCell[cell]), goroutinesPerCell)
			}
			for i, got := range byCell[cell] {
				if !bytes.Equal(got, want) {
					t.Errorf("%s response %d: served plan differs from direct solve", cell, i)
				}
			}
		}
	}

	st := s.Stats()
	keys := int64(len(devices) * len(abbrs))
	total := keys * goroutinesPerCell
	if st.SolveLatency.Count != keys {
		t.Errorf("ran %d solves, want exactly %d (one per key)", st.SolveLatency.Count, keys)
	}
	if st.Requests != total {
		t.Errorf("requests = %d, want %d", st.Requests, total)
	}
	if got := st.WarmHits + st.Hits + st.Collapsed + st.Solves; got != total {
		t.Errorf("served accounting %d (warm %d + hits %d + collapsed %d + solves %d) != requests %d",
			got, st.WarmHits, st.Hits, st.Collapsed, st.Solves, total)
	}
	if st.WarmHits != 0 {
		t.Errorf("cold server reported %d warm hits", st.WarmHits)
	}
}

// TestSingleflightCollapse pins the exact collapse accounting: with the
// solve held, every concurrent duplicate request must park on the one
// in-flight call, and releasing it serves them all from a single solve.
func TestSingleflightCollapse(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	defer s.Close()
	hold := make(chan struct{})
	s.holdSolves = hold
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 6
	codes := make(chan int, clients)
	sources := make(chan string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, pr, _ := postPlan(t, ts, "OnePlus 12", "ViT")
			codes <- code
			sources <- pr.Source
		}()
	}

	// All clients are now either the leader or collapsed onto it; the one
	// worker holds the solve, so the state below is stable, not a race.
	waitStats(t, s, "1 in-flight solve with 6 waiters", func(st StatsSnapshot) bool {
		return st.InFlight == 1 && st.Waiting == clients
	})
	close(hold)
	wg.Wait()
	close(codes)
	close(sources)

	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}
	var solved, collapsed int
	for src := range sources {
		switch src {
		case "solved":
			solved++
		case "collapsed":
			collapsed++
		default:
			t.Errorf("unexpected source %q", src)
		}
	}
	if solved != 1 || collapsed != clients-1 {
		t.Errorf("solved %d / collapsed %d, want 1 / %d", solved, collapsed, clients-1)
	}
	st := s.Stats()
	if st.Solves != 1 || st.Collapsed != clients-1 || st.SolveLatency.Count != 1 {
		t.Errorf("stats %+v, want exactly one solve and %d collapses", st, clients-1)
	}
}

// TestAdmissionControl pins the queue-depth cap: worker busy + queue full
// ⇒ 429 with a Retry-After hint, and the rejected request does not
// poison later service.
func TestAdmissionControl(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.RetryAfter = 2 * time.Second
	s := New(cfg)
	defer s.Close()
	hold := make(chan struct{})
	s.holdSolves = hold
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	issue := func(model string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _ := postPlan(t, ts, "OnePlus 12", model)
			if code != http.StatusOK {
				t.Errorf("%s: status %d, want 200 after release", model, code)
			}
		}()
	}
	issue("ViT")
	waitStats(t, s, "worker occupied", func(st StatsSnapshot) bool {
		return st.InFlight == 1 && st.QueueDepth == 0
	})
	issue("ResNet")
	waitStats(t, s, "queue full", func(st StatsSnapshot) bool { return st.QueueDepth == 1 })

	code, _, hdr := postPlan(t, ts, "OnePlus 12", "DeepViT")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-admission status %d, want 429", code)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", hdr.Get("Retry-After"))
	}
	close(hold)
	wg.Wait()
	st := s.Stats()
	if st.Rejected != 1 || st.Solves != 2 {
		t.Errorf("rejected %d solves %d, want 1 and 2", st.Rejected, st.Solves)
	}
}

// TestSolveTimeout pins the per-request solve timeout: the request answers
// 504 while the solve finishes in the background and warms the cache for
// the retry.
func TestSolveTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.SolveTimeout = 50 * time.Millisecond
	s := New(cfg)
	defer s.Close()
	hold := make(chan struct{})
	s.holdSolves = hold
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, hdr := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("504 without Retry-After")
	}
	close(hold)
	waitStats(t, s, "background solve to land in cache", func(st StatsSnapshot) bool {
		return st.Cache.Entries == 1
	})
	code, pr, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusOK || pr.Source != "cached" {
		t.Fatalf("retry: status %d source %q, want cached hit", code, pr.Source)
	}
	if st := s.Stats(); st.TimedOut != 1 {
		t.Errorf("timedOut = %d, want 1", st.TimedOut)
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan: %d, want 405", get.StatusCode)
	}

	for name, body := range map[string]string{
		"malformed json": `{"device":`,
		"unknown device": `{"device":"Nokia 3310","model":"ViT"}`,
		"unknown model":  `{"device":"OnePlus 12","model":"GPT-9"}`,
		"bad lambda":     `{"device":"OnePlus 12","model":"ViT","config":{"lambda":2.0}}`,
		"bad chunk":      `{"device":"OnePlus 12","model":"ViT","config":{"chunk_kb":-1}}`,
	} {
		resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.BadRequests != 6 {
		t.Errorf("badRequests = %d, want 6", st.BadRequests)
	}
}

// TestSolverOverridesSaltKey: a per-request config override must produce a
// different plan key (and so a different cache entry) than the default.
func TestSolverOverridesSaltKey(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, base, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	body := `{"device":"OnePlus 12","model":"ViT","config":{"mpeak_mb":300}}`
	resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Key == base.Key {
		t.Error("mpeak override did not change the plan key")
	}
	if pr.Source != "solved" {
		t.Errorf("override served %q, want a fresh solve", pr.Source)
	}
}

// TestWarmP99MuchLessThanColdSolve is the acceptance criterion in test
// form: the p99 of warm-cache request latency must sit far below the cold
// solve latency for the same key.
func TestWarmP99MuchLessThanColdSolve(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t0 := time.Now()
	code, pr, _ := postPlan(t, ts, "OnePlus 12", "GPTN-S")
	cold := time.Since(t0)
	if code != http.StatusOK || pr.Source != "solved" {
		t.Fatalf("cold request: status %d source %q", code, pr.Source)
	}

	const warmRequests = 100
	lat := make([]time.Duration, 0, warmRequests)
	for i := 0; i < warmRequests; i++ {
		w0 := time.Now()
		code, pr, _ := postPlan(t, ts, "OnePlus 12", "GPTN-S")
		lat = append(lat, time.Since(w0))
		if code != http.StatusOK || pr.Source != "cached" {
			t.Fatalf("warm request %d: status %d source %q", i, code, pr.Source)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	t.Logf("cold solve %v, warm p99 %v (%.0fx)", cold, p99, float64(cold)/float64(p99))
	if p99*3 >= cold {
		t.Errorf("warm p99 %v is not ≪ cold solve latency %v", p99, cold)
	}
}

// TestHistogramQuantiles sanity-checks the bucketed quantile math.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 99; i++ {
		h.observe(10 * time.Microsecond) // first bucket (≤64µs)
	}
	h.observe(2 * time.Second) // deep bucket
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if got := s.P50MS; got != 0.064 {
		t.Errorf("p50 = %vms, want 0.064", got)
	}
	if s.P99MS >= s.BoundsMS[len(s.BoundsMS)-1]*4+1 || s.P99MS < 0.064 {
		t.Errorf("p99 = %vms out of range", s.P99MS)
	}
	if s.MeanMS <= 0 {
		t.Error("mean not recorded")
	}
}
