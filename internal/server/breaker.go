package server

import (
	"sync"
	"time"
)

// breaker is the solve-path circuit breaker. A run of consecutive solve
// failures — solver errors or recovered panics — opens it; while open, new
// solve leaders are refused immediately (served degraded when a
// last-known-good plan exists, 503 + Retry-After otherwise) instead of
// queueing onto a solver that is demonstrably sick. After a cooldown one
// probe solve is let through: success closes the breaker, failure re-opens
// it for another cooldown.
//
// The breaker gates only solve admission. Cache hits, collapsed followers,
// and in-flight solves are unaffected — they add no solver load.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay
	fails     int           // consecutive failures seen while closed
	open      bool
	openedAt  time.Time
	probing   bool // a half-open probe solve is in flight
}

// allow reports whether a new solve may be admitted right now. When it
// grants the first admission after a cooldown, that solve is the probe:
// its outcome decides whether the breaker closes or re-opens.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || time.Since(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// success records a completed solve (or a benign cache-race hit) and
// closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed solve; at the threshold — or on a failed
// half-open probe — the breaker (re-)opens for a full cooldown.
func (b *breaker) failure() {
	b.mu.Lock()
	b.fails++
	if b.probing || b.fails >= b.threshold {
		b.open = true
		b.openedAt = time.Now()
		b.fails = 0
	}
	b.probing = false
	b.mu.Unlock()
}

// cancelProbe releases a granted admission that never reached the solver
// (the queue was full) without judging the solver for it.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// snapshot reports the breaker state for /statsz.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed"
	case b.probing || time.Since(b.openedAt) >= b.cooldown:
		return "half-open"
	default:
		return "open"
	}
}
