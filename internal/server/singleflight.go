package server

import (
	"sync"

	"repro/internal/core"
)

// call is one in-flight solve that any number of requests may be waiting
// on. The leader (the request that created the call) owns enqueueing it;
// everyone else — followers, "collapsed" requests — just waits on done.
type call struct {
	done chan struct{}

	// Written exactly once before done is closed, read only after.
	prep *core.Prepared
	err  error
}

// group is a minimal singleflight keyed by plan-cache key: concurrent
// requests for the same (device × model × config) collapse onto one solve
// instead of queueing duplicate work. Unlike golang.org/x/sync/singleflight
// (not vendored here), completion is decoupled from the calling goroutine:
// the solve worker pool finishes the call, so the leader request can time
// out and walk away while the solve keeps going and still warms the cache.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

// join returns the call for key, creating it when absent. The second
// return reports leadership: true means the caller created the call and
// must arrange for it to be completed (or fail it), false means the caller
// collapsed onto existing work.
func (g *group) join(key string) (*call, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// complete publishes the call's result and wakes every waiter. The key is
// forgotten first: the result is already in the plan cache (or is an
// error), so later requests must take the cache path — and on error must
// be free to elect a new leader — rather than latch onto a finished call.
func (g *group) complete(key string, c *call, prep *core.Prepared, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.prep, c.err = prep, err
	close(c.done)
}
