package server

import (
	"sync/atomic"
	"time"
)

// histBuckets are the latency histogram's upper bounds. Exponential ×4
// steps from 64µs to ~17s span the whole serving range — warm cache hits
// are tens of microseconds, cold 70B solves are seconds — in few enough
// buckets that /statsz stays readable; the final implicit bucket catches
// everything slower.
var histBuckets = [...]time.Duration{
	64 * time.Microsecond,
	256 * time.Microsecond,
	1024 * time.Microsecond,
	4096 * time.Microsecond,
	16384 * time.Microsecond,
	65536 * time.Microsecond,
	262144 * time.Microsecond,  // ~0.26s
	1048576 * time.Microsecond, // ~1.0s
	4194304 * time.Microsecond, // ~4.2s
	16777216 * time.Microsecond,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation without locks. Quantiles read from it are upper bounds of
// the containing bucket — conservative by construction, which is the right
// bias for an admission-control dashboard.
type histogram struct {
	counts [len(histBuckets) + 1]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

// observe records one latency sample.
func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(histBuckets) && d > histBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// HistogramSnapshot is the JSON form of a histogram: cumulative quantile
// upper bounds plus the raw per-bucket counts.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`

	// Buckets[i] counts samples ≤ BoundsMS[i]; the final entry counts the
	// overflow above the last bound.
	BoundsMS []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"`
}

// snapshot freezes the histogram. Counters are read without a lock, so a
// snapshot taken mid-observation can be off by the samples in flight —
// fine for monitoring, which is all this feeds.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n.Load()}
	if s.Count > 0 {
		s.MeanMS = float64(h.sumNS.Load()) / float64(s.Count) / 1e6
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	s.Buckets = counts
	s.BoundsMS = make([]float64, len(histBuckets))
	for i, b := range histBuckets {
		s.BoundsMS[i] = float64(b) / float64(time.Millisecond)
	}
	s.P50MS = quantileMS(counts, s.Count, 0.50)
	s.P90MS = quantileMS(counts, s.Count, 0.90)
	s.P99MS = quantileMS(counts, s.Count, 0.99)
	return s
}

// quantileMS returns the upper bound (in ms) of the bucket containing the
// q-quantile sample; the overflow bucket reports the last bound ×4 as an
// honest "at least this" marker.
func quantileMS(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i < len(histBuckets) {
				return float64(histBuckets[i]) / float64(time.Millisecond)
			}
			return float64(histBuckets[len(histBuckets)-1]) * 4 / float64(time.Millisecond)
		}
	}
	return float64(histBuckets[len(histBuckets)-1]) * 4 / float64(time.Millisecond)
}

// counters is the server's request-accounting block. Every successful
// /plan response is exactly one of WarmHits, Hits, Collapsed, Solves, or
// Degraded; failures are exactly one of Rejected, BreakerRejects,
// TimedOut, SolveErrors, or BadRequests — so the columns always sum back
// to Requests.
type counters struct {
	requests       atomic.Int64
	warmHits       atomic.Int64 // served from snapshot-loaded entries
	hits           atomic.Int64 // served from entries solved earlier in-process
	collapsed      atomic.Int64 // singleflight followers riding a leader's solve
	solves         atomic.Int64 // requests whose solve actually ran the solver
	degraded       atomic.Int64 // last-known-good plans served around a sick solve path
	solveErrors    atomic.Int64
	rejected       atomic.Int64 // 429: solve queue full
	breakerRejects atomic.Int64 // 503: circuit breaker open, no stale plan to fall back on
	timedOut       atomic.Int64 // 504: solve outlasted the per-request timeout
	badRequests    atomic.Int64

	panics   atomic.Int64 // solver panics contained by the worker pool
	inFlight atomic.Int64 // solves currently executing on workers
	waiting  atomic.Int64 // requests parked on an in-flight solve

	// Degraded-serve breakdown by the failure the stale plan papered over;
	// the four sum to degraded.
	degradedQueueFull    atomic.Int64
	degradedCircuitOpen  atomic.Int64
	degradedSolveTimeout atomic.Int64
	degradedSolveFailed  atomic.Int64
}

// degradedReason maps a degraded-serve reason code to its counter.
func (c *counters) degradedReason(reason string) *atomic.Int64 {
	switch reason {
	case codeQueueFull:
		return &c.degradedQueueFull
	case codeCircuitOpen:
		return &c.degradedCircuitOpen
	case codeSolveTimeout:
		return &c.degradedSolveTimeout
	default:
		return &c.degradedSolveFailed
	}
}

// degradedReasons snapshots the breakdown, omitting zero rows so /statsz
// stays readable.
func (c *counters) degradedReasons() map[string]int64 {
	out := map[string]int64{}
	for reason, ctr := range map[string]*atomic.Int64{
		codeQueueFull:    &c.degradedQueueFull,
		codeCircuitOpen:  &c.degradedCircuitOpen,
		codeSolveTimeout: &c.degradedSolveTimeout,
		codeSolveFailed:  &c.degradedSolveFailed,
	} {
		if n := ctr.Load(); n > 0 {
			out[reason] = n
		}
	}
	return out
}
