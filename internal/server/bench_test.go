package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// benchRequest drives one in-process /plan request through the handler,
// skipping the TCP stack so the numbers isolate the serving path (decode,
// key, cache, encode) rather than loopback networking.
func benchRequest(b *testing.B, h http.Handler, device, model string) *httptest.ResponseRecorder {
	body := fmt.Sprintf(`{"device":%q,"model":%q}`, device, model)
	req := httptest.NewRequest(http.MethodPost, "/plan", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// warmServer returns a server whose cache already holds the benchmark key,
// so every measured request is a warm hit.
func warmServer(b *testing.B) (*Server, http.Handler) {
	b.Helper()
	s := New(testConfig())
	b.Cleanup(s.Close)
	h := s.Handler()
	benchRequest(b, h, "OnePlus 12", "ViT") // cold solve, outside timing
	return s, h
}

// BenchmarkPlanServeWarm is the repo's request-driven serving benchmark:
// sustained plan-requests/sec against a warm cache, with the p99 request
// latency reported alongside. Compare against BenchmarkPlanServeColdSolve
// for the cache's latency win.
func BenchmarkPlanServeWarm(b *testing.B) {
	_, h := warmServer(b)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		benchRequest(b, h, "OnePlus 12", "ViT")
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100])/1e3, "p99-us")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
}

// BenchmarkPlanServeWarmParallel is the same path under GOMAXPROCS client
// concurrency — the sustained-throughput shape of a fleet hammering one
// warm key. Scheduling-dependent, so the bench gate treats it as advisory.
func BenchmarkPlanServeWarmParallel(b *testing.B) {
	_, h := warmServer(b)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchRequest(b, h, "OnePlus 12", "ViT")
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
}

// BenchmarkPlanServeColdSolve measures the miss path end to end: a fresh
// server (empty cache) solving ViT through the queue and worker pool. The
// gap between this and BenchmarkPlanServeWarm is the cache's win.
func BenchmarkPlanServeColdSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(testConfig())
		h := s.Handler()
		b.StartTimer()
		benchRequest(b, h, "OnePlus 12", "ViT")
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
