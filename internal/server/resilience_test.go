package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/plancache"
)

// postPlanErr issues one /plan request and decodes the error body.
func postPlanErr(t *testing.T, ts *httptest.Server, device, model string) (int, errorResponse, http.Header) {
	t.Helper()
	body := `{"device":"` + device + `","model":"` + model + `"}`
	resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decode error body: %v", err)
		}
	}
	return resp.StatusCode, er, resp.Header
}

// TestErrorResponseTable pins the whole error surface of fail/retryFail:
// every status the server emits carries a machine-readable code, and every
// retryable status — 429, 503, and critically 504 — carries Retry-After.
func TestErrorResponseTable(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	cases := []struct {
		name      string
		status    int
		retryable bool
		code      string
	}{
		{"method not allowed", http.StatusMethodNotAllowed, false, codeMethodNotAllowed},
		{"bad request", http.StatusBadRequest, false, codeBadRequest},
		{"queue full", http.StatusTooManyRequests, true, codeQueueFull},
		{"circuit open", http.StatusServiceUnavailable, true, codeCircuitOpen},
		{"shutting down", http.StatusServiceUnavailable, true, codeShuttingDown},
		{"solve timeout", http.StatusGatewayTimeout, true, codeSolveTimeout},
		{"solve failed", http.StatusInternalServerError, false, codeSolveFailed},
		{"internal", http.StatusInternalServerError, false, codeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.fail(rec, time.Now(), tc.status, tc.retryable, tc.code, "boom")
			if rec.Code != tc.status {
				t.Errorf("status %d, want %d", rec.Code, tc.status)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("body %q is not JSON: %v", rec.Body.String(), err)
			}
			if er.Code != tc.code {
				t.Errorf("code %q, want %q", er.Code, tc.code)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
			if got := rec.Header().Get("Retry-After") != ""; got != tc.retryable {
				t.Errorf("Retry-After present=%v, want %v", got, tc.retryable)
			}
		})
	}

	// The reachable 4xx paths carry the codes end to end.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/plan", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || er.Code != codeMethodNotAllowed {
		t.Errorf("GET /plan: %d %q, want 405 %q", resp.StatusCode, er.Code, codeMethodNotAllowed)
	}
	code, er2, _ := postPlanErr(t, ts, "Nokia 3310", "ViT")
	if code != http.StatusBadRequest || er2.Code != codeBadRequest {
		t.Errorf("unknown device: %d %q, want 400 %q", code, er2.Code, codeBadRequest)
	}
}

// TestSolverPanicContained: an injected solver panic must cost exactly its
// own request a 500 — never a worker goroutine. After the injected panics
// exhaust, the same server solves normally on the same worker pool.
func TestSolverPanicContained(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1 // one worker: if the panic killed it, the retry would hang
	cfg.BreakerThreshold = 100
	cfg.Injector = faultinject.New(7,
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindPanic, Rate: 1, Max: 2})
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, er, _ := postPlanErr(t, ts, "OnePlus 12", "ViT")
		if code != http.StatusInternalServerError || er.Code != codeSolveFailed {
			t.Fatalf("panicked solve %d: %d %q, want 500 %q", i, code, er.Code, codeSolveFailed)
		}
		if !strings.Contains(er.Error, "panic") {
			t.Errorf("error %q does not say panic", er.Error)
		}
	}
	code, pr, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusOK || pr.Source != "solved" {
		t.Fatalf("post-panic solve: %d %q, want a normal solve on the surviving worker", code, pr.Source)
	}
	if st := s.Stats(); st.SolverPanics != 2 {
		t.Errorf("solver_panics = %d, want 2", st.SolverPanics)
	}
}

// TestDegradedServesLastKnownGood: a plan evicted from the hot cache but
// retained in the last-known-good store is served with source "degraded" —
// byte-identical to its original solve — when the re-solve fails, instead
// of surfacing the failure.
func TestDegradedServesLastKnownGood(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.CacheEntries = 1 // hot cache holds one plan; stale holds two
	cfg.BreakerThreshold = 100
	// The first two solves (ViT, then ResNet) succeed; everything after
	// fails — the re-solve of the evicted ViT plan among them.
	cfg.Injector = faultinject.New(11,
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindError, Rate: 1, After: 2})
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, first, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusOK || first.Source != "solved" {
		t.Fatalf("ViT: %d %q", code, first.Source)
	}
	code, pr, _ := postPlan(t, ts, "OnePlus 12", "ResNet")
	if code != http.StatusOK || pr.Source != "solved" {
		t.Fatalf("ResNet: %d %q", code, pr.Source)
	}

	// ViT is now evicted from the 1-entry hot cache; its re-solve fails.
	code, again, _ := postPlan(t, ts, "OnePlus 12", "ViT")
	if code != http.StatusOK {
		t.Fatalf("degraded ViT: status %d, want 200", code)
	}
	if again.Source != "degraded" || !again.FromCache {
		t.Fatalf("source %q fromCache %v, want degraded", again.Source, again.FromCache)
	}
	if !bytes.Equal(canonicalPlan(t, again.Plan), canonicalPlan(t, first.Plan)) {
		t.Error("degraded plan differs from the original solve")
	}
	if st := s.Stats(); st.Degraded != 1 || st.SolveErrors != 0 {
		t.Errorf("stats degraded=%d solveErrors=%d, want 1 and 0", st.Degraded, st.SolveErrors)
	}
}

// TestCircuitBreakerOpensAndRecovers: consecutive solve failures open the
// breaker (503 + circuit_open + Retry-After for keys with no fallback);
// after the cooldown a probe solve closes it again.
func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	// Exactly two injected failures: enough to open the breaker, gone by
	// the time the post-cooldown probe runs.
	cfg.Injector = faultinject.New(3,
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindError, Rate: 1, Max: 2})
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, m := range []string{"ViT", "ResNet"} {
		code, er, _ := postPlanErr(t, ts, "OnePlus 12", m)
		if code != http.StatusInternalServerError || er.Code != codeSolveFailed {
			t.Fatalf("%s: %d %q, want 500 %q", m, code, er.Code, codeSolveFailed)
		}
	}
	if st := s.Stats(); st.Breaker != "open" {
		t.Fatalf("breaker %q after %d failures, want open", st.Breaker, 2)
	}

	// While open: a cold key is refused without touching the solver.
	code, er, hdr := postPlanErr(t, ts, "OnePlus 12", "DeepViT")
	if code != http.StatusServiceUnavailable || er.Code != codeCircuitOpen {
		t.Fatalf("open breaker: %d %q, want 503 %q", code, er.Code, codeCircuitOpen)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("circuit-open 503 without Retry-After")
	}

	// After the cooldown the next request is the probe; the injected
	// failures are exhausted, so it solves and closes the breaker.
	time.Sleep(2 * cfg.BreakerCooldown)
	codeOK, pr, _ := postPlan(t, ts, "OnePlus 12", "DeepViT")
	if codeOK != http.StatusOK || pr.Source != "solved" {
		t.Fatalf("probe: %d %q, want a successful solve", codeOK, pr.Source)
	}
	st := s.Stats()
	if st.Breaker != "closed" {
		t.Errorf("breaker %q after successful probe, want closed", st.Breaker)
	}
	if st.BreakerRejects != 1 {
		t.Errorf("breaker_rejects = %d, want 1", st.BreakerRejects)
	}
}

// TestGracefulShutdownPersistsCompletedSolves is the satellite contract:
// shutdown racing in-flight solves must produce a snapshot containing
// every solve that completed (was served 200) before Close returned —
// run under -race in CI, where the hold/Close interleaving is genuinely
// concurrent.
func TestGracefulShutdownPersistsCompletedSolves(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	s := New(cfg)
	hold := make(chan struct{})
	s.holdSolves = hold
	ts := httptest.NewServer(s.Handler())

	models := []string{"ViT", "ResNet", "DeepViT", "GPTN-S"}
	type outcome struct {
		code int
		key  string
	}
	results := make(chan outcome, len(models))
	var wg sync.WaitGroup
	for _, m := range models {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			code, pr, _ := postPlan(t, ts, "OnePlus 12", m)
			results <- outcome{code, pr.Key}
		}(m)
	}
	waitStats(t, s, "solves in flight", func(st StatsSnapshot) bool {
		return st.InFlight+st.QueueDepth >= 1
	})

	// The race: solves release while shutdown is already under way.
	go close(hold)
	s.Close()
	wg.Wait()
	ts.Close()
	close(results)

	snap := filepath.Join(t.TempDir(), "shutdown.json")
	if err := s.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	loaded := plancache.New(0)
	if err := loaded.Load(snap); err != nil {
		t.Fatal(err)
	}

	served := 0
	for r := range results {
		switch r.code {
		case http.StatusOK:
			served++
			if _, ok := loaded.Get(r.key); !ok {
				t.Errorf("plan %s was served 200 before shutdown but is missing from the snapshot", r.key)
			}
		case http.StatusServiceUnavailable:
			// Cut off by shutdown — allowed to be absent.
		default:
			t.Errorf("unexpected status %d during shutdown", r.code)
		}
	}
	t.Logf("%d of %d solves completed before shutdown; snapshot has %d plans",
		served, len(models), loaded.Len())
}
