// Package faultinject is a deterministic, seed-driven fault injector for
// the serving and sweep layers. Components expose named injection sites —
// "server.solve", "sweep.worker.http", "plancache.save" — and an optional
// *Injector decides, per call, whether that site misbehaves: an error
// return, added latency, a short write, payload corruption (bit flips or
// truncation), or an induced panic.
//
// Determinism is the point. Every decision at a site is a pure function of
// (seed, site, per-site call index, rule index), so a chaos run with a
// fixed seed fires the same fault sequence at every site on every run —
// regardless of how goroutines interleave *across* sites. (Concurrent
// calls to the same site race for call indices, so which concurrent caller
// absorbs a given fault can vary; the per-site decision sequence cannot.)
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths pay one nil check per site. Fired faults are recorded and
// available via Counts/Events for chaos reports.
package faultinject

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Kind names a fault class.
type Kind string

const (
	// KindError makes Err return a synthetic error.
	KindError Kind = "error"
	// KindLatency makes Delay sleep (a slow disk or network).
	KindLatency Kind = "latency"
	// KindShortWrite makes Truncate cut a payload short (a write that
	// reported success for fewer bytes, or a crash mid-write).
	KindShortWrite Kind = "short-write"
	// KindCorrupt makes Corrupt flip a bit in — or truncate — a payload.
	KindCorrupt Kind = "corrupt"
	// KindPanic makes MaybePanic panic with a *Panic value.
	KindPanic Kind = "panic"
)

// Rule arms one fault kind at matching sites.
type Rule struct {
	// Site is the injection-site name this rule arms, exact, or a prefix
	// match when it ends in "*" ("sweep.*" arms every sweep site).
	Site string
	// Kind is the fault class.
	Kind Kind
	// Rate is the per-call fire probability in [0, 1].
	Rate float64
	// Max caps how many times this rule fires (0 = unlimited). A rule with
	// Max=3, Rate=1 fails a site's first three calls then goes quiet — the
	// shape retry/backoff tests want.
	Max int
	// After exempts the site's first After calls from this rule, so a
	// harness can let a system reach a healthy steady state before the
	// faults start — warm a cache, land a first batch — without giving up
	// determinism.
	After int
	// Latency is the added delay for KindLatency rules; the injected
	// amount is drawn deterministically from [Latency/2, Latency].
	Latency time.Duration
}

// Event records one fired fault.
type Event struct {
	Site string `json:"site"`
	Kind Kind   `json:"kind"`
	Call int    `json:"call"` // per-site call index (0-based) that fired
}

// Panic is the value MaybePanic panics with, so recovery layers can tell
// an injected panic from a genuine solver bug in test assertions.
type Panic struct{ Site string }

func (p *Panic) Error() string { return fmt.Sprintf("faultinject: induced panic at %s", p.Site) }

// Injector decides fault firings. The zero value injects nothing; build a
// live one with New. All methods are safe for concurrent use and safe on a
// nil receiver.
type Injector struct {
	seed  int64
	rules []Rule

	mu     sync.Mutex
	calls  map[string]int // per (site, kind) call index
	fired  []int          // per rule, times fired
	events []Event
}

// New builds an injector whose decisions derive from seed.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:  seed,
		rules: rules,
		calls: make(map[string]int),
		fired: make([]int, len(rules)),
	}
}

// mix is the splitmix64 finalizer — the deterministic hash behind every
// fire decision.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hash folds (seed, site, call, rule, salt) into a uniform uint64.
func (in *Injector) hash(site string, call, rule int, salt uint64) uint64 {
	h := uint64(in.seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	for _, b := range []byte(site) {
		h = mix(h ^ uint64(b))
	}
	h = mix(h ^ uint64(call))
	h = mix(h ^ uint64(rule)<<32)
	return mix(h ^ salt)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

func ruleMatches(pattern, site string) bool {
	if n := len(pattern); n > 0 && pattern[n-1] == '*' {
		return len(site) >= n-1 && site[:n-1] == pattern[:n-1]
	}
	return pattern == site
}

// decide advances the site's per-kind call counter and reports whether any
// rule of the given kind fires, returning that rule and the call index.
func (in *Injector) decide(site string, kind Kind) (Rule, int, bool) {
	if in == nil {
		return Rule{}, 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ck := site + "\x00" + string(kind)
	call := in.calls[ck]
	in.calls[ck] = call + 1
	for i, r := range in.rules {
		if r.Kind != kind || !ruleMatches(r.Site, site) {
			continue
		}
		if call < r.After {
			continue
		}
		if r.Max > 0 && in.fired[i] >= r.Max {
			continue
		}
		if unit(in.hash(site, call, i, 0)) >= r.Rate {
			continue
		}
		in.fired[i]++
		in.events = append(in.events, Event{Site: site, Kind: kind, Call: call})
		return r, call, true
	}
	return Rule{}, 0, false
}

// Err returns an injected error for the site, or nil.
func (in *Injector) Err(site string) error {
	if _, call, ok := in.decide(site, KindError); ok {
		return fmt.Errorf("faultinject: injected error at %s (call %d)", site, call)
	}
	return nil
}

// Delay sleeps an injected latency for the site, honoring ctx: a cancelled
// context cuts the sleep short and its error is returned. Without a firing
// rule it returns immediately.
func (in *Injector) Delay(ctx context.Context, site string) error {
	r, call, ok := in.decide(site, KindLatency)
	if !ok {
		return nil
	}
	lat := r.Latency
	if lat <= 0 {
		lat = 10 * time.Millisecond
	}
	// Deterministic draw from [lat/2, lat].
	d := lat/2 + time.Duration(in.hash(site, call, 0, 1)%uint64(lat/2+1))
	if ctx == nil {
		ctx = context.Background()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// MaybePanic panics with a *Panic when a KindPanic rule fires.
func (in *Injector) MaybePanic(site string) {
	if _, _, ok := in.decide(site, KindPanic); ok {
		panic(&Panic{Site: site})
	}
}

// Corrupt returns a damaged copy of data when a KindCorrupt rule fires —
// a single flipped bit or a truncation, chosen deterministically — and
// data itself (no copy) otherwise. The boolean reports whether corruption
// happened. Empty payloads pass through.
func (in *Injector) Corrupt(site string, data []byte) ([]byte, bool) {
	_, call, ok := in.decide(site, KindCorrupt)
	if !ok || len(data) == 0 {
		return data, false
	}
	h := in.hash(site, call, 0, 2)
	if h&1 == 0 { // bit flip
		out := append([]byte(nil), data...)
		pos := int(h % uint64(len(out)))
		out[pos] ^= 1 << ((h >> 8) % 8)
		return out, true
	}
	// Truncation: keep a deterministic fraction in [0%, 90%).
	keep := int(h % uint64(len(data)) * 9 / 10)
	return append([]byte(nil), data[:keep]...), true
}

// Truncate returns a short prefix of data when a KindShortWrite rule
// fires — what lands on disk when a write is cut off — and data itself
// otherwise.
func (in *Injector) Truncate(site string, data []byte) ([]byte, bool) {
	_, call, ok := in.decide(site, KindShortWrite)
	if !ok || len(data) == 0 {
		return data, false
	}
	keep := int(in.hash(site, call, 0, 3) % uint64(len(data)))
	return data[:keep], true
}

// Counts returns fired-fault totals keyed "site kind", for chaos reports.
func (in *Injector) Counts() map[string]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int)
	for _, e := range in.events {
		out[e.Site+" "+string(e.Kind)]++
	}
	return out
}

// Events returns the fired faults ordered by site, then kind, then call
// index — a stable order, so two runs with the same seed and the same
// per-site call counts produce identical event lists even when goroutine
// interleaving differed.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	evs := append([]Event(nil), in.events...)
	in.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Site != evs[j].Site {
			return evs[i].Site < evs[j].Site
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Call < evs[j].Call
	})
	return evs
}

// Transport wraps an http.RoundTripper with error and latency injection at
// the given site — the hook a chaos harness hands to sweep workers so the
// coordinator protocol sees flaky, slow networks without any server-side
// cooperation. A nil base uses http.DefaultTransport.
func Transport(in *Injector, site string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{in: in, site: site, base: base}
}

type faultTransport struct {
	in   *Injector
	site string
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.in.Delay(req.Context(), t.site); err != nil {
		return nil, err
	}
	if err := t.in.Err(t.site); err != nil {
		return nil, err
	}
	return t.base.RoundTrip(req)
}
