package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// drive fires n Err/Corrupt/Truncate/MaybePanic calls at each of the given
// sites and returns the decision trace.
func drive(in *Injector, sites []string, n int) []string {
	var trace []string
	for i := 0; i < n; i++ {
		for _, site := range sites {
			if err := in.Err(site); err != nil {
				trace = append(trace, site+":error")
			}
			if _, ok := in.Corrupt(site, []byte("payload-bytes")); ok {
				trace = append(trace, site+":corrupt")
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						trace = append(trace, site+":panic")
					}
				}()
				in.MaybePanic(site)
			}()
		}
	}
	return trace
}

// TestSameSeedSameFaultSequence is the determinism contract: with an equal
// seed and an equal per-site call sequence, every decision — and therefore
// the whole fault schedule — is identical run to run.
func TestSameSeedSameFaultSequence(t *testing.T) {
	rules := []Rule{
		{Site: "a", Kind: KindError, Rate: 0.3},
		{Site: "b", Kind: KindCorrupt, Rate: 0.5},
		{Site: "*", Kind: KindPanic, Rate: 0.1, Max: 3},
	}
	sites := []string{"a", "b", "c"}
	t1 := drive(New(42, rules...), sites, 200)
	t2 := drive(New(42, rules...), sites, 200)
	if len(t1) == 0 {
		t.Fatal("no faults fired at rate 0.3/0.5 over 200 calls; hash is broken")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed, different fault sequences:\n%v\n%v", t1, t2)
	}
	t3 := drive(New(43, rules...), sites, 200)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	// The sorted event lists of the two same-seed runs agree too.
	e1 := New(42, rules...)
	e2 := New(42, rules...)
	drive(e1, sites, 200)
	drive(e2, sites, 200)
	if !reflect.DeepEqual(e1.Events(), e2.Events()) {
		t.Fatal("same seed, different event logs")
	}
}

// TestNilInjectorIsInert: every method is a no-op on nil.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Err("x"); err != nil {
		t.Fatal(err)
	}
	if err := in.Delay(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	in.MaybePanic("x")
	data := []byte("abc")
	if out, ok := in.Corrupt("x", data); ok || &out[0] != &data[0] {
		t.Fatal("nil injector corrupted data")
	}
	if out, ok := in.Truncate("x", data); ok || len(out) != 3 {
		t.Fatal("nil injector truncated data")
	}
	if in.Counts() != nil || in.Events() != nil {
		t.Fatal("nil injector reported events")
	}
}

// TestMaxCapsFiring: a Max-limited rate-1 rule fails exactly the first Max
// calls — the shape backoff tests arm.
func TestMaxCapsFiring(t *testing.T) {
	in := New(7, Rule{Site: "s", Kind: KindError, Rate: 1, Max: 3})
	fails := 0
	for i := 0; i < 10; i++ {
		if in.Err("s") != nil {
			fails++
			if i >= 3 {
				t.Fatalf("call %d failed after Max=3 exhausted", i)
			}
		}
	}
	if fails != 3 {
		t.Fatalf("fired %d times, want exactly 3", fails)
	}
	if got := in.Counts()["s error"]; got != 3 {
		t.Fatalf("Counts = %d, want 3", got)
	}
}

// TestCorruptChangesBytes: a fired corruption must actually change or
// shorten the payload, and must not touch the caller's slice.
func TestCorruptChangesBytes(t *testing.T) {
	in := New(1, Rule{Site: "c", Kind: KindCorrupt, Rate: 1})
	orig := []byte("the quick brown fox jumps over the lazy dog")
	keep := append([]byte(nil), orig...)
	for i := 0; i < 20; i++ {
		out, ok := in.Corrupt("c", orig)
		if !ok {
			t.Fatalf("call %d: rate-1 corruption did not fire", i)
		}
		if string(out) == string(orig) {
			t.Fatalf("call %d: corruption left payload identical", i)
		}
		if string(orig) != string(keep) {
			t.Fatal("corruption modified the caller's slice")
		}
	}
}

// TestTruncateShortens: short writes keep a strict prefix.
func TestTruncateShortens(t *testing.T) {
	in := New(3, Rule{Site: "w", Kind: KindShortWrite, Rate: 1})
	data := []byte("0123456789abcdef")
	out, ok := in.Truncate("w", data)
	if !ok || len(out) >= len(data) {
		t.Fatalf("truncate: ok=%v len=%d, want a shorter prefix", ok, len(out))
	}
	if string(out) != string(data[:len(out)]) {
		t.Fatal("truncate returned a non-prefix")
	}
}

// TestDelayHonorsContext: a cancelled context cuts the injected sleep
// short with the context's error.
func TestDelayHonorsContext(t *testing.T) {
	in := New(5, Rule{Site: "d", Kind: KindLatency, Rate: 1, Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Delay(ctx, "d") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Delay returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Delay ignored the cancelled context")
	}
}

// TestPanicValue: MaybePanic panics with a *Panic naming the site.
func TestPanicValue(t *testing.T) {
	in := New(9, Rule{Site: "p", Kind: KindPanic, Rate: 1})
	defer func() {
		p, ok := recover().(*Panic)
		if !ok || p.Site != "p" {
			t.Fatalf("recovered %v, want *Panic{Site: p}", p)
		}
	}()
	in.MaybePanic("p")
	t.Fatal("MaybePanic did not panic at rate 1")
}

// TestTransport: the RoundTripper wrapper injects connection errors and
// passes traffic through when no rule fires.
func TestTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	in := New(11, Rule{Site: "net", Kind: KindError, Rate: 1, Max: 2})
	client := &http.Client{Transport: Transport(in, "net", nil)}
	var errs, oks int
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			errs++
			continue
		}
		resp.Body.Close()
		oks++
	}
	if errs != 2 || oks != 3 {
		t.Fatalf("errs=%d oks=%d, want 2 injected failures then passthrough", errs, oks)
	}
}

// TestPrefixRule: a trailing-* site pattern arms every site underneath.
func TestPrefixRule(t *testing.T) {
	in := New(13, Rule{Site: "sweep.*", Kind: KindError, Rate: 1, Max: 2})
	if in.Err("sweep.worker.http") == nil {
		t.Fatal("prefix rule did not match sweep.worker.http")
	}
	if in.Err("server.solve") != nil {
		t.Fatal("prefix rule leaked to server.solve")
	}
	if in.Err("sweep.coord.lease") == nil {
		t.Fatal("prefix rule did not match sweep.coord.lease")
	}
}
