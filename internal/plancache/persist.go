package plancache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/opg"
	"repro/internal/tensor"
	"repro/internal/units"
)

// FormatVersion tags the on-disk snapshot layout. Version 2 added the
// solver-version field; version 3 records each entry's solve cost so a
// reloaded cache keeps cost-aware eviction priorities. Version-1 and -2
// files still decode without error, but their entries are all dropped
// (with a count): they predate the current solver generation's key salt,
// so none of them could ever hit. Unknown versions are rejected rather
// than guessed at.
const FormatVersion = 3

// persistedNode flattens one graph node; IDs are implicit in order, which
// matches how graph.Graph.Add assigns them on rebuild.
type persistedNode struct {
	Name   string       `json:"name"`
	Inputs []int        `json:"inputs,omitempty"`
	Parts  []graph.Part `json:"parts"`
}

// persistedGraph flattens a (possibly fused) graph.
type persistedGraph struct {
	Name  string          `json:"name"`
	DType tensor.DType    `json:"dtype"`
	Nodes []persistedNode `json:"nodes"`
}

// persistedEntry is one cached plan with its key. Cost carries the
// recorded solve cost across processes so a warm-started cache evicts
// cheap plans before expensive ones, exactly like the process that solved
// them would.
type persistedEntry struct {
	Key   string         `json:"key"`
	Graph persistedGraph `json:"graph"`
	Plan  *opg.Plan      `json:"plan"`
	Cost  time.Duration  `json:"cost_ns,omitempty"`
}

// snapshot is the whole file, entries ordered least → most recently used
// so sequential re-insertion on Load reproduces the LRU order. Solver
// records the LC-OPG generation that produced the plans: entries from
// another generation could never hit (their keys embed a different salt),
// so loaders skip them wholesale.
type snapshot struct {
	Version int              `json:"version"`
	Solver  string           `json:"solver,omitempty"`
	Entries []persistedEntry `json:"entries"`
}

// rawSnapshot defers entry decoding so a damaged entry in an old snapshot
// can be skipped instead of poisoning the whole file.
type rawSnapshot struct {
	Version int               `json:"version"`
	Solver  string            `json:"solver"`
	Entries []json.RawMessage `json:"entries"`
}

// LoadStats summarizes one or more snapshot loads.
type LoadStats struct {
	Files   int // snapshot files actually read (missing files are cold starts)
	Loaded  int // entries inserted into the cache
	Dropped int // undecodable or stale-solver entries skipped
	Evicted int // LRU evictions forced during the load: the snapshot
	// exceeded the cache bound, so a warm start cannot be complete
}

// add accumulates another file's stats.
func (s *LoadStats) add(o LoadStats) {
	s.Files += o.Files
	s.Loaded += o.Loaded
	s.Dropped += o.Dropped
	s.Evicted += o.Evicted
}

// Snapshot encodes the cache contents as a FormatVersion snapshot in
// memory — what Save writes to disk, and what a coordinated-sweep worker
// attaches to each pushed result so the coordinator can merge worker
// caches without touching the workers' filesystems. Counters are not
// included — stats describe one process lifetime.
func (c *Cache) Snapshot() ([]byte, error) {
	c.mu.Lock()
	snap := snapshot{Version: FormatVersion, Solver: opg.SolverVersion}
	for el := c.order.Back(); el != nil; el = el.Prev() {
		en := el.Value.(*entry)
		snap.Entries = append(snap.Entries, persistedEntry{
			Key:   en.key,
			Graph: flattenGraph(en.prep.Graph),
			Plan:  en.prep.Plan,
			Cost:  en.cost,
		})
	}
	c.mu.Unlock()

	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("plancache: encode: %w", err)
	}
	return data, nil
}

// Save writes the cache contents as a JSON snapshot file.
func (c *Cache) Save(path string) error {
	data, err := c.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("plancache: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges a saved snapshot into the cache. Loaded entries do not count
// as stores. A missing file is not an error — cold start is the normal
// first-run case. Current-version snapshots decode strictly; old-format
// or stale-solver snapshots degrade to a cold start rather than an error.
// Use LoadAll to observe the dropped count.
func (c *Cache) Load(path string) error {
	_, err := c.loadFile(path)
	return err
}

// LoadAll merges any number of snapshot files — typically the shard-local
// snapshots of a distributed sweep — into the cache in argument order, so
// on duplicate keys the last file wins. It reports how many entries were
// loaded and how many were dropped by best-effort or stale-solver decoding.
func (c *Cache) LoadAll(paths ...string) (LoadStats, error) {
	var stats LoadStats
	for _, path := range paths {
		s, err := c.loadFile(path)
		stats.add(s)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// loadFile reads, decodes, and inserts one snapshot.
func (c *Cache) loadFile(path string) (LoadStats, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return LoadStats{}, nil
	}
	if err != nil {
		return LoadStats{}, fmt.Errorf("plancache: read: %w", err)
	}
	entries, stats, err := decodeSnapshot(path, data)
	if err != nil {
		return stats, err
	}
	preps := make([]*core.Prepared, len(entries))
	for i, en := range entries {
		g, err := rebuildGraph(en.Graph)
		if err != nil {
			return stats, fmt.Errorf("plancache: entry %q: %w", en.Key, err)
		}
		preps[i] = &core.Prepared{Graph: g, Plan: en.Plan}
	}
	c.mu.Lock()
	evictionsBefore := c.stats.Evictions
	for i, en := range entries {
		cost := en.Cost
		if cost == 0 {
			cost = preps[i].PlanCost() // older v3 writers; stats still carry it
		}
		c.insert(en.Key, preps[i], cost)
	}
	stats.Evicted = int(c.stats.Evictions - evictionsBefore)
	c.mu.Unlock()
	return stats, nil
}

// decodeSnapshot parses and version-checks one snapshot file, returning
// the surviving entries in their on-disk (least → most recently used)
// order. Entries that cannot be used — a version-1 file, or a file
// written by a different solver generation — are counted in Dropped
// rather than failing the load. Decode and graph-rebuild errors of
// current-version entries still fail hard: a freshly written file should
// never be corrupt.
func decodeSnapshot(path string, data []byte) ([]persistedEntry, LoadStats, error) {
	var raw rawSnapshot
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: decode %s: %w", path, err)
	}
	switch raw.Version {
	case FormatVersion:
		if raw.Solver != opg.SolverVersion {
			// The keys in this file embed another solver generation's salt
			// and can never hit; loading them would only pollute the LRU.
			return nil, LoadStats{Files: 1, Dropped: len(raw.Entries)}, nil
		}
		entries := make([]persistedEntry, len(raw.Entries))
		for i, msg := range raw.Entries {
			if err := json.Unmarshal(msg, &entries[i]); err != nil {
				return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s entry %d: %w", path, i, err)
			}
			if entries[i].Plan == nil {
				return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s entry %q has no plan", path, entries[i].Key)
			}
		}
		return entries, LoadStats{Files: 1, Loaded: len(entries)}, nil
	case 1, 2:
		// Version-1 snapshots predate the solver-version salt in
		// core.PlanKey, and version-2 files were necessarily written by a
		// pre-lc-opg-3 solver: either way no current lookup can ever hit
		// their keys. They are handled like a stale-solver file — every
		// entry dropped with a count, never a hard error — so an old
		// warm-start file (even a damaged one) degrades to a cold start
		// instead of failing the run.
		return nil, LoadStats{Files: 1, Dropped: len(raw.Entries)}, nil
	default:
		return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s has format version %d, want %d", path, raw.Version, FormatVersion)
	}
}

// MergeStats summarizes a snapshot merge.
type MergeStats struct {
	Files    int
	Entries  int // entries in the merged snapshot
	Replaced int // identical-key, identical-plan overwrites (last writer wins)
	Dropped  int // undecodable or stale-solver entries skipped
}

// MergeSnapshotFiles joins shard-local snapshots into one warm-start file
// at out. Later paths win on identical keys; a key that maps to two
// *different* plans is a conflict and fails the merge — the solver is
// deterministic and keys embed the full configuration and solver version,
// so diverging plans mean a corrupt or mislabeled snapshot, not a benign
// race. The conflict error names both snapshot files so the offending
// shard can be re-run without bisecting the input list. Unlike Load, a
// missing input file is an error: a lost shard snapshot must not silently
// produce a colder merged cache.
func MergeSnapshotFiles(out string, paths ...string) (MergeStats, error) {
	var stats MergeStats
	if len(paths) == 0 {
		return stats, fmt.Errorf("plancache: merge: no snapshot files given")
	}
	var order []string // first-appearance key order
	merged := map[string]persistedEntry{}
	source := map[string]string{} // key → snapshot file that currently provides it
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return stats, fmt.Errorf("plancache: merge: %w", err)
		}
		entries, ls, err := decodeSnapshot(path, data)
		stats.Files++
		stats.Dropped += ls.Dropped
		if err != nil {
			return stats, err
		}
		for _, en := range entries {
			prev, ok := merged[en.Key]
			if !ok {
				order = append(order, en.Key)
				merged[en.Key] = en
				source[en.Key] = path
				continue
			}
			same, err := samePayload(prev, en)
			if err != nil {
				return stats, fmt.Errorf("plancache: merge %s: %w", path, err)
			}
			if !same {
				// Name both snapshots: the operator's next move is deciding
				// which shard to re-run, so "which files disagree" is the
				// actionable part of the failure.
				return stats, fmt.Errorf("plancache: merge: key %.16s… from %s conflicts with plan from %s",
					en.Key, path, source[en.Key])
			}
			merged[en.Key] = en // last writer wins
			source[en.Key] = path
			stats.Replaced++
		}
	}
	snap := snapshot{Version: FormatVersion, Solver: opg.SolverVersion}
	for _, key := range order {
		snap.Entries = append(snap.Entries, merged[key])
	}
	stats.Entries = len(snap.Entries)
	data, err := json.Marshal(snap)
	if err != nil {
		return stats, fmt.Errorf("plancache: merge encode: %w", err)
	}
	tmp := out + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return stats, fmt.Errorf("plancache: merge write: %w", err)
	}
	return stats, os.Rename(tmp, out)
}

// samePayload compares two entries' schedule content — the graph and the
// plan's actual weight schedule — via their canonical JSON encoding.
// Plan.Stats is excluded: it records wall-clock solve measurements, which
// legitimately differ between two solves of the same deterministic result.
func samePayload(a, b persistedEntry) (bool, error) {
	ab, err := json.Marshal(planPayload(a))
	if err != nil {
		return false, err
	}
	bb, err := json.Marshal(planPayload(b))
	if err != nil {
		return false, err
	}
	return bytes.Equal(ab, bb), nil
}

// planPayload projects the conflict-relevant fields of an entry.
func planPayload(e persistedEntry) any {
	return struct {
		G         persistedGraph
		Model     string
		ChunkSize units.Bytes
		MPeak     units.Bytes
		Weights   []opg.WeightPlan
	}{e.Graph, e.Plan.Model, e.Plan.ChunkSize, e.Plan.MPeak, e.Plan.Weights}
}

// flattenGraph converts a graph to its persisted form via the public API.
func flattenGraph(g *graph.Graph) persistedGraph {
	pg := persistedGraph{Name: g.Name, DType: g.DType}
	for _, n := range g.Nodes() {
		pn := persistedNode{Name: n.Name, Parts: n.Parts}
		for _, in := range n.Inputs {
			pn.Inputs = append(pn.Inputs, int(in))
		}
		pg.Nodes = append(pg.Nodes, pn)
	}
	return pg
}

// rebuildGraph reconstructs a graph; Add re-assigns the same sequential
// IDs the flattened order encoded. Malformed snapshots (bad inputs, empty
// parts) surface as errors rather than panics.
func rebuildGraph(pg persistedGraph) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("corrupt graph %q: %v", pg.Name, r)
		}
	}()
	g = graph.New(pg.Name, pg.DType)
	for _, pn := range pg.Nodes {
		inputs := make([]graph.NodeID, len(pn.Inputs))
		for i, in := range pn.Inputs {
			inputs[i] = graph.NodeID(in)
		}
		g.Add(pn.Name, inputs, pn.Parts...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
