package plancache

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/opg"
	"repro/internal/tensor"
)

// FormatVersion tags the on-disk snapshot layout. Load rejects snapshots
// written by a different version rather than guessing at field meanings.
const FormatVersion = 1

// persistedNode flattens one graph node; IDs are implicit in order, which
// matches how graph.Graph.Add assigns them on rebuild.
type persistedNode struct {
	Name   string       `json:"name"`
	Inputs []int        `json:"inputs,omitempty"`
	Parts  []graph.Part `json:"parts"`
}

// persistedGraph flattens a (possibly fused) graph.
type persistedGraph struct {
	Name  string          `json:"name"`
	DType tensor.DType    `json:"dtype"`
	Nodes []persistedNode `json:"nodes"`
}

// persistedEntry is one cached plan with its key.
type persistedEntry struct {
	Key   string         `json:"key"`
	Graph persistedGraph `json:"graph"`
	Plan  *opg.Plan      `json:"plan"`
}

// snapshot is the whole file, entries ordered least → most recently used
// so sequential re-insertion on Load reproduces the LRU order.
type snapshot struct {
	Version int              `json:"version"`
	Entries []persistedEntry `json:"entries"`
}

// Save writes the cache contents as JSON. Counters are not persisted —
// stats describe one process lifetime.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	snap := snapshot{Version: FormatVersion}
	for el := c.order.Back(); el != nil; el = el.Prev() {
		en := el.Value.(*entry)
		snap.Entries = append(snap.Entries, persistedEntry{
			Key:   en.key,
			Graph: flattenGraph(en.prep.Graph),
			Plan:  en.prep.Plan,
		})
	}
	c.mu.Unlock()

	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("plancache: encode: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("plancache: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges a saved snapshot into the cache. Loaded entries do not count
// as stores. A missing file is not an error — cold start is the normal
// first-run case.
func (c *Cache) Load(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("plancache: read: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("plancache: decode %s: %w", path, err)
	}
	if snap.Version != FormatVersion {
		return fmt.Errorf("plancache: %s has format version %d, want %d", path, snap.Version, FormatVersion)
	}
	preps := make([]*core.Prepared, len(snap.Entries))
	for i, en := range snap.Entries {
		if en.Plan == nil {
			return fmt.Errorf("plancache: entry %q has no plan", en.Key)
		}
		g, err := rebuildGraph(en.Graph)
		if err != nil {
			return fmt.Errorf("plancache: entry %q: %w", en.Key, err)
		}
		preps[i] = &core.Prepared{Graph: g, Plan: en.Plan}
	}
	c.mu.Lock()
	for i, en := range snap.Entries {
		c.insert(en.Key, preps[i])
	}
	c.mu.Unlock()
	return nil
}

// flattenGraph converts a graph to its persisted form via the public API.
func flattenGraph(g *graph.Graph) persistedGraph {
	pg := persistedGraph{Name: g.Name, DType: g.DType}
	for _, n := range g.Nodes() {
		pn := persistedNode{Name: n.Name, Parts: n.Parts}
		for _, in := range n.Inputs {
			pn.Inputs = append(pn.Inputs, int(in))
		}
		pg.Nodes = append(pg.Nodes, pn)
	}
	return pg
}

// rebuildGraph reconstructs a graph; Add re-assigns the same sequential
// IDs the flattened order encoded. Malformed snapshots (bad inputs, empty
// parts) surface as errors rather than panics.
func rebuildGraph(pg persistedGraph) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("corrupt graph %q: %v", pg.Name, r)
		}
	}()
	g = graph.New(pg.Name, pg.DType)
	for _, pn := range pg.Nodes {
		inputs := make([]graph.NodeID, len(pn.Inputs))
		for i, in := range pn.Inputs {
			inputs[i] = graph.NodeID(in)
		}
		g.Add(pn.Name, inputs, pn.Parts...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
