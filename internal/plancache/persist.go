package plancache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/opg"
	"repro/internal/tensor"
	"repro/internal/units"
)

// FormatVersion tags the on-disk snapshot layout. Version 2 added the
// solver-version field; version 3 recorded each entry's solve cost so a
// reloaded cache keeps cost-aware eviction priorities; version 4 adds a
// CRC-32C checksum over the entries payload so bit flips and truncation
// are detected instead of trusted. Version-1 and -2 files still decode
// without error, but their entries are all dropped (with a count): they
// predate the current solver generation's key salt, so none of them could
// ever hit. Version-3 files — the same entry layout, minus the checksum —
// still load. Unknown versions are rejected rather than guessed at.
const FormatVersion = 4

// errCorrupt classifies snapshot damage — truncation, bit flips, non-JSON
// content, checksum mismatches, unrebuildable graphs. Boot-path loaders
// quarantine such files and degrade to a cold start; the merge path, where
// a damaged shard snapshot means lost sweep work, still fails hard.
var errCorrupt = errors.New("corrupt snapshot")

// crc32c is the Castagnoli table shared by writers and verifiers.
var crc32c = crc32.MakeTable(crc32.Castagnoli)

// checksum renders the v4 integrity field for an entries payload.
func checksum(payload []byte) string {
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(payload, crc32c))
}

// persistedNode flattens one graph node; IDs are implicit in order, which
// matches how graph.Graph.Add assigns them on rebuild.
type persistedNode struct {
	Name   string       `json:"name"`
	Inputs []int        `json:"inputs,omitempty"`
	Parts  []graph.Part `json:"parts"`
}

// persistedGraph flattens a (possibly fused) graph.
type persistedGraph struct {
	Name  string          `json:"name"`
	DType tensor.DType    `json:"dtype"`
	Nodes []persistedNode `json:"nodes"`
}

// persistedEntry is one cached plan with its key. Cost carries the
// recorded solve cost across processes so a warm-started cache evicts
// cheap plans before expensive ones, exactly like the process that solved
// them would.
type persistedEntry struct {
	Key   string         `json:"key"`
	Graph persistedGraph `json:"graph"`
	Plan  *opg.Plan      `json:"plan"`
	Cost  time.Duration  `json:"cost_ns,omitempty"`
}

// snapshot is the whole file: the version header, the solver generation,
// the checksum of the raw entries payload, and the entries themselves
// ordered least → most recently used so sequential re-insertion on Load
// reproduces the LRU order. Solver records the LC-OPG generation that
// produced the plans: entries from another generation could never hit
// (their keys embed a different salt), so loaders skip them wholesale.
// Entries is kept as raw bytes on both paths so the checksum covers the
// exact bytes on disk, not a re-marshaling of them.
type snapshot struct {
	Version  int             `json:"version"`
	Solver   string          `json:"solver,omitempty"`
	Checksum string          `json:"checksum,omitempty"`
	Entries  json.RawMessage `json:"entries"`
}

// LoadStats summarizes one or more snapshot loads.
type LoadStats struct {
	Files   int // snapshot files actually read (missing files are cold starts)
	Loaded  int // entries inserted into the cache
	Dropped int // undecodable or stale-solver entries skipped
	Evicted int // LRU evictions forced during the load: the snapshot
	// exceeded the cache bound, so a warm start cannot be complete
	BadFiles int // corrupt files quarantined to .bad; their entries are
	// unknowable and excluded from Dropped
}

// add accumulates another file's stats.
func (s *LoadStats) add(o LoadStats) {
	s.Files += o.Files
	s.Loaded += o.Loaded
	s.Dropped += o.Dropped
	s.Evicted += o.Evicted
	s.BadFiles += o.BadFiles
}

// Snapshot encodes the cache contents as a FormatVersion snapshot in
// memory — what Save writes to disk, and what a coordinated-sweep worker
// attaches to each pushed result so the coordinator can merge worker
// caches without touching the workers' filesystems. Counters are not
// included — stats describe one process lifetime.
func (c *Cache) Snapshot() ([]byte, error) {
	c.mu.Lock()
	var entries []persistedEntry
	for el := c.order.Back(); el != nil; el = el.Prev() {
		en := el.Value.(*entry)
		entries = append(entries, persistedEntry{
			Key:   en.key,
			Graph: flattenGraph(en.prep.Graph),
			Plan:  en.prep.Plan,
			Cost:  en.cost,
		})
	}
	c.mu.Unlock()
	return encodeSnapshot(entries)
}

// encodeSnapshot renders entries as a FormatVersion file with the checksum
// computed over the exact entries bytes being written.
func encodeSnapshot(entries []persistedEntry) ([]byte, error) {
	payload, err := json.Marshal(entries)
	if err != nil {
		return nil, fmt.Errorf("plancache: encode: %w", err)
	}
	data, err := json.Marshal(snapshot{
		Version:  FormatVersion,
		Solver:   opg.SolverVersion,
		Checksum: checksum(payload),
		Entries:  payload,
	})
	if err != nil {
		return nil, fmt.Errorf("plancache: encode: %w", err)
	}
	return data, nil
}

// SetFaultInjector arms persistence fault injection on this cache: Save
// consults sites "plancache.save" (error, short write, corruption) and
// loads consult "plancache.load" (error). Nil disarms. Chaos harnesses
// only; production caches never call this.
func (c *Cache) SetFaultInjector(in *faultinject.Injector) {
	c.mu.Lock()
	c.inj = in
	c.mu.Unlock()
}

func (c *Cache) injector() *faultinject.Injector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj
}

// Save writes the cache contents as a JSON snapshot file. The write lands
// in a temp file renamed into place, so a crash mid-write leaves the old
// snapshot intact — and an injected short write or corruption produces
// exactly the damaged-file shapes the checksum quarantine exists to catch.
func (c *Cache) Save(path string) error {
	data, err := c.Snapshot()
	if err != nil {
		return err
	}
	inj := c.injector()
	if err := inj.Err("plancache.save"); err != nil {
		return fmt.Errorf("plancache: write: %w", err)
	}
	data, _ = inj.Truncate("plancache.save", data)
	data, _ = inj.Corrupt("plancache.save", data)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("plancache: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges a saved snapshot into the cache. Loaded entries do not count
// as stores. A missing file is not an error — cold start is the normal
// first-run case. Old-format, stale-solver, and corrupt snapshots all
// degrade to a cold start rather than an error; corrupt files are
// additionally quarantined to path+".bad" so the evidence survives the
// boot that survived it. Use LoadAll to observe the dropped and
// quarantined counts.
func (c *Cache) Load(path string) error {
	_, err := c.loadFile(path)
	return err
}

// LoadAll merges any number of snapshot files — typically the shard-local
// snapshots of a distributed sweep — into the cache in argument order, so
// on duplicate keys the last file wins. It reports how many entries were
// loaded, how many were dropped by best-effort or stale-solver decoding,
// and how many whole files were quarantined as corrupt. Corruption —
// truncation, bit flips, non-JSON bytes, checksum mismatches — and even
// unreadable files never fail the load: a fleet server must boot cold
// rather than not at all.
func (c *Cache) LoadAll(paths ...string) (LoadStats, error) {
	var stats LoadStats
	for _, path := range paths {
		s, err := c.loadFile(path)
		stats.add(s)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// loadFile reads, decodes, and inserts one snapshot. Corrupt files are
// quarantined and reported in stats, and unreadable files (I/O errors,
// permissions) are counted bad and skipped — a fleet server boots cold
// rather than not at all — so only unknown future format versions fail the
// call. The merge path reads files itself and stays strict.
func (c *Cache) loadFile(path string) (LoadStats, error) {
	if err := c.injector().Err("plancache.load"); err != nil {
		return LoadStats{Files: 1, BadFiles: 1}, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return LoadStats{}, nil
	}
	if err != nil {
		// Nothing readable to quarantine; the file stays put and the boot
		// proceeds cold. LoadStats.BadFiles carries the evidence.
		return LoadStats{Files: 1, BadFiles: 1}, nil
	}
	entries, stats, err := decodeSnapshot(path, data)
	if err != nil {
		if errors.Is(err, errCorrupt) {
			return quarantine(path, stats), nil
		}
		return stats, err
	}
	preps := make([]*core.Prepared, len(entries))
	for i, en := range entries {
		g, err := rebuildGraph(en.Graph)
		if err != nil {
			// The file parsed but its content cannot be reconstructed —
			// corruption that happens to stay inside JSON string/number
			// literals. Same remedy: quarantine, boot cold.
			return quarantine(path, stats), nil
		}
		preps[i] = &core.Prepared{Graph: g, Plan: en.Plan}
	}
	c.mu.Lock()
	evictionsBefore := c.stats.Evictions
	for i, en := range entries {
		cost := en.Cost
		if cost == 0 {
			cost = preps[i].PlanCost() // older v3 writers; stats still carry it
		}
		c.insert(en.Key, preps[i], cost)
	}
	stats.Evicted = int(c.stats.Evictions - evictionsBefore)
	c.mu.Unlock()
	return stats, nil
}

// quarantine renames a corrupt snapshot to path+".bad" — out of the boot
// path, but preserved for forensics — and returns the file's stats with
// the bad-file count set and any optimistic per-entry numbers cleared. A
// failed rename (read-only filesystem, say) leaves the file in place; the
// next boot will quarantine it again, which is annoying but safe.
func quarantine(path string, stats LoadStats) LoadStats {
	stats.Loaded = 0
	stats.Dropped = 0
	stats.BadFiles++
	_ = os.Rename(path, path+".bad")
	return stats
}

// decodeSnapshot parses, checksums, and version-checks one snapshot file,
// returning the surviving entries in their on-disk (least → most recently
// used) order. Three outcomes:
//
//   - usable entries (possibly zero of them, with Dropped counts, for
//     old-format or stale-solver files — those are legitimate, just cold);
//   - an error wrapping errCorrupt for damaged bytes: non-JSON content,
//     a v4 checksum mismatch, or entries that fail strict decoding.
//     Boot-path callers quarantine; the merge path fails hard;
//   - any other error for unknown future versions.
func decodeSnapshot(path string, data []byte) ([]persistedEntry, LoadStats, error) {
	var raw snapshot
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: decode %s: %w: %v", path, errCorrupt, err)
	}
	switch raw.Version {
	case FormatVersion:
		// The checksum covers the exact raw entries bytes as written, so
		// any in-payload damage — even damage that is still valid JSON —
		// is caught here before anything is trusted.
		if got := checksum(raw.Entries); got != raw.Checksum {
			return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s: %w: entries checksum %s, header says %s",
				path, errCorrupt, got, raw.Checksum)
		}
		return decodeEntries(path, raw)
	case 3:
		// Same entry layout as v4, written before checksums existed;
		// strict decoding is the only integrity check available.
		return decodeEntries(path, raw)
	case 1, 2:
		// Version-1 snapshots predate the solver-version salt in
		// core.PlanKey, and version-2 files were necessarily written by a
		// pre-lc-opg-3 solver: either way no current lookup can ever hit
		// their keys. They are handled like a stale-solver file — every
		// entry dropped with a count, never a hard error — so an old
		// warm-start file (even a damaged one) degrades to a cold start
		// instead of failing the run.
		var msgs []json.RawMessage
		_ = json.Unmarshal(raw.Entries, &msgs) // best effort, count what decodes
		return nil, LoadStats{Files: 1, Dropped: len(msgs)}, nil
	default:
		return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s has format version %d, want %d", path, raw.Version, FormatVersion)
	}
}

// decodeEntries strictly decodes a v3/v4 file's entries after the header
// checks passed. Solver-generation mismatches drop every entry (their keys
// embed another salt and could never hit); per-entry decode failures are
// corruption.
func decodeEntries(path string, raw snapshot) ([]persistedEntry, LoadStats, error) {
	var msgs []json.RawMessage
	if err := json.Unmarshal(raw.Entries, &msgs); err != nil {
		return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s entries: %w: %v", path, errCorrupt, err)
	}
	if raw.Solver != opg.SolverVersion {
		// The keys in this file embed another solver generation's salt
		// and can never hit; loading them would only pollute the LRU.
		return nil, LoadStats{Files: 1, Dropped: len(msgs)}, nil
	}
	entries := make([]persistedEntry, len(msgs))
	for i, msg := range msgs {
		if err := json.Unmarshal(msg, &entries[i]); err != nil {
			return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s entry %d: %w: %v", path, i, errCorrupt, err)
		}
		if entries[i].Plan == nil {
			return nil, LoadStats{Files: 1}, fmt.Errorf("plancache: %s entry %q has no plan: %w", path, entries[i].Key, errCorrupt)
		}
	}
	return entries, LoadStats{Files: 1, Loaded: len(entries)}, nil
}

// MergeStats summarizes a snapshot merge.
type MergeStats struct {
	Files    int
	Entries  int // entries in the merged snapshot
	Replaced int // identical-key, identical-plan overwrites (last writer wins)
	Dropped  int // undecodable or stale-solver entries skipped
}

// MergeSnapshotFiles joins shard-local snapshots into one warm-start file
// at out. Later paths win on identical keys; a key that maps to two
// *different* plans is a conflict and fails the merge — the solver is
// deterministic and keys embed the full configuration and solver version,
// so diverging plans mean a corrupt or mislabeled snapshot, not a benign
// race. The conflict error names both snapshot files so the offending
// shard can be re-run without bisecting the input list. Unlike Load, a
// missing input file is an error, and so is a corrupt one: a lost or
// damaged shard snapshot must not silently produce a colder merged cache —
// the shard should be re-run instead.
func MergeSnapshotFiles(out string, paths ...string) (MergeStats, error) {
	var stats MergeStats
	if len(paths) == 0 {
		return stats, fmt.Errorf("plancache: merge: no snapshot files given")
	}
	var order []string // first-appearance key order
	merged := map[string]persistedEntry{}
	source := map[string]string{} // key → snapshot file that currently provides it
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return stats, fmt.Errorf("plancache: merge: %w", err)
		}
		entries, ls, err := decodeSnapshot(path, data)
		stats.Files++
		stats.Dropped += ls.Dropped
		if err != nil {
			return stats, err
		}
		for _, en := range entries {
			prev, ok := merged[en.Key]
			if !ok {
				order = append(order, en.Key)
				merged[en.Key] = en
				source[en.Key] = path
				continue
			}
			same, err := samePayload(prev, en)
			if err != nil {
				return stats, fmt.Errorf("plancache: merge %s: %w", path, err)
			}
			if !same {
				// Name both snapshots: the operator's next move is deciding
				// which shard to re-run, so "which files disagree" is the
				// actionable part of the failure.
				return stats, fmt.Errorf("plancache: merge: key %.16s… from %s conflicts with plan from %s",
					en.Key, path, source[en.Key])
			}
			merged[en.Key] = en // last writer wins
			source[en.Key] = path
			stats.Replaced++
		}
	}
	var entries []persistedEntry
	for _, key := range order {
		entries = append(entries, merged[key])
	}
	stats.Entries = len(entries)
	data, err := encodeSnapshot(entries)
	if err != nil {
		return stats, fmt.Errorf("plancache: merge: %w", err)
	}
	tmp := out + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return stats, fmt.Errorf("plancache: merge write: %w", err)
	}
	return stats, os.Rename(tmp, out)
}

// samePayload compares two entries' schedule content — the graph and the
// plan's actual weight schedule — via their canonical JSON encoding.
// Plan.Stats is excluded: it records wall-clock solve measurements, which
// legitimately differ between two solves of the same deterministic result.
func samePayload(a, b persistedEntry) (bool, error) {
	ab, err := json.Marshal(planPayload(a))
	if err != nil {
		return false, err
	}
	bb, err := json.Marshal(planPayload(b))
	if err != nil {
		return false, err
	}
	return bytes.Equal(ab, bb), nil
}

// planPayload projects the conflict-relevant fields of an entry.
func planPayload(e persistedEntry) any {
	return struct {
		G         persistedGraph
		Model     string
		ChunkSize units.Bytes
		MPeak     units.Bytes
		Weights   []opg.WeightPlan
	}{e.Graph, e.Plan.Model, e.Plan.ChunkSize, e.Plan.MPeak, e.Plan.Weights}
}

// flattenGraph converts a graph to its persisted form via the public API.
func flattenGraph(g *graph.Graph) persistedGraph {
	pg := persistedGraph{Name: g.Name, DType: g.DType}
	for _, n := range g.Nodes() {
		pn := persistedNode{Name: n.Name, Parts: n.Parts}
		for _, in := range n.Inputs {
			pn.Inputs = append(pn.Inputs, int(in))
		}
		pg.Nodes = append(pg.Nodes, pn)
	}
	return pg
}

// rebuildGraph reconstructs a graph; Add re-assigns the same sequential
// IDs the flattened order encoded. Malformed snapshots (bad inputs, empty
// parts) surface as errors rather than panics.
func rebuildGraph(pg persistedGraph) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("corrupt graph %q: %v", pg.Name, r)
		}
	}()
	g = graph.New(pg.Name, pg.DType)
	for _, pn := range pg.Nodes {
		inputs := make([]graph.NodeID, len(pn.Inputs))
		for i, in := range pn.Inputs {
			inputs[i] = graph.NodeID(in)
		}
		g.Add(pn.Name, inputs, pn.Parts...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
