package plancache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/units"
)

// writeSnap writes a hand-built snapshot file and returns its path.
func writeSnap(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestModelCostsExtractsMaxPerModel(t *testing.T) {
	snap := fmt.Sprintf(`{"version":3,"solver":%q,"entries":[
		{"key":"a","plan":{"model":"ViT"},"cost_ns":1000000},
		{"key":"b","plan":{"model":"ViT"},"cost_ns":3000000},
		{"key":"c","plan":{"model":"Llama2-70B"},"cost_ns":1700000000}
	]}`, opg.SolverVersion)
	costs, err := ModelCosts(writeSnap(t, "v3.json", snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := costs["ViT"]; got != 3*time.Millisecond {
		t.Errorf("ViT cost = %v, want 3ms (the max, not first or mean)", got)
	}
	if got := costs["Llama2-70B"]; got != 1700*time.Millisecond {
		t.Errorf("Llama2-70B cost = %v, want 1.7s", got)
	}
}

// TestModelCostsNeutralOnMissingCostFields: a v3 snapshot whose entries
// carry no cost (the product of merging v1/v2-era data) must yield NO
// estimate for those models — absent, so the scheduler prices them
// neutrally — never a zero cost that would create a fast lane.
func TestModelCostsNeutralOnMissingCostFields(t *testing.T) {
	snap := fmt.Sprintf(`{"version":3,"solver":%q,"entries":[
		{"key":"a","plan":{"model":"ViT"}},
		{"key":"b","plan":{"model":"ResNet"},"cost_ns":0},
		{"key":"c","plan":{"model":"GPTN-S"},"cost_ns":5000000}
	]}`, opg.SolverVersion)
	costs, err := ModelCosts(writeSnap(t, "v3-nocost.json", snap))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := costs["ViT"]; ok {
		t.Error("cost-less ViT entry produced an estimate (want absent → neutral)")
	}
	if _, ok := costs["ResNet"]; ok {
		t.Error("zero-cost ResNet entry produced an estimate (want absent → neutral)")
	}
	if got := costs["GPTN-S"]; got != 5*time.Millisecond {
		t.Errorf("GPTN-S cost = %v, want 5ms", got)
	}
}

// TestModelCostsOldFormatsAndMissingFiles: v1/v2 snapshots predate the
// cost field and contribute nothing; missing files are a normal first-run
// cold start. Neither is an error.
func TestModelCostsOldFormatsAndMissingFiles(t *testing.T) {
	v1 := writeSnap(t, "v1.json", `{"version":1,"entries":[{"key":"a"}]}`)
	v2 := writeSnap(t, "v2.json", `{"version":2,"solver":"lc-opg-2","entries":[{"key":"a"}]}`)
	costs, err := ModelCosts(v1, v2, filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 0 {
		t.Errorf("v1/v2/missing inputs produced estimates: %v", costs)
	}
}

// TestModelCostsAcceptsStaleSolverGeneration: unlike plan loading, cost
// export keeps entries from other solver generations — an old
// generation's solve time still predicts this one's.
func TestModelCostsAcceptsStaleSolverGeneration(t *testing.T) {
	snap := `{"version":3,"solver":"lc-opg-0-ancient","entries":[
		{"key":"a","plan":{"model":"ViT"},"cost_ns":2000000}]}`
	costs, err := ModelCosts(writeSnap(t, "stale.json", snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := costs["ViT"]; got != 2*time.Millisecond {
		t.Errorf("stale-generation cost = %v, want 2ms", got)
	}
}

func TestModelCostsRejectsUnknownVersion(t *testing.T) {
	if _, err := ModelCosts(writeSnap(t, "v9.json", `{"version":9,"entries":[]}`)); err == nil {
		t.Error("unknown format version did not error")
	}
}

// TestModelCostsRoundTripsSavedSnapshot: costs recorded by a real cache
// survive Save → ModelCosts, keyed by the plan's model name.
func TestModelCostsRoundTripsSavedSnapshot(t *testing.T) {
	c := New(0)
	prep := &core.Prepared{
		Graph: models.MustByAbbr("ResNet").Build(),
		Plan:  &opg.Plan{Model: "ResNet", ChunkSize: units.MB},
	}
	c.mu.Lock()
	c.insert("key-1", prep, 42*time.Millisecond)
	c.mu.Unlock()
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	costs, err := ModelCosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := costs["ResNet"]; got != 42*time.Millisecond {
		t.Errorf("round-tripped cost = %v, want 42ms (costs: %v)", got, costs)
	}
}
