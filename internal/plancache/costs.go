package plancache

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Per-model solve-cost export for the coordinated-sweep scheduler.
// FormatVersion-3 snapshots record each entry's solve cost; aggregated per
// model, those costs are exactly the skew signal a coordinator needs to
// size and order cell batches (a Llama2-70B solve is ~10^3 slower than a
// CNN's). The export is deliberately forgiving: costs seed a scheduling
// heuristic, not a correctness decision, so anything unusable simply
// contributes nothing and the scheduler falls back to neutral sizing.

// costEntry is the projection of a persisted entry the export decodes —
// the plan's model name and the recorded cost, nothing else, so even
// snapshots whose full plans no longer decode still yield estimates.
type costEntry struct {
	Plan *struct {
		Model string `json:"model"`
	} `json:"plan"`
	Cost time.Duration `json:"cost_ns"`
}

// ModelCosts extracts per-model solve-cost estimates from snapshot files:
// the maximum recorded cost per model name across all files (the max, not
// the mean, because the cold solve is what a sweep cell actually pays).
//
// Unusable inputs degrade to absent estimates rather than errors or —
// worse — zero costs: missing and corrupt files are skipped (the first
// coordinated sweep has no snapshot yet, and a damaged one seeds nothing);
// version-1/2 snapshots predate the cost field and contribute nothing;
// v3/v4 entries without a recorded cost
// (written by a v1/v2-seeded merge) are skipped, so a model never gets a
// zero-cost fast lane just because its history is cost-less. Unlike the
// plan loaders, entries from other solver generations ARE used: a
// previous generation's solve time is a fine estimate of this one's, and
// estimates is all this is. Only an unknown future format version is an
// error.
func ModelCosts(paths ...string) (map[string]time.Duration, error) {
	costs := map[string]time.Duration{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("plancache: costs: %w", err)
		}
		var raw snapshot
		if err := json.Unmarshal(data, &raw); err != nil {
			continue // a corrupt snapshot just contributes no estimates
		}
		switch raw.Version {
		case 1, 2:
			continue // no cost field in these layouts
		case 3, FormatVersion:
			// Both carry cost_ns. The v4 checksum is deliberately not
			// verified here: a bit flip at worst skews a scheduling
			// estimate, and the strict boot-path loader is where
			// integrity is enforced.
		default:
			return nil, fmt.Errorf("plancache: costs: %s has format version %d, want <= %d",
				path, raw.Version, FormatVersion)
		}
		var msgs []json.RawMessage
		if err := json.Unmarshal(raw.Entries, &msgs); err != nil {
			continue // damaged payload: no estimates from this file
		}
		for _, msg := range msgs {
			var en costEntry
			if err := json.Unmarshal(msg, &en); err != nil {
				continue // a damaged entry just contributes no estimate
			}
			if en.Plan == nil || en.Plan.Model == "" || en.Cost <= 0 {
				continue
			}
			if en.Cost > costs[en.Plan.Model] {
				costs[en.Plan.Model] = en.Cost
			}
		}
	}
	return costs, nil
}
