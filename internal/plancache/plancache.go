// Package plancache memoizes FlashMem overlap plans. For a fixed (device
// profile, graph content, solver configuration) triple the LC-OPG solve is
// deterministic, so its result — the fused graph plus the overlap plan —
// can be reused by every later Prepare with the same key: repeated
// Runtime.Load calls, baseline comparisons, and every cell of the
// evaluation sweeps. The cache is a bounded LRU with hit/miss counters and
// optional JSON persistence so benchmark tools warm-start across
// invocations.
package plancache

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// DefaultMaxEntries bounds the cache when New is given a non-positive
// limit. Plans are small (kilobytes) relative to the solves they save.
const DefaultMaxEntries = 512

// Stats counts cache traffic since construction; loads via Load do not
// count as stores.
type Stats = core.CacheStats

// Cache is a thread-safe LRU of prepared plans keyed by core.PlanKey
// fingerprints. It implements core.PlanCache.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	stats   Stats
}

type entry struct {
	key  string
	prep *core.Prepared
}

// New builds a cache bounded to maxEntries (<= 0 uses DefaultMaxEntries).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached preparation for a key, bumping its recency.
func (c *Cache) Get(key string) (*core.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).prep, true
}

// Put stores a preparation, evicting the least recently used entry past
// the bound. The value is retained by reference and must stay immutable.
func (c *Cache) Put(key string, p *core.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Stores++
	c.insert(key, p)
}

// insert adds or refreshes an entry; callers hold c.mu.
func (c *Cache) insert(key string, p *core.Prepared) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).prep = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, prep: p})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}

// compile-time interface check
var _ core.PlanCache = (*Cache)(nil)
