// Package plancache memoizes FlashMem overlap plans. For a fixed (device
// profile, graph content, solver configuration) triple the LC-OPG solve is
// deterministic, so its result — the fused graph plus the overlap plan —
// can be reused by every later Prepare with the same key: repeated
// Runtime.Load calls, baseline comparisons, and every cell of the
// evaluation sweeps. The cache is a bounded, cost-aware LRU — eviction
// prefers the cheapest-to-re-solve plan among the least recently used, so
// a 70B model's multi-second solve outlives a batch of microsecond CNN
// plans — with hit/miss counters and optional JSON persistence so
// benchmark tools warm-start across invocations.
package plancache

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// DefaultMaxEntries bounds the cache when New is given a non-positive
// limit. Plans are small (kilobytes) relative to the solves they save.
const DefaultMaxEntries = 512

// evictionSample is how many entries from the LRU tail the evictor
// considers: the cheapest of the sample is dropped, so recency still rules
// at a coarse grain while an expensive old plan survives a run of cheap
// newcomers. Samples larger than the tail degrade gracefully.
const evictionSample = 8

// Stats counts cache traffic since construction; loads via Load do not
// count as stores.
type Stats = core.CacheStats

// Cache is a thread-safe LRU of prepared plans keyed by core.PlanKey
// fingerprints. It implements core.PlanCache.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	stats   Stats
	inj     *faultinject.Injector // optional persistence fault injection
}

type entry struct {
	key  string
	prep *core.Prepared
	cost time.Duration // recorded solve cost; persisted in snapshots
}

// New builds a cache bounded to maxEntries (<= 0 uses DefaultMaxEntries).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached preparation for a key, bumping its recency.
func (c *Cache) Get(key string) (*core.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).prep, true
}

// Put stores a preparation, evicting past the bound — cost-aware, see
// insert. The value is retained by reference and must stay immutable.
func (c *Cache) Put(key string, p *core.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Stores++
	c.insert(key, p, p.PlanCost())
}

// insert adds or refreshes an entry; callers hold c.mu. Past the bound it
// evicts the cheapest plan among the evictionSample least recently used:
// plain LRU treats a 70B plan that took seconds to solve and a trivial
// plan solved in microseconds as equals, so sweeps over many small models
// would flush exactly the entries that are most expensive to lose.
func (c *Cache) insert(key string, p *core.Prepared, cost time.Duration) {
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*entry)
		en.prep = p
		en.cost = cost
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, prep: p, cost: cost})
	for c.order.Len() > c.max {
		c.evictOne()
	}
}

// evictOne removes the cheapest entry among the evictionSample least
// recently used; on cost ties the older entry goes, preserving strict LRU
// for plans without recorded costs. The front (most recently used) entry
// is never sampled: at cache bounds below the sample size it would be the
// entry Put is inserting right now, and evicting it would turn the store
// into a silent no-op. Callers hold c.mu.
func (c *Cache) evictOne() {
	victim := c.order.Back()
	if victim == nil {
		return
	}
	front := c.order.Front()
	for el, i := victim.Prev(), 1; el != nil && el != front && i < evictionSample; el, i = el.Prev(), i+1 {
		if el.Value.(*entry).cost < victim.Value.(*entry).cost {
			victim = el
		}
	}
	c.order.Remove(victim)
	delete(c.entries, victim.Value.(*entry).key)
	c.stats.Evictions++
}

// Keys returns the cached plan keys, most recently used first. The plan
// server snapshots it right after boot-time LoadAll to mark which keys
// belong to the warm fleet cache, so each request can report whether it
// was served warm (snapshot), cached (solved earlier in-process), or cold.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}

// compile-time interface check
var _ core.PlanCache = (*Cache)(nil)
