package plancache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/units"
)

// testOptions returns a small solver budget so tests stay quick. The
// branch budget binds long before the generous wall-clock budget, so two
// solves of one model are deterministic and comparable — a tight
// SolveTimeout would make the CP cutoff depend on scheduler noise.
func testOptions() core.Options {
	opts := core.DefaultOptions(device.OnePlus12())
	opts.Config.SolveTimeout = 5 * time.Second
	opts.Config.MaxBranches = 500
	return opts
}

func TestCacheHitReturnsIdenticalPlan(t *testing.T) {
	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	e := core.NewEngine(opts)
	g := models.MustByAbbr("ResNet").Build()

	cold, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first Prepare unexpectedly served from cache")
	}
	warm, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second Prepare missed the cache")
	}
	// The hit shares the cold solve's graph and plan — byte-identical by
	// construction, checked structurally too.
	if warm.Plan != cold.Plan || warm.Graph != cold.Graph {
		t.Error("cache hit returned different objects than the cold solve")
	}
	if !reflect.DeepEqual(warm.Plan.Weights, cold.Plan.Weights) {
		t.Error("per-weight schedules differ")
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store / 1 entry", s)
	}

	// A second engine with the same configuration shares the entry; a
	// different solver configuration must not.
	same := core.NewEngine(opts)
	p, err := same.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromCache {
		t.Error("identical engine configuration missed the cache")
	}
	diff := testOptions()
	diff.Cache = cache
	diff.Config.Lambda = 0.5
	p2, err := core.NewEngine(diff).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if p2.FromCache {
		t.Error("different solver config falsely hit the cache")
	}
}

func TestCacheExecutionMatchesColdSolve(t *testing.T) {
	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	warm := core.NewEngine(opts)
	noCache := core.NewEngine(testOptions())
	g := models.MustByAbbr("DepthA-S").Build()

	if _, err := warm.Prepare(g); err != nil { // populate
		t.Fatal(err)
	}
	hit, err := warm.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.FromCache {
		t.Fatal("expected cache hit")
	}
	cold, err := noCache.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	hitRep, _ := warm.Execute(hit)
	coldRep, _ := noCache.Execute(cold)
	if hitRep.Integrated != coldRep.Integrated || hitRep.Mem != coldRep.Mem {
		t.Errorf("cached execution %+v != cold execution %+v", hitRep, coldRep)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	p := &core.Prepared{}
	c.Put("a", p)
	c.Put("b", p)
	if _, ok := c.Get("a"); !ok { // bump "a": now "b" is the LRU entry
		t.Fatal("a missing")
	}
	c.Put("c", p) // evicts "b"
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.json")

	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	e := core.NewEngine(opts)
	g := models.MustByAbbr("DepthA-S").Build()
	cold, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := e.PlanKey(cold.Graph)
	_ = key
	if !ok {
		t.Fatal("engine not fingerprintable")
	}
	if err := cache.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh process: load the snapshot, expect a hit without solving.
	reloaded := New(0)
	if err := reloaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != cache.Len() {
		t.Fatalf("reloaded %d entries, want %d", reloaded.Len(), cache.Len())
	}
	opts2 := testOptions()
	opts2.Cache = reloaded
	e2 := core.NewEngine(opts2)
	warm, err := e2.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("reloaded cache missed")
	}
	if !reflect.DeepEqual(warm.Plan, cold.Plan) {
		t.Error("persisted plan differs from cold solve")
	}
	if !reflect.DeepEqual(warm.Graph, cold.Graph) {
		t.Error("persisted fused graph differs from cold solve")
	}

	// Executing the round-tripped preparation reproduces the cold run.
	warmRep, _ := e2.Execute(warm)
	coldRep, _ := e.Execute(cold)
	if warmRep.Integrated != coldRep.Integrated || warmRep.Mem != coldRep.Mem {
		t.Errorf("round-tripped execution %+v != cold %+v", warmRep, coldRep)
	}
}

func TestLoadMissingFileIsColdStart(t *testing.T) {
	c := New(0)
	if err := c.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing snapshot should not error: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("entries = %d, want 0", c.Len())
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.json")
	c := New(0)
	c.Put("k", &core.Prepared{Graph: models.MustByAbbr("ResNet").Build()})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field to a future value.
	data := fmt.Sprintf(`{"version":%d,"entries":[]}`, FormatVersion+1)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(0).Load(path); err == nil {
		t.Fatal("version mismatch not rejected")
	}
}

func TestLoadRejectsEntryWithoutPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	data := fmt.Sprintf(`{"version":%d,"entries":[{"key":"k","graph":{"name":"g","dtype":0,"nodes":[]},"plan":null}]}`, FormatVersion)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(0).Load(path); err == nil {
		t.Fatal("nil-plan entry not rejected")
	}
}

func TestCustomCapacityWithoutKeySkipsCache(t *testing.T) {
	cache := New(0)
	flat := func(n *graph.Node) units.Bytes { return 4 * units.MB }
	opts := testOptions()
	opts.Cache = cache
	opts.Capacity = flat
	e := core.NewEngine(opts)
	g := models.MustByAbbr("ResNet").Build()
	if _, err := e.Prepare(g); err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.FromCache || cache.Len() != 0 {
		t.Error("anonymous custom capacity must bypass the cache")
	}

	// Naming the capacity makes the engine fingerprintable again.
	opts.CapacityKey = "flat-4mb"
	e2 := core.NewEngine(opts)
	if _, err := e2.Prepare(g); err != nil {
		t.Fatal(err)
	}
	p2, err := e2.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.FromCache {
		t.Error("keyed custom capacity should cache")
	}
}
