package plancache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/units"
)

// testOptions returns a small solver budget so tests stay quick. The
// branch budget binds long before the generous wall-clock budget, so two
// solves of one model are deterministic and comparable — a tight
// SolveTimeout would make the CP cutoff depend on scheduler noise.
func testOptions() core.Options {
	opts := core.DefaultOptions(device.OnePlus12())
	opts.Config.SolveTimeout = 5 * time.Second
	opts.Config.MaxBranches = 500
	return opts
}

func TestCacheHitReturnsIdenticalPlan(t *testing.T) {
	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	e := core.NewEngine(opts)
	g := models.MustByAbbr("ResNet").Build()

	cold, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first Prepare unexpectedly served from cache")
	}
	warm, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second Prepare missed the cache")
	}
	// The hit shares the cold solve's graph and plan — byte-identical by
	// construction, checked structurally too.
	if warm.Plan != cold.Plan || warm.Graph != cold.Graph {
		t.Error("cache hit returned different objects than the cold solve")
	}
	if !reflect.DeepEqual(warm.Plan.Weights, cold.Plan.Weights) {
		t.Error("per-weight schedules differ")
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store / 1 entry", s)
	}

	// A second engine with the same configuration shares the entry; a
	// different solver configuration must not.
	same := core.NewEngine(opts)
	p, err := same.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromCache {
		t.Error("identical engine configuration missed the cache")
	}
	diff := testOptions()
	diff.Cache = cache
	diff.Config.Lambda = 0.5
	p2, err := core.NewEngine(diff).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if p2.FromCache {
		t.Error("different solver config falsely hit the cache")
	}
}

func TestCacheExecutionMatchesColdSolve(t *testing.T) {
	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	warm := core.NewEngine(opts)
	noCache := core.NewEngine(testOptions())
	g := models.MustByAbbr("DepthA-S").Build()

	if _, err := warm.Prepare(g); err != nil { // populate
		t.Fatal(err)
	}
	hit, err := warm.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.FromCache {
		t.Fatal("expected cache hit")
	}
	cold, err := noCache.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	hitRep, _ := warm.Execute(hit)
	coldRep, _ := noCache.Execute(cold)
	if hitRep.Integrated != coldRep.Integrated || hitRep.Mem != coldRep.Mem {
		t.Errorf("cached execution %+v != cold execution %+v", hitRep, coldRep)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	p := &core.Prepared{}
	c.Put("a", p)
	c.Put("b", p)
	if _, ok := c.Get("a"); !ok { // bump "a": now "b" is the LRU entry
		t.Fatal("a missing")
	}
	c.Put("c", p) // evicts "b"
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New(0)
	p := &core.Prepared{}
	c.Put("a", p)
	c.Put("b", p)
	c.Put("c", p)
	if _, ok := c.Get("a"); !ok { // bump "a" to the front
		t.Fatal("a missing")
	}
	got := c.Keys()
	want := []string{"a", "c", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keys() = %v, want MRU-first %v", got, want)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.json")

	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	e := core.NewEngine(opts)
	g := models.MustByAbbr("DepthA-S").Build()
	cold, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := e.PlanKey(cold.Graph)
	_ = key
	if !ok {
		t.Fatal("engine not fingerprintable")
	}
	if err := cache.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh process: load the snapshot, expect a hit without solving.
	reloaded := New(0)
	if err := reloaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != cache.Len() {
		t.Fatalf("reloaded %d entries, want %d", reloaded.Len(), cache.Len())
	}
	opts2 := testOptions()
	opts2.Cache = reloaded
	e2 := core.NewEngine(opts2)
	warm, err := e2.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("reloaded cache missed")
	}
	if !reflect.DeepEqual(warm.Plan, cold.Plan) {
		t.Error("persisted plan differs from cold solve")
	}
	if !reflect.DeepEqual(warm.Graph, cold.Graph) {
		t.Error("persisted fused graph differs from cold solve")
	}

	// Executing the round-tripped preparation reproduces the cold run.
	warmRep, _ := e2.Execute(warm)
	coldRep, _ := e.Execute(cold)
	if warmRep.Integrated != coldRep.Integrated || warmRep.Mem != coldRep.Mem {
		t.Errorf("round-tripped execution %+v != cold %+v", warmRep, coldRep)
	}
}

func TestLoadMissingFileIsColdStart(t *testing.T) {
	c := New(0)
	if err := c.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing snapshot should not error: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("entries = %d, want 0", c.Len())
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.json")
	c := New(0)
	c.Put("k", &core.Prepared{Graph: models.MustByAbbr("ResNet").Build()})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field to a future value.
	data := fmt.Sprintf(`{"version":%d,"entries":[]}`, FormatVersion+1)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(0).Load(path); err == nil {
		t.Fatal("version mismatch not rejected")
	}
}

// writeV4 hand-crafts a checksum-valid FormatVersion snapshot from raw
// entries JSON, bypassing Save, so tests can build stale-solver and
// damaged-entry payloads whose checksums still verify.
func writeV4(t *testing.T, path, solver, entriesJSON string) {
	t.Helper()
	data := fmt.Sprintf(`{"version":%d,"solver":%q,"checksum":%q,"entries":%s}`,
		FormatVersion, solver, checksum([]byte(entriesJSON)), entriesJSON)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A nil-plan entry in a checksum-valid snapshot is in-payload damage the
// CRC cannot see; strict decoding must catch it, and the boot path must
// quarantine the file and start cold rather than reject the boot.
func TestLoadQuarantinesEntryWithoutPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	writeV4(t, path, opg.SolverVersion,
		`[{"key":"k","graph":{"name":"g","dtype":0,"nodes":[]},"plan":null}]`)
	c := New(0)
	stats, err := c.LoadAll(path)
	if err != nil {
		t.Fatalf("corrupt snapshot must degrade, not error: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("corrupt snapshot loaded %d entries", c.Len())
	}
	if stats.BadFiles != 1 || stats.Loaded != 0 || stats.Dropped != 0 {
		t.Errorf("stats = %+v, want 1 bad file, nothing loaded or dropped", stats)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt snapshot left in the boot path")
	}

	// The merge path has no cold-start fallback — the same file fails hard.
	bad := filepath.Join(t.TempDir(), "merge-src.json")
	writeV4(t, bad, opg.SolverVersion,
		`[{"key":"k","graph":{"name":"g","dtype":0,"nodes":[]},"plan":null}]`)
	if _, err := MergeSnapshotFiles(filepath.Join(t.TempDir(), "out.json"), bad); err == nil {
		t.Error("merge accepted a nil-plan entry")
	}
}

func TestLoadSkipsStaleSolverSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	writeV4(t, path, "lc-opg-0",
		`[{"key":"k","graph":{"name":"g","dtype":0,"nodes":[]},"plan":{"chunk_size":1}}]`)
	c := New(0)
	stats, err := c.LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("stale-solver entries loaded: %d", c.Len())
	}
	if stats.Dropped != 1 || stats.Loaded != 0 {
		t.Errorf("stats = %+v, want 1 dropped / 0 loaded", stats)
	}
}

// saveAsV3 rewrites a cache snapshot into the version-3 layout — same
// entry shape as v4, no checksum — to exercise the pre-checksum load path
// without keeping stale fixture files around.
func saveAsV3(t *testing.T, c *Cache, path string) {
	t.Helper()
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	snap["version"] = 3
	delete(snap, "checksum")
	out, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// seedCache solves one model into a fresh cache so persistence tests have
// a real entry to snapshot.
func seedCache(t *testing.T) *Cache {
	t.Helper()
	c := New(0)
	opts := testOptions()
	opts.Cache = c
	e := core.NewEngine(opts)
	if _, err := e.Prepare(models.MustByAbbr("ResNet").Build()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVersion3SnapshotStillLoads: a fresh v3 file was written by the
// current solver generation; dropping it just because it predates the
// checksum would cold-start fleets for no reason.
func TestVersion3SnapshotStillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v3.json")
	saveAsV3(t, seedCache(t), path)
	c := New(0)
	stats, err := c.LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || stats.Loaded != 1 || stats.BadFiles != 0 {
		t.Errorf("v3 load: len=%d stats=%+v, want 1 loaded", c.Len(), stats)
	}
}

// TestTruncatedV3SnapshotDegradesToColdStart: the satellite contract — a
// truncated pre-checksum snapshot handed to LoadAll quarantines and boots
// cold with a counted bad file, never an error.
func TestTruncatedV3SnapshotDegradesToColdStart(t *testing.T) {
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.json")
	saveAsV3(t, seedCache(t), whole)
	raw, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plans.json")
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(0)
	stats, err := c.LoadAll(path)
	if err != nil {
		t.Fatalf("truncated snapshot must degrade to cold start, not error: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("truncated snapshot loaded %d entries", c.Len())
	}
	if stats.BadFiles != 1 || stats.Loaded != 0 {
		t.Errorf("stats = %+v, want 1 bad file / 0 loaded", stats)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
}

// TestBitFlipQuarantinedByChecksum: single-byte damage inside the entries
// payload of a real Save file — valid JSON or not — fails the v4 checksum
// and quarantines.
func TestBitFlipQuarantinedByChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	c := seedCache(t)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the entries payload, past the header fields.
	idx := bytesIndex(raw, []byte(`"entries":`)) + len(`"entries":`) + 40
	raw[idx] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New(0)
	stats, err := fresh.LoadAll(path)
	if err != nil {
		t.Fatalf("bit-flipped snapshot must degrade, not error: %v", err)
	}
	if fresh.Len() != 0 || stats.BadFiles != 1 {
		t.Errorf("bit flip: len=%d stats=%+v, want quarantine + cold start", fresh.Len(), stats)
	}

	// The merge path treats the same file as a hard error: a damaged shard
	// snapshot means lost sweep work, not a colder cache.
	if _, err := MergeSnapshotFiles(filepath.Join(t.TempDir(), "out.json"), path+".bad"); err == nil {
		t.Error("merge accepted a checksum-mismatched snapshot")
	}
}

// bytesIndex is strings.Index for byte slices without an extra import.
func bytesIndex(haystack, needle []byte) int {
	return strings.Index(string(haystack), string(needle))
}

// saveAsV1 rewrites a cache snapshot into the version-1 layout (no solver
// field), optionally corrupting some entries, to exercise the migration
// path without keeping stale fixture files around.
func saveAsV1(t *testing.T, c *Cache, path string, corrupt func([]map[string]any)) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "v2.json")
	if err := c.Save(tmp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	snap["version"] = 1
	delete(snap, "solver")
	if corrupt != nil {
		var entries []map[string]any
		for _, e := range snap["entries"].([]any) {
			entries = append(entries, e.(map[string]any))
		}
		corrupt(entries)
	}
	out, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVersion1SnapshotDegradesToColdStart(t *testing.T) {
	cache := New(0)
	opts := testOptions()
	opts.Cache = cache
	e := core.NewEngine(opts)
	for _, abbr := range []string{"ResNet", "DepthA-S"} {
		if _, err := e.Prepare(models.MustByAbbr(abbr).Build()); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("seed cache has %d entries, want 2", cache.Len())
	}

	// A version-1 file predates the solver-version key salt, so none of
	// its entries could ever hit; they must all be dropped — with a count,
	// not an error — instead of polluting the LRU and faking a warm start.
	clean := filepath.Join(t.TempDir(), "v1-clean.json")
	saveAsV1(t, cache, clean, nil)
	c1 := New(0)
	stats, err := c1.LoadAll(clean)
	if err != nil {
		t.Fatalf("v1 snapshot must not be rejected: %v", err)
	}
	if c1.Len() != 0 || stats.Loaded != 0 || stats.Dropped != 2 {
		t.Errorf("v1 load: len=%d stats=%+v, want 0 loaded / 2 dropped", c1.Len(), stats)
	}

	// Even a damaged v1 file degrades to a cold start rather than an error.
	damaged := filepath.Join(t.TempDir(), "v1-damaged.json")
	saveAsV1(t, cache, damaged, func(entries []map[string]any) {
		entries[0]["plan"] = nil
	})
	c2 := New(0)
	stats, err = c2.LoadAll(damaged)
	if err != nil {
		t.Fatalf("damaged v1 snapshot must not be rejected: %v", err)
	}
	if c2.Len() != 0 || stats.Dropped != 2 {
		t.Errorf("damaged v1 load: len=%d stats=%+v, want 0 loaded / 2 dropped", c2.Len(), stats)
	}
}

func TestLoadAllMergesShardSnapshots(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	shardModels := [][]string{{"ResNet"}, {"DepthA-S"}}
	var paths []string
	for i, set := range shardModels {
		c := New(0)
		o := opts
		o.Cache = c
		e := core.NewEngine(o)
		for _, abbr := range set {
			if _, err := e.Prepare(models.MustByAbbr(abbr).Build()); err != nil {
				t.Fatal(err)
			}
		}
		p := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := c.Save(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	merged := New(0)
	stats, err := merged.LoadAll(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 || stats.Loaded != 2 || stats.Files != 2 {
		t.Errorf("merged len=%d stats=%+v, want 2 entries from 2 files", merged.Len(), stats)
	}

	// The merged cache warm-starts both models with zero re-solves.
	o := opts
	o.Cache = merged
	e := core.NewEngine(o)
	for _, abbr := range []string{"ResNet", "DepthA-S"} {
		p, err := e.Prepare(models.MustByAbbr(abbr).Build())
		if err != nil {
			t.Fatal(err)
		}
		if !p.FromCache {
			t.Errorf("%s not served from merged cache", abbr)
		}
	}
	if s := merged.Stats(); s.Misses != 0 {
		t.Errorf("warm start recorded %d misses, want 0", s.Misses)
	}
}

func TestMergeSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()

	build := func(name string, abbrs ...string) string {
		c := New(0)
		o := opts
		o.Cache = c
		e := core.NewEngine(o)
		for _, abbr := range abbrs {
			if _, err := e.Prepare(models.MustByAbbr(abbr).Build()); err != nil {
				t.Fatal(err)
			}
		}
		p := filepath.Join(dir, name)
		if err := c.Save(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// ResNet appears in both shards with an identical deterministic plan:
	// last writer wins, no conflict.
	a := build("a.json", "ResNet")
	b := build("b.json", "ResNet", "DepthA-S")

	out := filepath.Join(dir, "merged.json")
	stats, err := MergeSnapshotFiles(out, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 || stats.Replaced != 1 || stats.Files != 2 {
		t.Errorf("stats = %+v, want 2 entries / 1 replaced / 2 files", stats)
	}
	c := New(0)
	if err := c.Load(out); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("merged snapshot has %d entries, want 2", c.Len())
	}

	// A key mapping to two different plans is corruption, not a merge.
	conflicted := filepath.Join(dir, "conflict.json")
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	en := snap["entries"].([]any)[0].(map[string]any)
	en["plan"].(map[string]any)["ChunkSize"] = float64(12345)
	// Re-seal the checksum over the mutated entries so the conflict (not the
	// corruption) path is what fires.
	entJSON, err := json.Marshal(snap["entries"])
	if err != nil {
		t.Fatal(err)
	}
	snap["checksum"] = checksum(entJSON)
	mut, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(conflicted, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = MergeSnapshotFiles(filepath.Join(dir, "bad.json"), a, conflicted)
	if err == nil {
		t.Fatal("conflicting plans under one key must fail the merge")
	}
	// The error must name both snapshot files, so an operator merging
	// dozens of shards knows which one to re-run or drop.
	if !strings.Contains(err.Error(), filepath.Base(a)) || !strings.Contains(err.Error(), filepath.Base(conflicted)) {
		t.Errorf("conflict error %q does not name both snapshot files (%s, %s)",
			err, filepath.Base(a), filepath.Base(conflicted))
	}

	// A missing shard snapshot must not silently merge colder.
	if _, err := MergeSnapshotFiles(filepath.Join(dir, "x.json"), a, filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing input snapshot must fail the merge")
	}
}

func TestCustomCapacityWithoutKeySkipsCache(t *testing.T) {
	cache := New(0)
	flat := func(n *graph.Node) units.Bytes { return 4 * units.MB }
	opts := testOptions()
	opts.Cache = cache
	opts.Capacity = flat
	e := core.NewEngine(opts)
	g := models.MustByAbbr("ResNet").Build()
	if _, err := e.Prepare(g); err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.FromCache || cache.Len() != 0 {
		t.Error("anonymous custom capacity must bypass the cache")
	}

	// Naming the capacity makes the engine fingerprintable again.
	opts.CapacityKey = "flat-4mb"
	e2 := core.NewEngine(opts)
	if _, err := e2.Prepare(g); err != nil {
		t.Fatal(err)
	}
	p2, err := e2.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.FromCache {
		t.Error("keyed custom capacity should cache")
	}
}

func TestLoadReportsEvictionsPastBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	g := models.MustByAbbr("ResNet").Build()
	src := New(0)
	for i := 0; i < 3; i++ {
		src.Put(fmt.Sprintf("k%d", i), &core.Prepared{Graph: g, Plan: &opg.Plan{Model: "ResNet", ChunkSize: units.MB}})
	}
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}

	// A snapshot larger than the cache bound cannot warm-start completely;
	// the load must say so instead of silently evicting.
	dst := New(2)
	stats, err := dst.LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 3 || stats.Evicted != 1 {
		t.Errorf("stats = %+v, want 3 loaded / 1 evicted", stats)
	}
	if dst.Len() != 2 {
		t.Errorf("len = %d, want the bound 2", dst.Len())
	}
}

func costedPrep(solve time.Duration) *core.Prepared {
	return &core.Prepared{
		Graph: models.MustByAbbr("DepthA-S").Build(),
		Plan: &opg.Plan{ChunkSize: units.MB,
			Stats: opg.SolveStats{SolveTime: solve}},
	}
}

func TestCostAwareEvictionKeepsExpensivePlans(t *testing.T) {
	c := New(3)
	c.Put("llama70b", costedPrep(5*time.Second)) // oldest but most expensive
	c.Put("cnn-a", costedPrep(2*time.Millisecond))
	c.Put("cnn-b", costedPrep(3*time.Millisecond))

	// Plain LRU would evict llama70b here; cost-aware eviction must drop
	// the cheapest of the tail sample instead.
	c.Put("cnn-c", costedPrep(4*time.Millisecond))
	if _, ok := c.Get("llama70b"); !ok {
		t.Fatal("expensive plan evicted before cheap ones")
	}
	if _, ok := c.Get("cnn-a"); ok {
		t.Error("cheapest tail entry should have been evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction / 3 entries", s)
	}
}

func TestCostAwareEvictionTiesFallBackToLRU(t *testing.T) {
	// Equal (zero) costs must degrade to plain LRU: the oldest entry goes.
	c := New(2)
	p := &core.Prepared{}
	c.Put("old", p)
	c.Put("mid", p)
	c.Put("new", p)
	if _, ok := c.Get("old"); ok {
		t.Error("tie-break must evict the least recently used entry")
	}
	if _, ok := c.Get("mid"); !ok {
		t.Error("newer tied entry evicted")
	}
}

func TestSolveCostSurvivesSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	src := New(0)
	src.Put("expensive", costedPrep(7*time.Second))
	src.Put("cheap-a", costedPrep(time.Millisecond))
	src.Put("cheap-b", costedPrep(time.Millisecond))
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}

	// Costs must ride the snapshot: after a reload into a smaller cache,
	// pressure evicts a reloaded cheap plan, never the expensive one.
	dst := New(3)
	if err := dst.Load(path); err != nil {
		t.Fatal(err)
	}
	dst.Put("cheap-c", costedPrep(time.Millisecond))
	if _, ok := dst.Get("expensive"); !ok {
		t.Fatal("persisted cost ignored: expensive plan evicted on reload pressure")
	}
}

func TestEvictionNeverDropsTheJustInsertedEntry(t *testing.T) {
	// At bounds below the eviction sample size, the tail walk must stop
	// before the MRU slot: otherwise inserting a cheap plan into a cache
	// full of expensive ones would evict the new entry itself, turning the
	// store into a silent no-op.
	c := New(3)
	c.Put("big-a", costedPrep(5*time.Second))
	c.Put("big-b", costedPrep(5*time.Second))
	c.Put("big-c", costedPrep(5*time.Second))
	c.Put("cheap-new", costedPrep(time.Millisecond))
	if _, ok := c.Get("cheap-new"); !ok {
		t.Fatal("just-inserted entry was evicted by its own Put")
	}
	if _, ok := c.Get("big-a"); ok {
		t.Error("oldest equal-cost entry should have been evicted instead")
	}
}
