package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/units"
)

// buildResNet50 lowers the standard ResNet-50 (He et al.) at 224×224 with
// BatchNorm folded into the preceding convolution, as mobile deployments do.
// Stage plan [3,4,6,3] bottlenecks; 25.6 M params, ~4.1 GMACs.
func buildResNet50() *graph.Graph {
	stageBlocks := []int{3, 4, 6, 3}
	totalBlocks := 0
	for _, n := range stageBlocks {
		totalBlocks += n
	}
	return buildExact(141, totalBlocks, func(fill *distributor) *builder {
		b := newBuilder("ResNet50")
		b.conv("conv1", 3, 64, 7, 224, 224, 2)
		b.elemwise("conv1.relu", graph.ReLU, 64*112*112)
		b.chain("maxpool", graph.Part{
			Kind: graph.Pool, InBytes: b.act(64 * 112 * 112), OutBytes: b.act(64 * 56 * 56),
			MACs: units.MACs(64 * 56 * 56 * 9),
		})

		cin := int64(64)
		spatial := int64(56)
		for si, blocks := range stageBlocks {
			width := int64(64) << si // 64,128,256,512
			cout := 4 * width
			for bi := 0; bi < blocks; bi++ {
				stride := int64(1)
				if bi == 0 && si > 0 {
					stride = 2
				}
				prefix := fmt.Sprintf("layer%d.%d", si+1, bi)
				in := b.last
				outSp := spatial / stride

				b.conv(prefix+".conv1", cin, width, 1, spatial, spatial, 1)
				b.elemwise(prefix+".relu1", graph.ReLU, width*spatial*spatial)
				b.conv(prefix+".conv2", width, width, 3, spatial, spatial, stride)
				b.elemwise(prefix+".relu2", graph.ReLU, width*outSp*outSp)
				b.conv(prefix+".conv3", width, cout, 1, outSp, outSp, 1)
				main := b.last

				if cin != cout || stride != 1 {
					// Downsample branch re-rooted at the block input.
					b.last = in
					b.conv(prefix+".downsample", cin, cout, 1, spatial, spatial, stride)
					short := b.last
					b.join(prefix+".add", []graph.NodeID{main, short}, graph.Part{
						Kind: graph.Add, InBytes: b.act(2 * cout * outSp * outSp),
						OutBytes: b.act(cout * outSp * outSp), MACs: units.MACs(cout * outSp * outSp),
					})
				} else {
					b.join(prefix+".add", []graph.NodeID{main, in}, graph.Part{
						Kind: graph.Add, InBytes: b.act(2 * cout * outSp * outSp),
						OutBytes: b.act(cout * outSp * outSp), MACs: units.MACs(cout * outSp * outSp),
					})
				}
				b.elemwise(prefix+".relu3", graph.ReLU, cout*outSp*outSp)
				b.fillLayout(fill.next(), cout*outSp*outSp)

				cin = cout
				spatial = outSp
			}
		}

		b.chain("avgpool", graph.Part{
			Kind: graph.Pool, InBytes: b.act(cin * spatial * spatial), OutBytes: b.act(cin),
			MACs: units.MACs(cin * spatial * spatial),
		})
		b.matmul("fc", 1, cin, 1000)
		b.fillLayout(fill.rest(), cin)
		return b
	})
}
