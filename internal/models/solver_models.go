package models

import "repro/internal/graph"

// Table 4 evaluates LC-OPG solver runtime on models beyond the Table 6
// execution set: ViT-8B, Llama2-13B, and Llama2-70B. These are solver-only
// workloads — far too large to execute on any phone — so their specs carry
// no Table 6 characteristics, just published parameter counts.
//
// Llama2's grouped-query attention plus gated MLP lands within a few
// percent of 12·d²·blocks parameters per block, the same budget as a GPT
// block at equal width, so the GPT lowering is used with Llama2 dimensions.

// SolverOnly returns the three Table 4-only model specs.
func SolverOnly() []Spec {
	return []Spec{
		{Name: "ViT-8B", Abbr: "ViT-8B", InputType: "Image", Task: "Classification",
			PaperParamsM: 8000, PaperLayers: 2345,
			build: func() *graph.Graph {
				return buildViTLike("ViT-8B", vitCfg{
					d: 3584, blocks: 52, heads: 56, tokens: 257,
					patch: 14, image: 224, classes: 1000,
				}, 2345)
			}},
		{Name: "Llama2-13B", Abbr: "Llama2-13B", InputType: "Text", Task: "NLP",
			PaperParamsM: 13000, PaperLayers: 1805,
			build: func() *graph.Graph {
				return buildGPT("Llama2-13B", gptCfg{
					d: 5120, blocks: 40, heads: 40, seq: 128, vocab: 32000, maxPos: 4096,
				}, 1805)
			}},
		{Name: "Llama2-70B", Abbr: "Llama2-70B", InputType: "Text", Task: "NLP",
			PaperParamsM: 70000, PaperLayers: 3605,
			build: func() *graph.Graph {
				return buildGPT("Llama2-70B", gptCfg{
					d: 8192, blocks: 80, heads: 64, seq: 128, vocab: 32000, maxPos: 4096,
				}, 3605)
			}},
	}
}

// Table4Set returns the six models of Table 4 in row order.
func Table4Set() []Spec {
	out := []Spec{
		MustByAbbr("GPTN-S"),
		MustByAbbr("GPTN-1.3B"),
		MustByAbbr("GPTN-2.7B"),
	}
	return append(out, SolverOnly()...)
}
