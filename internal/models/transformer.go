package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/units"
)

// attnCfg parameterizes one lowered attention/MLP transformer block.
type attnCfg struct {
	seq    int64 // tokens at this block
	d      int64 // model width
	heads  int64
	ff     int64 // feed-forward width (usually 4d)
	window int64 // attention window in tokens; 0 = full attention
	kvSeq  int64 // cross-attention source length; 0 = self-attention
	kvDim  int64 // cross-attention source width; 0 = d
}

func (c attnCfg) attnSpan() int64 {
	if c.kvSeq > 0 {
		return c.kvSeq
	}
	if c.window > 0 && c.window < c.seq {
		return c.window
	}
	return c.seq
}

// attention emits the lowered attention sub-graph: QKV projections, head
// reshapes, scores, softmax, context, output projection, and residual.
// It returns the residual output node.
func (b *builder) attention(prefix string, c attnCfg, skip graph.NodeID) graph.NodeID {
	span := c.attnSpan()
	kvDim := c.kvDim
	if kvDim == 0 {
		kvDim = c.d
	}
	kvSeq := c.seq
	if c.kvSeq > 0 {
		kvSeq = c.kvSeq
	}

	b.layernorm(prefix+".ln", c.seq, c.d)
	b.matmul(prefix+".q", c.seq, c.d, c.d)
	b.matmul(prefix+".k", kvSeq, kvDim, c.d)
	b.matmul(prefix+".v", kvSeq, kvDim, c.d)
	b.layout(0, c.seq*c.d) // reshape q into heads
	b.layout(1, kvSeq*c.d) // transpose k
	b.layout(0, kvSeq*c.d) // reshape v

	scoreElems := c.heads * c.seq * span
	b.chain(prefix+".scores", graph.Part{
		Kind:     graph.Attention,
		InBytes:  b.act(c.seq*c.d + kvSeq*c.d),
		OutBytes: b.act(scoreElems),
		MACs:     units.MACs(c.seq * span * c.d),
	})
	b.chain(prefix+".softmax", graph.Part{
		Kind:     graph.Softmax,
		InBytes:  b.act(scoreElems),
		OutBytes: b.act(scoreElems),
		MACs:     units.MACs(3 * scoreElems),
	})
	b.chain(prefix+".context", graph.Part{
		Kind:     graph.Attention,
		InBytes:  b.act(scoreElems + kvSeq*c.d),
		OutBytes: b.act(c.seq * c.d),
		MACs:     units.MACs(c.seq * span * c.d),
	})
	b.layout(1, c.seq*c.d) // transpose heads back
	b.layout(0, c.seq*c.d) // merge heads
	b.matmul(prefix+".proj", c.seq, c.d, c.d)
	return b.residual(prefix+".add", skip, c.seq*c.d)
}

// mlp emits the LayerNorm → FC → GeLU → FC → residual tail of a block.
func (b *builder) mlp(prefix string, c attnCfg, skip graph.NodeID) graph.NodeID {
	b.layernorm(prefix+".ln", c.seq, c.d)
	b.matmul(prefix+".fc1", c.seq, c.d, c.ff)
	b.elemwise(prefix+".gelu", graph.GeLU, c.seq*c.ff)
	b.matmul(prefix+".fc2", c.seq, c.ff, c.d)
	return b.residual(prefix+".add", skip, c.seq*c.d)
}

// transformerBlock emits one full pre-norm block plus fill layout ops.
func (b *builder) transformerBlock(prefix string, c attnCfg, fill int) {
	skip := b.last
	mid := b.attention(prefix+".attn", c, skip)
	b.mlp(prefix+".mlp", c, mid)
	b.fillLayout(fill, c.seq*c.d)
}

// decoderBlock emits a block with self-attention, cross-attention over an
// encoder sequence, and an MLP (Whisper decoder, SAM-2 memory attention).
func (b *builder) decoderBlock(prefix string, c attnCfg, encSeq, encDim int64, fill int) {
	skip := b.last
	selfCfg := c
	selfCfg.kvSeq, selfCfg.kvDim = 0, 0
	mid := b.attention(prefix+".self", selfCfg, skip)
	crossCfg := c
	crossCfg.kvSeq, crossCfg.kvDim = encSeq, encDim
	mid = b.attention(prefix+".cross", crossCfg, mid)
	b.mlp(prefix+".mlp", c, mid)
	b.fillLayout(fill, c.seq*c.d)
}

// embeddingOp emits a table-lookup embedding (no MACs).
func (b *builder) embeddingOp(name string, rows, d, seq int64) graph.NodeID {
	return b.chain(name, graph.Part{
		Kind:     graph.Embedding,
		Weight:   b.weight(rows * d),
		InBytes:  b.act(seq),
		OutBytes: b.act(seq * d),
	})
}

// --- GPT-Neo family (§5.1, Table 6 rows 1-3) ---

type gptCfg struct {
	d, blocks, heads, seq, vocab, maxPos int64
}

func buildGPT(name string, cfg gptCfg, targetLayers int) *graph.Graph {
	return buildExact(targetLayers, int(cfg.blocks), func(fill *distributor) *builder {
		b := newBuilder(name)
		b.embeddingOp("wte", cfg.vocab, cfg.d, cfg.seq)
		wte := b.last
		b.embeddingOp("wpe", cfg.maxPos, cfg.d, cfg.seq)
		b.residual("embed.add", wte, cfg.seq*cfg.d)
		bc := attnCfg{seq: cfg.seq, d: cfg.d, heads: cfg.heads, ff: 4 * cfg.d}
		for i := int64(0); i < cfg.blocks; i++ {
			b.transformerBlock(fmt.Sprintf("h%d", i), bc, fill.next())
		}
		b.layernorm("ln_f", cfg.seq, cfg.d)
		b.matmul("lm_head", cfg.seq, cfg.d, cfg.vocab)
		b.fillLayout(fill.rest(), cfg.seq*cfg.d)
		return b
	})
}

func buildGPTNeoSmall() *graph.Graph {
	return buildGPT("GPTNeo-Small", gptCfg{d: 768, blocks: 12, heads: 12, seq: 128, vocab: 50257, maxPos: 2048}, 606)
}

func buildGPTNeo13B() *graph.Graph {
	return buildGPT("GPTNeo-1.3B", gptCfg{d: 2048, blocks: 24, heads: 16, seq: 128, vocab: 50257, maxPos: 2048}, 1110)
}

func buildGPTNeo27B() *graph.Graph {
	return buildGPT("GPTNeo-2.7B", gptCfg{d: 2560, blocks: 32, heads: 20, seq: 128, vocab: 50257, maxPos: 2048}, 1446)
}

// --- ViT family ---

type vitCfg struct {
	d, blocks, heads, tokens int64
	patch, image             int64
	classes                  int64
}

func buildViTLike(name string, cfg vitCfg, targetLayers int) *graph.Graph {
	return buildExact(targetLayers, int(cfg.blocks), func(fill *distributor) *builder {
		b := newBuilder(name)
		b.conv("patch_embed", 3, cfg.d, cfg.patch, cfg.image, cfg.image, cfg.patch)
		b.chain("cls_concat", graph.Part{
			Kind: graph.Concat, InBytes: b.act(cfg.tokens * cfg.d), OutBytes: b.act(cfg.tokens * cfg.d),
		})
		b.chain("pos_add", graph.Part{
			Kind: graph.Add, Weight: b.weight(cfg.tokens * cfg.d),
			InBytes: b.act(cfg.tokens * cfg.d), OutBytes: b.act(cfg.tokens * cfg.d),
			MACs: units.MACs(cfg.tokens * cfg.d),
		})
		bc := attnCfg{seq: cfg.tokens, d: cfg.d, heads: cfg.heads, ff: 4 * cfg.d}
		for i := int64(0); i < cfg.blocks; i++ {
			b.transformerBlock(fmt.Sprintf("blk%d", i), bc, fill.next())
		}
		b.layernorm("ln_f", cfg.tokens, cfg.d)
		if cfg.classes > 0 {
			b.matmul("head", 1, cfg.d, cfg.classes)
		}
		b.fillLayout(fill.rest(), cfg.tokens*cfg.d)
		return b
	})
}

func buildViT() *graph.Graph {
	return buildViTLike("ViT", vitCfg{d: 768, blocks: 14, heads: 12, tokens: 197, patch: 16, image: 224, classes: 1000}, 819)
}

func buildDeepViT() *graph.Graph {
	// DeepViT deepens ViT with re-attention; the lowered op mix matches a
	// deeper ViT with extra per-block layout traffic.
	return buildViTLike("DeepViT", vitCfg{d: 768, blocks: 28, heads: 12, tokens: 197, patch: 16, image: 224, classes: 1000}, 1395)
}

// --- Whisper (encoder-decoder) ---

func buildWhisperM() *graph.Graph {
	const (
		d       = 1024
		heads   = 16
		encSeq  = 250
		decSeq  = 48
		vocab   = 5000
		eBlocks = 12
		dBlocks = 12
	)
	return buildExact(2026, eBlocks+dBlocks, func(fill *distributor) *builder {
		b := newBuilder("Whisper-Medium")
		// Mel-spectrogram conv frontend (2×1D conv, stride 2 on the second).
		b.chain("conv1", graph.Part{
			Kind: graph.Conv, Weight: b.weight(80*d*3 + d),
			InBytes: b.act(80 * 2 * encSeq), OutBytes: b.act(2 * encSeq * d),
			MACs: units.MACs(80 * d * 3 * 2 * encSeq),
		})
		b.elemwise("conv1.gelu", graph.GeLU, 2*encSeq*d)
		b.chain("conv2", graph.Part{
			Kind: graph.Conv, Weight: b.weight(d*d*3 + d),
			InBytes: b.act(2 * encSeq * d), OutBytes: b.act(encSeq * d),
			MACs: units.MACs(d * d * 3 * encSeq),
		})
		b.elemwise("conv2.gelu", graph.GeLU, encSeq*d)
		b.chain("enc.pos", graph.Part{
			Kind: graph.Add, Weight: b.weight(encSeq * d),
			InBytes: b.act(encSeq * d), OutBytes: b.act(encSeq * d),
			MACs: units.MACs(encSeq * d),
		})
		ec := attnCfg{seq: encSeq, d: d, heads: heads, ff: 4 * d}
		for i := 0; i < eBlocks; i++ {
			b.transformerBlock(fmt.Sprintf("enc%d", i), ec, fill.next())
		}
		b.layernorm("enc.ln_f", encSeq, d)

		b.embeddingOp("dec.wte", vocab, d, decSeq)
		wte := b.last
		b.chain("dec.pos", graph.Part{
			Kind: graph.Add, Weight: b.weight(448 * d),
			InBytes: b.act(decSeq * d), OutBytes: b.act(decSeq * d),
			MACs: units.MACs(decSeq * d),
		})
		b.join("dec.embed", []graph.NodeID{b.last, wte}, graph.Part{
			Kind: graph.Add, InBytes: b.act(2 * decSeq * d), OutBytes: b.act(decSeq * d),
			MACs: units.MACs(decSeq * d),
		})
		dc := attnCfg{seq: decSeq, d: d, heads: heads, ff: 4 * d}
		for i := 0; i < dBlocks; i++ {
			b.decoderBlock(fmt.Sprintf("dec%d", i), dc, encSeq, d, fill.next())
		}
		b.layernorm("dec.ln_f", decSeq, d)
		b.matmul("dec.head", decSeq, d, vocab)
		b.fillLayout(fill.rest(), decSeq*d)
		return b
	})
}

// --- SAM-2 (Hiera image encoder + neck + memory attention + decoder) ---

func buildSAM2() *graph.Graph {
	type stage struct {
		blocks, d, tokens, window int64
	}
	stages := []stage{ // Hiera-L on a 512² frame, patch 4.
		{blocks: 2, d: 144, tokens: 16384, window: 256},
		{blocks: 6, d: 288, tokens: 4096, window: 256},
		{blocks: 36, d: 576, tokens: 1024, window: 256},
		{blocks: 4, d: 1152, tokens: 256, window: 0},
	}
	totalBlocks := 0
	for _, s := range stages {
		totalBlocks += int(s.blocks)
	}
	return buildExact(1668, totalBlocks+4, func(fill *distributor) *builder {
		b := newBuilder("SegmentAnything-2")
		b.conv("patch_embed", 3, stages[0].d, 7, 512, 512, 4)
		prev := stages[0]
		for si, s := range stages {
			if si > 0 {
				// Stage transition: strided projection halving the token grid.
				b.chain(fmt.Sprintf("stage%d.proj", si), graph.Part{
					Kind: graph.Conv, Weight: b.weight(prev.d*s.d + s.d),
					InBytes: b.act(prev.tokens * prev.d), OutBytes: b.act(s.tokens * s.d),
					MACs: units.MACs(prev.d * s.d * s.tokens),
				})
			}
			bc := attnCfg{seq: s.tokens, d: s.d, heads: s.d / 72, ff: 4 * s.d, window: s.window}
			for i := int64(0); i < s.blocks; i++ {
				b.transformerBlock(fmt.Sprintf("stage%d.blk%d", si, i), bc, fill.next())
			}
			prev = s
		}
		// FPN neck: lateral 1×1 convs to a 256-wide feature pyramid.
		const neckD = 256
		for si, s := range stages {
			b.chain(fmt.Sprintf("neck.lateral%d", si), graph.Part{
				Kind: graph.Conv, Weight: b.weight(s.d*neckD + neckD),
				InBytes: b.act(s.tokens * s.d), OutBytes: b.act(s.tokens * neckD),
				MACs: units.MACs(s.d * neckD * s.tokens),
			})
		}
		b.conv("neck.fuse1", neckD, neckD, 3, 64, 64, 1)
		b.conv("neck.fuse2", neckD, neckD, 3, 64, 64, 1)
		// Memory attention: 2 cross-attention blocks over past-frame tokens.
		mc := attnCfg{seq: 1024, d: neckD, heads: 8, ff: 4 * neckD}
		for i := 0; i < 2; i++ {
			b.decoderBlock(fmt.Sprintf("mem%d", i), mc, 1024, neckD, fill.next())
		}
		// Mask decoder: two-way transformer + upscaling head.
		tc := attnCfg{seq: 1024, d: neckD, heads: 8, ff: 2 * neckD}
		for i := 0; i < 2; i++ {
			b.transformerBlock(fmt.Sprintf("dec%d", i), tc, fill.next())
		}
		b.conv("dec.upscale1", neckD, neckD/2, 2, 64, 64, 1)
		b.elemwise("dec.gelu", graph.GeLU, 128*128*64)
		b.conv("dec.upscale2", neckD/2, neckD/4, 2, 128, 128, 1)
		b.matmul("dec.iou_head", 1, neckD, 4)
		b.fillLayout(fill.rest(), 1024*neckD)
		return b
	})
}

// --- DepthAnything (ViT encoder + DPT fusion head) ---

type depthCfg struct {
	d, blocks, heads, tokens int64
	feat                     int64 // DPT fusion width
	spatial                  int64 // feature map side at head input
}

func buildDepthAnything(name string, cfg depthCfg, targetLayers int) *graph.Graph {
	return buildExact(targetLayers, int(cfg.blocks)+4, func(fill *distributor) *builder {
		b := newBuilder(name)
		b.conv("patch_embed", 3, cfg.d, 14, cfg.spatial*14, cfg.spatial*14, 14)
		b.chain("pos_add", graph.Part{
			Kind: graph.Add, Weight: b.weight(cfg.tokens * cfg.d),
			InBytes: b.act(cfg.tokens * cfg.d), OutBytes: b.act(cfg.tokens * cfg.d),
			MACs: units.MACs(cfg.tokens * cfg.d),
		})
		bc := attnCfg{seq: cfg.tokens, d: cfg.d, heads: cfg.heads, ff: 4 * cfg.d}
		for i := int64(0); i < cfg.blocks; i++ {
			b.transformerBlock(fmt.Sprintf("blk%d", i), bc, fill.next())
		}
		// DPT head: four reassemble taps fused top-down at cfg.feat width.
		// The deepest tap (widest dim) is processed at the coarsest spatial
		// resolution; resolution doubles toward the shallow taps, capped so
		// the fusion trunk stays within mobile feature-map budgets.
		dims := []int64{4 * cfg.feat, 2 * cfg.feat, cfg.feat, cfg.feat / 2}
		sp := cfg.spatial
		for i, dim := range dims {
			b.chain(fmt.Sprintf("dpt.reassemble%d", i), graph.Part{
				Kind: graph.Conv, Weight: b.weight(cfg.d*dim + dim),
				InBytes: b.act(cfg.tokens * cfg.d), OutBytes: b.act(sp * sp * dim),
				MACs: units.MACs(cfg.d * dim * sp * sp),
			})
			b.conv(fmt.Sprintf("dpt.proj%d", i), dim, cfg.feat, 3, sp, sp, 1)
			// Fusion residual unit: two 3×3 convs + ReLUs + skip.
			skip := b.last
			b.elemwise(fmt.Sprintf("dpt.relu%d.0", i), graph.ReLU, sp*sp*cfg.feat)
			b.conv(fmt.Sprintf("dpt.conv%d.0", i), cfg.feat, cfg.feat, 3, sp, sp, 1)
			b.elemwise(fmt.Sprintf("dpt.relu%d.1", i), graph.ReLU, sp*sp*cfg.feat)
			b.conv(fmt.Sprintf("dpt.conv%d.1", i), cfg.feat, cfg.feat, 3, sp, sp, 1)
			b.residual(fmt.Sprintf("dpt.fuse%d", i), skip, sp*sp*cfg.feat)
			b.chain(fmt.Sprintf("dpt.up%d", i), graph.Part{
				Kind: graph.Upsample, InBytes: b.act(sp * sp * cfg.feat),
				OutBytes: b.act(4 * sp * sp * cfg.feat),
			})
			b.fillLayout(fill.next(), sp*sp*cfg.feat)
			if i < 2 {
				sp *= 2
			}
		}
		sp *= 2
		b.conv("head.conv1", cfg.feat, cfg.feat/2, 3, sp, sp, 1)
		b.elemwise("head.relu", graph.ReLU, sp*sp*cfg.feat/2)
		b.conv("head.conv2", cfg.feat/2, 32, 3, sp, sp, 1)
		b.conv("head.out", 32, 1, 1, sp, sp, 1)
		b.fillLayout(fill.rest(), sp*sp*32)
		return b
	})
}

func buildDepthAnythingS() *graph.Graph {
	return buildDepthAnything("DepthAnything-Small",
		depthCfg{d: 384, blocks: 12, heads: 6, tokens: 440, feat: 64, spatial: 21}, 1108)
}

func buildDepthAnythingL() *graph.Graph {
	return buildDepthAnything("DepthAnything-Large",
		depthCfg{d: 1024, blocks: 24, heads: 16, tokens: 440, feat: 256, spatial: 21}, 2007)
}
