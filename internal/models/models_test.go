package models

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/opclass"
)

// TestTable6Characteristics validates every model against its Table 6 row:
// lowered layer count must match exactly (builders pad lowering layout ops
// to the published count); parameters and MACs must be within 10%, since
// they are derived from the published architectures rather than copied.
func TestTable6Characteristics(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Abbr, func(t *testing.T) {
			g := spec.Build()
			if err := g.Validate(); err != nil {
				t.Fatalf("graph invalid: %v", err)
			}
			if g.Len() != spec.PaperLayers {
				t.Errorf("layers = %d, want %d", g.Len(), spec.PaperLayers)
			}
			paramsM := float64(g.Params()) / 1e6
			if rel := math.Abs(paramsM-spec.PaperParamsM) / spec.PaperParamsM; rel > 0.10 {
				t.Errorf("params = %.1fM, want %.0fM (off %.1f%%)", paramsM, spec.PaperParamsM, rel*100)
			}
			macsG := g.TotalMACs().GigaMACs()
			if rel := math.Abs(macsG-spec.PaperMACsG) / spec.PaperMACsG; rel > 0.15 {
				t.Errorf("MACs = %.1fG, want %.0fG (off %.1f%%)", macsG, spec.PaperMACsG, rel*100)
			}
		})
	}
}

func TestAllCount(t *testing.T) {
	if len(All()) != 11 {
		t.Fatalf("All() = %d models, want 11 (Table 6)", len(All()))
	}
}

func TestByAbbr(t *testing.T) {
	s, ok := ByAbbr("SD-UNet")
	if !ok || s.Name != "StableDiffusion-UNet" {
		t.Fatalf("ByAbbr(SD-UNet) = %+v, %v", s, ok)
	}
	if _, ok := ByAbbr("nope"); ok {
		t.Fatal("unknown abbr should miss")
	}
}

func TestMustByAbbrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByAbbr on unknown model should panic")
		}
	}()
	MustByAbbr("nope")
}

func TestBuildsAreIndependent(t *testing.T) {
	s := MustByAbbr("ResNet")
	g1, g2 := s.Build(), s.Build()
	if g1 == g2 {
		t.Fatal("Build must return fresh graphs")
	}
	g1.Replace(5, []*graph.Node{{Name: "x", Parts: g1.Node(5).Parts}})
	if g1.Len() == g2.Len()+1 || g2.Len() != s.PaperLayers {
		t.Fatal("mutating one build affected another")
	}
}

func TestOperatorMixIsRealistic(t *testing.T) {
	// Every model must contain weighted reusable ops (the streaming
	// targets), hierarchical ops (the no-overlap barriers, except pure-CNN
	// ResNet which uses folded BatchNorm), and layout ops (what SmartMem
	// optimizes away).
	for _, spec := range All() {
		g := spec.Build()
		var weighted, hierarchical, layout int
		for _, n := range g.Nodes() {
			if n.Weight() > 0 {
				weighted++
			}
			switch opclass.ClassifyNode(n) {
			case opclass.Hierarchical:
				hierarchical++
			}
			switch n.Kind() {
			case graph.Reshape, graph.Transpose, graph.Concat:
				layout++
			}
		}
		if weighted < 10 {
			t.Errorf("%s: only %d weighted nodes", spec.Abbr, weighted)
		}
		if hierarchical == 0 && spec.Abbr != "ResNet" {
			t.Errorf("%s: no hierarchical nodes", spec.Abbr)
		}
		if layout == 0 {
			t.Errorf("%s: no layout nodes", spec.Abbr)
		}
	}
}

func TestWeightOwnership(t *testing.T) {
	// §3.1: each weight is owned by its consuming node; the first consumer
	// index i_w is the node ID. Weighted nodes must therefore be spread
	// through the graph, not front-loaded (otherwise streaming is moot).
	for _, spec := range All() {
		g := spec.Build()
		ids := g.WeightedNodes()
		last := ids[len(ids)-1]
		if int(last) < g.Len()/2 {
			t.Errorf("%s: all weights in the first half of the graph", spec.Abbr)
		}
	}
}

func TestModelScaleOrdering(t *testing.T) {
	// Within a family, bigger variants must dominate.
	gS := MustByAbbr("GPTN-S").Build()
	g13 := MustByAbbr("GPTN-1.3B").Build()
	g27 := MustByAbbr("GPTN-2.7B").Build()
	if !(gS.Params() < g13.Params() && g13.Params() < g27.Params()) {
		t.Error("GPT-Neo params not monotone in size")
	}
	if !(gS.TotalMACs() < g13.TotalMACs() && g13.TotalMACs() < g27.TotalMACs()) {
		t.Error("GPT-Neo MACs not monotone in size")
	}
	dS := MustByAbbr("DepthA-S").Build()
	dL := MustByAbbr("DepthA-L").Build()
	if dS.Params() >= dL.Params() {
		t.Error("DepthAnything params not monotone")
	}
}
