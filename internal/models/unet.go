package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/units"
)

// buildSDUNet lowers the Stable Diffusion v1.5 denoising UNet (Rombach et
// al.): base width 320, channel multipliers [1,2,4,4], cross-attention to a
// 77×768 text context, one transformer depth per attention block. The paper
// evaluates a 32×32 latent (256² image), which yields ~78 GMACs per step.
func buildSDUNet() *graph.Graph {
	const (
		base    = int64(320)
		ctxSeq  = int64(77)
		ctxDim  = int64(768)
		tembDim = int64(1280)
		latent  = int64(32)
	)
	mults := []int64{1, 2, 4, 4}
	attnAt := func(level int) bool { return level < 3 }

	// Block count for the filler distributor: resblocks + attention blocks.
	nBlocks := 0
	for level := range mults {
		nBlocks += 2 // down resblocks
		if attnAt(level) {
			nBlocks += 2
		}
		nBlocks += 3 // up resblocks
		if attnAt(level) {
			nBlocks += 3
		}
	}
	nBlocks += 3 // mid: res, attn, res

	return buildExact(1271, nBlocks, func(fill *distributor) *builder {
		b := newBuilder("StableDiffusion-UNet")

		resblock := func(prefix string, cin, cout, sp int64, fillN int) {
			in := b.last
			b.chain(prefix+".norm1", groupNorm(b, cin, sp))
			b.elemwise(prefix+".silu1", graph.SiLU, cin*sp*sp)
			b.conv(prefix+".conv1", cin, cout, 3, sp, sp, 1)
			b.matmul(prefix+".temb", 1, tembDim, cout)
			b.chain(prefix+".norm2", groupNorm(b, cout, sp))
			b.elemwise(prefix+".silu2", graph.SiLU, cout*sp*sp)
			b.conv(prefix+".conv2", cout, cout, 3, sp, sp, 1)
			main := b.last
			if cin != cout {
				b.last = in
				b.conv(prefix+".skip", cin, cout, 1, sp, sp, 1)
				in = b.last
			}
			b.join(prefix+".add", []graph.NodeID{main, in}, graph.Part{
				Kind: graph.Add, InBytes: b.act(2 * cout * sp * sp),
				OutBytes: b.act(cout * sp * sp), MACs: units.MACs(cout * sp * sp),
			})
			b.fillLayout(fillN, cout*sp*sp)
		}

		attnblock := func(prefix string, c, sp int64, fillN int) {
			seq := sp * sp
			in := b.last
			b.chain(prefix+".norm", groupNorm(b, c, sp))
			b.conv(prefix+".proj_in", c, c, 1, sp, sp, 1)
			cfg := attnCfg{seq: seq, d: c, heads: c / 40, ff: 4 * c}
			mid := b.attention(prefix+".self", cfg, b.last)
			cross := cfg
			cross.kvSeq, cross.kvDim = ctxSeq, ctxDim
			mid = b.attention(prefix+".cross", cross, mid)
			// Feed-forward (mult 4).
			b.layernorm(prefix+".ff.ln", seq, c)
			b.matmul(prefix+".ff.fc1", seq, c, 4*c)
			b.elemwise(prefix+".ff.gelu", graph.GeLU, seq*4*c)
			b.matmul(prefix+".ff.fc2", seq, 4*c, c)
			b.residual(prefix+".ff.add", mid, seq*c)
			b.conv(prefix+".proj_out", c, c, 1, sp, sp, 1)
			b.residual(prefix+".add", in, c*sp*sp)
			b.fillLayout(fillN, c*sp*sp)
		}

		// Time embedding MLP.
		b.matmul("time.fc1", 1, base, tembDim)
		b.elemwise("time.silu", graph.SiLU, tembDim)
		b.matmul("time.fc2", 1, tembDim, tembDim)

		b.conv("conv_in", 4, base, 3, latent, latent, 1)

		type skip struct{ ch, sp int64 }
		skips := []skip{{base, latent}} // conv_in output feeds the last up block

		ch := base
		sp := latent
		for level, mult := range mults {
			cout := base * mult
			for i := 0; i < 2; i++ {
				resblock(fmt.Sprintf("down%d.res%d", level, i), ch, cout, sp, fill.next())
				ch = cout
				if attnAt(level) {
					attnblock(fmt.Sprintf("down%d.attn%d", level, i), ch, sp, fill.next())
				}
				skips = append(skips, skip{ch, sp})
			}
			if level < len(mults)-1 {
				b.conv(fmt.Sprintf("down%d.downsample", level), ch, ch, 3, sp, sp, 2)
				sp /= 2
				skips = append(skips, skip{ch, sp})
			}
		}

		resblock("mid.res1", ch, ch, sp, fill.next())
		attnblock("mid.attn", ch, sp, fill.next())
		resblock("mid.res2", ch, ch, sp, fill.next())

		for level := len(mults) - 1; level >= 0; level-- {
			cout := base * mults[level]
			for i := 0; i < 3; i++ {
				sk := skips[len(skips)-1]
				skips = skips[:len(skips)-1]
				// Skip concat doubles the input channels of the resblock.
				b.chain(fmt.Sprintf("up%d.cat%d", level, i), graph.Part{
					Kind: graph.Concat, InBytes: b.act((ch + sk.ch) * sp * sp),
					OutBytes: b.act((ch + sk.ch) * sp * sp),
				})
				resblock(fmt.Sprintf("up%d.res%d", level, i), ch+sk.ch, cout, sp, fill.next())
				ch = cout
				if attnAt(level) {
					attnblock(fmt.Sprintf("up%d.attn%d", level, i), ch, sp, fill.next())
				}
			}
			if level > 0 {
				b.chain(fmt.Sprintf("up%d.upsample", level), graph.Part{
					Kind: graph.Upsample, InBytes: b.act(ch * sp * sp), OutBytes: b.act(ch * sp * sp * 4),
				})
				sp *= 2
				b.conv(fmt.Sprintf("up%d.conv", level), ch, ch, 3, sp, sp, 1)
			}
		}

		b.chain("out.norm", groupNorm(b, ch, sp))
		b.elemwise("out.silu", graph.SiLU, ch*sp*sp)
		b.conv("conv_out", ch, 4, 3, sp, sp, 1)
		b.fillLayout(fill.rest(), 4*sp*sp)
		return b
	})
}

// groupNorm builds a GroupNorm part over a c×sp×sp feature map.
func groupNorm(b *builder, c, sp int64) graph.Part {
	return graph.Part{
		Kind: graph.GroupNorm, Weight: b.weight(2 * c),
		InBytes: b.act(c * sp * sp), OutBytes: b.act(c * sp * sp),
		MACs: units.MACs(8 * c * sp * sp),
	}
}
