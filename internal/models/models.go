// Package models builds the 11 evaluation models of Table 6 as lowered
// computational graphs.
//
// The real artifact loads ONNX binaries; here each model is synthesized from
// its published architecture (depth, width, heads, input size) so that
// parameter count, MAC count, and lowered-operator count match Table 6. The
// planner and runtime only consume the lowered DAG — operator kinds, weight
// sizes, activation volumes, MACs — so matching those statistics reproduces
// the scheduling problem the paper solves. Lowered-layer counts are matched
// exactly: graph lowering on mobile emits layout ops (Reshape/Transpose)
// whose exact number depends on the frontend, so builders pad with layout
// ops distributed across blocks to the published count.
package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/units"
)

// Spec describes one evaluation model (one row of Table 6).
type Spec struct {
	Name      string
	Abbr      string
	InputType string
	Task      string

	// Paper-reported characteristics, used for validation and reporting.
	PaperParamsM float64 // millions of parameters
	PaperMACsG   float64 // billions of MACs
	PaperLayers  int     // lowered operator count

	build func() *graph.Graph
}

// Build constructs the model graph. Each call returns a fresh graph.
func (s Spec) Build() *graph.Graph { return s.build() }

// All returns the 11 models in Table 6 order.
func All() []Spec {
	return []Spec{
		{Name: "GPTNeo-Small", Abbr: "GPTN-S", InputType: "Text", Task: "NLP",
			PaperParamsM: 164, PaperMACsG: 16, PaperLayers: 606, build: buildGPTNeoSmall},
		{Name: "GPTNeo-1.3B", Abbr: "GPTN-1.3B", InputType: "Text", Task: "NLP",
			PaperParamsM: 1419, PaperMACsG: 170, PaperLayers: 1110, build: buildGPTNeo13B},
		{Name: "GPTNeo-2.7B", Abbr: "GPTN-2.7B", InputType: "Text", Task: "NLP",
			PaperParamsM: 2781, PaperMACsG: 342, PaperLayers: 1446, build: buildGPTNeo27B},
		{Name: "ResNet50", Abbr: "ResNet", InputType: "Image", Task: "Classification",
			PaperParamsM: 25.6, PaperMACsG: 4.1, PaperLayers: 141, build: buildResNet50},
		{Name: "SegmentAnything-2", Abbr: "SAM-2", InputType: "Image", Task: "Segmentation",
			PaperParamsM: 215, PaperMACsG: 218, PaperLayers: 1668, build: buildSAM2},
		{Name: "ViT", Abbr: "ViT", InputType: "Image", Task: "Classification",
			PaperParamsM: 103, PaperMACsG: 21, PaperLayers: 819, build: buildViT},
		{Name: "DeepViT", Abbr: "DeepViT", InputType: "Image", Task: "Classification",
			PaperParamsM: 204, PaperMACsG: 42, PaperLayers: 1395, build: buildDeepViT},
		{Name: "StableDiffusion-UNet", Abbr: "SD-UNet", InputType: "Image", Task: "Generation",
			PaperParamsM: 860, PaperMACsG: 78, PaperLayers: 1271, build: buildSDUNet},
		{Name: "Whisper-Medium", Abbr: "Whisper-M", InputType: "Audio", Task: "Speech Recognition",
			PaperParamsM: 356, PaperMACsG: 55, PaperLayers: 2026, build: buildWhisperM},
		{Name: "DepthAnything-Small", Abbr: "DepthA-S", InputType: "Video", Task: "Segmentation",
			PaperParamsM: 24.3, PaperMACsG: 14, PaperLayers: 1108, build: buildDepthAnythingS},
		{Name: "DepthAnything-Large", Abbr: "DepthA-L", InputType: "Video", Task: "Segmentation",
			PaperParamsM: 333, PaperMACsG: 180, PaperLayers: 2007, build: buildDepthAnythingL},
	}
}

// ByAbbr looks a model up by its Table 6 abbreviation.
func ByAbbr(abbr string) (Spec, bool) {
	for _, s := range All() {
		if s.Abbr == abbr {
			return s, true
		}
	}
	return Spec{}, false
}

// MustByAbbr is ByAbbr that panics on unknown abbreviations.
func MustByAbbr(abbr string) Spec {
	s, ok := ByAbbr(abbr)
	if !ok {
		panic(fmt.Sprintf("models: unknown model %q", abbr))
	}
	return s
}

// builder provides chained op construction over a graph.
type builder struct {
	g    *graph.Graph
	dt   tensor.DType
	last graph.NodeID
	any  bool // whether any node exists yet
}

func newBuilder(name string) *builder {
	return &builder{g: graph.New(name, tensor.FP16), dt: tensor.FP16}
}

// chain appends a single-part node consuming the previous node.
func (b *builder) chain(name string, p graph.Part) graph.NodeID {
	var inputs []graph.NodeID
	if b.any {
		inputs = []graph.NodeID{b.last}
	}
	id := b.g.Add(name, inputs, p)
	b.last, b.any = id, true
	return id
}

// join appends a node consuming explicit inputs (residual adds, concats).
func (b *builder) join(name string, inputs []graph.NodeID, p graph.Part) graph.NodeID {
	id := b.g.Add(name, inputs, p)
	b.last, b.any = id, true
	return id
}

// weight converts a parameter count to bytes in the graph dtype.
func (b *builder) weight(params int64) units.Bytes {
	return units.Bytes(params) * b.dt.Size()
}

// act converts an element count to activation bytes.
func (b *builder) act(elems int64) units.Bytes {
	return units.Bytes(elems) * b.dt.Size()
}

// matmul emits a dense layer: seq tokens, din -> dout, with bias.
func (b *builder) matmul(name string, seq, din, dout int64) graph.NodeID {
	return b.chain(name, graph.Part{
		Kind:     graph.MatMul,
		Weight:   b.weight(din*dout + dout),
		InBytes:  b.act(seq * din),
		OutBytes: b.act(seq * dout),
		MACs:     units.MACs(seq * din * dout),
	})
}

// layernorm emits a LayerNorm over seq×d.
func (b *builder) layernorm(name string, seq, d int64) graph.NodeID {
	return b.chain(name, graph.Part{
		Kind:     graph.LayerNorm,
		Weight:   b.weight(2 * d),
		InBytes:  b.act(seq * d),
		OutBytes: b.act(seq * d),
		MACs:     units.MACs(8 * seq * d),
	})
}

// elemwise emits a weightless elementwise op.
func (b *builder) elemwise(name string, kind graph.OpKind, elems int64) graph.NodeID {
	return b.chain(name, graph.Part{
		Kind:     kind,
		InBytes:  b.act(elems),
		OutBytes: b.act(elems),
		MACs:     units.MACs(4 * elems),
	})
}

// residual emits an Add joining the current chain with a skip node.
func (b *builder) residual(name string, skip graph.NodeID, elems int64) graph.NodeID {
	return b.join(name, []graph.NodeID{b.last, skip}, graph.Part{
		Kind:     graph.Add,
		InBytes:  b.act(2 * elems),
		OutBytes: b.act(elems),
		MACs:     units.MACs(elems),
	})
}

// layout emits one weightless layout op (alternating Reshape/Transpose).
func (b *builder) layout(i int, elems int64) graph.NodeID {
	kind := graph.Reshape
	name := "reshape"
	if i%2 == 1 {
		kind = graph.Transpose
		name = "transpose"
	}
	return b.chain(fmt.Sprintf("%s_%d", name, i), graph.Part{
		Kind:     kind,
		InBytes:  b.act(elems),
		OutBytes: b.act(elems),
	})
}

// conv emits a 2D convolution: cin×h×w input, k×k kernel, stride s.
func (b *builder) conv(name string, cin, cout, k, h, w, s int64) graph.NodeID {
	oh, ow := h/s, w/s
	return b.chain(name, graph.Part{
		Kind:     graph.Conv,
		Weight:   b.weight(cin*cout*k*k + cout),
		InBytes:  b.act(cin * h * w),
		OutBytes: b.act(cout * oh * ow),
		MACs:     units.MACs(cin * cout * k * k * oh * ow),
	})
}

// distributor spreads a fixed number of filler layout ops across blocks.
type distributor struct {
	remaining int
	perBlock  int
	extra     int // first `extra` blocks get one more
	idx       int
}

func newDistributor(total, blocks int) *distributor {
	if blocks <= 0 {
		blocks = 1
	}
	return &distributor{remaining: total, perBlock: total / blocks, extra: total % blocks}
}

// next returns the filler count for the next block.
func (d *distributor) next() int {
	n := d.perBlock
	if d.idx < d.extra {
		n++
	}
	d.idx++
	if n > d.remaining {
		n = d.remaining
	}
	d.remaining -= n
	return n
}

// rest returns all remaining filler (used at the model tail).
func (d *distributor) rest() int {
	n := d.remaining
	d.remaining = 0
	return n
}

// buildExact runs build twice: once with no filler to count core ops, then
// with target-core filler distributed over blocks. It panics if the core
// already exceeds the target, which indicates a mis-specified architecture.
func buildExact(target, blocks int, build func(fill *distributor) *builder) *graph.Graph {
	core := build(newDistributor(0, blocks)).g
	delta := target - core.Len()
	if delta < 0 {
		panic(fmt.Sprintf("models: %s core has %d ops, exceeds Table 6 target %d",
			core.Name, core.Len(), target))
	}
	g := build(newDistributor(delta, blocks)).g
	if g.Len() != target {
		panic(fmt.Sprintf("models: %s built %d ops, want %d", g.Name, g.Len(), target))
	}
	return g
}

// fillLayout appends n layout ops to the chain.
func (b *builder) fillLayout(n int, elems int64) {
	for i := 0; i < n; i++ {
		b.layout(i, elems)
	}
}
