// Package sim provides the discrete-event simulation core used by the mobile
// GPU model: an event engine with a monotone clock, serialized FIFO resources
// (command queues, DMA channels), and step-function trackers for integrating
// quantities like resident memory and power over simulated time.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// event is a scheduled callback. seq breaks ties so same-time events run in
// schedule order, keeping the simulation deterministic.
type event struct {
	at  units.Duration
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    units.Duration
	seq    int
	events eventHeap
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Duration { return e.now }

// Schedule runs fn at time at. Scheduling in the past panics: it would break
// clock monotonicity, which downstream trackers rely on.
func (e *Engine) Schedule(at units.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn d after the current time.
func (e *Engine) After(d units.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// Step executes the next pending event, advancing the clock. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Queue is a serialized FIFO resource: a GPU command queue or a DMA channel.
// Work items occupy it back-to-back; an item requested while the queue is
// busy starts when the queue frees up. All times are absolute.
type Queue struct {
	Name string

	busyUntil units.Duration
	busyTotal units.Duration
	items     int
}

// NewQueue returns a named idle queue.
func NewQueue(name string) *Queue { return &Queue{Name: name} }

// Acquire reserves the queue for an item of duration d that becomes ready at
// time at. It returns the item's start and end times.
func (q *Queue) Acquire(at, d units.Duration) (start, end units.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: queue %s negative duration %v", q.Name, d))
	}
	start = units.MaxDuration(at, q.busyUntil)
	end = start + d
	q.busyUntil = end
	q.busyTotal += d
	q.items++
	return start, end
}

// FreeAt returns the earliest time the queue can start new work.
func (q *Queue) FreeAt() units.Duration { return q.busyUntil }

// BusyTotal returns the cumulative busy time of the queue.
func (q *Queue) BusyTotal() units.Duration { return q.busyTotal }

// Items returns how many work items the queue has processed.
func (q *Queue) Items() int { return q.items }

// Utilization returns busy time divided by the elapsed horizon.
func (q *Queue) Utilization(horizon units.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(q.busyTotal) / float64(horizon)
}

// Reset returns the queue to idle, clearing statistics.
func (q *Queue) Reset() {
	q.busyUntil = 0
	q.busyTotal = 0
	q.items = 0
}
