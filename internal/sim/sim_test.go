package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(5, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 0) })
	e.Schedule(3, func() { got = append(got, 1) })
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Errorf("final clock = %v, want 5", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(2, func() { got = append(got, "a") })
	e.Schedule(2, func() { got = append(got, "b") })
	e.Schedule(2, func() { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("same-time events ran out of order: %v", got)
	}
}

func TestEngineCascadingEvents(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 10 {
			depth++
			e.After(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 10 {
		t.Errorf("cascade depth = %d, want 10", depth)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineClockMonotone(t *testing.T) {
	// Property: regardless of random scheduling, observed clock is monotone.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		last := units.Duration(-1)
		ok := true
		for i := 0; i < 50; i++ {
			at := units.Duration(rng.Float64() * 100)
			e.Schedule(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQueueSerialization(t *testing.T) {
	q := NewQueue("compute")
	s1, e1 := q.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first item got [%v,%v], want [0,10]", s1, e1)
	}
	// Requested at t=5 while busy until 10: must wait.
	s2, e2 := q.Acquire(5, 5)
	if s2 != 10 || e2 != 15 {
		t.Fatalf("second item got [%v,%v], want [10,15]", s2, e2)
	}
	// Requested after the queue went idle: starts immediately.
	s3, _ := q.Acquire(20, 1)
	if s3 != 20 {
		t.Fatalf("third item start = %v, want 20", s3)
	}
	if q.Items() != 3 {
		t.Errorf("items = %d, want 3", q.Items())
	}
	if q.BusyTotal() != 16 {
		t.Errorf("busy total = %v, want 16", q.BusyTotal())
	}
	if u := q.Utilization(32); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestQueueNoOverlapProperty(t *testing.T) {
	// Property: items acquired in arbitrary ready order never overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue("q")
		lastEnd := units.Duration(0)
		at := units.Duration(0)
		for i := 0; i < 40; i++ {
			at += units.Duration(rng.Float64() * 3)
			d := units.Duration(rng.Float64() * 5)
			s, e := q.Acquire(at, d)
			if s < lastEnd || e < s {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQueueNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration should panic")
		}
	}()
	NewQueue("q").Acquire(0, -1)
}

func TestQueueReset(t *testing.T) {
	q := NewQueue("q")
	q.Acquire(0, 10)
	q.Reset()
	if q.FreeAt() != 0 || q.Items() != 0 || q.BusyTotal() != 0 {
		t.Error("reset did not clear queue state")
	}
}

func TestTrackerPeakAverage(t *testing.T) {
	tr := NewTracker("mem")
	tr.AddRange(0, 10, 100) // 100 on [0,10)
	tr.AddRange(5, 10, 50)  // +50 on [5,10): peak 150
	if p := tr.Peak(); p != 150 {
		t.Errorf("peak = %v, want 150", p)
	}
	// Integral over [0,10] = 100*10 + 50*5 = 1250 -> avg 125.
	if a := tr.Average(10); math.Abs(a-125) > 1e-9 {
		t.Errorf("average = %v, want 125", a)
	}
}

func TestTrackerNegativePanics(t *testing.T) {
	tr := NewTracker("mem")
	tr.Add(0, 10)
	tr.Add(1, -20)
	defer func() {
		if recover() == nil {
			t.Fatal("negative series should panic")
		}
	}()
	tr.Series()
}

func TestTrackerOutOfOrderInsert(t *testing.T) {
	tr := NewTracker("mem")
	tr.Add(10, -5)
	tr.Add(0, 5)
	s := tr.Series()
	if len(s) != 2 || s[0].At != 0 || s[0].Value != 5 || s[1].Value != 0 {
		t.Errorf("series = %+v, want [{0 5} {10 0}]", s)
	}
}

func TestTrackerIntegralStopsAtHorizon(t *testing.T) {
	tr := NewTracker("p")
	tr.AddRange(0, 100, 2)
	if got := tr.Integral(10); math.Abs(got-20) > 1e-9 {
		t.Errorf("integral over [0,10] = %v, want 20", got)
	}
}

func TestTrackerConservationProperty(t *testing.T) {
	// Property: for any set of matched AddRange calls the series returns to 0
	// and peak >= average.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker("m")
		var horizon units.Duration
		for i := 0; i < 30; i++ {
			from := units.Duration(rng.Float64() * 50)
			to := from + units.Duration(rng.Float64()*50)
			if to > horizon {
				horizon = to
			}
			tr.AddRange(from, to, float64(1+rng.Intn(100)))
		}
		s := tr.Series()
		if len(s) == 0 {
			return true
		}
		if math.Abs(s[len(s)-1].Value) > 1e-6 {
			return false
		}
		return tr.Peak() >= tr.Average(horizon)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
