package sim

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Sample is one point of a step-function time series: the value holds from
// At until the next sample.
type Sample struct {
	At    units.Duration
	Value float64
}

// Tracker records a step function over simulated time and integrates it.
// It is used for resident memory (bytes) and instantaneous power (watts).
// Events may be added out of order; the series is sorted lazily.
type Tracker struct {
	name    string
	deltas  []Sample // delta events, not absolute values
	sorted  bool
	current float64
}

// NewTracker returns an empty tracker.
func NewTracker(name string) *Tracker { return &Tracker{name: name} }

// Add applies a delta at time at. Negative running values are a modelling
// bug (e.g. freeing memory twice) and are caught in Series.
func (t *Tracker) Add(at units.Duration, delta float64) {
	t.deltas = append(t.deltas, Sample{At: at, Value: delta})
	t.current += delta
	t.sorted = false
}

// AddRange is shorthand for a value that exists on [from, to).
func (t *Tracker) AddRange(from, to units.Duration, v float64) {
	if to < from {
		panic(fmt.Sprintf("sim: tracker %s range [%v,%v) inverted", t.name, from, to))
	}
	t.Add(from, v)
	t.Add(to, -v)
}

// Current returns the net sum of all deltas (the value after the last event
// if all events are in the past).
func (t *Tracker) Current() float64 { return t.current }

// Series returns the step function as absolute values at each change point,
// merged at equal timestamps. It panics if the running value dips below
// -epsilon, which indicates a double-free style modelling bug.
func (t *Tracker) Series() []Sample {
	if !t.sorted {
		sort.SliceStable(t.deltas, func(i, j int) bool { return t.deltas[i].At < t.deltas[j].At })
		t.sorted = true
	}
	const eps = 1e-6
	var out []Sample
	running := 0.0
	for i := 0; i < len(t.deltas); {
		at := t.deltas[i].At
		for i < len(t.deltas) && t.deltas[i].At == at {
			running += t.deltas[i].Value
			i++
		}
		if running < -eps {
			panic(fmt.Sprintf("sim: tracker %s negative value %v at %v", t.name, running, at))
		}
		out = append(out, Sample{At: at, Value: running})
	}
	return out
}

// Peak returns the maximum value the series attains.
func (t *Tracker) Peak() float64 {
	peak := 0.0
	for _, s := range t.Series() {
		if s.Value > peak {
			peak = s.Value
		}
	}
	return peak
}

// Average returns the time-weighted mean value on [0, horizon]. Values
// before time 0 do not exist; the series is assumed to start at 0.
func (t *Tracker) Average(horizon units.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return t.Integral(horizon) / float64(horizon)
}

// Integral returns the integral of the step function over [0, horizon].
// For memory in bytes this is byte·ms; for power in watts over ms it is
// millijoules.
func (t *Tracker) Integral(horizon units.Duration) float64 {
	series := t.Series()
	total := 0.0
	for i, s := range series {
		if s.At >= horizon {
			break
		}
		end := horizon
		if i+1 < len(series) && series[i+1].At < horizon {
			end = series[i+1].At
		}
		total += s.Value * float64(end-s.At)
	}
	return total
}

// End returns the time of the final event, i.e. the natural horizon.
func (t *Tracker) End() units.Duration {
	series := t.Series()
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1].At
}
