package chaos

import (
	"os"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestSeededSoakHoldsInvariants is the CI-sized chaos run: a small grid and
// request budget under the full fault schedule, every invariant checked.
// The nightly soak is the same harness scaled up via flashbench -chaos.
func TestSeededSoakHoldsInvariants(t *testing.T) {
	if testing.Short() {
		// Even the small soak solves real plans; the quick CI job runs the
		// dedicated chaos-check step instead of doubling it here.
		t.Skip("chaos soak skipped in -short; run make chaos-check")
	}
	cfg := Config{
		Seed:     7,
		Cells:    16,
		Requests: 24,
		Dir:      t.TempDir(),
		Timeout:  90 * time.Second,
		Log:      os.Stderr,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no faults fired — the soak exercised nothing")
	}
	if rep.Sweep.ResumedBatches == 0 && rep.Sweep.CompletedBatches > 0 {
		// The coordinator restart happened (runSweep always kills it); zero
		// resumed batches would mean the journal replay silently lost work.
		t.Errorf("coordinator restarted but resumed 0 of %d batches", rep.Sweep.CompletedBatches)
	}
	if rep.ServedOK == 0 {
		t.Error("no plan was ever served under faults")
	}
	if rep.Churn.Healthy == nil || rep.Churn.Starved == nil {
		t.Fatal("churn leg did not run")
	}
	if rep.Churn.Healthy.Requests == 0 {
		t.Error("churn trace generated no requests — the leg exercised nothing")
	}
	if rep.Churn.Starved.Replans == 0 {
		t.Error("starved churn replay never re-planned — no device churn was exercised")
	}
	t.Logf("soak: %d faults, %d/%d requests served (%d degraded, %d retryable), %d batches resumed, %d snapshots quarantined",
		len(rep.Events), rep.ServedOK, rep.Requests, rep.Degraded, rep.Retryable,
		rep.Sweep.ResumedBatches, rep.BadFiles)
}

// TestSameSeedSameSchedule pins the reproducibility contract at the
// harness level: two injectors built from the same seed and walked through
// the same per-site call sequence fire identical fault schedules — what
// makes a failing chaos seed a bug report instead of an anecdote.
func TestSameSeedSameSchedule(t *testing.T) {
	build := func() *faultinject.Injector {
		return faultinject.New(99,
			faultinject.Rule{Site: "sweep.worker.http", Kind: faultinject.KindError, Rate: 0.3},
			faultinject.Rule{Site: "server.solve", Kind: faultinject.KindError, Rate: 0.5, After: 2},
		)
	}
	a, b := build(), build()
	for i := 0; i < 200; i++ {
		if (a.Err("sweep.worker.http") == nil) != (b.Err("sweep.worker.http") == nil) {
			t.Fatalf("worker.http call %d: schedules diverged", i)
		}
		if (a.Err("server.solve") == nil) != (b.Err("server.solve") == nil) {
			t.Fatalf("server.solve call %d: schedules diverged", i)
		}
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 || len(ea) != len(eb) {
		t.Fatalf("event counts differ or empty: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}
