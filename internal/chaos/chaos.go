// Package chaos is the fault-injection soak harness: it stands up the
// repo's distributed pieces in one process — a sweep coordinator with its
// lease journal, pulling workers, and the plan-serving server — runs them
// under a seeded fault schedule (flaky worker HTTP, coordinator 500s and a
// mid-sweep coordinator crash/restart, failing/slow/panicking solves,
// short-written and corrupted snapshots), and checks the invariants that
// hardening is supposed to buy:
//
//  1. No lost cells: the coordinated sweep completes every cell despite the
//     faults, including across the coordinator restart.
//  2. Byte-identical output: the chaos run's assembled rows equal a
//     fault-free run's, cell for cell.
//  3. No wrong plans: every 200 the server returns — solved, cached, or
//     degraded — is byte-identical to a direct public-API solve of the
//     same key.
//  4. Honest failures: every non-200 carries a machine-readable code, and
//     every retryable status (429, 503, 504) carries Retry-After.
//  5. Corruption is contained: snapshots written through save faults either
//     load cleanly or are quarantined; loading never fails the boot.
//  6. Churn is survivable: a seeded device-condition trace (model
//     load/unload, memory-budget steps, thermal throttling) replayed
//     through the resilience engine loses no requests and serves only
//     plans valid for the device state at serve time — even with repair
//     starved so every event rides the degradation ladder.
//
// Fault decisions derive from Config.Seed (see faultinject): the same seed
// replays the same per-site fault schedule, so a failing soak is rerun, not
// shrugged at. Config.Cells and Config.Requests scale the run from a
// seconds-long CI check to a nightly soak.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	flashmem "repro"
	"repro/internal/backoff"
	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/power"
	"repro/internal/replan"
	"repro/internal/server"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Config sizes one chaos run. The zero value of every field but Dir works:
// a small, seconds-long soak with seed 1.
type Config struct {
	// Seed drives every fault decision; equal seeds replay equal per-site
	// fault schedules (0: 1).
	Seed int64
	// Cells is the per-group cell count of the synthetic sweep grid
	// (<= 0: 24; the grid has 2 groups).
	Cells int
	// Requests is how many sequential /plan requests the serving leg fires
	// (<= 0: 40).
	Requests int
	// Workers is the sweep worker count (<= 0: 3).
	Workers int
	// Timeout bounds the whole run (<= 0: 2m).
	Timeout time.Duration
	// Dir is the scratch directory for the journal and snapshot files.
	// Required.
	Dir string
	// Log receives progress lines (nil: discarded).
	Log io.Writer
}

// Report is the machine-readable outcome of a run — CI archives it.
type Report struct {
	Seed       int64                  `json:"seed"`
	Faults     map[string]int         `json:"faults"` // fired faults by "site kind"
	Events     []faultinject.Event    `json:"events"`
	Sweep      sweep.CoordinatorStats `json:"sweep"`
	Server     server.StatsSnapshot   `json:"server"`
	Requests   int                    `json:"requests"`
	ServedOK   int                    `json:"served_ok"`
	Degraded   int                    `json:"degraded"`
	Retryable  int                    `json:"retryable_responses"`
	BadFiles   int                    `json:"snapshot_files_quarantined"`
	Churn      ChurnReport            `json:"churn"`
	Violations []string               `json:"violations,omitempty"`
}

// ChurnReport is the device-churn leg's outcome: the same seeded trace
// replayed twice through the resilience engine. Healthy gives repair an
// unlimited latency budget, so churn is absorbed by incremental repair;
// Starved caps repair at one nanosecond, forcing every event down the
// degradation ladder (cached variant, greedy patch, cold re-solves) —
// the invariants (no lost requests, every served plan valid for the
// device state it was served under) must hold in both.
type ChurnReport struct {
	Healthy *replan.Report `json:"healthy"`
	Starved *replan.Report `json:"starved"`
}

// runner carries one run's shared state.
type runner struct {
	cfg Config
	inj *faultinject.Injector
	rep *Report
	ctx context.Context

	mu sync.Mutex // guards rep.Violations and rep counters from burst goroutines
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "chaos: "+format+"\n", args...)
	}
}

func (r *runner) violatef(format string, args ...any) {
	r.mu.Lock()
	r.rep.Violations = append(r.rep.Violations, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// Run executes one seeded chaos soak. The returned error reports harness
// breakage only (a leg that could not run); invariant breaches land in
// Report.Violations so the report is always complete.
func Run(cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 24
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 40
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// One injector for the whole run: every site's fault schedule hangs off
	// the one seed, and the report's fault counts cover everything fired.
	inj := faultinject.New(cfg.Seed,
		// Worker↔coordinator network: dropped round trips and slow links.
		faultinject.Rule{Site: "sweep.worker.http", Kind: faultinject.KindError, Rate: 0.12},
		faultinject.Rule{Site: "sweep.worker.http", Kind: faultinject.KindLatency, Rate: 0.05, Latency: 4 * time.Millisecond},
		// Coordinator protocol 500s (pre-ledger, so retries are clean).
		faultinject.Rule{Site: "sweep.coord.lease", Kind: faultinject.KindError, Rate: 0.08},
		faultinject.Rule{Site: "sweep.coord.result", Kind: faultinject.KindError, Rate: 0.08},
		// Solve path: the first two solves stay healthy so the
		// last-known-good store has something to degrade to, then errors,
		// latency, and a pair of panics.
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindError, Rate: 0.3, After: 2, Max: 6},
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindLatency, Rate: 0.1, Latency: 3 * time.Millisecond},
		faultinject.Rule{Site: "server.solve", Kind: faultinject.KindPanic, Rate: 1, After: 5, Max: 2},
		// Snapshot persistence: one short write, one corruption, one read
		// error — each fires exactly once, so the final save is clean.
		faultinject.Rule{Site: "plancache.save", Kind: faultinject.KindShortWrite, Rate: 1, Max: 1},
		faultinject.Rule{Site: "plancache.save", Kind: faultinject.KindCorrupt, Rate: 1, Max: 1},
		faultinject.Rule{Site: "plancache.load", Kind: faultinject.KindError, Rate: 1, Max: 1},
	)
	r := &runner{
		cfg: cfg,
		inj: inj,
		rep: &Report{Seed: cfg.Seed, Faults: map[string]int{}},
		ctx: ctx,
	}

	if err := r.sweepLeg(); err != nil {
		return r.rep, err
	}
	if err := r.servingLeg(); err != nil {
		return r.rep, err
	}
	if err := r.churnLeg(); err != nil {
		return r.rep, err
	}

	r.rep.Faults = inj.Counts()
	r.rep.Events = inj.Events()
	r.logf("done: %d faults fired, %d violations", len(r.rep.Events), len(r.rep.Violations))
	return r.rep, nil
}

// ---- sweep leg -----------------------------------------------------------

// chaosRow is the deterministic row for one cell: pure function of (group,
// cell), so byte-identity across runs is checkable without storing the
// reference anywhere.
func chaosRow(group string, cell int) json.RawMessage {
	h := uint64(cell+1) * 0x9e3779b97f4a7c15
	for _, b := range []byte(group) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return json.RawMessage(fmt.Sprintf(`{"group":%q,"cell":%d,"h":"%016x"}`, group, cell, h))
}

func (r *runner) grid() sweep.Grid {
	return sweep.Grid{
		Fingerprint: fmt.Sprintf("chaos-seed-%d", r.cfg.Seed),
		Groups: []sweep.Group{
			{ID: "alpha", Cells: r.cfg.Cells},
			{ID: "beta", Cells: r.cfg.Cells},
		},
	}
}

// swapHandler atomically redirects an already-listening HTTP server to a
// new handler — how the harness "crashes" the coordinator (swap to 503s)
// and brings its successor up on the same address.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, req)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// unavailable answers every request 503 with an empty JSON body — exactly
// what a dead coordinator behind a load balancer looks like, and what
// workers must absorb as transient.
var unavailable = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte("{}\n"))
})

// startHTTP serves h on a fresh loopback port.
func startHTTP(h http.Handler) (url string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// sweepLeg runs the coordinated sweep twice — fault-free reference, then
// under faults with a coordinator crash/restart — and checks invariants
// 1 and 2.
func (r *runner) sweepLeg() error {
	grid := r.grid()
	r.logf("sweep leg: %d cells × %d workers, fault-free reference first", grid.Cells(), r.cfg.Workers)
	ref, _, err := r.runSweep(grid, nil, "", false)
	if err != nil {
		return fmt.Errorf("chaos: fault-free reference sweep: %w", err)
	}

	journal := filepath.Join(r.cfg.Dir, "sweep.journal")
	rows, stats, err := r.runSweep(grid, r.inj, journal, true)
	if err != nil {
		r.violatef("sweep under faults did not complete: %v", err)
		return nil
	}
	r.rep.Sweep = stats

	// Invariants 1 + 2: every cell present, bytes equal to the reference.
	for _, g := range grid.Groups {
		want, got := ref[g.ID], rows[g.ID]
		if len(got) != len(want) {
			r.violatef("group %s: %d cells under faults, reference has %d (lost cells)", g.ID, len(got), len(want))
			continue
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				r.violatef("group %s cell %d: faulted sweep row %s differs from fault-free %s", g.ID, i, got[i], want[i])
			}
		}
	}
	r.logf("sweep leg: %d batches (%d resumed from journal, %d steals, %d retries) — rows match reference",
		stats.Batches, stats.ResumedBatches, stats.Steals, stats.Retries)
	return nil
}

// runSweep drives one full coordinated sweep. With restart set, the
// coordinator is killed after roughly a third of the batches complete and a
// successor over the same journal takes over the same address.
func (r *runner) runSweep(grid sweep.Grid, inj *faultinject.Injector, journal string, restart bool) (map[string][]json.RawMessage, sweep.CoordinatorStats, error) {
	ccfg := sweep.CoordinatorConfig{
		Grid:         grid,
		Workers:      r.cfg.Workers,
		LeaseTimeout: 10 * time.Second,
		IdleWait:     2 * time.Millisecond,
		Journal:      journal,
		Injector:     inj,
	}
	coord, err := sweep.NewCoordinator(ccfg)
	if err != nil {
		return nil, sweep.CoordinatorStats{}, err
	}
	defer func() { _ = coord.Close() }()

	sh := &swapHandler{h: coord.Handler()}
	url, shutdown, err := startHTTP(sh)
	if err != nil {
		return nil, sweep.CoordinatorStats{}, err
	}
	defer shutdown()

	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Workers; i++ {
		name := fmt.Sprintf("chaos-w%d", i)
		client := &http.Client{Timeout: 30 * time.Second}
		if inj != nil {
			client.Transport = faultinject.Transport(inj, "sweep.worker.http", nil)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sweep.RunWorker(r.ctx, sweep.WorkerConfig{
				Coordinator: url,
				Name:        name,
				Fingerprint: grid.Fingerprint,
				Client:      client,
				Poll:        2 * time.Millisecond,
				Retry:       backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: r.cfg.Seed},
				Exec: func(ctx context.Context, b sweep.Batch) ([]json.RawMessage, error) {
					rows := make([]json.RawMessage, 0, b.Hi-b.Lo)
					for c := b.Lo; c < b.Hi; c++ {
						// A hair of work per cell stretches the sweep so
						// faults and the restart land mid-flight.
						time.Sleep(200 * time.Microsecond)
						rows = append(rows, chaosRow(b.Group, c))
					}
					return rows, nil
				},
			})
			if err != nil && r.ctx.Err() == nil {
				r.violatef("sweep worker %s gave up: %v", name, err)
			}
		}()
	}

	if restart {
		// Crash the coordinator once real progress exists. If the sweep
		// outruns the watcher, the successor simply resumes an already-
		// complete journal — still a valid restart.
		batches := coord.Stats().Batches
		for coord.Stats().CompletedBatches < (batches+2)/3 && r.ctx.Err() == nil && !coord.Stats().Done {
			time.Sleep(time.Millisecond)
		}
		sh.swap(unavailable)
		_ = coord.Close() // the in-memory ledger dies here; only the journal survives
		r.logf("sweep leg: coordinator killed at %d/%d batches; restarting from journal", coord.Stats().CompletedBatches, batches)
		time.Sleep(10 * time.Millisecond) // a visible down window for the workers
		successor, err := sweep.NewCoordinator(ccfg)
		if err != nil {
			return nil, sweep.CoordinatorStats{}, fmt.Errorf("restart coordinator: %w", err)
		}
		defer func() { _ = successor.Close() }()
		sh.swap(successor.Handler())
		coord = successor
	}

	res, err := coord.Wait(r.ctx)
	wg.Wait()
	if err != nil {
		return nil, sweep.CoordinatorStats{}, err
	}
	return res.Rows, res.Stats, nil
}

// ---- serving leg ---------------------------------------------------------

// chaosModels is the model subset the serving leg exercises — small enough
// that a branch-capped solve finishes in tens of milliseconds.
var chaosModels = []string{"ViT", "ResNet", "DeepViT"}

// mix is the splitmix64 finalizer, the schedule's deterministic PRNG.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// servingLeg fires a deterministic request schedule at a faulted server and
// checks invariants 3 and 4, then round-trips snapshots through injected
// write faults for invariant 5.
func (r *runner) servingLeg() error {
	solver := opg.DefaultConfig()
	solver.SolveTimeout = 5 * time.Second
	solver.MaxBranches = 500

	s := server.New(server.Config{
		Workers:      2,
		QueueDepth:   4,
		SolveTimeout: 10 * time.Second,
		// A hot cache far smaller than the key space keeps evictions (and
		// therefore re-solves of known keys) happening, which is what walks
		// the degraded-serving path when those re-solves hit faults.
		CacheEntries:     3,
		BreakerThreshold: 3,
		BreakerCooldown:  25 * time.Millisecond,
		Injector:         r.inj,
		Solver:           solver,
	})
	defer s.Close()
	s.Cache().SetFaultInjector(r.inj)
	url, shutdown, err := startHTTP(s.Handler())
	if err != nil {
		return err
	}
	defer shutdown()

	// Direct public-API solves are the ground truth for invariant 3,
	// computed lazily per key with the same solver budget.
	fleet := flashmem.NewFleet(nil, flashmem.WithSolverBudget(solver.SolveTimeout, solver.MaxBranches))
	truth := map[string][]byte{}
	var truthMu sync.Mutex

	devices := flashmem.Devices()
	seqDevices := devices[:len(devices)-1] // the last device stays cold for the burst
	r.logf("serving leg: %d sequential requests over %d devices × %d models",
		r.cfg.Requests, len(seqDevices), len(chaosModels))
	for i := 0; i < r.cfg.Requests && r.ctx.Err() == nil; i++ {
		h := mix(uint64(r.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(i))
		dev := seqDevices[h%uint64(len(seqDevices))]
		model := chaosModels[(h>>16)%uint64(len(chaosModels))]
		r.checkPlanResponse(url, fleet, truth, &truthMu, dev.Name, model)
		if s.Stats().Breaker == "open" {
			// Let the breaker's cooldown elapse now and then so the run
			// exercises the half-open probe, not just rejection.
			time.Sleep(30 * time.Millisecond)
		}
	}

	// Concurrent burst against cold keys: the bounded queue must shed load
	// with honest 429s, never hang or serve a wrong plan.
	cold := devices[len(devices)-1]
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		model := chaosModels[i%len(chaosModels)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.checkPlanResponse(url, fleet, truth, &truthMu, cold.Name, model)
		}()
	}
	wg.Wait()
	r.rep.Server = s.Stats()
	r.logf("serving leg: %d ok (%d degraded), %d retryable refusals, breaker %s",
		r.rep.ServedOK, r.rep.Degraded, r.rep.Retryable, r.rep.Server.Breaker)

	r.persistenceLeg(s)
	r.rep.Server = s.Stats()
	return nil
}

// checkPlanResponse fires one /plan request and applies invariants 3 and 4.
func (r *runner) checkPlanResponse(url string, fleet *flashmem.Fleet, truth map[string][]byte, truthMu *sync.Mutex, device, model string) {
	body := fmt.Sprintf(`{"device":%q,"model":%q}`, device, model)
	resp, err := http.Post(url+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		r.violatef("POST /plan %s/%s: %v", device, model, err)
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		r.violatef("read /plan %s/%s: %v", device, model, err)
		return
	}
	r.mu.Lock()
	r.rep.Requests++
	r.mu.Unlock()

	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(data, &er) != nil || er.Code == "" {
			r.violatef("%s/%s: status %d body %q has no machine-readable code", device, model, resp.StatusCode, data)
			return
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			r.mu.Lock()
			r.rep.Retryable++
			r.mu.Unlock()
			if resp.Header.Get("Retry-After") == "" {
				r.violatef("%s/%s: retryable %d (%s) without Retry-After", device, model, resp.StatusCode, er.Code)
			}
		case http.StatusInternalServerError:
			// Injected solve errors and panics land here; honest and final.
		default:
			r.violatef("%s/%s: unexpected status %d (%s)", device, model, resp.StatusCode, er.Code)
		}
		return
	}

	var pr struct {
		Source string          `json:"source"`
		Plan   json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(data, &pr); err != nil {
		r.violatef("%s/%s: undecodable 200 body: %v", device, model, err)
		return
	}
	served, err := canonicalPlan(pr.Plan)
	if err != nil {
		r.violatef("%s/%s: served plan does not decode: %v", device, model, err)
		return
	}
	key := device + "/" + model
	truthMu.Lock()
	want, ok := truth[key]
	if !ok {
		if want, err = directPlan(fleet, device, model); err != nil {
			truthMu.Unlock()
			r.violatef("direct solve %s: %v", key, err)
			return
		}
		truth[key] = want
	}
	truthMu.Unlock()
	r.mu.Lock()
	r.rep.ServedOK++
	if pr.Source == "degraded" {
		r.rep.Degraded++
	}
	r.mu.Unlock()
	if !bytes.Equal(served, want) {
		r.violatef("%s (source %s): served plan differs from direct Fleet solve", key, pr.Source)
	}
}

// directPlan solves one key through the public API and returns the plan's
// canonical encoding.
func directPlan(fleet *flashmem.Fleet, device, model string) ([]byte, error) {
	dev, ok := flashmem.DeviceByName(device)
	if !ok {
		return nil, fmt.Errorf("unknown device %q", device)
	}
	m, err := fleet.Load(dev, model)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.EncodePlan(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// canonicalPlan re-encodes a served plan into its canonical form (the HTTP
// layer compacts embedded JSON, so byte-identity is checked post-decode).
func canonicalPlan(raw []byte) ([]byte, error) {
	p, err := opg.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ---- persistence leg -----------------------------------------------------

// persistenceLeg saves the server's cache through armed write faults —
// one short write, one corruption — plus clean saves, then boots a fresh
// cache from all of them. Invariant 5: damaged files quarantine, the load
// itself never fails, and at least one intact file restores plans.
func (r *runner) persistenceLeg(s *server.Server) {
	if s.Cache().Len() == 0 {
		r.logf("persistence leg: cache empty (all solves faulted) — skipping")
		return
	}
	var files []string
	for i := 0; i < 4; i++ {
		path := filepath.Join(r.cfg.Dir, fmt.Sprintf("chaos-snap-%d.json", i))
		if err := s.SaveSnapshot(path); err != nil {
			// Injected save errors would surface here; none are armed, but a
			// real failure is report-worthy, not fatal.
			r.violatef("snapshot save %d: %v", i, err)
			continue
		}
		files = append(files, path)
	}
	fresh := plancache.New(0)
	fresh.SetFaultInjector(r.inj) // arms the one plancache.load error
	stats, err := fresh.LoadAll(files...)
	if err != nil {
		r.violatef("boot from chaos snapshots must degrade, not fail: %v", err)
		return
	}
	r.rep.BadFiles = stats.BadFiles
	if fresh.Len() == 0 {
		r.violatef("no plans survived the snapshot round trip (%d files, %d quarantined)", len(files), stats.BadFiles)
	}
	r.logf("persistence leg: %d files → %d plans loaded, %d quarantined to .bad", len(files), fresh.Len(), stats.BadFiles)
}

// ---- churn leg -----------------------------------------------------------

// churnLeg replays a seeded device-condition trace (model churn, memory
// budget steps, thermal throttling) through the resilience engine, twice:
// once with repair given all the time it needs, once with repair starved
// to a nanosecond so every condition event is forced down the degradation
// ladder. Both replays must lose no requests and serve only plans valid
// for the device state they were served under; the replay reports those
// breaches as violations, which land in the run's Violations.
func (r *runner) churnLeg() error {
	dev := device.OnePlus12()
	events := r.cfg.Requests
	if events < 60 {
		events = 60
	}
	tr := trace.Generate(dev, trace.GenOptions{
		Seed:        uint64(r.cfg.Seed),
		Events:      events,
		MaxThrottle: power.MaxThrottleLevel,
	})

	for _, leg := range []struct {
		name string
		opts replan.ReplayOptions
		dst  **replan.Report
	}{
		{"healthy", replan.ReplayOptions{}, &r.rep.Churn.Healthy},
		{"starved", replan.ReplayOptions{Planner: replan.Config{RepairBudget: time.Nanosecond}}, &r.rep.Churn.Starved},
	} {
		rep, err := replan.Replay(r.ctx, dev, tr, leg.opts)
		if err != nil {
			return fmt.Errorf("churn leg (%s): %w", leg.name, err)
		}
		*leg.dst = rep
		for _, v := range rep.Violations {
			r.violatef("churn (%s): %s", leg.name, v)
		}
		r.logf("churn leg (%s): %d events, %d/%d requests served, %d replans, rungs %v",
			leg.name, rep.Events, rep.Served, rep.Requests, rep.Replans, rep.Rungs)
	}
	return nil
}
