package baselines

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/tensor"
	"repro/internal/units"
)

func testGraph() *graph.Graph {
	g := graph.New("toy", tensor.FP16)
	mb := units.MB
	for b := 0; b < 10; b++ {
		g.Op("mm", graph.Part{Kind: graph.MatMul, Weight: 8 * mb, InBytes: mb, OutBytes: mb, MACs: 4e9})
		g.Op("gelu", graph.Part{Kind: graph.GeLU, InBytes: mb, OutBytes: mb, MACs: 1e6})
		g.Op("ln", graph.Part{Kind: graph.LayerNorm, Weight: 4 * units.KB, InBytes: mb, OutBytes: mb, MACs: 1e6})
	}
	return g
}

func TestAllFrameworksRun(t *testing.T) {
	g := testGraph()
	for _, f := range All() {
		rep, m, err := f.Run(g, "", device.OnePlus12())
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if rep.Init <= 0 || rep.Exec <= 0 {
			t.Errorf("%s: non-positive phases %+v", f.Name, rep)
		}
		if rep.Mem.Peak < g.TotalWeightBytes() {
			t.Errorf("%s: preloading peak %v below weights %v", f.Name, rep.Mem.Peak, g.TotalWeightBytes())
		}
		series := m.MemorySeries()
		if series[len(series)-1].Value != 0 {
			t.Errorf("%s: memory not drained", f.Name)
		}
	}
}

func TestSupportMatrixMirrorsTable7(t *testing.T) {
	cases := []struct {
		framework string
		model     string
		want      bool
	}{
		{"MNN", "GPTN-S", true},
		{"MNN", "GPTN-1.3B", false},
		{"NCNN", "ResNet", true},
		{"NCNN", "ViT", false},
		{"TVM", "SD-UNet", false},
		{"TVM", "Whisper-M", true},
		{"LiteRT", "ResNet", true},
		{"LiteRT", "ViT", true},
		{"LiteRT", "GPTN-S", false},
		{"ExecuTorch", "SAM-2", true},
		{"ExecuTorch", "Whisper-M", false},
		{"SmartMem", "SD-UNet", true},
	}
	for _, c := range cases {
		f, ok := ByName(c.framework)
		if !ok {
			t.Fatalf("unknown framework %s", c.framework)
		}
		got, reason := f.Supports(c.model)
		if got != c.want {
			t.Errorf("%s supports %s = %v (%s), want %v", c.framework, c.model, got, reason, c.want)
		}
	}
}

func TestUnsupportedReturnsTypedError(t *testing.T) {
	g := testGraph()
	_, _, err := NCNN().Run(g, "ViT", device.OnePlus12())
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnsupportedError, got %v", err)
	}
}

func TestGPTNeo27BOOMsEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("large model build in short mode")
	}
	g := models.MustByAbbr("GPTN-2.7B").Build()
	// Every preloading framework must blow the 13 GB app limit on the
	// 5.6 GB fp16 model with init copy multipliers (§5.2: "none of the
	// other frameworks supports GPTN-2.7B").
	for _, f := range []*Framework{MNN(), TVM(), SmartMem()} {
		_, _, err := f.Run(g, "", device.OnePlus12())
		var oom *OOMError
		if !errors.As(err, &oom) {
			t.Errorf("%s on GPTN-2.7B: want OOM, got %v", f.Name, err)
		}
	}
}

func TestSmartMemFastestExecutor(t *testing.T) {
	g := testGraph()
	sm, _, err := SmartMem().Run(g, "", device.OnePlus12())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Framework{MNN(), NCNN(), TVM(), ExecuTorch()} {
		rep, _, err := f.Run(g, "", device.OnePlus12())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exec < sm.Exec {
			t.Errorf("%s exec %v faster than SmartMem %v", f.Name, rep.Exec, sm.Exec)
		}
	}
}

func TestExecuTorchSlowestExec(t *testing.T) {
	g := testGraph()
	et, _, err := ExecuTorch().Run(g, "", device.OnePlus12())
	if err != nil {
		t.Fatal(err)
	}
	mnn, _, err := MNN().Run(g, "", device.OnePlus12())
	if err != nil {
		t.Fatal(err)
	}
	if float64(et.Exec) < 10*float64(mnn.Exec) {
		t.Errorf("ExecuTorch exec %v should be >10x MNN %v (§5.2)", et.Exec, mnn.Exec)
	}
	if et.Init > mnn.Init {
		t.Errorf("ExecuTorch init %v should beat MNN init %v (no texture transforms)", et.Init, mnn.Init)
	}
}

func fastEngine() *core.Engine {
	o := core.DefaultOptions(device.OnePlus12())
	o.Config.SolveTimeout = 50 * time.Millisecond
	o.Config.MaxBranches = 2000
	o.Fusion.Rounds = 1
	return core.NewEngine(o)
}

func TestFlashMemBeatsPreloadingBaselines(t *testing.T) {
	g := testGraph()
	e := fastEngine()
	fm, _, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range All() {
		rep, _, err := f.Run(g, "", device.OnePlus12())
		if err != nil {
			t.Fatal(err)
		}
		if fm.Integrated >= rep.Integrated() {
			t.Errorf("FlashMem %v not faster than %s %v", fm.Integrated, f.Name, rep.Integrated())
		}
		if fm.Mem.Average >= rep.Mem.Average {
			t.Errorf("FlashMem avg mem %v not below %s %v", fm.Mem.Average, f.Name, rep.Mem.Average)
		}
	}
}

func TestNaiveOverlapPlansSlower(t *testing.T) {
	g := testGraph()
	e := fastEngine()
	prep, err := e.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	fm, _ := e.Execute(prep)

	plans := map[string]*opg.Plan{
		"always-next": AlwaysNextPlan(g, units.MB),
		"same-op":     SameOpTypePlan(g, units.MB, 48, 8),
	}
	for name, p := range plans {
		rep, _ := e.Execute(&core.Prepared{Graph: g, Plan: p})
		if rep.Integrated <= fm.Integrated {
			t.Errorf("%s (%v) should not beat FlashMem (%v)", name, rep.Integrated, fm.Integrated)
		}
	}
}

func TestNaivePlansCoverEveryWeight(t *testing.T) {
	g := testGraph()
	for name, p := range map[string]*opg.Plan{
		"always-next": AlwaysNextPlan(g, units.MB),
		"same-op":     SameOpTypePlan(g, units.MB, 48, 8),
	} {
		planned := map[graph.NodeID]bool{}
		for _, w := range p.Weights {
			planned[w.Weight] = true
			if w.Preload {
				continue
			}
			sum := 0
			for _, a := range w.Transforms {
				sum += a.Chunks
				if a.Layer >= w.Weight {
					t.Errorf("%s: transform after consumption", name)
				}
			}
			if sum != w.Chunks {
				t.Errorf("%s: weight %d covers %d of %d chunks", name, w.Weight, sum, w.Chunks)
			}
			if w.LoadStart > w.Transforms[0].Layer {
				t.Errorf("%s: load start after first transform", name)
			}
		}
		for _, id := range g.WeightedNodes() {
			if !planned[id] {
				t.Errorf("%s: weight %d unplanned", name, id)
			}
		}
	}
}
