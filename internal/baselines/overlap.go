package baselines

import (
	"repro/internal/graph"
	"repro/internal/opg"
	"repro/internal/units"
)

// Naive overlap strategies of Figure 9. Both produce opg.Plan values that
// the FlashMem executor can run, so the comparison isolates the planning
// policy: same runtime, same kernels, different schedules.

// AlwaysNextPlan prefetches each weight exactly one layer ahead: the disk
// load starts at layer i_w−1 and every chunk is transformed there,
// regardless of that layer's class or capacity. The GPU transform step
// chronically lags the disk (§5.4), producing stalls and oversized
// single-layer transform bursts.
func AlwaysNextPlan(g *graph.Graph, chunkSize units.Bytes) *opg.Plan {
	p := &opg.Plan{Model: g.Name, ChunkSize: chunkSize, MPeak: 1 << 62}
	for _, id := range g.WeightedNodes() {
		bytes := g.Node(id).Weight()
		chunks := opg.Chunks(bytes, chunkSize)
		wp := opg.WeightPlan{Weight: id, Bytes: bytes, Chunks: chunks}
		if id == 0 {
			wp.Preload = true
		} else {
			wp.LoadStart = id - 1
			wp.Transforms = []opg.Assignment{{Layer: id - 1, Chunks: chunks}}
		}
		p.Weights = append(p.Weights, wp)
	}
	return p
}

// SameOpTypePlan prefetches only from layers of the same operator kind as
// the consumer (§5.4's Same-Op-Type Prefetching): chunks spread backwards
// across preceding same-kind layers within the window, partially capacity
// aware via the per-layer budget, but blind to class load capacities —
// compute and data movement stay imbalanced across the model.
func SameOpTypePlan(g *graph.Graph, chunkSize units.Bytes, window, perLayerChunks int) *opg.Plan {
	p := &opg.Plan{Model: g.Name, ChunkSize: chunkSize, MPeak: 1 << 62}
	used := make(map[graph.NodeID]int)
	for _, id := range g.WeightedNodes() {
		n := g.Node(id)
		bytes := n.Weight()
		chunks := opg.Chunks(bytes, chunkSize)
		wp := opg.WeightPlan{Weight: id, Bytes: bytes, Chunks: chunks}

		remaining := chunks
		lo := int(id) - window
		if lo < 0 {
			lo = 0
		}
		for l := int(id) - 1; l >= lo && remaining > 0; l-- {
			cand := g.Node(graph.NodeID(l))
			if cand.Kind() != n.Kind() {
				continue
			}
			avail := perLayerChunks - used[cand.ID]
			if avail <= 0 {
				continue
			}
			take := avail
			if take > remaining {
				take = remaining
			}
			wp.Transforms = append(wp.Transforms, opg.Assignment{Layer: cand.ID, Chunks: take})
			used[cand.ID] += take
			remaining -= take
		}
		if remaining > 0 || len(wp.Transforms) == 0 {
			// No same-kind predecessors with headroom: preload.
			wp.Preload = true
			wp.Transforms = nil
		} else {
			// Transforms were filled backwards; order them and set z_w.
			for i, j := 0, len(wp.Transforms)-1; i < j; i, j = i+1, j-1 {
				wp.Transforms[i], wp.Transforms[j] = wp.Transforms[j], wp.Transforms[i]
			}
			wp.LoadStart = wp.Transforms[0].Layer
		}
		p.Weights = append(p.Weights, wp)
	}
	return p
}
