// Package baselines simulates the competitor frameworks of §5 — MNN, NCNN,
// TVM, LiteRT, ExecuTorch, and SmartMem — on the same GPU machine model
// FlashMem runs on.
//
// All six use the weight-preloading strategy: load every weight from disk,
// transform all of them into the execution layout, then run kernels with no
// streaming. Per-framework overhead factors (kernel setup/compile time per
// node, transform inefficiency, resident copy multipliers, kernel
// efficiency, weight layout) are calibrated against the paper's published
// measurements (Tables 1, 7, 8); model-support gaps mirror Table 7's "–"
// entries and their stated causes (NCNN's missing transformer ops on mobile
// GPUs, LiteRT/TVM converter limits, ExecuTorch's operator coverage).
// Out-of-memory is not special-cased: frameworks whose init footprint
// exceeds the device app limit (e.g. every baseline on GPTNeo-2.7B) fail
// from the simulated memory accounting itself.
package baselines

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/units"
)

// Framework is one simulated preloading framework.
type Framework struct {
	Name string

	// Init-phase factors.
	LoadFactor      float64        // disk read amplification (parsing, re-reads)
	SetupPerKernel  units.Duration // pipeline/shader setup per lowered node
	TransformFactor float64        // layout-transform inefficiency multiplier
	InitCopies      float64        // peak weight-copy multiplier during init
	// SetupScalePerGB scales per-kernel setup with model size: research
	// prototypes (SmartMem) re-plan layouts globally, so their init grows
	// superlinearly on billion-parameter models (Table 7's 48s init on
	// GPTN-1.3B).
	SetupScalePerGB float64

	// Steady-state factors.
	SteadyUMCopies float64 // weight fraction kept in UM through execution

	// Exec-phase factors.
	KernelFactor float64 // per-kernel latency multiplier vs the cost model
	Layout       kernels.Layout
	Fusion       bool // applies a static fusion pass

	// RuntimeOverhead is the framework's flat resident footprint (runtime
	// code, compiled pipelines, allocator arenas).
	RuntimeOverhead units.Bytes

	// Unsupported lists model abbreviations the framework cannot run and
	// why (Table 7's "–" entries).
	Unsupported map[string]string
}

// UnsupportedError reports a model a framework cannot execute.
type UnsupportedError struct {
	Framework string
	Model     string
	Reason    string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("%s does not support %s: %s", e.Framework, e.Model, e.Reason)
}

// OOMError reports a run whose memory peak exceeded the device app limit.
type OOMError struct {
	Framework string
	Model     string
	Peak      units.Bytes
	Limit     units.Bytes
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("%s on %s: out of memory (peak %v > limit %v)", e.Framework, e.Model, e.Peak, e.Limit)
}

// Report is a baseline run outcome. Init and Exec are reported separately,
// as Table 7 does for preloading frameworks.
type Report struct {
	Framework string
	Model     string
	Device    string

	Init units.Duration
	Exec units.Duration
	Mem  gpusim.MemStats
}

// Integrated returns init + exec, the cold-start end-to-end latency.
func (r Report) Integrated() units.Duration { return r.Init + r.Exec }

// Supports reports whether the framework can run a model (by Table 6
// abbreviation), with the blocking reason when it cannot.
func (f *Framework) Supports(abbr string) (bool, string) {
	if reason, bad := f.Unsupported[abbr]; bad {
		return false, reason
	}
	return true, ""
}

// Run executes a model cold on a fresh machine. abbr is the Table 6 model
// abbreviation used for support checks ("" skips the check).
func (f *Framework) Run(g *graph.Graph, abbr string, dev device.Device) (Report, *gpusim.Machine, error) {
	if abbr != "" {
		if ok, reason := f.Supports(abbr); !ok {
			return Report{}, nil, &UnsupportedError{Framework: f.Name, Model: abbr, Reason: reason}
		}
	}
	m := gpusim.New(dev)
	rep := f.ExecuteOn(m, g, 0)
	if m.OOM() {
		return rep, m, &OOMError{Framework: f.Name, Model: g.Name, Peak: m.PeakBytes(), Limit: dev.AppLimit}
	}
	return rep, m, nil
}

// ExecuteOn runs the preloading strategy on a shared machine starting at
// `at`: serial full weight load, serial transform pass, then kernel-by-
// kernel execution. All residency is released at the end of the run (FIFO
// swap semantics).
func (f *Framework) ExecuteOn(m *gpusim.Machine, g *graph.Graph, at units.Duration) Report {
	cm := kernels.NewCostModel(m.Dev)
	exec := g
	if f.Fusion {
		exec = fusion.Fuse(g, fusion.DefaultOptions())
	}
	weights := exec.TotalWeightBytes()

	// Phase 1: load the entire model from disk into UM.
	loadTime := units.Duration(float64(m.Dev.DiskBW.Time(weights)) * f.LoadFactor)
	_, loadEnd := m.Transfer.Acquire(at, loadTime)

	// Phase 2: per-kernel setup (shader compile, pipeline build) and layout
	// transforms, serialized on the compute queue after the load completes
	// (preloading frameworks initialize at the graph level, §1).
	setup := units.Duration(float64(f.SetupPerKernel) * (1 + f.SetupScalePerGB*weights.GiB()))
	initCursor := loadEnd
	for _, n := range exec.Nodes() {
		d := setup
		if w := n.Weight(); w > 0 {
			d += units.Duration(float64(cm.TransformTime(w)) * f.TransformFactor)
		}
		_, initCursor = m.Compute.Acquire(initCursor, d)
	}
	initEnd := initCursor

	// Init memory: the UM copy lives from load start; transform staging
	// multiplies the footprint during the transform window.
	m.UM.Hold(at, initEnd, weights)
	if f.InitCopies > 2 {
		staging := units.Bytes(float64(weights) * (f.InitCopies - 2))
		m.UM.Hold(loadEnd, initEnd, staging)
	}

	// Phase 3: execution.
	done := make([]units.Duration, exec.Len())
	lastConsumer := make([]graph.NodeID, exec.Len())
	for _, n := range exec.Nodes() {
		lastConsumer[n.ID] = n.ID
		for _, in := range n.Inputs {
			if n.ID > lastConsumer[in] {
				lastConsumer[in] = n.ID
			}
		}
	}
	for _, n := range exec.Nodes() {
		ready := initEnd
		for _, in := range n.Inputs {
			if done[in] > ready {
				ready = done[in]
			}
		}
		d := units.Duration(float64(cm.KernelTime(n, f.Layout)) * f.KernelFactor)
		_, ke := m.RunKernel(ready, d)
		done[n.ID] = ke
	}
	execEnd := initEnd
	for _, d := range done {
		if d > execEnd {
			execEnd = d
		}
	}

	// Texture (execution) copy: built progressively during the transform
	// window and resident through execution — so the init-phase peak is
	// UM + staging + TM ≈ InitCopies × weights. Plus whatever the
	// framework keeps in UM at steady state.
	m.TM.Hold(loadEnd, execEnd, weights)
	if f.SteadyUMCopies > 0 {
		m.UM.Hold(initEnd, execEnd, units.Bytes(float64(weights)*f.SteadyUMCopies))
	}
	for _, n := range exec.Nodes() {
		end := done[lastConsumer[n.ID]]
		if end <= done[n.ID] {
			end = done[n.ID] + 0.001
		}
		m.TM.Hold(done[n.ID], end, n.OutBytes())
	}
	m.UM.Hold(at, execEnd, f.RuntimeOverhead)

	return Report{
		Framework: f.Name,
		Model:     g.Name,
		Device:    m.Dev.Name,
		Init:      initEnd - at,
		Exec:      execEnd - initEnd,
		Mem:       m.Stats(execEnd),
	}
}

// transformerUnsupported is NCNN's gap: no LayerNorm/Attention/GeLU on
// mobile GPUs (§5.2), which rules out every transformer-bearing model.
func transformerUnsupported() map[string]string {
	const reason = "missing transformer operators (LayerNorm, Attention) on mobile GPU"
	out := map[string]string{}
	for _, abbr := range []string{
		"GPTN-S", "GPTN-1.3B", "GPTN-2.7B", "SAM-2", "ViT", "DeepViT",
		"SD-UNet", "Whisper-M", "DepthA-S", "DepthA-L",
	} {
		out[abbr] = reason
	}
	return out
}

// MNN returns the simulated MNN framework (Alibaba).
func MNN() *Framework {
	return &Framework{
		Name: "MNN", LoadFactor: 1.3, SetupPerKernel: 0.9,
		TransformFactor: 5, InitCopies: 3.2, SteadyUMCopies: 0.8,
		KernelFactor: 1.9, Layout: kernels.Texture25D, Fusion: true,
		RuntimeOverhead: 64 * units.MB,
		Unsupported: map[string]string{
			"GPTN-1.3B": "graph converter fails beyond ~1B parameters",
			"GPTN-2.7B": "graph converter fails beyond ~1B parameters",
			"SAM-2":     "unsupported hierarchical attention operators",
		},
	}
}

// NCNN returns the simulated NCNN framework (Tencent).
func NCNN() *Framework {
	return &Framework{
		Name: "NCNN", LoadFactor: 1.2, SetupPerKernel: 2.0,
		TransformFactor: 4, InitCopies: 3.0, SteadyUMCopies: 1.0,
		KernelFactor: 1.8, Layout: kernels.Linear, Fusion: true,
		RuntimeOverhead: 48 * units.MB,
		Unsupported:     transformerUnsupported(),
	}
}

// TVM returns the simulated TVM framework.
func TVM() *Framework {
	return &Framework{
		Name: "TVM", LoadFactor: 1.2, SetupPerKernel: 1.4,
		TransformFactor: 5, InitCopies: 5.5, SteadyUMCopies: 3.5,
		KernelFactor: 2.8, Layout: kernels.Texture25D, Fusion: true,
		RuntimeOverhead: 96 * units.MB,
		Unsupported: map[string]string{
			"GPTN-1.3B": "relay importer fails on large decoder graphs",
			"GPTN-2.7B": "relay importer fails on large decoder graphs",
			"SAM-2":     "unsupported hierarchical attention operators",
			"SD-UNet":   "cross-attention conversion unsupported",
		},
	}
}

// LiteRT returns the simulated LiteRT (formerly TensorFlow Lite) framework.
func LiteRT() *Framework {
	unsupported := map[string]string{}
	const reason = "TFLite converter lacks these model architectures on GPU delegate"
	for _, abbr := range []string{
		"GPTN-S", "GPTN-1.3B", "GPTN-2.7B", "SAM-2", "SD-UNet",
		"Whisper-M", "DepthA-S", "DepthA-L",
	} {
		unsupported[abbr] = reason
	}
	return &Framework{
		Name: "LiteRT", LoadFactor: 1.2, SetupPerKernel: 0.25,
		TransformFactor: 2, InitCopies: 4.5, SteadyUMCopies: 2.5,
		KernelFactor: 1.05, Layout: kernels.Texture25D, Fusion: true,
		RuntimeOverhead: 72 * units.MB,
		Unsupported:     unsupported,
	}
}

// ExecuTorch returns the simulated ExecuTorch framework: fast init (no
// texture transforms) but no GPU-specific memory optimization, so kernels
// run from linear unified memory with poor efficiency (§5.2).
func ExecuTorch() *Framework {
	return &Framework{
		Name: "ExecuTorch", LoadFactor: 1.05, SetupPerKernel: 0.45,
		TransformFactor: 0, InitCopies: 2.2, SteadyUMCopies: 1.0,
		KernelFactor: 320, Layout: kernels.Linear, Fusion: false,
		RuntimeOverhead: 56 * units.MB,
		Unsupported: map[string]string{
			"GPTN-2.7B": "exceeds delegate buffer limits",
			"Whisper-M": "encoder-decoder export unsupported",
			"DepthA-S":  "DPT head export unsupported",
			"DepthA-L":  "DPT head export unsupported",
		},
	}
}

// SmartMem returns the simulated SmartMem prototype: FlashMem's precursor
// with texture-layout-optimized execution (kernel factor 1) but full
// preloading and a research-grade init path.
func SmartMem() *Framework {
	return &Framework{
		Name: "SmartMem", LoadFactor: 1.25, SetupPerKernel: 1.8,
		TransformFactor: 6, InitCopies: 3.4, SteadyUMCopies: 0.9,
		SetupScalePerGB: 1.0,
		KernelFactor:    1.0, Layout: kernels.Texture25D, Fusion: true,
		RuntimeOverhead: 64 * units.MB,
		Unsupported:     map[string]string{},
	}
}

// All returns the six baseline frameworks in Table 7 column order.
func All() []*Framework {
	return []*Framework{MNN(), NCNN(), TVM(), LiteRT(), ExecuTorch(), SmartMem()}
}

// ByName looks up a framework.
func ByName(name string) (*Framework, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}
