package flashmem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func fastRuntime(opts ...Option) *Runtime {
	base := []Option{WithSolverBudget(40*time.Millisecond, 2500)}
	return New(OnePlus12(), append(base, opts...)...)
}

func TestQuickstartFlow(t *testing.T) {
	rt := fastRuntime()
	m, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.IntegratedMS <= 0 || res.AvgMemMB <= 0 || res.Kernels == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.OOM {
		t.Error("ResNet cannot OOM a flagship")
	}
	if res.EnergyJ <= 0 || res.AvgPowerW <= 0 {
		t.Error("energy not measured")
	}
}

func TestUnknownModelAndFramework(t *testing.T) {
	rt := fastRuntime()
	if _, err := rt.Load("nope"); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := rt.RunBaseline("nope", "ResNet"); err == nil {
		t.Error("unknown framework must error")
	}
	if _, err := rt.RunBaseline("MNN", "nope"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestBaselineComparison(t *testing.T) {
	rt := fastRuntime()
	m, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	ours := m.Run()
	mnn, err := rt.RunBaseline("MNN", "ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if ours.IntegratedMS >= mnn.IntegratedMS {
		t.Errorf("FlashMem %v not faster than MNN %v", ours.IntegratedMS, mnn.IntegratedMS)
	}
	if ours.AvgMemMB >= mnn.AvgMemMB {
		t.Errorf("FlashMem memory %v not below MNN %v", ours.AvgMemMB, mnn.AvgMemMB)
	}
}

func TestUnsupportedBaselinePropagates(t *testing.T) {
	rt := fastRuntime()
	if _, err := rt.RunBaseline("NCNN", "ViT"); err == nil {
		t.Error("NCNN on ViT must be unsupported")
	}
}

func TestPlanSummary(t *testing.T) {
	rt := fastRuntime()
	m, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	p := m.Plan()
	if p.Layers == 0 || p.Weights == 0 || p.SolverWindows == 0 {
		t.Errorf("empty plan summary: %+v", p)
	}
	if p.OverlapFraction < 0 || p.OverlapFraction > 1 {
		t.Errorf("overlap fraction %v out of [0,1]", p.OverlapFraction)
	}
	if p.SolverStatus != "OPTIMAL" && p.SolverStatus != "FEASIBLE" {
		t.Errorf("status %q", p.SolverStatus)
	}
	// A cold solve never rode the degradation ladder; the rung fields only
	// carry values on plans produced by repair (see internal/replan).
	if p.RepairRung != "" || p.RepairWindowsKept != 0 || p.RepairWindowsResolved != 0 {
		t.Errorf("cold solve carries repair provenance: rung %q kept %d resolved %d",
			p.RepairRung, p.RepairWindowsKept, p.RepairWindowsResolved)
	}
}

func TestOptionsChangeBehaviour(t *testing.T) {
	loose, err := fastRuntime().Load("GPTN-S")
	if err != nil {
		t.Fatal(err)
	}
	tight, err := fastRuntime(WithMPeak(4 * units.MB)).Load("GPTN-S")
	if err != nil {
		t.Fatal(err)
	}
	if tight.Plan().OverlapFraction > loose.Plan().OverlapFraction {
		t.Error("tiny M_peak must not stream more than the default")
	}
}

func TestKernelGeneration(t *testing.T) {
	rt := fastRuntime()
	m, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	ks, err := m.Kernels(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 10 {
		t.Fatalf("kernels = %d, want 10", len(ks))
	}
	for _, k := range ks {
		if !strings.Contains(k.Source, "__kernel") {
			t.Errorf("kernel %s has no source", k.Name)
		}
	}
}

func TestSessionFIFO(t *testing.T) {
	rt := fastRuntime()
	s := rt.NewSession()
	ma, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := rt.Load("DepthA-S")
	if err != nil {
		t.Fatal(err)
	}
	s.Add(ma)
	s.Add(mb)
	res, err := s.RunFIFO(s.Interleaved(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(res.Events))
	}
	if res.PeakMemMB <= 0 || res.TotalMS <= 0 || len(res.MemoryTrace) == 0 {
		t.Errorf("degenerate session result")
	}
	// FIFO property: events are contiguous and ordered.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].StartMS != res.Events[i-1].EndMS {
			t.Error("events not contiguous")
		}
	}
	if _, err := s.RunFIFO([]string{"nope"}); err == nil {
		t.Error("unknown model in order must error")
	}
}

func TestCatalogues(t *testing.T) {
	if len(Models()) != 11 {
		t.Errorf("Models() = %d, want 11", len(Models()))
	}
	if len(Frameworks()) != 6 {
		t.Errorf("Frameworks() = %d, want 6", len(Frameworks()))
	}
	if len(Devices()) != 4 {
		t.Errorf("Devices() = %d, want 4", len(Devices()))
	}
}
