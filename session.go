package flashmem

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/multimodel"
	"repro/internal/units"
)

// Session is a FIFO multi-DNN queue (§2.2): several planned models executed
// back-to-back on its runtime's device, each activation paying only its
// streaming cost rather than a full preload. A session simulates one
// device's queue, so it is single-goroutine by design — but any number of
// sessions (across any mix of devices, e.g. one per Fleet runtime) may run
// concurrently, sharing plan caches and planned models freely.
type Session struct {
	rt      *Runtime
	models  []*Model
	indices map[string]int
}

// NewSession starts an empty FIFO session on the runtime's device.
func (rt *Runtime) NewSession() *Session {
	return &Session{rt: rt, indices: map[string]int{}}
}

// Add registers a planned model with the session.
func (s *Session) Add(m *Model) {
	if _, dup := s.indices[m.abbr]; dup {
		return
	}
	s.indices[m.abbr] = len(s.models)
	s.models = append(s.models, m)
}

// SessionEvent is one completed request.
type SessionEvent struct {
	Model     string
	StartMS   float64
	EndMS     float64
	LatencyMS float64
}

// SessionResult summarizes a FIFO run.
type SessionResult struct {
	Events    []SessionEvent
	TotalMS   float64
	PeakMemMB float64
	AvgMemMB  float64
	OOM       bool

	// MemoryTrace samples the combined residency over time (Figure 6).
	MemoryTrace []MemorySample
}

// MemorySample is one point of the session memory trace.
type MemorySample struct {
	AtMS float64
	MB   float64
}

// RunFIFO executes the queued request order: order entries name registered
// models. An empty order runs each model once in registration order.
func (s *Session) RunFIFO(order []string) (*SessionResult, error) {
	if len(s.models) == 0 {
		return nil, fmt.Errorf("flashmem: empty session")
	}
	var idx []int
	if len(order) == 0 {
		for i := range s.models {
			idx = append(idx, i)
		}
	} else {
		for _, name := range order {
			i, ok := s.indices[name]
			if !ok {
				return nil, fmt.Errorf("flashmem: model %q not in session", name)
			}
			idx = append(idx, i)
		}
	}
	runners := make([]multimodel.Runner, len(s.models))
	for i, m := range s.models {
		runners[i] = &multimodel.FlashMemRunner{Engine: s.rt.engine, Prep: m.prep}
	}
	machine := gpusim.New(s.rt.dev)
	tr, err := multimodel.RunFIFO(machine, runners, idx)
	if err != nil {
		return nil, err
	}
	res := &SessionResult{
		TotalMS:   tr.Total.Milliseconds(),
		PeakMemMB: tr.Peak.MiB(),
		AvgMemMB:  tr.Average.MiB(),
		OOM:       tr.OOM,
	}
	for _, e := range tr.Events {
		res.Events = append(res.Events, SessionEvent{
			Model:     e.Model,
			StartMS:   e.Start.Milliseconds(),
			EndMS:     e.End.Milliseconds(),
			LatencyMS: e.Latency().Milliseconds(),
		})
	}
	for _, sm := range tr.Memory {
		res.MemoryTrace = append(res.MemoryTrace, MemorySample{
			AtMS: sm.At.Milliseconds(),
			MB:   units.Bytes(sm.Value).MiB(),
		})
	}
	return res, nil
}

// Interleaved builds an order repeating the registered models round-robin
// for the given number of iterations (the Figure 6 workload).
func (s *Session) Interleaved(iterations int) []string {
	var order []string
	for it := 0; it < iterations; it++ {
		for _, m := range s.models {
			order = append(order, m.abbr)
		}
	}
	return order
}
