package flashmem

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// A generous wall-clock budget with a binding branch budget keeps solves
// deterministic, so cached and cold plans are comparable.
func deterministicBudget() Option {
	return WithSolverBudget(5*time.Second, 500)
}

func TestWithPlanCache(t *testing.T) {
	cache := NewPlanCache(0)
	rt := New(OnePlus12(), deterministicBudget(), WithPlanCache(cache))

	cold, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Plan().FromCache {
		t.Fatal("first load unexpectedly from cache")
	}
	warm, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	wp := warm.Plan()
	if !wp.FromCache {
		t.Fatal("second load missed the cache")
	}
	if wp.Cache.Hits != 1 || wp.Cache.Misses != 1 {
		t.Errorf("summary cache stats = %+v, want 1 hit / 1 miss", wp.Cache)
	}

	// The cache-hit plan is identical to the cold solve, and so is the run.
	cp, wpNoCache := cold.Plan(), warm.Plan()
	cp.FromCache, wpNoCache.FromCache = false, false
	cp.Cache, wpNoCache.Cache = CacheStats{}, CacheStats{}
	if !reflect.DeepEqual(cp, wpNoCache) {
		t.Errorf("plan summaries differ: cold %+v warm %+v", cp, wpNoCache)
	}
	coldRes, warmRes := cold.Run(), warm.Run()
	if coldRes != warmRes {
		t.Errorf("cached run %+v != cold run %+v", warmRes, coldRes)
	}

	// A second runtime with the same device and options shares the cache.
	rt2 := New(OnePlus12(), deterministicBudget(), WithPlanCache(cache))
	m2, err := rt2.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Plan().FromCache {
		t.Error("identical second runtime missed the cache")
	}
	// A runtime with different solver options must not share entries.
	rt3 := New(OnePlus12(), deterministicBudget(), WithPlanCache(cache), WithLambda(0.5))
	m3, err := rt3.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Plan().FromCache {
		t.Error("different λ falsely hit the cache")
	}
}

func TestWithNilPlanCacheIsNoop(t *testing.T) {
	var pc *PlanCache // e.g. conditionally populated and left nil
	rt := New(OnePlus12(), WithSolverBudget(40*time.Millisecond, 2500), WithPlanCache(pc))
	m, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	if m.Plan().FromCache {
		t.Error("nil cache cannot serve plans")
	}
}

func TestPlanCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	cache := NewPlanCache(0)
	rt := New(OnePlus12(), deterministicBudget(), WithPlanCache(cache))
	m, err := rt.Load("DepthA-S")
	if err != nil {
		t.Fatal(err)
	}
	want := m.Run()
	if err := cache.Save(path); err != nil {
		t.Fatal(err)
	}

	reloaded := NewPlanCache(0)
	if err := reloaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != cache.Len() {
		t.Fatalf("reloaded %d entries, want %d", reloaded.Len(), cache.Len())
	}
	rt2 := New(OnePlus12(), deterministicBudget(), WithPlanCache(reloaded))
	m2, err := rt2.Load("DepthA-S")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Plan().FromCache {
		t.Fatal("persisted plan not used")
	}
	if got := m2.Run(); got != want {
		t.Errorf("round-tripped run %+v != original %+v", got, want)
	}
}

// TestConcurrentSessionsShareCache exercises the thread-safety contract
// under the race detector: many goroutines sharing one plan cache, loading
// overlapping model sets on separate runtimes, and running FIFO sessions
// concurrently. Cross-goroutine plan determinism is not asserted — two
// goroutines that both miss solve independently, and wall-clock solver
// cutoffs make independent solves only near-identical; plan identity for
// actual cache hits is covered by TestWithPlanCache.
func TestConcurrentSessionsShareCache(t *testing.T) {
	cache := NewPlanCache(0)
	abbrs := []string{"ResNet", "DepthA-S"}
	const goroutines = 6

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	totals := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rt := New(OnePlus12(), WithSolverBudget(40*time.Millisecond, 2500), WithPlanCache(cache))
			s := rt.NewSession()
			for _, abbr := range abbrs {
				m, err := rt.Load(abbr)
				if err != nil {
					errs <- err
					return
				}
				s.Add(m)
			}
			res, err := s.RunFIFO(s.Interleaved(2))
			if err != nil {
				errs <- err
				return
			}
			totals[slot] = res.TotalMS
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, total := range totals {
		if total <= 0 {
			t.Errorf("goroutine %d: degenerate session total %v", i, total)
		}
	}
	s := cache.Stats()
	if s.Entries != len(abbrs) {
		t.Errorf("cache entries = %d, want %d (one per distinct model)", s.Entries, len(abbrs))
	}
	if s.Hits+s.Misses == 0 {
		t.Error("no cache traffic recorded")
	}
}

// TestMergePlanSnapshotsAPI exercises the distributed-sweep public API:
// shard-local snapshots merge into one warm-start file that serves every
// shard's plans without re-solving.
func TestMergePlanSnapshotsAPI(t *testing.T) {
	dir := t.TempDir()
	shardModels := [][]string{{"ResNet"}, {"DepthA-S"}}
	var paths []string
	for i, set := range shardModels {
		cache := NewPlanCache(0)
		rt := New(OnePlus12(), deterministicBudget(), WithPlanCache(cache))
		for _, abbr := range set {
			if _, err := rt.Load(abbr); err != nil {
				t.Fatal(err)
			}
		}
		p := filepath.Join(dir, fmt.Sprintf("cache-%d.json", i))
		if err := cache.Save(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	merged := filepath.Join(dir, "merged.json")
	ms, err := MergePlanSnapshots(merged, paths...)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Entries != 2 || ms.Files != 2 {
		t.Errorf("merge stats = %+v, want 2 entries from 2 files", ms)
	}

	warm := NewPlanCache(0)
	ls, err := warm.LoadAll(merged)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Loaded != 2 || ls.Dropped != 0 {
		t.Errorf("load stats = %+v, want 2 loaded / 0 dropped", ls)
	}
	rt := New(OnePlus12(), deterministicBudget(), WithPlanCache(warm))
	for _, set := range shardModels {
		for _, abbr := range set {
			m, err := rt.Load(abbr)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Plan().FromCache {
				t.Errorf("%s not served from merged snapshot", abbr)
			}
		}
	}
	if s := warm.Stats(); s.Misses != 0 {
		t.Errorf("warm start recorded %d misses, want 0", s.Misses)
	}
	if SolverVersion() == "" {
		t.Error("SolverVersion empty")
	}
}
