package flashmem

import "sync"

// Fleet serves the whole device matrix from one process: per-device
// Runtimes built lazily under one shared configuration and one shared
// PlanCache, so a solve performed for any device profile is reused by
// every later request for the same (device, model, configuration) key.
// This is the multi-device refactor behind internal/server — a Runtime is
// still pinned to one device profile, but nothing else is per-device, so a
// Fleet is nothing more than a concurrency-safe map of runtimes around one
// cache.
//
// Fleet is safe for concurrent use; so are the Runtimes it returns.
type Fleet struct {
	mu       sync.Mutex
	cache    *PlanCache
	opts     []Option
	runtimes map[string]*Runtime // keyed by Device.Name
}

// NewFleet builds a fleet sharing cache across every device profile (a nil
// cache allocates a fresh default-bounded one). opts apply to every
// runtime the fleet builds; a WithPlanCache among them overrides the
// shared cache, which is almost never what a fleet wants.
func NewFleet(cache *PlanCache, opts ...Option) *Fleet {
	if cache == nil {
		cache = NewPlanCache(0)
	}
	return &Fleet{cache: cache, opts: opts, runtimes: make(map[string]*Runtime)}
}

// Cache returns the fleet's shared plan cache — load snapshots into it to
// warm-start the fleet, save it to persist every solve the fleet did.
func (f *Fleet) Cache() *PlanCache { return f.cache }

// Runtime returns the fleet's runtime for a device, building it on first
// use. Devices are keyed by Name: two profiles sharing a Name would share
// a runtime, so custom profiles must be distinctly named (the evaluation
// devices all are).
func (f *Fleet) Runtime(dev Device) *Runtime {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rt, ok := f.runtimes[dev.Name]; ok {
		return rt
	}
	opts := append([]Option{WithPlanCache(f.cache)}, f.opts...)
	rt := New(dev, opts...)
	f.runtimes[dev.Name] = rt
	return rt
}

// Load plans a Table 6 model on a device — shorthand for
// Runtime(dev).Load(abbr).
func (f *Fleet) Load(dev Device, abbr string) (*Model, error) {
	return f.Runtime(dev).Load(abbr)
}
